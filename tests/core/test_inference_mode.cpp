// Method-level inference-mode tests: every Method::Predict runs forward-only
// (zero GradNode allocations) yet bit-identical to the grad-mode path, the
// train()/eval() module mode is threaded through the model trees, and edge
// batches (B = 0, B = 1, single-agent scenes) predict cleanly for all four
// methods.

#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "core/adaptraj_method.h"
#include "core/baselines.h"
#include "data/multi_domain.h"

namespace adaptraj {
namespace core {
namespace {

models::BackboneConfig TinyBackbone() {
  models::BackboneConfig c;
  c.embed_dim = 8;
  c.hidden_dim = 16;
  c.social_dim = 16;
  c.latent_dim = 4;
  c.langevin_steps = 2;
  return c;
}

data::DomainGeneralizationData TinyData() {
  data::CorpusConfig cfg;
  cfg.num_scenes = 2;
  cfg.steps_per_scene = 45;
  cfg.seed = 555;
  return data::BuildDomainGeneralizationData(
      {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, cfg);
}

std::vector<std::unique_ptr<Method>> AllMethods(models::BackboneKind backbone) {
  std::vector<std::unique_ptr<Method>> methods;
  methods.push_back(std::make_unique<VanillaMethod>(backbone, TinyBackbone(), 5));
  methods.push_back(std::make_unique<CounterMethod>(backbone, TinyBackbone(), 5));
  methods.push_back(
      std::make_unique<CausalMotionMethod>(backbone, TinyBackbone(), 5, 10.0f));
  AdapTrajConfig acfg;
  acfg.feature_dim = 8;
  acfg.fused_dim = 8;
  acfg.num_source_domains = 2;
  methods.push_back(
      std::make_unique<AdapTrajMethod>(backbone, TinyBackbone(), acfg, 5));
  return methods;
}

data::Batch ProbeBatch(const data::DomainGeneralizationData& dgd, size_t n) {
  data::SequenceConfig seq_cfg;
  std::vector<const data::TrajectorySequence*> ptrs;
  for (size_t i = 0; i < n && i < dgd.target.test.sequences.size(); ++i) {
    ptrs.push_back(&dgd.target.test.sequences[i]);
  }
  return data::MakeBatch(ptrs, seq_cfg);
}

void ExpectBitIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(float)),
            0);
}

// --- Predict is forward-only and bit-identical to the grad-mode path --------

TEST(InferenceModeTest, PredictAllocatesZeroGradNodesAllMethods) {
  auto dgd = TinyData();
  data::Batch batch = ProbeBatch(dgd, 4);
  for (auto& method : AllMethods(models::BackboneKind::kSeq2Seq)) {
    Rng rng(11);
    const int64_t before = internal::GradNodesCreated();
    Tensor pred = method->Predict(batch, &rng, /*sample=*/true);
    EXPECT_EQ(internal::GradNodesCreated(), before) << method->name();
    EXPECT_FALSE(pred.needs_grad()) << method->name();
  }
}

// LBEBM's Langevin sampler is a legitimate gradient island inside Predict:
// it must still record (and backpropagate) its own graph under the method's
// NoGradGuard, while the surrounding forward stays untracked.
TEST(InferenceModeTest, LbebmPredictUsesGradIslandButReturnsNoGradResult) {
  auto dgd = TinyData();
  data::Batch batch = ProbeBatch(dgd, 2);
  VanillaMethod method(models::BackboneKind::kLbebm, TinyBackbone(), 5);
  Rng rng(13);
  const int64_t before = internal::GradNodesCreated();
  Tensor pred = method.Predict(batch, &rng, /*sample=*/true);
  // The island allocated nodes (Langevin differentiates the energy)...
  EXPECT_GT(internal::GradNodesCreated(), before);
  // ...but the prediction itself is a plain forward result.
  EXPECT_FALSE(pred.needs_grad());
  EXPECT_FALSE(method.reentrant_predict());
}

TEST(InferenceModeTest, PredictBitIdenticalToGradModeAllMethods) {
  auto dgd = TinyData();
  data::Batch batch = ProbeBatch(dgd, 6);
  for (auto backbone :
       {models::BackboneKind::kSeq2Seq, models::BackboneKind::kPecnet,
        models::BackboneKind::kLbebm}) {
    for (auto& method : AllMethods(backbone)) {
      for (bool sample : {false, true}) {
        Rng r1(21);
        Tensor no_grad = method->Predict(batch, &r1, sample);
        Rng r2(21);
        Tensor with_grad;
        {
          ForcedGradModeGuard forced;  // overrides Predict's internal guard
          with_grad = method->Predict(batch, &r2, sample);
        }
        ExpectBitIdentical(no_grad, with_grad);
      }
    }
  }
}

// --- train()/eval() mode -----------------------------------------------------

TEST(InferenceModeTest, MethodsServeInEvalModeFromConstruction) {
  // A method never passed through Train() — e.g. one about to be restored
  // via LoadParameters — must already be in inference mode, or
  // checkpoint-restored serving would silently apply training-only layers.
  VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  EXPECT_FALSE(method.backbone().is_training());
}

TEST(InferenceModeTest, TrainLeavesModelsInEvalMode) {
  auto dgd = TinyData();
  TrainConfig t;
  t.epochs = 1;
  t.batch_size = 16;
  t.max_batches_per_epoch = 2;
  VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  method.Train(dgd, t);
  EXPECT_FALSE(method.backbone().is_training());
}

TEST(InferenceModeTest, ModeRecursesThroughAdapTrajModelTree) {
  AdapTrajConfig acfg;
  acfg.feature_dim = 8;
  acfg.fused_dim = 8;
  acfg.num_source_domains = 2;
  AdapTrajMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), acfg, 5);
  EXPECT_FALSE(method.model().is_training());  // eval from construction
  EXPECT_FALSE(method.model().backbone().is_training());
  method.model().train();
  EXPECT_TRUE(method.model().is_training());
  EXPECT_TRUE(method.model().backbone().is_training());
  method.model().eval();
  EXPECT_FALSE(method.model().backbone().is_training());
}

// --- Edge batches ------------------------------------------------------------

TEST(InferenceModeTest, PredictHandlesEmptyBatchAllMethods) {
  data::SequenceConfig seq_cfg;
  data::Batch empty = data::MakeBatch({}, seq_cfg);
  EXPECT_EQ(empty.batch_size, 0);
  for (auto& method : AllMethods(models::BackboneKind::kSeq2Seq)) {
    Rng rng(31);
    Tensor pred = method->Predict(empty, &rng, /*sample=*/true);
    EXPECT_EQ(pred.shape(), (Shape{0, seq_cfg.pred_len * 2})) << method->name();
  }
}

TEST(InferenceModeTest, PredictHandlesSingleSceneBatchAllMethods) {
  auto dgd = TinyData();
  data::Batch one = ProbeBatch(dgd, 1);
  ASSERT_EQ(one.batch_size, 1);
  for (auto& method : AllMethods(models::BackboneKind::kSeq2Seq)) {
    Rng rng(33);
    Tensor pred = method->Predict(one, &rng, /*sample=*/true);
    ASSERT_EQ(pred.shape(), (Shape{1, one.pred_len * 2})) << method->name();
    for (int64_t i = 0; i < pred.size(); ++i) {
      EXPECT_TRUE(std::isfinite(pred.flat(i))) << method->name();
    }
  }
}

TEST(InferenceModeTest, PredictHandlesSingleAgentSceneAllMethods) {
  auto dgd = TinyData();
  // A scene with no neighbors: copy a real one and strip its neighbors.
  data::TrajectorySequence solo = dgd.target.test.sequences[0];
  solo.neighbors.clear();
  data::SequenceConfig seq_cfg;
  data::Batch batch = data::MakeBatch({&solo}, seq_cfg);
  ASSERT_EQ(batch.max_neighbors, 1);  // one all-masked slot keeps shapes stable
  for (int64_t i = 0; i < batch.nbr_mask.size(); ++i) {
    ASSERT_EQ(batch.nbr_mask.flat(i), 0.0f);
  }
  for (auto& method : AllMethods(models::BackboneKind::kSeq2Seq)) {
    Rng rng(35);
    Tensor pred = method->Predict(batch, &rng, /*sample=*/true);
    ASSERT_EQ(pred.shape(), (Shape{1, batch.pred_len * 2})) << method->name();
    for (int64_t i = 0; i < pred.size(); ++i) {
      EXPECT_TRUE(std::isfinite(pred.flat(i))) << method->name();
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace adaptraj
