// Method-level execution-plan tests (tensor/plan.h via core::Method): the
// planned replay path is bit-identical to eager for every method x backbone
// (including the transformer encoder, whose LayerNorm/attention-softmax
// chains exercise the elementwise fusions) across batch shapes including
// B = 0 and B = 1, shape changes miss and capture per key, LBEBM's Langevin
// inner loop aborts to permanent eager, and Train invalidates packed plans.

#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptraj_method.h"
#include "core/baselines.h"
#include "data/multi_domain.h"
#include "tensor/plan.h"

namespace adaptraj {
namespace core {
namespace {

models::BackboneConfig TinyBackbone() {
  models::BackboneConfig c;
  c.embed_dim = 8;
  c.hidden_dim = 16;
  c.social_dim = 16;
  c.latent_dim = 4;
  c.langevin_steps = 2;
  return c;
}

models::BackboneConfig TinyTransformerBackbone() {
  models::BackboneConfig c = TinyBackbone();
  c.encoder = models::EncoderKind::kTransformer;
  c.transformer_blocks = 2;
  return c;
}

data::DomainGeneralizationData TinyData() {
  data::CorpusConfig cfg;
  cfg.num_scenes = 2;
  cfg.steps_per_scene = 45;
  cfg.seed = 555;
  return data::BuildDomainGeneralizationData(
      {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, cfg);
}

std::vector<std::unique_ptr<Method>> AllMethods(
    models::BackboneKind backbone, const models::BackboneConfig& config) {
  std::vector<std::unique_ptr<Method>> methods;
  methods.push_back(std::make_unique<VanillaMethod>(backbone, config, 5));
  methods.push_back(std::make_unique<CounterMethod>(backbone, config, 5));
  methods.push_back(
      std::make_unique<CausalMotionMethod>(backbone, config, 5, 10.0f));
  AdapTrajConfig acfg;
  acfg.feature_dim = 8;
  acfg.fused_dim = 8;
  acfg.num_source_domains = 2;
  methods.push_back(std::make_unique<AdapTrajMethod>(backbone, config, acfg, 5));
  return methods;
}

data::Batch ProbeBatch(const data::DomainGeneralizationData& dgd, size_t n) {
  data::SequenceConfig seq_cfg;
  std::vector<const data::TrajectorySequence*> ptrs;
  for (size_t i = 0; i < n && i < dgd.target.test.sequences.size(); ++i) {
    ptrs.push_back(&dgd.target.test.sequences[i]);
  }
  return data::MakeBatch(ptrs, seq_cfg);
}

void ExpectBitIdentical(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(float)),
            0)
      << what;
}

class PlanPredictTest : public ::testing::Test {
 protected:
  void TearDown() override { plan::SetMode(plan::Mode::kAuto); }
};

/// Eager-vs-planned bit-identity for one method over one batch: two eager
/// calls (plans off) and a capture + replay pair (plans on) on same-seed rng
/// streams must produce identical bytes call for call.
void CheckPlannedMatchesEager(Method* method, const data::Batch& batch,
                              bool sample) {
  plan::SetMode(plan::Mode::kOff);
  Rng eager_rng(11);
  Tensor e1 = method->Predict(batch, &eager_rng, sample);
  Tensor e2 = method->Predict(batch, &eager_rng, sample);

  plan::SetMode(plan::Mode::kOn);
  Rng planned_rng(11);
  Tensor p1 = method->Predict(batch, &planned_rng, sample);  // capture (or eager)
  Tensor p2 = method->Predict(batch, &planned_rng, sample);  // replay (or eager)

  ExpectBitIdentical(e1, p1, method->name().c_str());
  ExpectBitIdentical(e2, p2, method->name().c_str());
}

TEST_F(PlanPredictTest, ReplayBitIdenticalAllMethodsAllBackbones) {
  auto dgd = TinyData();
  data::Batch batch = ProbeBatch(dgd, 4);
  for (auto backbone :
       {models::BackboneKind::kSeq2Seq, models::BackboneKind::kPecnet,
        models::BackboneKind::kLbebm}) {
    for (auto& method : AllMethods(backbone, TinyBackbone())) {
      for (bool sample : {false, true}) {
        CheckPlannedMatchesEager(method.get(), batch, sample);
      }
    }
  }
}

TEST_F(PlanPredictTest, ReplayBitIdenticalTransformerEncoder) {
  // The transformer encoder routes Predict through nn::LayerNorm and the
  // scaled attention softmax — the chains the plan compiler fuses.
  auto dgd = TinyData();
  data::Batch batch = ProbeBatch(dgd, 4);
  for (auto backbone :
       {models::BackboneKind::kSeq2Seq, models::BackboneKind::kPecnet}) {
    for (auto& method : AllMethods(backbone, TinyTransformerBackbone())) {
      CheckPlannedMatchesEager(method.get(), batch, /*sample=*/true);
      EXPECT_GT(method->plan_stats().fused_steps, 0) << method->name();
    }
  }
}

TEST_F(PlanPredictTest, EdgeBatchShapesCaptureAndReplay) {
  plan::SetMode(plan::Mode::kOn);
  auto dgd = TinyData();
  data::SequenceConfig seq_cfg;
  data::Batch empty = data::MakeBatch({}, seq_cfg);
  data::Batch single = ProbeBatch(dgd, 1);
  for (auto& method : AllMethods(models::BackboneKind::kSeq2Seq, TinyBackbone())) {
    CheckPlannedMatchesEager(method.get(), empty, /*sample=*/true);
    CheckPlannedMatchesEager(method.get(), single, /*sample=*/true);
  }
}

TEST_F(PlanPredictTest, ShapeAndSampleChangesMissAndCapturePerKey) {
  plan::SetMode(plan::Mode::kOn);
  auto dgd = TinyData();
  data::Batch b4 = ProbeBatch(dgd, 4);
  data::Batch b2 = ProbeBatch(dgd, 2);
  VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  Rng rng(11);

  (void)method.Predict(b4, &rng, /*sample=*/true);
  plan::CacheStats s = method.plan_stats();
  EXPECT_EQ(s.plans, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 0);

  // New batch size and new sample flag: two more keys, two more captures.
  (void)method.Predict(b2, &rng, /*sample=*/true);
  (void)method.Predict(b4, &rng, /*sample=*/false);
  s = method.plan_stats();
  EXPECT_EQ(s.plans, 3);
  EXPECT_EQ(s.captures, 3);
  EXPECT_EQ(s.misses, 3);
  EXPECT_EQ(s.hits, 0);

  // Every seen key now replays.
  (void)method.Predict(b4, &rng, /*sample=*/true);
  (void)method.Predict(b2, &rng, /*sample=*/true);
  (void)method.Predict(b4, &rng, /*sample=*/false);
  s = method.plan_stats();
  EXPECT_EQ(s.plans, 3);
  EXPECT_EQ(s.hits, 3);
  EXPECT_GT(s.fused_steps, 0);
  EXPECT_GT(s.arena_bytes, 0);
}

TEST_F(PlanPredictTest, LbebmLangevinLoopAbortsToPermanentEager) {
  plan::SetMode(plan::Mode::kOn);
  auto dgd = TinyData();
  data::Batch batch = ProbeBatch(dgd, 4);
  VanillaMethod method(models::BackboneKind::kLbebm, TinyBackbone(), 5);
  Rng rng(11);
  (void)method.Predict(batch, &rng, /*sample=*/true);
  (void)method.Predict(batch, &rng, /*sample=*/true);
  plan::CacheStats s = method.plan_stats();
  EXPECT_EQ(s.plans, 0);
  EXPECT_EQ(s.captures, 0);
  EXPECT_EQ(s.aborted, 1);  // the second call skips the doomed capture
  EXPECT_EQ(s.hits, 0);
}

TEST_F(PlanPredictTest, TrainInvalidatesPackedPlans) {
  plan::SetMode(plan::Mode::kOn);
  auto dgd = TinyData();
  data::Batch batch = ProbeBatch(dgd, 4);
  VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  Rng rng(11);
  (void)method.Predict(batch, &rng, /*sample=*/true);
  EXPECT_EQ(method.plan_stats().plans, 1);

  TrainConfig tc;
  tc.epochs = 1;
  tc.max_batches_per_epoch = 1;
  tc.batch_size = 4;
  method.Train(dgd, tc);
  // Fused GEMM steps packed the pre-training weights; the cache must drop.
  EXPECT_EQ(method.plan_stats().plans, 0);

  // Post-training captures replay the new weights bit-identically.
  CheckPlannedMatchesEager(&method, batch, /*sample=*/true);
}

TEST_F(PlanPredictTest, CloneForServingStartsWithEmptyCache) {
  plan::SetMode(plan::Mode::kOn);
  auto dgd = TinyData();
  data::Batch batch = ProbeBatch(dgd, 4);
  VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  Rng rng(11);
  (void)method.Predict(batch, &rng, /*sample=*/true);
  EXPECT_EQ(method.plan_stats().plans, 1);

  std::unique_ptr<Method> clone = method.CloneForServing();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->plan_stats().plans, 0);  // never inherits packed weights
  CheckPlannedMatchesEager(clone.get(), batch, /*sample=*/true);
}

}  // namespace
}  // namespace adaptraj
}  // namespace core
