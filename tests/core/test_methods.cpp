// Tests for the learning methods (vanilla, Counter, CausalMotion, AdapTraj):
// training smoke tests on tiny corpora and method-specific behaviours.

#include <cmath>

#include <gtest/gtest.h>

#include "core/adaptraj_method.h"
#include "core/baselines.h"
#include "eval/metrics.h"

namespace adaptraj {
namespace core {
namespace {

models::BackboneConfig TinyBackbone() {
  models::BackboneConfig c;
  c.embed_dim = 8;
  c.hidden_dim = 16;
  c.social_dim = 16;
  c.latent_dim = 4;
  c.langevin_steps = 2;
  return c;
}

data::DomainGeneralizationData TinyData() {
  data::CorpusConfig cfg;
  cfg.num_scenes = 2;
  cfg.steps_per_scene = 45;
  cfg.seed = 555;
  return data::BuildDomainGeneralizationData(
      {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, cfg);
}

TrainConfig FastTrain() {
  TrainConfig t;
  t.epochs = 4;
  t.batch_size = 32;
  t.max_batches_per_epoch = 3;
  t.lr = 2e-3f;
  return t;
}

TEST(CounterfactualBatchTest, RemovesAllNeighborInformation) {
  auto dgd = TinyData();
  data::SequenceConfig seq_cfg;
  std::vector<const data::TrajectorySequence*> ptrs;
  for (size_t i = 0; i < std::min<size_t>(4, dgd.pooled_train.size()); ++i) {
    ptrs.push_back(&dgd.pooled_train.sequences[i]);
  }
  data::Batch batch = data::MakeBatch(ptrs, seq_cfg);
  data::Batch cf = CounterfactualBatch(batch);
  for (int64_t i = 0; i < cf.nbr_mask.size(); ++i) EXPECT_EQ(cf.nbr_mask.flat(i), 0.0f);
  for (const auto& step : cf.nbr_steps) {
    for (int64_t i = 0; i < step.size(); ++i) EXPECT_EQ(step.flat(i), 0.0f);
  }
  for (int64_t i = 0; i < cf.nbr_offsets.size(); ++i) {
    EXPECT_EQ(cf.nbr_offsets.flat(i), 0.0f);
  }
  // Focal data untouched.
  for (int64_t i = 0; i < batch.obs_flat.size(); ++i) {
    EXPECT_EQ(cf.obs_flat.flat(i), batch.obs_flat.flat(i));
  }
}

TEST(CounterMethodTest, PredictionIgnoresNeighbors) {
  auto dgd = TinyData();
  CounterMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  data::SequenceConfig seq_cfg;
  std::vector<const data::TrajectorySequence*> ptrs;
  for (size_t i = 0; i < 4; ++i) ptrs.push_back(&dgd.target.test.sequences[i]);
  data::Batch batch = data::MakeBatch(ptrs, seq_cfg);
  data::Batch no_nbrs = CounterfactualBatch(batch);
  Rng r1(9);
  Tensor with = method.Predict(batch, &r1, /*sample=*/false);
  Rng r2(9);
  Tensor without = method.Predict(no_nbrs, &r2, /*sample=*/false);
  for (int64_t i = 0; i < with.size(); ++i) {
    EXPECT_FLOAT_EQ(with.flat(i), without.flat(i));
  }
}

TEST(VanillaMethodTest, PredictionUsesNeighbors) {
  auto dgd = TinyData();
  VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  data::SequenceConfig seq_cfg;
  // Pick a sequence that actually has neighbors.
  const data::TrajectorySequence* seq = nullptr;
  for (const auto& s : dgd.target.test.sequences) {
    if (!s.neighbors.empty()) {
      seq = &s;
      break;
    }
  }
  ASSERT_NE(seq, nullptr);
  data::Batch batch = data::MakeBatch({seq}, seq_cfg);
  data::Batch no_nbrs = CounterfactualBatch(batch);
  Rng r1(9);
  Tensor with = method.Predict(batch, &r1, /*sample=*/false);
  Rng r2(9);
  Tensor without = method.Predict(no_nbrs, &r2, /*sample=*/false);
  float diff = 0.0f;
  for (int64_t i = 0; i < with.size(); ++i) {
    diff += std::fabs(with.flat(i) - without.flat(i));
  }
  EXPECT_GT(diff, 1e-6f);
}

class MethodTrainingTest : public ::testing::Test {
 protected:
  static eval::Metrics TrainAndEval(Method* method, bool sample = false) {
    auto dgd = TinyData();
    method->Train(dgd, FastTrain());
    data::SequenceConfig seq_cfg;
    return eval::EvaluateMinOfK(*method, dgd.target.test, seq_cfg,
                                sample ? 3 : 1, 64, 777);
  }
};

TEST_F(MethodTrainingTest, VanillaTrainsAndPredictsFinite) {
  VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto m = TrainAndEval(&method);
  EXPECT_TRUE(std::isfinite(m.ade));
  EXPECT_TRUE(std::isfinite(m.fde));
  EXPECT_GT(m.ade, 0.0f);
  EXPECT_GE(m.fde, m.ade);  // FDE >= ADE holds for any trajectory
}

TEST_F(MethodTrainingTest, CounterTrainsAndPredictsFinite) {
  CounterMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto m = TrainAndEval(&method);
  EXPECT_TRUE(std::isfinite(m.ade));
}

TEST_F(MethodTrainingTest, CausalMotionTrainsAndPredictsFinite) {
  CausalMotionMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5, 10.0f);
  auto m = TrainAndEval(&method);
  EXPECT_TRUE(std::isfinite(m.ade));
}

TEST_F(MethodTrainingTest, AdapTrajTrainsAndPredictsFinite) {
  AdapTrajConfig acfg;
  acfg.feature_dim = 8;
  acfg.fused_dim = 8;
  AdapTrajMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), acfg, 5);
  auto m = TrainAndEval(&method);
  EXPECT_TRUE(std::isfinite(m.ade));
  EXPECT_GT(m.ade, 0.0f);
}

TEST(AdapTrajMethodTest, TrainingReducesTargetError) {
  data::CorpusConfig corpus;
  corpus.num_scenes = 3;
  corpus.steps_per_scene = 60;
  corpus.seed = 808;
  auto dgd = data::BuildDomainGeneralizationData(
      {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, corpus);
  AdapTrajConfig acfg;
  acfg.feature_dim = 8;
  acfg.fused_dim = 8;
  AdapTrajMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), acfg, 5);
  data::SequenceConfig seq_cfg;
  auto before =
      eval::EvaluateMinOfK(method, dgd.target.test, seq_cfg, 1, 64, 11);
  TrainConfig t = FastTrain();
  t.epochs = 20;
  t.max_batches_per_epoch = 8;
  method.Train(dgd, t);
  auto after = eval::EvaluateMinOfK(method, dgd.target.test, seq_cfg, 1, 64, 11);
  // Training must help substantially relative to the untrained model.
  EXPECT_LT(after.ade, before.ade * 0.95f);
}

TEST(AdapTrajVariantTest, NamesMatchPaperTable) {
  EXPECT_EQ(AdapTrajVariantName(AdapTrajVariant::kFull), "ours");
  EXPECT_EQ(AdapTrajVariantName(AdapTrajVariant::kNoSpecific), "w/o specific");
  EXPECT_EQ(AdapTrajVariantName(AdapTrajVariant::kNoInvariant), "w/o invariant");
}

TEST(AdapTrajVariantTest, VariantsProduceDifferentPredictions) {
  auto dgd = TinyData();
  data::SequenceConfig seq_cfg;
  std::vector<const data::TrajectorySequence*> ptrs;
  for (size_t i = 0; i < 4; ++i) ptrs.push_back(&dgd.target.test.sequences[i]);
  data::Batch batch = data::MakeBatch(ptrs, seq_cfg);

  AdapTrajConfig acfg;
  acfg.feature_dim = 8;
  acfg.fused_dim = 8;
  AdapTrajMethod full(models::BackboneKind::kSeq2Seq, TinyBackbone(), acfg, 5,
                      AdapTrajVariant::kFull);
  AdapTrajMethod no_spec(models::BackboneKind::kSeq2Seq, TinyBackbone(), acfg, 5,
                         AdapTrajVariant::kNoSpecific);
  Rng r1(3);
  Tensor a = full.Predict(batch, &r1, /*sample=*/false);
  Rng r2(3);
  Tensor b = no_spec.Predict(batch, &r2, /*sample=*/false);
  float diff = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) diff += std::fabs(a.flat(i) - b.flat(i));
  EXPECT_GT(diff, 1e-5f);
}

TEST(AdapTrajScheduleTest, PhaseBoundariesRespectFractions) {
  AdapTrajTrainConfig s;
  s.start_fraction = 0.5f;
  s.end_fraction = 0.75f;
  AdapTrajConfig acfg;
  acfg.feature_dim = 8;
  acfg.fused_dim = 8;
  AdapTrajMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), acfg, 5,
                        AdapTrajVariant::kFull, s);
  EXPECT_FLOAT_EQ(method.schedule().start_fraction, 0.5f);
  // Smoke: a training run with these fractions must not crash.
  auto dgd = TinyData();
  TrainConfig t = FastTrain();
  t.epochs = 4;
  method.Train(dgd, t);
}

}  // namespace
}  // namespace core
}  // namespace adaptraj
