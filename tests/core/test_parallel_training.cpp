// Training-determinism suite for the scene-parallel ParallelTrainer path:
// final parameters must be byte-identical across ADAPTRAJ_TRAIN_WORKERS
// values and across repeated runs at a fixed seed, for AdapTraj and a
// baseline. Also unit-level checks of the deterministic gradient reduction.

#include "core/parallel_trainer.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptraj_method.h"
#include "core/baselines.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace core {
namespace {

models::BackboneConfig TinyBackbone() {
  models::BackboneConfig c;
  c.embed_dim = 8;
  c.hidden_dim = 16;
  c.social_dim = 16;
  c.latent_dim = 4;
  c.langevin_steps = 2;
  return c;
}

data::DomainGeneralizationData TinyData() {
  data::CorpusConfig cfg;
  cfg.num_scenes = 2;
  cfg.steps_per_scene = 45;
  cfg.seed = 555;
  return data::BuildDomainGeneralizationData(
      {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, cfg);
}

TrainConfig FastTrain() {
  TrainConfig t;
  t.epochs = 4;
  t.batch_size = 16;
  t.max_batches_per_epoch = 3;
  t.lr = 2e-3f;
  t.accum_steps = 4;
  return t;
}

/// Byte-exact equality (EXPECT_EQ on floats would accept -0.0f == 0.0f and
/// reject NaN == NaN; training determinism is a bit-pattern claim).
void ExpectBitIdentical(const std::vector<float>& a, const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

std::vector<float> TrainAdapTrajWithWorkers(int workers) {
  parallel::ConfigureTrainWorkers(workers);
  auto dgd = TinyData();
  AdapTrajConfig acfg;
  acfg.feature_dim = 8;
  acfg.fused_dim = 8;
  AdapTrajMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), acfg, 5);
  method.Train(dgd, FastTrain());
  parallel::ConfigureTrainWorkers(1);
  return method.model().ParameterSnapshot();
}

std::vector<float> TrainVanillaWithWorkers(int workers) {
  parallel::ConfigureTrainWorkers(workers);
  auto dgd = TinyData();
  VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  method.Train(dgd, FastTrain());
  parallel::ConfigureTrainWorkers(1);
  return method.backbone().ParameterSnapshot();
}

TEST(TrainingDeterminismTest, AdapTrajBitIdenticalAcrossWorkerCounts) {
  const std::vector<float> w1 = TrainAdapTrajWithWorkers(1);
  const std::vector<float> w2 = TrainAdapTrajWithWorkers(2);
  const std::vector<float> w4 = TrainAdapTrajWithWorkers(4);
  ExpectBitIdentical(w1, w2);
  ExpectBitIdentical(w1, w4);
}

TEST(TrainingDeterminismTest, AdapTrajBitIdenticalAcrossRuns) {
  const std::vector<float> a = TrainAdapTrajWithWorkers(2);
  const std::vector<float> b = TrainAdapTrajWithWorkers(2);
  ExpectBitIdentical(a, b);
}

TEST(TrainingDeterminismTest, VanillaBitIdenticalAcrossWorkerCounts) {
  const std::vector<float> w1 = TrainVanillaWithWorkers(1);
  const std::vector<float> w2 = TrainVanillaWithWorkers(2);
  const std::vector<float> w4 = TrainVanillaWithWorkers(4);
  ExpectBitIdentical(w1, w2);
  ExpectBitIdentical(w1, w4);
}

TEST(TrainingDeterminismTest, TrainingActuallyMovesParameters) {
  // Guards the suite against vacuous passes (e.g. a Train() that no-ops).
  auto dgd = TinyData();
  VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  const std::vector<float> before = method.backbone().ParameterSnapshot();
  method.Train(dgd, FastTrain());
  const std::vector<float> after = method.backbone().ParameterSnapshot();
  ASSERT_EQ(before.size(), after.size());
  float diff = 0.0f;
  for (size_t i = 0; i < before.size(); ++i) diff += std::fabs(after[i] - before[i]);
  EXPECT_GT(diff, 1e-4f);
}

// --- ParallelTrainer unit behaviour ------------------------------------------

TEST(ParallelTrainerTest, AveragesGradientsAcrossSlots) {
  // Master + 3 replicas of a single scalar parameter; each task contributes
  // gradient (slot-independent) k+1 for task k. One group of 4 then steps
  // SGD with lr=1 on the average (1+2+3+4)/4 = 2.5.
  Tensor master = Tensor::Scalar(10.0f, /*requires_grad=*/true);
  std::vector<std::vector<Tensor>> slots;
  std::vector<Tensor> all = {master};
  slots.push_back({master});
  for (int s = 1; s < 4; ++s) {
    Tensor replica = Tensor::Scalar(0.0f, /*requires_grad=*/true);
    all.push_back(replica);
    slots.push_back({replica});
  }
  nn::Sgd opt(1.0f);
  opt.AddGroup({master});
  ParallelTrainer::Options topt;
  topt.accum_steps = 4;
  topt.grad_clip = 100.0f;
  ParallelTrainer trainer(&opt, slots, topt);
  // The constructor broadcast must have synced replicas to the master.
  for (int s = 1; s < 4; ++s) EXPECT_FLOAT_EQ(all[s].flat(0), 10.0f);
  for (int k = 0; k < 4; ++k) {
    const float g = static_cast<float>(k + 1);
    trainer.Submit([&all, g](int slot) {
      ops::MulScalar(ops::Sum(all[slot]), g).Backward();
    });
  }
  EXPECT_EQ(trainer.steps(), 1);
  EXPECT_FLOAT_EQ(master.flat(0), 10.0f - 2.5f);
  // Post-step broadcast: replicas carry the updated value.
  for (int s = 1; s < 4; ++s) EXPECT_FLOAT_EQ(all[s].flat(0), 7.5f);
}

TEST(ParallelTrainerTest, FlushRunsPartialGroupWithPartialAverage) {
  Tensor master = Tensor::Scalar(0.0f, /*requires_grad=*/true);
  Tensor replica = Tensor::Scalar(0.0f, /*requires_grad=*/true);
  std::vector<std::vector<Tensor>> slots = {{master}, {replica}};
  nn::Sgd opt(1.0f);
  opt.AddGroup({master});
  ParallelTrainer::Options topt;
  topt.accum_steps = 2;
  topt.grad_clip = 100.0f;
  ParallelTrainer trainer(&opt, slots, topt);
  std::vector<Tensor> all = {master, replica};
  trainer.Submit([&all](int slot) {
    ops::MulScalar(ops::Sum(all[slot]), 3.0f).Backward();
  });
  EXPECT_EQ(trainer.steps(), 0);  // group of 2 not full yet
  trainer.Flush();
  EXPECT_EQ(trainer.steps(), 1);
  // Partial group of 1: average is 3/1, sgd step of lr * 3.
  EXPECT_FLOAT_EQ(master.flat(0), -3.0f);
  trainer.Flush();  // empty flush is a no-op
  EXPECT_EQ(trainer.steps(), 1);
}

TEST(ReduceGradSumTest, FixedOrderMatchesSerialChain) {
  const int64_t n = 1003;  // odd size exercises the vector tail
  std::vector<std::vector<float>> bufs(3, std::vector<float>(n));
  Rng rng(31);
  for (auto& b : bufs) {
    for (auto& x : b) x = rng.Normal(0.0f, 2.0f);
  }
  std::vector<const float*> srcs = {bufs[0].data(), bufs[1].data(), bufs[2].data()};
  std::vector<float> dst(n);
  kernels::ReduceGradSum(srcs.data(), 3, 0.25f, dst.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    const float expect = ((bufs[0][i] + bufs[1][i]) + bufs[2][i]) * 0.25f;
    ASSERT_EQ(dst[i], expect) << "element " << i;
  }
  // In-place over srcs[0] (the master-gradient aliasing case).
  std::vector<float> inplace = bufs[0];
  srcs[0] = inplace.data();
  kernels::ReduceGradSum(srcs.data(), 3, 0.25f, inplace.data(), n);
  EXPECT_EQ(std::memcmp(inplace.data(), dst.data(), n * sizeof(float)), 0);
}

TEST(CopyParametersFromTest, MakesDifferentlySeededModelsIdentical) {
  // The replica-sync primitive behind ParallelTrainer::Broadcast, at the
  // Module level: two models with different initializations converge to the
  // same snapshot after the copy.
  auto make = [](uint64_t seed) {
    return VanillaMethod(models::BackboneKind::kSeq2Seq, TinyBackbone(), seed);
  };
  VanillaMethod a = make(5);
  VanillaMethod b = make(77);
  EXPECT_NE(a.backbone().ParameterSnapshot(), b.backbone().ParameterSnapshot());
  b.backbone().CopyParametersFrom(a.backbone());
  ExpectBitIdentical(a.backbone().ParameterSnapshot(),
                     b.backbone().ParameterSnapshot());
}

TEST(TaskSeedTest, DistinctAndDeterministic) {
  EXPECT_EQ(TaskSeed(7, 0), TaskSeed(7, 0));
  EXPECT_NE(TaskSeed(7, 0), TaskSeed(7, 1));
  EXPECT_NE(TaskSeed(7, 0), TaskSeed(8, 0));
}

}  // namespace
}  // namespace core
}  // namespace adaptraj
