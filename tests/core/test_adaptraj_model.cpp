// Tests for the AdapTraj framework components: extractor routing, losses,
// aggregator (teacher-student) behaviour, and parameter grouping.

#include "core/adaptraj_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace adaptraj {
namespace core {
namespace {

models::BackboneConfig SmallBackbone() {
  models::BackboneConfig c;
  c.embed_dim = 8;
  c.hidden_dim = 16;
  c.social_dim = 16;
  c.latent_dim = 4;
  return c;
}

AdapTrajConfig SmallConfig(int k = 2) {
  AdapTrajConfig c;
  c.num_source_domains = k;
  c.feature_dim = 8;
  c.fused_dim = 8;
  return c;
}

data::Batch TestBatch(int n, const data::SequenceConfig& cfg, int labels_mod = 2) {
  std::vector<data::TrajectorySequence> seqs(n);
  std::vector<const data::TrajectorySequence*> ptrs;
  for (int i = 0; i < n; ++i) {
    auto& s = seqs[i];
    s.domain_label = i % labels_mod;
    for (int t = 0; t < cfg.total_len(); ++t) {
      s.focal.push_back({0.3f * static_cast<float>(t), static_cast<float>(i)});
    }
    std::vector<sim::Vec2> nbr;
    for (int t = 0; t < cfg.obs_len; ++t) {
      nbr.push_back({0.3f * static_cast<float>(t), static_cast<float>(i) + 1.0f});
    }
    s.neighbors.push_back(nbr);
    ptrs.push_back(&s);
  }
  return data::MakeBatch(ptrs, cfg);
}

class AdapTrajModelTest : public ::testing::Test {
 protected:
  AdapTrajModelTest()
      : rng_(1),
        model_(models::BackboneKind::kSeq2Seq, SmallBackbone(), SmallConfig(), &rng_) {}

  Rng rng_;
  AdapTrajModel model_;
  data::SequenceConfig seq_cfg_;
};

TEST_F(AdapTrajModelTest, BackboneGetsExtraDim) {
  EXPECT_EQ(model_.backbone().config().extra_dim, SmallConfig().extra_dim());
  EXPECT_EQ(SmallConfig().extra_dim(), 16);
}

TEST_F(AdapTrajModelTest, FeatureShapes) {
  data::Batch batch = TestBatch(3, seq_cfg_);
  auto enc = model_.backbone().Encode(batch);
  auto f = model_.ExtractFeatures(enc, {0, 1, -1});
  EXPECT_EQ(f.inv_ind.shape(), (Shape{3, 8}));
  EXPECT_EQ(f.inv_nei.shape(), (Shape{3, 8}));
  EXPECT_EQ(f.inv.shape(), (Shape{3, 8}));
  EXPECT_EQ(f.spec_ind.shape(), (Shape{3, 8}));
  EXPECT_EQ(f.spec_nei.shape(), (Shape{3, 8}));
  EXPECT_EQ(f.spec.shape(), (Shape{3, 8}));
  EXPECT_EQ(f.Extra().shape(), (Shape{3, 16}));
}

TEST_F(AdapTrajModelTest, ExpertRoutingFollowsLabels) {
  // Two identical sequences with different labels must receive different
  // specific features (different experts), while invariant features match.
  data::Batch batch = TestBatch(2, seq_cfg_);
  // Make both sequences identical.
  for (auto* t : {&batch.obs_flat}) {
    for (int64_t i = 0; i < t->size() / 2; ++i) {
      t->data()[t->size() / 2 + i] = t->flat(i);
    }
  }
  for (auto& step : batch.obs_steps) {
    step.data()[2] = step.flat(0);
    step.data()[3] = step.flat(1);
  }
  for (auto& step : batch.nbr_steps) {
    step.data()[2] = step.flat(0);
    step.data()[3] = step.flat(1);
  }
  for (auto* t : {&batch.nbr_offsets, &batch.nbr_mask}) {
    t->data()[t->size() / 2] = t->flat(0);
    if (t->size() > 2) t->data()[t->size() / 2 + 1] = t->flat(1);
  }
  auto enc = model_.backbone().Encode(batch);
  auto f = model_.ExtractFeatures(enc, {0, 1});
  float inv_diff = 0.0f;
  float spec_diff = 0.0f;
  for (int64_t j = 0; j < 8; ++j) {
    inv_diff += std::fabs(f.inv_ind.flat(j) - f.inv_ind.flat(8 + j));
    spec_diff += std::fabs(f.spec_ind.flat(j) - f.spec_ind.flat(8 + j));
  }
  EXPECT_LT(inv_diff, 1e-5f);   // shared weights -> identical
  EXPECT_GT(spec_diff, 1e-4f);  // different experts -> different features
}

TEST_F(AdapTrajModelTest, MaskedLabelRoutesThroughAggregator) {
  data::Batch batch = TestBatch(2, seq_cfg_);
  auto enc = model_.backbone().Encode(batch);
  auto labeled = model_.ExtractFeatures(enc, {0, 0});
  auto masked = model_.ExtractFeatures(enc, {-1, -1});
  float diff = 0.0f;
  for (int64_t i = 0; i < labeled.spec_ind.size(); ++i) {
    diff += std::fabs(labeled.spec_ind.flat(i) - masked.spec_ind.flat(i));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST_F(AdapTrajModelTest, AggregatorPathBlocksExpertGradients) {
  // Teacher-student: when every label is masked, expert parameters must not
  // receive gradients (their outputs are detached before the aggregator).
  data::Batch batch = TestBatch(2, seq_cfg_);
  model_.ZeroGrad();
  auto enc = model_.backbone().Encode(batch);
  auto f = model_.ExtractFeatures(enc, {-1, -1});
  ops::Sum(f.spec_ind).Backward();
  // Aggregator params must have gradients; expert params must not. Identify
  // them via the parameter groups.
  bool agg_has_grad = false;
  for (const Tensor& p : model_.AggregatorParams()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.size(); ++i) agg_has_grad = agg_has_grad || g.flat(i) != 0.0f;
  }
  EXPECT_TRUE(agg_has_grad);
  // Expert gradient check: named parameters starting with m_ind/m_nei.
  for (const auto& [name, p] : model_.NamedParameters()) {
    if (name.rfind("m_ind", 0) == 0 || name.rfind("m_nei", 0) == 0) {
      Tensor g = p.grad();
      for (int64_t i = 0; i < g.size(); ++i) {
        ASSERT_EQ(g.flat(i), 0.0f) << "expert " << name << " leaked gradient";
      }
    }
  }
}

TEST_F(AdapTrajModelTest, LabeledPathTrainsExperts) {
  data::Batch batch = TestBatch(2, seq_cfg_);
  model_.ZeroGrad();
  auto enc = model_.backbone().Encode(batch);
  auto f = model_.ExtractFeatures(enc, {0, 1});
  ops::Sum(f.spec_ind).Backward();
  bool expert_has_grad = false;
  for (const auto& [name, p] : model_.NamedParameters()) {
    if (name.rfind("m_ind", 0) == 0) {
      Tensor g = p.grad();
      for (int64_t i = 0; i < g.size(); ++i) {
        expert_has_grad = expert_has_grad || g.flat(i) != 0.0f;
      }
    }
  }
  EXPECT_TRUE(expert_has_grad);
}

TEST_F(AdapTrajModelTest, LossesAreFiniteScalars) {
  data::Batch batch = TestBatch(4, seq_cfg_);
  auto enc = model_.backbone().Encode(batch);
  auto f = model_.ExtractFeatures(enc, {0, 1, 0, 1});
  for (Tensor loss : {model_.ReconLoss(batch, f), model_.SimilarLoss(f, {0, 1, 0, 1}),
                      model_.DiffLoss(f), model_.OursLoss(batch, f, {0, 1, 0, 1})}) {
    ASSERT_EQ(loss.size(), 1);
    EXPECT_TRUE(std::isfinite(loss.item()));
  }
}

TEST_F(AdapTrajModelTest, SimilarLossSkipsMaskedRows) {
  data::Batch batch = TestBatch(2, seq_cfg_);
  auto enc = model_.backbone().Encode(batch);
  auto f = model_.ExtractFeatures(enc, {-1, -1});
  Tensor loss = model_.SimilarLoss(f, {-1, -1});
  EXPECT_FLOAT_EQ(loss.item(), 0.0f);
}

TEST_F(AdapTrajModelTest, GradReverseMakesInvariantGradOpposeClassifier) {
  // Sanity check of the adversarial wiring: training the classifier loss
  // should push invariant features toward confusion. We verify that the
  // invariant extractor receives nonzero gradient through the GRL.
  data::Batch batch = TestBatch(4, seq_cfg_);
  model_.ZeroGrad();
  auto enc = model_.backbone().Encode(batch);
  auto f = model_.ExtractFeatures(enc, {0, 1, 0, 1});
  model_.SimilarLoss(f, {0, 1, 0, 1}).Backward();
  bool v_ind_grad = false;
  for (const auto& [name, p] : model_.NamedParameters()) {
    if (name.rfind("v_ind", 0) == 0) {
      Tensor g = p.grad();
      for (int64_t i = 0; i < g.size(); ++i) v_ind_grad = v_ind_grad || g.flat(i) != 0.0f;
    }
  }
  EXPECT_TRUE(v_ind_grad);
}

TEST_F(AdapTrajModelTest, DiffLossDecreasesUnderTraining) {
  data::Batch batch = TestBatch(4, seq_cfg_);
  nn::Adam opt(1e-2f);
  opt.AddGroup(model_.Parameters());
  auto eval_diff = [&]() {
    auto enc = model_.backbone().Encode(batch);
    auto f = model_.ExtractFeatures(enc, {0, 1, 0, 1});
    return model_.DiffLoss(f).item();
  };
  const float before = eval_diff();
  for (int it = 0; it < 50; ++it) {
    opt.ZeroGrad();
    auto enc = model_.backbone().Encode(batch);
    auto f = model_.ExtractFeatures(enc, {0, 1, 0, 1});
    model_.DiffLoss(f).Backward();
    opt.Step();
  }
  EXPECT_LT(eval_diff(), before);
}

TEST_F(AdapTrajModelTest, ParameterGroupsPartitionAllParameters) {
  const size_t total = model_.Parameters().size();
  const size_t main_group = model_.BackboneAndExtractorParams().size();
  const size_t agg_group = model_.AggregatorParams().size();
  EXPECT_EQ(total, main_group + agg_group);
}

TEST(AdapTrajConfigTest, ExtraDimIsTwiceFused) {
  AdapTrajConfig c;
  c.fused_dim = 24;
  EXPECT_EQ(c.extra_dim(), 48);
}

TEST(AdapTrajModelVariantsTest, DifferentSourceCountsChangeExpertCount) {
  Rng rng(3);
  AdapTrajModel one(models::BackboneKind::kSeq2Seq, SmallBackbone(), SmallConfig(1),
                    &rng);
  Rng rng2(3);
  AdapTrajModel three(models::BackboneKind::kSeq2Seq, SmallBackbone(), SmallConfig(3),
                      &rng2);
  EXPECT_GT(three.NumParams(), one.NumParams());
}

}  // namespace
}  // namespace core
}  // namespace adaptraj
