// Integration tests for the experiment runner: every (backbone, method)
// cell trains and evaluates end-to-end; checkpointing round-trips.

#include "eval/experiment.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/serialize.h"

namespace adaptraj {
namespace eval {
namespace {

data::DomainGeneralizationData SmallData() {
  data::CorpusConfig cfg;
  cfg.num_scenes = 2;
  cfg.steps_per_scene = 45;
  cfg.seed = 909;
  return data::BuildDomainGeneralizationData(
      {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, cfg);
}

ExperimentConfig SmallConfig(models::BackboneKind backbone, MethodKind method) {
  ExperimentConfig cfg;
  cfg.backbone = backbone;
  cfg.method = method;
  cfg.backbone_config.embed_dim = 8;
  cfg.backbone_config.hidden_dim = 16;
  cfg.backbone_config.social_dim = 16;
  cfg.backbone_config.latent_dim = 4;
  cfg.backbone_config.langevin_steps = 2;
  cfg.train.epochs = 4;
  cfg.train.max_batches_per_epoch = 3;
  cfg.eval_samples = 3;
  return cfg;
}

TEST(MethodKindTest, NamesMatchPaper) {
  EXPECT_EQ(MethodKindName(MethodKind::kVanilla), "vanilla");
  EXPECT_EQ(MethodKindName(MethodKind::kCounter), "Counter");
  EXPECT_EQ(MethodKindName(MethodKind::kCausalMotion), "CausalMotion");
  EXPECT_EQ(MethodKindName(MethodKind::kAdapTraj), "AdapTraj");
}

TEST(MakeMethodTest, BuildsEveryKind) {
  for (auto kind : {MethodKind::kVanilla, MethodKind::kCounter,
                    MethodKind::kCausalMotion, MethodKind::kAdapTraj}) {
    auto cfg = SmallConfig(models::BackboneKind::kSeq2Seq, kind);
    auto method = MakeMethod(cfg, 2);
    ASSERT_NE(method, nullptr);
    EXPECT_EQ(method->name(), MethodKindName(kind));
  }
}

struct Cell {
  models::BackboneKind backbone;
  MethodKind method;
};

class ExperimentCellTest : public ::testing::TestWithParam<Cell> {};

TEST_P(ExperimentCellTest, RunsEndToEnd) {
  auto dgd = SmallData();
  auto cfg = SmallConfig(GetParam().backbone, GetParam().method);
  auto result = RunExperiment(dgd, cfg);
  EXPECT_TRUE(std::isfinite(result.target.ade));
  EXPECT_TRUE(std::isfinite(result.target.fde));
  EXPECT_GT(result.target.ade, 0.0f);
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_GT(result.inference_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Cells, ExperimentCellTest,
    ::testing::Values(Cell{models::BackboneKind::kPecnet, MethodKind::kVanilla},
                      Cell{models::BackboneKind::kPecnet, MethodKind::kCounter},
                      Cell{models::BackboneKind::kPecnet, MethodKind::kCausalMotion},
                      Cell{models::BackboneKind::kPecnet, MethodKind::kAdapTraj},
                      Cell{models::BackboneKind::kLbebm, MethodKind::kVanilla},
                      Cell{models::BackboneKind::kLbebm, MethodKind::kAdapTraj}),
    [](const ::testing::TestParamInfo<Cell>& info) {
      return models::BackboneKindName(info.param.backbone) +
             MethodKindName(info.param.method);
    });

TEST(CheckpointIntegrationTest, AdapTrajModelRoundTripsThroughDisk) {
  Rng rng(11);
  models::BackboneConfig bcfg;
  bcfg.embed_dim = 8;
  bcfg.hidden_dim = 16;
  bcfg.social_dim = 16;
  bcfg.latent_dim = 4;
  core::AdapTrajConfig acfg;
  acfg.num_source_domains = 2;
  acfg.feature_dim = 8;
  acfg.fused_dim = 8;
  core::AdapTrajModel original(models::BackboneKind::kPecnet, bcfg, acfg, &rng);

  const std::string path = std::string(::testing::TempDir()) + "/adaptraj_full.bin";
  ASSERT_TRUE(nn::SaveParameters(original, path).ok());

  Rng rng2(99);
  core::AdapTrajModel restored(models::BackboneKind::kPecnet, bcfg, acfg, &rng2);
  ASSERT_TRUE(nn::LoadParameters(&restored, path).ok());

  // Identical predictions after restore.
  auto dgd = SmallData();
  data::SequenceConfig seq_cfg;
  std::vector<const data::TrajectorySequence*> ptrs;
  for (int i = 0; i < 3; ++i) ptrs.push_back(&dgd.target.test.sequences[i]);
  data::Batch batch = data::MakeBatch(ptrs, seq_cfg);
  std::vector<int> labels(3, -1);

  auto enc_a = original.backbone().Encode(batch);
  auto f_a = original.ExtractFeatures(enc_a, labels);
  Rng pr_a(5);
  Tensor pa = original.backbone().Predict(batch, enc_a, f_a.Extra(), &pr_a, false);

  auto enc_b = restored.backbone().Encode(batch);
  auto f_b = restored.ExtractFeatures(enc_b, labels);
  Rng pr_b(5);
  Tensor pb = restored.backbone().Predict(batch, enc_b, f_b.Extra(), &pr_b, false);

  ASSERT_EQ(pa.size(), pb.size());
  for (int64_t i = 0; i < pa.size(); ++i) EXPECT_FLOAT_EQ(pa.flat(i), pb.flat(i));
}

TEST(InferenceTimingTest, MeasureReturnsPositiveSeconds) {
  auto dgd = SmallData();
  auto cfg = SmallConfig(models::BackboneKind::kPecnet, MethodKind::kVanilla);
  auto method = MakeMethod(cfg, 2);
  data::SequenceConfig seq_cfg;
  std::vector<const data::TrajectorySequence*> ptrs;
  for (int i = 0; i < 4; ++i) ptrs.push_back(&dgd.target.test.sequences[i]);
  data::Batch batch = data::MakeBatch(ptrs, seq_cfg);
  double secs = MeasureInferenceSeconds(*method, batch, 3, 1);
  EXPECT_GT(secs, 0.0);
  EXPECT_LT(secs, 10.0);
}

}  // namespace
}  // namespace eval
}  // namespace adaptraj
