// Tests for ADE/FDE metrics and the best-of-K protocol.

#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "eval/table.h"

namespace adaptraj {
namespace eval {
namespace {

TEST(MetricsTest, PerfectPredictionIsZeroError) {
  Tensor gt = Tensor::FromVector({1, 4}, {0.5f, 0.0f, 0.5f, 0.0f});  // 2 steps
  Metrics m = DisplacementErrors(gt, gt, 2);
  EXPECT_FLOAT_EQ(m.ade, 0.0f);
  EXPECT_FLOAT_EQ(m.fde, 0.0f);
}

TEST(MetricsTest, KnownHandComputedValues) {
  // Prediction goes right 1.0/step; truth stays still. Positions after
  // steps: (1,0), (2,0) -> errors 1, 2 -> ADE 1.5, FDE 2.
  Tensor pred = Tensor::FromVector({1, 4}, {1.0f, 0.0f, 1.0f, 0.0f});
  Tensor gt = Tensor::Zeros({1, 4});
  Metrics m = DisplacementErrors(pred, gt, 2);
  EXPECT_NEAR(m.ade, 1.5f, 1e-5);
  EXPECT_NEAR(m.fde, 2.0f, 1e-5);
}

TEST(MetricsTest, ErrorsAccumulateThroughCumsum) {
  // A single early displacement error persists in all later positions.
  Tensor pred = Tensor::FromVector({1, 6}, {1.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f});
  Tensor gt = Tensor::Zeros({1, 6});
  Metrics m = DisplacementErrors(pred, gt, 3);
  EXPECT_NEAR(m.ade, 1.0f, 1e-5);  // error 1 at every step
  EXPECT_NEAR(m.fde, 1.0f, 1e-5);
}

TEST(MetricsTest, BatchAveraging) {
  // One perfect and one offset sequence average to half the single error.
  Tensor pred = Tensor::FromVector({2, 2}, {0.0f, 0.0f, 3.0f, 4.0f});
  Tensor gt = Tensor::Zeros({2, 2});
  Metrics m = DisplacementErrors(pred, gt, 1);
  EXPECT_NEAR(m.ade, 2.5f, 1e-5);  // (0 + 5) / 2
  EXPECT_NEAR(m.fde, 2.5f, 1e-5);
}

TEST(MetricsTest, FdeNeverLessThanZeroAndAdeBounded) {
  Rng rng(4);
  Tensor pred = Tensor::Randn({5, 24}, &rng);
  Tensor gt = Tensor::Randn({5, 24}, &rng);
  Metrics m = DisplacementErrors(pred, gt, 12);
  EXPECT_GE(m.ade, 0.0f);
  EXPECT_GE(m.fde, 0.0f);
}

TEST(PerSequenceTest, VectorsSizedToBatch) {
  Tensor pred = Tensor::Zeros({3, 8});
  Tensor gt = Tensor::Zeros({3, 8});
  std::vector<float> ade;
  std::vector<float> fde;
  PerSequenceErrors(pred, gt, 4, &ade, &fde);
  EXPECT_EQ(ade.size(), 3u);
  EXPECT_EQ(fde.size(), 3u);
}

// A fake method whose sampled predictions alternate between bad and perfect:
// best-of-K must find the perfect one.
class AlternatingMethod : public core::Method {
 public:
  std::string name() const override { return "fake"; }
  void Train(const data::DomainGeneralizationData&, const core::TrainConfig&) override {}
  Tensor Predict(const data::Batch& batch, Rng* rng, bool sample) const override {
    ++calls_;
    if (!sample || calls_ % 2 == 0) return batch.fut_flat.Detach();  // perfect
    Tensor bad = batch.fut_flat.Detach();
    for (int64_t i = 0; i < bad.size(); ++i) bad.data()[i] += 1.0f;
    return bad;
  }

 private:
  mutable int calls_ = 0;
};

data::Dataset TinyEvalDataset(int n) {
  data::SequenceConfig cfg;
  data::Dataset ds;
  for (int i = 0; i < n; ++i) {
    data::TrajectorySequence s;
    for (int t = 0; t < cfg.total_len(); ++t) {
      s.focal.push_back({0.2f * static_cast<float>(t), static_cast<float>(i)});
    }
    ds.sequences.push_back(s);
  }
  return ds;
}

TEST(MinOfKTest, FindsThePerfectSample) {
  AlternatingMethod method;
  data::SequenceConfig cfg;
  Metrics m = EvaluateMinOfK(method, TinyEvalDataset(6), cfg, 4, 3, 1);
  EXPECT_NEAR(m.ade, 0.0f, 1e-6);
  EXPECT_NEAR(m.fde, 0.0f, 1e-6);
}

TEST(MinOfKTest, SingleSampleUsesDeterministicPath) {
  AlternatingMethod method;
  data::SequenceConfig cfg;
  // k=1 calls Predict with sample=false -> perfect prediction by design.
  Metrics m = EvaluateMinOfK(method, TinyEvalDataset(4), cfg, 1, 2, 1);
  EXPECT_NEAR(m.ade, 0.0f, 1e-6);
}

TEST(MinOfKTest, MoreSamplesNeverHurt) {
  // Property: best-of-8 <= best-of-2 for a stochastic method.
  class NoisyMethod : public core::Method {
   public:
    std::string name() const override { return "noisy"; }
    void Train(const data::DomainGeneralizationData&, const core::TrainConfig&) override {}
    Tensor Predict(const data::Batch& batch, Rng* rng, bool) const override {
      Tensor out = batch.fut_flat.Detach();
      for (int64_t i = 0; i < out.size(); ++i) out.data()[i] += rng->Normal(0.0f, 0.5f);
      return out;
    }
  };
  NoisyMethod method;
  data::SequenceConfig cfg;
  Metrics m2 = EvaluateMinOfK(method, TinyEvalDataset(8), cfg, 2, 4, 42);
  Metrics m8 = EvaluateMinOfK(method, TinyEvalDataset(8), cfg, 8, 4, 42);
  EXPECT_LE(m8.ade, m2.ade + 1e-5f);
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatFloat(0.9114f, 3), "0.911");
  EXPECT_EQ(FormatFloat(1.0f, 2), "1.00");
  EXPECT_EQ(FormatAdeFde(0.911f, 1.670f), "0.911/1.670");
}

}  // namespace
}  // namespace eval
}  // namespace adaptraj
