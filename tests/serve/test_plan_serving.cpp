// Execution plans under the serving engine (tensor/plan.h + tensor/plan
// telemetry in serve::InferenceEngineStats): planned serving is bit-identical
// to plans-off serving, engine stats aggregate the per-replica plan caches,
// and SwapWeights under planned traffic serves the new weights from its
// first post-flip batch — a swap can never replay a plan holding the
// pre-swap weights, because the standby clone starts with an empty cache.

#include <cstring>
#include <future>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "data/multi_domain.h"
#include "serve/inference_engine.h"
#include "tensor/parallel.h"
#include "tensor/plan.h"

namespace adaptraj {
namespace serve {
namespace {

models::BackboneConfig TinyBackbone() {
  models::BackboneConfig c;
  c.embed_dim = 8;
  c.hidden_dim = 16;
  c.social_dim = 16;
  c.latent_dim = 4;
  c.langevin_steps = 2;
  return c;
}

const data::DomainGeneralizationData& TestData() {
  static const data::DomainGeneralizationData* dgd = [] {
    data::CorpusConfig cfg;
    cfg.num_scenes = 2;
    cfg.steps_per_scene = 45;
    cfg.seed = 606;
    return new data::DomainGeneralizationData(data::BuildDomainGeneralizationData(
        {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, cfg));
  }();
  return *dgd;
}

std::vector<data::TrajectorySequence> Scenes(size_t n) {
  const auto& test = TestData().target.test.sequences;
  std::vector<data::TrajectorySequence> scenes;
  for (size_t i = 0; i < n; ++i) scenes.push_back(test[i % test.size()]);
  return scenes;
}

InferenceEngineOptions Options(int batch_size, uint64_t seed = 42) {
  InferenceEngineOptions o;
  o.batch_size = batch_size;
  o.sample = true;
  o.seed = seed;
  // This suite asserts exact plan-cache counters for the COMBINED Predict
  // path; the encoder cache reroutes serving through the split halves
  // (their own "e:"/"d:" plan keys), so pin it off here. The encoder
  // cache's plan interplay is covered by tests/serve/test_encode_cache.cpp.
  o.encode_cache = EncodeCacheMode::kOff;
  return o;
}

std::vector<std::vector<float>> Serve(const core::Method& method,
                                      const std::vector<data::TrajectorySequence>& scenes,
                                      const InferenceEngineOptions& options) {
  InferenceEngine engine(&method, options);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();
  std::vector<std::vector<float>> out;
  for (auto& f : futures) {
    Tensor t = f.get();
    out.emplace_back(t.data(), t.data() + t.size());
  }
  return out;
}

void ExpectAllEqual(const std::vector<std::vector<float>>& a,
                    const std::vector<std::vector<float>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "request " << i;
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(float)), 0)
        << "request " << i;
  }
}

class PlanServingTest : public ::testing::Test {
 protected:
  void TearDown() override { plan::SetMode(plan::Mode::kAuto); }
};

TEST_F(PlanServingTest, PlannedServingBitIdenticalToEagerServing) {
  auto scenes = Scenes(12);
  auto options = Options(/*batch_size=*/4);
  core::VanillaMethod eager_method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  core::VanillaMethod planned_method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);

  plan::SetMode(plan::Mode::kOff);
  auto eager = Serve(eager_method, scenes, options);
  plan::SetMode(plan::Mode::kOn);
  auto planned_cold = Serve(planned_method, scenes, options);  // captures
  auto planned_warm = Serve(planned_method, scenes, options);  // replays

  ExpectAllEqual(eager, planned_cold);
  ExpectAllEqual(eager, planned_warm);
  plan::CacheStats s = planned_method.plan_stats();
  EXPECT_GE(s.captures, 1);
  EXPECT_GE(s.hits, 1);
  EXPECT_GT(s.fused_steps, 0);
}

TEST_F(PlanServingTest, EngineStatsReportPlanTelemetry) {
  plan::SetMode(plan::Mode::kOn);
  auto scenes = Scenes(16);
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  InferenceEngine engine(&method, Options(/*batch_size=*/4));
  std::vector<std::future<Tensor>> futures;
  // First batch alone, drained: the capture completes before the follow-up
  // batches arrive (concurrent same-key calls would fall back to eager
  // while a capture is in flight — correct, but a nondeterministic count).
  for (size_t i = 0; i < 4; ++i) futures.push_back(engine.Submit(scenes[i]));
  engine.Drain();
  for (size_t i = 4; i < scenes.size(); ++i) futures.push_back(engine.Submit(scenes[i]));
  engine.Drain();
  for (auto& f : futures) (void)f.get();

  // Four identical full batches: one capture, three replays.
  InferenceEngineStats stats = engine.stats();
  EXPECT_EQ(stats.plan.plans, 1);
  EXPECT_EQ(stats.plan.captures, 1);
  EXPECT_EQ(stats.plan.hits, 3);
  EXPECT_GT(stats.plan.fused_steps, 0);
  EXPECT_GT(stats.plan.arena_bytes, 0);
}

TEST_F(PlanServingTest, EngineStatsSumAcrossReplicaSlots) {
  // Non-reentrant LBEBM runs on a replica pool; each slot owns a plan cache
  // whose Langevin abort registers once. The engine stats must sum them.
  plan::SetMode(plan::Mode::kOn);
  parallel::ConfigureTrainWorkers(2);
  auto scenes = Scenes(8);
  core::VanillaMethod method(models::BackboneKind::kLbebm, TinyBackbone(), 5);
  auto options = Options(/*batch_size=*/4);
  options.num_replicas = 2;
  InferenceEngine engine(&method, options);
  ASSERT_EQ(engine.num_replica_slots(), 2);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();
  for (auto& f : futures) (void)f.get();

  InferenceEngineStats stats = engine.stats();
  EXPECT_EQ(stats.plan.plans, 0);     // LBEBM is unplannable on every slot
  EXPECT_EQ(stats.plan.aborted, 2);   // one abort per replica slot
}

TEST_F(PlanServingTest, SwapWeightsUnderPlannedServingServesNewWeights) {
  plan::SetMode(plan::Mode::kOn);
  core::VanillaMethod old_weights(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  core::VanillaMethod new_weights(models::BackboneKind::kSeq2Seq, TinyBackbone(), 77);
  auto scenes = Scenes(8);
  auto options = Options(/*batch_size=*/4);

  // Warm both methods' plan caches so the swap happens under fully planned
  // traffic — the old plan holds the OLD weights packed into its GEMM steps.
  auto ref_old = Serve(old_weights, scenes, options);
  auto ref_new = Serve(new_weights, scenes, options);
  ASSERT_GE(old_weights.plan_stats().captures, 1);
  ASSERT_GE(new_weights.plan_stats().captures, 1);

  InferenceEngine engine(&old_weights, options);
  std::vector<std::future<Tensor>> futures;
  for (size_t i = 0; i < 4; ++i) futures.push_back(engine.Submit(scenes[i]));
  engine.Drain();  // batch 0: replayed from old_weights' warm plan
  EXPECT_GE(engine.stats().plan.hits, 1);

  engine.SwapWeights(new_weights);
  for (size_t i = 4; i < 8; ++i) futures.push_back(engine.Submit(scenes[i]));
  engine.Drain();

  std::vector<std::vector<float>> got;
  for (auto& f : futures) {
    Tensor t = f.get();
    got.emplace_back(t.data(), t.data() + t.size());
  }
  // Pre-swap rows match the old weights; post-swap rows match the NEW
  // weights bit-for-bit. If the flip had carried the old plan cache across,
  // the post-swap batch would replay stale packed weights and diverge.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(std::memcmp(got[i].data(), ref_old[i].data(),
                          got[i].size() * sizeof(float)),
              0)
        << "pre-swap row " << i;
  }
  for (size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(std::memcmp(got[i].data(), ref_new[i].data(),
                          got[i].size() * sizeof(float)),
              0)
        << "post-swap row " << i;
  }

  // The served instance is now the standby clone: its cache started empty
  // and captured the post-swap batch itself.
  InferenceEngineStats stats = engine.stats();
  EXPECT_EQ(stats.weight_swaps, 1);
  EXPECT_GE(stats.plan.captures, 1);
}

}  // namespace
}  // namespace adaptraj
}  // namespace serve
