// Tests for serve::InferenceEngine: batching semantics (fixed width, padded
// tails, deterministic request->slot order), correctness against the
// reference batched Predict, byte-identical results across worker counts and
// submission interleavings (including explicit out-of-order ids), and the
// non-reentrant (LBEBM) path. These tests predate the async rewrite and pin
// the PR-4 synchronous semantics the async engine must reproduce bit-for-bit
// (same slot->batch mapping, per-batch noise streams, padded-tail
// composition). Async-specific behaviour lives in test_async_engine.cpp.

#include <cstring>
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptraj_method.h"
#include "core/baselines.h"
#include "core/parallel_trainer.h"
#include "data/multi_domain.h"
#include "serve/inference_engine.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace serve {
namespace {

models::BackboneConfig TinyBackbone() {
  models::BackboneConfig c;
  c.embed_dim = 8;
  c.hidden_dim = 16;
  c.social_dim = 16;
  c.latent_dim = 4;
  c.langevin_steps = 2;
  return c;
}

const data::DomainGeneralizationData& TestData() {
  static const data::DomainGeneralizationData* dgd = [] {
    data::CorpusConfig cfg;
    cfg.num_scenes = 2;
    cfg.steps_per_scene = 45;
    cfg.seed = 606;
    return new data::DomainGeneralizationData(data::BuildDomainGeneralizationData(
        {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, cfg));
  }();
  return *dgd;
}

std::vector<data::TrajectorySequence> Scenes(size_t n) {
  const auto& test = TestData().target.test.sequences;
  std::vector<data::TrajectorySequence> scenes;
  for (size_t i = 0; i < n; ++i) scenes.push_back(test[i % test.size()]);
  return scenes;
}

InferenceEngineOptions Options(int batch_size, uint64_t seed = 42) {
  InferenceEngineOptions o;
  o.batch_size = batch_size;
  o.sample = true;
  o.seed = seed;
  return o;
}

/// Runs every scene through an engine and returns the flattened per-request
/// predictions in submission order.
std::vector<std::vector<float>> Serve(const core::Method& method,
                                      const std::vector<data::TrajectorySequence>& scenes,
                                      const InferenceEngineOptions& options) {
  InferenceEngine engine(&method, options);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();
  std::vector<std::vector<float>> out;
  for (auto& f : futures) {
    Tensor t = f.get();
    out.emplace_back(t.data(), t.data() + t.size());
  }
  return out;
}

void ExpectAllEqual(const std::vector<std::vector<float>>& a,
                    const std::vector<std::vector<float>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "request " << i;
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(float)), 0)
        << "request " << i;
  }
}

// --- Correctness against the reference batched Predict ----------------------

TEST(InferenceEngineTest, FullBatchMatchesDirectPredict) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto scenes = Scenes(8);
  auto options = Options(/*batch_size=*/8);
  auto served = Serve(method, scenes, options);

  // Reference: one batch at slot order 0..7 with the batch-0 noise stream.
  data::SequenceConfig seq_cfg;
  std::vector<const data::TrajectorySequence*> ptrs;
  for (const auto& s : scenes) ptrs.push_back(&s);
  data::Batch batch = data::MakeBatch(ptrs, seq_cfg);
  Rng rng(core::TaskSeed(options.seed, 0));
  Tensor pred = method.Predict(batch, &rng, /*sample=*/true);
  const int64_t cols = pred.size(-1);
  ASSERT_EQ(served.size(), 8u);
  for (int64_t r = 0; r < 8; ++r) {
    ASSERT_EQ(static_cast<int64_t>(served[r].size()), cols);
    EXPECT_EQ(std::memcmp(served[r].data(), pred.data() + r * cols,
                          cols * sizeof(float)),
              0)
        << "row " << r;
  }
}

TEST(InferenceEngineTest, PartialTailIsPaddedAndMatchesPaddedReference) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto scenes = Scenes(3);
  auto options = Options(/*batch_size=*/8);
  InferenceEngine engine(&method, options);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  EXPECT_EQ(engine.stats().batches, 0);  // nothing full yet
  engine.Drain();
  EXPECT_EQ(engine.stats().batches, 1);
  EXPECT_EQ(engine.stats().padded_rows, 5);

  // Reference: the same 3 scenes cycled up to width 8.
  data::SequenceConfig seq_cfg;
  std::vector<const data::TrajectorySequence*> ptrs;
  for (int i = 0; i < 8; ++i) ptrs.push_back(&scenes[i % scenes.size()]);
  data::Batch batch = data::MakeBatch(ptrs, seq_cfg);
  Rng rng(core::TaskSeed(options.seed, 0));
  Tensor pred = method.Predict(batch, &rng, /*sample=*/true);
  const int64_t cols = pred.size(-1);
  for (size_t r = 0; r < futures.size(); ++r) {
    Tensor t = futures[r].get();
    EXPECT_EQ(std::memcmp(t.data(), pred.data() + static_cast<int64_t>(r) * cols,
                          cols * sizeof(float)),
              0)
        << "row " << r;
  }
}

TEST(InferenceEngineTest, SubmitAfterDrainStartsAFreshBatch) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto options = Options(/*batch_size=*/4);
  InferenceEngine engine(&method, options);
  auto scenes = Scenes(6);
  for (int i = 0; i < 2; ++i) engine.Submit(scenes[i]);
  engine.Drain();  // padded tail consumes batch 0's whole slot range
  std::vector<std::future<Tensor>> futures;
  for (int i = 2; i < 6; ++i) futures.push_back(engine.Submit(scenes[i]));
  engine.Drain();
  EXPECT_EQ(engine.stats().batches, 2);
  EXPECT_EQ(engine.stats().requests, 6);
  for (auto& f : futures) {
    Tensor t = f.get();
    EXPECT_EQ(t.shape()[0], 1);
  }
}

// --- Determinism -------------------------------------------------------------

TEST(InferenceEngineTest, ResultsByteIdenticalAcrossWorkerCounts) {
  core::AdapTrajConfig acfg;
  acfg.feature_dim = 8;
  acfg.fused_dim = 8;
  acfg.num_source_domains = 2;
  core::AdapTrajMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), acfg, 5);
  auto scenes = Scenes(20);  // 2 full batches of 8 + padded tail of 4
  auto options = Options(/*batch_size=*/8);

  parallel::ConfigureTrainWorkers(1);
  auto w1 = Serve(method, scenes, options);
  parallel::ConfigureTrainWorkers(2);
  auto w2 = Serve(method, scenes, options);
  parallel::ConfigureTrainWorkers(4);
  auto w4 = Serve(method, scenes, options);
  parallel::ConfigureTrainWorkers(1);

  ExpectAllEqual(w1, w2);
  ExpectAllEqual(w1, w4);
}

TEST(InferenceEngineTest, ResultsIndependentOfDrainInterleaving) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto scenes = Scenes(16);
  auto options = Options(/*batch_size=*/8);

  auto all_at_once = Serve(method, scenes, options);

  // Same stream under different dispatch cadences: eager (every full batch
  // executes as soon as it completes) vs lazy (everything waits for Drain).
  // The slot->batch mapping is identical, so the bytes must be too.
  auto opts_eager = options;
  opts_eager.max_buffered_batches = 1;  // dispatch every full batch eagerly
  auto eager = Serve(method, scenes, opts_eager);
  auto opts_lazy = options;
  opts_lazy.max_buffered_batches = 8;  // everything waits for the drain
  auto lazy = Serve(method, scenes, opts_lazy);

  ExpectAllEqual(all_at_once, eager);
  ExpectAllEqual(all_at_once, lazy);
}

TEST(InferenceEngineTest, OutOfOrderArrivalByteIdenticalToInOrder) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto scenes = Scenes(16);
  auto options = Options(/*batch_size=*/8);

  auto in_order = Serve(method, scenes, options);

  // Reversed wire order with explicit slot ids: the engine must hold every
  // batch until its slots are complete, then compute exactly the same thing.
  InferenceEngine engine(&method, options);
  std::vector<std::future<Tensor>> futures(scenes.size());
  for (size_t i = scenes.size(); i-- > 0;) {
    futures[i] = engine.Submit(static_cast<uint64_t>(i), scenes[i]);
  }
  engine.Drain();
  std::vector<std::vector<float>> reordered;
  for (auto& f : futures) {
    Tensor t = f.get();
    reordered.emplace_back(t.data(), t.data() + t.size());
  }
  ExpectAllEqual(in_order, reordered);
}

TEST(InferenceEngineTest, RepeatRunsAreByteIdentical) {
  core::VanillaMethod method(models::BackboneKind::kPecnet, TinyBackbone(), 5);
  auto scenes = Scenes(10);
  auto options = Options(/*batch_size=*/4);
  ExpectAllEqual(Serve(method, scenes, options), Serve(method, scenes, options));
}

// --- Non-reentrant methods ---------------------------------------------------

TEST(InferenceEngineTest, LbebmServesSeriallyAndDeterministically) {
  core::VanillaMethod method(models::BackboneKind::kLbebm, TinyBackbone(), 5);
  ASSERT_FALSE(method.reentrant_predict());
  auto scenes = Scenes(6);
  auto options = Options(/*batch_size=*/4);

  parallel::ConfigureTrainWorkers(4);
  auto w4 = Serve(method, scenes, options);
  parallel::ConfigureTrainWorkers(1);
  auto w1 = Serve(method, scenes, options);
  ExpectAllEqual(w1, w4);
}

// --- API misuse --------------------------------------------------------------

TEST(InferenceEngineDeathTest, DuplicateRequestIdDies) {
  // The engine owns a live dispatcher thread, so the default fork()-based
  // death test could inherit a locked mutex; re-exec instead.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto scenes = Scenes(1);
  InferenceEngine engine(&method, Options(/*batch_size=*/4));
  engine.Submit(7, scenes[0]);
  EXPECT_DEATH(engine.Submit(7, scenes[0]), "duplicate request id");
}

TEST(InferenceEngineDeathTest, DrainWithSlotGapDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto scenes = Scenes(1);
  InferenceEngine engine(&method, Options(/*batch_size=*/4));
  engine.Submit(2, scenes[0]);  // slots 0 and 1 never arrive
  EXPECT_DEATH(engine.Drain(), "missing request ids");
}

}  // namespace
}  // namespace serve
}  // namespace adaptraj
