// Chaos suite: the engine under injected faults and lifecycle races. The
// invariants under test are the robustness acceptance bar — non-faulted
// requests stay byte-identical to a fault-free run, faulted/expired/stopped
// requests fail with the right typed error, and no future is ever broken —
// under concurrent producers, replica pools, and destruction races. CI
// loops this binary under TSan and ASan (the stress-serve job).

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "data/multi_domain.h"
#include "serve/errors.h"
#include "serve/fault_injection.h"
#include "serve/inference_engine.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace serve {
namespace {

models::BackboneConfig TinyBackbone() {
  models::BackboneConfig c;
  c.embed_dim = 8;
  c.hidden_dim = 16;
  c.social_dim = 16;
  c.latent_dim = 4;
  c.langevin_steps = 2;
  return c;
}

const data::DomainGeneralizationData& TestData() {
  static const data::DomainGeneralizationData* dgd = [] {
    data::CorpusConfig cfg;
    cfg.num_scenes = 2;
    cfg.steps_per_scene = 45;
    cfg.seed = 909;
    return new data::DomainGeneralizationData(data::BuildDomainGeneralizationData(
        {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, cfg));
  }();
  return *dgd;
}

std::vector<data::TrajectorySequence> Scenes(size_t n) {
  const auto& test = TestData().target.test.sequences;
  std::vector<data::TrajectorySequence> scenes;
  for (size_t i = 0; i < n; ++i) scenes.push_back(test[i % test.size()]);
  return scenes;
}

InferenceEngineOptions Options(int batch_size, uint64_t seed = 42) {
  InferenceEngineOptions o;
  o.batch_size = batch_size;
  o.sample = true;
  o.seed = seed;
  return o;
}

std::vector<std::vector<float>> FaultFreeReference(
    const core::Method& method, const std::vector<data::TrajectorySequence>& scenes,
    const InferenceEngineOptions& options) {
  InferenceEngine engine(&method, options);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();
  std::vector<std::vector<float>> out;
  for (auto& f : futures) {
    Tensor t = f.get();
    out.emplace_back(t.data(), t.data() + t.size());
  }
  return out;
}

/// Submits scenes[0, n) with explicit slot ids from `producers` threads
/// (thread p takes i = p, p+P, ...), then joins — the chaos-side twin of
/// eval::SubmitScenesConcurrently without the eval dependency.
void SubmitConcurrently(InferenceEngine* engine,
                        const std::vector<data::TrajectorySequence>& scenes,
                        int producers, std::vector<std::future<Tensor>>* futures) {
  futures->resize(scenes.size());
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (size_t i = static_cast<size_t>(p); i < scenes.size();
           i += static_cast<size_t>(producers)) {
        (*futures)[i] = engine->Submit(static_cast<uint64_t>(i), scenes[i]);
      }
    });
  }
  for (auto& t : threads) t.join();
}

/// Blockable method for lifecycle races (same shape as test_slo's gate).
struct GateState {
  std::mutex mu;
  std::condition_variable cv;
  int entered = 0;
  bool released = true;
};

class GatedMethod : public core::Method {
 public:
  explicit GatedMethod(std::shared_ptr<GateState> state) : state_(std::move(state)) {}
  std::string name() const override { return "gated"; }
  void Train(const data::DomainGeneralizationData&, const core::TrainConfig&) override {}
  bool reentrant_predict() const override { return true; }
  std::unique_ptr<core::Method> CloneForServing() const override { return nullptr; }
  Tensor Predict(const data::Batch& batch, Rng*, bool) const override {
    std::unique_lock<std::mutex> lock(state_->mu);
    ++state_->entered;
    state_->cv.notify_all();
    state_->cv.wait(lock, [this] { return state_->released; });
    return batch.obs_flat;
  }

 private:
  std::shared_ptr<GateState> state_;
};

// --- Seeded schedules --------------------------------------------------------

TEST(FaultScheduleTest, SeededScheduleIsDeterministicAndRateBounded) {
  const auto a = MakeSeededFaultSchedule(7, 1000, 0.1, FaultKind::kThrow);
  const auto b = MakeSeededFaultSchedule(7, 1000, 0.1, FaultKind::kThrow);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& entry : a) EXPECT_EQ(b.count(entry.first), 1u);
  // ~10% of 1000 calls fault; a different seed picks different calls.
  EXPECT_GT(a.size(), 50u);
  EXPECT_LT(a.size(), 200u);
  const auto c = MakeSeededFaultSchedule(8, 1000, 0.1, FaultKind::kThrow);
  std::vector<int64_t> a_calls, c_calls;
  for (const auto& entry : a) a_calls.push_back(entry.first);
  for (const auto& entry : c) c_calls.push_back(entry.first);
  EXPECT_NE(a_calls, c_calls) << "different seeds picked identical fault calls";
  EXPECT_TRUE(MakeSeededFaultSchedule(7, 1000, 0.0, FaultKind::kThrow).empty());
  EXPECT_EQ(MakeSeededFaultSchedule(7, 1000, 1.0, FaultKind::kThrow).size(), 1000u);
}

// --- Throw faults ------------------------------------------------------------

TEST(ChaosTest, ThrowFaultsUnderFourProducersLeaveNonFaultedBytesIntact) {
  core::VanillaMethod inner(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  const size_t n = 40;
  const int batch = 4;  // 10 batches
  auto scenes = Scenes(n);
  auto options = Options(batch);
  const auto reference = FaultFreeReference(inner, scenes, options);

  // force_serialized (the default) makes the wrapper non-reentrant and
  // unclonable, so the engine serializes batches and call index == batch
  // index: batches 2 and 5 fault, deterministically.
  FaultSchedule schedule;
  schedule.emplace(2, FaultSpec{FaultKind::kThrow, 0});
  schedule.emplace(5, FaultSpec{FaultKind::kThrow, 0});
  FaultInjectingMethod chaotic(&inner, schedule);

  InferenceEngine engine(&chaotic, options);
  std::vector<std::future<Tensor>> futures;
  SubmitConcurrently(&engine, scenes, /*producers=*/4, &futures);
  engine.Drain();

  for (size_t i = 0; i < n; ++i) {
    const size_t b = i / static_cast<size_t>(batch);
    if (b == 2 || b == 5) {
      try {
        futures[i].get();
        FAIL() << "request " << i << " in faulted batch " << b << " returned a value";
      } catch (const FaultInjectedError& e) {
        EXPECT_NE(std::string(e.what()).find("injected fault"), std::string::npos);
      } catch (const std::future_error&) {
        FAIL() << "request " << i << " saw a broken promise instead of the fault";
      }
    } else {
      Tensor t = futures[i].get();
      ASSERT_EQ(static_cast<size_t>(t.size()), reference[i].size()) << "request " << i;
      EXPECT_EQ(std::memcmp(t.data(), reference[i].data(),
                            reference[i].size() * sizeof(float)),
                0)
          << "non-faulted request " << i << " diverged from the fault-free run";
    }
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.batches, 10);
  EXPECT_EQ(stats.failed_batches, 2);
  EXPECT_EQ(chaotic.faults_injected(), 2);
}

// --- Sleep faults (wedged batch) ---------------------------------------------

TEST(ChaosTest, SleepFaultTripsWatchdogWhileQueuedDeadlinesStillExpire) {
  core::VanillaMethod inner(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  FaultSchedule schedule;
  schedule.emplace(0, FaultSpec{FaultKind::kSleep, 300});  // batch 0 wedges
  FaultInjectingMethod chaotic(&inner, schedule);

  auto options = Options(/*batch_size=*/2);
  options.max_buffered_batches = 1;
  options.stuck_batch_warn_ms = 30;
  std::atomic<int> stuck_reports{0};
  options.on_stuck_batch = [&](int64_t) { ++stuck_reports; };

  InferenceEngine engine(&chaotic, options);
  auto scenes = Scenes(3);
  std::vector<std::future<Tensor>> wedged;
  wedged.push_back(engine.Submit(scenes[0]));
  wedged.push_back(engine.Submit(scenes[1]));
  // Fence: wait until the wedged batch is actually in flight, so the
  // deadlined request below is queued BEHIND it, not into it.
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (engine.stats().inflight_batches == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(engine.stats().inflight_batches, 0) << "wedged batch never started";

  SubmitOptions deadline;
  deadline.timeout_ms = 40;
  std::future<Tensor> doomed = engine.Submit(scenes[2], deadline);
  // The dispatcher is asleep inside the faulted batch for ~300ms; only the
  // watchdog can honor this 40ms deadline.
  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(10)), std::future_status::ready)
      << "deadline behind the wedged batch never expired";
  EXPECT_THROW(doomed.get(), DeadlineExceededError);

  // The wedged batch itself completes normally (sleep, then predict).
  for (auto& f : wedged) EXPECT_EQ(f.get().shape()[0], 1);
  engine.Drain();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.expired_requests, 1);
  EXPECT_GE(stats.stuck_batches, 1);
  EXPECT_GE(stuck_reports.load(), 1);
  EXPECT_EQ(stats.failed_batches, 0);
}

// --- NaN faults --------------------------------------------------------------

TEST(ChaosTest, NaNFaultPoisonsOnlyItsOwnBatch) {
  core::VanillaMethod inner(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  const size_t n = 12;
  const int batch = 4;  // 3 batches; batch 1 NaNs
  auto scenes = Scenes(n);
  auto options = Options(batch);
  const auto reference = FaultFreeReference(inner, scenes, options);

  FaultSchedule schedule;
  schedule.emplace(1, FaultSpec{FaultKind::kNaN, 0});
  FaultInjectingMethod chaotic(&inner, schedule);

  InferenceEngine engine(&chaotic, options);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();

  for (size_t i = 0; i < n; ++i) {
    Tensor t = futures[i].get();  // a VALUE fault: futures still deliver
    const size_t b = i / static_cast<size_t>(batch);
    if (b == 1) {
      for (int64_t k = 0; k < t.size(); ++k) {
        ASSERT_TRUE(std::isnan(t.data()[k])) << "request " << i << " element " << k;
      }
    } else {
      // The NaN fault forwards to the real Predict first, so the rng stream
      // advances exactly as fault-free and neighbouring batches keep their
      // bytes.
      EXPECT_EQ(std::memcmp(t.data(), reference[i].data(),
                            reference[i].size() * sizeof(float)),
                0)
          << "batch " << b << " was poisoned by batch 1's NaN fault";
    }
  }
  EXPECT_EQ(engine.stats().failed_batches, 0);
}

// --- Replica pool under faults -----------------------------------------------

TEST(ChaosTest, ReplicaThatServedAFaultedBatchIsReusedCleanly) {
  parallel::ConfigureTrainWorkers(2);
  core::VanillaMethod inner(models::BackboneKind::kLbebm, TinyBackbone(), 5);
  ASSERT_FALSE(inner.reentrant_predict());
  // force_serialized=false: the wrapper clones (sharing the fault counter),
  // so the engine builds a replica pool OVER the fault injector. With 6
  // batches on 2 replicas, the faulted replica must serve later waves too.
  FaultSchedule schedule;
  schedule.emplace(2, FaultSpec{FaultKind::kThrow, 0});  // 3rd Predict call, mid-wave
  FaultInjectingMethod chaotic(&inner, schedule, /*force_serialized=*/false);

  const size_t n = 12;
  const int batch = 2;  // 6 batches -> 3 waves of 2 on 2 replicas
  auto scenes = Scenes(n);
  auto options = Options(batch);
  options.num_replicas = 2;
  options.max_buffered_batches = 6;  // one group: all 6 batches, 3 waves

  InferenceEngine engine(&chaotic, options);
  EXPECT_EQ(engine.num_replica_slots(), 2);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();

  // Exactly one batch faulted (which one depends on the wave's internal
  // race for call indices — irrelevant: the invariant is containment).
  std::vector<size_t> failed_requests;
  for (size_t i = 0; i < n; ++i) {
    try {
      Tensor t = futures[i].get();
      EXPECT_EQ(t.shape()[0], 1);
    } catch (const FaultInjectedError&) {
      failed_requests.push_back(i);
    } catch (const std::future_error&) {
      FAIL() << "request " << i << " saw a broken promise";
    }
  }
  ASSERT_EQ(failed_requests.size(), static_cast<size_t>(batch))
      << "the fault leaked beyond one batch";
  EXPECT_EQ(failed_requests[0] / static_cast<size_t>(batch),
            failed_requests[1] / static_cast<size_t>(batch))
      << "failed requests span two batches";
  EXPECT_EQ(chaotic.faults_injected(), 1);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.batches, 6);
  EXPECT_EQ(stats.failed_batches, 1);
  // The replica that threw served at least one later batch: with batch b
  // pinned to replica b % 2 and 6 batches, every replica serves 3 batches —
  // all non-faulted ones succeeded above, so reuse after the fault is clean.
  parallel::ConfigureTrainWorkers(1);
}

// --- Lifecycle races ---------------------------------------------------------

TEST(ChaosTest, DestroyDuringDrainWakesTheDrainerWithTypedError) {
  auto state = std::make_shared<GateState>();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->released = false;
  }
  auto method = std::make_unique<GatedMethod>(state);
  auto options = Options(/*batch_size=*/2);
  options.max_buffered_batches = 1;
  auto engine = std::make_unique<InferenceEngine>(method.get(), options);

  auto scenes = Scenes(2);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine->Submit(s));
  {
    std::unique_lock<std::mutex> lock(state->mu);
    ASSERT_TRUE(state->cv.wait_for(lock, std::chrono::seconds(10),
                                   [&] { return state->entered >= 1; }));
  }

  std::atomic<bool> drain_threw_typed{false};
  // Capture the raw pointer up front: the drainer must not touch the
  // unique_ptr object itself, which the destroyer thread reset()s. The
  // engine's own contract keeps the raw pointer valid until Drain returns
  // (the destructor waits for blocked callers to leave before freeing).
  InferenceEngine* raw = engine.get();
  std::thread drainer([&, raw] {
    try {
      raw->Drain();
    } catch (const EngineStoppedError&) {
      drain_threw_typed.store(true);
    } catch (...) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // drainer parks

  std::thread destroyer([&] { engine.reset(); });
  // The destructor must first wake the drainer (Shutdown) and wait for it to
  // leave, then wait for the in-flight batch — which we still hold wedged.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->released = true;
  }
  state->cv.notify_all();
  drainer.join();
  destroyer.join();
  EXPECT_TRUE(drain_threw_typed.load())
      << "Drain was not woken with EngineStoppedError by destruction";
  // The in-flight batch still delivered its results through the teardown.
  for (auto& f : futures) EXPECT_EQ(f.get().shape()[0], 1);
}

TEST(ChaosTest, SubmitRacingDestructionNeverBreaksAFuture) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto scenes = Scenes(8);
  for (int round = 0; round < 10; ++round) {
    auto options = Options(/*batch_size=*/2, /*seed=*/42 + static_cast<uint64_t>(round));
    options.max_buffered_batches = 1;
    std::vector<std::vector<std::future<Tensor>>> per_thread(4);
    {
      InferenceEngine engine(&method, options);
      std::vector<std::thread> producers;
      for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&, p] {
          for (int i = 0; i < 8; ++i) {
            // Implicit ids: producers race each other AND the shutdown below.
            per_thread[static_cast<size_t>(p)].push_back(
                engine.Submit(scenes[static_cast<size_t>(i)]));
          }
        });
      }
      // Stagger the stop across rounds to move the race window around.
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
      engine.Shutdown();
      for (auto& t : producers) t.join();
      // Destructor runs here, racing nothing: producers are done.
    }
    for (auto& futures : per_thread) {
      for (auto& f : futures) {
        ASSERT_TRUE(f.valid());
        try {
          Tensor t = f.get();
          EXPECT_EQ(t.shape()[0], 1);  // served before the stop landed
        } catch (const EngineStoppedError&) {
          // stopped in the queue, or rejected at Submit — both typed.
        } catch (const std::future_error&) {
          FAIL() << "round " << round << ": broken promise during shutdown race";
        }
      }
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace adaptraj
