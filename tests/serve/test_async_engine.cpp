// Tests for the async engine machinery added on top of the PR-4 batching
// semantics: thread-safe non-blocking Submit (no execution on the caller
// thread), lossless error delivery (Predict exceptions reach exactly the
// failed batch's futures; destruction fails — not breaks — pending
// promises), the max_batch_delay_ms deadline flush, multi-producer
// bit-identity, the replica pool for non-reentrant methods, and the
// per-request result-storage audit.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptraj_method.h"
#include "core/baselines.h"
#include "core/parallel_trainer.h"
#include "data/multi_domain.h"
#include "serve/inference_engine.h"
#include "serve/replica_pool.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace serve {
namespace {

models::BackboneConfig TinyBackbone() {
  models::BackboneConfig c;
  c.embed_dim = 8;
  c.hidden_dim = 16;
  c.social_dim = 16;
  c.latent_dim = 4;
  c.langevin_steps = 2;
  return c;
}

const data::DomainGeneralizationData& TestData() {
  static const data::DomainGeneralizationData* dgd = [] {
    data::CorpusConfig cfg;
    cfg.num_scenes = 2;
    cfg.steps_per_scene = 45;
    cfg.seed = 909;
    return new data::DomainGeneralizationData(data::BuildDomainGeneralizationData(
        {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, cfg));
  }();
  return *dgd;
}

std::vector<data::TrajectorySequence> Scenes(size_t n) {
  const auto& test = TestData().target.test.sequences;
  std::vector<data::TrajectorySequence> scenes;
  for (size_t i = 0; i < n; ++i) scenes.push_back(test[i % test.size()]);
  return scenes;
}

InferenceEngineOptions Options(int batch_size, uint64_t seed = 42) {
  InferenceEngineOptions o;
  o.batch_size = batch_size;
  o.sample = true;
  o.seed = seed;
  return o;
}

std::vector<std::vector<float>> Collect(std::vector<std::future<Tensor>>* futures) {
  std::vector<std::vector<float>> out;
  for (auto& f : *futures) {
    Tensor t = f.get();
    out.emplace_back(t.data(), t.data() + t.size());
  }
  return out;
}

std::vector<std::vector<float>> Serve(const core::Method& method,
                                      const std::vector<data::TrajectorySequence>& scenes,
                                      const InferenceEngineOptions& options) {
  InferenceEngine engine(&method, options);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();
  return Collect(&futures);
}

void ExpectAllEqual(const std::vector<std::vector<float>>& a,
                    const std::vector<std::vector<float>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "request " << i;
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(float)), 0)
        << "request " << i;
  }
}

// --- Instrumented mock method ------------------------------------------------

/// Shared across a mock and its serving clones: concurrency accounting, the
/// block/release latch, and the executing-thread record.
struct MockState {
  std::mutex mu;
  std::condition_variable cv;
  int active = 0;           // Predict calls currently in flight (all instances)
  int entered = 0;          // Predict calls ever started (monotonic)
  int max_concurrent = 0;
  bool released = true;     // block_until_released waits for this
  int instance_overlap = 0; // same-instance concurrent entries (must stay 0)
  std::set<std::thread::id> predict_threads;
};

/// Configurable Method: returns obs_flat (so results are deterministic per
/// scene), can throw on poisoned scenes, block until released, rendezvous
/// with a concurrent peer, and report itself non-reentrant/clonable.
class MockMethod : public core::Method {
 public:
  MockMethod(std::shared_ptr<MockState> state, bool reentrant, bool clonable)
      : state_(std::move(state)), reentrant_(reentrant), clonable_(clonable) {}

  std::string name() const override { return "mock"; }
  void Train(const data::DomainGeneralizationData&, const core::TrainConfig&) override {}
  bool reentrant_predict() const override { return reentrant_; }

  std::unique_ptr<core::Method> CloneForServing() const override {
    if (!clonable_) return nullptr;
    auto clone = std::make_unique<MockMethod>(state_, reentrant_, clonable_);
    clone->wait_for_peer_ = wait_for_peer_;
    clone->block_until_released_ = block_until_released_;
    return clone;
  }

  Tensor Predict(const data::Batch& batch, Rng*, bool) const override {
    const int self_entries = ++active_on_this_instance_;
    {
      std::unique_lock<std::mutex> lock(state_->mu);
      if (self_entries > 1) ++state_->instance_overlap;
      state_->predict_threads.insert(std::this_thread::get_id());
      ++state_->active;
      ++state_->entered;
      state_->max_concurrent = std::max(state_->max_concurrent, state_->active);
      state_->cv.notify_all();
      if (wait_for_peer_) {
        // Rendezvous on the monotonic entered-count: the first call cannot
        // leave Predict until a second one has started, so success proves
        // two calls overlapped in time. Bounded wait: if batches are
        // serialized the first call times out, the second enters alone, and
        // the max_concurrent assertion reports the serialization.
        state_->cv.wait_for(lock, std::chrono::seconds(2),
                            [this] { return state_->entered >= 2; });
      }
      if (block_until_released_) {
        state_->cv.wait(lock, [this] { return state_->released; });
      }
      --state_->active;
    }
    --active_on_this_instance_;
    const float* row = batch.obs_flat.data();
    const int64_t n = batch.obs_flat.size();
    for (int64_t i = 0; i < n; ++i) {
      if (row[i] > 1e5f || row[i] < -1e5f) {
        throw std::runtime_error("mock Predict failure: poisoned scene");
      }
    }
    return batch.obs_flat;
  }

  void set_wait_for_peer(bool v) { wait_for_peer_ = v; }
  void set_block_until_released(bool v) { block_until_released_ = v; }

 private:
  std::shared_ptr<MockState> state_;
  bool reentrant_;
  bool clonable_;
  bool wait_for_peer_ = false;
  bool block_until_released_ = false;
  mutable std::atomic<int> active_on_this_instance_{0};
};

/// A scene whose first observed displacement is absurd; MockMethod throws on
/// any batch containing one.
data::TrajectorySequence PoisonedScene() {
  data::TrajectorySequence s = Scenes(1)[0];
  s.focal[1].x += 1e6f;
  return s;
}

// --- Error delivery ----------------------------------------------------------

TEST(AsyncEngineErrorTest, PredictExceptionReachesExactlyTheFailedBatch) {
  auto state = std::make_shared<MockState>();
  MockMethod method(state, /*reentrant=*/true, /*clonable=*/false);
  auto options = Options(/*batch_size=*/4);

  InferenceEngine engine(&method, options);
  std::vector<std::future<Tensor>> futures;
  // Batch 0: all poisoned. Batch 1: clean.
  data::TrajectorySequence poison = PoisonedScene();
  auto clean = Scenes(8);
  for (int i = 0; i < 4; ++i) futures.push_back(engine.Submit(poison));
  for (int i = 0; i < 4; ++i) futures.push_back(engine.Submit(clean[i]));
  engine.Drain();

  // The failed batch's futures rethrow the ORIGINAL exception — never a
  // context-free broken_promise.
  for (int i = 0; i < 4; ++i) {
    try {
      futures[i].get();
      FAIL() << "future " << i << " should have thrown";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("poisoned scene"), std::string::npos);
    } catch (const std::future_error&) {
      FAIL() << "future " << i << " died with broken_promise";
    }
  }
  // The later batch is unaffected.
  for (int i = 4; i < 8; ++i) {
    Tensor t = futures[i].get();
    EXPECT_EQ(t.shape()[0], 1);
  }
  auto stats = engine.stats();
  EXPECT_EQ(stats.batches, 2);
  EXPECT_EQ(stats.failed_batches, 1);

  // The failed batch's slots are retired: the engine keeps serving.
  std::vector<std::future<Tensor>> more;
  for (int i = 0; i < 4; ++i) more.push_back(engine.Submit(clean[4 + i % 4]));
  engine.Drain();
  for (auto& f : more) EXPECT_EQ(f.get().shape()[0], 1);
  EXPECT_EQ(engine.stats().batches, 3);
}

TEST(AsyncEngineErrorTest, DestructionFailsPendingFuturesDescriptively) {
  auto state = std::make_shared<MockState>();
  auto scenes = Scenes(2);
  std::future<Tensor> orphan;
  {
    MockMethod method(state, /*reentrant=*/true, /*clonable=*/false);
    InferenceEngine engine(&method, Options(/*batch_size=*/8));
    orphan = engine.Submit(scenes[0]);  // underfull batch, never drained
  }
  try {
    orphan.get();
    FAIL() << "future should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("destroyed"), std::string::npos);
  } catch (const std::future_error&) {
    FAIL() << "destruction must fail promises, not break them";
  }
}

TEST(AsyncEngineErrorTest, LateExplicitIdAfterDeadlineFlushRejectedViaFuture) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto options = Options(/*batch_size=*/2);
  options.max_batch_delay_ms = 5;
  InferenceEngine engine(&method, options);
  auto scenes = Scenes(2);

  // A lone request at slot 0; the deadline flush pads batch 0 and thereby
  // consumes slot 1 on a timer the producer cannot observe.
  std::future<Tensor> f0 = engine.Submit(0, scenes[0]);
  ASSERT_EQ(f0.wait_for(std::chrono::seconds(10)), std::future_status::ready);
  // The id that lost the race is rejected through its future — an
  // operational error, not the process abort the deadline-less engine
  // reserves for caller bugs.
  std::future<Tensor> f1 = engine.Submit(1, scenes[1]);
  try {
    f1.get();
    FAIL() << "late id should have been rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
  EXPECT_EQ(engine.stats().rejected_requests, 1);

  // The engine keeps serving: implicit submissions continue at the next
  // batch boundary.
  std::future<Tensor> f2 = engine.Submit(scenes[1]);
  engine.Drain();
  EXPECT_EQ(f2.get().shape()[0], 1);
}

TEST(AsyncEngineErrorTest, PendingIdStrandedByDeadlineFlushRejectedViaFuture) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto options = Options(/*batch_size=*/4);
  options.max_batch_delay_ms = 10;
  InferenceEngine engine(&method, options);
  auto scenes = Scenes(2);

  // Slots 0 and 2 arrive; slot 1 never does. The deadline flush pads batch 0
  // from the contiguous head (slot 0 alone) and retires slots [0, 4) — the
  // request already pending at slot 2 can then never execute in its batch
  // and must be rejected, not left hanging (nor allowed to anchor future
  // deadlines at its stale enqueue time).
  std::future<Tensor> f0 = engine.Submit(0, scenes[0]);
  std::future<Tensor> f2 = engine.Submit(2, scenes[1]);
  ASSERT_EQ(f0.wait_for(std::chrono::seconds(10)), std::future_status::ready);
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(10)), std::future_status::ready);
  EXPECT_EQ(f0.get().shape()[0], 1);
  try {
    f2.get();
    FAIL() << "stranded request should have been rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("stranded"), std::string::npos);
  }
  EXPECT_EQ(engine.stats().rejected_requests, 1);

  // No orphan left behind: Drain must not trip its completeness check, and
  // the engine keeps serving.
  std::future<Tensor> f3 = engine.Submit(scenes[0]);
  engine.Drain();
  EXPECT_EQ(f3.get().shape()[0], 1);
}

// --- Async dispatch ----------------------------------------------------------

TEST(AsyncEngineTest, SubmitNeverExecutesOnTheCallerThread) {
  auto state = std::make_shared<MockState>();
  MockMethod method(state, /*reentrant=*/true, /*clonable=*/false);
  method.set_block_until_released(true);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->released = false;
  }
  auto options = Options(/*batch_size=*/4);
  options.max_buffered_batches = 1;  // a full batch dispatches immediately

  InferenceEngine engine(&method, options);
  auto scenes = Scenes(4);
  std::vector<std::future<Tensor>> futures;
  // With Predict blocked, a blocking Submit (the PR-4 behaviour) would hang
  // here; the async engine returns at once.
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  EXPECT_EQ(futures[0].wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->released = true;
  }
  state->cv.notify_all();
  engine.Drain();
  for (auto& f : futures) EXPECT_EQ(f.get().shape()[0], 1);

  std::lock_guard<std::mutex> lock(state->mu);
  EXPECT_EQ(state->predict_threads.count(std::this_thread::get_id()), 0u)
      << "Predict ran on the submitting thread";
}

TEST(AsyncEngineTest, DeadlineFlushServesALoneRequestWithoutDrain) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto scenes = Scenes(1);
  auto options = Options(/*batch_size=*/8);
  options.max_batch_delay_ms = 10;

  InferenceEngine engine(&method, options);
  std::future<Tensor> future = engine.Submit(scenes[0]);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(10)), std::future_status::ready)
      << "deadline flush never fired";
  Tensor served = future.get();
  EXPECT_GE(engine.stats().deadline_flushes, 1);

  // Byte-identical to a Drain flush at the same point: the deadline decides
  // the same batch composition (scene cycled to the fixed width, batch 0
  // noise stream).
  auto drained = Serve(method, scenes, Options(/*batch_size=*/8));
  ASSERT_EQ(static_cast<size_t>(served.size()), drained[0].size());
  EXPECT_EQ(std::memcmp(served.data(), drained[0].data(),
                        drained[0].size() * sizeof(float)),
            0);
}

TEST(AsyncEngineTest, MultiProducerBitIdenticalAcrossProducersAndWorkers) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  const size_t n = 40;  // 5 batches of 8
  auto scenes = Scenes(n);
  auto options = Options(/*batch_size=*/8);
  auto reference = Serve(method, scenes, options);

  for (int workers : {1, 2, 4}) {
    parallel::ConfigureTrainWorkers(workers);
    for (int producers : {1, 4}) {
      InferenceEngine engine(&method, options);
      std::vector<std::future<Tensor>> futures(n);
      std::vector<std::thread> threads;
      for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
          // Explicit slot ids make the slot->batch mapping independent of
          // producer interleaving.
          for (size_t i = static_cast<size_t>(p); i < n;
               i += static_cast<size_t>(producers)) {
            futures[i] = engine.Submit(static_cast<uint64_t>(i), scenes[i]);
            if (i % 7 == 0) (void)engine.stats();  // exercise snapshot reads
          }
        });
      }
      for (auto& t : threads) t.join();
      engine.Drain();
      auto got = Collect(&futures);
      ExpectAllEqual(reference, got);
      EXPECT_EQ(engine.stats().requests, static_cast<int64_t>(n));
    }
  }
  parallel::ConfigureTrainWorkers(1);
}

// --- Replica pool ------------------------------------------------------------

TEST(ReplicaPoolTest, ClonesMatchMasterAndAreIndependentStorage) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  std::unique_ptr<core::Method> clone = method.CloneForServing();
  ASSERT_NE(clone, nullptr);
  auto* vanilla_clone = dynamic_cast<core::VanillaMethod*>(clone.get());
  ASSERT_NE(vanilla_clone, nullptr);
  EXPECT_EQ(vanilla_clone->backbone().ParameterSnapshot(),
            method.backbone().ParameterSnapshot());
  // Distinct storage: perturbing the clone leaves the master untouched.
  auto before = method.backbone().ParameterSnapshot();
  vanilla_clone->backbone().Parameters()[0].data()[0] += 1.0f;
  EXPECT_EQ(method.backbone().ParameterSnapshot(), before);
  EXPECT_NE(vanilla_clone->backbone().ParameterSnapshot(), before);
}

TEST(ReplicaPoolTest, PinsBatchesToSlotsAndCapsAtMasterWhenNotClonable) {
  core::VanillaMethod method(models::BackboneKind::kLbebm, TinyBackbone(), 5);
  ReplicaPool pool(&method, 4);
  EXPECT_EQ(pool.size(), 4);
  EXPECT_EQ(pool.method(0), &method);
  EXPECT_EQ(pool.MethodForBatch(0), &method);
  EXPECT_EQ(pool.MethodForBatch(5), pool.method(1));
  EXPECT_EQ(pool.MethodForBatch(7), pool.method(3));

  auto state = std::make_shared<MockState>();
  MockMethod unclonable(state, /*reentrant=*/false, /*clonable=*/false);
  ReplicaPool capped(&unclonable, 4);
  EXPECT_EQ(capped.size(), 1);
}

TEST(AsyncEngineReplicaTest, NonReentrantBatchesRunConcurrentlyOnClones) {
  parallel::ConfigureTrainWorkers(2);
  auto state = std::make_shared<MockState>();
  MockMethod method(state, /*reentrant=*/false, /*clonable=*/true);
  method.set_wait_for_peer(true);
  auto options = Options(/*batch_size=*/2);
  options.num_replicas = 2;
  options.max_buffered_batches = 2;

  InferenceEngine engine(&method, options);
  EXPECT_EQ(engine.num_replica_slots(), 2);
  auto scenes = Scenes(4);  // two full batches -> one wave of two
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();
  for (auto& f : futures) EXPECT_EQ(f.get().shape()[0], 1);

  std::lock_guard<std::mutex> lock(state->mu);
  EXPECT_GE(state->max_concurrent, 2)
      << "non-reentrant batches were serialized despite the replica pool";
  EXPECT_EQ(state->instance_overlap, 0)
      << "one replica instance ran two batches concurrently";
  parallel::ConfigureTrainWorkers(1);
}

TEST(AsyncEngineReplicaTest, LbebmConcurrentReplicasBitIdenticalToSerialized) {
  core::VanillaMethod method(models::BackboneKind::kLbebm, TinyBackbone(), 5);
  ASSERT_FALSE(method.reentrant_predict());
  auto scenes = Scenes(10);  // 2 full batches of 4 + padded tail
  auto options = Options(/*batch_size=*/4);

  // Serialized: no replicas, one batch at a time (the PR-4 schedule).
  auto serial_options = options;
  serial_options.num_replicas = 1;
  auto serialized = Serve(method, scenes, serial_options);

  // Concurrent: >= 2 replica slots on >= 2 workers.
  parallel::ConfigureTrainWorkers(4);
  auto replica_options = options;
  replica_options.num_replicas = 3;
  InferenceEngine engine(&method, replica_options);
  EXPECT_EQ(engine.num_replica_slots(), 3);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();
  auto concurrent = Collect(&futures);
  parallel::ConfigureTrainWorkers(1);

  ExpectAllEqual(serialized, concurrent);
}

// --- Result storage audit ----------------------------------------------------

TEST(AsyncEngineTest, PerRequestResultsAreIndependentStorage) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto scenes = Scenes(8);
  InferenceEngine engine(&method, Options(/*batch_size=*/8));
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();
  data::SequenceConfig seq_cfg;
  for (auto& f : futures) {
    Tensor t = f.get();
    // The tensor a caller may retain holds exactly its own row: ops::Slice
    // copies into fresh storage (TensorImpl owns its buffer; there are no
    // views) and under no-grad no graph edge links back to the [B, cols]
    // batch output, so one retained future cannot pin the batch buffer.
    ASSERT_EQ(t.dim(), 2);
    EXPECT_EQ(t.shape()[0], 1);
    EXPECT_EQ(t.size(), static_cast<int64_t>(seq_cfg.pred_len) * 2);
    EXPECT_FALSE(t.needs_grad());
  }
}

}  // namespace
}  // namespace serve
}  // namespace adaptraj
