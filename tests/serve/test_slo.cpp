// SLO-guardrail tests for the serving engine: admission control (shed and
// block policies, with full disposition accounting), per-request deadlines
// (queued-only expiry, byte-identity of surviving rows), the stuck-batch
// watchdog, latency histograms, Submit/Drain after shutdown, hot-swap
// weight refresh (per-batch atomicity, monotonic flip, zero drops), and the
// open-loop Poisson load harness.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "data/multi_domain.h"
#include "eval/experiment.h"
#include "serve/errors.h"
#include "serve/inference_engine.h"
#include "serve/latency_histogram.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace serve {
namespace {

models::BackboneConfig TinyBackbone() {
  models::BackboneConfig c;
  c.embed_dim = 8;
  c.hidden_dim = 16;
  c.social_dim = 16;
  c.latent_dim = 4;
  c.langevin_steps = 2;
  return c;
}

const data::DomainGeneralizationData& TestData() {
  static const data::DomainGeneralizationData* dgd = [] {
    data::CorpusConfig cfg;
    cfg.num_scenes = 2;
    cfg.steps_per_scene = 45;
    cfg.seed = 909;
    return new data::DomainGeneralizationData(data::BuildDomainGeneralizationData(
        {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, cfg));
  }();
  return *dgd;
}

std::vector<data::TrajectorySequence> Scenes(size_t n) {
  const auto& test = TestData().target.test.sequences;
  std::vector<data::TrajectorySequence> scenes;
  for (size_t i = 0; i < n; ++i) scenes.push_back(test[i % test.size()]);
  return scenes;
}

InferenceEngineOptions Options(int batch_size, uint64_t seed = 42) {
  InferenceEngineOptions o;
  o.batch_size = batch_size;
  o.sample = true;
  o.seed = seed;
  return o;
}

std::vector<std::vector<float>> Collect(std::vector<std::future<Tensor>>* futures) {
  std::vector<std::vector<float>> out;
  for (auto& f : *futures) {
    Tensor t = f.get();
    out.emplace_back(t.data(), t.data() + t.size());
  }
  return out;
}

std::vector<std::vector<float>> Serve(const core::Method& method,
                                      const std::vector<data::TrajectorySequence>& scenes,
                                      const InferenceEngineOptions& options) {
  InferenceEngine engine(&method, options);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();
  return Collect(&futures);
}

void ExpectRowsEqual(const std::vector<float>& a, const std::vector<float>& b,
                     const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0) << label;
}

/// Minimal blockable method: Predict returns obs_flat after (optionally)
/// waiting for release; `entered` is the has-started-executing fence.
struct GateState {
  std::mutex mu;
  std::condition_variable cv;
  int entered = 0;
  bool released = true;
};

class GatedMethod : public core::Method {
 public:
  explicit GatedMethod(std::shared_ptr<GateState> state) : state_(std::move(state)) {}
  std::string name() const override { return "gated"; }
  void Train(const data::DomainGeneralizationData&, const core::TrainConfig&) override {}
  bool reentrant_predict() const override { return true; }
  std::unique_ptr<core::Method> CloneForServing() const override { return nullptr; }
  Tensor Predict(const data::Batch& batch, Rng*, bool) const override {
    std::unique_lock<std::mutex> lock(state_->mu);
    ++state_->entered;
    state_->cv.notify_all();
    state_->cv.wait(lock, [this] { return state_->released; });
    return batch.obs_flat;
  }

 private:
  std::shared_ptr<GateState> state_;
};

void AwaitEntered(GateState* state, int n) {
  std::unique_lock<std::mutex> lock(state->mu);
  ASSERT_TRUE(state->cv.wait_for(lock, std::chrono::seconds(10),
                                 [state, n] { return state->entered >= n; }))
      << "Predict never started";
}

void Release(GateState* state) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->released = true;
  }
  state->cv.notify_all();
}

// --- LatencyHistogram --------------------------------------------------------

TEST(LatencyHistogramTest, BucketBoundsAndRecording) {
  EXPECT_EQ(LatencyHistogram::BucketLowerUs(0), 0.0);
  EXPECT_EQ(LatencyHistogram::BucketUpperUs(0), 1.0);
  EXPECT_EQ(LatencyHistogram::BucketLowerUs(1), 1.0);
  EXPECT_EQ(LatencyHistogram::BucketUpperUs(1), 2.0);
  EXPECT_EQ(LatencyHistogram::BucketLowerUs(4), 8.0);
  EXPECT_EQ(LatencyHistogram::BucketUpperUs(4), 16.0);

  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // empty

  h.Record(0.5e-6);   // bucket 0: [0, 1us)
  h.Record(-1.0);     // clamps to bucket 0
  h.Record(3e-6);     // bucket 2: [2, 4us)
  h.Record(1e-3);     // 1000us -> bucket 10: [512, 1024us)
  h.Record(1e6);      // absurd -> top bucket
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.buckets()[0], 2);
  EXPECT_EQ(h.buckets()[2], 1);
  EXPECT_EQ(h.buckets()[10], 1);
  EXPECT_EQ(h.buckets()[LatencyHistogram::kNumBuckets - 1], 1);
}

TEST(LatencyHistogramTest, QuantilesLandInTheRightBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.Record(3e-6);    // [2, 4us)
  for (int i = 0; i < 9; ++i) h.Record(100e-6);   // [64, 128us)
  h.Record(5e-3);                                  // [4096, 8192us)
  // p50 sits inside the dominant bucket.
  EXPECT_GE(h.Quantile(0.50), 2e-6);
  EXPECT_LT(h.Quantile(0.50), 4e-6);
  // p95 falls in the second population.
  EXPECT_GE(h.Quantile(0.95), 64e-6);
  EXPECT_LT(h.Quantile(0.95), 128e-6);
  // p100 reaches the outlier's bucket.
  EXPECT_GE(h.Quantile(1.0), 4096e-6);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.95));
  EXPECT_LE(h.Quantile(0.95), h.Quantile(0.99));
}

// --- Admission control -------------------------------------------------------

TEST(AdmissionControlTest, ShedPolicyFailsFastWithOverloadedError) {
  auto state = std::make_shared<GateState>();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->released = false;
  }
  GatedMethod method(state);
  auto options = Options(/*batch_size=*/2);
  options.max_buffered_batches = 1;
  options.max_queued_requests = 2;
  options.overflow_policy = OverflowPolicy::kShed;

  InferenceEngine engine(&method, options);
  auto scenes = Scenes(5);
  std::vector<std::future<Tensor>> futures;
  // Batch 0 is collected (queue empties) and blocks inside Predict...
  futures.push_back(engine.Submit(scenes[0]));
  futures.push_back(engine.Submit(scenes[1]));
  AwaitEntered(state.get(), 1);
  // ...so these two fill the queue to the bound...
  futures.push_back(engine.Submit(scenes[2]));
  futures.push_back(engine.Submit(scenes[3]));
  // ...and the fifth is shed without ever enqueueing.
  std::future<Tensor> shed = engine.Submit(scenes[4]);
  EXPECT_EQ(shed.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_THROW(shed.get(), OverloadedError);

  Release(state.get());
  engine.Drain();
  for (auto& f : futures) EXPECT_EQ(f.get().shape()[0], 1);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests, 5);
  EXPECT_EQ(stats.shed_requests, 1);
  // Accounting identity: every submission has exactly one disposition.
  EXPECT_EQ(stats.requests - stats.shed_requests - stats.expired_requests -
                stats.rejected_requests - stats.stopped_requests,
            4);
  EXPECT_LE(stats.peak_queue_depth, 2);
}

TEST(AdmissionControlTest, BlockPolicyParksTheProducerUntilSpaceFrees) {
  auto state = std::make_shared<GateState>();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->released = false;
  }
  GatedMethod method(state);
  auto options = Options(/*batch_size=*/1);
  options.max_buffered_batches = 1;
  options.max_queued_requests = 1;
  options.overflow_policy = OverflowPolicy::kBlock;

  InferenceEngine engine(&method, options);
  auto scenes = Scenes(3);
  std::future<Tensor> f0 = engine.Submit(scenes[0]);  // collected, executing
  AwaitEntered(state.get(), 1);
  std::future<Tensor> f1 = engine.Submit(scenes[1]);  // queued: bound reached

  std::atomic<bool> third_submitted{false};
  std::future<Tensor> f2;
  std::thread producer([&] {
    f2 = engine.Submit(scenes[2]);  // must block until slot 1 is collected
    third_submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_submitted.load()) << "kBlock Submit did not block on a full queue";

  Release(state.get());
  producer.join();
  EXPECT_TRUE(third_submitted.load());
  engine.Drain();
  EXPECT_EQ(f0.get().shape()[0], 1);
  EXPECT_EQ(f1.get().shape()[0], 1);
  EXPECT_EQ(f2.get().shape()[0], 1);
  EXPECT_EQ(engine.stats().peak_queue_depth, 1);
}

TEST(AdmissionControlTest, ShutdownUnblocksAParkedProducerWithTypedError) {
  auto state = std::make_shared<GateState>();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->released = false;
  }
  GatedMethod method(state);
  auto options = Options(/*batch_size=*/1);
  options.max_buffered_batches = 1;
  options.max_queued_requests = 1;
  options.overflow_policy = OverflowPolicy::kBlock;

  InferenceEngine engine(&method, options);
  auto scenes = Scenes(3);
  std::future<Tensor> f0 = engine.Submit(scenes[0]);
  AwaitEntered(state.get(), 1);
  std::future<Tensor> f1 = engine.Submit(scenes[1]);
  std::future<Tensor> f2;
  std::thread producer([&] { f2 = engine.Submit(scenes[2]); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  engine.Shutdown();
  producer.join();
  EXPECT_THROW(f2.get(), EngineStoppedError);  // the parked producer's request
  EXPECT_THROW(f1.get(), EngineStoppedError);  // the queued request
  Release(state.get());  // the in-flight batch still delivers
  EXPECT_EQ(f0.get().shape()[0], 1);
}

// --- Shutdown admission ------------------------------------------------------

TEST(ShutdownTest, SubmitAndDrainAfterShutdownFailTyped) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  InferenceEngine engine(&method, Options(/*batch_size=*/2));
  engine.Shutdown();
  engine.Shutdown();  // idempotent

  std::future<Tensor> f = engine.Submit(Scenes(1)[0]);
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_THROW(f.get(), EngineStoppedError);
  EXPECT_THROW(engine.Drain(), EngineStoppedError);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.rejected_requests, 1);
}

// --- Per-request deadlines ---------------------------------------------------

TEST(DeadlineTest, QueuedRequestExpiresAndSurvivorsKeepTheirBytes) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto options = Options(/*batch_size=*/4);  // no deadline flush: tail waits
  auto scenes = Scenes(4);

  InferenceEngine engine(&method, options);
  SubmitOptions deadline;
  deadline.timeout_ms = 30;
  // Slot 0 carries a deadline and nothing completes its batch: the watchdog
  // must expire it without any dispatcher activity.
  std::future<Tensor> doomed = engine.Submit(0, scenes[0], deadline);
  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(10)), std::future_status::ready)
      << "queued deadline never expired";
  EXPECT_THROW(doomed.get(), DeadlineExceededError);

  // The tombstone holds slot 0, so these land at slots 1..3 and Drain sees a
  // complete range.
  std::vector<std::future<Tensor>> futures;
  for (int i = 1; i < 4; ++i)
    futures.push_back(engine.Submit(static_cast<uint64_t>(i), scenes[static_cast<size_t>(i)]));
  engine.Drain();
  auto got = Collect(&futures);

  // Surviving rows are byte-identical to the run where slot 0 executed: a
  // row's result depends only on its own scene, row index, and the batch
  // noise stream — the expired slot pads away without touching them.
  auto reference = Serve(method, scenes, options);
  for (int i = 0; i < 3; ++i) {
    ExpectRowsEqual(reference[static_cast<size_t>(i) + 1], got[static_cast<size_t>(i)],
                    "surviving row");
  }

  const auto stats = engine.stats();
  EXPECT_EQ(stats.expired_requests, 1);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.padded_rows, 1);  // the tombstone row
}

TEST(DeadlineTest, ExpiryProgressesWhileDispatcherIsExecuting) {
  auto state = std::make_shared<GateState>();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->released = false;
  }
  GatedMethod method(state);
  auto options = Options(/*batch_size=*/1);
  options.max_buffered_batches = 1;

  InferenceEngine engine(&method, options);
  auto scenes = Scenes(2);
  std::future<Tensor> inflight = engine.Submit(scenes[0]);
  AwaitEntered(state.get(), 1);  // dispatcher is now blocked inside Predict

  SubmitOptions deadline;
  deadline.timeout_ms = 30;
  std::future<Tensor> queued = engine.Submit(scenes[1], deadline);
  // Only the watchdog can expire it — the dispatcher is wedged.
  ASSERT_EQ(queued.wait_for(std::chrono::seconds(10)), std::future_status::ready)
      << "watchdog did not expire a queued deadline behind a wedged batch";
  EXPECT_THROW(queued.get(), DeadlineExceededError);

  Release(state.get());
  EXPECT_EQ(inflight.get().shape()[0], 1);
  engine.Drain();  // the fully-expired batch retires without executing
  const auto stats = engine.stats();
  EXPECT_EQ(stats.expired_requests, 1);
  EXPECT_EQ(stats.batches, 1);  // only the in-flight one ever executed
}

TEST(DeadlineTest, RequestAlreadyExecutingIsNeverExpired) {
  auto state = std::make_shared<GateState>();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->released = false;
  }
  GatedMethod method(state);
  auto options = Options(/*batch_size=*/1);
  options.max_buffered_batches = 1;

  InferenceEngine engine(&method, options);
  SubmitOptions deadline;
  deadline.timeout_ms = 300;
  std::future<Tensor> f = engine.Submit(Scenes(1)[0], deadline);
  AwaitEntered(state.get(), 1);  // collected into a batch: immune from here on
  std::this_thread::sleep_for(std::chrono::milliseconds(400));  // deadline passes
  Release(state.get());
  EXPECT_EQ(f.get().shape()[0], 1) << "an executing request was expired";
  EXPECT_EQ(engine.stats().expired_requests, 0);
}

// --- Stuck-batch watchdog ----------------------------------------------------

TEST(WatchdogTest, StuckBatchIsCountedAndReportedOnce) {
  auto state = std::make_shared<GateState>();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->released = false;
  }
  GatedMethod method(state);
  auto options = Options(/*batch_size=*/2);
  options.max_buffered_batches = 1;
  options.stuck_batch_warn_ms = 20;
  std::atomic<int> callbacks{0};
  std::atomic<int64_t> reported_ms{0};
  options.on_stuck_batch = [&](int64_t elapsed_ms) {
    ++callbacks;
    reported_ms.store(elapsed_ms);
  };

  InferenceEngine engine(&method, options);
  auto scenes = Scenes(2);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  AwaitEntered(state.get(), 1);

  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (callbacks.load() == 0 && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(callbacks.load(), 1) << "watchdog never reported the wedged group";
  EXPECT_GE(reported_ms.load(), 20);
  // Give the watchdog a chance to (incorrectly) re-report the same group.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(callbacks.load(), 1) << "stuck group reported more than once";

  Release(state.get());
  engine.Drain();
  for (auto& f : futures) EXPECT_EQ(f.get().shape()[0], 1);  // never cancelled
  EXPECT_EQ(engine.stats().stuck_batches, 1);
}

// --- Latency telemetry -------------------------------------------------------

TEST(TelemetryTest, HistogramsRecordEveryRequestAndBatch) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  InferenceEngine engine(&method, Options(/*batch_size=*/4));
  auto scenes = Scenes(8);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();
  for (auto& f : futures) (void)f.get();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.queue_wait.count(), 8);   // one sample per accepted request
  EXPECT_EQ(stats.batch_exec.count(), 2);   // one per executed batch
  EXPECT_GT(stats.batch_exec.Quantile(0.5), 0.0);
  EXPECT_LE(stats.queue_wait.Quantile(0.5), stats.queue_wait.Quantile(0.99));
  EXPECT_EQ(stats.inflight_batches, 0);     // gauge settles at idle
}

// --- Hot-swap ----------------------------------------------------------------

TEST(SwapWeightsTest, EveryBatchServedEntirelyByOldOrNewWeights) {
  // Two differently-initialized models stand in for "before" and "after" a
  // weight refresh; their outputs differ on every scene.
  core::VanillaMethod old_weights(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  core::VanillaMethod new_weights(models::BackboneKind::kSeq2Seq, TinyBackbone(), 77);
  const size_t n = 40;
  const int batch = 4;
  auto scenes = Scenes(n);
  auto options = Options(batch);
  auto ref_old = Serve(old_weights, scenes, options);
  auto ref_new = Serve(new_weights, scenes, options);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NE(std::memcmp(ref_old[i].data(), ref_new[i].data(),
                          ref_old[i].size() * sizeof(float)),
              0)
        << "old and new weights agree on scene " << i << "; swap is unobservable";
  }

  InferenceEngine engine(&old_weights, options);
  std::vector<std::future<Tensor>> futures(n);
  // Live traffic: a producer streams all requests while the swap lands.
  std::thread producer([&] {
    for (size_t i = 0; i < n; ++i) {
      futures[i] = engine.Submit(static_cast<uint64_t>(i), scenes[i]);
      if (i == n / 2) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  engine.SwapWeights(new_weights);
  producer.join();
  engine.Drain();
  auto got = Collect(&futures);  // zero drops: every future delivers a value

  // Per batch: all rows from the old weights or all from the new — never a
  // mix — and the flip is monotonic in batch order.
  bool seen_new = false;
  for (size_t b = 0; b < n / static_cast<size_t>(batch); ++b) {
    bool all_old = true, all_new = true;
    for (size_t r = 0; r < static_cast<size_t>(batch); ++r) {
      const size_t i = b * static_cast<size_t>(batch) + r;
      if (got[i] != ref_old[i]) all_old = false;
      if (got[i] != ref_new[i]) all_new = false;
    }
    ASSERT_TRUE(all_old || all_new) << "batch " << b << " mixed old and new weights";
    if (all_new) seen_new = true;
    if (seen_new) {
      EXPECT_TRUE(all_new) << "batch " << b << " reverted to old weights after the flip";
    }
  }
  EXPECT_EQ(engine.stats().weight_swaps, 1);
}

TEST(SwapWeightsTest, ForcedFlipServesOldThenNewBitExactly) {
  core::VanillaMethod old_weights(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  core::VanillaMethod new_weights(models::BackboneKind::kSeq2Seq, TinyBackbone(), 77);
  auto scenes = Scenes(8);
  auto options = Options(/*batch_size=*/4);
  auto ref_old = Serve(old_weights, scenes, options);
  auto ref_new = Serve(new_weights, scenes, options);

  InferenceEngine engine(&old_weights, options);
  std::vector<std::future<Tensor>> futures;
  for (size_t i = 0; i < 4; ++i) futures.push_back(engine.Submit(scenes[i]));
  engine.Drain();  // batch 0 definitely served by the old weights
  engine.SwapWeights(new_weights);
  for (size_t i = 4; i < 8; ++i) futures.push_back(engine.Submit(scenes[i]));
  engine.Drain();
  auto got = Collect(&futures);
  for (size_t i = 0; i < 4; ++i) ExpectRowsEqual(ref_old[i], got[i], "pre-swap row");
  for (size_t i = 4; i < 8; ++i) ExpectRowsEqual(ref_new[i], got[i], "post-swap row");
}

TEST(SwapWeightsTest, RebuildsTheReplicaPoolForNonReentrantMethods) {
  parallel::ConfigureTrainWorkers(2);
  core::VanillaMethod old_weights(models::BackboneKind::kLbebm, TinyBackbone(), 5);
  core::VanillaMethod new_weights(models::BackboneKind::kLbebm, TinyBackbone(), 77);
  ASSERT_FALSE(old_weights.reentrant_predict());
  auto scenes = Scenes(8);
  auto options = Options(/*batch_size=*/2);
  options.num_replicas = 2;
  // Slot-aligned reference: the engine under test serves 4 warm scenes
  // (batches 0-1) before the swap, so its post-swap scenes occupy batches
  // 2-5 — the reference must put the same scenes at the same slots, because
  // batch index selects the noise stream.
  std::vector<data::TrajectorySequence> aligned(scenes.begin(), scenes.begin() + 4);
  aligned.insert(aligned.end(), scenes.begin(), scenes.end());
  auto ref_new = Serve(new_weights, aligned, options);

  InferenceEngine engine(&old_weights, options);
  EXPECT_EQ(engine.num_replica_slots(), 2);
  std::vector<std::future<Tensor>> warm;
  for (size_t i = 0; i < 4; ++i) warm.push_back(engine.Submit(scenes[i]));
  engine.Drain();
  engine.SwapWeights(new_weights);
  EXPECT_EQ(engine.num_replica_slots(), 2) << "swap lost the replica pool";
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();
  auto got = Collect(&futures);
  // Post-swap batches execute on the standby pool's clones, bit-identical
  // to a fresh engine over the new weights at the same slots.
  for (size_t i = 0; i < scenes.size(); ++i) {
    ExpectRowsEqual(ref_new[i + 4], got[i], "post-swap replica row");
  }
  parallel::ConfigureTrainWorkers(1);
}

TEST(SwapWeightsTest, TypedFailuresForStoppedEngineAndUnclonableSource) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  {
    InferenceEngine engine(&method, Options(/*batch_size=*/2));
    auto state = std::make_shared<GateState>();
    GatedMethod unclonable(state);  // CloneForServing returns nullptr
    EXPECT_THROW(engine.SwapWeights(unclonable), ServeError);
  }
  {
    InferenceEngine engine(&method, Options(/*batch_size=*/2));
    engine.Shutdown();
    core::VanillaMethod fresh(models::BackboneKind::kSeq2Seq, TinyBackbone(), 7);
    EXPECT_THROW(engine.SwapWeights(fresh), EngineStoppedError);
  }
}

// --- Open-loop Poisson load --------------------------------------------------

TEST(PoissonLoadTest, ReportAccountsForEveryOfferedRequest) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  eval::PoissonLoadOptions load;
  load.arrivals_per_sec = 400.0;
  load.num_requests = 40;
  load.batch_size = 4;
  load.max_batch_delay_ms = 2;
  load.max_queued_requests = 8;  // kShed (the default policy)
  load.seed = 13;

  const auto report = eval::MeasureEnginePoissonLoad(
      method, TestData().target.test, data::SequenceConfig(), load);
  EXPECT_EQ(report.submitted, 40);
  EXPECT_EQ(report.fulfilled + report.shed + report.expired + report.failed, 40);
  EXPECT_GT(report.fulfilled, 0);
  EXPECT_EQ(report.failed, 0);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.achieved_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(report.offered_per_sec, 400.0);
  // Histogram-backed quantiles exist whenever anything executed.
  EXPECT_GT(report.batch_exec_p50_ms, 0.0);
  EXPECT_LE(report.queue_wait_p50_ms, report.queue_wait_p99_ms);
  EXPECT_LE(report.batch_exec_p50_ms, report.batch_exec_p99_ms);
}

TEST(PoissonLoadTest, OverloadWithSheddingKeepsTheQueueBounded) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  // An offered rate far past this tiny model's capacity: without admission
  // control the queue would grow with offered load; with kShed it must hold
  // at the bound, with the excess accounted as shed.
  eval::PoissonLoadOptions load;
  load.arrivals_per_sec = 20000.0;
  load.num_requests = 200;
  load.batch_size = 4;
  load.max_batch_delay_ms = 1;
  load.max_queued_requests = 8;
  load.seed = 29;

  const auto report = eval::MeasureEnginePoissonLoad(
      method, TestData().target.test, data::SequenceConfig(), load);
  EXPECT_EQ(report.fulfilled + report.shed + report.expired + report.failed, 200);
  EXPECT_GT(report.shed, 0) << "2x+ overload never tripped admission control";
  EXPECT_GT(report.fulfilled, 0);
  EXPECT_EQ(report.failed, 0);
  // The bounded-memory evidence: the queue never grew past the bound.
  EXPECT_LE(report.peak_queue_depth, 8);
}

TEST(PoissonLoadTest, RepeatHeavyBurstyLoadDrivesEncodeCacheHits) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  eval::PoissonLoadOptions load;
  load.arrivals_per_sec = 400.0;
  load.num_requests = 80;
  load.batch_size = 4;
  load.max_batch_delay_ms = 2;
  load.seed = 31;
  // Mostly-repeat traffic in on/off bursts: 16 arrivals at 4x rate, then a
  // silent gap. Every offered request must still be fulfilled (no SLO knobs
  // set), and the resubmissions must land as encoder-cache hits.
  load.repeat_fraction = 0.9;
  load.burst_on_requests = 16;
  load.burst_off_seconds = 0.02;
  load.encode_cache = EncodeCacheMode::kOn;

  const auto report = eval::MeasureEnginePoissonLoad(
      method, TestData().target.test, data::SequenceConfig(), load);
  EXPECT_EQ(report.fulfilled, 80);
  EXPECT_GT(report.encode_lookups, 0);
  EXPECT_GT(report.encode_hits, 0);
  EXPECT_EQ(report.encode_lookups, report.encode_hits + report.encode_misses);

  // The same schedule with the cache pinned off reports zeroed counters.
  load.encode_cache = EncodeCacheMode::kOff;
  const auto uncached = eval::MeasureEnginePoissonLoad(
      method, TestData().target.test, data::SequenceConfig(), load);
  EXPECT_EQ(uncached.fulfilled, 80);
  EXPECT_EQ(uncached.encode_lookups, 0);
  EXPECT_EQ(uncached.encode_hits, 0);
}

}  // namespace
}  // namespace serve
}  // namespace adaptraj
