// Cross-request encoder caching (serve/encode_cache.h + the engine's
// PredictThroughCache path): the headline contract is that cached serving is
// BIT-IDENTICAL to uncached serving — for every method, backbone, thread
// count, and across Train()/SwapWeights invalidation boundaries — because
// the cache stores exact encoder outputs keyed by exact encoder inputs.
// Unit tests pin the collision-safety byte compare and the LRU byte budget;
// engine tests drive real multi-producer traffic.

#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptraj_method.h"
#include "core/baselines.h"
#include "data/multi_domain.h"
#include "serve/encode_cache.h"
#include "serve/inference_engine.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace serve {
namespace {

models::BackboneConfig TinyBackbone() {
  models::BackboneConfig c;
  c.embed_dim = 8;
  c.hidden_dim = 16;
  c.social_dim = 16;
  c.latent_dim = 4;
  c.langevin_steps = 2;
  return c;
}

const data::DomainGeneralizationData& TestData() {
  static const data::DomainGeneralizationData* dgd = [] {
    data::CorpusConfig cfg;
    cfg.num_scenes = 2;
    cfg.steps_per_scene = 45;
    cfg.seed = 606;
    return new data::DomainGeneralizationData(data::BuildDomainGeneralizationData(
        {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, cfg));
  }();
  return *dgd;
}

/// n scenes cycling the target test set — a repeat-heavy request stream.
std::vector<data::TrajectorySequence> Scenes(size_t n) {
  const auto& test = TestData().target.test.sequences;
  std::vector<data::TrajectorySequence> scenes;
  for (size_t i = 0; i < n; ++i) scenes.push_back(test[i % test.size()]);
  return scenes;
}

InferenceEngineOptions Options(int batch_size, EncodeCacheMode cache,
                               uint64_t seed = 42) {
  InferenceEngineOptions o;
  o.batch_size = batch_size;
  o.sample = true;
  o.seed = seed;
  o.encode_cache = cache;
  return o;
}

std::vector<std::vector<float>> Serve(const core::Method& method,
                                      const std::vector<data::TrajectorySequence>& scenes,
                                      const InferenceEngineOptions& options) {
  InferenceEngine engine(&method, options);
  std::vector<std::future<Tensor>> futures;
  for (const auto& s : scenes) futures.push_back(engine.Submit(s));
  engine.Drain();
  std::vector<std::vector<float>> out;
  for (auto& f : futures) {
    Tensor t = f.get();
    out.emplace_back(t.data(), t.data() + t.size());
  }
  return out;
}

void ExpectAllEqual(const std::vector<std::vector<float>>& a,
                    const std::vector<std::vector<float>>& b,
                    const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << label << " request " << i;
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(float)), 0)
        << label << " request " << i;
  }
}

// --- EncodeCache unit tests --------------------------------------------------

TEST(EncodeCacheUnit, ForcedHashCollisionFallsBackToByteCompare) {
  EncodeCacheOptions opts;
  opts.identity = "test";
  EncodeCache cache(opts);
  // Every key hashes to the same bucket: correctness must come entirely from
  // the full-key byte compare.
  cache.set_hasher_for_test([](const std::string&) { return 42ull; });

  const std::vector<float> va = {1.0f, 2.0f, 3.0f};
  const std::vector<float> vb = {-7.0f, 8.0f, 9.5f};
  cache.Insert("scene-a", va.data(), 3);
  cache.Insert("scene-b", vb.data(), 3);

  std::vector<float> out(3, 0.0f);
  ASSERT_TRUE(cache.Lookup("scene-a", out.data(), 3));
  EXPECT_EQ(std::memcmp(out.data(), va.data(), 3 * sizeof(float)), 0);
  ASSERT_TRUE(cache.Lookup("scene-b", out.data(), 3));
  EXPECT_EQ(std::memcmp(out.data(), vb.data(), 3 * sizeof(float)), 0);
  EXPECT_FALSE(cache.Lookup("scene-c", out.data(), 3));

  EncodeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 1);
  // Colliding probes were byte-compared and skipped, never served.
  EXPECT_GT(stats.hash_conflicts, 0);
  EXPECT_EQ(stats.entries, 2);
}

TEST(EncodeCacheUnit, LruEvictionUnderTinyByteBudget) {
  // Entry cost = key bytes + value bytes + 128 overhead. One-char keys with
  // width-4 values cost 1 + 16 + 128 = 145; a 300-byte budget holds two.
  EncodeCacheOptions opts;
  opts.max_bytes = 300;
  EncodeCache cache(opts);
  const std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> out(4);

  cache.Insert("a", v.data(), 4);
  cache.Insert("b", v.data(), 4);
  EXPECT_EQ(cache.stats().entries, 2);
  cache.Insert("c", v.data(), 4);  // evicts "a" (least recent)
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_FALSE(cache.Lookup("a", out.data(), 4));
  EXPECT_TRUE(cache.Lookup("b", out.data(), 4));  // touch: b is now MRU
  EXPECT_TRUE(cache.Lookup("c", out.data(), 4));  // touch: c is now MRU
  EXPECT_TRUE(cache.Lookup("b", out.data(), 4));  // touch: b is MRU, c LRU
  cache.Insert("d", v.data(), 4);                 // evicts "c", keeps "b"
  EXPECT_TRUE(cache.Lookup("b", out.data(), 4));
  EXPECT_FALSE(cache.Lookup("c", out.data(), 4));
  EXPECT_TRUE(cache.Lookup("d", out.data(), 4));
  EXPECT_EQ(cache.stats().evictions, 2);
  EXPECT_LE(cache.stats().bytes, 300);

  // An entry larger than the whole budget is never admitted.
  const std::vector<float> huge(128, 0.5f);  // 512 + 128 + key > 300
  cache.Insert("huge", huge.data(), static_cast<int64_t>(huge.size()));
  EXPECT_FALSE(cache.Lookup("huge", out.data(), 4));
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(EncodeCacheUnit, SceneKeysSeparateRowsAndNeighborWidths) {
  auto scenes = Scenes(2);
  data::SequenceConfig cfg;
  std::vector<const data::TrajectorySequence*> ptrs = {&scenes[0], &scenes[1]};
  data::Batch batch = data::MakeBatch(ptrs, cfg);
  // Distinct scenes yield distinct keys; the same scene yields the same key.
  const std::string k0 = SceneEncodeKey("id", batch, 0, true);
  const std::string k1 = SceneEncodeKey("id", batch, 1, true);
  EXPECT_NE(k0, k1);
  data::Batch again = data::MakeBatch(ptrs, cfg);
  EXPECT_EQ(k0, SceneEncodeKey("id", again, 0, true));
  // A wider padded batch changes the key content (M is part of the key) —
  // conservative, never wrong.
  data::Batch wide = data::MakeBatch(ptrs, cfg, batch.max_neighbors + 3);
  EXPECT_NE(k0, SceneEncodeKey("id", wide, 0, true));
  // Without neighbors, padding width is irrelevant to the key.
  EXPECT_EQ(SceneEncodeKey("id", batch, 0, false),
            SceneEncodeKey("id", wide, 0, false));
}

// --- Method-level split contract --------------------------------------------

TEST(EncodeSplit, DecodeOfEncodeMatchesCombinedPredictBitExactly) {
  auto scenes = Scenes(6);
  data::SequenceConfig cfg;
  std::vector<const data::TrajectorySequence*> ptrs;
  for (const auto& s : scenes) ptrs.push_back(&s);
  data::Batch batch = data::MakeBatch(ptrs, cfg);

  std::vector<std::unique_ptr<core::Method>> methods;
  methods.push_back(std::make_unique<core::VanillaMethod>(
      models::BackboneKind::kSeq2Seq, TinyBackbone(), 5));
  methods.push_back(std::make_unique<core::VanillaMethod>(
      models::BackboneKind::kPecnet, TinyBackbone(), 5));
  methods.push_back(std::make_unique<core::VanillaMethod>(
      models::BackboneKind::kLbebm, TinyBackbone(), 5));
  methods.push_back(std::make_unique<core::CounterMethod>(
      models::BackboneKind::kSeq2Seq, TinyBackbone(), 5));
  methods.push_back(std::make_unique<core::CausalMotionMethod>(
      models::BackboneKind::kPecnet, TinyBackbone(), 5));
  core::AdapTrajConfig acfg;
  acfg.feature_dim = 8;
  acfg.fused_dim = 8;
  acfg.num_source_domains = 2;
  methods.push_back(std::make_unique<core::AdapTrajMethod>(
      models::BackboneKind::kSeq2Seq, TinyBackbone(), acfg, 5));

  for (const auto& method : methods) {
    ASSERT_GT(method->predict_encode_width(), 0) << method->name();
    for (bool sample : {false, true}) {
      Rng rng_combined(99);
      Rng rng_split(99);
      Tensor combined = method->Predict(batch, &rng_combined, sample);
      Tensor enc = method->PredictEncode(batch);
      ASSERT_EQ(enc.size(0), batch.batch_size) << method->name();
      ASSERT_EQ(enc.size(1), method->predict_encode_width()) << method->name();
      Tensor split = method->PredictDecode(batch, enc, &rng_split, sample);
      ASSERT_EQ(split.size(), combined.size()) << method->name();
      EXPECT_EQ(std::memcmp(split.data(), combined.data(),
                            static_cast<size_t>(combined.size()) * sizeof(float)),
                0)
          << method->name() << " sample=" << sample;
    }
  }
}

// --- Engine integration -----------------------------------------------------

struct MethodCase {
  std::string label;
  std::unique_ptr<core::Method> method;
};

std::vector<MethodCase> AllMethodCases() {
  std::vector<MethodCase> cases;
  for (auto kind : {models::BackboneKind::kSeq2Seq, models::BackboneKind::kPecnet,
                    models::BackboneKind::kLbebm}) {
    cases.push_back({"vanilla/" + models::BackboneKindName(kind),
                     std::make_unique<core::VanillaMethod>(kind, TinyBackbone(), 5)});
  }
  cases.push_back({"Counter/Seq2Seq", std::make_unique<core::CounterMethod>(
                                          models::BackboneKind::kSeq2Seq,
                                          TinyBackbone(), 5)});
  cases.push_back({"CausalMotion/PECNet",
                   std::make_unique<core::CausalMotionMethod>(
                       models::BackboneKind::kPecnet, TinyBackbone(), 5)});
  core::AdapTrajConfig acfg;
  acfg.feature_dim = 8;
  acfg.fused_dim = 8;
  acfg.num_source_domains = 2;
  cases.push_back({"AdapTraj/Seq2Seq",
                   std::make_unique<core::AdapTrajMethod>(
                       models::BackboneKind::kSeq2Seq, TinyBackbone(), acfg, 5)});
  return cases;
}

TEST(EncodeCacheServing, CacheOnBitIdenticalToCacheOffAcrossMethods) {
  // 24 requests: the same 12 scenes served twice — a repeat-heavy stream.
  // The reference serves the WHOLE doubled schedule uncached through one
  // engine, so batch indices (and their noise streams) line up with the
  // cached runs.
  auto scenes = Scenes(12);
  auto full_schedule = scenes;
  full_schedule.insert(full_schedule.end(), scenes.begin(), scenes.end());
  for (auto& c : AllMethodCases()) {
    auto off = Serve(*c.method, full_schedule, Options(4, EncodeCacheMode::kOff));
    auto off_prefix = std::vector<std::vector<float>>(
        off.begin(), off.begin() + scenes.size());
    auto cold = Serve(*c.method, scenes, Options(4, EncodeCacheMode::kOn));
    ExpectAllEqual(off_prefix, cold, c.label + " cold");

    // A warm engine (entries populated by the first pass's batches) must
    // still serve the same bytes, now mostly from the cache. The mid-stream
    // Drain lands on a batch boundary, so batch composition matches the
    // reference's single-drain schedule.
    InferenceEngine engine(c.method.get(), Options(4, EncodeCacheMode::kOn));
    std::vector<std::future<Tensor>> futures;
    for (const auto& s : scenes) futures.push_back(engine.Submit(s));
    engine.Drain();
    for (const auto& s : scenes) futures.push_back(engine.Submit(s));
    engine.Drain();
    std::vector<std::vector<float>> warm;
    for (auto& f : futures) {
      Tensor t = f.get();
      warm.emplace_back(t.data(), t.data() + t.size());
    }
    ExpectAllEqual(off, warm, c.label + " warm");
    EncodeCacheStats stats = engine.stats().encode_cache;
    EXPECT_GT(stats.hits, 0) << c.label;
    EXPECT_GT(stats.insertions, 0) << c.label;
  }
}

TEST(EncodeCacheServing, CacheOnBitIdenticalAcrossThreadCounts) {
  auto scenes = Scenes(16);
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  parallel::ConfigureTrainWorkers(1);
  auto reference = Serve(method, scenes, Options(4, EncodeCacheMode::kOff));
  for (int workers : {2, 4}) {
    parallel::ConfigureTrainWorkers(workers);
    auto cached = Serve(method, scenes, Options(4, EncodeCacheMode::kOn));
    ExpectAllEqual(reference, cached, "workers=" + std::to_string(workers));
  }
}

TEST(EncodeCacheServing, MethodWithoutSplitServesThroughCombinedPredict) {
  // A method that keeps the default predict_encode_width() == 0 must serve
  // unchanged — the engine silently skips cache construction.
  class OpaqueMethod : public core::VanillaMethod {
   public:
    using VanillaMethod::VanillaMethod;
    int64_t predict_encode_width() const override { return 0; }
  };
  auto scenes = Scenes(8);
  OpaqueMethod opaque(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  core::VanillaMethod plain(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  auto got = Serve(opaque, scenes, Options(4, EncodeCacheMode::kOn));
  auto want = Serve(plain, scenes, Options(4, EncodeCacheMode::kOff));
  ExpectAllEqual(want, got, "opaque");
  InferenceEngine engine(&opaque, Options(4, EncodeCacheMode::kOn));
  EXPECT_EQ(engine.stats().encode_cache.lookups, 0);
}

TEST(EncodeCacheServing, EmptyAndSingleAgentEdgeBatches) {
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);

  // Drain with nothing pending: no batch forms, the cache stays untouched.
  {
    InferenceEngine engine(&method, Options(4, EncodeCacheMode::kOn));
    engine.Drain();
    EXPECT_EQ(engine.stats().batches, 0);
    EXPECT_EQ(engine.stats().encode_cache.lookups, 0);
  }

  // A single request in a width-4 engine: the padded rows cycle the one live
  // scene, so the batch holds 4 identical rows — the alias-dedup path must
  // encode the scene exactly once. A neighbor-free scene doubles as the
  // single-agent edge (M stays at the minimum 1 masked slot).
  data::TrajectorySequence lonely = Scenes(1)[0];
  lonely.neighbors.clear();
  for (int batch_size : {1, 4}) {
    auto off = Options(batch_size, EncodeCacheMode::kOff);
    auto on = Options(batch_size, EncodeCacheMode::kOn);
    auto want = Serve(method, {lonely}, off);
    InferenceEngine engine(&method, on);
    auto f = engine.Submit(lonely);
    engine.Drain();
    Tensor t = f.get();
    std::vector<std::vector<float>> got = {{t.data(), t.data() + t.size()}};
    ExpectAllEqual(want, got, "single-agent batch_size=" +
                                  std::to_string(batch_size));
    EncodeCacheStats stats = engine.stats().encode_cache;
    // One distinct key per batch, regardless of padding duplication.
    EXPECT_EQ(stats.lookups, 1);
    EXPECT_EQ(stats.insertions, 1);
  }
}

TEST(EncodeCacheServing, InPlaceTrainInvalidatesBetweenProducerWaves) {
  // The staleness hazard: a method trained IN PLACE while an engine serves
  // it. Cached encoder rows computed under the old weights must never decode
  // under the new ones. Reference: an identical method served through an
  // identical two-phase schedule with the cache OFF — training is
  // deterministic, so the weights match phase for phase.
  const int kProducers = 4;
  const int kPerProducer = 8;
  const int kPhaseSlots = kProducers * kPerProducer;
  auto scenes = Scenes(4);

  core::TrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.max_batches_per_epoch = 2;
  tcfg.batch_size = 8;

  core::VanillaMethod cached_method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  core::VanillaMethod plain_method(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  InferenceEngine cached(&cached_method, Options(4, EncodeCacheMode::kOn));
  InferenceEngine plain(&plain_method, Options(4, EncodeCacheMode::kOff));

  auto run_phase = [&](InferenceEngine* engine, uint64_t base_slot) {
    std::vector<std::future<Tensor>> futures(kPhaseSlots);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          const uint64_t slot = static_cast<uint64_t>(p + i * kProducers);
          futures[slot] = engine->Submit(base_slot + slot,
                                         scenes[(base_slot + slot) % scenes.size()]);
        }
      });
    }
    for (auto& t : producers) t.join();
    engine->Drain();
    std::vector<std::vector<float>> out;
    for (auto& f : futures) {
      Tensor t = f.get();
      out.emplace_back(t.data(), t.data() + t.size());
    }
    return out;
  };

  auto cached_phase1 = run_phase(&cached, 0);
  auto plain_phase1 = run_phase(&plain, 0);
  ExpectAllEqual(plain_phase1, cached_phase1, "pre-train");
  EXPECT_GT(cached.stats().encode_cache.hits, 0);

  // Identical deterministic training on both LIVE methods.
  cached_method.Train(TestData(), tcfg);
  plain_method.Train(TestData(), tcfg);

  auto cached_phase2 = run_phase(&cached, kPhaseSlots);
  auto plain_phase2 = run_phase(&plain, kPhaseSlots);
  // Stale entries surviving Train would decode old-weight encoder rows
  // through new-weight decoders here and diverge from the uncached engine.
  ExpectAllEqual(plain_phase2, cached_phase2, "post-train");
  // Results changed across the boundary (the training step actually moved
  // the weights) and the version check registered exactly one clear.
  EXPECT_NE(std::memcmp(cached_phase1[0].data(), cached_phase2[0].data(),
                        cached_phase1[0].size() * sizeof(float)),
            0);
  EXPECT_EQ(cached.stats().encode_cache.invalidations, 1);
}

TEST(EncodeCacheServing, SwapWeightsInvalidatesAtomicallyUnderLiveTraffic) {
  // Four explicit-id producers keep traffic flowing while the swap lands.
  // Explicit ids pin the slot->batch mapping, so every batch's content and
  // noise stream is schedule-independent: each served batch must match the
  // old-weights reference or the new-weights reference WHOLE — a batch
  // mixing stale cached encodes with post-swap weights would match neither.
  const int kProducers = 4;
  const int kPerProducer = 16;
  const int kSlots = kProducers * kPerProducer;
  const int kBatch = 4;
  auto scenes = Scenes(4);
  auto slot_scene = [&](uint64_t slot) -> const data::TrajectorySequence& {
    return scenes[slot % scenes.size()];
  };

  const int kTotal = kSlots + kBatch;  // one guaranteed post-swap batch

  core::VanillaMethod old_weights(models::BackboneKind::kSeq2Seq, TinyBackbone(), 5);
  core::VanillaMethod new_weights(models::BackboneKind::kSeq2Seq, TinyBackbone(), 77);
  std::vector<data::TrajectorySequence> schedule;
  for (uint64_t s = 0; s < static_cast<uint64_t>(kTotal); ++s) {
    schedule.push_back(slot_scene(s));
  }
  auto ref_old = Serve(old_weights, schedule, Options(kBatch, EncodeCacheMode::kOff));
  auto ref_new = Serve(new_weights, schedule, Options(kBatch, EncodeCacheMode::kOff));

  InferenceEngine engine(&old_weights, Options(kBatch, EncodeCacheMode::kOn));
  std::vector<std::future<Tensor>> futures(kTotal);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t slot = static_cast<uint64_t>(p + i * kProducers);
        futures[slot] = engine.Submit(slot, slot_scene(slot));
        std::this_thread::yield();
      }
    });
  }
  // Swap mid-stream, racing the producers.
  engine.SwapWeights(new_weights);
  for (auto& t : producers) t.join();
  // The final batch is submitted after the swap completed: it MUST serve
  // from the new weights, warming the freshly invalidated cache.
  for (uint64_t s = kSlots; s < static_cast<uint64_t>(kTotal); ++s) {
    futures[s] = engine.Submit(s, slot_scene(s));
  }
  engine.Drain();

  std::vector<std::vector<float>> got;
  for (auto& f : futures) {
    Tensor t = f.get();
    got.emplace_back(t.data(), t.data() + t.size());
  }
  int batches_on_new = 0;
  for (int b = 0; b * kBatch < kTotal; ++b) {
    const size_t first = static_cast<size_t>(b) * kBatch;
    const size_t bytes = got[first].size() * sizeof(float);
    const bool is_old =
        std::memcmp(got[first].data(), ref_old[first].data(), bytes) == 0;
    const bool is_new =
        std::memcmp(got[first].data(), ref_new[first].data(), bytes) == 0;
    ASSERT_TRUE(is_old || is_new) << "batch " << b << " matches neither side";
    const auto& ref = is_new ? ref_new : ref_old;
    if (is_new) ++batches_on_new;
    for (size_t r = first; r < first + kBatch; ++r) {
      EXPECT_EQ(std::memcmp(got[r].data(), ref[r].data(),
                            got[r].size() * sizeof(float)),
                0)
          << "batch " << b << " row " << (r - first) << " mixes weights";
    }
  }
  InferenceEngineStats stats = engine.stats();
  EXPECT_EQ(stats.weight_swaps, 1);
  EXPECT_GT(batches_on_new, 0);  // at least the guaranteed post-swap batch
}

}  // namespace
}  // namespace serve
}  // namespace adaptraj
