// Tests for batch assembly and the epoch loader.

#include "data/batch.h"

#include <set>

#include <gtest/gtest.h>

#include "data/multi_domain.h"

namespace adaptraj {
namespace data {
namespace {

TrajectorySequence LineSequence(float speed, float lane, const SequenceConfig& cfg,
                                int num_neighbors = 0) {
  TrajectorySequence s;
  s.domain_label = 0;
  for (int t = 0; t < cfg.total_len(); ++t) {
    s.focal.push_back({speed * static_cast<float>(t), lane});
  }
  for (int m = 0; m < num_neighbors; ++m) {
    std::vector<sim::Vec2> nbr;
    for (int t = 0; t < cfg.obs_len; ++t) {
      nbr.push_back({speed * static_cast<float>(t), lane + 1.0f + static_cast<float>(m)});
    }
    s.neighbors.push_back(std::move(nbr));
  }
  return s;
}

TEST(MakeBatchTest, ShapesAreConsistent) {
  SequenceConfig cfg;
  auto a = LineSequence(0.3f, 0.0f, cfg, 2);
  auto b = LineSequence(0.2f, 1.0f, cfg, 0);
  Batch batch = MakeBatch({&a, &b}, cfg);
  EXPECT_EQ(batch.batch_size, 2);
  EXPECT_EQ(batch.max_neighbors, 2);
  ASSERT_EQ(static_cast<int>(batch.obs_steps.size()), cfg.obs_len);
  ASSERT_EQ(static_cast<int>(batch.fut_steps.size()), cfg.pred_len);
  EXPECT_EQ(batch.obs_steps[0].shape(), (Shape{2, 2}));
  EXPECT_EQ(batch.nbr_steps[0].shape(), (Shape{4, 2}));
  EXPECT_EQ(batch.nbr_mask.shape(), (Shape{2, 2}));
  EXPECT_EQ(batch.obs_flat.shape(), (Shape{2, cfg.obs_len * 2}));
  EXPECT_EQ(batch.fut_flat.shape(), (Shape{2, cfg.pred_len * 2}));
  EXPECT_EQ(batch.endpoint.shape(), (Shape{2, 2}));
}

TEST(MakeBatchTest, DisplacementsComputedCorrectly) {
  SequenceConfig cfg;
  auto a = LineSequence(0.3f, 0.0f, cfg);
  Batch batch = MakeBatch({&a}, cfg);
  // First observed displacement is defined as zero.
  EXPECT_FLOAT_EQ(batch.obs_steps[0].flat(0), 0.0f);
  // Subsequent displacements equal the speed.
  for (int t = 1; t < cfg.obs_len; ++t) {
    EXPECT_NEAR(batch.obs_steps[t].flat(0), 0.3f, 1e-5);
    EXPECT_NEAR(batch.obs_steps[t].flat(1), 0.0f, 1e-5);
  }
  for (int t = 0; t < cfg.pred_len; ++t) {
    EXPECT_NEAR(batch.fut_steps[t].flat(0), 0.3f, 1e-5);
  }
}

TEST(MakeBatchTest, EndpointIsFutureDisplacementSum) {
  SequenceConfig cfg;
  auto a = LineSequence(0.25f, 0.0f, cfg);
  Batch batch = MakeBatch({&a}, cfg);
  EXPECT_NEAR(batch.endpoint.flat(0), 0.25f * cfg.pred_len, 1e-4);
  EXPECT_NEAR(batch.endpoint.flat(1), 0.0f, 1e-5);
}

TEST(MakeBatchTest, NeighborMaskMarksValidSlots) {
  SequenceConfig cfg;
  auto a = LineSequence(0.3f, 0.0f, cfg, 1);
  auto b = LineSequence(0.3f, 5.0f, cfg, 3);
  Batch batch = MakeBatch({&a, &b}, cfg);
  EXPECT_EQ(batch.max_neighbors, 3);
  // Row 0: one valid slot; row 1: three valid slots.
  EXPECT_FLOAT_EQ(batch.nbr_mask.flat(0), 1.0f);
  EXPECT_FLOAT_EQ(batch.nbr_mask.flat(1), 0.0f);
  EXPECT_FLOAT_EQ(batch.nbr_mask.flat(2), 0.0f);
  EXPECT_FLOAT_EQ(batch.nbr_mask.flat(3), 1.0f);
  EXPECT_FLOAT_EQ(batch.nbr_mask.flat(4), 1.0f);
  EXPECT_FLOAT_EQ(batch.nbr_mask.flat(5), 1.0f);
}

TEST(MakeBatchTest, PaddedNeighborRowsAreZero) {
  SequenceConfig cfg;
  auto a = LineSequence(0.3f, 0.0f, cfg, 1);
  auto b = LineSequence(0.3f, 5.0f, cfg, 2);
  Batch batch = MakeBatch({&a, &b}, cfg);
  // Padding slot: sequence 0, slot 1 -> row 1 of [B*M, 2] tensors.
  for (int t = 0; t < cfg.obs_len; ++t) {
    EXPECT_FLOAT_EQ(batch.nbr_steps[t].flat(2), 0.0f);
    EXPECT_FLOAT_EQ(batch.nbr_steps[t].flat(3), 0.0f);
  }
  EXPECT_FLOAT_EQ(batch.nbr_offsets.flat(2), 0.0f);
}

TEST(MakeBatchTest, NeighborOffsetRelativeToAnchor) {
  SequenceConfig cfg;
  auto a = LineSequence(0.3f, 0.0f, cfg, 1);  // neighbor in lane +1
  Batch batch = MakeBatch({&a}, cfg);
  EXPECT_NEAR(batch.nbr_offsets.flat(0), 0.0f, 1e-5);  // same x progress
  EXPECT_NEAR(batch.nbr_offsets.flat(1), 1.0f, 1e-5);  // one lane above
}

TEST(MakeBatchTest, AlwaysAtLeastOneNeighborSlot) {
  SequenceConfig cfg;
  auto a = LineSequence(0.3f, 0.0f, cfg, 0);
  Batch batch = MakeBatch({&a}, cfg);
  EXPECT_EQ(batch.max_neighbors, 1);
  EXPECT_FLOAT_EQ(batch.nbr_mask.flat(0), 0.0f);
}

TEST(MakeBatchTest, DomainLabelsCarriedThrough) {
  SequenceConfig cfg;
  auto a = LineSequence(0.3f, 0.0f, cfg);
  a.domain_label = 2;
  auto b = LineSequence(0.3f, 1.0f, cfg);
  b.domain_label = 0;
  Batch batch = MakeBatch({&a, &b}, cfg);
  ASSERT_EQ(batch.domain_labels.size(), 2u);
  EXPECT_EQ(batch.domain_labels[0], 2);
  EXPECT_EQ(batch.domain_labels[1], 0);
}

TEST(BatchLoaderTest, CoversEverySequenceOncePerEpoch) {
  SequenceConfig cfg;
  Dataset ds;
  for (int i = 0; i < 23; ++i) {
    ds.sequences.push_back(LineSequence(0.1f * static_cast<float>(i + 1), 0.0f, cfg));
  }
  BatchLoader loader(&ds, 5, cfg, 7, /*shuffle=*/true);
  EXPECT_EQ(loader.NumBatches(), 5);
  int64_t seen = 0;
  Batch batch;
  int batches = 0;
  while (loader.Next(&batch)) {
    seen += batch.batch_size;
    ++batches;
  }
  EXPECT_EQ(seen, 23);
  EXPECT_EQ(batches, 5);
  // Second epoch works after Reset.
  loader.Reset();
  EXPECT_TRUE(loader.Next(&batch));
}

TEST(BatchLoaderTest, NoShuffleIsDeterministicOrder) {
  SequenceConfig cfg;
  Dataset ds;
  for (int i = 0; i < 4; ++i) {
    auto s = LineSequence(0.1f * static_cast<float>(i + 1), 0.0f, cfg);
    s.domain_label = i;
    ds.sequences.push_back(s);
  }
  BatchLoader loader(&ds, 2, cfg, 7, /*shuffle=*/false);
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.domain_labels[0], 0);
  EXPECT_EQ(batch.domain_labels[1], 1);
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.domain_labels[0], 2);
}

TEST(MultiDomainTest, LabelsAssignedPerSource) {
  CorpusConfig cfg;
  cfg.num_scenes = 2;
  cfg.steps_per_scene = 40;
  auto dgd = BuildDomainGeneralizationData({sim::Domain::kEthUcy, sim::Domain::kLcas},
                                           sim::Domain::kSdd, cfg);
  ASSERT_EQ(dgd.sources.size(), 2u);
  std::set<int> labels;
  for (const auto& s : dgd.pooled_train.sequences) labels.insert(s.domain_label);
  EXPECT_EQ(labels, (std::set<int>{0, 1}));
  for (const auto& s : dgd.target.test.sequences) EXPECT_EQ(s.domain_label, -1);
  EXPECT_EQ(dgd.target_domain, sim::Domain::kSdd);
  EXPECT_FALSE(dgd.target.test.empty());
  EXPECT_EQ(dgd.pooled_train.size(),
            dgd.sources[0].train.size() + dgd.sources[1].train.size());
}

}  // namespace
}  // namespace data
}  // namespace adaptraj
