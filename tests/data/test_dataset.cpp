// Tests for sequence extraction, chronological splits, and statistics.

#include "data/dataset.h"

#include <gtest/gtest.h>

namespace adaptraj {
namespace data {
namespace {

// Builds a deterministic synthetic scene: `n` agents moving in straight
// lines, all present from step 0 for `len` steps.
sim::Scene StraightLineScene(int n, int len, float speed = 0.3f) {
  sim::Scene scene;
  scene.num_steps = len;
  for (int a = 0; a < n; ++a) {
    sim::AgentTrack t;
    t.agent_id = a;
    t.start_step = 0;
    for (int s = 0; s < len; ++s) {
      t.points.push_back({speed * static_cast<float>(s),
                          static_cast<float>(a)});  // parallel lanes 1 m apart
    }
    scene.tracks.push_back(t);
  }
  return scene;
}

TEST(ExtractTest, WindowCountFollowsStride) {
  SequenceConfig cfg;
  cfg.stride = 5;
  // Track length 30, window 20 => offsets 0,5,10 => 3 windows per agent.
  sim::Scene scene = StraightLineScene(2, 30);
  auto seqs = ExtractSequences(scene, cfg, sim::Domain::kEthUcy, 0);
  EXPECT_EQ(seqs.size(), 2u * 3u);
}

TEST(ExtractTest, TooShortTracksYieldNothing) {
  SequenceConfig cfg;
  sim::Scene scene = StraightLineScene(3, cfg.total_len() - 1);
  EXPECT_TRUE(ExtractSequences(scene, cfg, sim::Domain::kEthUcy, 0).empty());
}

TEST(ExtractTest, FocalCoversObsPlusPred) {
  SequenceConfig cfg;
  sim::Scene scene = StraightLineScene(1, 25);
  auto seqs = ExtractSequences(scene, cfg, sim::Domain::kSdd, 0);
  ASSERT_FALSE(seqs.empty());
  EXPECT_EQ(static_cast<int>(seqs[0].focal.size()), cfg.total_len());
  EXPECT_EQ(seqs[0].domain, sim::Domain::kSdd);
}

TEST(ExtractTest, NeighborsRequireFullObsWindow) {
  SequenceConfig cfg;
  sim::Scene scene = StraightLineScene(2, 25);
  // Second agent appears late: misses the first window's obs steps.
  scene.tracks[1].start_step = 3;
  scene.tracks[1].points.resize(22);
  auto seqs = ExtractSequences(scene, cfg, sim::Domain::kEthUcy, 0);
  // First agent's window at offset 0 has no full-coverage neighbor.
  bool found_first_window = false;
  for (const auto& s : seqs) {
    if (s.start_step == 0) {
      found_first_window = true;
      EXPECT_TRUE(s.neighbors.empty());
    }
  }
  EXPECT_TRUE(found_first_window);
}

TEST(ExtractTest, NeighborsSortedNearestFirstAndCapped) {
  SequenceConfig cfg;
  cfg.max_neighbors = 3;
  sim::Scene scene = StraightLineScene(6, 25);  // lanes y = 0..5
  auto seqs = ExtractSequences(scene, cfg, sim::Domain::kEthUcy, 0);
  ASSERT_FALSE(seqs.empty());
  // For the focal agent in lane 0, nearest neighbors are lanes 1,2,3.
  const auto& s0 = seqs[0];
  ASSERT_EQ(s0.neighbors.size(), 3u);
  EXPECT_NEAR(s0.neighbors[0].back().y, 1.0f, 1e-5);
  EXPECT_NEAR(s0.neighbors[1].back().y, 2.0f, 1e-5);
  EXPECT_NEAR(s0.neighbors[2].back().y, 3.0f, 1e-5);
}

TEST(ExtractTest, NeighborWindowHasObsLength) {
  SequenceConfig cfg;
  sim::Scene scene = StraightLineScene(3, 25);
  auto seqs = ExtractSequences(scene, cfg, sim::Domain::kEthUcy, 0);
  for (const auto& s : seqs) {
    for (const auto& n : s.neighbors) {
      EXPECT_EQ(static_cast<int>(n.size()), cfg.obs_len);
    }
  }
}

TEST(SplitTest, RatiosAreSixTwoTwo) {
  std::vector<TrajectorySequence> seqs(100);
  for (int i = 0; i < 100; ++i) {
    seqs[i].scene_index = i / 10;
    seqs[i].start_step = i % 10;
  }
  SplitDataset split = ChronologicalSplit(std::move(seqs));
  EXPECT_EQ(split.train.size(), 60u);
  EXPECT_EQ(split.val.size(), 20u);
  EXPECT_EQ(split.test.size(), 20u);
}

TEST(SplitTest, ChronologicalOrderPreserved) {
  std::vector<TrajectorySequence> seqs(10);
  for (int i = 0; i < 10; ++i) {
    seqs[i].scene_index = 9 - i;  // reversed input order
  }
  SplitDataset split = ChronologicalSplit(std::move(seqs));
  // Train must hold the chronologically earliest scenes.
  for (const auto& s : split.train.sequences) EXPECT_LT(s.scene_index, 6);
  for (const auto& s : split.test.sequences) EXPECT_GE(s.scene_index, 8);
}

TEST(SplitTest, EmptyInputYieldsEmptySplits) {
  SplitDataset split = ChronologicalSplit({});
  EXPECT_TRUE(split.train.empty());
  EXPECT_TRUE(split.val.empty());
  EXPECT_TRUE(split.test.empty());
}

TEST(BuildDatasetTest, ProducesNonEmptySplitsForAllDomains) {
  SequenceConfig cfg;
  for (sim::Domain d : sim::AllDomains()) {
    SplitDataset split = BuildDomainDataset(d, 3, 50, 99, cfg);
    EXPECT_FALSE(split.train.empty()) << sim::DomainName(d);
    EXPECT_FALSE(split.test.empty()) << sim::DomainName(d);
    for (const auto& s : split.train.sequences) {
      EXPECT_EQ(s.domain, d);
      EXPECT_EQ(static_cast<int>(s.focal.size()), cfg.total_len());
    }
  }
}

TEST(StatsTest, StraightLineSceneHasZeroAcceleration) {
  SequenceConfig cfg;
  sim::Scene scene = StraightLineScene(3, 25, 0.4f);
  auto stats = ComputeDomainStats({scene}, cfg, sim::Domain::kEthUcy);
  EXPECT_NEAR(stats.avg_vx, 0.4f, 1e-5);
  EXPECT_NEAR(stats.avg_vy, 0.0f, 1e-5);
  EXPECT_NEAR(stats.avg_ax, 0.0f, 1e-5);
  EXPECT_NEAR(stats.avg_ay, 0.0f, 1e-5);
  EXPECT_NEAR(stats.avg_num, 3.0f, 1e-5);
  EXPECT_NEAR(stats.std_num, 0.0f, 1e-5);
}

TEST(StatsTest, SequenceCountMatchesExtraction) {
  SequenceConfig cfg;
  sim::Scene scene = StraightLineScene(2, 30);
  auto stats = ComputeDomainStats({scene}, cfg, sim::Domain::kEthUcy);
  EXPECT_EQ(stats.num_sequences, 6);
}

}  // namespace
}  // namespace data
}  // namespace adaptraj
