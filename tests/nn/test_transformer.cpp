// Tests for LayerNorm, TransformerBlock and TransformerEncoder, plus the
// Transformer variant of the Seq2Seq backbone's mobility encoder (Eq. 2).

#include "nn/transformer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "models/backbone.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "tensor/gradcheck.h"

namespace adaptraj {
namespace nn {
namespace {

TEST(LayerNormTest, NormalizesToZeroMeanUnitVariance) {
  LayerNorm norm(4);
  Tensor x = Tensor::FromVector({2, 4}, {1, 2, 3, 4, -10, 0, 10, 20});
  Tensor y = norm.Forward(x);
  for (int64_t r = 0; r < 2; ++r) {
    float mean = 0.0f;
    float var = 0.0f;
    for (int64_t c = 0; c < 4; ++c) mean += y.flat(r * 4 + c) / 4.0f;
    for (int64_t c = 0; c < 4; ++c) {
      const float d = y.flat(r * 4 + c) - mean;
      var += d * d / 4.0f;
    }
    EXPECT_NEAR(mean, 0.0f, 1e-4);
    EXPECT_NEAR(var, 1.0f, 1e-2);
  }
}

TEST(LayerNormTest, WorksOnRank3Input) {
  LayerNorm norm(3);
  Rng rng(1);
  Tensor x = Tensor::Randn({2, 4, 3}, &rng, 2.0f);
  Tensor y = norm.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 4, 3}));
  for (int64_t i = 0; i < y.size(); ++i) EXPECT_TRUE(std::isfinite(y.flat(i)));
}

TEST(LayerNormTest, GradCheckThroughNormalization) {
  Rng rng(2);
  LayerNorm norm(3);
  Tensor x = Tensor::Randn({2, 3}, &rng, 1.0f);
  auto params = norm.Parameters();
  auto report = CheckGradients(
      [&](const std::vector<Tensor>&) {
        return ops::Sum(ops::Square(norm.Forward(x)));
      },
      params);
  EXPECT_TRUE(report.ok) << report.max_abs_error;
}

TEST(TransformerBlockTest, PreservesShape) {
  Rng rng(3);
  TransformerBlock block(8, 16, &rng);
  Tensor x = Tensor::Randn({2, 5, 8}, &rng);
  Tensor y = block.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8}));
  for (int64_t i = 0; i < y.size(); ++i) EXPECT_TRUE(std::isfinite(y.flat(i)));
}

TEST(TransformerBlockTest, EmptyBatchFlowsThroughNatively) {
  // Regression for the removed attended_rows.empty() / Zeros({0, d}) special
  // case: a B = 0 input must flow through the batched attention path
  // (BatchMatMul + 3-D softmax) end to end, forward and backward.
  Rng rng(21);
  TransformerBlock block(8, 16, &rng);
  Tensor x = Tensor::Zeros({0, 5, 8}, /*requires_grad=*/true);
  Tensor y = block.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{0, 5, 8}));
  Tensor loss = ops::Sum(y);
  EXPECT_FLOAT_EQ(loss.item(), 0.0f);
  loss.Backward();  // must not crash; parameter grads stay zero
  for (const Tensor& p : block.Parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.size(); ++i) {
      ASSERT_EQ(g.flat(i), 0.0f) << "non-zero grad from an empty batch";
    }
  }
}

TEST(TransformerBlockTest, GradientsReachAllParameters) {
  Rng rng(4);
  TransformerBlock block(8, 16, &rng);
  block.ZeroGrad();
  Tensor x = Tensor::Randn({2, 4, 8}, &rng);
  ops::Sum(ops::Square(block.Forward(x))).Backward();
  int with_grad = 0;
  for (const Tensor& p : block.Parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.size(); ++i) {
      if (g.flat(i) != 0.0f) {
        ++with_grad;
        break;
      }
    }
  }
  EXPECT_EQ(with_grad, static_cast<int>(block.Parameters().size()));
}

TEST(TransformerEncoderTest, OutputShapeAndDeterminism) {
  Rng rng(5);
  TransformerEncoder enc(2, 16, /*num_blocks=*/2, /*max_len=*/8, &rng);
  std::vector<Tensor> steps;
  Rng data_rng(6);
  for (int t = 0; t < 8; ++t) steps.push_back(Tensor::Randn({3, 2}, &data_rng));
  Tensor a = enc.Forward(steps);
  Tensor b = enc.Forward(steps);
  EXPECT_EQ(a.shape(), (Shape{3, 16}));
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a.flat(i), b.flat(i));
}

TEST(TransformerEncoderTest, PositionSensitive) {
  // Unlike bag-of-steps pooling, the encoder must distinguish step order.
  Rng rng(7);
  TransformerEncoder enc(2, 16, 1, 8, &rng);
  Rng data_rng(8);
  std::vector<Tensor> steps;
  for (int t = 0; t < 4; ++t) steps.push_back(Tensor::Randn({1, 2}, &data_rng));
  Tensor fwd = enc.Forward(steps);
  std::vector<Tensor> reversed(steps.rbegin(), steps.rend());
  Tensor rev = enc.Forward(reversed);
  float diff = 0.0f;
  for (int64_t i = 0; i < fwd.size(); ++i) diff += std::fabs(fwd.flat(i) - rev.flat(i));
  EXPECT_GT(diff, 1e-4f);
}

TEST(TransformerEncoderTest, ShorterSequencesAccepted) {
  Rng rng(9);
  TransformerEncoder enc(2, 8, 1, 8, &rng);
  Rng data_rng(10);
  std::vector<Tensor> steps = {Tensor::Randn({2, 2}, &data_rng),
                               Tensor::Randn({2, 2}, &data_rng)};
  Tensor out = enc.Forward(steps);
  EXPECT_EQ(out.shape(), (Shape{2, 8}));
}

TEST(TransformerEncoderTest, CanOverfitTinyRegression) {
  Rng rng(11);
  TransformerEncoder enc(1, 8, 1, 4, &rng);
  Linear head(8, 1, &rng);
  Adam opt(0.01f);
  opt.AddGroup(enc.Parameters());
  opt.AddGroup(head.Parameters());
  std::vector<Tensor> steps = {Tensor::FromVector({2, 1}, {0.1f, 0.9f}),
                               Tensor::FromVector({2, 1}, {0.8f, 0.2f}),
                               Tensor::FromVector({2, 1}, {0.3f, 0.7f})};
  Tensor target = Tensor::FromVector({2, 1}, {1.0f, -1.0f});
  float loss_val = 1e9f;
  for (int it = 0; it < 400; ++it) {
    opt.ZeroGrad();
    Tensor loss = MseLoss(head.Forward(enc.Forward(steps)), target);
    loss.Backward();
    opt.Step();
    loss_val = loss.item();
  }
  EXPECT_LT(loss_val, 5e-2f);
}

TEST(TransformerBackboneTest, Seq2SeqWithTransformerEncoderRuns) {
  Rng rng(12);
  models::BackboneConfig cfg;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  cfg.social_dim = 16;
  cfg.latent_dim = 4;
  cfg.encoder = models::EncoderKind::kTransformer;
  cfg.transformer_blocks = 1;
  auto model = models::MakeBackbone(models::BackboneKind::kSeq2Seq, cfg, &rng);

  data::SequenceConfig scfg;
  std::vector<data::TrajectorySequence> seqs(3);
  std::vector<const data::TrajectorySequence*> ptrs;
  for (int i = 0; i < 3; ++i) {
    for (int t = 0; t < scfg.total_len(); ++t) {
      seqs[i].focal.push_back({0.25f * t, static_cast<float>(i)});
    }
    ptrs.push_back(&seqs[i]);
  }
  data::Batch batch = data::MakeBatch(ptrs, scfg);
  auto enc = model->Encode(batch);
  EXPECT_EQ(enc.h_focal.shape(), (Shape{3, 16}));
  Rng r(1);
  Tensor pred = model->Predict(batch, enc, Tensor(), &r, true);
  EXPECT_EQ(pred.shape(), (Shape{3, scfg.pred_len * 2}));
  model->ZeroGrad();
  Tensor loss = model->Loss(batch, enc, Tensor(), &r);
  EXPECT_TRUE(std::isfinite(loss.item()));
  loss.Backward();
}

TEST(TransformerBackboneTest, TransformerTrainingReducesLoss) {
  Rng rng(13);
  models::BackboneConfig cfg;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  cfg.social_dim = 16;
  cfg.latent_dim = 4;
  cfg.encoder = models::EncoderKind::kTransformer;
  auto model = models::MakeBackbone(models::BackboneKind::kSeq2Seq, cfg, &rng);

  data::SequenceConfig scfg;
  std::vector<data::TrajectorySequence> seqs(6);
  std::vector<const data::TrajectorySequence*> ptrs;
  for (int i = 0; i < 6; ++i) {
    const float sp = 0.1f + 0.05f * static_cast<float>(i);
    for (int t = 0; t < scfg.total_len(); ++t) {
      seqs[i].focal.push_back({sp * t, static_cast<float>(i)});
    }
    ptrs.push_back(&seqs[i]);
  }
  data::Batch batch = data::MakeBatch(ptrs, scfg);
  Adam opt(5e-3f);
  opt.AddGroup(model->Parameters());
  Rng train_rng(14);
  auto eval_loss = [&]() {
    Rng fixed(42);
    auto enc = model->Encode(batch);
    return model->Loss(batch, enc, Tensor(), &fixed).item();
  };
  const float before = eval_loss();
  for (int it = 0; it < 50; ++it) {
    opt.ZeroGrad();
    auto enc = model->Encode(batch);
    model->Loss(batch, enc, Tensor(), &train_rng).Backward();
    ClipGradNorm(model->Parameters(), 5.0f);
    opt.Step();
  }
  EXPECT_LT(eval_loss(), before * 0.9f);
}

}  // namespace
}  // namespace nn
}  // namespace adaptraj
