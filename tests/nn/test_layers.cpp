// Tests for Linear / Mlp / LstmCell / Lstm.

#include "nn/layers.h"

#include <gtest/gtest.h>

#include "nn/losses.h"
#include "nn/optimizer.h"
#include "tensor/gradcheck.h"

namespace adaptraj {
namespace nn {
namespace {

TEST(LinearTest, OutputShape) {
  Rng rng(1);
  Linear fc(3, 5, &rng);
  Tensor x = Tensor::Randn({2, 3}, &rng);
  Tensor y = fc.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5}));
}

TEST(LinearTest, ZeroInputYieldsBias) {
  Rng rng(2);
  Linear fc(3, 2, &rng);
  Tensor x = Tensor::Zeros({1, 3});
  Tensor y = fc.Forward(x);
  // Bias starts at zero so the output must be exactly zero.
  EXPECT_FLOAT_EQ(y.flat(0), 0.0f);
  EXPECT_FLOAT_EQ(y.flat(1), 0.0f);
}

TEST(LinearTest, ParametersRegistered) {
  Rng rng(3);
  Linear fc(4, 6, &rng);
  auto params = fc.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(fc.NumParams(), 4 * 6 + 6);
}

TEST(LinearTest, GradientFlowsToWeightsAndInput) {
  Rng rng(4);
  Linear fc(3, 2, &rng);
  Tensor x = Tensor::Randn({2, 3}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor loss = ops::Mean(ops::Square(fc.Forward(x)));
  loss.Backward();
  bool any_w_grad = false;
  for (const Tensor& p : fc.Parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.size(); ++i) any_w_grad = any_w_grad || g.flat(i) != 0.0f;
  }
  EXPECT_TRUE(any_w_grad);
  Tensor gx = x.grad();
  bool any_x_grad = false;
  for (int64_t i = 0; i < gx.size(); ++i) any_x_grad = any_x_grad || gx.flat(i) != 0.0f;
  EXPECT_TRUE(any_x_grad);
}

TEST(MlpTest, OutputWidthMatchesSpec) {
  Rng rng(5);
  Mlp mlp({4, 8, 8, 3}, &rng);
  EXPECT_EQ(mlp.out_features(), 3);
  Tensor y = mlp.Forward(Tensor::Randn({5, 4}, &rng));
  EXPECT_EQ(y.shape(), (Shape{5, 3}));
}

TEST(MlpTest, HiddenActivationApplied) {
  Rng rng(6);
  // With ReLU hidden and all-negative weights forced, output of single hidden
  // layer must be the bias-only path; easier: tanh output bounds the range.
  Mlp mlp({2, 4, 1}, &rng, Activation::kRelu, Activation::kTanh);
  Tensor y = mlp.Forward(Tensor::Randn({10, 2}, &rng, 5.0f));
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_GE(y.flat(i), -1.0f);
    EXPECT_LE(y.flat(i), 1.0f);
  }
}

TEST(MlpTest, ParameterCount) {
  Rng rng(7);
  Mlp mlp({3, 5, 2}, &rng);
  EXPECT_EQ(mlp.NumParams(), (3 * 5 + 5) + (5 * 2 + 2));
}

TEST(MlpTest, GradCheckSmallNetwork) {
  Rng rng(8);
  Mlp mlp({2, 3, 1}, &rng, Activation::kTanh);
  Tensor x = Tensor::Randn({2, 2}, &rng, 0.5f);
  auto params = mlp.Parameters();
  auto report = CheckGradients(
      [&](const std::vector<Tensor>&) { return ops::Mean(ops::Square(mlp.Forward(x))); },
      params);
  EXPECT_TRUE(report.ok) << report.max_abs_error;
}

TEST(LstmCellTest, StateShapes) {
  Rng rng(9);
  LstmCell cell(3, 6, &rng);
  auto st = cell.InitialState(4);
  EXPECT_EQ(st.h.shape(), (Shape{4, 6}));
  EXPECT_EQ(st.c.shape(), (Shape{4, 6}));
  auto next = cell.Forward(Tensor::Randn({4, 3}, &rng), st);
  EXPECT_EQ(next.h.shape(), (Shape{4, 6}));
  EXPECT_EQ(next.c.shape(), (Shape{4, 6}));
}

TEST(LstmCellTest, HiddenStateBounded) {
  Rng rng(10);
  LstmCell cell(2, 4, &rng);
  auto st = cell.InitialState(3);
  for (int t = 0; t < 5; ++t) {
    st = cell.Forward(Tensor::Randn({3, 2}, &rng, 3.0f), st);
  }
  for (int64_t i = 0; i < st.h.size(); ++i) {
    EXPECT_GE(st.h.flat(i), -1.0f);
    EXPECT_LE(st.h.flat(i), 1.0f);
  }
}

TEST(LstmCellTest, ZeroInputZeroStateGivesBoundedNonExplosion) {
  Rng rng(11);
  LstmCell cell(2, 4, &rng);
  auto st = cell.InitialState(1);
  auto next = cell.Forward(Tensor::Zeros({1, 2}), st);
  for (int64_t i = 0; i < next.h.size(); ++i) {
    EXPECT_LT(std::abs(next.h.flat(i)), 1.0f);
  }
}

TEST(LstmTest, SequenceOutputsCollectAllSteps) {
  Rng rng(12);
  Lstm lstm(2, 5, &rng);
  std::vector<Tensor> steps;
  for (int t = 0; t < 4; ++t) steps.push_back(Tensor::Randn({3, 2}, &rng));
  std::vector<Tensor> outs;
  auto final_state = lstm.Forward(steps, &outs);
  ASSERT_EQ(outs.size(), 4u);
  EXPECT_EQ(final_state.h.shape(), (Shape{3, 5}));
  // Final output equals last collected hidden state.
  for (int64_t i = 0; i < final_state.h.size(); ++i) {
    EXPECT_FLOAT_EQ(final_state.h.flat(i), outs.back().flat(i));
  }
}

TEST(LstmTest, GradientsReachAllParameters) {
  Rng rng(13);
  Lstm lstm(2, 3, &rng);
  std::vector<Tensor> steps;
  for (int t = 0; t < 3; ++t) steps.push_back(Tensor::Randn({2, 2}, &rng));
  auto state = lstm.Forward(steps);
  ops::Mean(ops::Square(state.h)).Backward();
  for (const Tensor& p : lstm.Parameters()) {
    Tensor g = p.grad();
    bool any = false;
    for (int64_t i = 0; i < g.size(); ++i) any = any || g.flat(i) != 0.0f;
    EXPECT_TRUE(any) << "parameter with zero gradient";
  }
}

TEST(LstmTest, CanOverfitTinySequenceTask) {
  // Regression: LSTM + linear head should fit a 2-step deterministic mapping.
  Rng rng(14);
  Lstm lstm(1, 8, &rng);
  Linear head(8, 1, &rng);
  Adam opt(0.02f);
  opt.AddGroup(lstm.Parameters());
  opt.AddGroup(head.Parameters());

  std::vector<Tensor> steps = {Tensor::FromVector({2, 1}, {0.1f, 0.9f}),
                               Tensor::FromVector({2, 1}, {0.2f, 0.8f})};
  Tensor target = Tensor::FromVector({2, 1}, {1.0f, -1.0f});
  float final_loss = 1e9f;
  for (int it = 0; it < 300; ++it) {
    opt.ZeroGrad();
    Tensor pred = head.Forward(lstm.Forward(steps).h);
    Tensor loss = MseLoss(pred, target);
    loss.Backward();
    opt.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 1e-2f);
}

// --- Dropout and the module training mode ------------------------------------

TEST(DropoutTest, EvalModeIsIdentityAndConsumesNoRng) {
  Rng rng(20);
  Dropout drop(0.5f);
  drop.eval();
  Tensor x = Tensor::Randn({4, 8}, &rng, 1.0f);
  // Null rng proves eval mode never draws.
  Tensor y = drop.Forward(x, /*rng=*/nullptr);
  for (int64_t i = 0; i < x.size(); ++i) EXPECT_EQ(y.flat(i), x.flat(i));
}

TEST(DropoutTest, TrainModeZeroesAndRescales) {
  Rng rng(21);
  Dropout drop(0.5f);
  ASSERT_TRUE(drop.is_training());
  Tensor x = Tensor::Full({64, 16}, 1.0f);
  Rng mask_rng(7);
  Tensor y = drop.Forward(x, &mask_rng);
  int64_t zeros = 0;
  double sum = 0.0;
  for (int64_t i = 0; i < y.size(); ++i) {
    const float v = y.flat(i);
    EXPECT_TRUE(v == 0.0f || v == 2.0f);  // inverted scaling at rate 0.5
    zeros += v == 0.0f ? 1 : 0;
    sum += v;
  }
  EXPECT_GT(zeros, 0);
  EXPECT_LT(zeros, y.size());
  // E[y] == E[x]: the survivor scaling keeps the expectation.
  EXPECT_NEAR(sum / static_cast<double>(y.size()), 1.0, 0.15);
}

TEST(DropoutTest, ZeroRateIsAlwaysIdentity) {
  Rng rng(22);
  Dropout drop(0.0f);
  Tensor x = Tensor::Randn({3, 3}, &rng, 1.0f);
  Tensor y = drop.Forward(x, /*rng=*/nullptr);
  for (int64_t i = 0; i < x.size(); ++i) EXPECT_EQ(y.flat(i), x.flat(i));
}

TEST(DropoutTest, GradientFlowsOnlyThroughKeptElements) {
  Dropout drop(0.5f);
  Tensor x = Tensor::Full({16, 8}, 1.0f, /*requires_grad=*/true);
  Rng mask_rng(9);
  Tensor y = drop.Forward(x, &mask_rng);
  ops::Sum(y).Backward();
  Tensor g = x.grad();
  for (int64_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(g.flat(i), y.flat(i));  // dy/dx is the applied mask (0 or 2)
  }
}

TEST(ModuleModeTest, TrainEvalRecursesThroughChildren) {
  Rng rng(23);
  Mlp mlp({3, 4, 2}, &rng);
  Lstm lstm(2, 4, &rng);
  EXPECT_TRUE(mlp.is_training());
  mlp.eval();
  EXPECT_FALSE(mlp.is_training());
  lstm.eval();
  EXPECT_FALSE(lstm.cell().is_training());
  lstm.train();
  EXPECT_TRUE(lstm.cell().is_training());
}

class ActivationSweep : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationSweep, MlpForwardFinite) {
  Rng rng(15);
  Mlp mlp({3, 6, 2}, &rng, GetParam());
  Tensor y = mlp.Forward(Tensor::Randn({4, 3}, &rng, 2.0f));
  for (int64_t i = 0; i < y.size(); ++i) EXPECT_TRUE(std::isfinite(y.flat(i)));
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationSweep,
                         ::testing::Values(Activation::kNone, Activation::kRelu,
                                           Activation::kTanh, Activation::kSigmoid));

}  // namespace
}  // namespace nn
}  // namespace adaptraj
