// Tests for SGD / Adam optimizers, parameter groups and gradient clipping.

#include "nn/optimizer.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/losses.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace adaptraj {
namespace nn {
namespace {

// Loss f(x) = sum((x - target)^2) with a known minimum.
Tensor QuadLoss(const Tensor& x, const Tensor& target) {
  return ops::Sum(ops::Square(ops::Sub(x, target)));
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromVector({2}, {5.0f, -3.0f}, /*requires_grad=*/true);
  Tensor target = Tensor::FromVector({2}, {1.0f, 2.0f});
  Sgd opt(0.1f);
  opt.AddGroup({x});
  for (int it = 0; it < 100; ++it) {
    opt.ZeroGrad();
    QuadLoss(x, target).Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.flat(0), 1.0f, 1e-3);
  EXPECT_NEAR(x.flat(1), 2.0f, 1e-3);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Tensor target = Tensor::FromVector({1}, {0.0f});
  Tensor x_plain = Tensor::FromVector({1}, {10.0f}, /*requires_grad=*/true);
  Tensor x_mom = Tensor::FromVector({1}, {10.0f}, /*requires_grad=*/true);
  Sgd plain(0.01f);
  plain.AddGroup({x_plain});
  Sgd mom(0.01f, /*momentum=*/0.9f);
  mom.AddGroup({x_mom});
  for (int it = 0; it < 30; ++it) {
    plain.ZeroGrad();
    QuadLoss(x_plain, target).Backward();
    plain.Step();
    mom.ZeroGrad();
    QuadLoss(x_mom, target).Backward();
    mom.Step();
  }
  EXPECT_LT(std::fabs(x_mom.flat(0)), std::fabs(x_plain.flat(0)));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromVector({3}, {4.0f, -4.0f, 0.5f}, /*requires_grad=*/true);
  Tensor target = Tensor::FromVector({3}, {1.0f, 1.0f, 1.0f});
  Adam opt(0.1f);
  opt.AddGroup({x});
  for (int it = 0; it < 300; ++it) {
    opt.ZeroGrad();
    QuadLoss(x, target).Backward();
    opt.Step();
  }
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x.flat(i), 1.0f, 1e-2);
}

TEST(AdamTest, FirstStepSizeBoundedByLr) {
  // Adam's bias-corrected first step has magnitude ~lr regardless of grad scale.
  Tensor x = Tensor::FromVector({1}, {0.0f}, /*requires_grad=*/true);
  Adam opt(0.05f);
  opt.AddGroup({x});
  opt.ZeroGrad();
  ops::MulScalar(ops::Sum(x), 1000.0f).Backward();
  opt.Step();
  EXPECT_NEAR(std::fabs(x.flat(0)), 0.05f, 5e-3);
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  Tensor x = Tensor::FromVector({1}, {1.0f}, /*requires_grad=*/true);
  Adam opt(0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  opt.AddGroup({x});
  for (int it = 0; it < 50; ++it) {
    opt.ZeroGrad();
    // Zero data gradient: decay only.
    ops::MulScalar(ops::Sum(x), 0.0f).Backward();
    opt.Step();
  }
  EXPECT_LT(x.flat(0), 1.0f);
}

TEST(ParamGroupTest, ZeroScaleFreezesGroup) {
  Tensor frozen = Tensor::FromVector({1}, {3.0f}, /*requires_grad=*/true);
  Tensor live = Tensor::FromVector({1}, {3.0f}, /*requires_grad=*/true);
  Tensor target = Tensor::FromVector({1}, {0.0f});
  Adam opt(0.1f);
  int g_frozen = opt.AddGroup({frozen}, /*lr_scale=*/0.0f);
  opt.AddGroup({live}, /*lr_scale=*/1.0f);
  for (int it = 0; it < 20; ++it) {
    opt.ZeroGrad();
    ops::Add(QuadLoss(frozen, target), QuadLoss(live, target)).Backward();
    opt.Step();
  }
  EXPECT_FLOAT_EQ(frozen.flat(0), 3.0f);
  EXPECT_LT(std::fabs(live.flat(0)), 3.0f);
  // Unfreeze and verify movement resumes.
  opt.SetGroupScale(g_frozen, 1.0f);
  opt.ZeroGrad();
  QuadLoss(frozen, target).Backward();
  opt.Step();
  EXPECT_NE(frozen.flat(0), 3.0f);
}

TEST(ParamGroupTest, ScalesProduceProportionalSgdSteps) {
  Tensor a = Tensor::FromVector({1}, {1.0f}, /*requires_grad=*/true);
  Tensor b = Tensor::FromVector({1}, {1.0f}, /*requires_grad=*/true);
  Sgd opt(0.1f);
  opt.AddGroup({a}, 1.0f);
  opt.AddGroup({b}, 0.5f);
  opt.ZeroGrad();
  ops::Add(ops::Sum(a), ops::Sum(b)).Backward();
  opt.Step();
  // Gradients are both 1; steps are lr*scale.
  EXPECT_NEAR(1.0f - a.flat(0), 0.1f, 1e-6);
  EXPECT_NEAR(1.0f - b.flat(0), 0.05f, 1e-6);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 1.0f}, /*requires_grad=*/true);
  ops::Sum(x).Backward();  // grad = (1, 1), norm = sqrt(2)
  ClipGradNorm({x}, 10.0f);
  EXPECT_FLOAT_EQ(x.grad().flat(0), 1.0f);
}

TEST(ClipGradNormTest, RescalesLargeGradients) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 1.0f}, /*requires_grad=*/true);
  ops::MulScalar(ops::Sum(x), 100.0f).Backward();  // grad = (100, 100)
  ClipGradNorm({x}, 1.0f);
  Tensor g = x.grad();
  float norm = std::sqrt(g.flat(0) * g.flat(0) + g.flat(1) * g.flat(1));
  EXPECT_NEAR(norm, 1.0f, 1e-4);
}

// --- Vectorized update kernels ----------------------------------------------
//
// The Sgd/Adam Step() loops now run through kernels::SgdUpdate/AdamUpdate
// (Vec16 with a zero-padded tail). These tests pin them against the scalar
// reference recurrence.

TEST(AdamUpdateKernelTest, MatchesScalarReference) {
  const int64_t n = 67;  // not a multiple of 16: exercises the tail
  Rng rng(12);
  std::vector<float> param(n), grad(n), m(n, 0.0f), v(n, 0.0f);
  for (auto& x : param) x = rng.Normal(0.0f, 1.0f);
  for (auto& x : grad) x = rng.Normal(0.0f, 3.0f);
  std::vector<float> p_ref = param, m_ref = m, v_ref = v;
  const float lr = 0.01f, b1 = 0.9f, b2 = 0.999f, eps = 1e-8f, wd = 0.1f;
  for (int t = 1; t <= 3; ++t) {
    const float bc1 = 1.0f - std::pow(b1, static_cast<float>(t));
    const float bc2 = 1.0f - std::pow(b2, static_cast<float>(t));
    kernels::AdamUpdate(param.data(), grad.data(), m.data(), v.data(), n, lr, b1,
                        b2, eps, wd, bc1, bc2);
    for (int64_t i = 0; i < n; ++i) {
      float g = grad[i] + wd * p_ref[i];
      m_ref[i] = b1 * m_ref[i] + (1.0f - b1) * g;
      v_ref[i] = b2 * v_ref[i] + (1.0f - b2) * g * g;
      p_ref[i] -= lr * (m_ref[i] / bc1) / (std::sqrt(v_ref[i] / bc2) + eps);
    }
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_NEAR(param[i], p_ref[i], 1e-6f) << "step " << t << " element " << i;
      ASSERT_NEAR(m[i], m_ref[i], 1e-6f);
      ASSERT_NEAR(v[i], v_ref[i], 1e-6f);
    }
  }
}

TEST(AdamUpdateKernelTest, DeterministicAcrossRuns) {
  const int64_t n = 123;
  Rng rng(9);
  std::vector<float> grad(n);
  for (auto& x : grad) x = rng.Normal(0.0f, 1.0f);
  auto run = [&grad, n]() {
    std::vector<float> p(n, 0.5f), m(n, 0.0f), v(n, 0.0f);
    for (int t = 1; t <= 5; ++t) {
      kernels::AdamUpdate(p.data(), grad.data(), m.data(), v.data(), n, 0.02f,
                          0.9f, 0.999f, 1e-8f, 0.0f, 0.1f, 0.01f);
    }
    return p;
  };
  const std::vector<float> a = run();
  const std::vector<float> b = run();
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(SgdUpdateKernelTest, MatchesScalarReference) {
  const int64_t n = 37;
  Rng rng(4);
  std::vector<float> param(n), grad(n), vel(n, 0.0f);
  for (auto& x : param) x = rng.Normal(0.0f, 1.0f);
  for (auto& x : grad) x = rng.Normal(0.0f, 1.0f);
  std::vector<float> p_ref = param, v_ref = vel;
  for (int t = 0; t < 3; ++t) {
    kernels::SgdUpdate(param.data(), grad.data(), vel.data(), n, 0.1f, 0.9f);
    for (int64_t i = 0; i < n; ++i) {
      v_ref[i] = 0.9f * v_ref[i] + grad[i];
      p_ref[i] -= 0.1f * v_ref[i];
    }
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_NEAR(param[i], p_ref[i], 1e-6f) << "element " << i;
      ASSERT_NEAR(vel[i], v_ref[i], 1e-6f);
    }
  }
}

TEST(OptimizerIntegrationTest, MlpRegressionConverges) {
  Rng rng(77);
  Mlp mlp({1, 16, 1}, &rng, Activation::kTanh);
  Adam opt(0.02f);
  opt.AddGroup(mlp.Parameters());
  // Fit y = 2x - 1 on five points.
  Tensor x = Tensor::FromVector({5, 1}, {-1.0f, -0.5f, 0.0f, 0.5f, 1.0f});
  Tensor y = Tensor::FromVector({5, 1}, {-3.0f, -2.0f, -1.0f, 0.0f, 1.0f});
  float loss_val = 1e9f;
  for (int it = 0; it < 500; ++it) {
    opt.ZeroGrad();
    Tensor loss = MseLoss(mlp.Forward(x), y);
    loss.Backward();
    opt.Step();
    loss_val = loss.item();
  }
  EXPECT_LT(loss_val, 1e-2f);
}

}  // namespace
}  // namespace nn
}  // namespace adaptraj
