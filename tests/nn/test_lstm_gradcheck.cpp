// Numerical gradient checks through recurrent structures: verifies that
// backpropagation-through-time over the LstmCell matches finite differences.

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "tensor/gradcheck.h"

namespace adaptraj {
namespace nn {
namespace {

TEST(LstmGradCheckTest, SingleStepAllParameters) {
  Rng rng(1);
  LstmCell cell(2, 3, &rng);
  Tensor x = Tensor::Randn({2, 2}, &rng, 0.5f);
  auto params = cell.Parameters();
  auto report = CheckGradients(
      [&](const std::vector<Tensor>&) {
        auto st = cell.Forward(x, cell.InitialState(2));
        return ops::Sum(ops::Square(st.h));
      },
      params);
  EXPECT_TRUE(report.ok) << "abs=" << report.max_abs_error
                         << " rel=" << report.max_rel_error;
}

TEST(LstmGradCheckTest, ThreeStepUnrollThroughTime) {
  Rng rng(2);
  Lstm lstm(2, 3, &rng);
  std::vector<Tensor> steps;
  for (int t = 0; t < 3; ++t) steps.push_back(Tensor::Randn({1, 2}, &rng, 0.5f));
  auto params = lstm.Parameters();
  auto report = CheckGradients(
      [&](const std::vector<Tensor>&) {
        return ops::Sum(ops::Square(lstm.Forward(steps).h));
      },
      params);
  EXPECT_TRUE(report.ok) << "abs=" << report.max_abs_error
                         << " rel=" << report.max_rel_error;
}

TEST(LstmGradCheckTest, GradientFlowsThroughInputsAcrossTime) {
  // The first step's input must influence the final state (no broken BPTT).
  Rng rng(3);
  Lstm lstm(2, 4, &rng);
  Tensor x0 = Tensor::Randn({1, 2}, &rng, 0.5f, /*requires_grad=*/true);
  std::vector<Tensor> steps = {x0, Tensor::Randn({1, 2}, &rng, 0.5f),
                               Tensor::Randn({1, 2}, &rng, 0.5f)};
  ops::Sum(ops::Square(lstm.Forward(steps).h)).Backward();
  Tensor g = x0.grad();
  float total = 0.0f;
  for (int64_t i = 0; i < g.size(); ++i) total += std::fabs(g.flat(i));
  EXPECT_GT(total, 1e-6f);
}

TEST(LstmGradCheckTest, CellStateCarriesLongRangeSignal) {
  // With forget bias 1, information persists: perturbing step 0 changes the
  // state after 8 steps measurably.
  Rng rng(4);
  LstmCell cell(1, 4, &rng);
  auto rollout = [&](float first_input) {
    auto st = cell.InitialState(1);
    for (int t = 0; t < 8; ++t) {
      Tensor x = Tensor::Full({1, 1}, t == 0 ? first_input : 0.1f);
      st = cell.Forward(x, st);
    }
    return st.h;
  };
  Tensor a = rollout(1.0f);
  Tensor b = rollout(-1.0f);
  float diff = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) diff += std::fabs(a.flat(i) - b.flat(i));
  EXPECT_GT(diff, 1e-3f);
}

}  // namespace
}  // namespace nn
}  // namespace adaptraj
