// Tests for parameter checkpoint save/load (Status-based error paths), the
// versioned header, and the train->save->load->Predict round trip.

#include "nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "core/adaptraj_method.h"
#include "data/multi_domain.h"
#include "nn/layers.h"

namespace adaptraj {
namespace nn {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTripRestoresValues) {
  Rng rng(1);
  Mlp src({3, 4, 2}, &rng);
  const std::string path = TempPath("mlp_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(src, path).ok());

  Rng rng2(999);  // different init
  Mlp dst({3, 4, 2}, &rng2);
  ASSERT_TRUE(LoadParameters(&dst, path).ok());

  auto a = src.NamedParameters();
  auto b = dst.NamedParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].first, b[i].first);
    for (int64_t j = 0; j < a[i].second.size(); ++j) {
      EXPECT_FLOAT_EQ(a[i].second.flat(j), b[i].second.flat(j));
    }
  }
}

TEST(SerializeTest, RoundTripPreservesForwardOutputs) {
  Rng rng(2);
  Lstm src(2, 4, &rng);
  const std::string path = TempPath("lstm_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(src, path).ok());
  Rng rng2(3);
  Lstm dst(2, 4, &rng2);
  ASSERT_TRUE(LoadParameters(&dst, path).ok());

  Rng data_rng(4);
  std::vector<Tensor> steps = {Tensor::Randn({2, 2}, &data_rng),
                               Tensor::Randn({2, 2}, &data_rng)};
  Tensor ha = src.Forward(steps).h;
  Tensor hb = dst.Forward(steps).h;
  for (int64_t i = 0; i < ha.size(); ++i) EXPECT_FLOAT_EQ(ha.flat(i), hb.flat(i));
}

TEST(SerializeTest, MissingFileReturnsIOError) {
  Rng rng(5);
  Mlp m({2, 2}, &rng);
  Status st = LoadParameters(&m, TempPath("does_not_exist.bin"));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(SerializeTest, CorruptMagicReturnsInvalid) {
  const std::string path = TempPath("corrupt.bin");
  std::ofstream(path) << "not a checkpoint";
  Rng rng(6);
  Mlp m({2, 2}, &rng);
  Status st = LoadParameters(&m, path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, ShapeMismatchReturnsInvalid) {
  Rng rng(7);
  Mlp small({2, 3}, &rng);
  const std::string path = TempPath("shape_mismatch.bin");
  ASSERT_TRUE(SaveParameters(small, path).ok());
  Mlp larger({2, 4}, &rng);  // same parameter names, different shapes
  Status st = LoadParameters(&larger, path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, ParameterCountMismatchReturnsInvalid) {
  Rng rng(8);
  Mlp two_layer({2, 3, 1}, &rng);
  const std::string path = TempPath("count_mismatch.bin");
  ASSERT_TRUE(SaveParameters(two_layer, path).ok());
  Mlp one_layer({2, 1}, &rng);
  Status st = LoadParameters(&one_layer, path);
  EXPECT_FALSE(st.ok());
}

TEST(SerializeTest, TruncatedFileReturnsError) {
  Rng rng(9);
  Mlp m({4, 4}, &rng);
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(SaveParameters(m, path).ok());
  // Truncate to the first 24 bytes.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> head(24);
  in.read(head.data(), head.size());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(head.data(), head.size());
  out.close();
  Status st = LoadParameters(&m, path);
  EXPECT_FALSE(st.ok());
}

// --- Versioned header --------------------------------------------------------

TEST(SerializeHeaderTest, WrongVersionReturnsInvalidWithBothVersions) {
  Rng rng(10);
  Mlp m({2, 2}, &rng);
  const std::string path = TempPath("future_version.bin");
  ASSERT_TRUE(SaveParameters(m, path).ok());
  // Bump the version field (bytes 4..8) to a future value.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  const uint32_t future = kCheckpointVersion + 7;
  f.seekp(4);
  f.write(reinterpret_cast<const char*>(&future), sizeof(future));
  f.close();
  Status st = LoadParameters(&m, path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("version " + std::to_string(future)),
            std::string::npos);
  EXPECT_NE(st.message().find("reads version " + std::to_string(kCheckpointVersion)),
            std::string::npos);
}

TEST(SerializeHeaderTest, LegacyV1LayoutIsCalledOutExplicitly) {
  // Reconstruct the pre-versioning layout: "ATRJ1\n" then uint64 count = 0.
  const std::string path = TempPath("legacy_v1.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("ATRJ1\n", 6);
    const uint64_t count = 0;
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  }
  Rng rng(11);
  Mlp m({2, 2}, &rng);
  Status st = LoadParameters(&m, path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("legacy"), std::string::npos);
}

TEST(SerializeHeaderTest, EndiannessMismatchReturnsInvalid) {
  Rng rng(12);
  Mlp m({2, 2}, &rng);
  const std::string path = TempPath("endian.bin");
  ASSERT_TRUE(SaveParameters(m, path).ok());
  // Byte-swap the endianness tag (bytes 8..12), as a foreign-endian writer
  // would have produced it.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(8);
  char tag[4];
  f.read(tag, 4);
  std::swap(tag[0], tag[3]);
  std::swap(tag[1], tag[2]);
  f.seekp(8);
  f.write(tag, 4);
  f.close();
  Status st = LoadParameters(&m, path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("byte order"), std::string::npos);
}

TEST(SerializeHeaderTest, ForeignEndianFileReportsByteOrderNotVersion) {
  // A genuinely foreign-endian writer stores BOTH the version and the tag
  // byte-swapped; the loader must name the byte order, not a nonsense
  // version number.
  Rng rng(14);
  Mlp m({2, 2}, &rng);
  const std::string path = TempPath("foreign_endian.bin");
  ASSERT_TRUE(SaveParameters(m, path).ok());
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  char header[8];
  f.seekg(4);
  f.read(header, 8);  // version (4..8) then endian tag (8..12)
  std::swap(header[0], header[3]);
  std::swap(header[1], header[2]);
  std::swap(header[4], header[7]);
  std::swap(header[5], header[6]);
  f.seekp(4);
  f.write(header, 8);
  f.close();
  Status st = LoadParameters(&m, path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("byte order"), std::string::npos);
  EXPECT_EQ(st.message().find("format version"), std::string::npos);
}

TEST(SerializeHeaderTest, CorruptEndianTagReturnsInvalid) {
  Rng rng(13);
  Mlp m({2, 2}, &rng);
  const std::string path = TempPath("garbage_endian.bin");
  ASSERT_TRUE(SaveParameters(m, path).ok());
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  const uint32_t junk = 0xDEADBEEFu;
  f.seekp(8);
  f.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  f.close();
  Status st = LoadParameters(&m, path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("endianness tag"), std::string::npos);
}

// --- Train -> save -> load -> Predict round trip -----------------------------

TEST(SerializeRoundTripTest, AdapTrajCheckpointPredictsBitIdentically) {
  data::CorpusConfig corpus;
  corpus.num_scenes = 2;
  corpus.steps_per_scene = 45;
  corpus.seed = 404;
  auto dgd = data::BuildDomainGeneralizationData(
      {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, corpus);

  models::BackboneConfig bb;
  bb.embed_dim = 8;
  bb.hidden_dim = 16;
  bb.social_dim = 16;
  bb.latent_dim = 4;
  core::AdapTrajConfig acfg;
  acfg.feature_dim = 8;
  acfg.fused_dim = 8;
  acfg.num_source_domains = 2;

  core::AdapTrajMethod trained(models::BackboneKind::kSeq2Seq, bb, acfg, 5);
  core::TrainConfig t;
  t.epochs = 2;
  t.batch_size = 16;
  t.max_batches_per_epoch = 2;
  trained.Train(dgd, t);

  const std::string path = TempPath("adaptraj_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(trained.model(), path).ok());

  // A freshly constructed method with different init must predict exactly
  // like the trained one after loading the checkpoint.
  core::AdapTrajMethod restored(models::BackboneKind::kSeq2Seq, bb, acfg, 999);
  ASSERT_TRUE(LoadParameters(&restored.model(), path).ok());

  data::SequenceConfig seq_cfg;
  std::vector<const data::TrajectorySequence*> ptrs;
  for (size_t i = 0; i < 6; ++i) ptrs.push_back(&dgd.target.test.sequences[i]);
  data::Batch batch = data::MakeBatch(ptrs, seq_cfg);
  for (bool sample : {false, true}) {
    Rng r1(77);
    Tensor a = trained.Predict(batch, &r1, sample);
    Rng r2(77);
    Tensor b = restored.Predict(batch, &r2, sample);
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.size()) * sizeof(float)),
              0);
  }
}

TEST(StatusTest, ToStringAndAccessors) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status inv = Status::Invalid("bad");
  EXPECT_FALSE(inv.ok());
  EXPECT_EQ(inv.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(inv.ToString(), "InvalidArgument: bad");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad(Status::NotFound("missing"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace nn
}  // namespace adaptraj
