// Tests for parameter checkpoint save/load (Status-based error paths).

#include "nn/serialize.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "nn/layers.h"

namespace adaptraj {
namespace nn {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTripRestoresValues) {
  Rng rng(1);
  Mlp src({3, 4, 2}, &rng);
  const std::string path = TempPath("mlp_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(src, path).ok());

  Rng rng2(999);  // different init
  Mlp dst({3, 4, 2}, &rng2);
  ASSERT_TRUE(LoadParameters(&dst, path).ok());

  auto a = src.NamedParameters();
  auto b = dst.NamedParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].first, b[i].first);
    for (int64_t j = 0; j < a[i].second.size(); ++j) {
      EXPECT_FLOAT_EQ(a[i].second.flat(j), b[i].second.flat(j));
    }
  }
}

TEST(SerializeTest, RoundTripPreservesForwardOutputs) {
  Rng rng(2);
  Lstm src(2, 4, &rng);
  const std::string path = TempPath("lstm_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(src, path).ok());
  Rng rng2(3);
  Lstm dst(2, 4, &rng2);
  ASSERT_TRUE(LoadParameters(&dst, path).ok());

  Rng data_rng(4);
  std::vector<Tensor> steps = {Tensor::Randn({2, 2}, &data_rng),
                               Tensor::Randn({2, 2}, &data_rng)};
  Tensor ha = src.Forward(steps).h;
  Tensor hb = dst.Forward(steps).h;
  for (int64_t i = 0; i < ha.size(); ++i) EXPECT_FLOAT_EQ(ha.flat(i), hb.flat(i));
}

TEST(SerializeTest, MissingFileReturnsIOError) {
  Rng rng(5);
  Mlp m({2, 2}, &rng);
  Status st = LoadParameters(&m, TempPath("does_not_exist.bin"));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(SerializeTest, CorruptMagicReturnsInvalid) {
  const std::string path = TempPath("corrupt.bin");
  std::ofstream(path) << "not a checkpoint";
  Rng rng(6);
  Mlp m({2, 2}, &rng);
  Status st = LoadParameters(&m, path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, ShapeMismatchReturnsInvalid) {
  Rng rng(7);
  Mlp small({2, 3}, &rng);
  const std::string path = TempPath("shape_mismatch.bin");
  ASSERT_TRUE(SaveParameters(small, path).ok());
  Mlp larger({2, 4}, &rng);  // same parameter names, different shapes
  Status st = LoadParameters(&larger, path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, ParameterCountMismatchReturnsInvalid) {
  Rng rng(8);
  Mlp two_layer({2, 3, 1}, &rng);
  const std::string path = TempPath("count_mismatch.bin");
  ASSERT_TRUE(SaveParameters(two_layer, path).ok());
  Mlp one_layer({2, 1}, &rng);
  Status st = LoadParameters(&one_layer, path);
  EXPECT_FALSE(st.ok());
}

TEST(SerializeTest, TruncatedFileReturnsError) {
  Rng rng(9);
  Mlp m({4, 4}, &rng);
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(SaveParameters(m, path).ok());
  // Truncate to the first 24 bytes.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> head(24);
  in.read(head.data(), head.size());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(head.data(), head.size());
  out.close();
  Status st = LoadParameters(&m, path);
  EXPECT_FALSE(st.ok());
}

TEST(StatusTest, ToStringAndAccessors) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status inv = Status::Invalid("bad");
  EXPECT_FALSE(inv.ok());
  EXPECT_EQ(inv.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(inv.ToString(), "InvalidArgument: bad");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad(Status::NotFound("missing"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace nn
}  // namespace adaptraj
