// Tests for loss functions, including the paper-specific SIMSE and
// orthogonality losses (Eqs. 14 and 20).

#include "nn/losses.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"

namespace adaptraj {
namespace nn {
namespace {

TEST(MseLossTest, ZeroWhenEqual) {
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(MseLoss(a, a).item(), 0.0f);
}

TEST(MseLossTest, KnownValue) {
  Tensor a = Tensor::FromVector({2}, {0.0f, 0.0f});
  Tensor b = Tensor::FromVector({2}, {3.0f, 4.0f});
  EXPECT_FLOAT_EQ(MseLoss(a, b).item(), (9.0f + 16.0f) / 2.0f);
}

TEST(SimseLossTest, ZeroWhenEqual) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  EXPECT_NEAR(SimseLoss(a, a).item(), 0.0f, 1e-7);
}

TEST(SimseLossTest, ZeroForConstantOffset) {
  // A uniform shift is fully credited by the scale-invariant term:
  // (1/m)sum(d^2) - (1/m^2)(sum d)^2 = c^2 - c^2 = 0 when d == c.
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({4}, {3, 4, 5, 6});
  EXPECT_NEAR(SimseLoss(a, b).item(), 0.0f, 1e-6);
}

TEST(SimseLossTest, PositiveForOpposingErrors) {
  Tensor a = Tensor::FromVector({2}, {1.0f, -1.0f});
  Tensor b = Tensor::FromVector({2}, {0.0f, 0.0f});
  // d = (1, -1): (1/2)(2) - (1/4)(0)^2 = 1.
  EXPECT_NEAR(SimseLoss(a, b).item(), 1.0f, 1e-6);
}

TEST(SimseLossTest, NeverExceedsMse) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Tensor a = Tensor::Randn({6}, &rng);
    Tensor b = Tensor::Randn({6}, &rng);
    EXPECT_LE(SimseLoss(a, b).item(), MseLoss(a, b).item() + 1e-6f);
    EXPECT_GE(SimseLoss(a, b).item(), -1e-6f);
  }
}

TEST(SimseLossTest, GradCheck) {
  Rng rng(2);
  Tensor pred = Tensor::Randn({5}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor target = Tensor::Randn({5}, &rng);
  auto report = CheckGradients(
      [&](const std::vector<Tensor>& in) { return SimseLoss(in[0], target); }, {pred});
  EXPECT_TRUE(report.ok) << report.max_abs_error;
}

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Tensor logits = Tensor::Zeros({2, 4});
  Tensor loss = CrossEntropyLoss(logits, {0, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5);
}

TEST(CrossEntropyTest, ConfidentCorrectPredictionLowLoss) {
  Tensor logits = Tensor::FromVector({1, 3}, {10.0f, -10.0f, -10.0f});
  EXPECT_LT(CrossEntropyLoss(logits, {0}).item(), 1e-4f);
}

TEST(CrossEntropyTest, ConfidentWrongPredictionHighLoss) {
  Tensor logits = Tensor::FromVector({1, 3}, {10.0f, -10.0f, -10.0f});
  EXPECT_GT(CrossEntropyLoss(logits, {1}).item(), 10.0f);
}

TEST(CrossEntropyTest, GradCheck) {
  Rng rng(3);
  Tensor logits = Tensor::Randn({3, 4}, &rng, 1.0f, /*requires_grad=*/true);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) { return CrossEntropyLoss(in[0], {1, 0, 3}); },
      {logits});
  EXPECT_TRUE(report.ok) << report.max_abs_error;
}

TEST(KlTest, ZeroForStandardNormal) {
  Tensor mu = Tensor::Zeros({2, 3});
  Tensor logvar = Tensor::Zeros({2, 3});
  EXPECT_NEAR(KlStandardNormal(mu, logvar).item(), 0.0f, 1e-6);
}

TEST(KlTest, PositiveForShiftedMean) {
  Tensor mu = Tensor::Full({1, 2}, 2.0f);
  Tensor logvar = Tensor::Zeros({1, 2});
  // KL = 0.5 * sum(mu^2) = 4.
  EXPECT_NEAR(KlStandardNormal(mu, logvar).item(), 4.0f, 1e-5);
}

TEST(KlTest, GradCheck) {
  Rng rng(4);
  Tensor mu = Tensor::Randn({2, 3}, &rng, 0.5f, /*requires_grad=*/true);
  Tensor logvar = Tensor::Randn({2, 3}, &rng, 0.5f, /*requires_grad=*/true);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) { return KlStandardNormal(in[0], in[1]); },
      {mu, logvar});
  EXPECT_TRUE(report.ok) << report.max_abs_error;
}

TEST(OrthogonalityTest, ZeroForOrthogonalFeatures) {
  // Columns of a live in dim 0, columns of b in dim 1 => A^T B == 0.
  Tensor a = Tensor::FromVector({2, 1}, {1.0f, 0.0f});
  Tensor b = Tensor::FromVector({2, 1}, {0.0f, 1.0f});
  EXPECT_NEAR(OrthogonalityLoss(a, b).item(), 0.0f, 1e-7);
}

TEST(OrthogonalityTest, PositiveForAlignedFeatures) {
  Tensor a = Tensor::FromVector({2, 1}, {1.0f, 1.0f});
  EXPECT_GT(OrthogonalityLoss(a, a).item(), 0.5f);
}

TEST(OrthogonalityTest, BatchInvariantMagnitude) {
  // Duplicating the batch should keep the normalized loss constant.
  Tensor a1 = Tensor::FromVector({2, 2}, {1, 0, 0, 1});
  Tensor b1 = Tensor::FromVector({2, 2}, {1, 1, 1, 0});
  Tensor a2 = Tensor::FromVector({4, 2}, {1, 0, 0, 1, 1, 0, 0, 1});
  Tensor b2 = Tensor::FromVector({4, 2}, {1, 1, 1, 0, 1, 1, 1, 0});
  EXPECT_NEAR(OrthogonalityLoss(a1, b1).item(), OrthogonalityLoss(a2, b2).item(), 1e-5);
}

TEST(OrthogonalityTest, GradCheck) {
  Rng rng(5);
  Tensor a = Tensor::Randn({3, 2}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({3, 2}, &rng, 1.0f, /*requires_grad=*/true);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) { return OrthogonalityLoss(in[0], in[1]); }, {a, b});
  EXPECT_TRUE(report.ok) << report.max_abs_error;
}

TEST(OrthogonalityTest, MinimizingDrivesGramToZero) {
  // Descent on the loss should decorrelate two feature matrices.
  Rng rng(6);
  Tensor a = Tensor::Randn({4, 3}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({4, 3}, &rng, 1.0f, /*requires_grad=*/true);
  float before = OrthogonalityLoss(a, b).item();
  for (int it = 0; it < 200; ++it) {
    a.ZeroGrad();
    b.ZeroGrad();
    Tensor loss = OrthogonalityLoss(a, b);
    loss.Backward();
    for (Tensor* t : {&a, &b}) {
      auto& impl = *t->impl();
      for (size_t i = 0; i < impl.data.size(); ++i) impl.data[i] -= 0.1f * impl.grad[i];
    }
  }
  float after = OrthogonalityLoss(a, b).item();
  EXPECT_LT(after, before * 0.05f);
}

}  // namespace
}  // namespace nn
}  // namespace adaptraj
