// Tests for support/thread_annotations.h + support/sync.h.
//
// Two obligations, split by compiler:
//   * On NON-Clang compilers the annotation macros must expand to NOTHING —
//     they are GNU attributes only Clang's -Wthread-safety understands, and
//     a stray expansion under GCC would be a hard syntax error in every
//     annotated header. Verified below by stringizing the macros: an empty
//     expansion stringizes to "" (sizeof == 1), checked at compile time.
//   * Everywhere, the annotated support::Mutex / MutexLock / CondVar
//     wrappers must behave exactly like the std primitives they wrap — the
//     smoke tests exercise lock exclusion, the mid-scope Unlock/Lock used by
//     the dispatcher loop, and a condvar handoff, so the wrappers can never
//     drift into annotation-only stubs.
//
// The Clang side of the contract (annotations actually DETECTED misuse) is
// compile-time by nature and lives in CI: the static-analysis job builds
// with -Werror=thread-safety, where e.g. removing an ADAPTRAJ_GUARDED_BY
// from EncodeCache fails the build.

#include "support/thread_annotations.h"

#include <chrono>
#include <condition_variable>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/sync.h"

#ifndef __clang__
// Double indirection so the macro is expanded BEFORE stringization.
#define ADAPTRAJ_TEST_STR_INNER(x) #x
#define ADAPTRAJ_TEST_STR(x) ADAPTRAJ_TEST_STR_INNER(x)

namespace {
adaptraj::support::Mutex test_mu;  // a real capability to name in the macros
}  // namespace

static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_CAPABILITY("mutex"))) == 1,
              "ADAPTRAJ_CAPABILITY must expand to nothing on non-Clang");
static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_SCOPED_CAPABILITY)) == 1,
              "ADAPTRAJ_SCOPED_CAPABILITY must expand to nothing on non-Clang");
static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_GUARDED_BY(test_mu))) == 1,
              "ADAPTRAJ_GUARDED_BY must expand to nothing on non-Clang");
static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_PT_GUARDED_BY(test_mu))) == 1,
              "ADAPTRAJ_PT_GUARDED_BY must expand to nothing on non-Clang");
static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_REQUIRES(test_mu))) == 1,
              "ADAPTRAJ_REQUIRES must expand to nothing on non-Clang");
static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_REQUIRES_SHARED(test_mu))) == 1,
              "ADAPTRAJ_REQUIRES_SHARED must expand to nothing on non-Clang");
static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_ACQUIRE(test_mu))) == 1,
              "ADAPTRAJ_ACQUIRE must expand to nothing on non-Clang");
static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_RELEASE(test_mu))) == 1,
              "ADAPTRAJ_RELEASE must expand to nothing on non-Clang");
static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_TRY_ACQUIRE(true, test_mu))) == 1,
              "ADAPTRAJ_TRY_ACQUIRE must expand to nothing on non-Clang");
static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_EXCLUDES(test_mu))) == 1,
              "ADAPTRAJ_EXCLUDES must expand to nothing on non-Clang");
static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_ACQUIRED_BEFORE(test_mu))) == 1,
              "ADAPTRAJ_ACQUIRED_BEFORE must expand to nothing on non-Clang");
static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_ACQUIRED_AFTER(test_mu))) == 1,
              "ADAPTRAJ_ACQUIRED_AFTER must expand to nothing on non-Clang");
static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_RETURN_CAPABILITY(test_mu))) == 1,
              "ADAPTRAJ_RETURN_CAPABILITY must expand to nothing on non-Clang");
static_assert(sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_ASSERT_CAPABILITY(test_mu))) == 1,
              "ADAPTRAJ_ASSERT_CAPABILITY must expand to nothing on non-Clang");
static_assert(
    sizeof(ADAPTRAJ_TEST_STR(ADAPTRAJ_NO_THREAD_SAFETY_ANALYSIS)) == 1,
    "ADAPTRAJ_NO_THREAD_SAFETY_ANALYSIS must expand to nothing on non-Clang");

#undef ADAPTRAJ_TEST_STR
#undef ADAPTRAJ_TEST_STR_INNER
#endif  // !__clang__

namespace adaptraj {
namespace {

TEST(SyncTest, MutexLockExcludesConcurrentCriticalSections) {
  support::Mutex mu;
  int counter = 0;  // guarded by mu (by convention here; no annotation needed
                    // in a test-local scope)
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIters; ++i) {
        support::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SyncTest, MidScopeUnlockRelockMatchesDispatcherUsage) {
  // The dispatcher loop's shape: hold, unlock to run work, relock to update
  // shared state. The relocked section must again exclude other holders.
  support::Mutex mu;
  int stage = 0;
  support::MutexLock lock(mu);
  stage = 1;
  lock.Unlock();
  std::thread other([&mu, &stage] {
    support::MutexLock inner(mu);
    if (stage == 1) stage = 2;
  });
  other.join();
  lock.Lock();
  EXPECT_EQ(stage, 2);
  stage = 3;
  // Scope exit releases the relocked mutex; a fresh acquisition must succeed.
  lock.Unlock();
  {
    support::MutexLock again(mu);
    EXPECT_EQ(stage, 3);
  }
}

TEST(SyncTest, CondVarHandsOffThroughExplicitWaitLoop) {
  // The repo's convention: explicit `while (!cond) cv.Wait(lock);` loops
  // (the predicate-lambda overload is not annotation-friendly). This is a
  // producer/consumer handoff through that exact shape.
  support::Mutex mu;
  support::CondVar cv;
  bool ready = false;
  int delivered = 0;
  std::thread consumer([&] {
    support::MutexLock lock(mu);
    while (!ready) cv.Wait(lock);
    delivered = 42;
  });
  {
    support::MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  consumer.join();
  support::MutexLock lock(mu);
  EXPECT_EQ(delivered, 42);
}

TEST(SyncTest, CondVarWaitUntilTimesOut) {
  support::Mutex mu;
  support::CondVar cv;
  support::MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // Nothing ever notifies: the wait must come back with a timeout verdict
  // and the lock held (we can still touch guarded state below).
  EXPECT_EQ(cv.WaitUntil(lock, deadline), std::cv_status::timeout);
}

}  // namespace
}  // namespace adaptraj
