// Execution-plan layer (tensor/plan.h): capture/replay bit-identity, the
// fusion pattern-matchers, rng-stream replay, the abort-to-eager safety
// paths, and cache telemetry. Method-level coverage (real backbones, batch
// shapes, serving) lives in tests/core/test_plan_predict.cpp and
// tests/serve/test_plan_serving.cpp.

#include "tensor/plan.h"

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace adaptraj {
namespace {

using namespace ops;  // NOLINT(build/namespaces)

/// Forces plan mode for one test and restores env-resolution afterwards.
class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override { plan::SetMode(plan::Mode::kOn); }
  void TearDown() override { plan::SetMode(plan::Mode::kAuto); }
};

/// One Predict-shaped call: replay when a plan exists, otherwise run (and
/// possibly record) the eager body. Mirrors the PredictSession usage in
/// core::Method implementations.
Tensor RunPlanned(plan::PlanCache* cache, const std::string& key,
                  std::vector<const Tensor*> inputs, Rng* rng,
                  const std::function<Tensor()>& body) {
  NoGradGuard no_grad;
  plan::PredictSession session(cache, key, std::move(inputs), rng);
  if (session.CanReplay()) return session.Replay();
  return session.Finish(body());
}

void ExpectBitIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(float)),
            0);
}

Tensor Iota(const Shape& shape, float scale) {
  int64_t n = 1;
  for (int64_t e : shape) n *= e;
  std::vector<float> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    v[static_cast<size_t>(i)] = scale * static_cast<float>(i % 17 - 8);
  }
  return Tensor::FromVector(shape, std::move(v));
}

TEST_F(PlanTest, CaptureThenReplayBitIdentical) {
  plan::PlanCache cache;
  auto body = [](const Tensor& x, const Tensor& y) {
    Tensor h = Relu(BroadcastAdd(MatMul(x, Transpose(y)), Slice(x, 1, 0, 1)));
    Tensor parts = Concat({h, Tanh(h)}, 1);
    Tensor red = SumAxis(Square(parts), 1, /*keepdim=*/true);
    return Softmax(BroadcastMul(parts, Sigmoid(red)));
  };
  Tensor x1 = Iota({5, 6}, 0.25f), y1 = Iota({5, 6}, -0.125f);
  Tensor x2 = Iota({5, 6}, 0.5f), y2 = Iota({5, 6}, 0.0625f);

  Tensor captured = RunPlanned(&cache, "k", {&x1, &y1}, nullptr,
                               [&] { return body(x1, y1); });
  Tensor replayed = RunPlanned(&cache, "k", {&x2, &y2}, nullptr,
                               [&] { return body(x2, y2); });

  // Eager reference on a cold cache with planning off.
  plan::SetMode(plan::Mode::kOff);
  ExpectBitIdentical(captured, body(x1, y1));
  ExpectBitIdentical(replayed, body(x2, y2));

  plan::CacheStats s = cache.stats();
  EXPECT_EQ(s.plans, 1);
  EXPECT_EQ(s.captures, 1);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.aborted, 0);
  EXPECT_GT(s.arena_bytes, 0);
}

TEST_F(PlanTest, ScaledSoftmaxFusionFiresAndMatches) {
  plan::PlanCache cache;
  auto body = [](const Tensor& x) { return Softmax(MulScalar(x, 0.125f)); };
  Tensor x1 = Iota({4, 9}, 0.5f);
  Tensor x2 = Iota({4, 9}, -0.75f);

  (void)RunPlanned(&cache, "k", {&x1}, nullptr, [&] { return body(x1); });
  // MulScalar folded into the softmax kernel: exactly one step removed.
  EXPECT_EQ(cache.stats().fused_steps, 1);
  Tensor replayed = RunPlanned(&cache, "k", {&x2}, nullptr,
                               [&] { return body(x2); });
  plan::SetMode(plan::Mode::kOff);
  ExpectBitIdentical(replayed, body(x2));
}

TEST_F(PlanTest, MaskedScaledSoftmaxFusionFiresAndMatches) {
  plan::PlanCache cache;
  // The attention-pooling masking idiom (models/interaction.cpp): scale,
  // fill padded slots with -1e9, softmax.
  Tensor mask = Tensor::FromVector({3, 4}, {0, 0, 1, 1, 0, 1, 1, 1, 0, 0, 0, 1});
  auto body = [&mask](const Tensor& x) {
    return Softmax(MaskedFill(MulScalar(x, 0.25f), mask, -1e9f));
  };
  Tensor x1 = Iota({3, 4}, 1.0f);
  Tensor x2 = Iota({3, 4}, -0.5f);

  (void)RunPlanned(&cache, "k", {&x1}, nullptr, [&] { return body(x1); });
  // Both the MulScalar and the MaskedFill fold into the softmax step.
  EXPECT_EQ(cache.stats().fused_steps, 2);
  Tensor replayed = RunPlanned(&cache, "k", {&x2}, nullptr,
                               [&] { return body(x2); });
  plan::SetMode(plan::Mode::kOff);
  ExpectBitIdentical(replayed, body(x2));
}

TEST_F(PlanTest, LayerNormChainFusesAndMatches) {
  plan::PlanCache cache;
  // nn::LayerNorm::Forward's normalize chain, verbatim.
  const float eps = 1e-5f;
  auto body = [eps](const Tensor& x) {
    Tensor mean = MeanAxis(x, -1, /*keepdim=*/true);
    Tensor centered = BroadcastAdd(x, Neg(mean));
    Tensor var = MeanAxis(Square(centered), -1, /*keepdim=*/true);
    Tensor inv = Div(Tensor::Full(var.shape(), 1.0f), Sqrt(AddScalar(var, eps)));
    return BroadcastMul(centered, inv);
  };
  Tensor x1 = Iota({6, 8}, 0.3f);
  Tensor x2 = Iota({6, 8}, -1.7f);

  (void)RunPlanned(&cache, "k", {&x1}, nullptr, [&] { return body(x1); });
  // The 9-step chain collapses to one kLayerNorm kernel: 8 steps removed.
  EXPECT_EQ(cache.stats().fused_steps, 8);
  Tensor replayed = RunPlanned(&cache, "k", {&x2}, nullptr,
                               [&] { return body(x2); });
  plan::SetMode(plan::Mode::kOff);
  ExpectBitIdentical(replayed, body(x2));
}

TEST_F(PlanTest, GemmEpiloguePacksWeightsAndMatches) {
  plan::PlanCache cache;
  // Weights are captured externals (not session inputs), so the GEMM fusion
  // packs them into the plan's constant pool.
  Tensor w = Iota({6, 5}, 0.2f);
  Tensor bias = Iota({1, 5}, 0.1f);
  auto body = [&](const Tensor& x) { return Relu(Affine(x, w, bias)); };
  Tensor x1 = Iota({7, 6}, 0.4f);
  Tensor x2 = Iota({7, 6}, -0.9f);

  (void)RunPlanned(&cache, "k", {&x1}, nullptr, [&] { return body(x1); });
  plan::CacheStats s = cache.stats();
  EXPECT_GE(s.fused_steps, 1);     // the Relu epilogue
  EXPECT_GT(s.constant_bytes, 0);  // the packed weight panel
  Tensor replayed = RunPlanned(&cache, "k", {&x2}, nullptr,
                               [&] { return body(x2); });
  plan::SetMode(plan::Mode::kOff);
  ExpectBitIdentical(replayed, body(x2));
}

TEST_F(PlanTest, RandnReplayAdvancesTheStreamIdentically) {
  plan::PlanCache cache;
  auto body = [](const Tensor& x, Rng* rng) {
    return Add(x, Tensor::Randn(x.shape(), rng, 0.5f));
  };
  Tensor x = Iota({3, 7}, 0.6f);

  // Planned pair: capture then replay on one rng stream.
  Rng planned_rng(99);
  Tensor p1 = RunPlanned(&cache, "k", {&x}, &planned_rng,
                         [&] { return body(x, &planned_rng); });
  Tensor p2 = RunPlanned(&cache, "k", {&x}, &planned_rng,
                         [&] { return body(x, &planned_rng); });
  EXPECT_EQ(cache.stats().hits, 1);

  // Eager pair on a fresh stream with the same seed: the replayed call must
  // have drawn the same values in the same order (stream state advances
  // identically), so both pairs match bit-for-bit.
  plan::SetMode(plan::Mode::kOff);
  Rng eager_rng(99);
  ExpectBitIdentical(p1, body(x, &eager_rng));
  ExpectBitIdentical(p2, body(x, &eager_rng));
}

TEST_F(PlanTest, ShapeChangeMissesAndCapturesSeparately) {
  plan::PlanCache cache;
  auto body = [](const Tensor& x) { return Relu(MulScalar(x, 2.0f)); };
  Tensor small = Iota({2, 3}, 1.0f);
  Tensor big = Iota({8, 3}, 1.0f);

  (void)RunPlanned(&cache, "B2", {&small}, nullptr, [&] { return body(small); });
  (void)RunPlanned(&cache, "B8", {&big}, nullptr, [&] { return body(big); });
  plan::CacheStats s = cache.stats();
  EXPECT_EQ(s.plans, 2);
  EXPECT_EQ(s.captures, 2);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.hits, 0);

  (void)RunPlanned(&cache, "B2", {&small}, nullptr, [&] { return body(small); });
  (void)RunPlanned(&cache, "B8", {&big}, nullptr, [&] { return body(big); });
  EXPECT_EQ(cache.stats().hits, 2);
}

TEST_F(PlanTest, EmptyBatchCapturesAndReplays) {
  plan::PlanCache cache;
  auto body = [](const Tensor& x) {
    return Softmax(MulScalar(Concat({x, Relu(x)}, 1), 0.5f));
  };
  Tensor empty = Tensor::Zeros({0, 4});
  Tensor r1 = RunPlanned(&cache, "B0", {&empty}, nullptr,
                         [&] { return body(empty); });
  Tensor r2 = RunPlanned(&cache, "B0", {&empty}, nullptr,
                         [&] { return body(empty); });
  EXPECT_EQ(r1.shape(), Shape({0, 8}));
  EXPECT_EQ(r2.shape(), Shape({0, 8}));
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST_F(PlanTest, GradModeTrackedOpAbortsToPermanentEager) {
  plan::PlanCache cache;
  Tensor x = Iota({3, 3}, 1.0f);
  // A grad-tracked op inside the "no-grad" body means the capture is not a
  // pure forward: abort, and mark the key unplannable.
  auto body = [&] {
    Tensor w = Tensor::Full({3, 3}, 0.5f, /*requires_grad=*/true);
    return MatMul(x, w);
  };
  for (int call = 0; call < 2; ++call) {
    plan::PredictSession session(&cache, "k", {&x}, nullptr);
    ASSERT_FALSE(session.CanReplay());
    (void)session.Finish(body());
  }
  plan::CacheStats s = cache.stats();
  EXPECT_EQ(s.plans, 0);
  EXPECT_EQ(s.captures, 0);
  EXPECT_EQ(s.aborted, 1);  // only the first call attempts the capture
  EXPECT_EQ(s.hits, 0);
}

TEST_F(PlanTest, BackwardDuringCaptureAborts) {
  plan::PlanCache cache;
  Tensor x = Iota({2, 2}, 1.0f);
  auto body = [&] {
    Tensor w = Tensor::Full({2, 2}, 0.25f, /*requires_grad=*/true);
    Tensor loss = Sum(Mul(MatMul(x, w), MatMul(x, w)));
    loss.Backward();  // a Langevin-style inner loop (LBEBM)
    return Add(x, w.Detach());
  };
  for (int call = 0; call < 2; ++call) {
    plan::PredictSession session(&cache, "k", {&x}, nullptr);
    ASSERT_FALSE(session.CanReplay());
    (void)session.Finish(body());
  }
  plan::CacheStats s = cache.stats();
  EXPECT_EQ(s.plans, 0);
  EXPECT_EQ(s.aborted, 1);
}

TEST_F(PlanTest, InvalidateDropsPlansAndRecaptures) {
  plan::PlanCache cache;
  auto body = [](const Tensor& x) { return Tanh(MulScalar(x, 3.0f)); };
  Tensor x = Iota({4, 4}, 0.2f);

  (void)RunPlanned(&cache, "k", {&x}, nullptr, [&] { return body(x); });
  EXPECT_EQ(cache.stats().plans, 1);
  cache.Invalidate();
  plan::CacheStats s = cache.stats();
  EXPECT_EQ(s.plans, 0);
  EXPECT_EQ(s.arena_bytes, 0);

  Tensor again = RunPlanned(&cache, "k", {&x}, nullptr, [&] { return body(x); });
  EXPECT_EQ(cache.stats().captures, 2);
  plan::SetMode(plan::Mode::kOff);
  ExpectBitIdentical(again, body(x));
}

TEST_F(PlanTest, VerifyModeRunsEagerAndReplayAndAgrees) {
  plan::PlanCache cache;
  Tensor w = Iota({5, 4}, 0.15f);
  auto body = [&](const Tensor& x, Rng* rng) {
    return Add(Sigmoid(MatMul(x, w)), Tensor::Randn({6, 4}, rng, 0.1f));
  };
  Tensor x = Iota({6, 5}, 0.8f);

  Rng rng(42);
  (void)RunPlanned(&cache, "k", {&x}, &rng, [&] { return body(x, &rng); });
  plan::SetMode(plan::Mode::kVerify);
  // Runs the eager body AND the recorded plan, then compares result bytes
  // and rng stream position; a divergence would abort the process.
  (void)RunPlanned(&cache, "k", {&x}, &rng, [&] { return body(x, &rng); });
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST_F(PlanTest, DuplicateInputImplStaysEager) {
  plan::PlanCache cache;
  Tensor x = Iota({3, 3}, 1.0f);
  auto body = [&] {
    EXPECT_FALSE(plan::Recording());  // ambiguous rebinding: no capture
    return Relu(x);
  };
  for (int call = 0; call < 2; ++call) {
    plan::PredictSession session(&cache, "k", {&x, &x}, nullptr);
    ASSERT_FALSE(session.CanReplay());
    (void)session.Finish(body());
  }
  EXPECT_EQ(cache.stats().plans, 0);
}

TEST_F(PlanTest, ModeOffIsInert) {
  plan::SetMode(plan::Mode::kOff);
  plan::PlanCache cache;
  Tensor x = Iota({2, 5}, 1.0f);
  auto body = [&] {
    EXPECT_FALSE(plan::Recording());
    return Softmax(x);
  };
  for (int call = 0; call < 2; ++call) {
    (void)RunPlanned(&cache, "k", {&x}, nullptr, body);
  }
  plan::CacheStats s = cache.stats();
  EXPECT_EQ(s.plans, 0);
  EXPECT_EQ(s.captures, 0);
  EXPECT_EQ(s.hits, 0);
}

}  // namespace
}  // namespace adaptraj
