// Forward-value tests for every tensor op.

#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace adaptraj {
namespace {

using namespace ops;  // NOLINT(build/namespaces)

Tensor Vec(std::vector<float> v) {
  const int64_t n = static_cast<int64_t>(v.size());
  return Tensor::FromVector({n}, std::move(v));
}

TEST(OpsTest, AddSubMulDivElementwise) {
  Tensor a = Vec({1, 2, 3});
  Tensor b = Vec({4, 5, 6});
  EXPECT_FLOAT_EQ(Add(a, b).flat(1), 7.0f);
  EXPECT_FLOAT_EQ(Sub(a, b).flat(1), -3.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).flat(2), 18.0f);
  EXPECT_FLOAT_EQ(Div(b, a).flat(2), 2.0f);
}

TEST(OpsTest, ScalarOps) {
  Tensor a = Vec({1, -2});
  EXPECT_FLOAT_EQ(AddScalar(a, 0.5f).flat(0), 1.5f);
  EXPECT_FLOAT_EQ(MulScalar(a, -3.0f).flat(1), 6.0f);
  EXPECT_FLOAT_EQ(Neg(a).flat(0), -1.0f);
}

TEST(OpsTest, BroadcastAddRowVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({1, 3}, {10, 20, 30});
  Tensor c = BroadcastAdd(a, b);
  EXPECT_FLOAT_EQ(c.flat(0), 11.0f);
  EXPECT_FLOAT_EQ(c.flat(4), 25.0f);
  EXPECT_FLOAT_EQ(c.flat(5), 36.0f);
}

TEST(OpsTest, BroadcastMulColumnVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({2, 1}, {2, 10});
  Tensor c = BroadcastMul(a, b);
  EXPECT_FLOAT_EQ(c.flat(0), 2.0f);
  EXPECT_FLOAT_EQ(c.flat(3), 40.0f);
}

TEST(OpsTest, BroadcastMul3dLastDimOne) {
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor w = Tensor::FromVector({2, 2, 1}, {1, 0, 2, 3});
  Tensor c = BroadcastMul(a, w);
  EXPECT_FLOAT_EQ(c.flat(0), 1.0f);
  EXPECT_FLOAT_EQ(c.flat(2), 0.0f);
  EXPECT_FLOAT_EQ(c.flat(4), 10.0f);
  EXPECT_FLOAT_EQ(c.flat(7), 24.0f);
}

TEST(OpsTest, MatMulKnownValues) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.flat(0), 58.0f);
  EXPECT_FLOAT_EQ(c.flat(1), 64.0f);
  EXPECT_FLOAT_EQ(c.flat(2), 139.0f);
  EXPECT_FLOAT_EQ(c.flat(3), 154.0f);
}

TEST(OpsTest, MatMulIdentity) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor id = Tensor::FromVector({2, 2}, {1, 0, 0, 1});
  Tensor c = MatMul(a, id);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c.flat(i), a.flat(i));
}

TEST(OpsTest, TransposeSwapsDims) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  ASSERT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.flat(0), 1.0f);
  EXPECT_FLOAT_EQ(t.flat(1), 4.0f);
  EXPECT_FLOAT_EQ(t.flat(4), 3.0f);
}

TEST(OpsTest, UnaryMath) {
  Tensor a = Vec({-1.0f, 0.0f, 2.0f});
  EXPECT_FLOAT_EQ(Relu(a).flat(0), 0.0f);
  EXPECT_FLOAT_EQ(Relu(a).flat(2), 2.0f);
  EXPECT_NEAR(Tanh(a).flat(2), std::tanh(2.0f), 1e-6);
  EXPECT_NEAR(Sigmoid(a).flat(0), 1.0f / (1.0f + std::exp(1.0f)), 1e-6);
  EXPECT_NEAR(Exp(a).flat(2), std::exp(2.0f), 1e-4);
  EXPECT_FLOAT_EQ(Square(a).flat(0), 1.0f);
  EXPECT_NEAR(Sqrt(Vec({4.0f})).flat(0), 2.0f, 1e-6);
  EXPECT_FLOAT_EQ(Abs(a).flat(0), 1.0f);
}

TEST(OpsTest, LogClampedAvoidsNegativeInfinity) {
  Tensor a = Vec({0.0f, 1.0f});
  Tensor l = LogClamped(a, 1e-6f);
  EXPECT_NEAR(l.flat(0), std::log(1e-6f), 1e-3);
  EXPECT_NEAR(l.flat(1), 0.0f, 1e-6);
}

TEST(OpsTest, ClampLimitsRange) {
  Tensor a = Vec({-5.0f, 0.5f, 5.0f});
  Tensor c = Clamp(a, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(c.flat(0), -1.0f);
  EXPECT_FLOAT_EQ(c.flat(1), 0.5f);
  EXPECT_FLOAT_EQ(c.flat(2), 1.0f);
}

TEST(OpsTest, SumAndMean) {
  Tensor a = Vec({1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 2.5f);
}

TEST(OpsTest, SumAxisMiddle) {
  Tensor a = Tensor::FromVector({2, 3, 2}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  Tensor s = SumAxis(a, 1);
  ASSERT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(s.flat(0), 9.0f);   // 1+3+5
  EXPECT_FLOAT_EQ(s.flat(1), 12.0f);  // 2+4+6
  EXPECT_FLOAT_EQ(s.flat(2), 27.0f);  // 7+9+11
}

TEST(OpsTest, SumAxisKeepdim) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor s = SumAxis(a, 1, /*keepdim=*/true);
  ASSERT_EQ(s.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s.flat(0), 3.0f);
  EXPECT_FLOAT_EQ(s.flat(1), 7.0f);
}

TEST(OpsTest, MeanAxisNegativeIndex) {
  Tensor a = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor m = MeanAxis(a, -1);
  ASSERT_EQ(m.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(m.flat(0), 2.5f);
  EXPECT_FLOAT_EQ(m.flat(1), 6.5f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor s = Softmax(a);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) sum += s.flat(r * 3 + c);
    EXPECT_NEAR(sum, 1.0f, 1e-6);
  }
  EXPECT_GT(s.flat(2), s.flat(1));
  EXPECT_GT(s.flat(1), s.flat(0));
}

TEST(OpsTest, SoftmaxIsShiftInvariantAndStable) {
  Tensor a = Tensor::FromVector({1, 3}, {1000.0f, 1001.0f, 1002.0f});
  Tensor s = Softmax(a);
  Tensor b = Tensor::FromVector({1, 3}, {0.0f, 1.0f, 2.0f});
  Tensor sb = Softmax(b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(s.flat(i), sb.flat(i), 1e-5);
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = Tensor::FromVector({1, 4}, {0.5f, -1.0f, 2.0f, 0.0f});
  Tensor ls = LogSoftmax(a);
  Tensor s = Softmax(a);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(ls.flat(i), std::log(s.flat(i)), 1e-5);
}

TEST(OpsTest, ConcatLastAxis) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 1}, {9, 10});
  Tensor c = Concat({a, b}, 1);
  ASSERT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(c.flat(2), 9.0f);
  EXPECT_FLOAT_EQ(c.flat(5), 10.0f);
}

TEST(OpsTest, ConcatFirstAxis) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 0);
  ASSERT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(c.flat(0), 1.0f);
  EXPECT_FLOAT_EQ(c.flat(5), 6.0f);
}

TEST(OpsTest, SliceMiddleAxis) {
  Tensor a = Tensor::FromVector({2, 3, 2}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  Tensor s = Slice(a, 1, 1, 3);
  ASSERT_EQ(s.shape(), (Shape{2, 2, 2}));
  EXPECT_FLOAT_EQ(s.flat(0), 3.0f);
  EXPECT_FLOAT_EQ(s.flat(7), 12.0f);
}

TEST(OpsTest, SliceEmptyRange) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor s = Slice(a, 0, 1, 1);
  EXPECT_EQ(s.size(), 0);
}

TEST(OpsTest, StackCreatesLeadingAxis) {
  Tensor a = Vec({1, 2});
  Tensor b = Vec({3, 4});
  Tensor s = Stack({a, b});
  ASSERT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(s.flat(2), 3.0f);
}

TEST(OpsTest, ReshapePreservesData) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  ASSERT_EQ(r.shape(), (Shape{3, 2}));
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(r.flat(i), a.flat(i));
}

TEST(OpsTest, GradReverseIsIdentityForward) {
  Tensor a = Vec({1, 2, 3});
  Tensor g = GradReverse(a, 0.5f);
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(g.flat(i), a.flat(i));
}

TEST(OpsTest, MaskedFillReplacesMaskedEntries) {
  Tensor a = Vec({1, 2, 3});
  Tensor mask = Vec({0, 1, 0});
  Tensor f = MaskedFill(a, mask, -9.0f);
  EXPECT_FLOAT_EQ(f.flat(0), 1.0f);
  EXPECT_FLOAT_EQ(f.flat(1), -9.0f);
  EXPECT_FLOAT_EQ(f.flat(2), 3.0f);
}

TEST(OpsTest, NllLossPicksLabelEntries) {
  Tensor lp = Tensor::FromVector({2, 3}, {-1.0f, -2.0f, -3.0f, -0.5f, -1.5f, -2.5f});
  Tensor loss = NllLoss(lp, {0, 2});
  EXPECT_NEAR(loss.item(), (1.0f + 2.5f) / 2.0f, 1e-6);
}

TEST(OpsTest, OperatorSugar) {
  Tensor a = Vec({1, 2});
  Tensor b = Vec({3, 4});
  EXPECT_FLOAT_EQ((a + b).flat(0), 4.0f);
  EXPECT_FLOAT_EQ((a - b).flat(1), -2.0f);
  EXPECT_FLOAT_EQ((a * b).flat(1), 8.0f);
  EXPECT_FLOAT_EQ((2.0f * a).flat(1), 4.0f);
  EXPECT_FLOAT_EQ((-a).flat(0), -1.0f);
}

}  // namespace
}  // namespace adaptraj
