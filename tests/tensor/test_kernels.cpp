// Kernel-layer verification: the blocked/parallel GEMM against the serial
// reference, gradchecks for the fused LinearGates / LSTM-cell ops, equivalence
// of the fused LSTM step with the composed-op formulation, thread-pool
// determinism, and buffer-pool reuse accounting.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/buffer_pool.h"
#include "tensor/gradcheck.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace {

using namespace ops;  // NOLINT(build/namespaces)

Tensor Leaf(const Shape& shape, Rng* rng, float scale = 0.5f) {
  return Tensor::Randn(shape, rng, scale, /*requires_grad=*/true);
}

void ExpectGradOk(const std::function<Tensor(const std::vector<Tensor>&)>& fn,
                  std::vector<Tensor> inputs) {
  auto report = CheckGradients(fn, std::move(inputs));
  EXPECT_TRUE(report.ok) << "max_abs_error=" << report.max_abs_error
                         << " max_rel_error=" << report.max_rel_error
                         << " worst at input " << report.worst_input
                         << " flat index " << report.worst_index;
}

std::vector<float> RandomVec(int64_t n, Rng* rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng->Normal(0.0f, 1.0f);
  return v;
}

// --- Gemm vs the serial reference -------------------------------------------

TEST(KernelsTest, GemmMatchesNaiveAllTransposeVariants) {
  Rng rng(7);
  // Deliberately awkward sizes: not multiples of the 4-row micro-tile or the
  // k-blocking, to exercise every remainder path.
  const int64_t m = 37, n = 29, k = 53;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (bool acc : {false, true}) {
        std::vector<float> a = RandomVec(m * k, &rng);
        std::vector<float> b = RandomVec(k * n, &rng);
        std::vector<float> c_fast = RandomVec(m * n, &rng);
        std::vector<float> c_ref = c_fast;
        kernels::Gemm(ta, tb, m, n, k, a.data(), b.data(), c_fast.data(), acc);
        kernels::GemmNaive(ta, tb, m, n, k, a.data(), b.data(), c_ref.data(), acc);
        for (int64_t i = 0; i < m * n; ++i) {
          ASSERT_NEAR(c_fast[i], c_ref[i], 1e-4f)
              << "ta=" << ta << " tb=" << tb << " acc=" << acc << " i=" << i;
        }
      }
    }
  }
}

TEST(KernelsTest, GemmParallelBitIdenticalToSerial) {
  Rng rng(11);
  const int64_t m = 128, n = 96, k = 64;
  std::vector<float> a = RandomVec(m * k, &rng);
  std::vector<float> b = RandomVec(k * n, &rng);
  std::vector<float> serial(m * n), threaded(m * n);

  parallel::Configure(1);
  kernels::Gemm(false, false, m, n, k, a.data(), b.data(), serial.data(), false);
  parallel::Configure(4);
  kernels::Gemm(false, false, m, n, k, a.data(), b.data(), threaded.data(), false);
  parallel::Configure(1);

  for (int64_t i = 0; i < m * n; ++i) {
    ASSERT_EQ(serial[i], threaded[i]) << "bitwise mismatch at " << i;
  }
}

// --- Seed determinism under the thread pool ---------------------------------

TEST(KernelsTest, LstmStepDeterministicAcrossRunsUnderThreadPool) {
  parallel::Configure(4);
  auto run = [](std::vector<float>* h_out, std::vector<float>* grad_out) {
    Rng rng(123);  // same seed both runs
    Tensor x = Leaf({32, 16}, &rng);
    Tensor w_ih = Leaf({16, 256}, &rng);
    Tensor w_hh = Leaf({64, 256}, &rng);
    Tensor bias = Leaf({1, 256}, &rng);
    Tensor h0 = Tensor::Randn({32, 64}, &rng, 0.5f);
    Tensor c0 = Tensor::Randn({32, 64}, &rng, 0.5f);
    Tensor gates = LinearGates(x, w_ih, h0, w_hh, bias);
    Tensor c1 = LstmCellC(gates, c0);
    Tensor h1 = LstmCellH(gates, c1);
    Sum(Square(h1)).Backward();
    h_out->assign(h1.data(), h1.data() + h1.size());
    Tensor gw = w_ih.grad();
    grad_out->assign(gw.data(), gw.data() + gw.size());
  };
  std::vector<float> h_a, g_a, h_b, g_b;
  run(&h_a, &g_a);
  run(&h_b, &g_b);
  parallel::Configure(1);
  ASSERT_EQ(h_a.size(), h_b.size());
  for (size_t i = 0; i < h_a.size(); ++i) ASSERT_EQ(h_a[i], h_b[i]);
  ASSERT_EQ(g_a.size(), g_b.size());
  for (size_t i = 0; i < g_a.size(); ++i) ASSERT_EQ(g_a[i], g_b[i]);
}

// --- MatMul autograd through the fast path ----------------------------------

TEST(KernelsTest, MatMulGradientNonSquare) {
  Rng rng(3);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(MatMul(in[0], in[1])); },
      {Leaf({5, 7}, &rng), Leaf({7, 3}, &rng)});
}

TEST(KernelsTest, MatMulGradientWithDenseDownstream) {
  Rng rng(4);
  // Square(·) makes dY dense and non-uniform, exercising both backward GEMMs.
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(MatMul(in[0], in[1])));
      },
      {Leaf({4, 6}, &rng), Leaf({6, 5}, &rng)});
}

// --- Fused LinearGates / AddMatMul ------------------------------------------

TEST(KernelsTest, AddMatMulMatchesComposedOps) {
  Rng rng(5);
  Tensor a = Tensor::Randn({6, 4}, &rng);
  Tensor wa = Tensor::Randn({4, 8}, &rng);
  Tensor b = Tensor::Randn({6, 3}, &rng);
  Tensor wb = Tensor::Randn({3, 8}, &rng);
  Tensor fused = AddMatMul(a, wa, b, wb);
  Tensor composed = Add(MatMul(a, wa), MatMul(b, wb));
  ASSERT_EQ(fused.shape(), composed.shape());
  for (int64_t i = 0; i < fused.size(); ++i) {
    EXPECT_NEAR(fused.flat(i), composed.flat(i), 1e-5f) << "i=" << i;
  }
}

TEST(KernelsTest, AffineMatchesComposedOpsBitExactly) {
  Rng rng(15);
  Tensor x = Tensor::Randn({5, 3}, &rng);
  Tensor w = Tensor::Randn({3, 7}, &rng);
  Tensor bias = Tensor::Randn({1, 7}, &rng);
  Tensor fused = Affine(x, w, bias);
  Tensor composed = BroadcastAdd(MatMul(x, w), bias);
  ASSERT_EQ(fused.shape(), composed.shape());
  // Same Gemm then the same per-element add: bit-equal, not just close.
  for (int64_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused.flat(i), composed.flat(i)) << "i=" << i;
  }
}

TEST(KernelsTest, AffineGradientAllInputs) {
  Rng rng(16);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Affine(in[0], in[1], in[2])));
      },
      {Leaf({3, 4}, &rng), Leaf({4, 6}, &rng), Leaf({1, 6}, &rng)});
}

TEST(KernelsTest, LinearGatesGradientAllInputs) {
  Rng rng(6);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(LinearGates(in[0], in[1], in[2], in[3], in[4])));
      },
      {Leaf({3, 4}, &rng), Leaf({4, 8}, &rng), Leaf({3, 2}, &rng), Leaf({2, 8}, &rng),
       Leaf({1, 8}, &rng)});
}

TEST(KernelsTest, LinearGatesMatchesComposedOps) {
  Rng rng(8);
  Tensor x = Tensor::Randn({5, 3}, &rng);
  Tensor w_x = Tensor::Randn({3, 12}, &rng);
  Tensor h = Tensor::Randn({5, 6}, &rng);
  Tensor w_h = Tensor::Randn({6, 12}, &rng);
  Tensor bias = Tensor::Randn({1, 12}, &rng);
  Tensor fused = LinearGates(x, w_x, h, w_h, bias);
  Tensor composed = BroadcastAdd(Add(MatMul(x, w_x), MatMul(h, w_h)), bias);
  for (int64_t i = 0; i < fused.size(); ++i) {
    EXPECT_NEAR(fused.flat(i), composed.flat(i), 1e-5f) << "i=" << i;
  }
}

// --- Fused LSTM cell ops -----------------------------------------------------

TEST(KernelsTest, LstmCellCGradient) {
  Rng rng(9);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(LstmCellC(in[0], in[1])));
      },
      {Leaf({2, 12}, &rng), Leaf({2, 3}, &rng)});
}

TEST(KernelsTest, LstmCellHGradient) {
  Rng rng(10);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(LstmCellH(in[0], in[1])));
      },
      {Leaf({2, 12}, &rng), Leaf({2, 3}, &rng)});
}

TEST(KernelsTest, FusedLstmStepMatchesComposedFormulation) {
  Rng rng(12);
  const int64_t batch = 4, hidden = 5;
  Tensor gates = Tensor::Randn({batch, 4 * hidden}, &rng).set_requires_grad(true);
  Tensor c_prev = Tensor::Randn({batch, hidden}, &rng).set_requires_grad(true);

  // Fused path.
  Tensor c_f = LstmCellC(gates, c_prev);
  Tensor h_f = LstmCellH(gates, c_f);
  Tensor loss_f = Sum(Square(h_f));
  loss_f.Backward();
  Tensor g_gates_f = gates.grad();
  Tensor g_c_f = c_prev.grad();
  gates.ZeroGrad();
  c_prev.ZeroGrad();

  // Composed-op reference (the pre-fusion LstmCell::Forward formulation).
  Tensor i_gate = Sigmoid(Slice(gates, 1, 0, hidden));
  Tensor f_gate = Sigmoid(Slice(gates, 1, hidden, 2 * hidden));
  Tensor g_gate = Tanh(Slice(gates, 1, 2 * hidden, 3 * hidden));
  Tensor o_gate = Sigmoid(Slice(gates, 1, 3 * hidden, 4 * hidden));
  Tensor c_r = Add(Mul(f_gate, c_prev), Mul(i_gate, g_gate));
  Tensor h_r = Mul(o_gate, Tanh(c_r));
  Tensor loss_r = Sum(Square(h_r));
  loss_r.Backward();

  EXPECT_NEAR(loss_f.item(), loss_r.item(), 1e-4f);
  for (int64_t i = 0; i < c_f.size(); ++i) {
    EXPECT_NEAR(c_f.flat(i), c_r.flat(i), 1e-5f);
    EXPECT_NEAR(h_f.flat(i), h_r.flat(i), 1e-5f);
  }
  Tensor g_gates_r = gates.grad();
  Tensor g_c_r = c_prev.grad();
  for (int64_t i = 0; i < g_gates_f.size(); ++i) {
    EXPECT_NEAR(g_gates_f.flat(i), g_gates_r.flat(i), 1e-4f) << "gate grad " << i;
  }
  for (int64_t i = 0; i < g_c_f.size(); ++i) {
    EXPECT_NEAR(g_c_f.flat(i), g_c_r.flat(i), 1e-4f) << "cell grad " << i;
  }
}

// --- SIMD transcendentals ----------------------------------------------------

/// Bit-level ULP distance between two same-sign floats (monotone int map).
int64_t UlpDiff(float a, float b) {
  int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if (ia < 0) ia = static_cast<int32_t>(0x80000000u) - ia;
  if (ib < 0) ib = static_cast<int32_t>(0x80000000u) - ib;
  return std::llabs(static_cast<int64_t>(ia) - static_cast<int64_t>(ib));
}

/// Pins the path, restores kAuto on scope exit.
struct ScopedTranscendentalPath {
  explicit ScopedTranscendentalPath(kernels::TranscendentalPath p) {
    kernels::SetTranscendentalPath(p);
  }
  ~ScopedTranscendentalPath() {
    kernels::SetTranscendentalPath(kernels::TranscendentalPath::kAuto);
  }
};

TEST(SimdTranscendentalsTest, ExpWithinUlpBoundOfLibm) {
  ScopedTranscendentalPath simd(kernels::TranscendentalPath::kSimd);
  if (!kernels::SimdTranscendentalsActive()) GTEST_SKIP() << "no SIMD support";
  const int64_t n = 40001;
  std::vector<float> x(n), y(n);
  for (int64_t i = 0; i < n; ++i) {
    x[i] = -87.0f + 175.0f * static_cast<float>(i) / static_cast<float>(n - 1);
  }
  kernels::ExpForward(x.data(), y.data(), n);
  int64_t max_ulp = 0;
  float max_rel = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float ref = std::exp(x[i]);
    max_ulp = std::max(max_ulp, UlpDiff(y[i], ref));
    max_rel = std::max(max_rel, std::fabs(y[i] - ref) / ref);
  }
  // Measured: 1 ulp / 1.2e-7 relative on this sweep; asserted with slack.
  EXPECT_LE(max_ulp, 4) << "max_rel=" << max_rel;
  EXPECT_LE(max_rel, 5e-7f);
}

TEST(SimdTranscendentalsTest, TanhAndSigmoidWithinAbsBounds) {
  ScopedTranscendentalPath simd(kernels::TranscendentalPath::kSimd);
  if (!kernels::SimdTranscendentalsActive()) GTEST_SKIP() << "no SIMD support";
  const int64_t n = 40001;
  std::vector<float> x(n), y(n);
  for (int64_t i = 0; i < n; ++i) {
    x[i] = -30.0f + 60.0f * static_cast<float>(i) / static_cast<float>(n - 1);
  }
  kernels::TanhForward(x.data(), y.data(), n);
  float max_tanh = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    max_tanh = std::max(max_tanh, std::fabs(y[i] - std::tanh(x[i])));
  }
  // Measured: 1.8e-7 (tanh), 1.2e-7 (sigmoid); asserted with slack.
  EXPECT_LE(max_tanh, 5e-7f);
  kernels::SigmoidForward(x.data(), y.data(), n);
  float max_sig = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float ref = 1.0f / (1.0f + std::exp(-x[i]));
    max_sig = std::max(max_sig, std::fabs(y[i] - ref));
  }
  EXPECT_LE(max_sig, 5e-7f);
  // Saturation must be exact and finite at the extremes.
  float ext[4] = {-1e4f, 1e4f, -200.0f, 200.0f};
  float out[4];
  kernels::TanhForward(ext, out, 4);
  EXPECT_FLOAT_EQ(out[0], -1.0f);
  EXPECT_FLOAT_EQ(out[1], 1.0f);
  kernels::SigmoidForward(ext, out, 4);
  EXPECT_NEAR(out[0], 0.0f, 1e-30f);  // saturates to a denormal, not exact 0
  EXPECT_FLOAT_EQ(out[1], 1.0f);
}

TEST(SimdTranscendentalsTest, NanPropagatesLikeLibm) {
  ScopedTranscendentalPath simd(kernels::TranscendentalPath::kSimd);
  // A diverged activation must stay NaN on the SIMD path so blown-up
  // training surfaces identically under either path.
  float x[3] = {std::nanf(""), 0.0f, 2.0f};
  float y[3];
  kernels::ExpForward(x, y, 3);
  EXPECT_TRUE(std::isnan(y[0]));
  EXPECT_FLOAT_EQ(y[1], 1.0f);
  kernels::TanhForward(x, y, 3);
  EXPECT_TRUE(std::isnan(y[0]));
  kernels::SigmoidForward(x, y, 3);
  EXPECT_TRUE(std::isnan(y[0]));
}

TEST(SimdTranscendentalsTest, RemainderElementsMatchFullVectorPath) {
  ScopedTranscendentalPath simd(kernels::TranscendentalPath::kSimd);
  if (!kernels::SimdTranscendentalsActive()) GTEST_SKIP() << "no SIMD support";
  // The same element must produce the same bits whether it lands in a full
  // 16-wide block or in the zero-padded tail — this is what makes results
  // independent of how ranges are chunked.
  Rng rng(31);
  std::vector<float> x(45);
  for (auto& v : x) v = rng.Normal(0.0f, 2.0f);
  std::vector<float> full(45), split(45);
  kernels::ExpForward(x.data(), full.data(), 45);
  kernels::ExpForward(x.data(), split.data(), 7);          // all-tail call
  kernels::ExpForward(x.data() + 7, split.data() + 7, 38);  // shifted blocks
  for (int64_t i = 0; i < 45; ++i) {
    ASSERT_EQ(full[i], split[i]) << "chunk-dependent bits at " << i;
  }
}

TEST(SimdTranscendentalsTest, SoftmaxRowSimdCloseToScalarAndNormalized) {
  Rng rng(32);
  std::vector<float> x(37), y_simd(37), y_scalar(37);
  for (auto& v : x) v = rng.Normal(0.0f, 3.0f);
  {
    ScopedTranscendentalPath simd(kernels::TranscendentalPath::kSimd);
    if (!kernels::SimdTranscendentalsActive()) GTEST_SKIP() << "no SIMD support";
    kernels::SoftmaxRow(x.data(), y_simd.data(), 37);
  }
  {
    ScopedTranscendentalPath scalar(kernels::TranscendentalPath::kScalar);
    kernels::SoftmaxRow(x.data(), y_scalar.data(), 37);
  }
  float sum = 0.0f;
  for (int64_t i = 0; i < 37; ++i) {
    EXPECT_NEAR(y_simd[i], y_scalar[i], 1e-6f) << "i=" << i;
    sum += y_simd[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(SimdTranscendentalsTest, FusedLstmKernelsMatchScalarPath) {
  Rng rng(33);
  const int64_t batch = 5, hidden = 23;  // odd extent exercises the tail
  std::vector<float> gates(batch * 4 * hidden), c_prev(batch * hidden),
      dc(batch * hidden), dh(batch * hidden);
  for (auto& v : gates) v = rng.Normal(0.0f, 1.5f);
  for (auto& v : c_prev) v = rng.Normal(0.0f, 1.0f);
  for (auto& v : dc) v = rng.Normal(0.0f, 1.0f);
  for (auto& v : dh) v = rng.Normal(0.0f, 1.0f);

  auto run = [&](kernels::TranscendentalPath path, std::vector<float>* c_next,
                 std::vector<float>* h_next, std::vector<float>* d_gates,
                 std::vector<float>* d_cprev) {
    ScopedTranscendentalPath p(path);
    c_next->assign(batch * hidden, 0.0f);
    h_next->assign(batch * hidden, 0.0f);
    d_gates->assign(batch * 4 * hidden, 0.0f);
    d_cprev->assign(batch * hidden, 0.0f);
    kernels::LstmCellForwardC(gates.data(), c_prev.data(), batch, hidden,
                              c_next->data());
    kernels::LstmCellForwardH(gates.data(), c_next->data(), batch, hidden,
                              h_next->data());
    kernels::LstmCellBackwardC(gates.data(), c_prev.data(), dc.data(), batch,
                               hidden, d_gates->data(), d_cprev->data());
    kernels::LstmCellBackwardH(gates.data(), c_next->data(), dh.data(), batch,
                               hidden, d_gates->data(), d_cprev->data());
  };
  // On platforms without vector support the kSimd run falls back to scalar
  // and the comparison is trivially exact.
  std::vector<float> c_s, h_s, dg_s, dcp_s, c_v, h_v, dg_v, dcp_v;
  run(kernels::TranscendentalPath::kScalar, &c_s, &h_s, &dg_s, &dcp_s);
  run(kernels::TranscendentalPath::kSimd, &c_v, &h_v, &dg_v, &dcp_v);
  for (int64_t i = 0; i < batch * hidden; ++i) {
    EXPECT_NEAR(c_v[i], c_s[i], 2e-6f) << "c_next " << i;
    EXPECT_NEAR(h_v[i], h_s[i], 2e-6f) << "h_next " << i;
    EXPECT_NEAR(dcp_v[i], dcp_s[i], 2e-6f) << "d_c_prev " << i;
  }
  for (int64_t i = 0; i < batch * 4 * hidden; ++i) {
    EXPECT_NEAR(dg_v[i], dg_s[i], 2e-6f) << "d_gates " << i;
  }
}

// --- Buffer pool -------------------------------------------------------------

TEST(KernelsTest, BufferPoolRecyclesOpOutputs) {
  internal::ClearBufferPool();
  Rng rng(13);
  Tensor a = Tensor::Randn({64, 64}, &rng);
  Tensor b = Tensor::Randn({64, 64}, &rng);
  // Repeated same-shape ops in a scope: after the first iteration frees its
  // outputs, subsequent iterations should be served from the pool.
  for (int i = 0; i < 10; ++i) {
    Tensor c = Relu(MatMul(a, b));
    (void)c;
  }
  auto stats = internal::GetBufferPoolStats();
  EXPECT_GT(stats.reuses, 10) << "acquires=" << stats.acquires
                              << " reuses=" << stats.reuses;
}

}  // namespace
}  // namespace adaptraj
