// Unit tests for Tensor construction, introspection and autograd plumbing.

#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace adaptraj {
namespace {

TEST(TensorTest, DefaultConstructedIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, ZerosHasCorrectShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.flat(i), 0.0f);
}

TEST(TensorTest, NegativeDimIndexCountsFromEnd) {
  Tensor t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-2), 3);
  EXPECT_EQ(t.size(-3), 2);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.flat(i), 2.5f);
}

TEST(TensorTest, FromVectorAdoptsValuesRowMajor) {
  Tensor t = Tensor::FromVector({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.flat(0), 1.0f);
  EXPECT_EQ(t.flat(3), 4.0f);
}

TEST(TensorTest, ScalarItem) {
  Tensor t = Tensor::Scalar(7.0f);
  EXPECT_EQ(t.item(), 7.0f);
  EXPECT_EQ(t.size(), 1);
}

TEST(TensorTest, RandnIsDeterministicGivenSeed) {
  Rng rng1(42);
  Rng rng2(42);
  Tensor a = Tensor::Randn({8}, &rng1);
  Tensor b = Tensor::Randn({8}, &rng2);
  for (int64_t i = 0; i < 8; ++i) EXPECT_EQ(a.flat(i), b.flat(i));
}

TEST(TensorTest, RandRespectsBounds) {
  Rng rng(7);
  Tensor t = Tensor::Rand({100}, &rng, -0.5f, 0.5f);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.flat(i), -0.5f);
    EXPECT_LT(t.flat(i), 0.5f);
  }
}

TEST(TensorTest, RequiresGradDefaultsFalse) {
  Tensor t = Tensor::Zeros({2});
  EXPECT_FALSE(t.requires_grad());
  EXPECT_FALSE(t.needs_grad());
  t.set_requires_grad(true);
  EXPECT_TRUE(t.requires_grad());
  EXPECT_TRUE(t.needs_grad());
}

TEST(TensorTest, GradStartsAsZeros) {
  Tensor t = Tensor::Zeros({3}, /*requires_grad=*/true);
  Tensor g = t.grad();
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(g.flat(i), 0.0f);
}

TEST(TensorTest, BackwardOnScalarAccumulatesLeafGrad) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f}, /*requires_grad=*/true);
  Tensor y = ops::Sum(x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().flat(0), 1.0f);
  EXPECT_FLOAT_EQ(x.grad().flat(1), 1.0f);
}

TEST(TensorTest, BackwardTwiceAccumulates) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f}, /*requires_grad=*/true);
  ops::Sum(x).Backward();
  ops::Sum(x).Backward();
  EXPECT_FLOAT_EQ(x.grad().flat(0), 2.0f);
}

TEST(TensorTest, ZeroGradClearsAccumulation) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f}, /*requires_grad=*/true);
  ops::Sum(x).Backward();
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().flat(0), 0.0f);
}

TEST(TensorTest, DetachStopsGradientFlow) {
  Tensor x = Tensor::FromVector({2}, {3.0f, 4.0f}, /*requires_grad=*/true);
  Tensor d = ops::MulScalar(x, 2.0f).Detach();
  EXPECT_FALSE(d.needs_grad());
  EXPECT_FLOAT_EQ(d.flat(0), 6.0f);
  Tensor y = ops::Sum(d);
  EXPECT_FALSE(y.needs_grad());
}

TEST(TensorTest, DetachCopiesData) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f});
  Tensor d = x.Detach();
  d.data()[0] = 99.0f;
  EXPECT_FLOAT_EQ(x.flat(0), 1.0f);
}

TEST(TensorTest, DiamondGraphAccumulatesBothPaths) {
  // y = x*x + x  => dy/dx = 2x + 1.
  Tensor x = Tensor::FromVector({1}, {3.0f}, /*requires_grad=*/true);
  Tensor y = ops::Add(ops::Mul(x, x), x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().flat(0), 7.0f);
}

TEST(TensorTest, SharedSubexpressionBackpropagatesOnce) {
  // z = (x + x) summed: dz/dx = 2 per element.
  Tensor x = Tensor::FromVector({3}, {1.0f, 2.0f, 3.0f}, /*requires_grad=*/true);
  Tensor s = ops::Add(x, x);
  ops::Sum(s).Backward();
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(x.grad().flat(i), 2.0f);
}

TEST(TensorTest, DeepChainBackward) {
  Tensor x = Tensor::FromVector({1}, {1.0f}, /*requires_grad=*/true);
  Tensor y = x;
  for (int i = 0; i < 50; ++i) y = ops::MulScalar(y, 1.1f);
  y.Backward();
  EXPECT_NEAR(x.grad().flat(0), std::pow(1.1f, 50.0f), 1e-2);
}

TEST(TensorTest, NoGradTrackingWhenNotRequired) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f});
  Tensor y = ops::Add(x, x);
  EXPECT_FALSE(y.needs_grad());
}

TEST(TensorTest, FlatIndexComputesRowMajor) {
  Shape s{2, 3, 4};
  EXPECT_EQ(FlatIndex(s, {0, 0, 0}), 0);
  EXPECT_EQ(FlatIndex(s, {1, 2, 3}), 23);
  EXPECT_EQ(FlatIndex(s, {0, 1, 2}), 6);
}

TEST(TensorTest, NumElementsOfEmptyShapeIsOne) {
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({0}), 0);
  EXPECT_EQ(NumElements({2, 3}), 6);
}

TEST(TensorTest, ShapeToStringRendering) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(TensorTest, CloneIsIndependentCopy) {
  Tensor x = Tensor::FromVector({2}, {5.0f, 6.0f});
  Tensor c = x.Clone();
  c.data()[1] = -1.0f;
  EXPECT_FLOAT_EQ(x.flat(1), 6.0f);
  EXPECT_FLOAT_EQ(c.flat(0), 5.0f);
}

}  // namespace
}  // namespace adaptraj
