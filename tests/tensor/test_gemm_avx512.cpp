// AVX-512 GEMM dispatch verification: exactness of the 8x32 micro-kernel
// against the naive reference and the portable 4x16 kernel across a ragged
// shape grid, degenerate shapes on every transpose variant, bit-determinism
// across thread counts on both paths, plan pre-packing round trips, and the
// 64-byte storage-alignment guarantee the kernels rely on.
//
// Tests that force GemmPath::kAvx512 skip themselves when the override does
// not resolve to the AVX-512 path (not compiled in, or the CPU lacks it) —
// the portable-path assertions still run everywhere. Bitwise avx512-vs-
// portable assertions additionally require the startup probe to have passed
// (auto resolves to kAvx512), since on a toolchain where the portable TU did
// not contract its FMAs the two kernels legitimately differ in low bits.

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/aligned_buffer.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels.h"
#include "tensor/parallel.h"
#include "tensor/tensor.h"

namespace adaptraj {
namespace {

struct ScopedGemmPath {
  explicit ScopedGemmPath(kernels::GemmPath p) { kernels::SetGemmPath(p); }
  ~ScopedGemmPath() { kernels::SetGemmPath(kernels::GemmPath::kAuto); }
};

bool Avx512Selectable() {
  ScopedGemmPath force(kernels::GemmPath::kAvx512);
  return kernels::SelectGemmPath() == kernels::GemmPath::kAvx512;
}

bool ProbePassed() {
  // kAuto resolves to kAvx512 only when the startup bitwise probe succeeded.
  ScopedGemmPath reset(kernels::GemmPath::kAuto);
  return kernels::SelectGemmPath() == kernels::GemmPath::kAvx512;
}

// Deterministic pseudo-random fill, same generator family the dispatch probe
// uses; values in [-1, 1).
struct Lcg {
  uint32_t state;
  explicit Lcg(uint32_t seed) : state(seed) {}
  float Next() {
    state = state * 1664525u + 1013904223u;
    return static_cast<float>(state >> 8) * (2.0f / 16777216.0f) - 1.0f;
  }
  void Fill(std::vector<float>* v) {
    for (auto& x : *v) x = Next();
  }
};

// --- Exactness grid: micro-kernel vs naive vs portable -----------------------

TEST(GemmAvx512Test, RaggedGridMatchesNaiveAndPortable) {
  if (!Avx512Selectable()) GTEST_SKIP() << "AVX-512 path unavailable";
  const bool bitwise = ProbePassed();
  Lcg rng(0x5eed0001u);
  for (int64_t m : {int64_t{1}, int64_t{7}, int64_t{8}, int64_t{9}, int64_t{64}}) {
    for (int64_t n : {int64_t{1}, int64_t{31}, int64_t{32}, int64_t{33}, int64_t{128}}) {
      for (int64_t k : {int64_t{1}, int64_t{2}, int64_t{63}, int64_t{64}}) {
        std::vector<float> a(m * k), b(k * n), seed(m * n);
        rng.Fill(&a);
        rng.Fill(&b);
        rng.Fill(&seed);
        for (bool acc : {false, true}) {
          std::vector<float> c_avx = seed, c_port = seed, c_ref = seed;
          {
            ScopedGemmPath p(kernels::GemmPath::kAvx512);
            kernels::Gemm(false, false, m, n, k, a.data(), b.data(),
                          c_avx.data(), acc);
          }
          {
            ScopedGemmPath p(kernels::GemmPath::kPortable);
            kernels::Gemm(false, false, m, n, k, a.data(), b.data(),
                          c_port.data(), acc);
          }
          kernels::GemmNaive(false, false, m, n, k, a.data(), b.data(),
                             c_ref.data(), acc);
          for (int64_t i = 0; i < m * n; ++i) {
            ASSERT_NEAR(c_avx[i], c_ref[i], 1e-4f)
                << "m=" << m << " n=" << n << " k=" << k << " acc=" << acc
                << " i=" << i;
            if (bitwise) {
              ASSERT_EQ(c_avx[i], c_port[i])
                  << "avx512 vs portable bitwise, m=" << m << " n=" << n
                  << " k=" << k << " acc=" << acc << " i=" << i;
            }
          }
        }
      }
    }
  }
}

TEST(GemmAvx512Test, TransposeVariantsMatchNaive) {
  if (!Avx512Selectable()) GTEST_SKIP() << "AVX-512 path unavailable";
  ScopedGemmPath force(kernels::GemmPath::kAvx512);
  Lcg rng(0x5eed0002u);
  const int64_t m = 37, n = 29, k = 53;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (bool acc : {false, true}) {
        std::vector<float> a(m * k), b(k * n), c_fast(m * n);
        rng.Fill(&a);
        rng.Fill(&b);
        rng.Fill(&c_fast);
        std::vector<float> c_ref = c_fast;
        kernels::Gemm(ta, tb, m, n, k, a.data(), b.data(), c_fast.data(), acc);
        kernels::GemmNaive(ta, tb, m, n, k, a.data(), b.data(), c_ref.data(),
                           acc);
        for (int64_t i = 0; i < m * n; ++i) {
          ASSERT_NEAR(c_fast[i], c_ref[i], 1e-4f)
              << "ta=" << ta << " tb=" << tb << " acc=" << acc << " i=" << i;
        }
      }
    }
  }
}

TEST(GemmAvx512Test, BatchGemmMatchesNaiveBothPaths) {
  Lcg rng(0x5eed0003u);
  const int64_t batch = 3, m = 9, n = 33, k = 17;
  std::vector<float> a(batch * m * k), b(batch * k * n);
  rng.Fill(&a);
  rng.Fill(&b);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      std::vector<float> c_ref(batch * m * n, 0.0f);
      kernels::BatchGemmNaive(ta, tb, batch, m, n, k, a.data(), b.data(),
                              c_ref.data(), false);
      for (auto path :
           {kernels::GemmPath::kPortable, kernels::GemmPath::kAvx512}) {
        if (path == kernels::GemmPath::kAvx512 && !Avx512Selectable()) continue;
        ScopedGemmPath p(path);
        std::vector<float> c(batch * m * n, 0.0f);
        kernels::BatchGemm(ta, tb, batch, m, n, k, a.data(), b.data(), c.data(),
                           false);
        for (int64_t i = 0; i < batch * m * n; ++i) {
          ASSERT_NEAR(c[i], c_ref[i], 1e-4f)
              << "path=" << static_cast<int>(path) << " ta=" << ta
              << " tb=" << tb << " i=" << i;
        }
      }
    }
  }
}

// --- Degenerate shapes: m=0 / n=0 / k=0 / m=1 --------------------------------

TEST(GemmAvx512Test, DegenerateShapesAllVariantsBothPaths) {
  Lcg rng(0x5eed0004u);
  std::vector<float> a(256), b(256);  // sized for the largest m*k / k*n below
  rng.Fill(&a);
  rng.Fill(&b);
  struct Case {
    int64_t m, n, k;
  };
  const Case cases[] = {{0, 5, 3}, {5, 0, 3}, {5, 3, 0}, {0, 0, 0}, {1, 5, 3},
                        {1, 1, 1}, {1, 32, 4}, {1, 33, 4}};
  const bool bitwise = ProbePassed();
  for (auto path : {kernels::GemmPath::kPortable, kernels::GemmPath::kAvx512}) {
    if (path == kernels::GemmPath::kAvx512 && !Avx512Selectable()) continue;
    ScopedGemmPath p(path);
    for (const Case& cs : cases) {
      for (bool ta : {false, true}) {
        for (bool tb : {false, true}) {
          for (bool acc : {false, true}) {
            const int64_t cn = cs.m * cs.n;
            std::vector<float> c(cn + 1, 7.0f);  // +1 sentinel slot
            std::vector<float> c_ref = c;
            kernels::Gemm(ta, tb, cs.m, cs.n, cs.k, a.data(), b.data(),
                          c.data(), acc);
            kernels::GemmNaive(ta, tb, cs.m, cs.n, cs.k, a.data(), b.data(),
                               c_ref.data(), acc);
            for (int64_t i = 0; i <= cn; ++i) {
              ASSERT_NEAR(c[i], c_ref[i], 1e-5f)
                  << "path=" << static_cast<int>(path) << " m=" << cs.m
                  << " n=" << cs.n << " k=" << cs.k << " ta=" << ta
                  << " tb=" << tb << " acc=" << acc << " i=" << i;
            }
            // Sentinel past the end must be untouched, exactly.
            ASSERT_EQ(c[cn], 7.0f)
                << "path=" << static_cast<int>(path) << " m=" << cs.m
                << " n=" << cs.n << " k=" << cs.k << " wrote past C";
            // When the probe passed, the two fast paths agree bitwise.
            if (bitwise && path == kernels::GemmPath::kAvx512) {
              std::vector<float> c_port(cn + 1, 7.0f);
              kernels::SetGemmPath(kernels::GemmPath::kPortable);
              kernels::Gemm(ta, tb, cs.m, cs.n, cs.k, a.data(), b.data(),
                            c_port.data(), acc);
              kernels::SetGemmPath(path);
              ASSERT_EQ(0, std::memcmp(c.data(), c_port.data(),
                                       sizeof(float) * (cn + 1)))
                  << "avx512 vs portable bitwise, m=" << cs.m << " n=" << cs.n
                  << " k=" << cs.k << " ta=" << ta << " tb=" << tb
                  << " acc=" << acc;
            }
          }
        }
      }
    }
  }
}

// k=0 without accumulate must zero C; with accumulate it must leave C alone.
TEST(GemmAvx512Test, KZeroSemantics) {
  for (auto path : {kernels::GemmPath::kPortable, kernels::GemmPath::kAvx512}) {
    if (path == kernels::GemmPath::kAvx512 && !Avx512Selectable()) continue;
    ScopedGemmPath p(path);
    std::vector<float> c(12, 3.5f);
    kernels::Gemm(false, false, 3, 4, 0, nullptr, nullptr, c.data(), true);
    for (float v : c) ASSERT_EQ(v, 3.5f);
    kernels::Gemm(false, false, 3, 4, 0, nullptr, nullptr, c.data(), false);
    for (float v : c) ASSERT_EQ(v, 0.0f);
  }
}

// Auto mode is shape-aware: sub-panel products (n < 32) resolve to the
// portable kernel even when the probe enabled AVX-512, while an explicit
// override bypasses the heuristic (this suite forces the micro-kernel at
// sub-panel shapes and depends on that).
TEST(GemmAvx512Test, ShapeAwareAutoDispatch) {
  {
    ScopedGemmPath reset(kernels::GemmPath::kAuto);
    if (ProbePassed()) {
      EXPECT_EQ(kernels::GemmPathForShape(31), kernels::GemmPath::kPortable);
      EXPECT_EQ(kernels::GemmPathForShape(32), kernels::GemmPath::kAvx512);
      EXPECT_EQ(kernels::GemmPathForShape(128), kernels::GemmPath::kAvx512);
    } else {
      EXPECT_EQ(kernels::GemmPathForShape(128), kernels::GemmPath::kPortable);
    }
    EXPECT_EQ(kernels::GemmPathForShape(1), kernels::GemmPath::kPortable);
  }
  if (Avx512Selectable()) {
    ScopedGemmPath force(kernels::GemmPath::kAvx512);
    EXPECT_EQ(kernels::GemmPathForShape(1), kernels::GemmPath::kAvx512);
    EXPECT_EQ(kernels::GemmPathForShape(31), kernels::GemmPath::kAvx512);
  }
  {
    ScopedGemmPath force(kernels::GemmPath::kPortable);
    EXPECT_EQ(kernels::GemmPathForShape(4096), kernels::GemmPath::kPortable);
  }
}

// --- Thread-count bit-determinism --------------------------------------------

TEST(GemmAvx512Test, ThreadCountBitIdenticalBothPaths) {
  Lcg rng(0x5eed0005u);
  const int64_t m = 129, n = 97, k = 63;
  std::vector<float> a(m * k), b(k * n);
  rng.Fill(&a);
  rng.Fill(&b);
  for (auto path : {kernels::GemmPath::kPortable, kernels::GemmPath::kAvx512}) {
    if (path == kernels::GemmPath::kAvx512 && !Avx512Selectable()) continue;
    ScopedGemmPath p(path);
    std::vector<float> serial(m * n), threaded(m * n);
    parallel::Configure(1);
    kernels::Gemm(false, true, m, n, k, a.data(), b.data(), serial.data(),
                  false);
    parallel::Configure(4);
    kernels::Gemm(false, true, m, n, k, a.data(), b.data(), threaded.data(),
                  false);
    parallel::Configure(1);
    ASSERT_EQ(0, std::memcmp(serial.data(), threaded.data(),
                             sizeof(float) * m * n))
        << "path=" << static_cast<int>(path);
  }
}

// --- Plan pre-packing: both layouts, fused epilogues -------------------------

TEST(GemmAvx512Test, PlanGemmMatchesEagerChainBothLayouts) {
  Lcg rng(0x5eed0006u);
  const int64_t m = 9, n = 33, k = 17, k2 = 13;
  std::vector<float> x(m * k), w(k * n), x2(m * k2), w2(k2 * n), bias(n);
  rng.Fill(&x);
  rng.Fill(&w);
  rng.Fill(&x2);
  rng.Fill(&w2);
  rng.Fill(&bias);

  for (auto act : {kernels::PlanAct::kNone, kernels::PlanAct::kRelu,
                   kernels::PlanAct::kTanh, kernels::PlanAct::kSigmoid}) {
    // Eager reference: Gemm + accumulate-Gemm + AddRowBias + activation, on
    // whichever path auto resolves to (the same arithmetic bit for bit).
    std::vector<float> ref(m * n);
    kernels::Gemm(false, false, m, n, k, x.data(), w.data(), ref.data(), false);
    kernels::Gemm(false, false, m, n, k2, x2.data(), w2.data(), ref.data(),
                  true);
    kernels::AddRowBias(ref.data(), bias.data(), m, n);
    if (act == kernels::PlanAct::kRelu) {
      for (auto& v : ref) v = v > 0.0f ? v : 0.0f;
    } else if (act == kernels::PlanAct::kTanh) {
      kernels::TanhForward(ref.data(), ref.data(), m * n);
    } else if (act == kernels::PlanAct::kSigmoid) {
      kernels::SigmoidForward(ref.data(), ref.data(), m * n);
    }

    const bool bitwise = ProbePassed();
    for (auto path :
         {kernels::GemmPath::kPortable, kernels::GemmPath::kAvx512}) {
      if (path == kernels::GemmPath::kAvx512 && !Avx512Selectable()) continue;
      std::vector<float> wp(kernels::PlanPackedSize(k, n, path));
      std::vector<float> wp2(kernels::PlanPackedSize(k2, n, path));
      std::vector<float> bp(kernels::PlanPackedBiasSize(n, path));
      kernels::PlanPackWeightFor(w.data(), k, n, path, wp.data());
      kernels::PlanPackWeightFor(w2.data(), k2, n, path, wp2.data());
      kernels::PlanPackBiasFor(bias.data(), n, path, bp.data());
      std::vector<float> c(m * n, -99.0f);
      kernels::PlanGemm(m, n, k, x.data(), wp.data(), k2, x2.data(), wp2.data(),
                        bp.data(), act, c.data(), path);
      for (int64_t i = 0; i < m * n; ++i) {
        if (bitwise) {
          ASSERT_EQ(c[i], ref[i])
              << "path=" << static_cast<int>(path)
              << " act=" << static_cast<int>(act) << " i=" << i;
        } else {
          ASSERT_NEAR(c[i], ref[i], 1e-4f)
              << "path=" << static_cast<int>(path)
              << " act=" << static_cast<int>(act) << " i=" << i;
        }
      }
    }
  }
}

TEST(GemmAvx512Test, PlanGemmSingleProductNoBias) {
  Lcg rng(0x5eed0007u);
  const int64_t m = 7, n = 31, k = 63;
  std::vector<float> x(m * k), w(k * n);
  rng.Fill(&x);
  rng.Fill(&w);
  std::vector<float> ref(m * n);
  kernels::Gemm(false, false, m, n, k, x.data(), w.data(), ref.data(), false);
  for (auto path : {kernels::GemmPath::kPortable, kernels::GemmPath::kAvx512}) {
    if (path == kernels::GemmPath::kAvx512 && !Avx512Selectable()) continue;
    std::vector<float> wp(kernels::PlanPackedSize(k, n, path));
    kernels::PlanPackWeightFor(w.data(), k, n, path, wp.data());
    std::vector<float> c(m * n, -99.0f);
    kernels::PlanGemm(m, n, k, x.data(), wp.data(), 0, nullptr, nullptr,
                      nullptr, kernels::PlanAct::kNone, c.data(), path);
    for (int64_t i = 0; i < m * n; ++i) {
      ASSERT_NEAR(c[i], ref[i], 1e-4f)
          << "path=" << static_cast<int>(path) << " i=" << i;
    }
  }
}

TEST(GemmAvx512Test, PlanGemmThreadCountBitIdentical) {
  Lcg rng(0x5eed0008u);
  const int64_t m = 65, n = 64, k = 32;
  std::vector<float> x(m * k), w(k * n), bias(n);
  rng.Fill(&x);
  rng.Fill(&w);
  rng.Fill(&bias);
  for (auto path : {kernels::GemmPath::kPortable, kernels::GemmPath::kAvx512}) {
    if (path == kernels::GemmPath::kAvx512 && !Avx512Selectable()) continue;
    std::vector<float> wp(kernels::PlanPackedSize(k, n, path));
    std::vector<float> bp(kernels::PlanPackedBiasSize(n, path));
    kernels::PlanPackWeightFor(w.data(), k, n, path, wp.data());
    kernels::PlanPackBiasFor(bias.data(), n, path, bp.data());
    std::vector<float> serial(m * n), threaded(m * n);
    parallel::Configure(1);
    kernels::PlanGemm(m, n, k, x.data(), wp.data(), 0, nullptr, nullptr,
                      bp.data(), kernels::PlanAct::kTanh, serial.data(), path);
    parallel::Configure(4);
    kernels::PlanGemm(m, n, k, x.data(), wp.data(), 0, nullptr, nullptr,
                      bp.data(), kernels::PlanAct::kTanh, threaded.data(),
                      path);
    parallel::Configure(1);
    ASSERT_EQ(0, std::memcmp(serial.data(), threaded.data(),
                             sizeof(float) * m * n))
        << "path=" << static_cast<int>(path);
  }
}

// Zero-sign semantics (the all-zero LSTM initial-state case). A fresh
// accumulation over a zero A row yields +0.0 on every path (IEEE:
// +0 + (-0) = +0), and a -0.0 already in C must survive accumulate=true when
// every true-k product is -0.0 — possible only because the k-padding in the
// packed B is layout-only. If the kernel accumulated the zero-padded rows it
// would also read A out of bounds, which ASan CI would flag.
TEST(GemmAvx512Test, ZeroSignSemantics) {
  const int64_t m = 1, n = 33, k = 5;
  std::vector<float> a(k, 0.0f);     // +0.0 row
  std::vector<float> b(k * n, -1.0f);
  for (auto path : {kernels::GemmPath::kPortable, kernels::GemmPath::kAvx512}) {
    if (path == kernels::GemmPath::kAvx512 && !Avx512Selectable()) continue;
    ScopedGemmPath p(path);
    std::vector<float> c(m * n, 42.0f);
    kernels::Gemm(false, false, m, n, k, a.data(), b.data(), c.data(), false);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(c[i], 0.0f) << "path=" << static_cast<int>(path);
      ASSERT_FALSE(std::signbit(c[i]))
          << "path=" << static_cast<int>(path) << " col " << i
          << ": fresh zero accumulation must be +0.0";
    }
    // accumulate=true onto -0.0: every product is (+0)*(-1) = -0.0 and
    // -0 + -0 = -0, so the sign survives iff only true k rows accumulate.
    std::vector<float> c_acc(m * n, -0.0f);
    kernels::Gemm(false, false, m, n, k, a.data(), b.data(), c_acc.data(),
                  true);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(c_acc[i], 0.0f) << "path=" << static_cast<int>(path);
      ASSERT_TRUE(std::signbit(c_acc[i]))
          << "path=" << static_cast<int>(path) << " col " << i
          << ": accumulate flipped -0.0 to +0.0";
    }
  }
}

// --- Storage alignment (satellite: kernels assume 64-byte-aligned data) ------

TEST(GemmAvx512Test, PooledBuffersAre64ByteAligned) {
  auto aligned = [](const float* p) {
    return reinterpret_cast<uintptr_t>(p) % internal::kBufferAlignment == 0;
  };
  // Fresh acquisitions at awkward sizes.
  for (int64_t n : {1, 3, 17, 1000, 4096}) {
    internal::FloatBuffer buf = internal::AcquireBuffer(n);
    ASSERT_TRUE(aligned(buf.data())) << "fresh n=" << n;
    internal::ReleaseBuffer(std::move(buf));
  }
  // Pool-recycled buffers must come back aligned too.
  internal::FloatBuffer first = internal::AcquireBuffer(513);
  const float* fresh_ptr = first.data();
  internal::ReleaseBuffer(std::move(first));
  internal::FloatBuffer again = internal::AcquireBuffer(513);
  ASSERT_TRUE(aligned(again.data())) << "recycled buffer misaligned";
  EXPECT_EQ(fresh_ptr, again.data()) << "pool did not recycle (accounting?)";
  internal::ReleaseBuffer(std::move(again));

  internal::FloatBuffer zeroed = internal::AcquireZeroedBuffer(77);
  ASSERT_TRUE(aligned(zeroed.data()));
  for (float v : zeroed) ASSERT_EQ(v, 0.0f);
  internal::ReleaseBuffer(std::move(zeroed));
}

TEST(GemmAvx512Test, TensorStorageIs64ByteAligned) {
  auto aligned = [](const float* p) {
    return reinterpret_cast<uintptr_t>(p) % internal::kBufferAlignment == 0;
  };
  Rng rng(5);
  Tensor t = Tensor::Randn({3, 7}, &rng, 1.0f, /*requires_grad=*/true);
  ASSERT_TRUE(aligned(t.data()));
  // Grad storage is pooled through the same allocator.
  internal::TensorImpl impl;
  impl.data = internal::AcquireBuffer(21);
  impl.EnsureGrad();
  ASSERT_TRUE(aligned(impl.grad.data()));
  // FromVector must not adopt the caller's (unaligned-allocator) storage.
  Tensor f = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(aligned(f.data()));
}

}  // namespace
}  // namespace adaptraj
