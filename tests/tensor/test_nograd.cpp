// Tests for the forward-only execution mode: GradMode / NoGradGuard /
// EnableGradGuard semantics, zero GradNode allocation, bit-identical forward
// values, eager buffer recycling, and the Backward()-on-no-grad check.

#include <cstring>

#include <gtest/gtest.h>

#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace adaptraj {
namespace {

/// A small representative graph: two GEMMs, a fused LSTM-style gate chain,
/// softmax, reductions.
Tensor SmallForward(const Tensor& x, const Tensor& w1, const Tensor& w2) {
  Tensor h = ops::Tanh(ops::MatMul(x, w1));
  Tensor logits = ops::MatMul(h, w2);
  Tensor probs = ops::Softmax(logits);
  return ops::Sum(ops::Square(probs));
}

TEST(GradModeTest, EnabledByDefaultAndGuardRestores) {
  EXPECT_TRUE(GradMode::IsEnabled());
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradMode::IsEnabled());
    {
      NoGradGuard nested;
      EXPECT_FALSE(GradMode::IsEnabled());
    }
    EXPECT_FALSE(GradMode::IsEnabled());
  }
  EXPECT_TRUE(GradMode::IsEnabled());
}

TEST(GradModeTest, EnableGradGuardReopensInsideNoGrad) {
  NoGradGuard no_grad;
  EXPECT_FALSE(GradMode::IsEnabled());
  {
    EnableGradGuard island;
    EXPECT_TRUE(GradMode::IsEnabled());
    Tensor x = Tensor::Full({2, 2}, 1.0f, /*requires_grad=*/true);
    Tensor y = ops::Sum(ops::Square(x));
    EXPECT_TRUE(y.needs_grad());
    y.Backward();  // the island records a real graph
    EXPECT_FLOAT_EQ(x.grad().flat(0), 2.0f);
  }
  EXPECT_FALSE(GradMode::IsEnabled());
}

TEST(GradModeTest, ForcedGradOverridesNoGradGuard) {
  ForcedGradModeGuard forced;
  NoGradGuard no_grad;
  EXPECT_TRUE(GradMode::IsEnabled());
  Tensor x = Tensor::Full({2}, 3.0f, /*requires_grad=*/true);
  Tensor y = ops::Sum(x);
  EXPECT_TRUE(y.needs_grad());
}

TEST(NoGradTest, OpsAllocateZeroGradNodes) {
  Rng rng(1);
  Tensor x = Tensor::Randn({8, 16}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor w1 = Tensor::Randn({16, 16}, &rng, 0.5f, /*requires_grad=*/true);
  Tensor w2 = Tensor::Randn({16, 4}, &rng, 0.5f, /*requires_grad=*/true);

  const int64_t before = internal::GradNodesCreated();
  Tensor grad_mode = SmallForward(x, w1, w2);
  EXPECT_GT(internal::GradNodesCreated(), before);

  const int64_t mid = internal::GradNodesCreated();
  Tensor no_grad;
  {
    NoGradGuard guard;
    no_grad = SmallForward(x, w1, w2);
  }
  EXPECT_EQ(internal::GradNodesCreated(), mid);
  EXPECT_FALSE(no_grad.needs_grad());
  EXPECT_TRUE(grad_mode.needs_grad());
}

TEST(NoGradTest, ForwardValuesBitIdenticalToGradMode) {
  Rng rng(7);
  Tensor x = Tensor::Randn({16, 32}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor w1 = Tensor::Randn({32, 32}, &rng, 0.3f, /*requires_grad=*/true);
  Tensor w2 = Tensor::Randn({32, 8}, &rng, 0.3f, /*requires_grad=*/true);

  Tensor h_grad = ops::Softmax(ops::MatMul(ops::Tanh(ops::MatMul(x, w1)), w2));
  Tensor h_nograd;
  {
    NoGradGuard guard;
    h_nograd = ops::Softmax(ops::MatMul(ops::Tanh(ops::MatMul(x, w1)), w2));
  }
  ASSERT_EQ(h_grad.size(), h_nograd.size());
  EXPECT_EQ(std::memcmp(h_grad.data(), h_nograd.data(),
                        static_cast<size_t>(h_grad.size()) * sizeof(float)),
            0);
}

TEST(NoGradTest, FusedLstmOpsBitIdentical) {
  Rng rng(9);
  const int64_t b = 8, h = 16;
  Tensor x = Tensor::Randn({b, h}, &rng, 0.5f, /*requires_grad=*/true);
  Tensor w_ih = Tensor::Randn({h, 4 * h}, &rng, 0.3f, /*requires_grad=*/true);
  Tensor w_hh = Tensor::Randn({h, 4 * h}, &rng, 0.3f, /*requires_grad=*/true);
  Tensor bias = Tensor::Randn({1, 4 * h}, &rng, 0.1f, /*requires_grad=*/true);
  Tensor h0 = Tensor::Randn({b, h}, &rng, 0.5f);
  Tensor c0 = Tensor::Randn({b, h}, &rng, 0.5f);

  auto step = [&] {
    Tensor gates = ops::LinearGates(x, w_ih, h0, w_hh, bias);
    Tensor c = ops::LstmCellC(gates, c0);
    return ops::LstmCellH(gates, c);
  };
  Tensor with_grad = step();
  Tensor without;
  {
    NoGradGuard guard;
    without = step();
  }
  EXPECT_EQ(std::memcmp(with_grad.data(), without.data(),
                        static_cast<size_t>(with_grad.size()) * sizeof(float)),
            0);
}

TEST(NoGradTest, BackwardOnNoGradResultDies) {
  Tensor x = Tensor::Full({2}, 1.0f, /*requires_grad=*/true);
  Tensor y;
  {
    NoGradGuard guard;
    y = ops::Sum(x);
  }
  EXPECT_FALSE(y.needs_grad());
  EXPECT_DEATH(y.Backward(), "NoGradGuard");
}

TEST(NoGradTest, BackwardOnGradModeResultStillWorks) {
  Tensor x = Tensor::Full({3}, 2.0f, /*requires_grad=*/true);
  Tensor y = ops::Sum(ops::Square(x));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().flat(0), 4.0f);
}

// Under no-grad, intermediates are not pinned by a graph: each temporary's
// storage returns to the pool as soon as its handle dies, so a repeated
// forward pass reuses far more aggressively than the grad-mode pass whose
// graph holds every intermediate until teardown.
TEST(NoGradTest, EagerReleaseRaisesPoolReuse) {
  Rng rng(3);
  Tensor x = Tensor::Randn({32, 64}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor w1 = Tensor::Randn({64, 64}, &rng, 0.3f, /*requires_grad=*/true);
  Tensor w2 = Tensor::Randn({64, 64}, &rng, 0.3f, /*requires_grad=*/true);

  auto chain = [&] {
    // A deep elementwise chain: every op output is a same-shaped temporary.
    Tensor h = ops::MatMul(x, w1);
    for (int i = 0; i < 8; ++i) h = ops::Tanh(ops::MulScalar(h, 0.9f));
    return ops::MatMul(h, w2);
  };

  // One cold pass from an empty pool: grad mode keeps every intermediate
  // alive until graph teardown, so nothing can be recycled within the pass;
  // no-grad frees each temporary immediately, so later ops hit the pool.
  auto reuse_rate = [&](auto body) {
    internal::ClearBufferPool();
    body();
    const auto stats = internal::GetBufferPoolStats();
    return static_cast<double>(stats.hits()) /
           static_cast<double>(stats.acquires);
  };

  const double grad_rate = reuse_rate([&] { (void)chain(); });
  const double nograd_rate = reuse_rate([&] {
    NoGradGuard guard;
    (void)chain();
  });
  EXPECT_GT(nograd_rate, grad_rate);
}

}  // namespace
}  // namespace adaptraj
