// Batched 3-D GEMM verification: the BatchGemm kernel against its serial
// reference, BatchMatMul gradchecks across every transpose variant and batch
// size (including B = 0), equivalence with the per-slice Slice/MatMul/
// Transpose/Concat formulation it replaced, the 3-D last-axis Softmax path,
// and bit-determinism of the batched attention pipeline across thread counts.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace {

using namespace ops;  // NOLINT(build/namespaces)

Tensor Leaf(const Shape& shape, Rng* rng, float scale = 0.5f) {
  return Tensor::Randn(shape, rng, scale, /*requires_grad=*/true);
}

void ExpectGradOk(const std::function<Tensor(const std::vector<Tensor>&)>& fn,
                  std::vector<Tensor> inputs) {
  auto report = CheckGradients(fn, std::move(inputs));
  EXPECT_TRUE(report.ok) << "max_abs_error=" << report.max_abs_error
                         << " max_rel_error=" << report.max_rel_error
                         << " worst at input " << report.worst_input
                         << " flat index " << report.worst_index;
}

std::vector<float> RandomVec(int64_t n, Rng* rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng->Normal(0.0f, 1.0f);
  return v;
}

// --- BatchGemm kernel vs the serial reference --------------------------------

TEST(BatchGemmTest, MatchesNaiveAllTransposeVariants) {
  Rng rng(21);
  // Awkward extents: not multiples of the micro-tile or the row grain.
  const int64_t batch = 3, m = 37, n = 29, k = 53;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (bool acc : {false, true}) {
        std::vector<float> a = RandomVec(batch * m * k, &rng);
        std::vector<float> b = RandomVec(batch * k * n, &rng);
        std::vector<float> c_fast = RandomVec(batch * m * n, &rng);
        std::vector<float> c_ref = c_fast;
        kernels::BatchGemm(ta, tb, batch, m, n, k, a.data(), b.data(),
                           c_fast.data(), acc);
        kernels::BatchGemmNaive(ta, tb, batch, m, n, k, a.data(), b.data(),
                                c_ref.data(), acc);
        for (int64_t i = 0; i < batch * m * n; ++i) {
          ASSERT_NEAR(c_fast[i], c_ref[i], 1e-4f)
              << "ta=" << ta << " tb=" << tb << " acc=" << acc << " i=" << i;
        }
      }
    }
  }
}

TEST(BatchGemmTest, ParallelBitIdenticalToSerial) {
  Rng rng(22);
  const int64_t batch = 5, m = 40, n = 24, k = 32;
  std::vector<float> a = RandomVec(batch * m * k, &rng);
  std::vector<float> b = RandomVec(batch * k * n, &rng);
  std::vector<float> serial(batch * m * n), threaded(batch * m * n);

  parallel::Configure(1);
  kernels::BatchGemm(false, false, batch, m, n, k, a.data(), b.data(),
                     serial.data(), false);
  parallel::Configure(4);
  kernels::BatchGemm(false, false, batch, m, n, k, a.data(), b.data(),
                     threaded.data(), false);
  parallel::Configure(1);

  for (int64_t i = 0; i < batch * m * n; ++i) {
    ASSERT_EQ(serial[i], threaded[i]) << "bitwise mismatch at " << i;
  }
}

TEST(BatchGemmTest, ZeroBatchAndZeroInnerDimAreNative) {
  // batch == 0: nothing to touch.
  kernels::BatchGemm(false, false, 0, 4, 4, 4, nullptr, nullptr, nullptr, false);
  // k == 0 zeroes (or preserves, when accumulating) the output.
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  kernels::BatchGemm(false, false, 1, 2, 2, 0, nullptr, nullptr, c.data(), true);
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  kernels::BatchGemm(false, false, 1, 2, 2, 0, nullptr, nullptr, c.data(), false);
  EXPECT_FLOAT_EQ(c[0], 0.0f);
  EXPECT_FLOAT_EQ(c[3], 0.0f);
}

// --- BatchMatMul op ----------------------------------------------------------

TEST(BatchMatMulTest, ForwardMatchesPerSliceLoop) {
  Rng rng(23);
  const int64_t batch = 3, m = 5, k = 4, n = 6;
  Tensor a = Tensor::Randn({batch, m, k}, &rng);
  Tensor b = Tensor::Randn({batch, k, n}, &rng);
  Tensor batched = BatchMatMul(a, b);
  ASSERT_EQ(batched.shape(), (Shape{batch, m, n}));
  Tensor a2 = Reshape(a, {batch * m, k});
  Tensor b2 = Reshape(b, {batch * k, n});
  for (int64_t bi = 0; bi < batch; ++bi) {
    Tensor y = MatMul(Slice(a2, 0, bi * m, (bi + 1) * m),
                      Slice(b2, 0, bi * k, (bi + 1) * k));
    for (int64_t i = 0; i < m * n; ++i) {
      EXPECT_NEAR(batched.flat(bi * m * n + i), y.flat(i), 1e-5f)
          << "slice " << bi << " element " << i;
    }
  }
}

TEST(BatchMatMulTest, TransposeVariantsMatchExplicitTransposes) {
  Rng rng(24);
  const int64_t batch = 2, m = 3, k = 5, n = 4;
  Tensor a = Tensor::Randn({batch, m, k}, &rng);   // plain layouts
  Tensor b = Tensor::Randn({batch, k, n}, &rng);
  Tensor want = BatchMatMul(a, b);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      // Build physically transposed operands slice by slice.
      Tensor at = a, bt = b;
      if (ta) {
        std::vector<Tensor> slices;
        Tensor a2 = Reshape(a, {batch * m, k});
        for (int64_t bi = 0; bi < batch; ++bi) {
          slices.push_back(Transpose(Slice(a2, 0, bi * m, (bi + 1) * m)));
        }
        at = Stack(slices);  // [batch, k, m]
      }
      if (tb) {
        std::vector<Tensor> slices;
        Tensor b2 = Reshape(b, {batch * k, n});
        for (int64_t bi = 0; bi < batch; ++bi) {
          slices.push_back(Transpose(Slice(b2, 0, bi * k, (bi + 1) * k)));
        }
        bt = Stack(slices);  // [batch, n, k]
      }
      Tensor got = BatchMatMul(at, bt, ta, tb);
      ASSERT_EQ(got.shape(), want.shape()) << "ta=" << ta << " tb=" << tb;
      for (int64_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got.flat(i), want.flat(i), 1e-5f)
            << "ta=" << ta << " tb=" << tb << " i=" << i;
      }
    }
  }
}

TEST(BatchMatMulTest, GradCheckAllTransposeVariantsAndBatchSizes) {
  const int64_t m = 3, k = 4, n = 2;
  for (int64_t batch : {int64_t{1}, int64_t{3}}) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        Rng rng(100 + static_cast<uint64_t>(batch) + (ta ? 10 : 0) + (tb ? 20 : 0));
        Shape a_shape = ta ? Shape{batch, k, m} : Shape{batch, m, k};
        Shape b_shape = tb ? Shape{batch, n, k} : Shape{batch, k, n};
        SCOPED_TRACE(::testing::Message() << "batch=" << batch << " ta=" << ta
                                          << " tb=" << tb);
        ExpectGradOk(
            [ta, tb](const std::vector<Tensor>& in) {
              return Sum(Square(BatchMatMul(in[0], in[1], ta, tb)));
            },
            {Leaf(a_shape, &rng), Leaf(b_shape, &rng)});
      }
    }
  }
}

TEST(BatchMatMulTest, ZeroBatchForwardAndBackward) {
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      Shape a_shape = ta ? Shape{0, 4, 3} : Shape{0, 3, 4};
      Shape b_shape = tb ? Shape{0, 2, 4} : Shape{0, 4, 2};
      Tensor a = Tensor::Zeros(a_shape, /*requires_grad=*/true);
      Tensor b = Tensor::Zeros(b_shape, /*requires_grad=*/true);
      Tensor y = BatchMatMul(a, b, ta, tb);
      ASSERT_EQ(y.shape(), (Shape{0, 3, 2})) << "ta=" << ta << " tb=" << tb;
      // Backward over the empty graph must be a clean no-op.
      Tensor loss = Sum(y);
      EXPECT_FLOAT_EQ(loss.item(), 0.0f);
      loss.Backward();
      EXPECT_EQ(a.grad().size(), 0);
      EXPECT_EQ(b.grad().size(), 0);
    }
  }
}

TEST(BatchMatMulDeathTest, RejectsMismatchedShapes) {
  Tensor a = Tensor::Zeros({2, 3, 4});
  EXPECT_DEATH(BatchMatMul(a, Tensor::Zeros({2, 5, 6})), "inner dims differ");
  EXPECT_DEATH(BatchMatMul(a, Tensor::Zeros({3, 4, 6})), "batch extents differ");
  EXPECT_DEATH(BatchMatMul(a, Tensor::Zeros({8, 6})), "3-D operands");
}

// --- 3-D Softmax (last axis) -------------------------------------------------

TEST(Softmax3Test, MatchesPerSliceSoftmax) {
  Rng rng(25);
  const int64_t batch = 4, t = 5;
  Tensor x = Tensor::Randn({batch, t, t}, &rng, 2.0f);
  Tensor y = Softmax(x);
  ASSERT_EQ(y.shape(), (Shape{batch, t, t}));
  Tensor x2 = Reshape(x, {batch * t, t});
  Tensor y2 = Softmax(x2);
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y.flat(i), y2.flat(i), 1e-6f) << "i=" << i;
  }
  // Every key row normalizes independently.
  for (int64_t r = 0; r < batch * t; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < t; ++c) sum += y.flat(r * t + c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f) << "row " << r;
  }
}

TEST(Softmax3Test, LastAxisGradCheck) {
  Rng rng(26);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Softmax(in[0])));
      },
      {Leaf({2, 3, 4}, &rng, 1.0f)});
}

// --- Concat with zero-extent parts ------------------------------------------

TEST(ConcatTest, ZeroExtentPartsFlowThrough) {
  // B = 0 activations ([0, D] and [0, T, D]) must concatenate natively.
  Tensor a = Tensor::Zeros({0, 3});
  Tensor b = Tensor::Zeros({0, 3});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{0, 3}));
  Tensor d = Concat({Tensor::Zeros({0, 1, 4}), Tensor::Zeros({0, 2, 4})}, 1);
  EXPECT_EQ(d.shape(), (Shape{0, 3, 4}));
}

// --- Batched attention determinism across thread counts ----------------------

TEST(BatchMatMulTest, AttentionPipelineBitDeterministicAcrossThreadCounts) {
  auto run = [](int threads, std::vector<float>* out, std::vector<float>* grad) {
    parallel::Configure(threads);
    Rng rng(321);
    const int64_t b = 4, t = 6, d = 32;
    Tensor q = Leaf({b, t, d}, &rng);
    Tensor k = Leaf({b, t, d}, &rng);
    Tensor v = Leaf({b, t, d}, &rng);
    Tensor scores = MulScalar(BatchMatMul(q, k, false, true),
                              1.0f / std::sqrt(static_cast<float>(d)));
    Tensor attended = BatchMatMul(Softmax(scores), v);
    Sum(Square(attended)).Backward();
    out->assign(attended.data(), attended.data() + attended.size());
    Tensor gq = q.grad();
    grad->assign(gq.data(), gq.data() + gq.size());
  };
  std::vector<float> y1, g1, y4, g4;
  run(1, &y1, &g1);
  run(4, &y4, &g4);
  parallel::Configure(1);
  ASSERT_EQ(y1.size(), y4.size());
  for (size_t i = 0; i < y1.size(); ++i) ASSERT_EQ(y1[i], y4[i]) << "fwd " << i;
  ASSERT_EQ(g1.size(), g4.size());
  for (size_t i = 0; i < g1.size(); ++i) ASSERT_EQ(g1[i], g4[i]) << "bwd " << i;
}

}  // namespace
}  // namespace adaptraj
