// Contract tests: invalid usage must fail fast with ADAPTRAJ_CHECK (death
// tests), matching the library's no-exceptions error policy.

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace adaptraj {
namespace {

using namespace ops;  // NOLINT(build/namespaces)

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, ElementwiseShapeMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({3, 2});
  EXPECT_DEATH((void)Add(a, b), "shape mismatch");
}

TEST(CheckDeathTest, MatMulInnerDimMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4, 2});
  EXPECT_DEATH((void)MatMul(a, b), "inner dims differ");
}

TEST(CheckDeathTest, MatMulRequiresTwoDims) {
  Tensor a = Tensor::Zeros({6});
  Tensor b = Tensor::Zeros({6});
  EXPECT_DEATH((void)MatMul(a, b), "2-D");
}

TEST(CheckDeathTest, BackwardRequiresScalar) {
  Tensor x = Tensor::Zeros({2, 2}, /*requires_grad=*/true);
  Tensor y = MulScalar(x, 2.0f);
  EXPECT_DEATH(y.Backward(), "scalar");
}

TEST(CheckDeathTest, ItemRequiresSingleElement) {
  Tensor t = Tensor::Zeros({3});
  EXPECT_DEATH((void)t.item(), "item()");
}

TEST(CheckDeathTest, SliceRangeValidation) {
  Tensor t = Tensor::Zeros({4});
  EXPECT_DEATH((void)Slice(t, 0, 2, 6), "Slice range");
  EXPECT_DEATH((void)Slice(t, 0, 3, 2), "Slice range");
}

TEST(CheckDeathTest, ConcatMismatchedOtherDims) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({3, 3});
  EXPECT_DEATH((void)Concat({a, b}, 1), "mismatched dim");
}

TEST(CheckDeathTest, ReshapeElementCountMustMatch) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_DEATH((void)Reshape(t, {4, 2}), "changes element count");
}

TEST(CheckDeathTest, NllLossLabelOutOfRange) {
  Tensor lp = Tensor::Zeros({1, 3});
  EXPECT_DEATH((void)NllLoss(lp, {5}), "out of range");
}

TEST(CheckDeathTest, FromVectorSizeMismatch) {
  EXPECT_DEATH((void)Tensor::FromVector({3}, {1.0f, 2.0f}), "does not match");
}

TEST(CheckDeathTest, AxisOutOfRangeAborts) {
  Tensor t = Tensor::Zeros({2, 2});
  EXPECT_DEATH((void)SumAxis(t, 5), "out of range");
}

TEST(CheckDeathTest, BroadcastRankMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({3});
  EXPECT_DEATH((void)BroadcastAdd(a, b), "rank mismatch");
}

TEST(CheckDeathTest, UndefinedTensorAccessAborts) {
  Tensor t;
  EXPECT_DEATH((void)t.shape(), "null tensor");
}

}  // namespace
}  // namespace adaptraj
