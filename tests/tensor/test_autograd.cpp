// Gradient correctness: analytic vs central finite differences for every op,
// including parameterized sweeps over shapes and seeds (property-style).

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace adaptraj {
namespace {

using namespace ops;  // NOLINT(build/namespaces)

Tensor Leaf(const Shape& shape, Rng* rng, float scale = 1.0f) {
  return Tensor::Randn(shape, rng, scale, /*requires_grad=*/true);
}

void ExpectGradOk(const std::function<Tensor(const std::vector<Tensor>&)>& fn,
                  std::vector<Tensor> inputs) {
  auto report = CheckGradients(fn, std::move(inputs));
  EXPECT_TRUE(report.ok) << "max_abs_error=" << report.max_abs_error
                         << " max_rel_error=" << report.max_rel_error;
}

TEST(AutogradTest, AddGradient) {
  Rng rng(1);
  ExpectGradOk([](const std::vector<Tensor>& in) { return Sum(Add(in[0], in[1])); },
               {Leaf({2, 3}, &rng), Leaf({2, 3}, &rng)});
}

TEST(AutogradTest, SubGradient) {
  Rng rng(2);
  ExpectGradOk([](const std::vector<Tensor>& in) { return Sum(Square(Sub(in[0], in[1]))); },
               {Leaf({3}, &rng), Leaf({3}, &rng)});
}

TEST(AutogradTest, MulGradient) {
  Rng rng(3);
  ExpectGradOk([](const std::vector<Tensor>& in) { return Sum(Mul(in[0], in[1])); },
               {Leaf({4}, &rng), Leaf({4}, &rng)});
}

TEST(AutogradTest, DivGradient) {
  Rng rng(4);
  Tensor b = Tensor::Rand({4}, &rng, 1.0f, 2.0f, /*requires_grad=*/true);
  ExpectGradOk([](const std::vector<Tensor>& in) { return Sum(Div(in[0], in[1])); },
               {Leaf({4}, &rng), b});
}

TEST(AutogradTest, BroadcastAddGradient) {
  Rng rng(5);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(Square(BroadcastAdd(in[0], in[1]))); },
      {Leaf({3, 4}, &rng), Leaf({1, 4}, &rng)});
}

TEST(AutogradTest, BroadcastMulGradient3d) {
  Rng rng(6);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(BroadcastMul(in[0], in[1])); },
      {Leaf({2, 3, 2}, &rng), Leaf({2, 3, 1}, &rng)});
}

TEST(AutogradTest, MatMulGradient) {
  Rng rng(7);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(Square(MatMul(in[0], in[1]))); },
      {Leaf({3, 4}, &rng, 0.5f), Leaf({4, 2}, &rng, 0.5f)});
}

TEST(AutogradTest, TransposeGradient) {
  Rng rng(8);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(Square(Transpose(in[0]))); },
      {Leaf({3, 5}, &rng)});
}

TEST(AutogradTest, TanhGradient) {
  Rng rng(9);
  ExpectGradOk([](const std::vector<Tensor>& in) { return Sum(Tanh(in[0])); },
               {Leaf({6}, &rng)});
}

TEST(AutogradTest, SigmoidGradient) {
  Rng rng(10);
  ExpectGradOk([](const std::vector<Tensor>& in) { return Sum(Sigmoid(in[0])); },
               {Leaf({6}, &rng)});
}

TEST(AutogradTest, ExpGradient) {
  Rng rng(11);
  ExpectGradOk([](const std::vector<Tensor>& in) { return Sum(Exp(in[0])); },
               {Leaf({5}, &rng, 0.5f)});
}

TEST(AutogradTest, LogClampedGradient) {
  Rng rng(12);
  Tensor a = Tensor::Rand({5}, &rng, 0.5f, 2.0f, /*requires_grad=*/true);
  ExpectGradOk([](const std::vector<Tensor>& in) { return Sum(LogClamped(in[0])); }, {a});
}

TEST(AutogradTest, SqrtGradient) {
  Rng rng(13);
  Tensor a = Tensor::Rand({5}, &rng, 0.5f, 2.0f, /*requires_grad=*/true);
  ExpectGradOk([](const std::vector<Tensor>& in) { return Sum(Sqrt(in[0])); }, {a});
}

TEST(AutogradTest, SoftmaxGradient) {
  Rng rng(14);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor s = Softmax(in[0]);
        return Sum(Mul(s, s));  // non-trivial downstream function
      },
      {Leaf({2, 4}, &rng)});
}

TEST(AutogradTest, LogSoftmaxGradient) {
  Rng rng(15);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(Square(LogSoftmax(in[0]))); },
      {Leaf({2, 3}, &rng)});
}

TEST(AutogradTest, ConcatGradient) {
  Rng rng(16);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Concat({in[0], in[1]}, 1)));
      },
      {Leaf({2, 3}, &rng), Leaf({2, 2}, &rng)});
}

TEST(AutogradTest, SliceGradient) {
  Rng rng(17);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(Square(Slice(in[0], 1, 1, 3))); },
      {Leaf({2, 4}, &rng)});
}

TEST(AutogradTest, StackGradient) {
  Rng rng(18);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(Square(Stack({in[0], in[1]}))); },
      {Leaf({3}, &rng), Leaf({3}, &rng)});
}

TEST(AutogradTest, ReshapeGradient) {
  Rng rng(19);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(Square(Reshape(in[0], {6}))); },
      {Leaf({2, 3}, &rng)});
}

TEST(AutogradTest, SumAxisGradient) {
  Rng rng(20);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(Square(SumAxis(in[0], 1))); },
      {Leaf({2, 3, 2}, &rng)});
}

TEST(AutogradTest, MeanAxisGradient) {
  Rng rng(21);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(Square(MeanAxis(in[0], 0))); },
      {Leaf({3, 4}, &rng)});
}

TEST(AutogradTest, ClampGradientZeroOutsideRange) {
  Tensor x = Tensor::FromVector({3}, {-2.0f, 0.0f, 2.0f}, /*requires_grad=*/true);
  Sum(Clamp(x, -1.0f, 1.0f)).Backward();
  EXPECT_FLOAT_EQ(x.grad().flat(0), 0.0f);
  EXPECT_FLOAT_EQ(x.grad().flat(1), 1.0f);
  EXPECT_FLOAT_EQ(x.grad().flat(2), 0.0f);
}

TEST(AutogradTest, GradReverseNegatesAndScales) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f}, /*requires_grad=*/true);
  Sum(GradReverse(x, 0.5f)).Backward();
  EXPECT_FLOAT_EQ(x.grad().flat(0), -0.5f);
  EXPECT_FLOAT_EQ(x.grad().flat(1), -0.5f);
}

TEST(AutogradTest, MaskedFillBlocksGradAtMask) {
  Tensor x = Tensor::FromVector({3}, {1.0f, 2.0f, 3.0f}, /*requires_grad=*/true);
  Tensor mask = Tensor::FromVector({3}, {0.0f, 1.0f, 0.0f});
  Sum(MaskedFill(x, mask, -100.0f)).Backward();
  EXPECT_FLOAT_EQ(x.grad().flat(0), 1.0f);
  EXPECT_FLOAT_EQ(x.grad().flat(1), 0.0f);
  EXPECT_FLOAT_EQ(x.grad().flat(2), 1.0f);
}

TEST(AutogradTest, NllLossGradient) {
  Rng rng(22);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return NllLoss(LogSoftmax(in[0]), {1, 0}); },
      {Leaf({2, 3}, &rng)});
}

TEST(AutogradTest, CompositeTwoLayerNetwork) {
  Rng rng(23);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor h = Tanh(BroadcastAdd(MatMul(in[0], in[1]), in[2]));
        Tensor y = MatMul(h, in[3]);
        return Mean(Square(y));
      },
      {Leaf({2, 3}, &rng, 0.5f), Leaf({3, 4}, &rng, 0.5f), Leaf({1, 4}, &rng, 0.1f),
       Leaf({4, 1}, &rng, 0.5f)});
}

// ---- Property-style sweeps over shapes and seeds -----------------------------

struct SweepParam {
  int64_t rows;
  int64_t cols;
  uint64_t seed;
};

class GradSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GradSweepTest, ChainedOpsGradient) {
  const SweepParam p = GetParam();
  Rng rng(p.seed);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor h = Relu(BroadcastAdd(in[0], in[1]));
        Tensor s = Softmax(h);
        return Mean(Mul(s, h));
      },
      {Leaf({p.rows, p.cols}, &rng), Leaf({1, p.cols}, &rng)});
}

TEST_P(GradSweepTest, MatMulChainGradient) {
  const SweepParam p = GetParam();
  Rng rng(p.seed + 100);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Mean(Square(MatMul(in[0], Transpose(in[1]))));
      },
      {Leaf({p.rows, p.cols}, &rng, 0.5f), Leaf({p.rows, p.cols}, &rng, 0.5f)});
}

TEST_P(GradSweepTest, ReductionCompositionGradient) {
  const SweepParam p = GetParam();
  Rng rng(p.seed + 200);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(MeanAxis(Tanh(in[0]), 1)));
      },
      {Leaf({p.rows, p.cols}, &rng)});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GradSweepTest,
    ::testing::Values(SweepParam{1, 1, 1}, SweepParam{1, 5, 2}, SweepParam{4, 1, 3},
                      SweepParam{2, 3, 4}, SweepParam{3, 4, 5}, SweepParam{5, 2, 6},
                      SweepParam{4, 4, 7}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "r" + std::to_string(info.param.rows) + "c" + std::to_string(info.param.cols) +
             "s" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace adaptraj
