// Property tests for the neighbor interaction layer (Eq. 3).

#include "models/interaction.h"

#include <cmath>

#include <gtest/gtest.h>

namespace adaptraj {
namespace models {
namespace {

data::Batch NeighborBatch(int batch, int neighbors, const data::SequenceConfig& cfg,
                          uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<data::TrajectorySequence> seqs(batch);
  std::vector<const data::TrajectorySequence*> ptrs;
  for (int i = 0; i < batch; ++i) {
    auto& s = seqs[i];
    float x = rng.Uniform(-1.0f, 1.0f);
    float y = rng.Uniform(-1.0f, 1.0f);
    for (int t = 0; t < cfg.total_len(); ++t) {
      s.focal.push_back({x + 0.2f * t, y});
    }
    for (int m = 0; m < neighbors; ++m) {
      std::vector<sim::Vec2> nbr;
      float nx = rng.Uniform(-2.0f, 2.0f);
      float ny = rng.Uniform(-2.0f, 2.0f);
      for (int t = 0; t < cfg.obs_len; ++t) nbr.push_back({nx + 0.1f * t, ny});
      s.neighbors.push_back(std::move(nbr));
    }
    ptrs.push_back(&s);
  }
  return data::MakeBatch(ptrs, cfg);
}

TEST(InteractionPoolingTest, OutputShape) {
  Rng rng(1);
  InteractionPooling pool(8, 16, 24, &rng);
  data::SequenceConfig cfg;
  data::Batch batch = NeighborBatch(3, 2, cfg);
  Tensor h = Tensor::Randn({3, 16}, &rng);
  Tensor p = pool.Pool(batch, h);
  EXPECT_EQ(p.shape(), (Shape{3, 24}));
}

TEST(InteractionPoolingTest, NoNeighborsYieldsConstantOutput) {
  // With all slots masked, the pooled pre-projection feature is exactly zero,
  // so the output equals the projection of zero regardless of focal state.
  Rng rng(2);
  InteractionPooling pool(8, 16, 16, &rng);
  data::SequenceConfig cfg;
  data::Batch batch = NeighborBatch(2, 0, cfg);
  Tensor h1 = Tensor::Randn({2, 16}, &rng);
  Tensor h2 = Tensor::Randn({2, 16}, &rng);
  Tensor p1 = pool.Pool(batch, h1);
  Tensor p2 = pool.Pool(batch, h2);
  for (int64_t i = 0; i < p1.size(); ++i) EXPECT_FLOAT_EQ(p1.flat(i), p2.flat(i));
}

TEST(InteractionPoolingTest, NeighborPermutationInvariance) {
  Rng rng(4);
  InteractionPooling pool(8, 16, 16, &rng);
  data::SequenceConfig cfg;

  // Build two batches whose single sequence has the same two neighbors in
  // swapped order.
  data::TrajectorySequence s;
  for (int t = 0; t < cfg.total_len(); ++t) s.focal.push_back({0.2f * t, 0.0f});
  std::vector<sim::Vec2> n1, n2;
  for (int t = 0; t < cfg.obs_len; ++t) {
    n1.push_back({0.2f * t, 1.0f});
    n2.push_back({0.1f * t, -2.0f});
  }
  data::TrajectorySequence fwd = s;
  fwd.neighbors = {n1, n2};
  data::TrajectorySequence rev = s;
  rev.neighbors = {n2, n1};

  Tensor h = Tensor::Randn({1, 16}, &rng);
  Tensor pf = pool.Pool(data::MakeBatch({&fwd}, cfg), h);
  Tensor pr = pool.Pool(data::MakeBatch({&rev}, cfg), h);
  for (int64_t i = 0; i < pf.size(); ++i) EXPECT_NEAR(pf.flat(i), pr.flat(i), 1e-4);
}

TEST(InteractionPoolingTest, PaddingSlotsDoNotAffectOutput) {
  // A sequence batched alone (M=1 real) vs batched next to a sequence with
  // more neighbors (M=3, two padded slots) must pool identically.
  Rng rng(5);
  InteractionPooling pool(8, 16, 16, &rng);
  data::SequenceConfig cfg;

  data::TrajectorySequence a;
  for (int t = 0; t < cfg.total_len(); ++t) a.focal.push_back({0.2f * t, 0.0f});
  std::vector<sim::Vec2> nbr;
  for (int t = 0; t < cfg.obs_len; ++t) nbr.push_back({0.15f * t, 1.0f});
  a.neighbors = {nbr};

  data::TrajectorySequence b;
  for (int t = 0; t < cfg.total_len(); ++t) b.focal.push_back({-0.2f * t, 3.0f});
  std::vector<sim::Vec2> n1 = nbr, n2 = nbr, n3 = nbr;
  for (auto& p : n2) p.y += 1.0f;
  for (auto& p : n3) p.y += 2.0f;
  b.neighbors = {n1, n2, n3};

  Tensor h_single = Tensor::Randn({1, 16}, &rng);
  Tensor p_single = pool.Pool(data::MakeBatch({&a}, cfg), h_single);

  // Batch a together with b: a gets two padding slots.
  Tensor h_pair = Tensor::Zeros({2, 16});
  for (int64_t i = 0; i < 16; ++i) h_pair.data()[i] = h_single.flat(i);
  Tensor p_pair = pool.Pool(data::MakeBatch({&a, &b}, cfg), h_pair);
  for (int64_t i = 0; i < 16; ++i) EXPECT_NEAR(p_single.flat(i), p_pair.flat(i), 1e-4);
}

TEST(InteractionPoolingTest, GradientsFlowToAllSubmodules) {
  Rng rng(6);
  InteractionPooling pool(8, 16, 16, &rng);
  data::SequenceConfig cfg;
  data::Batch batch = NeighborBatch(2, 2, cfg);
  Tensor h = Tensor::Randn({2, 16}, &rng, 1.0f, /*requires_grad=*/true);
  pool.ZeroGrad();
  ops::Sum(ops::Square(pool.Pool(batch, h))).Backward();
  int with_grad = 0;
  for (const Tensor& p : pool.Parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.size(); ++i) {
      if (g.flat(i) != 0.0f) {
        ++with_grad;
        break;
      }
    }
  }
  EXPECT_GT(with_grad, static_cast<int>(pool.Parameters().size() * 2 / 3));
}

class NeighborCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(NeighborCountSweep, PoolingFiniteForAnyNeighborCount) {
  Rng rng(7);
  InteractionPooling pool(8, 16, 16, &rng);
  data::SequenceConfig cfg;
  cfg.max_neighbors = 16;
  data::Batch batch = NeighborBatch(3, GetParam(), cfg);
  Tensor h = Tensor::Randn({3, 16}, &rng);
  Tensor p = pool.Pool(batch, h);
  for (int64_t i = 0; i < p.size(); ++i) EXPECT_TRUE(std::isfinite(p.flat(i)));
}

INSTANTIATE_TEST_SUITE_P(Counts, NeighborCountSweep, ::testing::Values(0, 1, 2, 5, 12));

}  // namespace
}  // namespace models
}  // namespace adaptraj
