// Tests for the three backbones behind the Sec. II-C interface:
// shapes, determinism, gradient flow, conditioning, and tiny-overfit.

#include "models/backbone.h"

#include <cmath>

#include <gtest/gtest.h>

#include "models/lbebm.h"
#include "models/pecnet.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace adaptraj {
namespace models {
namespace {

data::Batch TestBatch(int n, const data::SequenceConfig& cfg, float speed = 0.3f) {
  std::vector<data::TrajectorySequence> seqs(n);
  std::vector<const data::TrajectorySequence*> ptrs;
  for (int i = 0; i < n; ++i) {
    auto& s = seqs[i];
    s.domain_label = i % 2;
    const float lane = static_cast<float>(i);
    for (int t = 0; t < cfg.total_len(); ++t) {
      s.focal.push_back({speed * static_cast<float>(t) * (i % 2 ? 1.0f : -1.0f), lane});
    }
    if (i % 2 == 0) {  // half the sequences get one neighbor
      std::vector<sim::Vec2> nbr;
      for (int t = 0; t < cfg.obs_len; ++t) {
        nbr.push_back({speed * static_cast<float>(t), lane + 1.0f});
      }
      s.neighbors.push_back(nbr);
    }
    ptrs.push_back(&s);
  }
  return data::MakeBatch(ptrs, cfg);
}

class BackboneKindTest : public ::testing::TestWithParam<BackboneKind> {
 protected:
  static BackboneConfig SmallConfig(int64_t extra_dim = 0) {
    BackboneConfig c;
    c.embed_dim = 8;
    c.hidden_dim = 16;
    c.social_dim = 16;
    c.latent_dim = 4;
    c.extra_dim = extra_dim;
    c.langevin_steps = 3;
    return c;
  }
};

TEST_P(BackboneKindTest, EncodeShapes) {
  Rng rng(1);
  auto model = MakeBackbone(GetParam(), SmallConfig(), &rng);
  data::SequenceConfig cfg;
  data::Batch batch = TestBatch(3, cfg);
  EncodeResult enc = model->Encode(batch);
  EXPECT_EQ(enc.h_focal.shape(), (Shape{3, 16}));
  EXPECT_EQ(enc.pooled.shape(), (Shape{3, 16}));
}

TEST_P(BackboneKindTest, PredictShape) {
  Rng rng(2);
  auto model = MakeBackbone(GetParam(), SmallConfig(), &rng);
  data::SequenceConfig cfg;
  data::Batch batch = TestBatch(2, cfg);
  EncodeResult enc = model->Encode(batch);
  Tensor pred = model->Predict(batch, enc, Tensor(), &rng, /*sample=*/true);
  EXPECT_EQ(pred.shape(), (Shape{2, cfg.pred_len * 2}));
  for (int64_t i = 0; i < pred.size(); ++i) EXPECT_TRUE(std::isfinite(pred.flat(i)));
}

TEST_P(BackboneKindTest, DeterministicWithoutSampling) {
  Rng rng(3);
  auto model = MakeBackbone(GetParam(), SmallConfig(), &rng);
  data::SequenceConfig cfg;
  data::Batch batch = TestBatch(2, cfg);
  EncodeResult enc1 = model->Encode(batch);
  Rng r1(10);
  Tensor a = model->Predict(batch, enc1, Tensor(), &r1, /*sample=*/false);
  EncodeResult enc2 = model->Encode(batch);
  Rng r2(20);
  Tensor b = model->Predict(batch, enc2, Tensor(), &r2, /*sample=*/false);
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a.flat(i), b.flat(i));
}

TEST_P(BackboneKindTest, SamplingProducesDiverseFutures) {
  Rng rng(4);
  auto model = MakeBackbone(GetParam(), SmallConfig(), &rng);
  data::SequenceConfig cfg;
  data::Batch batch = TestBatch(2, cfg);
  EncodeResult enc = model->Encode(batch);
  Rng sampler(5);
  Tensor a = model->Predict(batch, enc, Tensor(), &sampler, /*sample=*/true);
  Tensor b = model->Predict(batch, enc, Tensor(), &sampler, /*sample=*/true);
  float diff = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) diff += std::fabs(a.flat(i) - b.flat(i));
  EXPECT_GT(diff, 1e-5f);
}

TEST_P(BackboneKindTest, LossIsFiniteScalarAndBackpropagates) {
  Rng rng(6);
  auto model = MakeBackbone(GetParam(), SmallConfig(), &rng);
  data::SequenceConfig cfg;
  data::Batch batch = TestBatch(4, cfg);
  model->ZeroGrad();
  EncodeResult enc = model->Encode(batch);
  Tensor loss = model->Loss(batch, enc, Tensor(), &rng);
  ASSERT_EQ(loss.size(), 1);
  EXPECT_TRUE(std::isfinite(loss.item()));
  loss.Backward();
  int64_t params_with_grad = 0;
  for (const Tensor& p : model->Parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.size(); ++i) {
      if (g.flat(i) != 0.0f) {
        ++params_with_grad;
        break;
      }
    }
  }
  // The vast majority of parameter tensors must receive gradient.
  EXPECT_GT(params_with_grad, static_cast<int64_t>(model->Parameters().size() * 6 / 10));
}

TEST_P(BackboneKindTest, ExtraConditioningChangesPrediction) {
  Rng rng(7);
  auto model = MakeBackbone(GetParam(), SmallConfig(/*extra_dim=*/6), &rng);
  data::SequenceConfig cfg;
  data::Batch batch = TestBatch(2, cfg);
  EncodeResult enc = model->Encode(batch);
  Rng r(1);
  Tensor zero_extra = Tensor::Zeros({2, 6});
  Tensor big_extra = Tensor::Full({2, 6}, 2.0f);
  Tensor a = model->Predict(batch, enc, zero_extra, &r, /*sample=*/false);
  Tensor b = model->Predict(batch, enc, big_extra, &r, /*sample=*/false);
  float diff = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) diff += std::fabs(a.flat(i) - b.flat(i));
  EXPECT_GT(diff, 1e-4f);
}

TEST_P(BackboneKindTest, NullExtraEqualsZeroExtra) {
  Rng rng(8);
  auto model = MakeBackbone(GetParam(), SmallConfig(/*extra_dim=*/4), &rng);
  data::SequenceConfig cfg;
  data::Batch batch = TestBatch(2, cfg);
  EncodeResult enc = model->Encode(batch);
  Rng r(1);
  Tensor a = model->Predict(batch, enc, Tensor(), &r, /*sample=*/false);
  Tensor b = model->Predict(batch, enc, Tensor::Zeros({2, 4}), &r, /*sample=*/false);
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a.flat(i), b.flat(i));
}

TEST_P(BackboneKindTest, TrainingReducesLoss) {
  Rng rng(9);
  auto model = MakeBackbone(GetParam(), SmallConfig(), &rng);
  data::SequenceConfig cfg;
  data::Batch batch = TestBatch(6, cfg);
  nn::Adam opt(5e-3f);
  opt.AddGroup(model->Parameters());

  auto eval_loss = [&]() {
    Rng fixed(42);
    EncodeResult enc = model->Encode(batch);
    return model->Loss(batch, enc, Tensor(), &fixed).item();
  };
  const float before = eval_loss();
  Rng train_rng(10);
  for (int it = 0; it < 60; ++it) {
    opt.ZeroGrad();
    EncodeResult enc = model->Encode(batch);
    Tensor loss = model->Loss(batch, enc, Tensor(), &train_rng);
    loss.Backward();
    nn::ClipGradNorm(model->Parameters(), 5.0f);
    opt.Step();
  }
  const float after = eval_loss();
  EXPECT_LT(after, before) << "training did not reduce loss";
  EXPECT_LT(after, before * 0.9f);
}

INSTANTIATE_TEST_SUITE_P(AllBackbones, BackboneKindTest,
                         ::testing::Values(BackboneKind::kSeq2Seq, BackboneKind::kPecnet,
                                           BackboneKind::kLbebm),
                         [](const ::testing::TestParamInfo<BackboneKind>& info) {
                           return BackboneKindName(info.param);
                         });

TEST(BackboneFactoryTest, KindNamesRoundTrip) {
  EXPECT_EQ(BackboneKindName(BackboneKind::kSeq2Seq), "Seq2Seq");
  EXPECT_EQ(BackboneKindName(BackboneKind::kPecnet), "PECNet");
  EXPECT_EQ(BackboneKindName(BackboneKind::kLbebm), "LBEBM");
  Rng rng(1);
  BackboneConfig cfg;
  for (auto kind : {BackboneKind::kSeq2Seq, BackboneKind::kPecnet, BackboneKind::kLbebm}) {
    auto model = MakeBackbone(kind, cfg, &rng);
    EXPECT_EQ(model->kind(), kind);
    EXPECT_GT(model->NumParams(), 0);
  }
}

TEST(PecnetTest, TrajectoryEndsExactlyAtPredictedEndpoint) {
  Rng rng(11);
  BackboneConfig cfg;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  cfg.social_dim = 16;
  cfg.latent_dim = 4;
  PecnetBackbone model(cfg, &rng);
  data::SequenceConfig scfg;
  data::Batch batch = TestBatch(3, scfg);
  EncodeResult enc = model.Encode(batch);
  Rng r(3);
  Tensor pred = model.Predict(batch, enc, Tensor(), &r, /*sample=*/true);
  // The displacements must sum to some endpoint; verify the hard-conditioning
  // identity: sum of steps == endpoint decoded from the same latent. We can't
  // see the internal endpoint, but the sum must be finite and the final step
  // must not be degenerate (all zeros across batch would indicate a bug).
  float sum_abs_last = 0.0f;
  for (int64_t b = 0; b < 3; ++b) {
    sum_abs_last += std::fabs(pred.flat(b * scfg.pred_len * 2 + (scfg.pred_len - 1) * 2));
  }
  EXPECT_GT(sum_abs_last, 1e-6f);
}

TEST(LbebmTest, EnergyIsFiniteScalarPerSample) {
  Rng rng(12);
  BackboneConfig cfg;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  cfg.social_dim = 16;
  cfg.latent_dim = 4;
  LbebmBackbone model(cfg, &rng);
  Tensor z = Tensor::Randn({3, 4}, &rng);
  Tensor ctx = Tensor::Randn({3, 32}, &rng);
  Tensor e = model.Energy(z, ctx);
  EXPECT_EQ(e.shape(), (Shape{3, 1}));
  for (int64_t i = 0; i < e.size(); ++i) EXPECT_TRUE(std::isfinite(e.flat(i)));
}

TEST(LbebmTest, LangevinSamplesAreFiniteAndVaried) {
  Rng rng(13);
  BackboneConfig cfg;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  cfg.social_dim = 16;
  cfg.latent_dim = 4;
  cfg.langevin_steps = 5;
  LbebmBackbone model(cfg, &rng);
  Tensor ctx = Tensor::Randn({4, 32}, &rng);
  Rng sampler(7);
  Tensor z1 = model.SampleLangevin(ctx, &sampler);
  Tensor z2 = model.SampleLangevin(ctx, &sampler);
  EXPECT_EQ(z1.shape(), (Shape{4, 4}));
  float diff = 0.0f;
  for (int64_t i = 0; i < z1.size(); ++i) {
    EXPECT_TRUE(std::isfinite(z1.flat(i)));
    diff += std::fabs(z1.flat(i) - z2.flat(i));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(LbebmTest, LangevinDoesNotLeakGradients) {
  Rng rng(14);
  BackboneConfig cfg;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  cfg.social_dim = 16;
  cfg.latent_dim = 4;
  LbebmBackbone model(cfg, &rng);
  model.ZeroGrad();
  Tensor ctx = Tensor::Randn({2, 32}, &rng);
  Rng sampler(8);
  (void)model.SampleLangevin(ctx, &sampler);
  for (const Tensor& p : model.Parameters()) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.size(); ++i) {
      ASSERT_EQ(g.flat(i), 0.0f) << "Langevin sampling leaked parameter gradients";
    }
  }
}

// Decoder dropout (BackboneConfig::dropout) is live in training mode and the
// exact identity in eval mode — the train/serve skew the Module mode exists
// to prevent.
TEST(Seq2SeqDropoutTest, ActiveInTrainModeIdentityInEval) {
  BackboneConfig plain_cfg;
  plain_cfg.embed_dim = 8;
  plain_cfg.hidden_dim = 16;
  plain_cfg.social_dim = 16;
  plain_cfg.latent_dim = 4;
  BackboneConfig drop_cfg = plain_cfg;
  drop_cfg.dropout = 0.5f;

  // Dropout has no parameters, so both models draw identical init streams.
  Rng r1(4);
  auto plain = MakeBackbone(BackboneKind::kSeq2Seq, plain_cfg, &r1);
  Rng r2(4);
  auto dropped = MakeBackbone(BackboneKind::kSeq2Seq, drop_cfg, &r2);

  data::SequenceConfig cfg;
  data::Batch batch = TestBatch(4, cfg);
  EncodeResult enc_plain = plain->Encode(batch);
  EncodeResult enc_drop = dropped->Encode(batch);

  // Training mode: the mask perturbs the rollout.
  dropped->train();
  Rng pr1(9);
  Tensor train_out = dropped->Predict(batch, enc_drop, Tensor(), &pr1, false);
  Rng pr2(9);
  Tensor plain_out = plain->Predict(batch, enc_plain, Tensor(), &pr2, false);
  float diff = 0.0f;
  for (int64_t i = 0; i < train_out.size(); ++i) {
    diff += std::fabs(train_out.flat(i) - plain_out.flat(i));
  }
  EXPECT_GT(diff, 1e-6f);

  // Eval mode: dropout is the identity and consumes no rng, so the
  // dropout-configured model predicts exactly like the plain one.
  dropped->eval();
  plain->eval();
  Rng pr3(9);
  Tensor eval_out = dropped->Predict(batch, enc_drop, Tensor(), &pr3, false);
  Rng pr4(9);
  Tensor plain_eval = plain->Predict(batch, enc_plain, Tensor(), &pr4, false);
  for (int64_t i = 0; i < eval_out.size(); ++i) {
    EXPECT_EQ(eval_out.flat(i), plain_eval.flat(i)) << "i=" << i;
  }
}

}  // namespace
}  // namespace models
}  // namespace adaptraj
