// Tests for the alternative interaction mechanisms (mean / max pooling) and
// the MaxAxis op that powers max pooling.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "models/backbone.h"
#include "models/interaction.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace adaptraj {
namespace models {
namespace {

using namespace ops;  // NOLINT(build/namespaces)

TEST(MaxAxisTest, ForwardValues) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 5, 3, -2, -7, -1});
  Tensor m = MaxAxis(a, 1);
  ASSERT_EQ(m.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(m.flat(0), 5.0f);
  EXPECT_FLOAT_EQ(m.flat(1), -1.0f);
}

TEST(MaxAxisTest, KeepdimShape) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(MaxAxis(a, 0, true).shape(), (Shape{1, 2}));
  EXPECT_EQ(MaxAxis(a, 0, false).shape(), (Shape{2}));
}

TEST(MaxAxisTest, MiddleAxis3d) {
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 8, 3, 4, 5, 6, 7, 2});
  Tensor m = MaxAxis(a, 1);
  ASSERT_EQ(m.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(m.flat(0), 3.0f);
  EXPECT_FLOAT_EQ(m.flat(1), 8.0f);
  EXPECT_FLOAT_EQ(m.flat(2), 7.0f);
  EXPECT_FLOAT_EQ(m.flat(3), 6.0f);
}

TEST(MaxAxisTest, GradientRoutesToArgmaxOnly) {
  Tensor a = Tensor::FromVector({1, 3}, {1.0f, 5.0f, 3.0f}, /*requires_grad=*/true);
  Sum(MaxAxis(a, 1)).Backward();
  Tensor g = a.grad();
  EXPECT_FLOAT_EQ(g.flat(0), 0.0f);
  EXPECT_FLOAT_EQ(g.flat(1), 1.0f);
  EXPECT_FLOAT_EQ(g.flat(2), 0.0f);
}

TEST(MaxAxisTest, GradCheck) {
  // Distinct values avoid argmax ties that break finite differences.
  Tensor a = Tensor::FromVector({2, 3}, {0.1f, 0.9f, 0.5f, -0.4f, 0.2f, 0.7f},
                                /*requires_grad=*/true);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) { return Sum(Square(MaxAxis(in[0], 1))); }, {a},
      /*epsilon=*/1e-3f);
  EXPECT_TRUE(report.ok) << report.max_abs_error;
}

TEST(InteractionKindTest, Names) {
  EXPECT_EQ(InteractionKindName(InteractionKind::kAttention), "attention");
  EXPECT_EQ(InteractionKindName(InteractionKind::kMeanPool), "mean-pool");
  EXPECT_EQ(InteractionKindName(InteractionKind::kMaxPool), "max-pool");
}

data::Batch KindBatch(int batch, int neighbors, const data::SequenceConfig& cfg) {
  Rng rng(3);
  std::vector<data::TrajectorySequence> seqs(batch);
  std::vector<const data::TrajectorySequence*> ptrs;
  for (int i = 0; i < batch; ++i) {
    auto& s = seqs[i];
    for (int t = 0; t < cfg.total_len(); ++t) {
      s.focal.push_back({0.2f * t, static_cast<float>(i)});
    }
    for (int m = 0; m < neighbors; ++m) {
      std::vector<sim::Vec2> nbr;
      for (int t = 0; t < cfg.obs_len; ++t) {
        nbr.push_back({0.1f * t + 0.3f * m, static_cast<float>(i) + 1.0f});
      }
      s.neighbors.push_back(std::move(nbr));
    }
    ptrs.push_back(&s);
  }
  return data::MakeBatch(ptrs, cfg);
}

class KindSweep : public ::testing::TestWithParam<InteractionKind> {};

TEST_P(KindSweep, OutputShapeAndFinite) {
  Rng rng(1);
  InteractionPooling pool(8, 16, 16, &rng, GetParam());
  data::SequenceConfig cfg;
  data::Batch batch = KindBatch(3, 2, cfg);
  Tensor h = Tensor::Randn({3, 16}, &rng);
  Tensor p = pool.Pool(batch, h);
  ASSERT_EQ(p.shape(), (Shape{3, 16}));
  for (int64_t i = 0; i < p.size(); ++i) EXPECT_TRUE(std::isfinite(p.flat(i)));
}

TEST_P(KindSweep, NoNeighborsGivesZeroPreProjection) {
  // All kinds must degrade to the projection of the zero vector when the
  // scene has no neighbors, regardless of the focal state.
  Rng rng(2);
  InteractionPooling pool(8, 16, 16, &rng, GetParam());
  data::SequenceConfig cfg;
  data::Batch batch = KindBatch(2, 0, cfg);
  Tensor p1 = pool.Pool(batch, Tensor::Randn({2, 16}, &rng));
  Tensor p2 = pool.Pool(batch, Tensor::Randn({2, 16}, &rng));
  for (int64_t i = 0; i < p1.size(); ++i) EXPECT_FLOAT_EQ(p1.flat(i), p2.flat(i));
}

TEST_P(KindSweep, GradientsFlowThroughNeighborEncoder) {
  Rng rng(4);
  InteractionPooling pool(8, 16, 16, &rng, GetParam());
  data::SequenceConfig cfg;
  data::Batch batch = KindBatch(2, 3, cfg);
  pool.ZeroGrad();
  Tensor h = Tensor::Randn({2, 16}, &rng);
  Sum(Square(pool.Pool(batch, h))).Backward();
  bool any = false;
  for (const auto& [name, p] : pool.NamedParameters()) {
    if (name.rfind("encoder", 0) == 0) {
      Tensor g = p.grad();
      for (int64_t i = 0; i < g.size(); ++i) any = any || g.flat(i) != 0.0f;
    }
  }
  EXPECT_TRUE(any);
}

TEST_P(KindSweep, PermutationInvariance) {
  Rng rng(5);
  InteractionPooling pool(8, 16, 16, &rng, GetParam());
  data::SequenceConfig cfg;
  data::TrajectorySequence s;
  for (int t = 0; t < cfg.total_len(); ++t) s.focal.push_back({0.2f * t, 0.0f});
  std::vector<sim::Vec2> n1, n2, n3;
  for (int t = 0; t < cfg.obs_len; ++t) {
    n1.push_back({0.2f * t, 1.0f});
    n2.push_back({0.1f * t, -2.0f});
    n3.push_back({-0.1f * t, 0.5f});
  }
  data::TrajectorySequence fwd = s;
  fwd.neighbors = {n1, n2, n3};
  data::TrajectorySequence rev = s;
  rev.neighbors = {n3, n1, n2};
  Tensor h = Tensor::Randn({1, 16}, &rng);
  Tensor pf = pool.Pool(data::MakeBatch({&fwd}, cfg), h);
  Tensor pr = pool.Pool(data::MakeBatch({&rev}, cfg), h);
  for (int64_t i = 0; i < pf.size(); ++i) EXPECT_NEAR(pf.flat(i), pr.flat(i), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, KindSweep,
                         ::testing::Values(InteractionKind::kAttention,
                                           InteractionKind::kMeanPool,
                                           InteractionKind::kMaxPool),
                         [](const ::testing::TestParamInfo<InteractionKind>& info) {
                           std::string n = InteractionKindName(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
                           return n;
                         });

TEST(BackboneInteractionTest, ConfigSelectsMechanism) {
  Rng rng(6);
  BackboneConfig cfg;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  cfg.social_dim = 16;
  cfg.latent_dim = 4;
  cfg.interaction = InteractionKind::kMaxPool;
  auto model = MakeBackbone(BackboneKind::kPecnet, cfg, &rng);
  data::SequenceConfig scfg;
  data::Batch batch = KindBatch(2, 2, scfg);
  auto enc = model->Encode(batch);
  EXPECT_EQ(enc.pooled.shape(), (Shape{2, 16}));
  Rng r(1);
  Tensor pred = model->Predict(batch, enc, Tensor(), &r, false);
  for (int64_t i = 0; i < pred.size(); ++i) EXPECT_TRUE(std::isfinite(pred.flat(i)));
}

}  // namespace
}  // namespace models
}  // namespace adaptraj
