// Property tests for the domain-specific passing-side convention: the
// neighbor-driven behaviour that differs across domains (the signal Counter
// discards and AdapTraj's specific extractors must capture).

#include <cmath>

#include <gtest/gtest.h>

#include "sim/social_force.h"

namespace adaptraj {
namespace sim {
namespace {

// Signed swirl statistic: correlation between travel direction (sign of vx)
// and lateral drift (sign of dy) over a bidirectional-x scene. A clockwise
// evasion convention (positive bias) deflects +x movers toward +y and -x
// movers toward -y, so the statistic's sign follows the convention.
float SwirlStatistic(float bias, uint64_t seed) {
  DomainSpec spec = EthUcySpec();
  spec.passing_side_bias = bias;
  spec.noise_std_x = 0.0f;  // isolate the interaction effect
  spec.noise_std_y = 0.0f;
  spec.group_prob = 0.0f;
  spec.cross_flow_prob = 0.0f;
  spec.flow_angle_jitter = 0.05f;
  spec.mean_agents = 14.0f;  // dense enough for frequent encounters
  spec.std_agents = 2.0f;
  SocialForceSimulator sim(spec, seed);
  Scene scene = sim.Run(50);
  double swirl = 0.0;
  int64_t n = 0;
  for (const auto& track : scene.tracks) {
    if (track.points.size() < 2) continue;
    for (size_t t = 1; t < track.points.size(); ++t) {
      const float vx = track.points[t].x - track.points[t - 1].x;
      const float dy = track.points[t].y - track.points[t - 1].y;
      swirl += (vx > 0.0f ? 1.0 : -1.0) * dy;
      ++n;
    }
  }
  return n > 0 ? static_cast<float>(swirl / n) : 0.0f;
}

TEST(PassingBiasTest, BiasSignControlsSwirlDirection) {
  // Averaged over seeds, the convention must produce direction-correlated
  // lateral drift whose sign follows the bias sign.
  float pos = 0.0f;
  float neg = 0.0f;
  for (uint64_t seed = 11; seed < 16; ++seed) {
    pos += SwirlStatistic(0.6f, seed);
    neg += SwirlStatistic(-0.6f, seed);
  }
  EXPECT_GT(pos, neg);
  EXPECT_GT(pos, 0.0f);
  EXPECT_LT(neg, 0.0f);
}

TEST(PassingBiasTest, OppositeConventionsProduceDifferentTrajectories) {
  DomainSpec right = EthUcySpec();
  right.passing_side_bias = 0.6f;
  right.noise_std_x = 0.0f;
  right.noise_std_y = 0.0f;
  DomainSpec left = right;
  left.passing_side_bias = -0.6f;
  Scene scene_r = SocialForceSimulator(right, 21).Run(40);
  Scene scene_l = SocialForceSimulator(left, 21).Run(40);
  // Same seed, same spawns: only the convention differs. The dynamics (and
  // possibly the spawn/retire schedule) must diverge once agents interact.
  const size_t common = std::min(scene_r.tracks.size(), scene_l.tracks.size());
  ASSERT_GT(common, 0u);
  double total_diff = 0.0;
  for (size_t i = 0; i < common; ++i) {
    const auto& a = scene_r.tracks[i].points;
    const auto& b = scene_l.tracks[i].points;
    const size_t len = std::min(a.size(), b.size());
    for (size_t t = 0; t < len; ++t) total_diff += (a[t] - b[t]).Norm();
  }
  EXPECT_GT(total_diff, 1.0);
}

TEST(PassingBiasTest, ZeroBiasAblationIsSupported) {
  DomainSpec spec = SddSpec();
  spec.passing_side_bias = 0.0f;
  SocialForceSimulator sim(spec, 31);
  Scene scene = sim.Run(30);
  EXPECT_FALSE(scene.tracks.empty());
}

TEST(PassingBiasTest, DomainsDisagreeOnConvention) {
  // At least two presets must use opposite conventions so that the pooled
  // multi-source corpus contains conflicting neighbor-driven signals.
  float min_bias = 1e9f;
  float max_bias = -1e9f;
  for (Domain d : AllDomains()) {
    const float b = SpecForDomain(d).passing_side_bias;
    min_bias = std::min(min_bias, b);
    max_bias = std::max(max_bias, b);
  }
  EXPECT_LT(min_bias, 0.0f);
  EXPECT_GT(max_bias, 0.0f);
}

}  // namespace
}  // namespace sim
}  // namespace adaptraj
