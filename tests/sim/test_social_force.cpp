// Tests for the social-force simulator: determinism, physical plausibility,
// domain presets, and the Table-I-style distribution shifts between domains.

#include "sim/social_force.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace adaptraj {
namespace sim {
namespace {

TEST(Vec2Test, Arithmetic) {
  Vec2 a{1.0f, 2.0f};
  Vec2 b{3.0f, -1.0f};
  EXPECT_FLOAT_EQ((a + b).x, 4.0f);
  EXPECT_FLOAT_EQ((a - b).y, 3.0f);
  EXPECT_FLOAT_EQ((a * 2.0f).y, 4.0f);
  EXPECT_FLOAT_EQ(a.Dot(b), 1.0f);
  EXPECT_FLOAT_EQ(Vec2(3.0f, 4.0f).Norm(), 5.0f);
}

TEST(Vec2Test, NormalizedHandlesZero) {
  Vec2 z{0.0f, 0.0f};
  EXPECT_FLOAT_EQ(z.Normalized().Norm(), 0.0f);
  EXPECT_NEAR(Vec2(0.0f, 2.0f).Normalized().y, 1.0f, 1e-6);
}

TEST(Vec2Test, RotationQuarterTurn) {
  Vec2 x{1.0f, 0.0f};
  Vec2 r = x.Rotated(static_cast<float>(M_PI / 2.0));
  EXPECT_NEAR(r.x, 0.0f, 1e-6);
  EXPECT_NEAR(r.y, 1.0f, 1e-6);
}

TEST(DomainSpecTest, AllDomainsHavePresets) {
  for (Domain d : AllDomains()) {
    DomainSpec spec = SpecForDomain(d);
    EXPECT_EQ(spec.domain, d);
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GT(spec.mean_agents, 0.0f);
    EXPECT_GT(spec.desired_speed_mean, 0.0f);
    EXPECT_GT(spec.world_width, 0.0f);
  }
}

TEST(DomainSpecTest, NamesMatchPaper) {
  EXPECT_EQ(DomainName(Domain::kEthUcy), "ETH&UCY");
  EXPECT_EQ(DomainName(Domain::kLcas), "L-CAS");
  EXPECT_EQ(DomainName(Domain::kSyi), "SYI");
  EXPECT_EQ(DomainName(Domain::kSdd), "SDD");
}

TEST(DomainSpecTest, PassingSideConventionsDiffer) {
  // The domain-specific neighbor behaviour must differ across domains;
  // ETH&UCY and L-CAS use opposite conventions by design.
  EXPECT_GT(EthUcySpec().passing_side_bias, 0.0f);
  EXPECT_LT(LcasSpec().passing_side_bias, 0.0f);
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  DomainSpec spec = EthUcySpec();
  SocialForceSimulator sim_a(spec, 7);
  SocialForceSimulator sim_b(spec, 7);
  Scene a = sim_a.Run(30);
  Scene b = sim_b.Run(30);
  ASSERT_EQ(a.tracks.size(), b.tracks.size());
  for (size_t i = 0; i < a.tracks.size(); ++i) {
    ASSERT_EQ(a.tracks[i].points.size(), b.tracks[i].points.size());
    for (size_t t = 0; t < a.tracks[i].points.size(); ++t) {
      EXPECT_FLOAT_EQ(a.tracks[i].points[t].x, b.tracks[i].points[t].x);
      EXPECT_FLOAT_EQ(a.tracks[i].points[t].y, b.tracks[i].points[t].y);
    }
  }
}

TEST(SimulatorTest, DifferentSeedsDiffer) {
  DomainSpec spec = EthUcySpec();
  Scene a = SocialForceSimulator(spec, 1).Run(20);
  Scene b = SocialForceSimulator(spec, 2).Run(20);
  bool identical = a.tracks.size() == b.tracks.size();
  if (identical && !a.tracks.empty() && !a.tracks[0].points.empty() &&
      !b.tracks[0].points.empty()) {
    identical = a.tracks[0].points[0].x == b.tracks[0].points[0].x;
  }
  EXPECT_FALSE(identical && a.tracks.size() == b.tracks.size() &&
               a.tracks[0].points.size() == b.tracks[0].points.size());
}

TEST(SimulatorTest, TracksAreContiguousAndNonEmpty) {
  Scene scene = SocialForceSimulator(SddSpec(), 3).Run(50);
  ASSERT_FALSE(scene.tracks.empty());
  for (const AgentTrack& t : scene.tracks) {
    EXPECT_GE(t.start_step, 0);
    EXPECT_FALSE(t.points.empty());
    EXPECT_LE(t.start_step + static_cast<int>(t.points.size()), 50);
  }
}

TEST(SimulatorTest, AllPositionsFinite) {
  for (Domain d : AllDomains()) {
    Scene scene = SocialForceSimulator(SpecForDomain(d), 11).Run(40);
    for (const AgentTrack& t : scene.tracks) {
      for (const Vec2& p : t.points) {
        EXPECT_TRUE(std::isfinite(p.x)) << DomainName(d);
        EXPECT_TRUE(std::isfinite(p.y)) << DomainName(d);
      }
    }
  }
}

TEST(SimulatorTest, SpeedsRespectDomainCap) {
  // No agent may exceed 2.2x its desired speed; check against a generous
  // global bound derived from the spec.
  DomainSpec spec = SyiSpec();
  Scene scene = SocialForceSimulator(spec, 13).Run(40);
  const float bound =
      2.2f * (spec.desired_speed_mean + 4.0f * spec.desired_speed_std) + 0.5f;
  for (const AgentTrack& t : scene.tracks) {
    for (size_t i = 1; i < t.points.size(); ++i) {
      EXPECT_LE((t.points[i] - t.points[i - 1]).Norm(), bound);
    }
  }
}

TEST(SimulatorTest, CollisionAvoidanceKeepsSeparation) {
  // Property: hard overlaps (closer than half a body radius) must be rare
  // even in the densest domain.
  DomainSpec spec = SyiSpec();
  Scene scene = SocialForceSimulator(spec, 17).Run(40);
  int64_t pairs = 0;
  int64_t overlaps = 0;
  for (int step = 0; step < scene.num_steps; ++step) {
    std::vector<Vec2> present;
    for (const AgentTrack& t : scene.tracks) {
      const int rel = step - t.start_step;
      if (rel >= 0 && rel < static_cast<int>(t.points.size())) {
        present.push_back(t.points[rel]);
      }
    }
    for (size_t i = 0; i < present.size(); ++i) {
      for (size_t j = i + 1; j < present.size(); ++j) {
        ++pairs;
        if ((present[i] - present[j]).Norm() < 0.5f * spec.agent_radius) ++overlaps;
      }
    }
  }
  ASSERT_GT(pairs, 0);
  EXPECT_LT(static_cast<double>(overlaps) / static_cast<double>(pairs), 0.01);
}

TEST(SimulatorTest, ActiveAgentCountTracksSpecDensity) {
  // SYI must be far denser than L-CAS.
  auto avg_active = [](const Scene& s) {
    double total = 0.0;
    for (int step = 10; step < s.num_steps; ++step) total += s.ActiveAgentsAt(step);
    return total / std::max(1, s.num_steps - 10);
  };
  double syi = 0.0;
  double lcas = 0.0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    syi += avg_active(SocialForceSimulator(SyiSpec(), 100 + seed).Run(50));
    lcas += avg_active(SocialForceSimulator(LcasSpec(), 200 + seed).Run(50));
  }
  EXPECT_GT(syi, 2.0 * lcas);
}

TEST(SimulatorTest, GroupPartnersStayTogether) {
  DomainSpec spec = EthUcySpec();
  spec.group_prob = 1.0f;  // force pairs
  Scene scene = SocialForceSimulator(spec, 23).Run(40);
  // Find a pair sharing a group id and check mean separation is small.
  for (size_t i = 0; i < scene.tracks.size(); ++i) {
    for (size_t j = i + 1; j < scene.tracks.size(); ++j) {
      const auto& a = scene.tracks[i];
      const auto& b = scene.tracks[j];
      if (a.group_id < 0 || a.group_id != b.group_id) continue;
      const int start = std::max(a.start_step, b.start_step);
      const int end = std::min(a.start_step + static_cast<int>(a.points.size()),
                               b.start_step + static_cast<int>(b.points.size()));
      if (end - start < 10) continue;
      double mean_sep = 0.0;
      for (int s = start; s < end; ++s) {
        mean_sep += (a.points[s - a.start_step] - b.points[s - b.start_step]).Norm();
      }
      mean_sep /= (end - start);
      EXPECT_LT(mean_sep, 3.0);
      return;  // one verified pair suffices
    }
  }
  GTEST_SKIP() << "no co-present group pair found";
}

TEST(SimulatorTest, GenerateScenesProducesRequestedCount) {
  auto scenes = GenerateScenes(EthUcySpec(), 4, 30, 5);
  ASSERT_EQ(scenes.size(), 4u);
  for (const Scene& s : scenes) EXPECT_EQ(s.num_steps, 30);
}

// ---- Table-I distribution-shift properties ----------------------------------

class DomainStatsTest : public ::testing::Test {
 protected:
  static data::DomainStats Stats(Domain d) {
    auto scenes = GenerateScenes(SpecForDomain(d), 6, 60, 31337);
    return data::ComputeDomainStats(scenes, data::SequenceConfig{}, d);
  }
};

TEST_F(DomainStatsTest, SyiIsFastestOnYAxis) {
  auto syi = Stats(Domain::kSyi);
  auto eth = Stats(Domain::kEthUcy);
  auto lcas = Stats(Domain::kLcas);
  // Paper Table I: SYI v(y) = 1.087 vs L-CAS 0.041 (~26x) and ETH&UCY 0.090.
  EXPECT_GT(syi.avg_vy, 5.0f * eth.avg_vy);
  EXPECT_GT(syi.avg_vy, 10.0f * lcas.avg_vy);
}

TEST_F(DomainStatsTest, LcasIsSlowest) {
  auto lcas = Stats(Domain::kLcas);
  auto eth = Stats(Domain::kEthUcy);
  auto sdd = Stats(Domain::kSdd);
  EXPECT_LT(lcas.avg_vx, eth.avg_vx);
  EXPECT_LT(lcas.avg_vx, sdd.avg_vx);
}

TEST_F(DomainStatsTest, EthUcyFlowsAlongX) {
  auto eth = Stats(Domain::kEthUcy);
  EXPECT_GT(eth.avg_vx, 2.0f * eth.avg_vy);
}

TEST_F(DomainStatsTest, SyiAccelerationDominatesOnY) {
  auto syi = Stats(Domain::kSyi);
  auto eth = Stats(Domain::kEthUcy);
  // Paper: SYI a(y) = 0.339 vs ETH&UCY 0.027 (~12x). Demand a clear gap.
  EXPECT_GT(syi.avg_ay, 4.0f * eth.avg_ay);
}

TEST_F(DomainStatsTest, StatsWithinCalibrationBands) {
  // Loose +-60% bands around the paper's Table I values; bench_table1 prints
  // the exact paper-vs-measured comparison.
  struct Target {
    Domain d;
    float num, vx, vy, ax, ay;
  };
  const Target targets[] = {
      {Domain::kEthUcy, 9.09f, 0.279f, 0.090f, 0.027f, 0.027f},
      {Domain::kLcas, 7.88f, 0.104f, 0.041f, 0.044f, 0.044f},
      {Domain::kSyi, 35.17f, 0.306f, 1.087f, 0.082f, 0.339f},
      {Domain::kSdd, 17.82f, 0.295f, 0.187f, 0.057f, 0.064f},
  };
  for (const Target& t : targets) {
    auto s = Stats(t.d);
    const float lo = 0.4f;
    const float hi = 1.6f;
    EXPECT_GT(s.avg_num, lo * t.num) << DomainName(t.d);
    EXPECT_LT(s.avg_num, hi * t.num) << DomainName(t.d);
    EXPECT_GT(s.avg_vx, lo * t.vx) << DomainName(t.d);
    EXPECT_LT(s.avg_vx, hi * t.vx) << DomainName(t.d);
    EXPECT_GT(s.avg_vy, lo * t.vy) << DomainName(t.d);
    EXPECT_LT(s.avg_vy, hi * t.vy) << DomainName(t.d);
    EXPECT_GT(s.avg_ax, lo * t.ax) << DomainName(t.d);
    EXPECT_LT(s.avg_ax, hi * t.ax) << DomainName(t.d);
    EXPECT_GT(s.avg_ay, lo * t.ay) << DomainName(t.d);
    EXPECT_LT(s.avg_ay, hi * t.ay) << DomainName(t.d);
  }
}

}  // namespace
}  // namespace sim
}  // namespace adaptraj
