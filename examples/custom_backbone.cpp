// Plug-and-play demo: wire YOUR OWN backbone into the AdapTraj framework.
//
// AdapTraj is a plug-and-play module (paper Sec. III-A): any model exposing
// the Sec. II-C interface (Encode -> {h_focal, P_i}, Predict, Loss) can be
// wrapped. This example implements a deliberately simple MLP backbone from
// scratch and trains it with the full three-step procedure.
//
//   $ ./build/examples/custom_backbone

#include <cstdio>

#include "core/adaptraj_method.h"
#include "eval/metrics.h"
#include "nn/losses.h"

using namespace adaptraj;  // NOLINT(build/namespaces): example code

namespace {

/// A minimal custom backbone: MLP encoder over the flattened observation,
/// mean-pooled neighbor offsets as the interaction tensor, MLP decoder.
class MlpBackbone : public models::Backbone {
 public:
  MlpBackbone(const models::BackboneConfig& config, Rng* rng)
      : Backbone(config),
        encoder_({config.obs_len * 2, config.hidden_dim, config.hidden_dim}, rng,
                 nn::Activation::kRelu, nn::Activation::kRelu),
        neighbor_({2, config.social_dim}, rng, nn::Activation::kRelu,
                  nn::Activation::kRelu),
        decoder_({config.hidden_dim + config.social_dim + config.latent_dim +
                      config.extra_dim,
                  config.hidden_dim, config.pred_len * 2},
                 rng, nn::Activation::kRelu, nn::Activation::kNone) {
    RegisterModule("encoder", &encoder_);
    RegisterModule("neighbor", &neighbor_);
    RegisterModule("decoder", &decoder_);
  }

  models::EncodeResult Encode(const data::Batch& batch) const override {
    models::EncodeResult enc;
    enc.h_focal = encoder_.Forward(batch.obs_flat);
    // Interaction tensor: masked mean of embedded neighbor offsets.
    const int64_t b = batch.batch_size;
    const int64_t m = batch.max_neighbors;
    Tensor emb = ops::Reshape(neighbor_.Forward(batch.nbr_offsets),
                              {b, m, config_.social_dim});
    Tensor mask3 = ops::Reshape(batch.nbr_mask, {b, m, 1});
    enc.pooled = ops::MeanAxis(ops::BroadcastMul(emb, mask3), 1);
    return enc;
  }

  Tensor Predict(const data::Batch& batch, const models::EncodeResult& enc,
                 const Tensor& extra, Rng* rng, bool sample) const override {
    Tensor z = sample ? Tensor::Randn({batch.batch_size, config_.latent_dim}, rng)
                      : Tensor::Zeros({batch.batch_size, config_.latent_dim});
    Tensor in = ops::Concat({enc.h_focal, enc.pooled, z}, 1);
    return decoder_.Forward(WithExtra(in, extra));
  }

  Tensor Loss(const data::Batch& batch, const models::EncodeResult& enc,
              const Tensor& extra, Rng* rng) const override {
    return nn::MseLoss(Predict(batch, enc, extra, rng, true), batch.fut_flat);
  }

  models::BackboneKind kind() const override { return models::BackboneKind::kSeq2Seq; }

 private:
  nn::Mlp encoder_;
  nn::Mlp neighbor_;
  nn::Mlp decoder_;
};

}  // namespace

// AdapTrajMethod builds its backbone through MakeBackbone; for a custom
// class we replicate its training loop using AdapTrajModel directly? No -
// the framework is generic: we demonstrate with a thin local Method wrapper.
int main() {
  std::printf("Custom backbone + AdapTraj plug-and-play\n");
  std::printf("========================================\n\n");

  data::CorpusConfig corpus;
  corpus.num_scenes = 3;
  corpus.steps_per_scene = 60;
  auto dgd = data::BuildDomainGeneralizationData(
      {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, corpus);

  // Vanilla custom backbone (no AdapTraj conditioning).
  models::BackboneConfig cfg;
  cfg.hidden_dim = 32;
  cfg.social_dim = 16;
  Rng rng(3);
  MlpBackbone vanilla(cfg, &rng);
  std::printf("Custom MLP backbone: %lld parameters\n",
              static_cast<long long>(vanilla.NumParams()));

  // Train vanilla quickly on pooled sources.
  nn::Adam opt(1e-3f);
  opt.AddGroup(vanilla.Parameters());
  data::SequenceConfig seq_cfg;
  data::BatchLoader loader(&dgd.pooled_train, 32, seq_cfg, 17, /*shuffle=*/true);
  Rng train_rng(5);
  for (int epoch = 0; epoch < 8; ++epoch) {
    loader.Reset();
    data::Batch batch;
    int n = 0;
    while (loader.Next(&batch) && n++ < 8) {
      opt.ZeroGrad();
      auto enc = vanilla.Encode(batch);
      Tensor loss = vanilla.Loss(batch, enc, Tensor(), &train_rng);
      loss.Backward();
      opt.Step();
    }
  }

  // Evaluate the untrained-vs-trained custom backbone on the unseen domain.
  struct Wrapper : core::Method {
    const MlpBackbone* model;
    std::string name() const override { return "custom"; }
    void Train(const data::DomainGeneralizationData&, const core::TrainConfig&) override {}
    Tensor Predict(const data::Batch& b, Rng* r, bool sample) const override {
      auto enc = model->Encode(b);
      return model->Predict(b, enc, Tensor(), r, sample);
    }
  };
  Wrapper wrapper;
  wrapper.model = &vanilla;
  auto m = eval::EvaluateMinOfK(wrapper, dgd.target.test, seq_cfg, 20, 64, 1);
  std::printf("Custom backbone alone on unseen SDD: ADE %.3f  FDE %.3f\n\n", m.ade, m.fde);

  std::printf("The same interface powers the built-in backbones, so the full\n");
  std::printf("AdapTraj pipeline applies unchanged, e.g. with the Seq2Seq backbone:\n");
  core::AdapTrajConfig acfg;
  models::BackboneConfig bb;
  bb.hidden_dim = 32;
  core::AdapTrajMethod adaptraj(models::BackboneKind::kSeq2Seq, bb, acfg, 7);
  core::TrainConfig train;
  train.epochs = 9;
  train.max_batches_per_epoch = 8;
  adaptraj.Train(dgd, train);
  auto ma = eval::EvaluateMinOfK(adaptraj, dgd.target.test, seq_cfg, 20, 64, 1);
  std::printf("Seq2Seq-AdapTraj on unseen SDD:      ADE %.3f  FDE %.3f\n", ma.ade, ma.fde);
  return 0;
}
