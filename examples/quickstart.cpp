// Quickstart: train AdapTraj on two source domains and predict trajectories
// in an unseen target domain.
//
//   $ ./build/examples/quickstart
//
// Walks through the full pipeline: simulate domains -> build datasets ->
// train PECNet-AdapTraj -> evaluate best-of-20 ADE/FDE on the unseen domain
// -> print one predicted trajectory.

#include <cstdio>

#include "core/adaptraj_method.h"
#include "eval/metrics.h"
#include "eval/table.h"

using namespace adaptraj;  // NOLINT(build/namespaces): example code

int main() {
  std::printf("AdapTraj quickstart\n===================\n\n");

  // 1. Simulate two source domains and one unseen target domain.
  data::CorpusConfig corpus;
  corpus.num_scenes = 4;
  corpus.steps_per_scene = 60;
  corpus.seed = 42;
  std::printf("Simulating ETH&UCY + L-CAS (sources) and SDD (unseen target)...\n");
  auto dgd = data::BuildDomainGeneralizationData(
      {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, corpus);
  std::printf("  %zu pooled training sequences, %zu target test sequences\n\n",
              dgd.pooled_train.size(), dgd.target.test.size());

  // 2. Build the AdapTraj-wrapped PECNet backbone.
  models::BackboneConfig backbone;
  backbone.hidden_dim = 32;
  backbone.social_dim = 32;
  core::AdapTrajConfig adaptraj;  // paper defaults: alpha/beta/gamma
  core::AdapTrajMethod method(models::BackboneKind::kPecnet, backbone, adaptraj,
                              /*init_seed=*/7);

  // 3. Train with the three-step procedure of Alg. 1.
  core::TrainConfig train;
  train.epochs = 12;
  train.batch_size = 32;
  train.max_batches_per_epoch = 8;
  std::printf("Training PECNet-AdapTraj (%d epochs, Alg. 1 schedule)...\n",
              train.epochs);
  method.Train(dgd, train);

  // 4. Evaluate best-of-20 ADE/FDE on the unseen target domain.
  data::SequenceConfig seq_cfg;
  eval::Metrics m =
      eval::EvaluateMinOfK(method, dgd.target.test, seq_cfg, /*k_samples=*/20,
                           /*batch_size=*/64, /*seed=*/123);
  std::printf("Unseen-domain (SDD) best-of-20:  ADE %.3f   FDE %.3f\n\n", m.ade, m.fde);

  // 5. Predict one multi-modal future and print it.
  std::vector<const data::TrajectorySequence*> one = {&dgd.target.test.sequences[0]};
  data::Batch batch = data::MakeBatch(one, seq_cfg);
  Rng rng(9);
  Tensor pred = method.Predict(batch, &rng, /*sample=*/true);
  std::printf("Sampled future displacements for one agent (dx, dy per 0.4 s):\n");
  for (int t = 0; t < seq_cfg.pred_len; ++t) {
    std::printf("  t+%-2d  (%+.3f, %+.3f)\n", t + 1, pred.flat(t * 2), pred.flat(t * 2 + 1));
  }
  std::printf("\nDone. See examples/domain_shift_demo.cpp for the full comparison.\n");
  return 0;
}
