// Crowd simulation demo: generates all four trajectory domains, prints their
// Table-I-style statistics, and renders one scene as ASCII art.
//
//   $ ./build/examples/crowd_simulation

#include <cstdio>
#include <future>
#include <vector>

#include "core/baselines.h"
#include "data/dataset.h"
#include "data/multi_domain.h"
#include "eval/table.h"
#include "serve/inference_engine.h"
#include "sim/social_force.h"

using namespace adaptraj;  // NOLINT(build/namespaces): example code

namespace {

// Renders agent positions of a scene's mid-point step on a character grid.
void RenderScene(const sim::Scene& scene, const sim::DomainSpec& spec) {
  constexpr int kCols = 60;
  constexpr int kRows = 18;
  std::vector<std::string> grid(kRows, std::string(kCols, '.'));
  const int step = scene.num_steps / 2;
  int agents = 0;
  for (const auto& track : scene.tracks) {
    const int rel = step - track.start_step;
    if (rel < 0 || rel >= static_cast<int>(track.points.size())) continue;
    const auto& p = track.points[rel];
    const int c = static_cast<int>(p.x / spec.world_width * (kCols - 1));
    const int r = static_cast<int>(p.y / spec.world_height * (kRows - 1));
    if (c >= 0 && c < kCols && r >= 0 && r < kRows) {
      grid[kRows - 1 - r][c] = track.group_id >= 0 ? 'o' : '*';
      ++agents;
    }
  }
  std::printf("  %s at step %d (%d agents; '*' solo, 'o' grouped)\n", spec.name.c_str(),
              step, agents);
  for (const auto& row : grid) std::printf("  |%s|\n", row.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Social-force crowd simulator: the four paper domains\n");
  std::printf("====================================================\n\n");

  eval::TablePrinter table({"Domain", "seqs", "num", "v(x)", "v(y)", "a(x)", "a(y)"},
                           {8, 6, 6, 6, 6, 6, 6});
  table.PrintHeader();
  data::SequenceConfig seq_cfg;
  for (sim::Domain d : sim::AllDomains()) {
    auto spec = sim::SpecForDomain(d);
    auto scenes = sim::GenerateScenes(spec, 4, 60, 2024);
    auto stats = data::ComputeDomainStats(scenes, seq_cfg, d);
    table.PrintRow({spec.name, std::to_string(stats.num_sequences),
                    eval::FormatFloat(stats.avg_num, 1),
                    eval::FormatFloat(stats.avg_vx), eval::FormatFloat(stats.avg_vy),
                    eval::FormatFloat(stats.avg_ax), eval::FormatFloat(stats.avg_ay)});
  }
  std::printf("\n");

  for (sim::Domain d : {sim::Domain::kEthUcy, sim::Domain::kSyi}) {
    auto spec = sim::SpecForDomain(d);
    sim::SocialForceSimulator simulator(spec, 7);
    RenderScene(simulator.Run(50), spec);
  }
  std::printf("Each domain differs in density, speed, acceleration and\n");
  std::printf("passing-side convention - the distribution shifts AdapTraj targets.\n\n");

  // Serve the simulated crowd through the inference engine. Re-polling the
  // same live agents is the common serving pattern, so the second and third
  // passes resubmit the same scenes — the cross-request encoder cache
  // (serve/encode_cache.h) recognises their unchanged observed histories and
  // skips the encoder for every row it has seen.
  std::printf("Serving the SDD crowd through serve::InferenceEngine\n");
  std::printf("----------------------------------------------------\n");
  data::CorpusConfig corpus;
  corpus.num_scenes = 2;
  corpus.steps_per_scene = 45;
  corpus.seed = 2024;
  const auto dgd = data::BuildDomainGeneralizationData(
      {sim::Domain::kEthUcy, sim::Domain::kLcas}, sim::Domain::kSdd, corpus);
  models::BackboneConfig backbone;
  backbone.embed_dim = 16;
  backbone.hidden_dim = 32;
  backbone.social_dim = 32;
  core::VanillaMethod method(models::BackboneKind::kSeq2Seq, backbone, 5);

  serve::InferenceEngineOptions engine_options;
  engine_options.batch_size = 8;
  serve::InferenceEngine engine(&method, engine_options);
  const auto& live_agents = dgd.target.test.sequences;
  for (int pass = 0; pass < 3; ++pass) {
    std::vector<std::future<Tensor>> futures;
    for (const auto& scene : live_agents) futures.push_back(engine.Submit(scene));
    engine.Drain();
    for (auto& f : futures) (void)f.get();
    const auto stats = engine.stats();
    const auto& cache = stats.encode_cache;
    const double hit_rate =
        cache.lookups > 0
            ? 100.0 * static_cast<double>(cache.hits) / static_cast<double>(cache.lookups)
            : 0.0;
    std::printf(
        "  pass %d: %lld scenes in %lld batches | encoder cache: %lld/%lld hits "
        "(%.0f%%), %lld entries, %.1f KiB\n",
        pass + 1, static_cast<long long>(futures.size()),
        static_cast<long long>(stats.batches), static_cast<long long>(cache.hits),
        static_cast<long long>(cache.lookups), hit_rate,
        static_cast<long long>(cache.entries),
        static_cast<double>(cache.bytes) / 1024.0);
  }
  std::printf("Repeat passes hit the encoder cache and serve bit-identical\n");
  std::printf("predictions while skipping the encoder entirely.\n");
  return 0;
}
