// Domain-shift demo: reproduces the paper's motivation (Sec. II-B) end to
// end on a small scale -
//   1. a vanilla model evaluated in-domain vs out-of-domain (Tab. II shape),
//   2. the multi-source comparison vanilla vs AdapTraj (Tab. IV shape).
//
//   $ ./build/examples/domain_shift_demo

#include <cstdio>

#include "eval/experiment.h"
#include "eval/table.h"

using namespace adaptraj;  // NOLINT(build/namespaces): example code

namespace {

data::CorpusConfig SmallCorpus(uint64_t seed) {
  data::CorpusConfig c;
  c.num_scenes = 4;
  c.steps_per_scene = 60;
  c.seed = seed;
  return c;
}

eval::ExperimentConfig BaseConfig(eval::MethodKind method) {
  eval::ExperimentConfig cfg;
  cfg.backbone = models::BackboneKind::kPecnet;
  cfg.method = method;
  cfg.train.epochs = 10;
  cfg.train.max_batches_per_epoch = 8;
  cfg.eval_samples = 20;
  return cfg;
}

}  // namespace

int main() {
  std::printf("Part 1: the distribution-shift problem (cf. paper Tab. II)\n");
  std::printf("-----------------------------------------------------------\n");
  // Same-domain: train on SDD, test on SDD.
  auto same = data::BuildDomainGeneralizationData({sim::Domain::kSdd},
                                                  sim::Domain::kSdd, SmallCorpus(1));
  auto in_domain = eval::RunExperiment(same, BaseConfig(eval::MethodKind::kVanilla));
  // Cross-domain: train on ETH&UCY, test on SDD.
  auto cross = data::BuildDomainGeneralizationData({sim::Domain::kEthUcy},
                                                   sim::Domain::kSdd, SmallCorpus(1));
  auto out_domain = eval::RunExperiment(cross, BaseConfig(eval::MethodKind::kVanilla));
  std::printf("  PECNet trained on SDD,     tested on SDD:  ADE %.3f  FDE %.3f\n",
              in_domain.target.ade, in_domain.target.fde);
  std::printf("  PECNet trained on ETH&UCY, tested on SDD:  ADE %.3f  FDE %.3f\n",
              out_domain.target.ade, out_domain.target.fde);
  std::printf("  -> out-of-domain degradation: %+.1f%% ADE\n\n",
              100.0f * (out_domain.target.ade / in_domain.target.ade - 1.0f));

  std::printf("Part 2: multi-source generalization (cf. paper Tab. IV)\n");
  std::printf("--------------------------------------------------------\n");
  auto multi = data::BuildDomainGeneralizationData(
      {sim::Domain::kEthUcy, sim::Domain::kLcas, sim::Domain::kSyi}, sim::Domain::kSdd,
      SmallCorpus(2));
  eval::TablePrinter table({"Method", "ADE", "FDE"}, {16, 8, 8});
  table.PrintHeader();
  for (auto method : {eval::MethodKind::kVanilla, eval::MethodKind::kAdapTraj}) {
    auto result = eval::RunExperiment(multi, BaseConfig(method));
    table.PrintRow({"PECNet-" + eval::MethodKindName(method),
                    eval::FormatFloat(result.target.ade),
                    eval::FormatFloat(result.target.fde)});
  }
  std::printf("\nAdapTraj distills invariant + specific features from the three\n");
  std::printf("source domains and adapts them to the unseen SDD-like domain.\n");
  return 0;
}
