#include "serve/fault_injection.h"

#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "tensor/status.h"

namespace adaptraj {
namespace serve {

namespace {

// splitmix64: the repo-wide cheap seed mixer (same recipe as core::TaskSeed).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultSchedule MakeSeededFaultSchedule(uint64_t seed, int64_t num_calls,
                                      double rate, FaultKind kind,
                                      int sleep_ms) {
  ADAPTRAJ_CHECK_MSG(rate >= 0.0 && rate <= 1.0,
                     "fault rate must be in [0, 1]; got " << rate);
  FaultSchedule schedule;
  for (int64_t i = 0; i < num_calls; ++i) {
    // Top 53 bits -> uniform double in [0, 1).
    const double u = static_cast<double>(Mix(seed + static_cast<uint64_t>(i)) >> 11) *
                     (1.0 / 9007199254740992.0);
    if (u < rate) schedule.emplace(i, FaultSpec{kind, sleep_ms});
  }
  return schedule;
}

FaultInjectingMethod::FaultInjectingMethod(const core::Method* inner,
                                           FaultSchedule schedule,
                                           bool force_serialized)
    : inner_(inner),
      state_(std::make_shared<SharedState>()),
      force_serialized_(force_serialized) {
  ADAPTRAJ_CHECK_MSG(inner != nullptr, "FaultInjectingMethod over null method");
  state_->schedule = std::move(schedule);
}

FaultInjectingMethod::FaultInjectingMethod(const core::Method* inner,
                                           std::unique_ptr<core::Method> owned_inner,
                                           std::shared_ptr<SharedState> state,
                                           bool force_serialized)
    : inner_(inner),
      owned_inner_(std::move(owned_inner)),
      state_(std::move(state)),
      force_serialized_(force_serialized) {}

std::string FaultInjectingMethod::name() const {
  return "fault(" + inner_->name() + ")";
}

void FaultInjectingMethod::Train(const data::DomainGeneralizationData&,
                                 const core::TrainConfig&) {
  ADAPTRAJ_CHECK_MSG(false, "FaultInjectingMethod wraps a trained method; "
                            "train the inner method before wrapping");
}

bool FaultInjectingMethod::reentrant_predict() const {
  return force_serialized_ ? false : inner_->reentrant_predict();
}

std::unique_ptr<core::Method> FaultInjectingMethod::CloneForServing() const {
  if (force_serialized_) return nullptr;
  std::unique_ptr<core::Method> inner_clone = inner_->CloneForServing();
  if (inner_clone == nullptr) return nullptr;
  const core::Method* raw = inner_clone.get();
  return std::unique_ptr<core::Method>(new FaultInjectingMethod(
      raw, std::move(inner_clone), state_, force_serialized_));
}

int64_t FaultInjectingMethod::calls() const {
  return state_->next_call.load(std::memory_order_relaxed);
}

int64_t FaultInjectingMethod::faults_injected() const {
  return state_->faults.load(std::memory_order_relaxed);
}

Tensor FaultInjectingMethod::Predict(const data::Batch& batch, Rng* rng,
                                     bool sample) const {
  const int64_t call = state_->next_call.fetch_add(1, std::memory_order_relaxed);
  const auto it = state_->schedule.find(call);
  if (it == state_->schedule.end()) return inner_->Predict(batch, rng, sample);

  const FaultSpec& spec = it->second;
  state_->faults.fetch_add(1, std::memory_order_relaxed);
  switch (spec.kind) {
    case FaultKind::kThrow:
      throw FaultInjectedError("injected fault: Predict call " +
                               std::to_string(call) + " configured to throw");
    case FaultKind::kSleep:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.sleep_ms));
      return inner_->Predict(batch, rng, sample);
    case FaultKind::kNaN: {
      // Predict normally first: the rng stream advances exactly as in a
      // fault-free run, so LATER batches' noise is unaffected even though
      // this batch's values are destroyed.
      Tensor result = inner_->Predict(batch, rng, sample);
      float* data = result.data();
      const float nan = std::numeric_limits<float>::quiet_NaN();
      for (int64_t i = 0; i < result.size(); ++i) data[i] = nan;
      return result;
    }
  }
  ADAPTRAJ_CHECK_MSG(false, "unknown FaultKind");
  return Tensor();
}

}  // namespace serve
}  // namespace adaptraj
