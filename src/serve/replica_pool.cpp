#include "serve/replica_pool.h"

#include <utility>

#include "tensor/status.h"

namespace adaptraj {
namespace serve {

ReplicaPool::ReplicaPool(const core::Method* master, int target_slots)
    : master_(master) {
  ADAPTRAJ_CHECK_MSG(master != nullptr, "ReplicaPool over null method");
  ADAPTRAJ_CHECK_MSG(target_slots >= 1,
                     "ReplicaPool needs at least one slot; got " << target_slots);
  for (int s = 1; s < target_slots; ++s) {
    std::unique_ptr<core::Method> clone = master->CloneForServing();
    // Not clonable: serve from the master alone (the engine serializes).
    if (clone == nullptr) break;
    clones_.push_back(std::move(clone));
  }
}

const core::Method* ReplicaPool::method(int slot) const {
  ADAPTRAJ_CHECK_MSG(slot >= 0 && slot < size(),
                     "replica slot " << slot << " out of range [0, " << size() << ")");
  return slot == 0 ? master_ : clones_[static_cast<size_t>(slot - 1)].get();
}

}  // namespace serve
}  // namespace adaptraj
