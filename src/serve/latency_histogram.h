// Fixed log-bucket latency histogram for SLO telemetry.
//
// The serving engine records one queue-wait sample per request and one
// execution sample per batch, always under the engine mutex that the hot
// path already holds — so recording must be cheap: Record() is one
// comparison loop over at most kNumBuckets (no allocation, no float math),
// and the struct is trivially copyable so stats() can hand out a coherent
// snapshot by value.
//
// Buckets are half-open microsecond ranges [2^i, 2^(i+1)) with an
// underflow bucket below 1us; 30 doubling buckets reach ~9 minutes, far
// past any plausible request latency. Percentile(p) finds the bucket
// holding the p-quantile sample and interpolates linearly inside it —
// resolution is therefore a factor of 2 at worst, which is what an SLO
// gate needs (p99 "about 8 ms" vs "about 16 ms"), at a fraction of the
// cost of exact reservoirs.

#ifndef ADAPTRAJ_SERVE_LATENCY_HISTOGRAM_H_
#define ADAPTRAJ_SERVE_LATENCY_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace adaptraj {
namespace serve {

/// Log-bucket histogram of latencies in seconds. Trivially copyable; NOT
/// internally synchronized — the owner serializes access (the engine
/// records and snapshots under its mutex).
class LatencyHistogram {
 public:
  /// Bucket 0 is [0, 1us); bucket i >= 1 is [2^(i-1), 2^i) microseconds.
  static constexpr int kNumBuckets = 31;

  /// Adds one sample. Negative samples clamp to the underflow bucket.
  void Record(double seconds) {
    const double us = seconds * 1e6;
    int bucket = 0;
    // Doubling upper bounds: 1us, 2us, 4us, ... Find the first bound the
    // sample is below; everything past the last bound lands in the top
    // bucket. Integer-free of libm on purpose (called under the mutex).
    double bound = 1.0;
    while (bucket < kNumBuckets - 1 && us >= bound) {
      bound *= 2.0;
      ++bucket;
    }
    ++counts_[static_cast<size_t>(bucket)];
    ++total_;
  }

  /// Number of recorded samples.
  int64_t count() const { return total_; }

  /// The q-quantile in seconds (q in [0, 1]), linearly interpolated inside
  /// the selected bucket. 0 when empty.
  double Quantile(double q) const {
    if (total_ == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the quantile sample (1-based, nearest-rank).
    int64_t rank = static_cast<int64_t>(q * static_cast<double>(total_) + 0.5);
    if (rank < 1) rank = 1;
    if (rank > total_) rank = total_;
    int64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      const int64_t in_bucket = counts_[static_cast<size_t>(b)];
      if (in_bucket == 0) continue;
      if (seen + in_bucket >= rank) {
        const double lo = BucketLowerUs(b);
        const double hi = BucketUpperUs(b);
        const double frac =
            static_cast<double>(rank - seen) / static_cast<double>(in_bucket);
        return (lo + (hi - lo) * frac) * 1e-6;
      }
      seen += in_bucket;
    }
    return BucketUpperUs(kNumBuckets - 1) * 1e-6;  // unreachable
  }

  /// Raw bucket counts, for tests and external exporters.
  const std::array<int64_t, kNumBuckets>& buckets() const { return counts_; }

  /// Inclusive lower bound of bucket b, microseconds.
  static double BucketLowerUs(int b) {
    return b == 0 ? 0.0 : PowerOfTwoUs(b - 1);
  }
  /// Exclusive upper bound of bucket b, microseconds (top bucket is
  /// unbounded; its nominal upper bound keeps interpolation finite).
  static double BucketUpperUs(int b) { return PowerOfTwoUs(b); }

 private:
  static double PowerOfTwoUs(int exponent) {
    return static_cast<double>(int64_t{1} << exponent);
  }

  std::array<int64_t, kNumBuckets> counts_{};
  int64_t total_ = 0;
};

}  // namespace serve
}  // namespace adaptraj

#endif  // ADAPTRAJ_SERVE_LATENCY_HISTOGRAM_H_
