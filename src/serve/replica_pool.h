// Slot-pinned pool of serving replicas for non-reentrant methods.
//
// LBEBM's Predict differentiates its energy network inside the Langevin
// sampler and therefore writes the model's shared gradient buffers: two
// concurrent Predict calls on the same instance race. Before this pool the
// engine's only safe schedule was one batch at a time. A ReplicaPool removes
// the bottleneck the same way core::ParallelTrainer does on the training
// path: independent model copies, one per concurrency slot.
//
//   - Slot 0 is always the served master (no copy); slots 1..R-1 are built
//     with core::Method::CloneForServing — same construction path as a
//     training replica, then Module::CopyParametersFrom overwrites the fresh
//     initialization with the master's weights.
//   - Batch b is PINNED to slot b % size(). Pinning is part of the engine's
//     determinism story only in the trivial sense: since every replica holds
//     byte-identical parameters and every kernel is bit-deterministic, which
//     slot executes a batch cannot change its bytes. What pinning actually
//     buys is a schedule where two batches in the same execution wave never
//     share a slot (consecutive batch indices hit distinct residues), so a
//     non-reentrant Predict never runs concurrently on one instance.
//   - Predict never changes parameter values (gradient buffers only), so
//     replicas are copied once at pool construction and stay valid for the
//     pool's lifetime; there is no per-batch broadcast.
//
// A method whose CloneForServing returns nullptr caps the pool at the master
// alone (size() == 1) and the engine falls back to serialized execution.

#ifndef ADAPTRAJ_SERVE_REPLICA_POOL_H_
#define ADAPTRAJ_SERVE_REPLICA_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/method.h"

namespace adaptraj {
namespace serve {

/// Fixed set of interchangeable serving replicas; see the file comment.
///
/// Thread-safety contract (no mutex, so nothing for the Clang thread-safety
/// analysis to check — deliberately): `master_` and `clones_` are written
/// only by the constructor and read-only afterwards, and every accessor is
/// const. Concurrent MethodForBatch calls from a dispatcher wave are safe
/// because they never mutate the pool; exclusive use of each REPLICA within
/// a wave is the engine's pinning schedule (batch b -> slot b % size()),
/// a protocol the analysis cannot express and TSan verifies instead.
class ReplicaPool {
 public:
  /// Builds up to `target_slots` slots (>= 1). Slot 0 aliases `master`
  /// (which must outlive the pool); further slots are CloneForServing
  /// copies. If the method is not clonable the pool holds only the master.
  ReplicaPool(const core::Method* master, int target_slots);

  /// Number of usable slots (1 when the method could not be cloned).
  int size() const { return static_cast<int>(1 + clones_.size()); }

  /// The instance pinned to `slot` (0 = the master).
  const core::Method* method(int slot) const;

  /// The instance batch `batch_index` must execute on: slot
  /// batch_index % size().
  const core::Method* MethodForBatch(uint64_t batch_index) const {
    return method(static_cast<int>(batch_index % static_cast<uint64_t>(size())));
  }

 private:
  const core::Method* master_;
  std::vector<std::unique_ptr<core::Method>> clones_;
};

}  // namespace serve
}  // namespace adaptraj

#endif  // ADAPTRAJ_SERVE_REPLICA_POOL_H_
