// Cross-request encoder cache: content-addressed reuse of per-scene encoder
// rows in the serving engine.
//
// The serving workload resubmits scenes whose observed history is identical
// byte-for-byte (persistent agents polled by several consumers, replayed
// traffic, the padding rows that cycle a partial batch's live scenes), yet
// the engine re-ran the full backbone encoder for every row of every batch.
// The backbone seam makes the encoder half reusable: Encode is an rng-free
// pure no-grad forward whose row r depends ONLY on row r's input bytes —
// every kernel accumulates per output element over ascending k and every
// reduction is per-scene (see tensor/kernels.h "tile boundaries don't affect
// values"), so a row encoded in one batch is bit-identical to the same bytes
// encoded in any other batch with the same neighbor-slot width. This cache
// maps those input bytes to the packed encoder output row and lets
// serve::InferenceEngine skip Encode for every row it has seen before.
//
// Correctness model:
//   - The KEY is the full byte string of everything the encoder reads for
//     one scene row (identity header, extents, observed-history floats,
//     neighbor floats + offsets + mask when the method's encoder reads
//     neighbors), so two scenes collide only if the encoder input is
//     byte-identical — in which case the encoder output is too.
//   - The HASH (seeded 64-bit FNV-1a) is only an index. Every probe
//     compares the full key bytes before reporting a hit; a hash collision
//     costs one extra compare (counted in stats().hash_conflicts), never a
//     wrong value. Tests force collisions through a fake hasher to pin this.
//   - EVICTION is LRU under a byte budget covering keys + values + a fixed
//     per-entry overhead estimate. An entry larger than the whole budget is
//     never admitted.
//   - INVALIDATION: Invalidate() drops everything (the engine calls it at
//     the SwapWeights flip, under the engine mutex while no batch is
//     executing, so stale-weight latents are unobservable).
//     InvalidateIfVersionChanged(v) clears when the owning method's
//     weights-version counter moved (core::Method::weights_version — bumped
//     by Train), covering in-place retraining of a live served method.
//
// Thread safety: every public method is mutex-guarded; concurrent batches
// may race a miss for the same key and both encode it — the second Insert
// finds the key present and is dropped. Because the cached value equals the
// recomputed value bit-exactly, lookup/insert interleaving can never change
// served bytes.
//
// The ADAPTRAJ_ENCODE_CACHE env var is the production kill-switch
// (unset/"1"/"on" = on, "0"/"off" = off), consulted by engines whose
// options leave the cache in kAuto; tests pin kOn/kOff programmatically
// through InferenceEngineOptions so they are env-independent.

#ifndef ADAPTRAJ_SERVE_ENCODE_CACHE_H_
#define ADAPTRAJ_SERVE_ENCODE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/batch.h"
#include "support/sync.h"
#include "support/thread_annotations.h"

namespace adaptraj {
namespace serve {

/// Engine-facing switch for the encoder cache.
enum class EncodeCacheMode {
  kAuto = 0,  // follow the ADAPTRAJ_ENCODE_CACHE environment variable
  kOn,        // cache when the method supports the encode/decode split
  kOff,       // never cache
};

/// Resolves the ADAPTRAJ_ENCODE_CACHE kill-switch (unset/"1"/"on" = true,
/// "0"/"off"/"false" = false). Read once per process, like ADAPTRAJ_PLAN.
bool EncodeCacheEnabledByEnv();

/// Configuration of one cache instance.
struct EncodeCacheOptions {
  /// LRU byte budget over keys + values + per-entry overhead. Must be > 0.
  int64_t max_bytes = 64ll << 20;
  /// Method/backbone identity mixed into every key (method name + packed
  /// width); keeps entries self-describing if a cache ever outlives a
  /// served-method change that Invalidate did not cover.
  std::string identity;
  /// Seed folded into the 64-bit content hash.
  uint64_t hash_seed = 0x9e3779b97f4a7c15ull;
};

/// Counters and gauges; snapshot under the cache mutex.
struct EncodeCacheStats {
  int64_t lookups = 0;        // Lookup calls
  int64_t hits = 0;           // full-key matches served from the cache
  int64_t misses = 0;         // lookups that found no matching key
  int64_t insertions = 0;     // entries admitted
  int64_t evictions = 0;      // entries dropped by the LRU byte budget
  int64_t invalidations = 0;  // Invalidate / version-change clears
  /// Bucket probes whose hash matched but whose key bytes did not — the
  /// collision-safety path (full byte compare, never a silent wrong value).
  int64_t hash_conflicts = 0;
  int64_t entries = 0;  // gauge: live entries
  int64_t bytes = 0;    // gauge: charged bytes of live entries
};

/// Content-addressed LRU cache from encoder-input bytes to the packed
/// encoder output row ([hidden_dim + social_dim] floats).
class EncodeCache {
 public:
  explicit EncodeCache(EncodeCacheOptions options);

  /// Copies the cached row for `key` into out[0, width) and returns true;
  /// false on miss. Touches the entry to the LRU front on hit.
  bool Lookup(const std::string& key, float* out, int64_t width)
      ADAPTRAJ_EXCLUDES(mu_);

  /// Admits a copy of value[0, width) under `key`, evicting LRU entries
  /// until the byte budget holds. Dropped silently when the key is already
  /// present (a concurrent batch encoded it first — the values are
  /// bit-identical by the determinism contract) or when one entry alone
  /// exceeds the budget.
  void Insert(const std::string& key, const float* value, int64_t width)
      ADAPTRAJ_EXCLUDES(mu_);

  /// Drops every entry.
  void Invalidate() ADAPTRAJ_EXCLUDES(mu_);

  /// Clears when `version` differs from the last adopted weights version
  /// (first call adopts without clearing an empty cache's stats).
  void InvalidateIfVersionChanged(int64_t version) ADAPTRAJ_EXCLUDES(mu_);

  EncodeCacheStats stats() const ADAPTRAJ_EXCLUDES(mu_);
  const EncodeCacheOptions& options() const { return options_; }

  /// Test hook: replaces the content hash (e.g. with a constant, forcing
  /// every key into one bucket to exercise the full-key compare fallback).
  /// Call only on an empty cache — existing entries keep their old hash.
  void set_hasher_for_test(std::function<uint64_t(const std::string&)> hasher)
      ADAPTRAJ_EXCLUDES(mu_);

 private:
  struct Entry {
    uint64_t hash = 0;
    std::string key;
    std::vector<float> value;
  };

  /// Reads hasher_override_, which set_hasher_for_test writes under mu_ —
  /// so hashing happens inside the critical section, not before it.
  uint64_t HashKey(const std::string& key) const ADAPTRAJ_REQUIRES(mu_);
  int64_t EntryBytes(const Entry& entry) const;
  /// Removes `it` from the index and the LRU list.
  void EraseLocked(std::list<Entry>::iterator it) ADAPTRAJ_REQUIRES(mu_);

  /// Immutable after construction; readable without mu_.
  EncodeCacheOptions options_;
  mutable support::Mutex mu_;
  /// MRU-first recency list owning the entries.
  std::list<Entry> lru_ ADAPTRAJ_GUARDED_BY(mu_);
  /// Hash -> entries with that hash (several after a collision).
  std::unordered_multimap<uint64_t, std::list<Entry>::iterator> index_
      ADAPTRAJ_GUARDED_BY(mu_);
  EncodeCacheStats stats_ ADAPTRAJ_GUARDED_BY(mu_);
  int64_t weights_version_ ADAPTRAJ_GUARDED_BY(mu_) = 0;
  bool has_weights_version_ ADAPTRAJ_GUARDED_BY(mu_) = false;
  std::function<uint64_t(const std::string&)> hasher_override_
      ADAPTRAJ_GUARDED_BY(mu_);
};

/// Builds the content key for row `row` of `batch`: identity header, the
/// extents that shape the encoder input (obs_len; neighbor-slot width M when
/// `include_neighbors`), then the raw float bytes the encoder reads for that
/// row — observed-history displacements and, when `include_neighbors`, the
/// row's neighbor displacement steps, offsets, and validity mask. Methods
/// whose encoder ignores neighbors (Counter encodes the counterfactual
/// scene; core::Method::encode_reads_neighbors() == false) get shorter keys
/// and legitimately higher hit rates. Padded neighbor slots hash as their
/// zero bytes, making M part of the key content: a scene cached at one slot
/// width misses at another — conservative, never wrong.
std::string SceneEncodeKey(const std::string& identity, const data::Batch& batch,
                           int64_t row, bool include_neighbors);

}  // namespace serve
}  // namespace adaptraj

#endif  // ADAPTRAJ_SERVE_ENCODE_CACHE_H_
