#include "serve/inference_engine.h"

#include <algorithm>
#include <utility>

#include "core/parallel_trainer.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace serve {

namespace {

void ValidateOptions(const InferenceEngineOptions& options) {
  ADAPTRAJ_CHECK_MSG(options.batch_size >= 1,
                     "InferenceEngine batch_size must be >= 1; got "
                         << options.batch_size);
  ADAPTRAJ_CHECK_MSG(options.max_buffered_batches >= 0,
                     "InferenceEngine max_buffered_batches must be >= 0");
}

}  // namespace

InferenceEngine::InferenceEngine(const core::Method* method,
                                 const InferenceEngineOptions& options)
    : method_(method), options_(options) {
  ADAPTRAJ_CHECK_MSG(method != nullptr, "InferenceEngine over null method");
  ValidateOptions(options_);
}

InferenceEngine::InferenceEngine(std::unique_ptr<core::Method> method,
                                 const InferenceEngineOptions& options)
    : method_(method.get()), owned_method_(std::move(method)), options_(options) {
  ADAPTRAJ_CHECK_MSG(method_ != nullptr, "InferenceEngine over null method");
  ValidateOptions(options_);
}

std::future<Tensor> InferenceEngine::Submit(const data::TrajectorySequence& scene) {
  return Submit(next_auto_id_, scene);
}

std::future<Tensor> InferenceEngine::Submit(uint64_t request_id,
                                            const data::TrajectorySequence& scene) {
  const uint64_t batch_size = static_cast<uint64_t>(options_.batch_size);
  ADAPTRAJ_CHECK_MSG(request_id >= next_batch_ * batch_size,
                     "request id " << request_id << " belongs to batch "
                                   << request_id / batch_size
                                   << ", which already executed");
  ADAPTRAJ_CHECK_MSG(pending_.find(request_id) == pending_.end(),
                     "duplicate request id " << request_id);
  PendingRequest req;
  req.scene = scene;
  std::future<Tensor> future = req.promise.get_future();
  pending_.emplace(request_id, std::move(req));
  next_auto_id_ = std::max(next_auto_id_, request_id + 1);
  ++stats_.requests;
  RunReadyBatches(/*include_partial_tail=*/false);
  return future;
}

void InferenceEngine::Drain() {
  if (!pending_.empty()) {
    // Out-of-order streams must be complete before the tail can be padded:
    // a hole would silently shift every later request one slot.
    const uint64_t first = next_batch_ * static_cast<uint64_t>(options_.batch_size);
    const uint64_t last = pending_.rbegin()->first;
    ADAPTRAJ_CHECK_MSG(pending_.size() == last - first + 1,
                       "Drain with missing request ids: have "
                           << pending_.size() << " pending in slot range ["
                           << first << ", " << last << "]");
  }
  RunReadyBatches(/*include_partial_tail=*/true);
}

void InferenceEngine::RunReadyBatches(bool include_partial_tail) {
  const uint64_t batch_size = static_cast<uint64_t>(options_.batch_size);
  const uint64_t max_buffered = static_cast<uint64_t>(
      options_.max_buffered_batches > 0 ? options_.max_buffered_batches
                                        : parallel::NumTrainWorkers());

  // Length of the contiguous run of pending slots starting at the next
  // unexecuted batch boundary (out-of-order arrivals beyond a hole wait).
  const uint64_t first_slot = next_batch_ * batch_size;
  uint64_t run = 0;
  for (auto it = pending_.lower_bound(first_slot);
       it != pending_.end() && it->first == first_slot + run; ++it) {
    ++run;
  }
  const uint64_t ready_full = run / batch_size;
  const uint64_t tail_rows = include_partial_tail ? run % batch_size : 0;
  if (ready_full + (tail_rows > 0 ? 1 : 0) == 0) return;
  // Submit path: buffer until a group's worth of batches is ready so the
  // worker pool gets cross-batch parallelism; Drain flushes unconditionally.
  if (!include_partial_tail && ready_full < max_buffered) return;

  // One executable batch: its index, its real scenes in slot order, and the
  // per-request promises to fulfil afterwards.
  struct ReadyBatch {
    uint64_t index = 0;
    std::vector<const data::TrajectorySequence*> scenes;  // real rows only
    std::vector<std::promise<Tensor>> promises;
    std::vector<Tensor> results;  // filled by the task, one per real row
  };
  std::vector<ReadyBatch> group;
  uint64_t slot = first_slot;
  const uint64_t total_batches = ready_full + (tail_rows > 0 ? 1 : 0);
  for (uint64_t b = 0; b < total_batches; ++b) {
    const uint64_t rows = b < ready_full ? batch_size : tail_rows;
    ReadyBatch rb;
    rb.index = next_batch_;
    for (uint64_t r = 0; r < rows; ++r, ++slot) {
      auto it = pending_.find(slot);
      rb.scenes.push_back(&it->second.scene);
      rb.promises.push_back(std::move(it->second.promise));
    }
    group.push_back(std::move(rb));
    ++next_batch_;
  }
  // A padded tail consumes its whole batch of the slot space: implicit
  // submissions after a Drain continue at the next batch boundary.
  next_auto_id_ = std::max(next_auto_id_, next_batch_ * batch_size);

  // Execute the group. Each task is self-contained: it tensorizes its
  // scenes (padding by cycling them up to the fixed width), runs the
  // forward-only Predict with the batch's private noise stream, and slices
  // the per-request rows out on its own thread. Non-reentrant methods
  // (LBEBM) run one batch at a time instead of a concurrent group.
  auto run_one = [this, batch_size](ReadyBatch* rb) {
    NoGradGuard no_grad;
    const int64_t real = static_cast<int64_t>(rb->scenes.size());
    std::vector<const data::TrajectorySequence*> slots = rb->scenes;
    while (slots.size() < batch_size) {
      slots.push_back(rb->scenes[slots.size() % rb->scenes.size()]);
    }
    data::Batch batch = data::MakeBatch(slots, options_.sequence);
    Rng rng(core::TaskSeed(options_.seed, rb->index));
    Tensor pred = method_->Predict(batch, &rng, options_.sample);
    for (int64_t r = 0; r < real; ++r) {
      rb->results.push_back(ops::Slice(pred, 0, r, r + 1));
    }
  };

  if (method_->reentrant_predict()) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(group.size());
    for (ReadyBatch& rb : group) {
      tasks.push_back([&run_one, &rb] { run_one(&rb); });
    }
    parallel::RunTaskGroup(tasks);
  } else {
    for (ReadyBatch& rb : group) run_one(&rb);
  }

  // Fulfil promises in slot order on the dispatch thread and retire the
  // requests.
  for (ReadyBatch& rb : group) {
    const uint64_t first = rb.index * batch_size;
    for (size_t r = 0; r < rb.results.size(); ++r) {
      rb.promises[r].set_value(std::move(rb.results[r]));
      pending_.erase(first + static_cast<uint64_t>(r));
    }
    ++stats_.batches;
    stats_.padded_rows +=
        options_.batch_size - static_cast<int64_t>(rb.results.size());
  }
}

}  // namespace serve
}  // namespace adaptraj
