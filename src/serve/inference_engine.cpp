#include "serve/inference_engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/parallel_trainer.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace serve {

namespace {

void ValidateOptions(const InferenceEngineOptions& options) {
  ADAPTRAJ_CHECK_MSG(options.batch_size >= 1,
                     "InferenceEngine batch_size must be >= 1; got "
                         << options.batch_size);
  ADAPTRAJ_CHECK_MSG(options.max_buffered_batches >= 0,
                     "InferenceEngine max_buffered_batches must be >= 0");
  ADAPTRAJ_CHECK_MSG(options.max_batch_delay_ms >= 0,
                     "InferenceEngine max_batch_delay_ms must be >= 0");
  ADAPTRAJ_CHECK_MSG(options.num_replicas >= 0,
                     "InferenceEngine num_replicas must be >= 0");
}

}  // namespace

InferenceEngine::InferenceEngine(const core::Method* method,
                                 const InferenceEngineOptions& options)
    : method_(method), options_(options) {
  ADAPTRAJ_CHECK_MSG(method != nullptr, "InferenceEngine over null method");
  ValidateOptions(options_);
  if (!method_->reentrant_predict()) {
    const int slots = options_.num_replicas > 0 ? options_.num_replicas
                                                : parallel::NumTrainWorkers();
    if (slots > 1) replicas_ = std::make_unique<ReplicaPool>(method_, slots);
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

InferenceEngine::InferenceEngine(std::unique_ptr<core::Method> method,
                                 const InferenceEngineOptions& options)
    : InferenceEngine(method.get(), options) {
  owned_method_ = std::move(method);
}

InferenceEngine::~InferenceEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  dispatch_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Lossless error delivery even on teardown: requests that never executed
  // fail with a descriptive error instead of a broken promise. No lock
  // needed — the dispatcher is gone and other threads must not race the
  // destructor.
  for (auto& entry : pending_) {
    entry.second.promise.set_exception(std::make_exception_ptr(std::runtime_error(
        "InferenceEngine destroyed before the request at slot " +
        std::to_string(entry.first) + " executed; call Drain() before destruction")));
  }
}

int InferenceEngine::num_replica_slots() const {
  return replicas_ != nullptr ? replicas_->size() : 1;
}

InferenceEngineStats InferenceEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::future<Tensor> InferenceEngine::Submit(const data::TrajectorySequence& scene) {
  std::future<Tensor> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    future = SubmitLocked(next_auto_id_, scene);
  }
  dispatch_cv_.notify_one();
  return future;
}

std::future<Tensor> InferenceEngine::Submit(uint64_t request_id,
                                            const data::TrajectorySequence& scene) {
  std::future<Tensor> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    future = SubmitLocked(request_id, scene);
  }
  dispatch_cv_.notify_one();
  return future;
}

std::future<Tensor> InferenceEngine::SubmitLocked(uint64_t request_id,
                                                  const data::TrajectorySequence& scene) {
  const uint64_t batch_size = static_cast<uint64_t>(options_.batch_size);
  if (request_id < next_batch_ * batch_size && options_.max_batch_delay_ms > 0) {
    // With the deadline enabled, the dispatcher retires slot space on a
    // timer the producers cannot observe, so an explicit id landing in an
    // already-flushed batch is an operational race, not a programming
    // error — deliver it through the future instead of aborting the server.
    ++stats_.requests;
    ++stats_.rejected_requests;
    std::promise<Tensor> rejected;
    rejected.set_exception(std::make_exception_ptr(std::runtime_error(
        "request id " + std::to_string(request_id) +
        " arrived after its batch was already flushed (a max_batch_delay_ms "
        "deadline flush or a concurrent Drain retired its slot range)")));
    return rejected.get_future();
  }
  ADAPTRAJ_CHECK_MSG(request_id >= next_batch_ * batch_size,
                     "request id " << request_id << " belongs to batch "
                                   << request_id / batch_size
                                   << ", which already executed");
  ADAPTRAJ_CHECK_MSG(pending_.find(request_id) == pending_.end(),
                     "duplicate request id " << request_id);
  PendingRequest req;
  req.scene = scene;
  req.enqueue_time = std::chrono::steady_clock::now();
  std::future<Tensor> future = req.promise.get_future();
  pending_.emplace(request_id, std::move(req));
  next_auto_id_ = std::max(next_auto_id_, request_id + 1);
  ++stats_.requests;
  return future;
}

void InferenceEngine::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!pending_.empty()) {
    // Out-of-order streams must be complete before the tail can be padded:
    // a hole would silently shift every later request one slot.
    const uint64_t first = next_batch_ * static_cast<uint64_t>(options_.batch_size);
    const uint64_t last = pending_.rbegin()->first;
    ADAPTRAJ_CHECK_MSG(pending_.size() == last - first + 1,
                       "Drain with missing request ids: have "
                           << pending_.size() << " pending in slot range ["
                           << first << ", " << last << "]");
    drain_until_slot_ = std::max(drain_until_slot_, last + 1);
  }
  const uint64_t target = drain_until_slot_;
  dispatch_cv_.notify_one();
  drained_cv_.wait(lock, [this, target] {
    return next_batch_ * static_cast<uint64_t>(options_.batch_size) >= target &&
           !executing_;
  });
}

uint64_t InferenceEngine::ContiguousRunLocked() const {
  const uint64_t first_slot =
      next_batch_ * static_cast<uint64_t>(options_.batch_size);
  uint64_t run = 0;
  for (auto it = pending_.lower_bound(first_slot);
       it != pending_.end() && it->first == first_slot + run; ++it) {
    ++run;
  }
  return run;
}

std::vector<InferenceEngine::ReadyBatch> InferenceEngine::CollectGroupLocked(
    bool include_partial_tail) {
  const uint64_t batch_size = static_cast<uint64_t>(options_.batch_size);
  const uint64_t run = ContiguousRunLocked();
  const uint64_t ready_full = run / batch_size;
  const uint64_t tail_rows = include_partial_tail ? run % batch_size : 0;
  const uint64_t total = ready_full + (tail_rows > 0 ? 1 : 0);

  std::vector<ReadyBatch> group;
  group.reserve(total);
  uint64_t slot = next_batch_ * batch_size;
  for (uint64_t b = 0; b < total; ++b) {
    const uint64_t rows = b < ready_full ? batch_size : tail_rows;
    ReadyBatch rb;
    rb.index = next_batch_;
    rb.scenes.reserve(rows);
    rb.promises.reserve(rows);
    for (uint64_t r = 0; r < rows; ++r, ++slot) {
      auto it = pending_.find(slot);
      rb.scenes.push_back(std::move(it->second.scene));
      rb.promises.push_back(std::move(it->second.promise));
      pending_.erase(it);
    }
    group.push_back(std::move(rb));
    ++next_batch_;
  }
  // A padded tail consumes its whole batch of the slot space: implicit
  // submissions after a flush continue at the next batch boundary.
  next_auto_id_ = std::max(next_auto_id_, next_batch_ * batch_size);
  // A deadline flush can pad past a slot hole in an out-of-order stream,
  // retiring the batch of a request still pending BEHIND the hole. That
  // request can never execute in its assigned slot: reject it through its
  // future now, or it would hang forever (and, as pending_.begin(), anchor
  // every future deadline at its stale enqueue time). Only the deadline
  // path can strand: Drain refuses holes up front, and a full-batch flush
  // consumes nothing beyond the contiguous collected run.
  const uint64_t boundary = next_batch_ * batch_size;
  while (!pending_.empty() && pending_.begin()->first < boundary) {
    auto it = pending_.begin();
    it->second.promise.set_exception(std::make_exception_ptr(std::runtime_error(
        "request id " + std::to_string(it->first) +
        " was stranded behind a slot hole when the max_batch_delay_ms "
        "deadline flush retired its batch")));
    ++stats_.rejected_requests;
    pending_.erase(it);
  }
  return group;
}

void InferenceEngine::RunOneBatch(ReadyBatch* rb, const core::Method* method) const {
  try {
    NoGradGuard no_grad;
    const size_t real = rb->scenes.size();
    const size_t width = static_cast<size_t>(options_.batch_size);
    // Pad to the fixed width by cycling the real scenes.
    std::vector<const data::TrajectorySequence*> slots;
    slots.reserve(width);
    for (size_t r = 0; r < width; ++r) slots.push_back(&rb->scenes[r % real]);
    data::Batch batch = data::MakeBatch(slots, options_.sequence);
    Rng rng(core::TaskSeed(options_.seed, rb->index));
    Tensor pred = method->Predict(batch, &rng, options_.sample);
    rb->results.reserve(real);
    for (int64_t r = 0; r < static_cast<int64_t>(real); ++r) {
      // Slice copies the row into fresh storage, and under no-grad attaches
      // no graph edge back to `pred`: a caller that keeps this tensor alive
      // retains pred_len*2 floats, never the whole batch buffer (asserted by
      // PerRequestResultsAreIndependentStorage).
      rb->results.push_back(ops::Slice(pred, 0, r, r + 1));
    }
  } catch (...) {
    // Deliver the original error through the batch's futures instead of
    // abandoning the promises (which would surface as an opaque
    // broken_promise at every future.get()).
    rb->results.clear();
    rb->error = std::current_exception();
  }
}

void InferenceEngine::ExecuteGroup(std::vector<ReadyBatch>* group) {
  if (method_->reentrant_predict()) {
    // Reentrant Predict: every batch shares the master model; full
    // cross-batch concurrency on the training-worker pool.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(group->size());
    for (ReadyBatch& rb : *group) {
      tasks.push_back([this, &rb] { RunOneBatch(&rb, method_); });
    }
    parallel::RunTaskGroup(tasks);
  } else if (replicas_ != nullptr && replicas_->size() > 1) {
    // Non-reentrant Predict with a replica pool: waves of consecutive batch
    // indices. Batch b is pinned to replica b % R, so wave members never
    // share an instance and the non-reentrant body never runs concurrently
    // on one model.
    const size_t width = static_cast<size_t>(replicas_->size());
    for (size_t base = 0; base < group->size(); base += width) {
      const size_t end = std::min(group->size(), base + width);
      std::vector<std::function<void()>> wave;
      wave.reserve(end - base);
      for (size_t i = base; i < end; ++i) {
        ReadyBatch& rb = (*group)[i];
        wave.push_back(
            [this, &rb] { RunOneBatch(&rb, replicas_->MethodForBatch(rb.index)); });
      }
      parallel::RunTaskGroup(wave);
    }
  } else {
    // Non-reentrant and not clonable (or replicas disabled): one at a time.
    for (ReadyBatch& rb : *group) RunOneBatch(&rb, method_);
  }
}

void InferenceEngine::DispatcherLoop() {
  const uint64_t batch_size = static_cast<uint64_t>(options_.batch_size);
  const uint64_t max_buffered = static_cast<uint64_t>(
      options_.max_buffered_batches > 0 ? options_.max_buffered_batches
                                        : parallel::NumTrainWorkers());
  const auto delay = std::chrono::milliseconds(options_.max_batch_delay_ms);

  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    const uint64_t run = ContiguousRunLocked();
    const bool drain_needed = drain_until_slot_ > next_batch_ * batch_size;
    const bool full_ready = run / batch_size >= max_buffered;
    bool deadline_due = false;
    std::chrono::steady_clock::time_point deadline{};
    if (options_.max_batch_delay_ms > 0 && run > 0) {
      // The deadline measures the age of the request at the head of the
      // queue (the first slot of the contiguous run — for an out-of-order
      // stream, the arrival that unblocked the head).
      deadline = pending_.begin()->second.enqueue_time + delay;
      deadline_due = std::chrono::steady_clock::now() >= deadline;
    }

    if (!drain_needed && !full_ready && !deadline_due) {
      if (options_.max_batch_delay_ms > 0 && run > 0) {
        dispatch_cv_.wait_until(lock, deadline);
      } else {
        dispatch_cv_.wait(lock);
      }
      continue;  // re-evaluate everything after any wakeup
    }

    // Every trigger implies at least one executable batch: full_ready means
    // a whole batch is buffered, and drain/deadline imply a non-empty run
    // whose tail is included below.
    const bool include_tail = drain_needed || deadline_due;
    std::vector<ReadyBatch> group = CollectGroupLocked(include_tail);
    ADAPTRAJ_CHECK_MSG(!group.empty(),
                       "dispatcher triggered with no executable batch (run="
                           << run << ", next_batch=" << next_batch_ << ")");
    executing_ = true;
    const int64_t deadline_hits = (deadline_due && !drain_needed) ? 1 : 0;
    lock.unlock();
    ExecuteGroup(&group);
    lock.lock();
    // Count first, fulfil second, both under mu_: a caller that wakes on a
    // ready future (or returns from Drain) observes counters that already
    // include its batch.
    stats_.deadline_flushes += deadline_hits;
    stats_.batches += static_cast<int64_t>(group.size());
    for (const ReadyBatch& rb : group) {
      if (rb.error != nullptr) {
        ++stats_.failed_batches;
      } else {
        stats_.padded_rows +=
            options_.batch_size - static_cast<int64_t>(rb.scenes.size());
      }
    }
    // Fulfil promises in slot order; RunTaskGroup's completion barrier
    // published the task writes. A failed batch delivers its exception to
    // exactly its own futures — later batches are unaffected.
    for (ReadyBatch& rb : group) {
      if (rb.error != nullptr) {
        for (std::promise<Tensor>& p : rb.promises) p.set_exception(rb.error);
      } else {
        for (size_t r = 0; r < rb.results.size(); ++r) {
          rb.promises[r].set_value(std::move(rb.results[r]));
        }
      }
    }
    executing_ = false;
    drained_cv_.notify_all();
  }
}

}  // namespace serve
}  // namespace adaptraj
