#include "serve/inference_engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/parallel_trainer.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

void ValidateOptions(const InferenceEngineOptions& options) {
  ADAPTRAJ_CHECK_MSG(options.batch_size >= 1,
                     "InferenceEngine batch_size must be >= 1; got "
                         << options.batch_size);
  ADAPTRAJ_CHECK_MSG(options.max_buffered_batches >= 0,
                     "InferenceEngine max_buffered_batches must be >= 0");
  ADAPTRAJ_CHECK_MSG(options.max_batch_delay_ms >= 0,
                     "InferenceEngine max_batch_delay_ms must be >= 0");
  ADAPTRAJ_CHECK_MSG(options.num_replicas >= 0,
                     "InferenceEngine num_replicas must be >= 0");
  ADAPTRAJ_CHECK_MSG(options.max_queued_requests >= 0,
                     "InferenceEngine max_queued_requests must be >= 0");
  ADAPTRAJ_CHECK_MSG(options.stuck_batch_warn_ms >= 0,
                     "InferenceEngine stuck_batch_warn_ms must be >= 0");
  ADAPTRAJ_CHECK_MSG(options.encode_cache_bytes > 0,
                     "InferenceEngine encode_cache_bytes must be > 0; got "
                         << options.encode_cache_bytes);
}

/// Resolves the engine's tri-state cache switch to on/off.
bool EncodeCacheResolvedOn(EncodeCacheMode mode) {
  switch (mode) {
    case EncodeCacheMode::kOn: return true;
    case EncodeCacheMode::kOff: return false;
    case EncodeCacheMode::kAuto: return EncodeCacheEnabledByEnv();
  }
  return false;
}

}  // namespace

InferenceEngine::InferenceEngine(const core::Method* method,
                                 const InferenceEngineOptions& options)
    : method_(method), options_(options) {
  ADAPTRAJ_CHECK_MSG(method != nullptr, "InferenceEngine over null method");
  ValidateOptions(options_);
  {
    // Uncontended (the service threads start below); taken so the guarded
    // members are initialized under their capability like everywhere else.
    support::MutexLock lock(mu_);
    replicas_ = MakeReplicaPool(method_);
    if (EncodeCacheResolvedOn(options_.encode_cache) &&
        method_->predict_encode_width() > 0) {
      EncodeCacheOptions cache_options;
      cache_options.max_bytes = options_.encode_cache_bytes;
      cache_options.identity = method_->name() + ":" +
                               std::to_string(method_->predict_encode_width());
      encode_cache_ = std::make_unique<EncodeCache>(cache_options);
    }
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

InferenceEngine::InferenceEngine(std::unique_ptr<core::Method> method,
                                 const InferenceEngineOptions& options)
    : InferenceEngine(method.get(), options) {
  support::MutexLock lock(mu_);
  owned_method_ = std::move(method);
}

InferenceEngine::~InferenceEngine() {
  Shutdown();
  {
    // Blocked Drain/Submit/SwapWeights callers woke at Shutdown; wait for
    // the last of them to leave our condition variables before tearing the
    // synchronization primitives down.
    support::MutexLock lock(mu_);
    while (blocked_callers_ != 0) idle_cv_.Wait(lock);
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  if (watchdog_.joinable()) watchdog_.join();
}

void InferenceEngine::Shutdown() {
  {
    support::MutexLock lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      // Lossless error delivery even on teardown: queued requests that never
      // executed fail with a typed, descriptive error instead of a broken
      // promise. The in-flight group (already moved out of pending_) still
      // delivers its results when the dispatcher returns.
      for (auto& entry : pending_) {
        if (entry.second.expired) continue;  // already failed by its deadline
        ++stats_.stopped_requests;
        entry.second.promise.set_exception(std::make_exception_ptr(EngineStoppedError(
            "InferenceEngine shut down or destroyed before the request at slot " +
            std::to_string(entry.first) +
            " executed; call Drain() before stopping")));
      }
      pending_.clear();
      armed_deadlines_ = 0;
    }
  }
  dispatch_cv_.NotifyAll();
  watchdog_cv_.NotifyAll();
  space_cv_.NotifyAll();
  drained_cv_.NotifyAll();
}

std::unique_ptr<ReplicaPool> InferenceEngine::MakeReplicaPool(
    const core::Method* method) const {
  if (method->reentrant_predict()) return nullptr;
  const int slots = options_.num_replicas > 0 ? options_.num_replicas
                                              : parallel::NumTrainWorkers();
  if (slots <= 1) return nullptr;
  return std::make_unique<ReplicaPool>(method, slots);
}

int InferenceEngine::num_replica_slots() const {
  // Under mu_: SwapWeights replaces the pool at the flip (the unlocked read
  // this used to do was benign only while no caller overlapped a swap —
  // surfaced by -Wthread-safety, fixed by locking).
  support::MutexLock lock(mu_);
  return replicas_ != nullptr ? replicas_->size() : 1;
}

InferenceEngineStats InferenceEngine::stats() const {
  support::MutexLock lock(mu_);
  InferenceEngineStats snapshot = stats_;
  // method_/replicas_ are stable under mu_ (SwapWeights flips them under the
  // same lock); replica slot 0 aliases method_, so start the sum at slot 1.
  snapshot.plan = method_->plan_stats();
  if (replicas_ != nullptr) {
    for (int slot = 1; slot < replicas_->size(); ++slot) {
      snapshot.plan += replicas_->method(slot)->plan_stats();
    }
  }
  if (encode_cache_ != nullptr) snapshot.encode_cache = encode_cache_->stats();
  return snapshot;
}

std::future<Tensor> InferenceEngine::FailedFuture(std::exception_ptr error) {
  std::promise<Tensor> promise;
  promise.set_exception(std::move(error));
  return promise.get_future();
}

std::future<Tensor> InferenceEngine::Submit(const data::TrajectorySequence& scene) {
  return SubmitImpl(/*has_explicit_id=*/false, 0, scene, SubmitOptions());
}

std::future<Tensor> InferenceEngine::Submit(const data::TrajectorySequence& scene,
                                            const SubmitOptions& submit_options) {
  return SubmitImpl(/*has_explicit_id=*/false, 0, scene, submit_options);
}

std::future<Tensor> InferenceEngine::Submit(uint64_t request_id,
                                            const data::TrajectorySequence& scene) {
  return SubmitImpl(/*has_explicit_id=*/true, request_id, scene, SubmitOptions());
}

std::future<Tensor> InferenceEngine::Submit(uint64_t request_id,
                                            const data::TrajectorySequence& scene,
                                            const SubmitOptions& submit_options) {
  return SubmitImpl(/*has_explicit_id=*/true, request_id, scene, submit_options);
}

std::future<Tensor> InferenceEngine::SubmitImpl(bool has_explicit_id,
                                                uint64_t request_id,
                                                const data::TrajectorySequence& scene,
                                                const SubmitOptions& submit_options) {
  ADAPTRAJ_CHECK_MSG(submit_options.timeout_ms >= 0,
                     "Submit timeout_ms must be >= 0; got "
                         << submit_options.timeout_ms);
  std::future<Tensor> future;
  {
    support::MutexLock lock(mu_);
    const size_t bound = static_cast<size_t>(options_.max_queued_requests);
    if (!shutdown_ && bound > 0 && pending_.size() >= bound) {
      if (options_.overflow_policy == OverflowPolicy::kShed) {
        // Admission control: fail fast, never enqueue. The caller branches
        // on OverloadedError (retry with backoff, divert to another shard).
        ++stats_.requests;
        ++stats_.shed_requests;
        return FailedFuture(std::make_exception_ptr(OverloadedError(
            "request shed: the engine queue already holds " +
            std::to_string(pending_.size()) + " requests (max_queued_requests=" +
            std::to_string(options_.max_queued_requests) + ")")));
      }
      // Backpressure: park the producer until the dispatcher retires queue
      // entries — or shutdown turns the wait into a typed failure.
      ++blocked_callers_;
      while (!shutdown_ && pending_.size() >= bound) space_cv_.Wait(lock);
      --blocked_callers_;
      idle_cv_.NotifyAll();
    }
    if (shutdown_) {
      ++stats_.requests;
      ++stats_.rejected_requests;
      return FailedFuture(std::make_exception_ptr(
          EngineStoppedError("Submit on a stopped InferenceEngine")));
    }
    future = SubmitLocked(has_explicit_id ? request_id : next_auto_id_, scene,
                          submit_options);
  }
  dispatch_cv_.NotifyOne();
  if (submit_options.timeout_ms > 0) watchdog_cv_.NotifyOne();
  return future;
}

std::future<Tensor> InferenceEngine::SubmitLocked(uint64_t request_id,
                                                  const data::TrajectorySequence& scene,
                                                  const SubmitOptions& submit_options) {
  const uint64_t batch_size = static_cast<uint64_t>(options_.batch_size);
  if (request_id < next_batch_ * batch_size && options_.max_batch_delay_ms > 0) {
    // With the deadline enabled, the dispatcher retires slot space on a
    // timer the producers cannot observe, so an explicit id landing in an
    // already-flushed batch is an operational race, not a programming
    // error — deliver it through the future instead of aborting the server.
    ++stats_.requests;
    ++stats_.rejected_requests;
    return FailedFuture(std::make_exception_ptr(ServeError(
        "request id " + std::to_string(request_id) +
        " arrived after its batch was already flushed (a max_batch_delay_ms "
        "deadline flush or a concurrent Drain retired its slot range)")));
  }
  ADAPTRAJ_CHECK_MSG(request_id >= next_batch_ * batch_size,
                     "request id " << request_id << " belongs to batch "
                                   << request_id / batch_size
                                   << ", which already executed");
  ADAPTRAJ_CHECK_MSG(pending_.find(request_id) == pending_.end(),
                     "duplicate request id " << request_id);
  PendingRequest req;
  req.scene = scene;
  req.enqueue_time = Clock::now();
  if (submit_options.timeout_ms > 0) {
    req.has_deadline = true;
    req.deadline =
        req.enqueue_time + std::chrono::milliseconds(submit_options.timeout_ms);
    ++armed_deadlines_;
  }
  std::future<Tensor> future = req.promise.get_future();
  pending_.emplace(request_id, std::move(req));
  next_auto_id_ = std::max(next_auto_id_, request_id + 1);
  ++stats_.requests;
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth,
                                     static_cast<int64_t>(pending_.size()));
  return future;
}

void InferenceEngine::ExpireOverdueLocked(Clock::time_point now) {
  if (armed_deadlines_ <= 0) return;
  for (auto& entry : pending_) {
    PendingRequest& req = entry.second;
    if (!req.has_deadline || req.expired || req.deadline > now) continue;
    // Fail the future now, but keep the slot as a tombstone: removing the
    // entry would shift every later request's slot->batch mapping. The
    // tombstone pads away when its batch is collected; its scene is
    // released immediately so an expired backlog cannot pin memory.
    ++stats_.expired_requests;
    --armed_deadlines_;
    req.promise.set_exception(std::make_exception_ptr(DeadlineExceededError(
        "request at slot " + std::to_string(entry.first) +
        " spent longer than its timeout_ms queued and was expired before "
        "batch formation")));
    req.expired = true;
    req.scene = data::TrajectorySequence();
  }
}

Clock::time_point InferenceEngine::NextRequestDeadlineLocked() const {
  Clock::time_point next = Clock::time_point::max();
  if (armed_deadlines_ <= 0) return next;
  for (const auto& entry : pending_) {
    const PendingRequest& req = entry.second;
    if (req.has_deadline && !req.expired) next = std::min(next, req.deadline);
  }
  return next;
}

void InferenceEngine::Drain() {
  support::MutexLock lock(mu_);
  if (shutdown_) {
    throw EngineStoppedError("Drain on a stopped InferenceEngine");
  }
  if (!pending_.empty()) {
    // Out-of-order streams must be complete before the tail can be padded:
    // a hole would silently shift every later request one slot. (Expired
    // tombstones still hold their slots and count here.)
    const uint64_t first = next_batch_ * static_cast<uint64_t>(options_.batch_size);
    const uint64_t last = pending_.rbegin()->first;
    ADAPTRAJ_CHECK_MSG(pending_.size() == last - first + 1,
                       "Drain with missing request ids: have "
                           << pending_.size() << " pending in slot range ["
                           << first << ", " << last << "]");
    drain_until_slot_ = std::max(drain_until_slot_, last + 1);
  }
  const uint64_t target = drain_until_slot_;
  dispatch_cv_.NotifyOne();
  ++blocked_callers_;
  while (!shutdown_ &&
         !(next_batch_ * static_cast<uint64_t>(options_.batch_size) >= target &&
           !executing_)) {
    drained_cv_.Wait(lock);
  }
  --blocked_callers_;
  idle_cv_.NotifyAll();
  const bool complete =
      next_batch_ * static_cast<uint64_t>(options_.batch_size) >= target &&
      !executing_;
  if (!complete) {
    // Only reachable via shutdown: the engine stopped under the drainer.
    throw EngineStoppedError(
        "InferenceEngine shut down or destroyed while a Drain was waiting");
  }
}

void InferenceEngine::SwapWeights(const core::Method& source) {
  // Warm standby, built entirely outside the engine lock: traffic keeps
  // flowing while the clone and its replica pool are constructed.
  std::unique_ptr<core::Method> standby = source.CloneForServing();
  if (standby == nullptr) {
    throw ServeError("SwapWeights source method is not clonable "
                     "(CloneForServing returned nullptr)");
  }
  std::unique_ptr<ReplicaPool> standby_pool = MakeReplicaPool(standby.get());

  std::unique_ptr<core::Method> retired_method;
  std::unique_ptr<ReplicaPool> retired_pool;
  {
    support::MutexLock lock(mu_);
    // Flip at a batch boundary: the dispatcher captures method_/replicas_
    // under mu_ before releasing it to execute a group, so writing them
    // while !executing_ under mu_ can never race an in-flight group — and
    // every batch collected after the flip sees the new weights. Queued
    // requests are untouched.
    ++blocked_callers_;
    while (!shutdown_ && executing_) drained_cv_.Wait(lock);
    --blocked_callers_;
    idle_cv_.NotifyAll();
    if (shutdown_) {
      throw EngineStoppedError("SwapWeights on a stopped InferenceEngine");
    }
    retired_method = std::move(owned_method_);
    retired_pool = std::move(replicas_);
    method_ = standby.get();
    owned_method_ = std::move(standby);
    replicas_ = std::move(standby_pool);
    if (encode_cache_ != nullptr) {
      // Atomic with the flip: we hold mu_ and no group is executing, so no
      // lookup can observe an old-weights entry after the new method serves.
      encode_cache_->Invalidate();
    }
    ++stats_.weight_swaps;
  }
  // The retired method and pool are destroyed here, outside the lock.
}

uint64_t InferenceEngine::ContiguousRunLocked() const {
  const uint64_t first_slot =
      next_batch_ * static_cast<uint64_t>(options_.batch_size);
  uint64_t run = 0;
  for (auto it = pending_.lower_bound(first_slot);
       it != pending_.end() && it->first == first_slot + run; ++it) {
    ++run;
  }
  return run;
}

std::vector<InferenceEngine::ReadyBatch> InferenceEngine::CollectGroupLocked(
    bool include_partial_tail) {
  const uint64_t batch_size = static_cast<uint64_t>(options_.batch_size);
  const uint64_t run = ContiguousRunLocked();
  const uint64_t ready_full = run / batch_size;
  const uint64_t tail_rows = include_partial_tail ? run % batch_size : 0;
  const uint64_t total = ready_full + (tail_rows > 0 ? 1 : 0);
  const Clock::time_point now = Clock::now();

  std::vector<ReadyBatch> group;
  group.reserve(total);
  uint64_t slot = next_batch_ * batch_size;
  for (uint64_t b = 0; b < total; ++b) {
    const uint64_t rows = b < ready_full ? batch_size : tail_rows;
    ReadyBatch rb;
    rb.index = next_batch_;
    rb.scenes.reserve(rows);
    rb.promises.reserve(rows);
    rb.expired.reserve(rows);
    for (uint64_t r = 0; r < rows; ++r, ++slot) {
      auto it = pending_.find(slot);
      PendingRequest& req = it->second;
      rb.scenes.push_back(std::move(req.scene));
      rb.promises.push_back(std::move(req.promise));
      rb.expired.push_back(req.expired ? 1 : 0);
      if (!req.expired) {
        ++rb.live_rows;
        stats_.queue_wait.Record(Seconds(req.enqueue_time, now));
        if (req.has_deadline) --armed_deadlines_;
      }
      pending_.erase(it);
    }
    group.push_back(std::move(rb));
    ++next_batch_;
  }
  // A padded tail consumes its whole batch of the slot space: implicit
  // submissions after a flush continue at the next batch boundary.
  next_auto_id_ = std::max(next_auto_id_, next_batch_ * batch_size);
  // A deadline flush can pad past a slot hole in an out-of-order stream,
  // retiring the batch of a request still pending BEHIND the hole. That
  // request can never execute in its assigned slot: reject it through its
  // future now, or it would hang forever (and, as pending_.begin(), anchor
  // every future deadline at its stale enqueue time). Only the deadline
  // path can strand: Drain refuses holes up front, and a full-batch flush
  // consumes nothing beyond the contiguous collected run.
  const uint64_t boundary = next_batch_ * batch_size;
  while (!pending_.empty() && pending_.begin()->first < boundary) {
    auto it = pending_.begin();
    if (!it->second.expired) {
      if (it->second.has_deadline) --armed_deadlines_;
      ++stats_.rejected_requests;
      it->second.promise.set_exception(std::make_exception_ptr(ServeError(
          "request id " + std::to_string(it->first) +
          " was stranded behind a slot hole when the max_batch_delay_ms "
          "deadline flush retired its batch")));
    }
    pending_.erase(it);
  }
  return group;
}

void InferenceEngine::RunOneBatch(ReadyBatch* rb, const core::Method* method,
                                  const core::Method* master) const {
  const Clock::time_point t0 = Clock::now();
  try {
    NoGradGuard no_grad;
    const size_t rows = rb->scenes.size();
    const size_t width = static_cast<size_t>(options_.batch_size);
    // Rows keep their slot position; expired tombstone rows (and the padded
    // tail beyond `rows`) are filled by cycling the LIVE scenes, computed,
    // and discarded — exactly the property partial-tail padding has always
    // relied on: each row's result depends only on its own scene, its row
    // index, and the batch's noise stream.
    std::vector<size_t> live;
    live.reserve(rb->live_rows);
    for (size_t r = 0; r < rows; ++r) {
      if (!rb->expired[r]) live.push_back(r);
    }
    if (live.empty()) {
      // Every row expired before execution; promises already failed. The
      // batch retires without computing anything.
      rb->exec_seconds = Seconds(t0, Clock::now());
      return;
    }
    std::vector<const data::TrajectorySequence*> slots;
    slots.reserve(width);
    size_t pad_cursor = 0;
    for (size_t r = 0; r < width; ++r) {
      if (r < rows && !rb->expired[r]) {
        slots.push_back(&rb->scenes[r]);
      } else {
        slots.push_back(&rb->scenes[live[pad_cursor++ % live.size()]]);
      }
    }
    data::Batch batch = data::MakeBatch(slots, options_.sequence);
    Rng rng(core::TaskSeed(options_.seed, rb->index));
    Tensor pred = PredictThroughCache(batch, slots, method, master, &rng);
    rb->results.assign(rows, Tensor());
    for (size_t r : live) {
      // Slice copies the row into fresh storage, and under no-grad attaches
      // no graph edge back to `pred`: a caller that keeps this tensor alive
      // retains pred_len*2 floats, never the whole batch buffer (asserted by
      // PerRequestResultsAreIndependentStorage).
      rb->results[r] = ops::Slice(pred, 0, static_cast<int64_t>(r),
                                  static_cast<int64_t>(r) + 1);
    }
  } catch (...) {
    // Deliver the original error through the batch's futures instead of
    // abandoning the promises (which would surface as an opaque
    // broken_promise at every future.get()).
    rb->results.clear();
    rb->error = std::current_exception();
  }
  rb->exec_seconds = Seconds(t0, Clock::now());
}

Tensor InferenceEngine::PredictThroughCache(
    const data::Batch& batch,
    const std::vector<const data::TrajectorySequence*>& slots,
    const core::Method* method, const core::Method* master, Rng* rng) const {
  if (encode_cache_ == nullptr || batch.batch_size == 0) {
    return method->Predict(batch, rng, options_.sample);
  }
  // Version of the served MASTER, not the per-batch replica: replicas are
  // structural clones whose counter stays 0, while an in-place Train() on a
  // live served method — the staleness this guards against — bumps the
  // master's. Concurrent batches pass the same value; the first clears.
  // `master` is the dispatcher's under-mu_ capture of method_, stable for
  // the whole group (SwapWeights flips only at a batch boundary).
  encode_cache_->InvalidateIfVersionChanged(master->weights_version());

  const int64_t width = method->predict_encode_width();
  const int64_t rows = batch.batch_size;
  const bool with_neighbors = method->encode_reads_neighbors();
  const std::string& identity = encode_cache_->options().identity;
  Tensor enc_rows = Tensor::Zeros({rows, width});

  // One key per row; duplicate keys (padding cycles the live scenes, and
  // identical scenes can land in one batch) are resolved to a single
  // representative row so each distinct encoder input is looked up — and on
  // a miss, encoded — exactly once per batch.
  std::vector<std::string> keys(static_cast<size_t>(rows));
  std::unordered_map<std::string, int64_t> first_of_key;
  first_of_key.reserve(static_cast<size_t>(rows));
  std::vector<std::pair<int64_t, int64_t>> aliases;  // (row, representative)
  std::vector<int64_t> miss_rows;                    // representatives to encode
  int64_t hit_count = 0;
  for (int64_t r = 0; r < rows; ++r) {
    keys[r] = SceneEncodeKey(identity, batch, r, with_neighbors);
    auto inserted = first_of_key.emplace(keys[r], r);
    if (!inserted.second) {
      aliases.emplace_back(r, inserted.first->second);
      continue;
    }
    if (encode_cache_->Lookup(keys[r], enc_rows.data() + r * width, width)) {
      ++hit_count;
    } else {
      miss_rows.push_back(r);
    }
  }

  if (!miss_rows.empty()) {
    if (hit_count == 0 && aliases.empty()) {
      // Nothing cached and every row distinct: encode the original batch
      // directly — the cold-traffic path costs no re-batching over an
      // uncached engine.
      enc_rows = method->PredictEncode(batch);
    } else {
      // Re-batch only the unseen scenes, padded to the full batch's
      // neighbor-slot width so each sub-batch row is byte-identical to its
      // key (row r of Encode(sub-batch) == row r of Encode(full batch) at
      // equal bytes and equal M — the per-row purity contract).
      std::vector<const data::TrajectorySequence*> miss_slots;
      miss_slots.reserve(miss_rows.size());
      for (int64_t r : miss_rows) {
        miss_slots.push_back(slots[static_cast<size_t>(r)]);
      }
      data::Batch miss_batch = data::MakeBatch(miss_slots, options_.sequence,
                                               batch.max_neighbors);
      Tensor packed = method->PredictEncode(miss_batch);
      for (size_t i = 0; i < miss_rows.size(); ++i) {
        std::memcpy(enc_rows.data() + miss_rows[i] * width,
                    packed.data() + static_cast<int64_t>(i) * width,
                    static_cast<size_t>(width) * sizeof(float));
      }
    }
    for (int64_t r : miss_rows) {
      encode_cache_->Insert(keys[static_cast<size_t>(r)],
                            enc_rows.data() + r * width, width);
    }
  }
  for (const auto& alias : aliases) {
    std::memcpy(enc_rows.data() + alias.first * width,
                enc_rows.data() + alias.second * width,
                static_cast<size_t>(width) * sizeof(float));
  }
  return method->PredictDecode(batch, enc_rows, rng, options_.sample);
}

void InferenceEngine::ExecuteGroup(std::vector<ReadyBatch>* group,
                                   const core::Method* master,
                                   const ReplicaPool* replicas) const {
  if (master->reentrant_predict()) {
    // Reentrant Predict: every batch shares the master model; full
    // cross-batch concurrency on the training-worker pool.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(group->size());
    for (ReadyBatch& rb : *group) {
      tasks.push_back([this, &rb, master] { RunOneBatch(&rb, master, master); });
    }
    parallel::RunTaskGroup(tasks);
  } else if (replicas != nullptr && replicas->size() > 1) {
    // Non-reentrant Predict with a replica pool: waves of consecutive batch
    // indices. Batch b is pinned to replica b % R, so wave members never
    // share an instance and the non-reentrant body never runs concurrently
    // on one model.
    const size_t width = static_cast<size_t>(replicas->size());
    for (size_t base = 0; base < group->size(); base += width) {
      const size_t end = std::min(group->size(), base + width);
      std::vector<std::function<void()>> wave;
      wave.reserve(end - base);
      for (size_t i = base; i < end; ++i) {
        ReadyBatch& rb = (*group)[i];
        wave.push_back([this, &rb, master, replicas] {
          RunOneBatch(&rb, replicas->MethodForBatch(rb.index), master);
        });
      }
      parallel::RunTaskGroup(wave);
    }
  } else {
    // Non-reentrant and not clonable (or replicas disabled): one at a time.
    for (ReadyBatch& rb : *group) RunOneBatch(&rb, master, master);
  }
}

void InferenceEngine::DispatcherLoop() {
  const uint64_t batch_size = static_cast<uint64_t>(options_.batch_size);
  const uint64_t max_buffered = static_cast<uint64_t>(
      options_.max_buffered_batches > 0 ? options_.max_buffered_batches
                                        : parallel::NumTrainWorkers());
  const auto delay = std::chrono::milliseconds(options_.max_batch_delay_ms);

  support::MutexLock lock(mu_);
  while (!shutdown_) {
    // Expire BEFORE batch formation: a request whose deadline has passed
    // must never enter a batch. (The watchdog covers the window where the
    // dispatcher is blocked inside an execution group.)
    ExpireOverdueLocked(Clock::now());
    const uint64_t run = ContiguousRunLocked();
    const bool drain_needed = drain_until_slot_ > next_batch_ * batch_size;
    const bool full_ready = run / batch_size >= max_buffered;
    bool deadline_due = false;
    std::chrono::steady_clock::time_point deadline{};
    if (options_.max_batch_delay_ms > 0 && run > 0) {
      // The deadline measures the age of the request at the head of the
      // queue (the first slot of the contiguous run — for an out-of-order
      // stream, the arrival that unblocked the head).
      deadline = pending_.begin()->second.enqueue_time + delay;
      deadline_due = Clock::now() >= deadline;
    }

    if (!drain_needed && !full_ready && !deadline_due) {
      if (options_.max_batch_delay_ms > 0 && run > 0) {
        dispatch_cv_.WaitUntil(lock, deadline);
      } else {
        dispatch_cv_.Wait(lock);
      }
      continue;  // re-evaluate everything after any wakeup
    }

    // Every trigger implies at least one executable batch: full_ready means
    // a whole batch is buffered, and drain/deadline imply a non-empty run
    // whose tail is included below.
    const bool include_tail = drain_needed || deadline_due;
    std::vector<ReadyBatch> group = CollectGroupLocked(include_tail);
    ADAPTRAJ_CHECK_MSG(!group.empty(),
                       "dispatcher triggered with no executable batch (run="
                           << run << ", next_batch=" << next_batch_ << ")");
    executing_ = true;
    exec_start_ = Clock::now();
    stuck_reported_ = false;
    stats_.inflight_batches = static_cast<int64_t>(group.size());
    const int64_t deadline_hits = (deadline_due && !drain_needed) ? 1 : 0;
    // Capture the served instance while still under mu_: SwapWeights flips
    // method_/replicas_ only while !executing_, so these stay valid for the
    // whole group, and the execution path below never reads the guarded
    // fields unlocked.
    const core::Method* master = method_;
    const ReplicaPool* replicas = replicas_.get();
    // Collection retired queue entries: admit blocked producers, and arm the
    // watchdog's stuck-batch timer.
    space_cv_.NotifyAll();
    watchdog_cv_.NotifyAll();
    lock.Unlock();
    ExecuteGroup(&group, master, replicas);
    lock.Lock();
    // Count first, fulfil second, both under mu_: a caller that wakes on a
    // ready future (or returns from Drain) observes counters that already
    // include its batch. Fully-expired batches retired without executing
    // count nowhere — their promises were already failed by the deadline.
    stats_.deadline_flushes += deadline_hits;
    for (const ReadyBatch& rb : group) {
      if (rb.live_rows == 0) continue;
      ++stats_.batches;
      stats_.batch_exec.Record(rb.exec_seconds);
      if (rb.error != nullptr) {
        ++stats_.failed_batches;
      } else {
        stats_.padded_rows +=
            options_.batch_size - static_cast<int64_t>(rb.live_rows);
      }
    }
    // Fulfil promises in slot order; RunTaskGroup's completion barrier
    // published the task writes. A failed batch delivers its exception to
    // exactly its own live futures — later batches are unaffected, and
    // expired tombstone rows already carry DeadlineExceededError.
    for (ReadyBatch& rb : group) {
      for (size_t r = 0; r < rb.promises.size(); ++r) {
        if (rb.expired[r]) continue;
        if (rb.error != nullptr) {
          rb.promises[r].set_exception(rb.error);
        } else {
          rb.promises[r].set_value(std::move(rb.results[r]));
        }
      }
    }
    executing_ = false;
    stats_.inflight_batches = 0;
    drained_cv_.NotifyAll();
  }
}

void InferenceEngine::WatchdogLoop() {
  const auto warn = std::chrono::milliseconds(options_.stuck_batch_warn_ms);
  support::MutexLock lock(mu_);
  while (!shutdown_) {
    const Clock::time_point now = Clock::now();
    // Deadline expiry must make progress even while the dispatcher is
    // blocked inside ExecuteGroup — queued requests behind a wedged batch
    // are exactly the ones that need their deadline honored.
    ExpireOverdueLocked(now);
    if (executing_ && options_.stuck_batch_warn_ms > 0 && !stuck_reported_ &&
        now >= exec_start_ + warn) {
      stuck_reported_ = true;
      ++stats_.stuck_batches;
      const int64_t elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - exec_start_)
              .count();
      if (options_.on_stuck_batch) {
        // Mutex released around user code: the callback may call stats(),
        // Submit, or anything else on this engine.
        auto callback = options_.on_stuck_batch;
        lock.Unlock();
        callback(elapsed_ms);
        lock.Lock();
      }
      continue;  // re-evaluate: the group may have finished meanwhile
    }
    Clock::time_point wake = NextRequestDeadlineLocked();
    if (executing_ && options_.stuck_batch_warn_ms > 0 && !stuck_reported_) {
      wake = std::min(wake, exec_start_ + warn);
    }
    if (wake == Clock::time_point::max()) {
      watchdog_cv_.Wait(lock);
    } else {
      watchdog_cv_.WaitUntil(lock, wake);
    }
  }
}

}  // namespace serve
}  // namespace adaptraj
