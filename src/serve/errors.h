// Typed exception taxonomy of the serving layer.
//
// The engine's failure-delivery spine is the per-future exception channel:
// whatever prevents a request from producing a prediction — overload
// shedding, a per-request deadline, engine shutdown, or a fault inside the
// batch — reaches the caller by rethrowing from future.get(). Bare
// std::runtime_error forced every caller into string matching; these types
// let a front-end branch on cause (shed -> retry elsewhere with backoff,
// deadline -> drop the stale frame, stopped -> reconnect) while staying
// catchable as std::runtime_error for callers that do not care.
//
// The taxonomy deliberately covers only failures the ENGINE originates.
// An exception thrown by the served Method's Predict (or tensorization,
// or allocation) is delivered through the same channel with its original
// type — the engine never wraps or replaces application errors.
//
// Library policy note (tensor/status.h): programming errors still hit
// ADAPTRAJ_CHECK and abort. ServeError covers *operational* conditions —
// outcomes a correctly written caller can provoke at runtime through load,
// timing, or lifecycle — which must never take down a server.

#ifndef ADAPTRAJ_SERVE_ERRORS_H_
#define ADAPTRAJ_SERVE_ERRORS_H_

#include <stdexcept>
#include <string>

namespace adaptraj {
namespace serve {

/// Base of every engine-originated request failure. Derives from
/// std::runtime_error so pre-taxonomy call sites keep working unchanged.
class ServeError : public std::runtime_error {
 public:
  explicit ServeError(const std::string& what) : std::runtime_error(what) {}
};

/// Admission control rejected the request: the queue already held
/// InferenceEngineOptions::max_queued_requests entries and the overflow
/// policy was kShed. The request was never enqueued; retry with backoff or
/// divert to another shard.
class OverloadedError : public ServeError {
 public:
  explicit OverloadedError(const std::string& what) : ServeError(what) {}
};

/// The request's deadline passed while it was still queued (it never began
/// executing); the dispatcher expired it before batch formation. Requests
/// that already entered a batch always run to completion.
class DeadlineExceededError : public ServeError {
 public:
  explicit DeadlineExceededError(const std::string& what) : ServeError(what) {}
};

/// The engine stopped (Shutdown() or destruction) before the request could
/// be served: a Submit after shutdown, a queued request failed at shutdown,
/// or a Drain/SwapWeights interrupted by shutdown.
class EngineStoppedError : public ServeError {
 public:
  explicit EngineStoppedError(const std::string& what) : ServeError(what) {}
};

}  // namespace serve
}  // namespace adaptraj

#endif  // ADAPTRAJ_SERVE_ERRORS_H_
