// Async batched inference engine: the query-path counterpart of
// ParallelTrainer.
//
// A serving deployment receives one scene per request from many connection
// threads, but the backbones are far more efficient on coalesced batches
// (one graph, batched GEMMs). The engine accepts per-scene requests from any
// number of producer threads, coalesces them into fixed-size batches on a
// persistent dispatcher thread, runs the owned Method's Predict (forward-only
// under NoGradGuard) on the training-worker pool, and delivers each request's
// prediction — or the exception that prevented it — through a future.
//
// Threading model:
//   - Submit is thread-safe and NON-BLOCKING with respect to execution: it
//     enqueues the request under the engine mutex, wakes the dispatcher, and
//     returns the future. It never tensorizes, never runs Predict, and never
//     waits for a batch on the caller thread.
//   - One persistent DISPATCHER thread owns batch formation and execution.
//     It sleeps on a condition variable until (a) at least
//     `max_buffered_batches` full batches are ready, (b) a Drain is
//     outstanding, or (c) `max_batch_delay_ms` expired on the request at the
//     head of the queue — then it collects the ready prefix (decided under
//     the mutex), releases the mutex, and executes the batches as task
//     groups on the training-worker pool (parallel::RunTaskGroup). The
//     dispatcher is the only thread that calls RunTaskGroup on the serving
//     path, so the worker x kernel-thread budget of tensor/parallel.h is
//     never multiplied by producer count.
//   - Drain is thread-safe, blocks the caller until every request submitted
//     before the call has its future ready, and — like the PR-4 engine —
//     pads the final underfull batch. Concurrent IMPLICIT-id producers may
//     race a Drain freely (their slots are contiguous by construction;
//     which requests land before the drain point is the callers'
//     coordination problem). EXPLICIT-id producers must be quiesced first:
//     a strided stream caught mid-flight leaves a transient slot hole,
//     which Drain treats as the checked error documented on the method.
//     Each executed batch is still computed exactly as documented below.
//   - The destructor does NOT drain: it stops the dispatcher after the
//     in-flight group (if any) completes and fails every still-pending
//     promise with a descriptive std::runtime_error. Call Drain first for a
//     graceful shutdown. No future ever observes std::future_error
//     (broken_promise).
//
// Error delivery: Predict / MakeBatch failures inside a batch are caught and
// delivered through std::promise::set_exception to exactly that batch's
// futures — future.get() rethrows the original exception. The failed batch
// is retired (its slots are consumed) and the engine keeps serving later
// batches. The library itself reports programming errors via ADAPTRAJ_CHECK
// (which aborts); the exceptions this machinery carries come from external
// Method implementations, allocation failure, and the like.
//
// Determinism model (mirrors the ParallelTrainer contract):
//   - Every request occupies a SLOT in a global sequence: slot r belongs to
//     batch r / batch_size at row r % batch_size. Slots are assigned by
//     submission order, or explicitly by the caller (Submit with request_id)
//     for streams that arrive out of order — with explicit ids, producer
//     count and wire interleaving cannot change the slot->batch mapping. The
//     engine buffers a batch until all of its slots are present.
//   - Batch b draws its sampling noise from an Rng seeded
//     core::TaskSeed(options.seed, b): a private stream per batch,
//     independent of execution interleaving, worker count, and replica slot.
//   - A partial batch is padded to the fixed width by cycling its real
//     scenes; padded rows are computed and discarded. Padding happens at a
//     FLUSH POINT — a Drain, or a max_batch_delay_ms expiry — and the flush
//     schedule is part of the request schedule: it decides that batch's
//     composition exactly as in the PR-4 engine. With the deadline disabled
//     (the default), flush points are the Drain calls alone and results are
//     byte-identical to the synchronous engine for any producer count,
//     worker count, and dispatch cadence at a fixed seed (asserted by
//     tests/serve/).
//   - Reentrant methods execute ready batches concurrently on the shared
//     master model. Non-reentrant methods (LBEBM: the Langevin sampler
//     writes its model's gradient buffers) execute on a serve::ReplicaPool
//     of private model copies, batch b pinned to replica b % R, in waves
//     whose members never share a replica — concurrency without the data
//     race, bit-identical to serialized execution because the replicas hold
//     byte-identical parameters and every kernel is bit-deterministic for
//     any thread count (see tensor/parallel.h). If the method cannot be
//     cloned (Method::CloneForServing returns nullptr) or the pool is capped
//     at one slot, batches run one at a time as before.
//
// Memory: per-request results are materialized as independent [1,
// pred_len*2] tensors (ops::Slice copies rows into fresh storage and no-grad
// mode attaches no graph back to the batch output), so a caller that holds a
// future's tensor for a long time retains ~pred_len*2 floats, never the
// whole [batch_size, pred_len*2] batch buffer.

#ifndef ADAPTRAJ_SERVE_INFERENCE_ENGINE_H_
#define ADAPTRAJ_SERVE_INFERENCE_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/method.h"
#include "serve/replica_pool.h"

namespace adaptraj {
namespace serve {

/// Configuration of one engine instance.
struct InferenceEngineOptions {
  /// Fixed coalescing width. Every executed batch has exactly this many
  /// rows; partial tails are padded.
  int batch_size = 32;
  /// Draw one of the multi-modal futures (true) or the most-likely one.
  bool sample = true;
  /// Base seed of the per-batch noise streams.
  uint64_t seed = 0;
  /// Window configuration used to tensorize submitted scenes.
  data::SequenceConfig sequence;
  /// Full batches buffered before the dispatcher executes a group; more
  /// batching per RunTaskGroup call amortizes pool handoff. 0 = the
  /// training-worker count (parallel::NumTrainWorkers()).
  int max_buffered_batches = 0;
  /// Deadline flush: when > 0, the dispatcher executes the pending
  /// contiguous prefix — padding an underfull tail — once the request at the
  /// head of the queue has waited this long, so a lone request is served
  /// without a Drain. 0 (default) disables the deadline; partial batches
  /// then wait for Drain, which keeps batch composition independent of
  /// timing (the determinism-test configuration).
  int max_batch_delay_ms = 0;
  /// Replica slots for non-reentrant methods (see serve::ReplicaPool).
  /// 0 = auto: the training-worker count. 1 = no copies, serialize batches.
  /// Ignored for reentrant methods, which share the master safely.
  int num_replicas = 0;
};

/// Cumulative counters for tests and telemetry. Values are a coherent
/// snapshot taken under the engine mutex (see InferenceEngine::stats).
struct InferenceEngineStats {
  int64_t requests = 0;          // scenes submitted
  int64_t batches = 0;           // batches executed (including failed ones)
  int64_t padded_rows = 0;       // rows computed for padding and discarded
  int64_t failed_batches = 0;    // batches whose futures carry an exception
  int64_t deadline_flushes = 0;  // flushes triggered by max_batch_delay_ms
  /// Explicit-id submissions that lost the race against a deadline flush and
  /// were rejected through their future (only possible with
  /// max_batch_delay_ms > 0).
  int64_t rejected_requests = 0;
};

/// Coalescing async batch server over one trained Method. See the file
/// comment for the threading, error-delivery, and determinism model.
class InferenceEngine {
 public:
  /// Serves a method owned elsewhere; `method` must outlive the engine.
  InferenceEngine(const core::Method* method, const InferenceEngineOptions& options);
  /// Takes ownership of the method.
  InferenceEngine(std::unique_ptr<core::Method> method,
                  const InferenceEngineOptions& options);

  /// Stops the dispatcher and fails still-pending promises (see the file
  /// comment); does not drain. Must not race other member calls, per the
  /// usual object-lifetime rules.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues a scene at the next free slot (submission order) and returns a
  /// future for that scene's predicted displacements [1, pred_len*2]. The
  /// scene is copied; the caller's storage is not retained. Thread-safe;
  /// never executes batches on the caller thread. NOTE: with multiple
  /// producer threads the slot a request gets depends on lock acquisition
  /// order — use the explicit-id overload when the slot must be
  /// reproducible.
  std::future<Tensor> Submit(const data::TrajectorySequence& scene);

  /// Enqueues a scene at an explicit slot, for request streams that arrive
  /// out of order or from several producer threads. Slots must be unique and
  /// must not precede an already executed batch (a checked error — except
  /// with max_batch_delay_ms enabled, where a deadline flush can retire slot
  /// space on a timer the producers cannot observe: an id that loses that
  /// race is rejected through its future instead, as is an already-pending
  /// id stranded behind a slot hole the deadline padded past). The engine
  /// holds a batch until every one of its slots has arrived.
  std::future<Tensor> Submit(uint64_t request_id, const data::TrajectorySequence& scene);

  /// Flushes everything pending — including a padded partial tail — and
  /// blocks until every request submitted before this call has its future
  /// ready (fulfilled or failed). All slots up to the highest submitted one
  /// must be present (a gap in an out-of-order stream is a checked error),
  /// so quiesce explicit-id producers — join them, or otherwise ensure their
  /// slot ranges are complete — before calling Drain: a strided producer
  /// caught mid-stream leaves transient holes. Implicit-id producers assign
  /// contiguous slots under the engine mutex and can never create a hole, so
  /// Drain may race them freely (which of their requests land before the
  /// flush is then timing-dependent, as the file comment describes).
  void Drain();

  /// Coherent snapshot of the cumulative counters.
  InferenceEngineStats stats() const;
  const InferenceEngineOptions& options() const { return options_; }
  const core::Method& method() const { return *method_; }
  /// Concurrency slots for non-reentrant methods: the replica-pool size, or
  /// 1 when batches are serialized. Reentrant methods report 1 (they share
  /// the master without a pool).
  int num_replica_slots() const;

 private:
  struct PendingRequest {
    data::TrajectorySequence scene;
    std::promise<Tensor> promise;
    std::chrono::steady_clock::time_point enqueue_time;
  };

  /// One executable batch: its index, its real scenes in slot order (moved
  /// out of the pending map at collection), and the per-request promises.
  struct ReadyBatch {
    uint64_t index = 0;
    std::vector<data::TrajectorySequence> scenes;
    std::vector<std::promise<Tensor>> promises;
    std::vector<Tensor> results;  // one per real row on success
    std::exception_ptr error;     // set instead of results on failure
  };

  void DispatcherLoop();
  /// Validates the slot, records the request, and returns its future.
  /// Caller holds mu_ (the shared body of both Submit overloads).
  std::future<Tensor> SubmitLocked(uint64_t request_id,
                                   const data::TrajectorySequence& scene);
  /// Length of the contiguous pending-slot run starting at the next
  /// unexecuted batch boundary. Caller holds mu_.
  uint64_t ContiguousRunLocked() const;
  /// Moves the ready prefix (full batches; with `include_partial_tail` also
  /// the underfull tail) out of the pending map and advances the slot
  /// cursors. Caller holds mu_.
  std::vector<ReadyBatch> CollectGroupLocked(bool include_partial_tail);
  /// Executes a collected group on the worker pool, filling each batch's
  /// results or error. Runs on the dispatcher with mu_ released; the
  /// dispatcher then updates stats and fulfills the promises under mu_.
  void ExecuteGroup(std::vector<ReadyBatch>* group);
  void RunOneBatch(ReadyBatch* rb, const core::Method* method) const;

  const core::Method* method_;
  std::unique_ptr<core::Method> owned_method_;
  InferenceEngineOptions options_;
  /// Private model copies for non-reentrant methods; null when the master is
  /// shared (reentrant) or serialization is requested (num_replicas == 1).
  std::unique_ptr<ReplicaPool> replicas_;

  mutable std::mutex mu_;
  /// Wakes the dispatcher (new work, drain, shutdown).
  std::condition_variable dispatch_cv_;
  /// Wakes Drain waiters (a group finished executing).
  std::condition_variable drained_cv_;
  /// Requests keyed by slot id; entries move out when their batch is
  /// collected for execution.
  std::map<uint64_t, PendingRequest> pending_;
  /// Next slot assigned by the implicit Submit overload.
  uint64_t next_auto_id_ = 0;
  /// First batch index that has not been collected for execution yet.
  uint64_t next_batch_ = 0;
  /// Exclusive slot bound the dispatcher must flush through (max over
  /// outstanding Drain calls).
  uint64_t drain_until_slot_ = 0;
  /// True while the dispatcher is executing a group outside the mutex.
  bool executing_ = false;
  bool shutdown_ = false;
  InferenceEngineStats stats_;
  std::thread dispatcher_;
};

}  // namespace serve
}  // namespace adaptraj

#endif  // ADAPTRAJ_SERVE_INFERENCE_ENGINE_H_
