// Async batched inference engine with SLO guardrails: the query-path
// counterpart of ParallelTrainer, hardened for sustained overload, faults,
// and live weight refresh.
//
// A serving deployment receives one scene per request from many connection
// threads, but the backbones are far more efficient on coalesced batches
// (one graph, batched GEMMs). The engine accepts per-scene requests from any
// number of producer threads, coalesces them into fixed-size batches on a
// persistent dispatcher thread, runs the owned Method's Predict (forward-only
// under NoGradGuard) on the training-worker pool, and delivers each request's
// prediction — or the exception that prevented it — through a future.
//
// Threading model:
//   - Submit is thread-safe and NON-BLOCKING with respect to execution: it
//     enqueues the request under the engine mutex, wakes the dispatcher, and
//     returns the future. It never tensorizes, never runs Predict, and never
//     waits for a batch on the caller thread. (With max_queued_requests set
//     and OverflowPolicy::kBlock, Submit may block on QUEUE SPACE — that is
//     backpressure by configuration, never a wait on model execution beyond
//     the dispatcher retiring queue entries.)
//   - One persistent DISPATCHER thread owns batch formation and execution.
//     It sleeps on a condition variable until (a) at least
//     `max_buffered_batches` full batches are ready, (b) a Drain is
//     outstanding, (c) `max_batch_delay_ms` expired on the request at the
//     head of the queue, or (d) a queued request's deadline needs expiring —
//     then it expires overdue requests, collects the ready prefix (decided
//     under the mutex), releases the mutex, and executes the batches as task
//     groups on the training-worker pool (parallel::RunTaskGroup). The
//     dispatcher is the only thread that calls RunTaskGroup on the serving
//     path, so the worker x kernel-thread budget of tensor/parallel.h is
//     never multiplied by producer count.
//   - One persistent WATCHDOG thread covers the windows the dispatcher
//     cannot: it expires queued deadlines while the dispatcher is blocked
//     inside an execution group, and it detects an in-flight group that has
//     exceeded `stuck_batch_warn_ms` (counted in stats().stuck_batches and
//     reported once per group through the optional on_stuck_batch callback,
//     invoked with the engine mutex released). Detection never cancels the
//     group — kernels are not interruptible — it gives the layer above the
//     signal to shed, reroute, or alert while the batch is wedged.
//   - Drain is thread-safe, blocks the caller until every request submitted
//     before the call has its future ready, and pads the final underfull
//     batch. Concurrent IMPLICIT-id producers may race a Drain freely;
//     EXPLICIT-id producers must be quiesced first (see Drain). A Drain
//     interrupted by Shutdown()/destruction throws EngineStoppedError.
//
// Lifecycle: Shutdown() (idempotent, also run by the destructor) stops
// admission, fails every QUEUED request's future with EngineStoppedError,
// wakes blocked submitters and drainers (which throw EngineStoppedError),
// and stops the dispatcher after the in-flight group (if any) completes —
// in-flight requests still deliver results. Submit after shutdown returns an
// already-failed future (EngineStoppedError) instead of aborting. No future
// ever observes std::future_error (broken_promise). The destructor waits for
// blocked Drain/Submit/SwapWeights callers to leave before tearing down;
// as with any object, the caller must still ensure no NEW member calls
// begin once destruction has started.
//
// Failure delivery spine — every way a request can fail arrives through its
// future, with a typed exception (serve/errors.h) for engine-originated
// conditions:
//   - OverloadedError: admission control shed the request (queue full,
//     OverflowPolicy::kShed). Never enqueued; counted in shed_requests.
//   - DeadlineExceededError: the per-request deadline (SubmitOptions::
//     timeout_ms) expired while the request was still QUEUED. Expired
//     requests are failed before batch formation and their slot is retired
//     with the batch (padded like an absent row) — requests that DO execute
//     keep their slot, their row, and their noise stream, so their results
//     are byte-identical to a run without the expiry. A request whose batch
//     began executing always runs to completion, deadline notwithstanding.
//   - EngineStoppedError: shutdown/destruction reached the request first
//     (or rejected a Submit/Drain/SwapWeights after shutdown).
//   - ServeError: an explicit id that lost the race against a deadline
//     flush, or was stranded behind a slot hole the flush padded past.
//   - Application errors: Predict / MakeBatch / allocation failures inside a
//     batch are caught and delivered VERBATIM to exactly that batch's
//     futures — future.get() rethrows the original exception, the failed
//     batch is retired (slots consumed), and the engine keeps serving later
//     batches. The engine never wraps application errors.
// The library itself still reports programming errors (malformed ids,
// invalid options) via ADAPTRAJ_CHECK, which aborts.
//
// Admission control: `max_queued_requests` bounds the pending queue (0 =
// unbounded, the legacy behaviour). On overflow, OverflowPolicy::kShed fails
// the new request fast with OverloadedError — sustained 2x overload then
// holds memory at the bound and sheds the excess, with every submission
// accounted: requests == fulfilled + shed + expired + rejected + rows of
// failed batches (see InferenceEngineStats). kBlock instead parks the
// submitter until the dispatcher retires queue entries (classic
// backpressure; prefer implicit ids or an enabled deadline flush with
// kBlock — a blocked explicit-id producer whose own ids are needed to
// complete the head batch would otherwise wait on itself).
//
// SLO telemetry: stats() carries fixed log-bucket histograms (lock-cheap to
// record, snapshot by value) of per-request QUEUE WAIT (enqueue ->
// collection into a batch, accepted requests only) and per-batch EXECUTION
// time, so p50/p95/p99 are one Quantile() call away; plus counters for every
// disposition and a peak-queue-depth watermark. eval::MeasureEnginePoissonLoad
// drives the engine open-loop (Poisson arrivals) and reports
// throughput-vs-latency from these histograms.
//
// Hot-swap: SwapWeights(source) builds a warm standby — a CloneForServing
// copy of `source` (and, for non-reentrant methods, a standby ReplicaPool
// cloned from it) — entirely OUTSIDE the engine lock, then flips the engine
// to it at a batch boundary: the swap waits until no group is executing, so
// every batch (and therefore every request) is served entirely by the old
// weights or entirely by the new ones, bit-exactly — never a mix. Queued
// requests are never dropped by a swap; they simply execute on whichever
// side of the flip their batch lands. The old method and pool are released
// after the flip (also outside the lock). Counted in stats().weight_swaps.
//
// Determinism model (mirrors the ParallelTrainer contract):
//   - Every request occupies a SLOT in a global sequence: slot r belongs to
//     batch r / batch_size at row r % batch_size. Slots are assigned by
//     submission order, or explicitly by the caller (Submit with request_id)
//     for streams that arrive out of order — with explicit ids, producer
//     count and wire interleaving cannot change the slot->batch mapping. The
//     engine buffers a batch until all of its slots are present.
//   - Batch b draws its sampling noise from an Rng seeded
//     core::TaskSeed(options.seed, b): a private stream per batch,
//     independent of execution interleaving, worker count, and replica slot.
//   - A partial batch is padded to the fixed width by cycling its real
//     scenes; padded rows are computed and discarded. Padding happens at a
//     FLUSH POINT — a Drain, or a max_batch_delay_ms expiry — and the flush
//     schedule is part of the request schedule: it decides that batch's
//     composition exactly as in the PR-4 engine. With the deadline disabled
//     (the default), flush points are the Drain calls alone and results are
//     byte-identical to the synchronous engine for any producer count,
//     worker count, and dispatch cadence at a fixed seed (asserted by
//     tests/serve/). A deadline expiry removes only the EXPIRED request's
//     row content (its slot pads like a missing tail row); surviving rows'
//     bytes are unchanged — each row's result depends only on its own scene,
//     its row index, and its batch's noise stream, the same property padding
//     has always relied on.
//   - Reentrant methods execute ready batches concurrently on the shared
//     master model. Non-reentrant methods (LBEBM: the Langevin sampler
//     writes its model's gradient buffers) execute on a serve::ReplicaPool
//     of private model copies, batch b pinned to replica b % R, in waves
//     whose members never share a replica — concurrency without the data
//     race, bit-identical to serialized execution because the replicas hold
//     byte-identical parameters and every kernel is bit-deterministic for
//     any thread count (see tensor/parallel.h). If the method cannot be
//     cloned (Method::CloneForServing returns nullptr) or the pool is capped
//     at one slot, batches run one at a time as before.
//
// Encoder caching: when the served method supports the encode/decode split
// (core::Method::predict_encode_width() > 0) and the cache is enabled
// (options.encode_cache, kAuto following ADAPTRAJ_ENCODE_CACHE), the engine
// keys every batch row by its encoder-input bytes in a serve::EncodeCache
// and runs the encoder only for rows it has never seen: cached rows are
// gathered, miss rows are encoded in a sub-batch padded to the same
// neighbor-slot width, and the decode half runs over the full batch. Served
// bytes are IDENTICAL with the cache on or off — the cache stores exact
// encoder outputs keyed by exact encoder inputs, and every kernel is
// bit-deterministic (see serve/encode_cache.h for the correctness model).
// One cache is shared by the master and all replica clones (their weights
// are byte-identical). The cache invalidates when the served master's
// weights_version moves (an in-place Train) and at every SwapWeights flip.
// Methods without the split (e.g. fault-injection wrappers) serve through
// the combined Predict, cache or no cache.
//
// Memory: per-request results are materialized as independent [1,
// pred_len*2] tensors (ops::Slice copies rows into fresh storage and no-grad
// mode attaches no graph back to the batch output), so a caller that holds a
// future's tensor for a long time retains ~pred_len*2 floats, never the
// whole [batch_size, pred_len*2] batch buffer. With max_queued_requests set,
// queued scenes are bounded too — the engine's footprint under overload is
// O(bound), not O(offered load).

#ifndef ADAPTRAJ_SERVE_INFERENCE_ENGINE_H_
#define ADAPTRAJ_SERVE_INFERENCE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/method.h"
#include "serve/encode_cache.h"
#include "serve/errors.h"
#include "serve/latency_histogram.h"
#include "serve/replica_pool.h"
#include "support/sync.h"
#include "support/thread_annotations.h"

namespace adaptraj {
namespace serve {

/// What Submit does when the queue already holds max_queued_requests.
enum class OverflowPolicy {
  /// Fail the new request fast through its future (OverloadedError).
  kShed,
  /// Block the submitting thread until space frees (backpressure) or the
  /// engine shuts down (EngineStoppedError through the future).
  kBlock,
};

/// Configuration of one engine instance.
struct InferenceEngineOptions {
  /// Fixed coalescing width. Every executed batch has exactly this many
  /// rows; partial tails are padded.
  int batch_size = 32;
  /// Draw one of the multi-modal futures (true) or the most-likely one.
  bool sample = true;
  /// Base seed of the per-batch noise streams.
  uint64_t seed = 0;
  /// Window configuration used to tensorize submitted scenes.
  data::SequenceConfig sequence;
  /// Full batches buffered before the dispatcher executes a group; more
  /// batching per RunTaskGroup call amortizes pool handoff. 0 = the
  /// training-worker count (parallel::NumTrainWorkers()).
  int max_buffered_batches = 0;
  /// Deadline flush: when > 0, the dispatcher executes the pending
  /// contiguous prefix — padding an underfull tail — once the request at the
  /// head of the queue has waited this long, so a lone request is served
  /// without a Drain. 0 (default) disables the deadline; partial batches
  /// then wait for Drain, which keeps batch composition independent of
  /// timing (the determinism-test configuration).
  int max_batch_delay_ms = 0;
  /// Replica slots for non-reentrant methods (see serve::ReplicaPool).
  /// 0 = auto: the training-worker count. 1 = no copies, serialize batches.
  /// Ignored for reentrant methods, which share the master safely.
  int num_replicas = 0;
  /// Admission bound on the pending-request queue. 0 (default) = unbounded.
  /// On overflow, `overflow_policy` decides between shedding and blocking.
  int max_queued_requests = 0;
  /// Applied when a Submit finds the queue at max_queued_requests.
  OverflowPolicy overflow_policy = OverflowPolicy::kShed;
  /// Watchdog threshold: when > 0 and an execution group has been in flight
  /// this long, stats().stuck_batches increments and `on_stuck_batch` fires
  /// (once per group). 0 disables stuck detection; the watchdog thread then
  /// only serves deadline expiry.
  int stuck_batch_warn_ms = 0;
  /// Called by the watchdog (mutex released) when a group trips
  /// stuck_batch_warn_ms, with the group's elapsed milliseconds. Use it for
  /// graceful degradation above the engine: alert, reroute, pre-shed.
  std::function<void(int64_t elapsed_ms)> on_stuck_batch;
  /// Cross-request encoder cache (see the file comment): kAuto follows the
  /// ADAPTRAJ_ENCODE_CACHE kill-switch; kOn/kOff pin it programmatically.
  /// Only effective for methods supporting the encode/decode split.
  EncodeCacheMode encode_cache = EncodeCacheMode::kAuto;
  /// LRU byte budget of the encoder cache.
  int64_t encode_cache_bytes = 64ll << 20;
};

/// Per-request Submit options (the parameterless Submit overloads use the
/// defaults).
struct SubmitOptions {
  /// Deadline for QUEUED time: if the request has not been collected into a
  /// batch within this budget, it fails with DeadlineExceededError and its
  /// slot pads away. 0 = no deadline. A request that entered execution is
  /// never expired.
  int timeout_ms = 0;
};

/// Cumulative counters and latency histograms for tests and telemetry.
/// Values are a coherent snapshot taken under the engine mutex (see
/// InferenceEngine::stats). Disposition accounting: every submission lands
/// in exactly one of {fulfilled, shed_requests, expired_requests,
/// rejected_requests, stopped_requests, rows of failed batches}, so
/// fulfilled = requests - shed - expired - rejected - stopped - failed rows.
struct InferenceEngineStats {
  int64_t requests = 0;          // Submit calls, accepted or not
  int64_t batches = 0;           // batches executed (including failed ones)
  int64_t padded_rows = 0;       // rows computed for padding and discarded
  int64_t failed_batches = 0;    // batches whose futures carry an exception
  int64_t deadline_flushes = 0;  // flushes triggered by max_batch_delay_ms
  /// Requests refused without enqueueing: explicit ids that lost the race
  /// against a deadline flush, ids stranded behind a padded-past slot hole,
  /// and Submits after shutdown.
  int64_t rejected_requests = 0;
  /// Admission-control rejections (queue full, OverflowPolicy::kShed).
  int64_t shed_requests = 0;
  /// Queued requests failed by their per-request deadline.
  int64_t expired_requests = 0;
  /// Queued requests failed by Shutdown()/destruction before execution.
  int64_t stopped_requests = 0;
  /// Execution groups that exceeded stuck_batch_warn_ms (one per group).
  int64_t stuck_batches = 0;
  /// SwapWeights flips completed.
  int64_t weight_swaps = 0;
  /// Gauge: batches in the currently executing group (0 when idle).
  int64_t inflight_batches = 0;
  /// Watermark: largest pending-queue depth observed at enqueue.
  int64_t peak_queue_depth = 0;
  /// Per accepted request: enqueue -> collection into an executable batch.
  LatencyHistogram queue_wait;
  /// Per executed batch: MakeBatch + Predict + per-row slicing.
  LatencyHistogram batch_exec;
  /// Execution-plan telemetry summed over the served method and its replica
  /// clones (each owns a private plan cache; see tensor/plan.h). After a
  /// SwapWeights the counters restart from the standby's empty caches —
  /// plan hits/misses describe the currently served instance, not the
  /// engine's lifetime.
  plan::CacheStats plan;
  /// Encoder-cache telemetry (all zeros when the cache is disabled or the
  /// method lacks the encode/decode split). Unlike `plan`, these counters
  /// are engine-lifetime: the cache object survives SwapWeights (its
  /// entries are invalidated, the counters keep accumulating).
  EncodeCacheStats encode_cache;
};

/// Coalescing async batch server over one trained Method. See the file
/// comment for the threading, failure-delivery, SLO, hot-swap, and
/// determinism model.
class InferenceEngine {
 public:
  /// Serves a method owned elsewhere; `method` must outlive the engine (or
  /// the engine's first SwapWeights, whichever comes first).
  InferenceEngine(const core::Method* method, const InferenceEngineOptions& options);
  /// Takes ownership of the method.
  InferenceEngine(std::unique_ptr<core::Method> method,
                  const InferenceEngineOptions& options);

  /// Runs Shutdown(), waits for blocked Drain/Submit/SwapWeights callers to
  /// leave, then joins the dispatcher and watchdog; does not drain. Queued
  /// requests fail with EngineStoppedError; the in-flight group still
  /// delivers. Call Drain() first for a graceful shutdown.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues a scene at the next free slot (submission order) and returns a
  /// future for that scene's predicted displacements [1, pred_len*2]. The
  /// scene is copied; the caller's storage is not retained. Thread-safe;
  /// never executes batches on the caller thread. NOTE: with multiple
  /// producer threads the slot a request gets depends on lock acquisition
  /// order — use the explicit-id overload when the slot must be
  /// reproducible.
  std::future<Tensor> Submit(const data::TrajectorySequence& scene)
      ADAPTRAJ_EXCLUDES(mu_);
  /// As above with per-request options (deadline).
  std::future<Tensor> Submit(const data::TrajectorySequence& scene,
                             const SubmitOptions& submit_options)
      ADAPTRAJ_EXCLUDES(mu_);

  /// Enqueues a scene at an explicit slot, for request streams that arrive
  /// out of order or from several producer threads. Slots must be unique and
  /// must not precede an already executed batch (a checked error — except
  /// with max_batch_delay_ms enabled, where a deadline flush can retire slot
  /// space on a timer the producers cannot observe: an id that loses that
  /// race is rejected through its future instead, as is an already-pending
  /// id stranded behind a slot hole the deadline padded past). The engine
  /// holds a batch until every one of its slots has arrived.
  std::future<Tensor> Submit(uint64_t request_id, const data::TrajectorySequence& scene)
      ADAPTRAJ_EXCLUDES(mu_);
  /// As above with per-request options (deadline).
  std::future<Tensor> Submit(uint64_t request_id, const data::TrajectorySequence& scene,
                             const SubmitOptions& submit_options)
      ADAPTRAJ_EXCLUDES(mu_);

  /// Flushes everything pending — including a padded partial tail — and
  /// blocks until every request submitted before this call has its future
  /// ready (fulfilled or failed). All slots up to the highest submitted one
  /// must be present (a gap in an out-of-order stream is a checked error),
  /// so quiesce explicit-id producers — join them, or otherwise ensure their
  /// slot ranges are complete — before calling Drain: a strided producer
  /// caught mid-stream leaves transient holes. Implicit-id producers assign
  /// contiguous slots under the engine mutex and can never create a hole, so
  /// Drain may race them freely (which of their requests land before the
  /// flush is then timing-dependent, as the file comment describes).
  /// Throws EngineStoppedError if the engine shuts down before (or while)
  /// the drain completes.
  void Drain() ADAPTRAJ_EXCLUDES(mu_);

  /// Stops the engine: admission closes (Submit returns EngineStoppedError
  /// futures), queued requests fail with EngineStoppedError, blocked
  /// submitters and drainers wake (drainers throw), the dispatcher exits
  /// after the in-flight group delivers its results. Idempotent;
  /// thread-safe; called by the destructor.
  void Shutdown() ADAPTRAJ_EXCLUDES(mu_);

  /// Atomically replaces the served weights with a warm-standby clone of
  /// `source` (source.CloneForServing(); for non-reentrant methods a fresh
  /// ReplicaPool is cloned from the standby too). Standby construction runs
  /// outside the engine lock; the flip happens at a batch boundary, so every
  /// request is served entirely by the old weights or entirely by the new
  /// ones and none is dropped. Blocks until the flip lands (bounded by the
  /// in-flight group). `source` must be structurally compatible with the
  /// engine's options (typically: the same method type, trained further).
  /// Throws EngineStoppedError if the engine is (or becomes) shut down, and
  /// ServeError if `source` cannot be cloned.
  void SwapWeights(const core::Method& source) ADAPTRAJ_EXCLUDES(mu_);

  /// Coherent snapshot of the cumulative counters and histograms.
  InferenceEngineStats stats() const ADAPTRAJ_EXCLUDES(mu_);
  const InferenceEngineOptions& options() const { return options_; }
  /// The currently served method (the standby clone after a SwapWeights).
  /// Do not call concurrently with SwapWeights — that caller-side contract,
  /// not a lock, is what makes the unguarded read safe (annotated as the
  /// audited exception; taking mu_ here would only shrink, not close, the
  /// race window, since the reference outlives the accessor anyway).
  const core::Method& method() const ADAPTRAJ_NO_THREAD_SAFETY_ANALYSIS {
    return *method_;
  }
  /// Concurrency slots for non-reentrant methods: the replica-pool size, or
  /// 1 when batches are serialized. Reentrant methods report 1 (they share
  /// the master without a pool).
  int num_replica_slots() const ADAPTRAJ_EXCLUDES(mu_);

 private:
  struct PendingRequest {
    data::TrajectorySequence scene;
    std::promise<Tensor> promise;
    std::chrono::steady_clock::time_point enqueue_time;
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
    /// Tombstone: the deadline already failed the promise; the entry only
    /// holds the slot (its scene is released) until its batch retires.
    bool expired = false;
  };

  /// One executable batch: its index, its rows in slot order (scenes and
  /// promises parallel; `expired[r]` marks tombstone rows whose promise is
  /// already failed and whose slot pads away), and the outcome.
  struct ReadyBatch {
    uint64_t index = 0;
    std::vector<data::TrajectorySequence> scenes;
    std::vector<std::promise<Tensor>> promises;
    std::vector<char> expired;
    size_t live_rows = 0;
    std::vector<Tensor> results;  // one per row on success; empty for expired
    std::exception_ptr error;     // set instead of results on failure
    double exec_seconds = 0.0;    // filled by RunOneBatch when executed
  };

  void DispatcherLoop() ADAPTRAJ_EXCLUDES(mu_);
  void WatchdogLoop() ADAPTRAJ_EXCLUDES(mu_);
  /// Shared body of the four Submit overloads.
  std::future<Tensor> SubmitImpl(bool has_explicit_id, uint64_t request_id,
                                 const data::TrajectorySequence& scene,
                                 const SubmitOptions& submit_options)
      ADAPTRAJ_EXCLUDES(mu_);
  /// Validates the slot, records the request, and returns its future.
  std::future<Tensor> SubmitLocked(uint64_t request_id,
                                   const data::TrajectorySequence& scene,
                                   const SubmitOptions& submit_options)
      ADAPTRAJ_REQUIRES(mu_);
  /// Builds an already-failed future carrying `error`; bumping
  /// rejected/shed accounting is the caller's job.
  static std::future<Tensor> FailedFuture(std::exception_ptr error);
  /// Fails every queued request whose deadline has passed
  /// (DeadlineExceededError), leaving slot tombstones.
  void ExpireOverdueLocked(std::chrono::steady_clock::time_point now)
      ADAPTRAJ_REQUIRES(mu_);
  /// Earliest pending per-request deadline, or time_point::max().
  std::chrono::steady_clock::time_point NextRequestDeadlineLocked() const
      ADAPTRAJ_REQUIRES(mu_);
  /// Length of the contiguous pending-slot run starting at the next
  /// unexecuted batch boundary.
  uint64_t ContiguousRunLocked() const ADAPTRAJ_REQUIRES(mu_);
  /// Moves the ready prefix (full batches; with `include_partial_tail` also
  /// the underfull tail) out of the pending map, records queue-wait
  /// samples, and advances the slot cursors.
  std::vector<ReadyBatch> CollectGroupLocked(bool include_partial_tail)
      ADAPTRAJ_REQUIRES(mu_);
  /// Executes a collected group on the worker pool, filling each batch's
  /// results or error. Runs on the dispatcher with mu_ released; the
  /// dispatcher then updates stats and fulfills the promises under mu_.
  /// `master`/`replicas` are the served instance captured under mu_ at the
  /// batch boundary — passing them (rather than re-reading method_ /
  /// replicas_ unlocked) makes the SwapWeights flip protocol visible to the
  /// thread-safety analysis instead of relying on it implicitly.
  void ExecuteGroup(std::vector<ReadyBatch>* group, const core::Method* master,
                    const ReplicaPool* replicas) const;
  /// `master` is the served master (for weights_version); `method` the
  /// instance this batch runs on (a replica, or the master itself).
  void RunOneBatch(ReadyBatch* rb, const core::Method* method,
                   const core::Method* master) const;
  /// Predict with the encoder cache in front of the Encode half: gathers
  /// cached rows, encodes only unseen rows (in a sub-batch padded to the
  /// full batch's neighbor-slot width), and decodes the full batch. Falls
  /// back to the combined Predict when the cache is off. `slots` is the
  /// padded scene-pointer row list the batch was built from.
  Tensor PredictThroughCache(const data::Batch& batch,
                             const std::vector<const data::TrajectorySequence*>& slots,
                             const core::Method* method, const core::Method* master,
                             Rng* rng) const;
  /// Builds the replica pool an engine over `method` needs (null when the
  /// method is reentrant or pooling is disabled/impossible).
  std::unique_ptr<ReplicaPool> MakeReplicaPool(const core::Method* method) const;

  /// The served master. Flipped by SwapWeights under mu_ at a batch
  /// boundary; the execution path reads a copy captured under mu_ (see
  /// ExecuteGroup), never this field directly.
  const core::Method* method_ ADAPTRAJ_GUARDED_BY(mu_);
  std::unique_ptr<core::Method> owned_method_ ADAPTRAJ_GUARDED_BY(mu_);
  InferenceEngineOptions options_;
  /// Private model copies for non-reentrant methods; null when the master is
  /// shared (reentrant) or serialization is requested (num_replicas == 1).
  std::unique_ptr<ReplicaPool> replicas_ ADAPTRAJ_GUARDED_BY(mu_);
  /// Cross-request encoder cache, shared by the master and every replica
  /// (byte-identical weights). Null when disabled or unsupported by the
  /// method. The POINTER is set once in the constructor before the service
  /// threads start and never reassigned, so it is readable without mu_; the
  /// pointed-to cache is internally mutex-guarded — safe from concurrent
  /// batches. Survives SwapWeights (invalidated at the flip).
  std::unique_ptr<EncodeCache> encode_cache_;

  mutable support::Mutex mu_;
  /// Wakes the dispatcher (new work, drain, shutdown).
  support::CondVar dispatch_cv_;
  /// Wakes Drain waiters and SwapWeights (a group finished executing) —
  /// and, on shutdown, anyone parked on it.
  support::CondVar drained_cv_;
  /// Wakes the watchdog (new deadline, execution started, shutdown).
  support::CondVar watchdog_cv_;
  /// Wakes kBlock submitters when queue entries retire.
  support::CondVar space_cv_;
  /// Wakes the destructor when the last blocked caller leaves.
  support::CondVar idle_cv_;
  /// Requests keyed by slot id; entries move out when their batch is
  /// collected for execution.
  std::map<uint64_t, PendingRequest> pending_ ADAPTRAJ_GUARDED_BY(mu_);
  /// Queued entries carrying a live (unexpired) deadline; lets the hot path
  /// skip deadline scans entirely when nobody uses deadlines.
  int64_t armed_deadlines_ ADAPTRAJ_GUARDED_BY(mu_) = 0;
  /// External threads currently blocked inside Drain/Submit/SwapWeights.
  int blocked_callers_ ADAPTRAJ_GUARDED_BY(mu_) = 0;
  /// Next slot assigned by the implicit Submit overload.
  uint64_t next_auto_id_ ADAPTRAJ_GUARDED_BY(mu_) = 0;
  /// First batch index that has not been collected for execution yet.
  uint64_t next_batch_ ADAPTRAJ_GUARDED_BY(mu_) = 0;
  /// Exclusive slot bound the dispatcher must flush through (max over
  /// outstanding Drain calls).
  uint64_t drain_until_slot_ ADAPTRAJ_GUARDED_BY(mu_) = 0;
  /// True while the dispatcher is executing a group outside the mutex.
  bool executing_ ADAPTRAJ_GUARDED_BY(mu_) = false;
  /// When the in-flight group started, and whether the watchdog already
  /// counted it as stuck.
  std::chrono::steady_clock::time_point exec_start_ ADAPTRAJ_GUARDED_BY(mu_){};
  bool stuck_reported_ ADAPTRAJ_GUARDED_BY(mu_) = false;
  bool shutdown_ ADAPTRAJ_GUARDED_BY(mu_) = false;
  InferenceEngineStats stats_ ADAPTRAJ_GUARDED_BY(mu_);
  std::thread dispatcher_;
  std::thread watchdog_;
};

}  // namespace serve
}  // namespace adaptraj

#endif  // ADAPTRAJ_SERVE_INFERENCE_ENGINE_H_
