// Batched inference engine: the query-path counterpart of ParallelTrainer.
//
// A serving deployment receives one scene per request, but the backbones are
// far more efficient on coalesced batches (one graph, batched GEMMs). The
// engine accepts per-scene requests, coalesces them into fixed-size batches,
// runs the owned Method's Predict (which executes forward-only under
// NoGradGuard) on the training-worker pool, and delivers each request's
// prediction through a future.
//
// Determinism model (mirrors the ParallelTrainer contract):
//   - Every request occupies a SLOT in a global sequence: slot r belongs to
//     batch r / batch_size at row r % batch_size. Slots are assigned by
//     submission order, or explicitly by the caller (Submit with request_id)
//     for streams that arrive out of order — the engine buffers a batch
//     until all of its slots are present, so delivery order over the wire
//     never changes what is computed.
//   - Batch b draws its sampling noise from an Rng seeded
//     core::TaskSeed(options.seed, b): a private stream per batch,
//     independent of execution interleaving.
//   - A partial final batch (Drain with fewer than batch_size pending slots)
//     is padded to the fixed width by cycling its real scenes; padded rows
//     are computed and discarded.
//   - Ready batches execute concurrently via parallel::RunTaskGroup unless
//     the method reports reentrant_predict() == false (LBEBM's Langevin
//     sampler writes shared gradient buffers), in which case they run one at
//     a time. Either way, results are byte-identical for any worker count,
//     any dispatch buffering, and any wire arrival order at a fixed seed:
//     each batch's inputs, slot order, and noise stream are fixed by the
//     slot assignment and the Drain points alone (a Drain that pads a
//     partial tail is part of the schedule — it decides that batch's
//     composition), and every kernel is bit-deterministic for any thread
//     count (see tensor/parallel.h).
//
// Threading: the engine itself is driven from one dispatch thread (Submit
// and Drain are not thread-safe against each other); the parallelism is
// inside, across batches. Submit may block while a group of ready batches
// executes.

#ifndef ADAPTRAJ_SERVE_INFERENCE_ENGINE_H_
#define ADAPTRAJ_SERVE_INFERENCE_ENGINE_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <vector>

#include "core/method.h"

namespace adaptraj {
namespace serve {

/// Configuration of one engine instance.
struct InferenceEngineOptions {
  /// Fixed coalescing width. Every executed batch has exactly this many
  /// rows; partial tails are padded.
  int batch_size = 32;
  /// Draw one of the multi-modal futures (true) or the most-likely one.
  bool sample = true;
  /// Base seed of the per-batch noise streams.
  uint64_t seed = 0;
  /// Window configuration used to tensorize submitted scenes.
  data::SequenceConfig sequence;
  /// Ready batches buffered before a dispatch; more batching per
  /// RunTaskGroup call amortizes pool handoff. 0 = the training-worker
  /// count (parallel::NumTrainWorkers()).
  int max_buffered_batches = 0;
};

/// Cumulative counters for tests and telemetry.
struct InferenceEngineStats {
  int64_t requests = 0;        // scenes submitted
  int64_t batches = 0;         // batches executed
  int64_t padded_rows = 0;     // rows computed for padding and discarded
};

/// Coalescing batch server over one trained Method. See the file comment for
/// the execution and determinism model.
class InferenceEngine {
 public:
  /// Serves a method owned elsewhere; `method` must outlive the engine.
  InferenceEngine(const core::Method* method, const InferenceEngineOptions& options);
  /// Takes ownership of the method.
  InferenceEngine(std::unique_ptr<core::Method> method,
                  const InferenceEngineOptions& options);

  /// Enqueues a scene at the next free slot (submission order). Returns a
  /// future for that scene's predicted displacements [1, pred_len*2]. The
  /// scene is copied; the caller's storage is not retained. May block while
  /// ready batches execute.
  std::future<Tensor> Submit(const data::TrajectorySequence& scene);

  /// Enqueues a scene at an explicit slot, for request streams that arrive
  /// out of order. Slots must be unique and must not precede an already
  /// executed batch; the engine holds a batch until every one of its slots
  /// has arrived.
  std::future<Tensor> Submit(uint64_t request_id, const data::TrajectorySequence& scene);

  /// Executes everything still pending, including a padded partial tail.
  /// All slots up to the highest submitted one must be present (a gap in an
  /// out-of-order stream is a checked error here). After Drain every future
  /// handed out so far is ready.
  void Drain();

  const InferenceEngineStats& stats() const { return stats_; }
  const InferenceEngineOptions& options() const { return options_; }
  const core::Method& method() const { return *method_; }

 private:
  struct PendingRequest {
    data::TrajectorySequence scene;
    std::promise<Tensor> promise;
  };

  /// Executes consecutive ready batches starting at next_batch_; with
  /// `include_partial_tail`, also the final underfull batch.
  void RunReadyBatches(bool include_partial_tail);

  const core::Method* method_;
  std::unique_ptr<core::Method> owned_method_;
  InferenceEngineOptions options_;
  /// Requests keyed by slot id; erased once their batch has executed.
  std::map<uint64_t, PendingRequest> pending_;
  /// Next slot assigned by the implicit Submit overload.
  uint64_t next_auto_id_ = 0;
  /// First batch index that has not executed yet.
  uint64_t next_batch_ = 0;
  InferenceEngineStats stats_;
};

}  // namespace serve
}  // namespace adaptraj

#endif  // ADAPTRAJ_SERVE_INFERENCE_ENGINE_H_
