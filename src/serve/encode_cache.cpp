#include "serve/encode_cache.h"

#include <cstdlib>
#include <cstring>
#include <utility>

namespace adaptraj {
namespace serve {

namespace {

/// Fixed accounting overhead per entry: list/node plumbing, index slot, and
/// the string/vector headers. An estimate, not an exact heap measurement —
/// the budget is a watermark, not an allocator contract.
constexpr int64_t kEntryOverheadBytes = 128;

/// Seeded 64-bit FNV-1a over the key bytes, folding 8 bytes per round: the
/// byte-at-a-time variant serializes one multiply per byte through the
/// loop-carried dependency, which at ~1 KiB scene keys costs more than the
/// hit it indexes. One round per word keeps the avalanche good enough for a
/// table index that is always confirmed by a full-key byte compare. The seed
/// perturbs the offset basis so an attacker (or an unlucky workload) cannot
/// pre-compute colliding scene histories against a published constant.
uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull ^ seed;
  size_t i = 0;
  for (; i + sizeof(uint64_t) <= n; i += sizeof(uint64_t)) {
    uint64_t word;
    std::memcpy(&word, p + i, sizeof(word));
    h ^= word;
    h *= 0x100000001b3ull;
  }
  for (; i < n; ++i) {
    h ^= static_cast<uint64_t>(p[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

void AppendBytes(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

void AppendInt64(std::string* out, int64_t v) { AppendBytes(out, &v, sizeof(v)); }

}  // namespace

bool EncodeCacheEnabledByEnv() {
  static const bool resolved = [] {
    const char* env = std::getenv("ADAPTRAJ_ENCODE_CACHE");
    if (env == nullptr) return true;
    return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
             std::strcmp(env, "false") == 0);
  }();
  return resolved;
}

EncodeCache::EncodeCache(EncodeCacheOptions options) : options_(std::move(options)) {
  ADAPTRAJ_CHECK_MSG(options_.max_bytes > 0,
                     "EncodeCache max_bytes must be > 0; got " << options_.max_bytes);
}

uint64_t EncodeCache::HashKey(const std::string& key) const {
  if (hasher_override_) return hasher_override_(key);
  return Fnv1a64(key.data(), key.size(), options_.hash_seed);
}

int64_t EncodeCache::EntryBytes(const Entry& entry) const {
  return static_cast<int64_t>(entry.key.size()) +
         static_cast<int64_t>(entry.value.size() * sizeof(float)) +
         kEntryOverheadBytes;
}

bool EncodeCache::Lookup(const std::string& key, float* out, int64_t width) {
  support::MutexLock lock(mu_);
  // Hash under the lock: HashKey consults hasher_override_, which
  // set_hasher_for_test replaces under mu_. Hashing before acquiring the
  // lock raced that write (pre-lock read surfaced by -Wthread-safety).
  const uint64_t hash = HashKey(key);
  ++stats_.lookups;
  auto range = index_.equal_range(hash);
  for (auto it = range.first; it != range.second; ++it) {
    Entry& entry = *it->second;
    if (entry.key != key) {
      // Same hash, different content: the full-key byte compare is what
      // makes a collision cost one probe instead of one wrong prediction.
      ++stats_.hash_conflicts;
      continue;
    }
    ADAPTRAJ_CHECK_MSG(static_cast<int64_t>(entry.value.size()) == width,
                       "EncodeCache width mismatch: cached "
                           << entry.value.size() << " floats, caller expects "
                           << width);
    std::memcpy(out, entry.value.data(), static_cast<size_t>(width) * sizeof(float));
    lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to MRU front
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

void EncodeCache::Insert(const std::string& key, const float* value, int64_t width) {
  ADAPTRAJ_CHECK_MSG(width >= 0, "EncodeCache insert with negative width");
  support::MutexLock lock(mu_);
  const uint64_t hash = HashKey(key);  // under mu_, same as Lookup
  auto range = index_.equal_range(hash);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second->key == key) return;  // raced miss: values are bit-equal
  }
  Entry entry;
  entry.hash = hash;
  entry.key = key;
  entry.value.assign(value, value + width);
  const int64_t cost = EntryBytes(entry);
  if (cost > options_.max_bytes) return;  // one entry over budget: never admit
  while (!lru_.empty() && stats_.bytes + cost > options_.max_bytes) {
    EraseLocked(std::prev(lru_.end()));
    ++stats_.evictions;
  }
  lru_.push_front(std::move(entry));
  index_.emplace(hash, lru_.begin());
  ++stats_.insertions;
  ++stats_.entries;
  stats_.bytes += cost;
}

void EncodeCache::EraseLocked(std::list<Entry>::iterator it) {
  auto range = index_.equal_range(it->hash);
  for (auto idx = range.first; idx != range.second; ++idx) {
    if (idx->second == it) {
      index_.erase(idx);
      break;
    }
  }
  stats_.bytes -= EntryBytes(*it);
  --stats_.entries;
  lru_.erase(it);
}

void EncodeCache::Invalidate() {
  support::MutexLock lock(mu_);
  if (!lru_.empty()) ++stats_.invalidations;
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;
  // The next InvalidateIfVersionChanged re-adopts the served method's
  // version without clearing again.
  has_weights_version_ = false;
}

void EncodeCache::InvalidateIfVersionChanged(int64_t version) {
  support::MutexLock lock(mu_);
  if (has_weights_version_ && version == weights_version_) return;
  if (has_weights_version_ && !lru_.empty()) {
    // Weights mutated in place under the live method (Train on a served
    // instance): every cached latent is stale.
    ++stats_.invalidations;
  }
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;
  weights_version_ = version;
  has_weights_version_ = true;
}

EncodeCacheStats EncodeCache::stats() const {
  support::MutexLock lock(mu_);
  return stats_;
}

void EncodeCache::set_hasher_for_test(
    std::function<uint64_t(const std::string&)> hasher) {
  support::MutexLock lock(mu_);
  ADAPTRAJ_CHECK_MSG(lru_.empty(),
                     "set_hasher_for_test on a non-empty cache: existing "
                     "entries are indexed under the old hash");
  hasher_override_ = std::move(hasher);
}

std::string SceneEncodeKey(const std::string& identity, const data::Batch& batch,
                           int64_t row, bool include_neighbors) {
  ADAPTRAJ_CHECK_MSG(row >= 0 && row < batch.batch_size,
                     "SceneEncodeKey row " << row << " out of range for batch of "
                                           << batch.batch_size);
  const int64_t m = batch.max_neighbors;
  std::string key;
  // Header: identity + the extents that shape the encoder input. The float
  // sections below are fixed-width given these extents, so no two distinct
  // inputs can serialize to the same byte string.
  key.reserve(identity.size() + 3 * sizeof(int64_t) +
              static_cast<size_t>(batch.obs_len) * 2 * sizeof(float) +
              (include_neighbors
                   ? static_cast<size_t>(m) *
                         (static_cast<size_t>(batch.obs_len) * 2 + 3) * sizeof(float)
                   : 0));
  key += identity;
  key += '\0';
  AppendInt64(&key, batch.obs_len);
  AppendInt64(&key, include_neighbors ? m : -1);
  // Focal observed history: obs_flat row `row` carries the same obs_len*2
  // displacement floats as the per-step tensors, contiguously.
  AppendBytes(&key, batch.obs_flat.data() + row * batch.obs_len * 2,
              static_cast<size_t>(batch.obs_len) * 2 * sizeof(float));
  if (include_neighbors) {
    // Everything the interaction layer reads for this scene: per-step
    // neighbor displacements (rows row*M .. row*M+M-1 of each step),
    // offsets, and the validity mask row. Padded slots contribute their
    // zero bytes — the slot width M is thereby part of the key content.
    for (const Tensor& step : batch.nbr_steps) {
      AppendBytes(&key, step.data() + row * m * 2,
                  static_cast<size_t>(m) * 2 * sizeof(float));
    }
    AppendBytes(&key, batch.nbr_offsets.data() + row * m * 2,
                static_cast<size_t>(m) * 2 * sizeof(float));
    AppendBytes(&key, batch.nbr_mask.data() + row * m,
                static_cast<size_t>(m) * sizeof(float));
  }
  return key;
}

}  // namespace serve
}  // namespace adaptraj
