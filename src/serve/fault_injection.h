// Test-only fault injection for the serving engine's chaos suite.
//
// FaultInjectingMethod wraps any core::Method and misbehaves on scheduled
// Predict calls: it throws (a FaultInjectedError the engine must deliver to
// exactly the faulted batch's futures), sleeps (a wedged batch the watchdog
// must detect and queued deadlines must survive), or overwrites the result
// with quiet NaNs (a value fault that must not poison neighbouring
// batches). Every other call forwards to the wrapped method untouched, so
// non-faulted results stay byte-identical to a fault-free run.
//
// Determinism: the schedule maps GLOBAL Predict call indices (0-based,
// shared across the wrapper and all of its serving clones via an atomic
// counter) to fault specs. Which engine batch receives call index k is
// deterministic whenever the engine serializes batch execution
// (num_replicas = 1, or force_serialized() below) — the dispatcher then
// runs batches in collection order, so call index == batch index. With a
// replica pool, batches in one wave race for call indices; chaos tests that
// pin "batch b faults" serialize, tests that only need "exactly one batch
// faulted somewhere mid-wave" may keep the pool. MakeSeededFaultSchedule
// derives a schedule from a seed (splitmix64), so a chaos run is
// reproducible from (seed, rate) alone.
//
// This lives in src/serve (not tests/) so the chaos tests, the stress CI
// job, and the overload bench share one audited implementation; it has no
// overhead for engines that do not use it.

#ifndef ADAPTRAJ_SERVE_FAULT_INJECTION_H_
#define ADAPTRAJ_SERVE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/method.h"

namespace adaptraj {
namespace serve {

/// What a scheduled fault does to its Predict call.
enum class FaultKind {
  kThrow,  // throw FaultInjectedError instead of predicting
  kSleep,  // sleep sleep_ms, then predict normally (a slow/wedged batch)
  kNaN,    // predict normally, then overwrite the result with quiet NaNs
};

/// One scheduled fault.
struct FaultSpec {
  FaultKind kind = FaultKind::kThrow;
  int sleep_ms = 50;  // kSleep only
};

/// Global Predict call index -> fault to inject on that call.
using FaultSchedule = std::map<int64_t, FaultSpec>;

/// The error a kThrow fault raises; distinct from serve::ServeError because
/// it plays the role of an APPLICATION failure crossing the engine's
/// exception channel, not an engine-originated condition.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Seeded-deterministic schedule: each call index in [0, num_calls) faults
/// independently with probability `rate` (splitmix64 of seed + index — the
/// same (seed, num_calls, rate, kind) always yields the same schedule).
FaultSchedule MakeSeededFaultSchedule(uint64_t seed, int64_t num_calls,
                                      double rate, FaultKind kind,
                                      int sleep_ms = 50);

/// Method decorator injecting the scheduled faults; see the file comment.
class FaultInjectingMethod : public core::Method {
 public:
  /// Wraps `inner` (not owned; must outlive the wrapper and every clone).
  /// `force_serialized` reports the wrapper non-reentrant and unclonable so
  /// the engine runs one batch at a time and call index == batch index.
  FaultInjectingMethod(const core::Method* inner, FaultSchedule schedule,
                       bool force_serialized = true);

  std::string name() const override;
  void Train(const data::DomainGeneralizationData& dgd,
             const core::TrainConfig& config) override;
  Tensor Predict(const data::Batch& batch, Rng* rng, bool sample) const override;
  bool reentrant_predict() const override;
  /// Clones wrap CloneForServing copies of the inner method and SHARE the
  /// call counter and schedule, so a replica pool over this wrapper still
  /// faults on the scheduled global call indices.
  std::unique_ptr<core::Method> CloneForServing() const override;

  /// Predict calls started so far across the wrapper and all clones.
  int64_t calls() const;
  /// Faults injected so far (any kind).
  int64_t faults_injected() const;

 private:
  /// Counter + schedule shared between a wrapper and its serving clones.
  /// Thread-safety contract (no mutex, so nothing for the Clang
  /// thread-safety analysis to check — deliberately): the two counters are
  /// lock-free atomics (fetch_add claims a call index uniquely even across
  /// a replica wave), and `schedule` is written only by the constructor
  /// before any Predict can run, then read-only for the wrapper's lifetime.
  /// Atomics ordering stays the TSan legs' job — the analysis treats
  /// std::atomic as unguarded by design (see support/thread_annotations.h).
  struct SharedState {
    std::atomic<int64_t> next_call{0};
    std::atomic<int64_t> faults{0};
    FaultSchedule schedule;  // immutable after construction
  };

  FaultInjectingMethod(const core::Method* inner,
                       std::unique_ptr<core::Method> owned_inner,
                       std::shared_ptr<SharedState> state, bool force_serialized);

  const core::Method* inner_;
  std::unique_ptr<core::Method> owned_inner_;  // set on clones only
  std::shared_ptr<SharedState> state_;
  bool force_serialized_;
};

}  // namespace serve
}  // namespace adaptraj

#endif  // ADAPTRAJ_SERVE_FAULT_INJECTION_H_
