// Annotated synchronization primitives: std::mutex / std::condition_variable
// wrappers carrying Clang thread-safety capabilities.
//
// Clang's analysis tracks capabilities through ANNOTATED types only; the
// libstdc++ std::mutex has no annotations, so code locking it directly is
// invisible to -Wthread-safety. Every mutex-guarded structure in this repo
// therefore holds a support::Mutex and scopes its critical sections with
// support::MutexLock — drop-in equivalents (one std::mutex / one
// std::unique_lock inside, zero added state) whose lock/unlock transitions
// the analysis can see.
//
// Condition variables: CondVar wraps std::condition_variable and waits on a
// MutexLock. The analysis does not model wait's unlock/relock (the capability
// reads as continuously held across Wait, which is sound for guarded-access
// checking because wait reacquires before returning). Predicate waits are
// written as explicit `while (!cond) cv.Wait(lock);` loops rather than the
// lambda-predicate overload: the lambda's body would be analyzed as an
// un-annotated function and every guarded read inside it would (correctly,
// but uselessly) warn. The loop form keeps the guarded reads in the
// enclosing function where the capability is visibly held — and is exactly
// what the predicate overload expands to, so behavior is identical.

#ifndef ADAPTRAJ_SUPPORT_SYNC_H_
#define ADAPTRAJ_SUPPORT_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.h"

namespace adaptraj {
namespace support {

/// std::mutex with a thread-safety capability. Prefer MutexLock for
/// scoping; Lock/Unlock exist for the rare manual protocol.
class ADAPTRAJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ADAPTRAJ_ACQUIRE() { mu_.lock(); }
  void Unlock() ADAPTRAJ_RELEASE() { mu_.unlock(); }

  /// The wrapped mutex, for interop with std types (CondVar uses it).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII critical section over a Mutex (std::unique_lock inside, so CondVar
/// can wait on it and long-running sections can Unlock()/Lock() around work
/// that must not hold the mutex — e.g. the dispatcher's ExecuteGroup).
class ADAPTRAJ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ADAPTRAJ_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() ADAPTRAJ_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily exits the critical section (e.g. around user callbacks).
  void Unlock() ADAPTRAJ_RELEASE() { lock_.unlock(); }
  /// Re-enters after Unlock().
  void Lock() ADAPTRAJ_ACQUIRE() { lock_.lock(); }

  /// The wrapped lock, for CondVar only.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable waiting on a MutexLock. Wait/WaitUntil must be called
/// with the lock held (see the file comment for why this is a convention,
/// not an enforced annotation). Notify* never requires the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.native()); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(MutexLock& lock,
                           const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock.native(), tp);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace support
}  // namespace adaptraj

#endif  // ADAPTRAJ_SUPPORT_SYNC_H_
