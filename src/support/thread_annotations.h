// Clang thread-safety annotation macros, no-ops on every other compiler.
//
// The repo's determinism contract (bit-identical outputs across thread
// counts, worker counts, and cache on/off) rests on a lock discipline that
// until now was only *observed* by the TSan CI legs — a race had to be
// scheduled by a test to be caught. These macros move the discipline into
// the type system: every mutex-guarded field is annotated with the mutex
// that protects it, every hold-the-lock helper declares its requirement,
// and the CI `static-analysis` leg compiles the tree with Clang's
// `-Werror=thread-safety`, so an unguarded access is a BUILD BREAK, not a
// TSan roll of the dice.
//
// What the analysis guarantees (and what it cannot see):
//   - GUARANTEED: every read/write of an ADAPTRAJ_GUARDED_BY(mu) field in
//     analyzed code happens while `mu` is held (per Clang's flow-sensitive,
//     intraprocedural capability analysis); every ADAPTRAJ_REQUIRES(mu)
//     function is only called with `mu` held; ADAPTRAJ_EXCLUDES(mu)
//     functions are never called with `mu` held (self-deadlock).
//   - NOT SEEN: condition-variable wait/wake pairing (a wait's predicate
//     can still be wrong), atomics ordering (the analysis treats
//     std::atomic as unguarded by design), lock-free publication
//     protocols, and anything crossing a type-erased boundary
//     (std::function, virtual calls into un-annotated code). Those remain
//     the TSan legs' job — the two layers are complementary, not
//     redundant.
//
// Conventions (see also the threading-contract table in tensor/parallel.h):
//   - Guarded members are declared with ADAPTRAJ_GUARDED_BY(mu_) directly
//     on the member, next to the mutex that owns them.
//   - Private helpers that assume the lock carry ADAPTRAJ_REQUIRES(mu_)
//     and keep the repo's existing `*Locked` naming suffix.
//   - Public entry points of internally-synchronized classes carry
//     ADAPTRAJ_EXCLUDES(mu_) so a re-entrant call deadlock is a compile
//     error.
//   - Deliberate protocol-based accesses (safe for reasons the analysis
//     cannot express, e.g. "only flipped at a batch boundary while no
//     group executes") use ADAPTRAJ_NO_THREAD_SAFETY_ANALYSIS with a
//     comment explaining the protocol; they are the audited exceptions,
//     not the rule.
//
// The macros expand to GNU attributes under Clang (which implements the
// analysis) and to NOTHING under GCC or any compiler without the
// attributes, so the annotated tree builds identically everywhere — the
// GCC leg of the build matrix asserts the no-op expansion
// (tests/support/test_thread_annotations.cpp).

#ifndef ADAPTRAJ_SUPPORT_THREAD_ANNOTATIONS_H_
#define ADAPTRAJ_SUPPORT_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define ADAPTRAJ_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define ADAPTRAJ_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

/// Declares a type (a mutex wrapper) to BE a capability the analysis
/// tracks. `name` appears in diagnostics ("mutex", "role", ...).
#define ADAPTRAJ_CAPABILITY(name) \
  ADAPTRAJ_THREAD_ANNOTATION__(capability(name))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability (std::scoped_lock-shaped types).
#define ADAPTRAJ_SCOPED_CAPABILITY \
  ADAPTRAJ_THREAD_ANNOTATION__(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define ADAPTRAJ_GUARDED_BY(x) ADAPTRAJ_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer-field annotation: the POINTED-TO data requires holding `x`
/// (the pointer itself may be read freely).
#define ADAPTRAJ_PT_GUARDED_BY(x) \
  ADAPTRAJ_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function annotation: callers must hold the listed capabilities
/// exclusively (the `*Locked` helper contract).
#define ADAPTRAJ_REQUIRES(...) \
  ADAPTRAJ_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function annotation: callers must hold the listed capabilities at least
/// shared.
#define ADAPTRAJ_REQUIRES_SHARED(...) \
  ADAPTRAJ_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities (held on return).
#define ADAPTRAJ_ACQUIRE(...) \
  ADAPTRAJ_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the listed capabilities (held on entry).
#define ADAPTRAJ_RELEASE(...) \
  ADAPTRAJ_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function annotation: acquires the capabilities when returning `ret`.
#define ADAPTRAJ_TRY_ACQUIRE(ret, ...) \
  ADAPTRAJ_THREAD_ANNOTATION__(try_acquire_capability(ret, __VA_ARGS__))

/// Function annotation: callers must NOT hold the listed capabilities
/// (the anti-deadlock contract of internally-locking public methods).
#define ADAPTRAJ_EXCLUDES(...) \
  ADAPTRAJ_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Declares a required lock-acquisition order between two mutexes.
#define ADAPTRAJ_ACQUIRED_BEFORE(...) \
  ADAPTRAJ_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ADAPTRAJ_ACQUIRED_AFTER(...) \
  ADAPTRAJ_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function annotation: returns a reference to the given capability
/// (accessor functions exposing a member mutex).
#define ADAPTRAJ_RETURN_CAPABILITY(x) \
  ADAPTRAJ_THREAD_ANNOTATION__(lock_returned(x))

/// Tells the analysis the capability is held without acquiring it
/// (runtime-checked assertions).
#define ADAPTRAJ_ASSERT_CAPABILITY(x) \
  ADAPTRAJ_THREAD_ANNOTATION__(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use in this
/// repo documents the protocol that makes the unguarded access safe — this
/// is the audited exception list, greppable as a review surface.
#define ADAPTRAJ_NO_THREAD_SAFETY_ANALYSIS \
  ADAPTRAJ_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // ADAPTRAJ_SUPPORT_THREAD_ANNOTATIONS_H_
