// Batching of trajectory sequences into model-ready tensors.
//
// Coordinates are normalized into the focal agent's frame: the models consume
// per-step displacements for the focal agent and its neighbors plus each
// neighbor's offset relative to the focal agent at the last observed step.
// This removes absolute-position bias and is shared by all backbones.

#ifndef ADAPTRAJ_DATA_BATCH_H_
#define ADAPTRAJ_DATA_BATCH_H_

#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace adaptraj {
namespace data {

/// Model-ready mini-batch. B = batch size, M = neighbor slots (padded).
struct Batch {
  int64_t batch_size = 0;
  int64_t max_neighbors = 0;
  int obs_len = 0;
  int pred_len = 0;

  /// Focal per-step displacements: obs_len tensors of [B, 2]; step 0 is zero.
  std::vector<Tensor> obs_steps;
  /// Focal observed displacements flattened: [B, obs_len*2].
  Tensor obs_flat;

  /// Neighbor per-step displacements: obs_len tensors of [B*M, 2], zero rows
  /// for padding slots.
  std::vector<Tensor> nbr_steps;
  /// Neighbor position relative to the focal anchor at the last observed
  /// step: [B*M, 2].
  Tensor nbr_offsets;
  /// Validity mask [B, M]: 1 for real neighbors, 0 for padding.
  Tensor nbr_mask;

  /// Future per-step displacements (targets): pred_len tensors of [B, 2].
  std::vector<Tensor> fut_steps;
  /// Future displacements flattened: [B, pred_len*2].
  Tensor fut_flat;
  /// Endpoint displacement: final future position minus anchor, [B, 2].
  Tensor endpoint;

  /// Source-domain label per sequence (-1 when not from a source domain).
  std::vector<int> domain_labels;
};

/// Assembles a batch from sequence pointers (all must share the config's
/// window lengths). An empty list yields a well-formed B = 0 batch.
/// `min_neighbor_slots` forces at least that many padded neighbor slots (M):
/// callers re-batching a subset of scenes pass the original batch's M so the
/// sub-batch's padded rows stay byte-identical to the full batch's (the
/// encoder-cache keys hash those bytes).
Batch MakeBatch(const std::vector<const TrajectorySequence*>& sequences,
                const SequenceConfig& config, int64_t min_neighbor_slots = 1);

/// Epoch iterator over a dataset with optional shuffling.
class BatchLoader {
 public:
  BatchLoader(const Dataset* dataset, int batch_size, const SequenceConfig& config,
              uint64_t seed, bool shuffle);

  /// Restarts the epoch (reshuffles when shuffling is enabled).
  void Reset();

  /// Fills `batch` with the next mini-batch; returns false at epoch end.
  bool Next(Batch* batch);

  /// Number of batches per epoch.
  int64_t NumBatches() const;

 private:
  const Dataset* dataset_;
  int batch_size_;
  SequenceConfig config_;
  Rng rng_;
  bool shuffle_;
  std::vector<size_t> order_;
  size_t cursor_ = 0;
};

}  // namespace data
}  // namespace adaptraj

#endif  // ADAPTRAJ_DATA_BATCH_H_
