#include "data/multi_domain.h"

#include "tensor/status.h"

namespace adaptraj {
namespace data {

DomainGeneralizationData BuildDomainGeneralizationData(
    const std::vector<sim::Domain>& source_domains, sim::Domain target_domain,
    const CorpusConfig& config) {
  ADAPTRAJ_CHECK_MSG(!source_domains.empty(), "need at least one source domain");

  DomainGeneralizationData out;
  out.source_domains = source_domains;
  out.target_domain = target_domain;

  for (size_t k = 0; k < source_domains.size(); ++k) {
    // Distinct seed per domain keeps corpora independent.
    const uint64_t seed =
        config.seed + 1000003u * static_cast<uint64_t>(source_domains[k]);
    sim::DomainSpec spec = sim::SpecForDomain(source_domains[k]);
    spec.passing_side_bias *= config.passing_bias_scale;
    SplitDataset split = BuildDomainDataset(spec, config.num_scenes,
                                            config.steps_per_scene, seed, config.seq);
    auto label = static_cast<int>(k);
    for (auto* ds : {&split.train, &split.val, &split.test}) {
      for (auto& seq : ds->sequences) seq.domain_label = label;
    }
    out.pooled_train.sequences.insert(out.pooled_train.sequences.end(),
                                      split.train.sequences.begin(),
                                      split.train.sequences.end());
    out.pooled_val.sequences.insert(out.pooled_val.sequences.end(),
                                    split.val.sequences.begin(),
                                    split.val.sequences.end());
    out.sources.push_back(std::move(split));
  }

  const uint64_t target_seed =
      config.seed + 1000003u * static_cast<uint64_t>(target_domain) + 17u;
  sim::DomainSpec target_spec = sim::SpecForDomain(target_domain);
  target_spec.passing_side_bias *= config.passing_bias_scale;
  out.target = BuildDomainDataset(target_spec, config.num_scenes,
                                  config.steps_per_scene, target_seed, config.seq);
  return out;
}

}  // namespace data
}  // namespace adaptraj
