// Sequence extraction, datasets, and chronological splits.
//
// Mirrors the paper's TrajNet++-style preprocessing: trajectories resampled
// at dt = 0.4 s, windows of 8 observed + 12 predicted steps, and a
// chronological 6:2:2 train/val/test split per domain (Sec. IV-A).

#ifndef ADAPTRAJ_DATA_DATASET_H_
#define ADAPTRAJ_DATA_DATASET_H_

#include <vector>

#include "sim/social_force.h"

namespace adaptraj {
namespace data {

/// Windowing and neighbor parameters for sequence extraction.
struct SequenceConfig {
  int obs_len = 8;        // observed steps (3.2 s at 0.4 s/step)
  int pred_len = 12;      // predicted steps (4.8 s)
  int stride = 5;         // window start stride within a track
  int max_neighbors = 8;  // neighbors kept per sequence (nearest first)
  /// Neighbor co-presence requirement: a neighbor must be active for the
  /// entire observation window to be included.
  int total_len() const { return obs_len + pred_len; }
};

/// One prediction instance: a focal agent with co-occurring neighbors.
struct TrajectorySequence {
  sim::Domain domain = sim::Domain::kEthUcy;
  /// Index into the training-time source-domain list; assigned by
  /// MultiDomainDataset. -1 when unset (e.g. unseen target domain).
  int domain_label = -1;
  int scene_index = 0;
  int start_step = 0;
  /// Absolute focal positions, length obs_len + pred_len.
  std::vector<sim::Vec2> focal;
  /// Absolute neighbor positions over the observation window only
  /// (each inner vector has length obs_len), ordered nearest-first.
  std::vector<std::vector<sim::Vec2>> neighbors;
};

/// A set of sequences from a single domain.
struct Dataset {
  std::vector<TrajectorySequence> sequences;

  bool empty() const { return sequences.empty(); }
  size_t size() const { return sequences.size(); }
};

/// Train/val/test split of one domain's data.
struct SplitDataset {
  Dataset train;
  Dataset val;
  Dataset test;
};

/// Extracts prediction windows from every track of a scene.
///
/// A window is kept when the focal track covers all obs+pred steps. Neighbors
/// are other agents active for the full observation window, sorted by
/// distance to the focal agent at the last observed step and truncated to
/// max_neighbors.
std::vector<TrajectorySequence> ExtractSequences(const sim::Scene& scene,
                                                 const SequenceConfig& config,
                                                 sim::Domain domain, int scene_index);

/// Extracts sequences from many scenes.
std::vector<TrajectorySequence> ExtractSequences(const std::vector<sim::Scene>& scenes,
                                                 const SequenceConfig& config,
                                                 sim::Domain domain);

/// Splits chronologically (by scene index, then window start) 6:2:2.
SplitDataset ChronologicalSplit(std::vector<TrajectorySequence> sequences);

/// Simulates a domain and returns its split dataset. `num_scenes` scenes of
/// `steps_per_scene` recorded steps each.
SplitDataset BuildDomainDataset(sim::Domain domain, int num_scenes, int steps_per_scene,
                                uint64_t seed, const SequenceConfig& config);

/// Same, but with an explicit (possibly modified) domain spec - used by the
/// simulator-ablation benches.
SplitDataset BuildDomainDataset(const sim::DomainSpec& spec, int num_scenes,
                                int steps_per_scene, uint64_t seed,
                                const SequenceConfig& config);

/// Aggregate per-step statistics of a domain, matching the paper's Table I.
struct DomainStats {
  int num_sequences = 0;
  float avg_num = 0.0f;  // concurrently present agents per recorded step
  float std_num = 0.0f;
  float avg_vx = 0.0f;  // |per-step displacement| along x
  float std_vx = 0.0f;
  float avg_vy = 0.0f;
  float std_vy = 0.0f;
  float avg_ax = 0.0f;  // |per-step velocity change| along x
  float std_ax = 0.0f;
  float avg_ay = 0.0f;
  float std_ay = 0.0f;
};

/// Computes Table-I statistics over simulated scenes.
DomainStats ComputeDomainStats(const std::vector<sim::Scene>& scenes,
                               const SequenceConfig& config, sim::Domain domain);

}  // namespace data
}  // namespace adaptraj

#endif  // ADAPTRAJ_DATA_DATASET_H_
