#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "tensor/status.h"

namespace adaptraj {
namespace data {

namespace {

/// Positions of a track restricted to [start, start+len), or empty when the
/// track does not fully cover the range.
std::vector<sim::Vec2> TrackWindow(const sim::AgentTrack& track, int start, int len) {
  const int rel = start - track.start_step;
  if (rel < 0 || rel + len > static_cast<int>(track.points.size())) return {};
  return std::vector<sim::Vec2>(track.points.begin() + rel,
                                track.points.begin() + rel + len);
}

}  // namespace

std::vector<TrajectorySequence> ExtractSequences(const sim::Scene& scene,
                                                 const SequenceConfig& config,
                                                 sim::Domain domain, int scene_index) {
  std::vector<TrajectorySequence> out;
  const int total = config.total_len();
  for (size_t ti = 0; ti < scene.tracks.size(); ++ti) {
    const sim::AgentTrack& track = scene.tracks[ti];
    const int track_len = static_cast<int>(track.points.size());
    for (int offset = 0; offset + total <= track_len; offset += config.stride) {
      const int start = track.start_step + offset;
      TrajectorySequence seq;
      seq.domain = domain;
      seq.scene_index = scene_index;
      seq.start_step = start;
      seq.focal = TrackWindow(track, start, total);
      ADAPTRAJ_CHECK(!seq.focal.empty());

      // Collect neighbors covering the whole observation window.
      const sim::Vec2 anchor = seq.focal[config.obs_len - 1];
      std::vector<std::pair<float, std::vector<sim::Vec2>>> candidates;
      for (size_t tj = 0; tj < scene.tracks.size(); ++tj) {
        if (tj == ti) continue;
        auto window = TrackWindow(scene.tracks[tj], start, config.obs_len);
        if (window.empty()) continue;
        const float dist = (window.back() - anchor).Norm();
        candidates.emplace_back(dist, std::move(window));
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      const int keep = std::min<int>(config.max_neighbors,
                                     static_cast<int>(candidates.size()));
      for (int k = 0; k < keep; ++k) seq.neighbors.push_back(std::move(candidates[k].second));
      out.push_back(std::move(seq));
    }
  }
  return out;
}

std::vector<TrajectorySequence> ExtractSequences(const std::vector<sim::Scene>& scenes,
                                                 const SequenceConfig& config,
                                                 sim::Domain domain) {
  std::vector<TrajectorySequence> out;
  for (size_t s = 0; s < scenes.size(); ++s) {
    auto seqs = ExtractSequences(scenes[s], config, domain, static_cast<int>(s));
    out.insert(out.end(), std::make_move_iterator(seqs.begin()),
               std::make_move_iterator(seqs.end()));
  }
  return out;
}

SplitDataset ChronologicalSplit(std::vector<TrajectorySequence> sequences) {
  std::stable_sort(sequences.begin(), sequences.end(),
                   [](const TrajectorySequence& a, const TrajectorySequence& b) {
                     if (a.scene_index != b.scene_index) return a.scene_index < b.scene_index;
                     return a.start_step < b.start_step;
                   });
  SplitDataset split;
  const size_t n = sequences.size();
  const size_t train_end = n * 6 / 10;
  const size_t val_end = n * 8 / 10;
  for (size_t i = 0; i < n; ++i) {
    if (i < train_end) {
      split.train.sequences.push_back(std::move(sequences[i]));
    } else if (i < val_end) {
      split.val.sequences.push_back(std::move(sequences[i]));
    } else {
      split.test.sequences.push_back(std::move(sequences[i]));
    }
  }
  return split;
}

SplitDataset BuildDomainDataset(sim::Domain domain, int num_scenes, int steps_per_scene,
                                uint64_t seed, const SequenceConfig& config) {
  return BuildDomainDataset(sim::SpecForDomain(domain), num_scenes, steps_per_scene,
                            seed, config);
}

SplitDataset BuildDomainDataset(const sim::DomainSpec& spec, int num_scenes,
                                int steps_per_scene, uint64_t seed,
                                const SequenceConfig& config) {
  auto scenes = sim::GenerateScenes(spec, num_scenes, steps_per_scene, seed);
  return ChronologicalSplit(ExtractSequences(scenes, config, spec.domain));
}

DomainStats ComputeDomainStats(const std::vector<sim::Scene>& scenes,
                               const SequenceConfig& config, sim::Domain domain) {
  DomainStats stats;

  // Sequence count uses the same extraction as training.
  stats.num_sequences =
      static_cast<int>(ExtractSequences(scenes, config, domain).size());

  // Concurrent agent counts per recorded step.
  double num_sum = 0.0;
  double num_sq = 0.0;
  int64_t num_n = 0;
  // Per-axis absolute per-step velocity and acceleration.
  double vx_sum = 0.0, vx_sq = 0.0, vy_sum = 0.0, vy_sq = 0.0;
  int64_t v_n = 0;
  double ax_sum = 0.0, ax_sq = 0.0, ay_sum = 0.0, ay_sq = 0.0;
  int64_t a_n = 0;

  for (const sim::Scene& scene : scenes) {
    for (int step = 0; step < scene.num_steps; ++step) {
      const int c = scene.ActiveAgentsAt(step);
      if (c == 0) continue;
      num_sum += c;
      num_sq += static_cast<double>(c) * c;
      ++num_n;
    }
    for (const sim::AgentTrack& track : scene.tracks) {
      const auto& p = track.points;
      for (size_t t = 0; t + 1 < p.size(); ++t) {
        const float vx = std::fabs(p[t + 1].x - p[t].x);
        const float vy = std::fabs(p[t + 1].y - p[t].y);
        vx_sum += vx;
        vx_sq += static_cast<double>(vx) * vx;
        vy_sum += vy;
        vy_sq += static_cast<double>(vy) * vy;
        ++v_n;
      }
      for (size_t t = 0; t + 2 < p.size(); ++t) {
        const float ax = std::fabs((p[t + 2].x - p[t + 1].x) - (p[t + 1].x - p[t].x));
        const float ay = std::fabs((p[t + 2].y - p[t + 1].y) - (p[t + 1].y - p[t].y));
        ax_sum += ax;
        ax_sq += static_cast<double>(ax) * ax;
        ay_sum += ay;
        ay_sq += static_cast<double>(ay) * ay;
        ++a_n;
      }
    }
  }

  auto finish = [](double sum, double sq, int64_t n, float* avg, float* stddev) {
    if (n == 0) return;
    const double mean = sum / static_cast<double>(n);
    const double var = std::max(0.0, sq / static_cast<double>(n) - mean * mean);
    *avg = static_cast<float>(mean);
    *stddev = static_cast<float>(std::sqrt(var));
  };
  finish(num_sum, num_sq, num_n, &stats.avg_num, &stats.std_num);
  finish(vx_sum, vx_sq, v_n, &stats.avg_vx, &stats.std_vx);
  finish(vy_sum, vy_sq, v_n, &stats.avg_vy, &stats.std_vy);
  finish(ax_sum, ax_sq, a_n, &stats.avg_ax, &stats.std_ax);
  finish(ay_sum, ay_sq, a_n, &stats.avg_ay, &stats.std_ay);
  return stats;
}

}  // namespace data
}  // namespace adaptraj
