#include "data/batch.h"

#include <algorithm>
#include <numeric>

namespace adaptraj {
namespace data {

Batch MakeBatch(const std::vector<const TrajectorySequence*>& sequences,
                const SequenceConfig& config, int64_t min_neighbor_slots) {
  // An empty list is valid and yields a well-formed B = 0 batch (every
  // tensor keeps its documented rank with a zero batch extent): empty tail
  // batches and an idle serving engine produce these.
  const int64_t batch = static_cast<int64_t>(sequences.size());
  const int obs_len = config.obs_len;
  const int pred_len = config.pred_len;

  // Keep at least one (masked) slot so shapes are stable; a caller-supplied
  // floor widens padding to match an enclosing batch (see the declaration).
  int64_t max_nbr = std::max<int64_t>(1, min_neighbor_slots);
  for (const TrajectorySequence* s : sequences) {
    ADAPTRAJ_CHECK_MSG(static_cast<int>(s->focal.size()) == config.total_len(),
                       "sequence length mismatch");
    max_nbr = std::max<int64_t>(max_nbr, static_cast<int64_t>(s->neighbors.size()));
  }

  Batch out;
  out.batch_size = batch;
  out.max_neighbors = max_nbr;
  out.obs_len = obs_len;
  out.pred_len = pred_len;

  std::vector<Tensor> obs_steps;
  std::vector<Tensor> nbr_steps;
  std::vector<Tensor> fut_steps;
  for (int t = 0; t < obs_len; ++t) obs_steps.push_back(Tensor::Zeros({batch, 2}));
  for (int t = 0; t < obs_len; ++t) {
    nbr_steps.push_back(Tensor::Zeros({batch * max_nbr, 2}));
  }
  for (int t = 0; t < pred_len; ++t) fut_steps.push_back(Tensor::Zeros({batch, 2}));
  Tensor obs_flat = Tensor::Zeros({batch, obs_len * 2});
  Tensor fut_flat = Tensor::Zeros({batch, pred_len * 2});
  Tensor nbr_offsets = Tensor::Zeros({batch * max_nbr, 2});
  Tensor nbr_mask = Tensor::Zeros({batch, max_nbr});
  Tensor endpoint = Tensor::Zeros({batch, 2});

  for (int64_t b = 0; b < batch; ++b) {
    const TrajectorySequence& seq = *sequences[b];
    const sim::Vec2 anchor = seq.focal[obs_len - 1];

    for (int t = 0; t < obs_len; ++t) {
      const sim::Vec2 d =
          (t == 0) ? sim::Vec2(0.0f, 0.0f) : seq.focal[t] - seq.focal[t - 1];
      obs_steps[t].data()[b * 2 + 0] = d.x;
      obs_steps[t].data()[b * 2 + 1] = d.y;
      obs_flat.data()[b * obs_len * 2 + t * 2 + 0] = d.x;
      obs_flat.data()[b * obs_len * 2 + t * 2 + 1] = d.y;
    }
    for (int t = 0; t < pred_len; ++t) {
      const sim::Vec2 d = seq.focal[obs_len + t] -
                          seq.focal[obs_len + t - 1];
      fut_steps[t].data()[b * 2 + 0] = d.x;
      fut_steps[t].data()[b * 2 + 1] = d.y;
      fut_flat.data()[b * pred_len * 2 + t * 2 + 0] = d.x;
      fut_flat.data()[b * pred_len * 2 + t * 2 + 1] = d.y;
    }
    const sim::Vec2 ep = seq.focal.back() - anchor;
    endpoint.data()[b * 2 + 0] = ep.x;
    endpoint.data()[b * 2 + 1] = ep.y;

    for (size_t m = 0; m < seq.neighbors.size(); ++m) {
      const auto& nbr = seq.neighbors[m];
      ADAPTRAJ_CHECK_MSG(static_cast<int>(nbr.size()) == obs_len,
                         "neighbor window length mismatch");
      const int64_t row = b * max_nbr + static_cast<int64_t>(m);
      nbr_mask.data()[b * max_nbr + static_cast<int64_t>(m)] = 1.0f;
      const sim::Vec2 offset = nbr.back() - anchor;
      nbr_offsets.data()[row * 2 + 0] = offset.x;
      nbr_offsets.data()[row * 2 + 1] = offset.y;
      for (int t = 0; t < obs_len; ++t) {
        const sim::Vec2 d = (t == 0) ? sim::Vec2(0.0f, 0.0f) : nbr[t] - nbr[t - 1];
        nbr_steps[t].data()[row * 2 + 0] = d.x;
        nbr_steps[t].data()[row * 2 + 1] = d.y;
      }
    }
    out.domain_labels.push_back(seq.domain_label);
  }

  out.obs_steps = std::move(obs_steps);
  out.obs_flat = std::move(obs_flat);
  out.nbr_steps = std::move(nbr_steps);
  out.nbr_offsets = std::move(nbr_offsets);
  out.nbr_mask = std::move(nbr_mask);
  out.fut_steps = std::move(fut_steps);
  out.fut_flat = std::move(fut_flat);
  out.endpoint = std::move(endpoint);
  return out;
}

BatchLoader::BatchLoader(const Dataset* dataset, int batch_size,
                         const SequenceConfig& config, uint64_t seed, bool shuffle)
    : dataset_(dataset),
      batch_size_(batch_size),
      config_(config),
      rng_(seed),
      shuffle_(shuffle) {
  ADAPTRAJ_CHECK_MSG(dataset != nullptr, "null dataset");
  ADAPTRAJ_CHECK_MSG(batch_size >= 1, "batch size must be positive");
  order_.resize(dataset_->sequences.size());
  std::iota(order_.begin(), order_.end(), 0u);
  Reset();
}

void BatchLoader::Reset() {
  cursor_ = 0;
  if (shuffle_) std::shuffle(order_.begin(), order_.end(), rng_.engine());
}

bool BatchLoader::Next(Batch* batch) {
  ADAPTRAJ_CHECK(batch != nullptr);
  if (cursor_ >= order_.size()) return false;
  const size_t end = std::min(order_.size(), cursor_ + static_cast<size_t>(batch_size_));
  std::vector<const TrajectorySequence*> chunk;
  chunk.reserve(end - cursor_);
  for (size_t i = cursor_; i < end; ++i) {
    chunk.push_back(&dataset_->sequences[order_[i]]);
  }
  cursor_ = end;
  *batch = MakeBatch(chunk, config_);
  return true;
}

int64_t BatchLoader::NumBatches() const {
  const int64_t n = static_cast<int64_t>(dataset_->sequences.size());
  return (n + batch_size_ - 1) / batch_size_;
}

}  // namespace data
}  // namespace adaptraj
