// Multi-source domain dataset assembly for the generalization experiments.

#ifndef ADAPTRAJ_DATA_MULTI_DOMAIN_H_
#define ADAPTRAJ_DATA_MULTI_DOMAIN_H_

#include <vector>

#include "data/dataset.h"

namespace adaptraj {
namespace data {

/// Scales for the simulated corpora.
struct CorpusConfig {
  int num_scenes = 10;       // scenes per domain
  int steps_per_scene = 70;  // recorded steps per scene
  uint64_t seed = 20240101;
  /// Scales every domain's passing-side convention; 0 ablates the
  /// neighbor-driven domain-specific behaviour entirely (DESIGN.md Sec. 6).
  float passing_bias_scale = 1.0f;
  SequenceConfig seq;
};

/// Source-domain training data plus the held-out target-domain test split.
struct DomainGeneralizationData {
  /// Source domains in label order (domain_label k <-> source_domains[k]).
  std::vector<sim::Domain> source_domains;
  /// Per-source splits with domain_label assigned on every sequence.
  std::vector<SplitDataset> sources;
  /// All source train sequences pooled (labels preserved).
  Dataset pooled_train;
  /// All source val sequences pooled.
  Dataset pooled_val;
  /// Unseen target-domain split (labels = -1); evaluation uses test.
  sim::Domain target_domain = sim::Domain::kSdd;
  SplitDataset target;
};

/// Simulates the source domains and the target domain, assigns domain
/// labels, and pools the source training data.
DomainGeneralizationData BuildDomainGeneralizationData(
    const std::vector<sim::Domain>& source_domains, sim::Domain target_domain,
    const CorpusConfig& config);

}  // namespace data
}  // namespace adaptraj

#endif  // ADAPTRAJ_DATA_MULTI_DOMAIN_H_
