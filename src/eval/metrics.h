// Evaluation metrics: best-of-K ADE / FDE (Sec. IV-A3).
//
// Predictions and ground truth are per-step displacement sequences; errors
// are computed on the cumulative (absolute, anchor-relative) positions. The
// best-of-K protocol samples K futures per sequence and scores the minimum,
// matching the PECNet / LBEBM evaluation convention.

#ifndef ADAPTRAJ_EVAL_METRICS_H_
#define ADAPTRAJ_EVAL_METRICS_H_

#include <vector>

#include "core/method.h"
#include "data/batch.h"

namespace adaptraj {
namespace eval {

/// Average / final displacement errors.
struct Metrics {
  float ade = 0.0f;
  float fde = 0.0f;
};

/// Per-sequence ADE/FDE between displacement tensors [B, pred_len*2].
void PerSequenceErrors(const Tensor& pred, const Tensor& ground_truth, int pred_len,
                       std::vector<float>* ade, std::vector<float>* fde);

/// Mean ADE/FDE of one prediction (no sampling).
Metrics DisplacementErrors(const Tensor& pred, const Tensor& ground_truth, int pred_len);

/// Best-of-K evaluation of a trained method over a dataset: for every
/// sequence the minimum ADE and minimum FDE over `k_samples` sampled futures
/// are averaged across the dataset.
Metrics EvaluateMinOfK(const core::Method& method, const data::Dataset& dataset,
                       const data::SequenceConfig& config, int k_samples,
                       int batch_size, uint64_t seed);

}  // namespace eval
}  // namespace adaptraj

#endif  // ADAPTRAJ_EVAL_METRICS_H_
