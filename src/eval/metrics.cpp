#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "data/batch.h"

namespace adaptraj {
namespace eval {

void PerSequenceErrors(const Tensor& pred, const Tensor& ground_truth, int pred_len,
                       std::vector<float>* ade, std::vector<float>* fde) {
  ADAPTRAJ_CHECK(ade != nullptr && fde != nullptr);
  ADAPTRAJ_CHECK_MSG(pred.shape() == ground_truth.shape(),
                     "prediction/target shape mismatch: " << ShapeToString(pred.shape())
                                                          << " vs "
                                                          << ShapeToString(ground_truth.shape()));
  ADAPTRAJ_CHECK_MSG(pred.dim() == 2 && pred.shape()[1] == pred_len * 2,
                     "expected [B, pred_len*2]");
  const int64_t batch = pred.shape()[0];
  ade->assign(batch, 0.0f);
  fde->assign(batch, 0.0f);
  const float* p = pred.data();
  const float* g = ground_truth.data();
  for (int64_t b = 0; b < batch; ++b) {
    float px = 0.0f, py = 0.0f, gx = 0.0f, gy = 0.0f;
    double total = 0.0;
    float last = 0.0f;
    for (int t = 0; t < pred_len; ++t) {
      px += p[b * pred_len * 2 + t * 2 + 0];
      py += p[b * pred_len * 2 + t * 2 + 1];
      gx += g[b * pred_len * 2 + t * 2 + 0];
      gy += g[b * pred_len * 2 + t * 2 + 1];
      const float dx = px - gx;
      const float dy = py - gy;
      last = std::sqrt(dx * dx + dy * dy);
      total += last;
    }
    (*ade)[b] = static_cast<float>(total / pred_len);
    (*fde)[b] = last;
  }
}

Metrics DisplacementErrors(const Tensor& pred, const Tensor& ground_truth,
                           int pred_len) {
  std::vector<float> ade;
  std::vector<float> fde;
  PerSequenceErrors(pred, ground_truth, pred_len, &ade, &fde);
  Metrics m;
  for (size_t i = 0; i < ade.size(); ++i) {
    m.ade += ade[i];
    m.fde += fde[i];
  }
  m.ade /= static_cast<float>(ade.size());
  m.fde /= static_cast<float>(fde.size());
  return m;
}

Metrics EvaluateMinOfK(const core::Method& method, const data::Dataset& dataset,
                       const data::SequenceConfig& config, int k_samples,
                       int batch_size, uint64_t seed) {
  ADAPTRAJ_CHECK_MSG(!dataset.empty(), "evaluating on an empty dataset");
  ADAPTRAJ_CHECK_MSG(k_samples >= 1, "k_samples must be positive");
  Rng rng(seed);
  data::BatchLoader loader(&dataset, batch_size, config, seed, /*shuffle=*/false);

  double sum_ade = 0.0;
  double sum_fde = 0.0;
  int64_t count = 0;
  data::Batch batch;
  while (loader.Next(&batch)) {
    std::vector<float> best_ade(batch.batch_size, 1e30f);
    std::vector<float> best_fde(batch.batch_size, 1e30f);
    for (int k = 0; k < k_samples; ++k) {
      Tensor pred = method.Predict(batch, &rng, /*sample=*/k_samples > 1);
      std::vector<float> ade;
      std::vector<float> fde;
      PerSequenceErrors(pred, batch.fut_flat, batch.pred_len, &ade, &fde);
      for (int64_t b = 0; b < batch.batch_size; ++b) {
        best_ade[b] = std::min(best_ade[b], ade[b]);
        best_fde[b] = std::min(best_fde[b], fde[b]);
      }
    }
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      sum_ade += best_ade[b];
      sum_fde += best_fde[b];
      ++count;
    }
  }
  Metrics m;
  m.ade = static_cast<float>(sum_ade / static_cast<double>(count));
  m.fde = static_cast<float>(sum_fde / static_cast<double>(count));
  return m;
}

}  // namespace eval
}  // namespace adaptraj
