#include "eval/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "serve/inference_engine.h"

namespace adaptraj {
namespace eval {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

std::string MethodKindName(MethodKind kind) {
  switch (kind) {
    case MethodKind::kVanilla: return "vanilla";
    case MethodKind::kCounter: return "Counter";
    case MethodKind::kCausalMotion: return "CausalMotion";
    case MethodKind::kAdapTraj: return "AdapTraj";
  }
  ADAPTRAJ_CHECK_MSG(false, "unknown method kind");
  return "";
}

std::unique_ptr<core::Method> MakeMethod(const ExperimentConfig& config,
                                         int num_source_domains) {
  switch (config.method) {
    case MethodKind::kVanilla:
      return std::make_unique<core::VanillaMethod>(config.backbone,
                                                   config.backbone_config, config.seed);
    case MethodKind::kCounter:
      return std::make_unique<core::CounterMethod>(config.backbone,
                                                   config.backbone_config, config.seed);
    case MethodKind::kCausalMotion:
      return std::make_unique<core::CausalMotionMethod>(
          config.backbone, config.backbone_config, config.seed,
          config.causal_invariance_weight);
    case MethodKind::kAdapTraj: {
      core::AdapTrajConfig model_config = config.adaptraj_config;
      model_config.num_source_domains = num_source_domains;
      return std::make_unique<core::AdapTrajMethod>(
          config.backbone, config.backbone_config, model_config, config.seed,
          config.variant, config.adaptraj_schedule);
    }
  }
  ADAPTRAJ_CHECK_MSG(false, "unknown method kind");
  return nullptr;
}

ExperimentResult RunExperiment(const data::DomainGeneralizationData& dgd,
                               const ExperimentConfig& config) {
  auto method = MakeMethod(config, static_cast<int>(dgd.source_domains.size()));

  ExperimentResult result;
  const auto t0 = Clock::now();
  method->Train(dgd, config.train);
  result.train_seconds = Seconds(t0, Clock::now());

  data::SequenceConfig seq_cfg;
  result.target = EvaluateMinOfK(*method, dgd.target.test, seq_cfg,
                                 config.eval_samples, config.eval_batch_size,
                                 config.seed + 500);

  // Timed inference on one representative batch, plus serving throughput
  // through the batched engine at the evaluation batch size.
  const int64_t probe = std::min<int64_t>(32, dgd.target.test.size());
  std::vector<const data::TrajectorySequence*> seqs;
  for (int64_t i = 0; i < probe; ++i) seqs.push_back(&dgd.target.test.sequences[i]);
  data::Batch batch = data::MakeBatch(seqs, seq_cfg);
  result.inference_seconds = MeasureInferenceSeconds(*method, batch, 10, config.seed);
  // Cap the coalescing width at the probe count: a wider batch would be
  // mostly padding rows, understating the throughput it reports.
  result.engine_scenes_per_sec = MeasureEngineThroughput(
      *method, dgd.target.test, seq_cfg,
      std::min(config.eval_batch_size, static_cast<int>(probe)),
      static_cast<int>(probe), /*repeats=*/3, config.seed);
  return result;
}

double MeasureInferenceSeconds(const core::Method& method, const data::Batch& batch,
                               int iterations, uint64_t seed) {
  Rng rng(seed);
  // Warm-up run excluded from timing.
  (void)method.Predict(batch, &rng, /*sample=*/true);
  // Median over per-call timings rather than the mean: the first timed calls
  // can still be growing the thread-local buffer pool (and first-touch pages),
  // and a mean lets that warm-up tail inflate bench_table8. The median of the
  // sorted samples is robust to those one-sided outliers.
  std::vector<double> samples;
  samples.reserve(iterations);
  for (int i = 0; i < iterations; ++i) {
    const auto t0 = Clock::now();
    (void)method.Predict(batch, &rng, /*sample=*/true);
    samples.push_back(Seconds(t0, Clock::now()));
  }
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return 0.5 * (samples[mid - 1] + samples[mid]);
}

double MeasureEngineThroughput(const core::Method& method, const data::Dataset& dataset,
                               const data::SequenceConfig& config, int batch_size,
                               int num_scenes, int repeats, uint64_t seed,
                               int producer_threads) {
  const int64_t scenes =
      std::min<int64_t>(num_scenes, static_cast<int64_t>(dataset.size()));
  if (scenes == 0 || repeats <= 0) return 0.0;
  const int producers = std::max(1, producer_threads);

  serve::InferenceEngineOptions options;
  options.batch_size = batch_size;
  options.sample = true;
  options.seed = seed;
  options.sequence = config;

  auto run_pass = [&] {
    // A fresh engine per pass keeps every pass's slot->batch mapping (and
    // noise streams) identical, so timing samples measure the same work —
    // explicit ids pin scene i to slot i for any producer interleaving.
    serve::InferenceEngine engine(&method, options);
    std::vector<std::future<Tensor>> futures;
    SubmitScenesConcurrently(&engine, dataset.sequences, scenes, producers, &futures);
    engine.Drain();
    for (auto& f : futures) (void)f.get();
  };

  run_pass();  // warm-up (buffer pools, first-touch pages)
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = Clock::now();
    run_pass();
    samples.push_back(Seconds(t0, Clock::now()));
  }
  std::sort(samples.begin(), samples.end());
  const size_t mid = samples.size() / 2;
  const double median = samples.size() % 2 == 1
                            ? samples[mid]
                            : 0.5 * (samples[mid - 1] + samples[mid]);
  return median > 0.0 ? static_cast<double>(scenes) / median : 0.0;
}

PoissonLoadReport MeasureEnginePoissonLoad(const core::Method& method,
                                           const data::Dataset& dataset,
                                           const data::SequenceConfig& config,
                                           const PoissonLoadOptions& load) {
  ADAPTRAJ_CHECK_MSG(load.arrivals_per_sec > 0.0,
                     "Poisson load needs arrivals_per_sec > 0");
  ADAPTRAJ_CHECK_MSG(load.max_batch_delay_ms > 0,
                     "open-loop load needs a deadline flush "
                     "(max_batch_delay_ms > 0); nothing ever drains");
  ADAPTRAJ_CHECK_MSG(dataset.size() > 0, "Poisson load over an empty dataset");

  serve::InferenceEngineOptions options;
  options.batch_size = load.batch_size;
  options.sample = true;
  options.seed = load.seed;
  options.sequence = config;
  options.max_batch_delay_ms = load.max_batch_delay_ms;
  options.max_queued_requests = load.max_queued_requests;
  options.overflow_policy = load.overflow_policy;
  options.encode_cache = load.encode_cache;

  serve::SubmitOptions submit_options;
  submit_options.timeout_ms = load.request_timeout_ms;

  PoissonLoadReport report;
  report.offered_per_sec = load.arrivals_per_sec;
  report.submitted = load.num_requests;

  // Warm-up: let the method capture its full-batch execution plan
  // (tensor/plan.h) before the arrival clock starts. The plan cache lives on
  // the method and outlives engines, so a throwaway engine absorbs the
  // one-time capture while the measured engine — whose slot->batch mapping
  // and noise streams stay untouched — replays from its first batch. The
  // SLO knobs (admission bound, per-request deadline) are deliberately
  // dropped here: warm-up must never shed or expire its own requests.
  {
    serve::InferenceEngineOptions warm_options;
    warm_options.batch_size = load.batch_size;
    warm_options.sample = true;
    warm_options.seed = load.seed;
    warm_options.sequence = config;
    serve::InferenceEngine warm_engine(&method, warm_options);
    std::vector<std::future<Tensor>> warm_futures;
    const int64_t warm_rows =
        std::min<int64_t>(load.batch_size, static_cast<int64_t>(dataset.size()));
    SubmitScenesConcurrently(&warm_engine, dataset.sequences, warm_rows,
                             /*producer_threads=*/1, &warm_futures);
    warm_engine.Drain();
    for (auto& f : warm_futures) (void)f.get();
  }

  serve::InferenceEngine engine(&method, options);
  std::vector<std::future<Tensor>> futures;
  futures.reserve(static_cast<size_t>(load.num_requests));

  // Open loop: the arrival SCHEDULE is fixed by the seed before the run; a
  // slow engine does not slow the offered load down (sleep_until against
  // absolute times, so scheduling jitter never accumulates). The scene
  // stream draws from a separate seeded Rng so the repeat coin never
  // perturbs the inter-arrival gaps (and vice versa).
  Rng arrivals(load.seed + 0x9e3779b9);
  Rng scene_picker(load.seed + 0x7f4a7c15);
  const double on_rate = load.burst_on_requests > 0
                             ? load.arrivals_per_sec * load.burst_rate_multiplier
                             : load.arrivals_per_sec;
  int64_t fresh_offered = 0;  // distinct dataset scenes offered so far
  const auto t0 = Clock::now();
  auto next_arrival = t0;
  for (int i = 0; i < load.num_requests; ++i) {
    if (load.burst_on_requests > 0 && i > 0 && i % load.burst_on_requests == 0) {
      // OFF phase between bursts: a silent gap in the offered schedule.
      next_arrival += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(load.burst_off_seconds));
    }
    const double u = static_cast<double>(arrivals.Uniform(0.0f, 1.0f));
    const double gap_s = -std::log(std::max(1e-12, 1.0 - u)) / on_rate;
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next_arrival);
    // Repeat coin: resubmit a uniformly chosen earlier scene, or advance the
    // fresh cursor (cycling the dataset once it is exhausted).
    int64_t scene_index;
    const bool repeat =
        fresh_offered > 0 &&
        static_cast<double>(scene_picker.Uniform(0.0f, 1.0f)) < load.repeat_fraction;
    if (repeat) {
      scene_index = static_cast<int64_t>(
          static_cast<double>(scene_picker.Uniform(0.0f, 1.0f)) *
          static_cast<double>(fresh_offered));
      scene_index = std::min<int64_t>(scene_index, fresh_offered - 1);
    } else {
      scene_index = fresh_offered++;
    }
    futures.push_back(engine.Submit(
        dataset.sequences[static_cast<size_t>(scene_index) % dataset.size()],
        submit_options));
  }
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++report.fulfilled;
    } catch (const serve::OverloadedError&) {
      ++report.shed;
    } catch (const serve::DeadlineExceededError&) {
      ++report.expired;
    } catch (...) {
      ++report.failed;
    }
  }
  report.wall_seconds = Seconds(t0, Clock::now());
  if (report.wall_seconds > 0.0) {
    report.achieved_per_sec =
        static_cast<double>(report.fulfilled) / report.wall_seconds;
  }

  const serve::InferenceEngineStats stats = engine.stats();
  report.peak_queue_depth = stats.peak_queue_depth;
  report.queue_wait_p50_ms = stats.queue_wait.Quantile(0.50) * 1e3;
  report.queue_wait_p95_ms = stats.queue_wait.Quantile(0.95) * 1e3;
  report.queue_wait_p99_ms = stats.queue_wait.Quantile(0.99) * 1e3;
  report.batch_exec_p50_ms = stats.batch_exec.Quantile(0.50) * 1e3;
  report.batch_exec_p95_ms = stats.batch_exec.Quantile(0.95) * 1e3;
  report.batch_exec_p99_ms = stats.batch_exec.Quantile(0.99) * 1e3;
  report.encode_lookups = stats.encode_cache.lookups;
  report.encode_hits = stats.encode_cache.hits;
  report.encode_misses = stats.encode_cache.misses;
  report.encode_evictions = stats.encode_cache.evictions;
  return report;
}

void SubmitScenesConcurrently(serve::InferenceEngine* engine,
                              const std::vector<data::TrajectorySequence>& sequences,
                              int64_t count, int producer_threads,
                              std::vector<std::future<Tensor>>* futures) {
  const int producers = std::max(1, producer_threads);
  futures->clear();
  futures->resize(static_cast<size_t>(count));
  auto produce = [engine, futures, &sequences, count, producers](int64_t first) {
    for (int64_t i = first; i < count; i += producers) {
      (*futures)[static_cast<size_t>(i)] =
          engine->Submit(static_cast<uint64_t>(i), sequences[static_cast<size_t>(i)]);
    }
  };
  if (producers == 1) {
    produce(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(producers));
  for (int p = 0; p < producers; ++p) threads.emplace_back(produce, p);
  for (auto& t : threads) t.join();
}

}  // namespace eval
}  // namespace adaptraj
