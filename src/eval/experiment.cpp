#include "eval/experiment.h"

#include <algorithm>
#include <chrono>
#include <vector>

namespace adaptraj {
namespace eval {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

std::string MethodKindName(MethodKind kind) {
  switch (kind) {
    case MethodKind::kVanilla: return "vanilla";
    case MethodKind::kCounter: return "Counter";
    case MethodKind::kCausalMotion: return "CausalMotion";
    case MethodKind::kAdapTraj: return "AdapTraj";
  }
  ADAPTRAJ_CHECK_MSG(false, "unknown method kind");
  return "";
}

std::unique_ptr<core::Method> MakeMethod(const ExperimentConfig& config,
                                         int num_source_domains) {
  switch (config.method) {
    case MethodKind::kVanilla:
      return std::make_unique<core::VanillaMethod>(config.backbone,
                                                   config.backbone_config, config.seed);
    case MethodKind::kCounter:
      return std::make_unique<core::CounterMethod>(config.backbone,
                                                   config.backbone_config, config.seed);
    case MethodKind::kCausalMotion:
      return std::make_unique<core::CausalMotionMethod>(
          config.backbone, config.backbone_config, config.seed,
          config.causal_invariance_weight);
    case MethodKind::kAdapTraj: {
      core::AdapTrajConfig model_config = config.adaptraj_config;
      model_config.num_source_domains = num_source_domains;
      return std::make_unique<core::AdapTrajMethod>(
          config.backbone, config.backbone_config, model_config, config.seed,
          config.variant, config.adaptraj_schedule);
    }
  }
  ADAPTRAJ_CHECK_MSG(false, "unknown method kind");
  return nullptr;
}

ExperimentResult RunExperiment(const data::DomainGeneralizationData& dgd,
                               const ExperimentConfig& config) {
  auto method = MakeMethod(config, static_cast<int>(dgd.source_domains.size()));

  ExperimentResult result;
  const auto t0 = Clock::now();
  method->Train(dgd, config.train);
  result.train_seconds = Seconds(t0, Clock::now());

  data::SequenceConfig seq_cfg;
  result.target = EvaluateMinOfK(*method, dgd.target.test, seq_cfg,
                                 config.eval_samples, config.eval_batch_size,
                                 config.seed + 500);

  // Timed inference on one representative batch.
  const int64_t probe = std::min<int64_t>(32, dgd.target.test.size());
  std::vector<const data::TrajectorySequence*> seqs;
  for (int64_t i = 0; i < probe; ++i) seqs.push_back(&dgd.target.test.sequences[i]);
  data::Batch batch = data::MakeBatch(seqs, seq_cfg);
  result.inference_seconds = MeasureInferenceSeconds(*method, batch, 10, config.seed);
  return result;
}

double MeasureInferenceSeconds(const core::Method& method, const data::Batch& batch,
                               int iterations, uint64_t seed) {
  Rng rng(seed);
  // Warm-up run excluded from timing.
  (void)method.Predict(batch, &rng, /*sample=*/true);
  // Median over per-call timings rather than the mean: the first timed calls
  // can still be growing the thread-local buffer pool (and first-touch pages),
  // and a mean lets that warm-up tail inflate bench_table8. The median of the
  // sorted samples is robust to those one-sided outliers.
  std::vector<double> samples;
  samples.reserve(iterations);
  for (int i = 0; i < iterations; ++i) {
    const auto t0 = Clock::now();
    (void)method.Predict(batch, &rng, /*sample=*/true);
    samples.push_back(Seconds(t0, Clock::now()));
  }
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return 0.5 * (samples[mid - 1] + samples[mid]);
}

}  // namespace eval
}  // namespace adaptraj
