// Fixed-width table rendering for the benchmark binaries, which print
// paper-vs-measured rows in the layout of the paper's tables.

#ifndef ADAPTRAJ_EVAL_TABLE_H_
#define ADAPTRAJ_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace adaptraj {
namespace eval {

/// Formats a float with fixed precision ("0.911").
std::string FormatFloat(float value, int precision = 3);

/// Formats "ade/fde" cells ("0.911/1.670").
std::string FormatAdeFde(float ade, float fde, int precision = 3);

/// Monospace table with a header row and separators.
class TablePrinter {
 public:
  /// One width per column; text is left-aligned and truncated to fit.
  TablePrinter(std::vector<std::string> headers, std::vector<int> widths);

  /// Prints the header and a separator line.
  void PrintHeader() const;

  /// Prints one row (missing cells render empty).
  void PrintRow(const std::vector<std::string>& cells) const;

  /// Prints a separator line.
  void PrintSeparator() const;

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

}  // namespace eval
}  // namespace adaptraj

#endif  // ADAPTRAJ_EVAL_TABLE_H_
