#include "eval/table.h"

#include <cstdio>
#include <sstream>

#include "tensor/status.h"

namespace adaptraj {
namespace eval {

std::string FormatFloat(float value, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << value;
  return oss.str();
}

std::string FormatAdeFde(float ade, float fde, int precision) {
  return FormatFloat(ade, precision) + "/" + FormatFloat(fde, precision);
}

TablePrinter::TablePrinter(std::vector<std::string> headers, std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {
  ADAPTRAJ_CHECK_EQ(headers_.size(), widths_.size());
}

namespace {

void PrintCell(const std::string& text, int width) {
  std::string cell = text.size() > static_cast<size_t>(width)
                         ? text.substr(0, static_cast<size_t>(width))
                         : text;
  std::printf("%-*s", width, cell.c_str());
  std::printf("  ");
}

}  // namespace

void TablePrinter::PrintHeader() const {
  for (size_t i = 0; i < headers_.size(); ++i) PrintCell(headers_[i], widths_[i]);
  std::printf("\n");
  PrintSeparator();
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  for (size_t i = 0; i < widths_.size(); ++i) {
    PrintCell(i < cells.size() ? cells[i] : "", widths_[i]);
  }
  std::printf("\n");
}

void TablePrinter::PrintSeparator() const {
  int total = 0;
  for (int w : widths_) total += w + 2;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

}  // namespace eval
}  // namespace adaptraj
