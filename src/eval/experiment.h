// Experiment runner: trains one (backbone x learning-method) pair on a set
// of source domains and evaluates best-of-K ADE/FDE on the unseen target.
// Every table/figure bench is a thin loop over RunExperiment.

#ifndef ADAPTRAJ_EVAL_EXPERIMENT_H_
#define ADAPTRAJ_EVAL_EXPERIMENT_H_

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptraj_method.h"
#include "core/baselines.h"
#include "eval/metrics.h"

namespace adaptraj {
namespace serve {
class InferenceEngine;  // full definition only needed by experiment.cpp
}  // namespace serve
}  // namespace adaptraj

namespace adaptraj {
namespace eval {

/// Learning methods compared in the paper's tables.
enum class MethodKind { kVanilla, kCounter, kCausalMotion, kAdapTraj };

/// Printable method name as used in the tables.
std::string MethodKindName(MethodKind kind);

/// Full configuration of one experiment cell.
struct ExperimentConfig {
  models::BackboneKind backbone = models::BackboneKind::kPecnet;
  MethodKind method = MethodKind::kVanilla;
  models::BackboneConfig backbone_config;
  core::AdapTrajConfig adaptraj_config;          // num_source_domains set by runner
  core::AdapTrajTrainConfig adaptraj_schedule;   // Alg. 1 knobs
  core::AdapTrajVariant variant = core::AdapTrajVariant::kFull;
  core::TrainConfig train;
  float causal_invariance_weight = 10.0f;
  int eval_samples = 20;  // best-of-K
  int eval_batch_size = 64;
  uint64_t seed = 99;
};

/// Outcome of one experiment cell.
struct ExperimentResult {
  Metrics target;                 // best-of-K on the unseen target test split
  double train_seconds = 0.0;
  double inference_seconds = 0.0;  // median wall-clock per Predict call
  /// Serving throughput (scenes/sec) through an InferenceEngine coalescing
  /// eval_batch_size-scene batches over the target test split.
  double engine_scenes_per_sec = 0.0;
};

/// Instantiates an untrained method for the given configuration.
std::unique_ptr<core::Method> MakeMethod(const ExperimentConfig& config,
                                         int num_source_domains);

/// Trains on dgd's sources and evaluates on its target test split.
ExperimentResult RunExperiment(const data::DomainGeneralizationData& dgd,
                               const ExperimentConfig& config);

/// Median wall-clock seconds of one Predict call on a representative batch
/// (robust to first-call buffer-pool warm-up). Predict runs forward-only
/// (NoGradGuard inside the method), so this is the serving-path cost.
double MeasureInferenceSeconds(const core::Method& method, const data::Batch& batch,
                               int iterations, uint64_t seed);

/// Serving throughput in scenes/sec through a serve::InferenceEngine that
/// coalesces `batch_size`-scene batches: submits up to `num_scenes` test
/// sequences per pass and drains, repeating `repeats` times (median pass
/// time after one warm-up pass). The table-8 shape at batch_size in
/// {1, 8, 32} is the tracked serving metric.
///
/// `producer_threads` > 1 drives the engine's async path the way a fleet of
/// connection handlers would: that many threads submit concurrently with
/// explicit request ids (scene i at slot i), so the slot->batch mapping —
/// and therefore every byte of every result — is identical to the
/// single-producer pass; only the contention profile changes.
double MeasureEngineThroughput(const core::Method& method, const data::Dataset& dataset,
                               const data::SequenceConfig& config, int batch_size,
                               int num_scenes, int repeats, uint64_t seed,
                               int producer_threads = 1);

/// Submits sequences[0, count) to the engine with explicit slot ids (scene i
/// at slot i) from `producer_threads` concurrent threads (thread p submits
/// i = p, p + P, ...), filling futures[i]; with one producer, submits inline.
/// Explicit ids make the slot->batch mapping — and therefore every byte of
/// every result — independent of producer interleaving, and the join before
/// returning quiesces the producers as serve::InferenceEngine::Drain
/// requires. The submission half of MeasureEngineThroughput, shared with the
/// BM_InferenceEngineAsync benchmark.
void SubmitScenesConcurrently(serve::InferenceEngine* engine,
                              const std::vector<data::TrajectorySequence>& sequences,
                              int64_t count, int producer_threads,
                              std::vector<std::future<Tensor>>* futures);

}  // namespace eval
}  // namespace adaptraj

#endif  // ADAPTRAJ_EVAL_EXPERIMENT_H_
