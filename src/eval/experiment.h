// Experiment runner: trains one (backbone x learning-method) pair on a set
// of source domains and evaluates best-of-K ADE/FDE on the unseen target.
// Every table/figure bench is a thin loop over RunExperiment.

#ifndef ADAPTRAJ_EVAL_EXPERIMENT_H_
#define ADAPTRAJ_EVAL_EXPERIMENT_H_

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptraj_method.h"
#include "core/baselines.h"
#include "eval/metrics.h"

namespace adaptraj {
namespace serve {
class InferenceEngine;       // full definition only needed by experiment.cpp
enum class OverflowPolicy;   // serve/inference_engine.h
enum class EncodeCacheMode;  // serve/encode_cache.h
}  // namespace serve
}  // namespace adaptraj

namespace adaptraj {
namespace eval {

/// Learning methods compared in the paper's tables.
enum class MethodKind { kVanilla, kCounter, kCausalMotion, kAdapTraj };

/// Printable method name as used in the tables.
std::string MethodKindName(MethodKind kind);

/// Full configuration of one experiment cell.
struct ExperimentConfig {
  models::BackboneKind backbone = models::BackboneKind::kPecnet;
  MethodKind method = MethodKind::kVanilla;
  models::BackboneConfig backbone_config;
  core::AdapTrajConfig adaptraj_config;          // num_source_domains set by runner
  core::AdapTrajTrainConfig adaptraj_schedule;   // Alg. 1 knobs
  core::AdapTrajVariant variant = core::AdapTrajVariant::kFull;
  core::TrainConfig train;
  float causal_invariance_weight = 10.0f;
  int eval_samples = 20;  // best-of-K
  int eval_batch_size = 64;
  uint64_t seed = 99;
};

/// Outcome of one experiment cell.
struct ExperimentResult {
  Metrics target;                 // best-of-K on the unseen target test split
  double train_seconds = 0.0;
  double inference_seconds = 0.0;  // median wall-clock per Predict call
  /// Serving throughput (scenes/sec) through an InferenceEngine coalescing
  /// eval_batch_size-scene batches over the target test split.
  double engine_scenes_per_sec = 0.0;
};

/// Instantiates an untrained method for the given configuration.
std::unique_ptr<core::Method> MakeMethod(const ExperimentConfig& config,
                                         int num_source_domains);

/// Trains on dgd's sources and evaluates on its target test split.
ExperimentResult RunExperiment(const data::DomainGeneralizationData& dgd,
                               const ExperimentConfig& config);

/// Median wall-clock seconds of one Predict call on a representative batch
/// (robust to first-call buffer-pool warm-up). Predict runs forward-only
/// (NoGradGuard inside the method), so this is the serving-path cost.
double MeasureInferenceSeconds(const core::Method& method, const data::Batch& batch,
                               int iterations, uint64_t seed);

/// Serving throughput in scenes/sec through a serve::InferenceEngine that
/// coalesces `batch_size`-scene batches: submits up to `num_scenes` test
/// sequences per pass and drains, repeating `repeats` times (median pass
/// time after one warm-up pass). The table-8 shape at batch_size in
/// {1, 8, 32} is the tracked serving metric.
///
/// Warm-up contract: every Measure* function here reports steady-state
/// numbers — one untimed warm-up precedes the clock so one-time costs
/// (buffer-pool growth, first-touch pages, and the first-call execution-plan
/// capture of tensor/plan.h) never land in a timed sample. The plan cache
/// lives on the method, so it stays warm across the fresh-engine-per-pass
/// discipline; timed passes replay captured plans, which is also what a
/// long-running server serves.
///
/// `producer_threads` > 1 drives the engine's async path the way a fleet of
/// connection handlers would: that many threads submit concurrently with
/// explicit request ids (scene i at slot i), so the slot->batch mapping —
/// and therefore every byte of every result — is identical to the
/// single-producer pass; only the contention profile changes.
double MeasureEngineThroughput(const core::Method& method, const data::Dataset& dataset,
                               const data::SequenceConfig& config, int batch_size,
                               int num_scenes, int repeats, uint64_t seed,
                               int producer_threads = 1);

/// Submits sequences[0, count) to the engine with explicit slot ids (scene i
/// at slot i) from `producer_threads` concurrent threads (thread p submits
/// i = p, p + P, ...), filling futures[i]; with one producer, submits inline.
/// Explicit ids make the slot->batch mapping — and therefore every byte of
/// every result — independent of producer interleaving, and the join before
/// returning quiesces the producers as serve::InferenceEngine::Drain
/// requires. The submission half of MeasureEngineThroughput, shared with the
/// BM_InferenceEngineAsync benchmark.
void SubmitScenesConcurrently(serve::InferenceEngine* engine,
                              const std::vector<data::TrajectorySequence>& sequences,
                              int64_t count, int producer_threads,
                              std::vector<std::future<Tensor>>* futures);

/// Open-loop Poisson load: offered arrival schedule, not a closed
/// submit-then-drain loop, so queueing delay under overload is visible
/// instead of being absorbed by producer backpressure.
struct PoissonLoadOptions {
  /// Offered load: mean arrival rate of the exponential inter-arrival times.
  double arrivals_per_sec = 100.0;
  /// Total arrivals to offer.
  int num_requests = 256;
  /// Engine coalescing width.
  int batch_size = 8;
  /// Deadline flush so partial batches are served without a Drain (an
  /// open-loop generator never drains mid-run). Must be > 0.
  int max_batch_delay_ms = 5;
  /// Admission bound forwarded to InferenceEngineOptions::max_queued_requests
  /// (0 = unbounded). With kShed this is what keeps memory bounded at 2x
  /// overload; the report counts what was shed.
  int max_queued_requests = 0;
  /// Value-initialized to the enum's zero value, OverflowPolicy::kShed (the
  /// full enum lives in serve/inference_engine.h, opaque here).
  serve::OverflowPolicy overflow_policy{};
  /// Per-request queued-time deadline (SubmitOptions::timeout_ms); 0 = none.
  int request_timeout_ms = 0;
  /// Fraction of arrivals that RESUBMIT an already-offered scene instead of
  /// advancing to a fresh one — a seeded per-arrival coin, so the offered
  /// scene schedule is reproducible. This is the knob that drives the
  /// cross-request encoder cache's hit rate open-loop: 0 offers all-fresh
  /// traffic (every row a cache miss), 0.9 models a fleet of consumers
  /// polling a mostly-stable set of live agents.
  double repeat_fraction = 0.0;
  /// Bursty on/off arrival modulation: when burst_on_requests > 0 the
  /// schedule alternates an ON phase of that many arrivals — offered at
  /// burst_rate_multiplier x arrivals_per_sec — with a silent OFF gap of
  /// burst_off_seconds. The long-run offered rate still averages out near
  /// arrivals_per_sec when burst_off_seconds matches the time the multiplier
  /// saves, but queue depth and deadline-flush behavior see the bursts.
  /// 0 keeps the plain (memoryless) Poisson process.
  int burst_on_requests = 0;
  double burst_off_seconds = 0.0;
  double burst_rate_multiplier = 4.0;
  /// Value-initialized to EncodeCacheMode::kAuto (follow the
  /// ADAPTRAJ_ENCODE_CACHE env var); sweeps pin kOn/kOff for A/B runs.
  serve::EncodeCacheMode encode_cache{};
  /// Seeds both the inter-arrival stream and the engine's noise streams.
  uint64_t seed = 0;
};

/// Outcome of one open-loop pass: the throughput-vs-latency evidence for an
/// SLO decision, with every offered request accounted for.
struct PoissonLoadReport {
  double offered_per_sec = 0.0;    // arrivals_per_sec requested
  double achieved_per_sec = 0.0;   // fulfilled / wall-clock
  int64_t submitted = 0;           // all offered requests
  int64_t fulfilled = 0;           // futures that delivered a tensor
  int64_t shed = 0;                // OverloadedError (admission control)
  int64_t expired = 0;             // DeadlineExceededError (request deadline)
  int64_t failed = 0;              // any other exception through a future
  /// Largest pending-queue depth the engine ever saw; with an admission
  /// bound this stays <= max_queued_requests no matter the offered load.
  int64_t peak_queue_depth = 0;
  double wall_seconds = 0.0;
  // Quantiles from the engine's log-bucket histograms (milliseconds).
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p95_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  double batch_exec_p50_ms = 0.0;
  double batch_exec_p95_ms = 0.0;
  double batch_exec_p99_ms = 0.0;
  // Cross-request encoder cache disposition (serve/encode_cache.h stats,
  // surfaced as plain counters); all zero when the engine serves uncached.
  int64_t encode_lookups = 0;
  int64_t encode_hits = 0;
  int64_t encode_misses = 0;
  int64_t encode_evictions = 0;
};

/// Drives a fresh engine over `method` with Poisson arrivals (seeded, so the
/// offered schedule is reproducible). Steady state per the warm-up contract
/// above: a throwaway engine first serves one full batch — capturing the
/// method's full-batch execution plan — before the arrival clock starts, so
/// the reported queue-wait/exec quantiles measure replayed batches, not the
/// one-time capture. (Partial batches from deadline flushes use other plan
/// keys and may still capture on first sight; that cost is real per-shape
/// serving behavior, not a harness artifact.) Each arrival waits out an
/// Exp(arrivals_per_sec) gap and is submitted immediately regardless of how
/// far behind the engine is; a seeded coin picks between the next fresh
/// scene (cycling the dataset) and a resubmission of an earlier one
/// (repeat_fraction), and the burst knobs modulate the gaps into on/off
/// phases — see PoissonLoadOptions. Returns the disposition counts, the
/// p50/p95/p99 queue-wait and batch-execution quantiles from the engine's
/// histograms, and the encoder-cache counters. Sweeping arrivals_per_sec
/// across capacity yields the throughput-vs-latency curve; at ~2x capacity
/// with kShed and a queue bound, achieved_per_sec holds near capacity while
/// shed absorbs the rest.
PoissonLoadReport MeasureEnginePoissonLoad(const core::Method& method,
                                           const data::Dataset& dataset,
                                           const data::SequenceConfig& config,
                                           const PoissonLoadOptions& load);

}  // namespace eval
}  // namespace adaptraj

#endif  // ADAPTRAJ_EVAL_EXPERIMENT_H_
