#include "tensor/buffer_pool.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

namespace adaptraj {
namespace internal {

namespace {

// Caps keep a runaway workload from hoarding memory: at most kMaxEntries
// cached vectors and kMaxPoolFloats total elements per thread.
//
// kMaxEntries was tuned from the hits/misses/bytes_recycled telemetry on the
// BM_TrainEpoch_AdapTraj/1 workload (table-4 training shape, H=32, B=32,
// accum_steps=4 — a training step keeps several micro-batch graphs of a few
// hundred tensors in flight, far more distinct buffers than the inference
// graphs the original cap was sized for). Measured on that bench, varying
// only kMaxEntries:
//    64 entries: 30.9% reuse   (the PR-2 value; scans are cheap but most
//   128 entries: 36.4% reuse    training-step releases fall off the cap)
//   256 entries: 47.6% reuse   <- chosen: best epoch wall-clock
//   512 entries: 69.1% reuse    (reuse keeps climbing but the O(entries)
//                               best-fit scan starts costing more than the
//                               extra hits save; epoch time regresses ~4%)
// The bytes cap stays at 64 MiB per thread: the same sweep recycled ~200 MB
// per six epochs without ever approaching it, so entries — not bytes — bind.
// NOTE: the sweep above was measured on the list-based pool whose acquire
// scanned all entries; the exact-capacity bucket pool below makes acquires
// O(1), so the cap now bounds memory rather than scan time. 256 is kept —
// raising it is a future sweep, not a free win (cold cache lines).
constexpr size_t kMaxEntries = 256;
constexpr int64_t kMaxPoolFloats = int64_t{1} << 24;  // 64 MiB of float32

// Buffers are bucketed by exact capacity: the op-output sizes of a model
// recur every step (and, under no-grad eager release, within a step), so the
// overwhelmingly common acquire is an O(1) hash hit instead of the linear
// best-fit scan the list-based pool paid across (up to) kMaxEntries entries
// on every single op output. The scan survives only as the fallback over
// DISTINCT capacities when no exact bucket has a buffer.
struct Bucket {
  std::vector<FloatBuffer> bufs;
  /// Acquire-clock value of the last hit on this bucket; the eviction victim
  /// under cap pressure is the least-recently-useful size, so a pool full of
  /// stale shapes (a previous workload's) cannot pin itself forever by
  /// refusing every new release.
  uint64_t last_use = 0;
};

struct ThreadPool {
  std::unordered_map<size_t, Bucket> buckets;
  size_t entries = 0;
  int64_t cached_floats = 0;
  uint64_t clock = 0;
  BufferPoolStats stats;
};

/// Strictly per-thread state: thread_local storage IS the synchronization
/// (no mutex, nothing for the Clang thread-safety analysis to guard).
/// References to a ThreadPool must never escape to another thread — every
/// caller goes through this accessor and uses the result within one call.
ThreadPool& LocalPool() {
  static thread_local ThreadPool pool;
  return pool;
}

using BucketMap = std::unordered_map<size_t, Bucket>;

/// Pops a buffer from the bucket at `it`, erasing the bucket when it
/// empties: the map must track only capacities actually cached, or a
/// long-lived process that passes through many shapes would make the miss
/// and eviction scans crawl an ever-growing set of dead keys.
FloatBuffer TakeFrom(ThreadPool& pool, BucketMap::iterator it, int64_t n) {
  Bucket& bucket = it->second;
  FloatBuffer buf = std::move(bucket.bufs.back());
  bucket.bufs.pop_back();
  bucket.last_use = pool.clock;
  --pool.entries;
  pool.cached_floats -= static_cast<int64_t>(buf.capacity());
  ++pool.stats.reuses;
  pool.stats.bytes_recycled +=
      static_cast<int64_t>(buf.capacity() * sizeof(float));
  if (bucket.bufs.empty()) pool.buckets.erase(it);
  buf.resize(static_cast<size_t>(n));
  return buf;
}

/// Drops one buffer from the least-recently-used bucket. Returns false when
/// the pool holds nothing to evict.
bool EvictOne(ThreadPool& pool) {
  auto victim = pool.buckets.end();
  uint64_t oldest = UINT64_MAX;
  for (auto it = pool.buckets.begin(); it != pool.buckets.end(); ++it) {
    if (it->second.last_use < oldest) {
      oldest = it->second.last_use;
      victim = it;
    }
  }
  if (victim == pool.buckets.end()) return false;
  Bucket& bucket = victim->second;
  pool.cached_floats -= static_cast<int64_t>(bucket.bufs.back().capacity());
  bucket.bufs.pop_back();
  --pool.entries;
  if (bucket.bufs.empty()) pool.buckets.erase(victim);
  return true;
}

}  // namespace

FloatBuffer AcquireBuffer(int64_t n) {
  ThreadPool& pool = LocalPool();
  ++pool.stats.acquires;
  ++pool.clock;
  // Exact-capacity fast path: resize() is free and the hash lookup is O(1).
  auto it = pool.buckets.find(static_cast<size_t>(n));
  if (it != pool.buckets.end()) {
    return TakeFrom(pool, it, n);
  }
  // Fallback: best fit over the distinct cached capacities.
  auto best = pool.buckets.end();
  size_t best_cap = SIZE_MAX;
  for (auto b = pool.buckets.begin(); b != pool.buckets.end(); ++b) {
    if (b->first >= static_cast<size_t>(n) && b->first < best_cap) {
      best = b;
      best_cap = b->first;
    }
  }
  if (best == pool.buckets.end()) {
    return FloatBuffer(static_cast<size_t>(n));
  }
  return TakeFrom(pool, best, n);
}

FloatBuffer AcquireZeroedBuffer(int64_t n) {
  FloatBuffer buf = AcquireBuffer(n);
  std::fill(buf.begin(), buf.end(), 0.0f);
  return buf;
}

void ReleaseBuffer(FloatBuffer&& buf) {
  if (buf.capacity() == 0) return;
  ThreadPool& pool = LocalPool();
  // Oversized for the pool outright: let it free on scope exit.
  if (static_cast<int64_t>(buf.capacity()) > kMaxPoolFloats) return;
  // Under cap pressure, displace the least-recently-used size rather than
  // refusing: a refused release would let one workload's stale shapes pin
  // the pool at the cap indefinitely while every later acquire misses.
  if (pool.entries >= kMaxEntries && !EvictOne(pool)) return;
  while (pool.cached_floats + static_cast<int64_t>(buf.capacity()) > kMaxPoolFloats) {
    if (!EvictOne(pool)) return;
  }
  // Account in capacity(), which is what the pool actually retains (a large
  // buffer reused for a small tensor keeps its full allocation).
  pool.cached_floats += static_cast<int64_t>(buf.capacity());
  ++pool.entries;
  ++pool.stats.releases;
  Bucket& bucket = pool.buckets[buf.capacity()];
  if (bucket.last_use == 0) bucket.last_use = pool.clock;
  bucket.bufs.push_back(std::move(buf));
}

BufferPoolStats GetBufferPoolStats() { return LocalPool().stats; }

void ClearBufferPool() {
  ThreadPool& pool = LocalPool();
  pool.buckets.clear();
  pool.entries = 0;
  pool.cached_floats = 0;
  pool.stats = BufferPoolStats{};
}

}  // namespace internal
}  // namespace adaptraj
