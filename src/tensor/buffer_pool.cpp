#include "tensor/buffer_pool.h"

#include <algorithm>
#include <cstring>

namespace adaptraj {
namespace internal {

namespace {

// Caps keep a runaway workload from hoarding memory: at most kMaxEntries
// cached vectors and kMaxPoolFloats total elements per thread.
//
// kMaxEntries was tuned from the hits/misses/bytes_recycled telemetry on the
// BM_TrainEpoch_AdapTraj/1 workload (table-4 training shape, H=32, B=32,
// accum_steps=4 — a training step keeps several micro-batch graphs of a few
// hundred tensors in flight, far more distinct buffers than the inference
// graphs the original cap was sized for). Measured on that bench, varying
// only kMaxEntries:
//    64 entries: 30.9% reuse   (the PR-2 value; scans are cheap but most
//   128 entries: 36.4% reuse    training-step releases fall off the cap)
//   256 entries: 47.6% reuse   <- chosen: best epoch wall-clock
//   512 entries: 69.1% reuse    (reuse keeps climbing but the O(entries)
//                               best-fit scan starts costing more than the
//                               extra hits save; epoch time regresses ~4%)
// The bytes cap stays at 64 MiB per thread: the same sweep recycled ~200 MB
// per six epochs without ever approaching it, so entries — not bytes — bind.
constexpr size_t kMaxEntries = 256;
constexpr int64_t kMaxPoolFloats = int64_t{1} << 24;  // 64 MiB of float32

struct ThreadPool {
  std::vector<std::vector<float>> free_list;
  int64_t cached_floats = 0;
  BufferPoolStats stats;
};

ThreadPool& LocalPool() {
  static thread_local ThreadPool pool;
  return pool;
}

}  // namespace

std::vector<float> AcquireBuffer(int64_t n) {
  ThreadPool& pool = LocalPool();
  ++pool.stats.acquires;
  // Best fit: smallest cached capacity that still holds n. Exact-size hits
  // are common (same shapes recur every step) and make resize() free.
  size_t best = pool.free_list.size();
  size_t best_cap = SIZE_MAX;
  for (size_t i = 0; i < pool.free_list.size(); ++i) {
    const size_t cap = pool.free_list[i].capacity();
    if (cap >= static_cast<size_t>(n) && cap < best_cap) {
      best = i;
      best_cap = cap;
      if (cap == static_cast<size_t>(n)) break;
    }
  }
  if (best == pool.free_list.size()) {
    return std::vector<float>(static_cast<size_t>(n));
  }
  std::vector<float> buf = std::move(pool.free_list[best]);
  pool.free_list.erase(pool.free_list.begin() + static_cast<int64_t>(best));
  pool.cached_floats -= static_cast<int64_t>(buf.capacity());
  ++pool.stats.reuses;
  pool.stats.bytes_recycled +=
      static_cast<int64_t>(buf.capacity() * sizeof(float));
  buf.resize(static_cast<size_t>(n));
  return buf;
}

std::vector<float> AcquireZeroedBuffer(int64_t n) {
  std::vector<float> buf = AcquireBuffer(n);
  std::fill(buf.begin(), buf.end(), 0.0f);
  return buf;
}

void ReleaseBuffer(std::vector<float>&& buf) {
  if (buf.capacity() == 0) return;
  ThreadPool& pool = LocalPool();
  // Account in capacity(), which is what the pool actually retains (a large
  // buffer reused for a small tensor keeps its full allocation).
  if (pool.free_list.size() >= kMaxEntries ||
      pool.cached_floats + static_cast<int64_t>(buf.capacity()) > kMaxPoolFloats) {
    return;  // buf frees on scope exit
  }
  pool.cached_floats += static_cast<int64_t>(buf.capacity());
  ++pool.stats.releases;
  pool.free_list.push_back(std::move(buf));
}

BufferPoolStats GetBufferPoolStats() { return LocalPool().stats; }

void ClearBufferPool() {
  ThreadPool& pool = LocalPool();
  pool.free_list.clear();
  pool.cached_floats = 0;
  pool.stats = BufferPoolStats{};
}

}  // namespace internal
}  // namespace adaptraj
