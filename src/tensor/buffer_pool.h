// Thread-local recycling pool for tensor storage and backward scratch.
//
// Every op output used to zero-fill a fresh std::vector<float>; with
// thousands of small tensors per training step the allocator and the
// redundant memset dominate. The pool keeps recently released buffers
// (bucketed best-fit) so Acquire usually returns warmed capacity without
// touching the allocator. Contents of an acquired buffer are UNSPECIFIED —
// callers that rely on zeros must use AcquireZeroed.
//
// The pool is thread_local: tensors are created and destroyed on the main
// thread (pool workers only write through raw pointers), so no locking is
// needed and buffers never migrate between threads.

#ifndef ADAPTRAJ_TENSOR_BUFFER_POOL_H_
#define ADAPTRAJ_TENSOR_BUFFER_POOL_H_

#include <cstdint>

#include "tensor/aligned_buffer.h"

namespace adaptraj {
namespace internal {

/// Returns a buffer with size() == n and unspecified contents. The data()
/// pointer is 64-byte aligned (FloatBuffer), including on pool reuse.
FloatBuffer AcquireBuffer(int64_t n);

/// Returns a zero-filled buffer with size() == n.
FloatBuffer AcquireZeroedBuffer(int64_t n);

/// Donates a buffer's capacity back to the calling thread's pool.
void ReleaseBuffer(FloatBuffer&& buf);

/// Cumulative counters for introspection, tests, and the bench harness
/// (bench_tensor_ops prints them so reuse rates are tracked per benchmark).
struct BufferPoolStats {
  int64_t acquires = 0;
  int64_t reuses = 0;          // acquires served from the pool (hits)
  int64_t releases = 0;        // buffers accepted back (not dropped)
  int64_t bytes_recycled = 0;  // cumulative capacity bytes served on reuse

  int64_t hits() const { return reuses; }
  int64_t misses() const { return acquires - reuses; }
};

/// Stats for the calling thread's pool.
BufferPoolStats GetBufferPoolStats();

/// Drops all cached buffers and zeroes the stats (tests).
void ClearBufferPool();

}  // namespace internal
}  // namespace adaptraj

#endif  // ADAPTRAJ_TENSOR_BUFFER_POOL_H_
