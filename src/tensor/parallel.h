// Persistent worker-thread pool and deterministic parallel-for.
//
// Kernels parallelize by splitting an index range into fixed-size contiguous
// chunks; each chunk is executed by exactly one thread and writes a disjoint
// slice of the output. Because chunk boundaries depend only on the range and
// the grain (never on thread count or scheduling), every output element is
// produced by the same sequence of floating-point operations regardless of
// how many workers exist — results are bit-identical run to run and match
// the serial execution. Reductions that would need cross-chunk combination
// are NOT routed through this header; they stay sequential.
//
// Thread count resolution order: ADAPTRAJ_NUM_THREADS env var, then
// std::thread::hardware_concurrency(). A value of 1 (or a single-core
// machine) disables the workers entirely and ParallelFor runs inline.
//
// A second, independent pool drives scene-level data-parallel training (see
// core/parallel_trainer.h): RunTaskGroup executes a fixed list of
// coarse-grained tasks (one micro-batch forward+backward each) across
// ADAPTRAJ_TRAIN_WORKERS threads.
//
// Worker x kernel-thread budget: the two knobs compose multiplicatively, so
// the task-group layer keeps the product bounded. With
// ADAPTRAJ_TRAIN_WORKERS <= 1 training is serial and every kernel inside it
// may still fan out across all ADAPTRAJ_NUM_THREADS pool threads (the PR-1
// behaviour). With ADAPTRAJ_TRAIN_WORKERS > 1 each training task runs its
// kernels inline (single-threaded), exactly as if it were already on a
// kernel-pool worker: parallelism moves from inside each GEMM to across
// scenes, and the process never oversubscribes cores with
// workers x kernel-threads software threads. Because every kernel is
// bit-deterministic for any thread count (including inline execution), moving
// a micro-batch from the kernel-parallel to the inline regime cannot change
// its result — which is what makes trained weights bit-identical for any
// ADAPTRAJ_TRAIN_WORKERS value.
//
// Related runtime switches (kernel layer, documented here with the thread
// knob so all env configuration lives in one place):
//   ADAPTRAJ_TRAIN_WORKERS  number of data-parallel training workers used by
//                        RunTaskGroup / core::ParallelTrainer. Default:
//                        hardware concurrency, capped at 8 (groups carry at
//                        most accum_steps tasks). 1 = serial training loop.
//                        Results are bit-identical for any value; only
//                        wall-clock changes.
//   ADAPTRAJ_SIMD        "0" / "off" / "scalar" force the transcendental
//                        kernels (exp/tanh/sigmoid, softmax rows, LSTM gate
//                        activations) onto scalar libm; unset or any other
//                        value leaves the vectorized approximations on. The
//                        SIMD path also requires compiler vector-extension
//                        support and a startup accuracy sweep — see
//                        kernels::TranscendentalPath in tensor/kernels.h for
//                        the per-process override used by tests/benchmarks.
//   ADAPTRAJ_GEMM        "0" / "off" / "portable" force Gemm/BatchGemm/
//                        PlanGemm onto the portable 4x16 register-tile
//                        kernel; "avx512" / "force" force the AVX-512 8x32
//                        micro-kernel (still requires compiled-in + CPU
//                        support); unset or "auto" runs a one-time bitwise
//                        probe and enables AVX-512 only when it matches the
//                        portable kernel exactly. See kernels::GemmPath in
//                        tensor/kernels.h ("GEMM micro-kernel dispatch").
// All paths are deterministic: for a fixed input, a fixed binary, and a
// fixed path selection, results are bit-identical for any thread count.
//
// Lock-discipline annotations: every mutex-guarded structure in the repo
// (this file's pools, serve::InferenceEngine, serve::EncodeCache, the plan
// cache) is annotated with the Clang thread-safety macros from
// support/thread_annotations.h and compiled with -Werror=thread-safety on
// the CI static-analysis leg. Conventions: mutexes are support::Mutex,
// critical sections are support::MutexLock, guarded members carry
// ADAPTRAJ_GUARDED_BY(mu_), hold-the-lock helpers keep the `*Locked` name
// suffix plus ADAPTRAJ_REQUIRES(mu_), public entry points of internally
// synchronized classes carry ADAPTRAJ_EXCLUDES(mu_), and condition-variable
// waits are explicit `while (!cond) cv.Wait(lock);` loops (see
// support/sync.h for why the predicate-lambda overload is avoided). What
// the analysis cannot see — cv wait/wake pairing, atomics ordering, chunk
// disjointness — remains the TSan legs' job.

#ifndef ADAPTRAJ_TENSOR_PARALLEL_H_
#define ADAPTRAJ_TENSOR_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace adaptraj {
namespace parallel {

/// Number of threads the pool uses (>= 1; 1 means fully inline execution).
int NumThreads();

/// Rebuilds the pool with `n` threads (n >= 1). Blocks until in-flight work
/// drains. Intended for tests and benchmarks; normal code relies on the
/// environment-derived default.
void Configure(int n);

/// True while the calling thread is a pool worker (nested ParallelFor from a
/// worker runs inline to avoid deadlock).
bool InWorkerThread();

/// Out-of-line multi-chunk dispatch used by ParallelFor; call ParallelFor
/// instead. Runs inline when the pool has one thread.
void ParallelForSlow(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& body);

/// Invokes body(chunk_begin, chunk_end) over [begin, end) split into chunks
/// of at most `grain` indices. Chunks may run on any thread in any order, so
/// `body` must only write state disjoint per chunk. Blocks until all chunks
/// finish. Runs inline when the range is small or the pool has one thread.
///
/// Templated so the single-chunk fast path — the overwhelmingly common case
/// for the model-sized ops — never materializes a std::function (whose
/// capture list exceeds the small-buffer size and would heap-allocate on
/// every op call). Only a genuinely multi-chunk range pays for type erasure.
template <typename Body>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, const Body& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  if (end - begin <= grain || InWorkerThread()) {
    body(begin, end);
    return;
  }
  ParallelForSlow(begin, end, grain, body);
}

// --- Scene-level training workers -------------------------------------------

/// Number of data-parallel training workers (>= 1). Resolution order:
/// ADAPTRAJ_TRAIN_WORKERS env var (taken as-is), then hardware concurrency
/// capped at 8 (task groups rarely exceed TrainConfig::accum_steps tasks,
/// so more default workers would only idle). 1 means RunTaskGroup executes
/// its tasks inline on the calling thread.
int NumTrainWorkers();

/// Rebuilds the training-worker pool with `n` workers (n >= 1). Must not be
/// called while another thread is inside RunTaskGroup (the old pool is
/// destroyed; in-flight chunks finish, but the caller's job handle dies with
/// it). Intended for tests and benchmarks, which own the only training
/// thread; normal code relies on the environment-derived default.
void ConfigureTrainWorkers(int n);

/// Executes every task in `tasks` exactly once and blocks until all finish.
/// Tasks may run on any training worker in any order, so they must only
/// write state disjoint per task; any cross-task reduction happens after
/// this returns (with full memory visibility into what the tasks wrote).
///
/// When the training pool has more than one worker, each task body runs with
/// kernel-level ParallelFor forced inline (see the worker x kernel-thread
/// budget note above). With one worker, tasks run inline on the caller and
/// kernels keep their usual pool — the serial PR-1 behaviour.
///
/// Callers and the serving dispatcher: RunTaskGroup may be called from any
/// thread that is not itself a pool worker — core::ParallelTrainer calls it
/// from the training thread, and serve::InferenceEngine from its persistent
/// dispatcher thread (the engine's producer threads never reach this layer,
/// so the worker x kernel-thread budget is independent of producer count).
/// Concurrent calls from several threads are memory-safe — each call's job
/// is drained to completion by its own caller — but the pool workers only
/// assist the most recently submitted job, so overlapping groups lose
/// cross-task parallelism; keep one in-flight group per pool, which the
/// single-dispatcher engine and the single-threaded trainer do by
/// construction. Small groups wake only as many workers as they have tasks.
void RunTaskGroup(const std::vector<std::function<void()>>& tasks);

}  // namespace parallel
}  // namespace adaptraj

#endif  // ADAPTRAJ_TENSOR_PARALLEL_H_
