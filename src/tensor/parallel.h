// Persistent worker-thread pool and deterministic parallel-for.
//
// Kernels parallelize by splitting an index range into fixed-size contiguous
// chunks; each chunk is executed by exactly one thread and writes a disjoint
// slice of the output. Because chunk boundaries depend only on the range and
// the grain (never on thread count or scheduling), every output element is
// produced by the same sequence of floating-point operations regardless of
// how many workers exist — results are bit-identical run to run and match
// the serial execution. Reductions that would need cross-chunk combination
// are NOT routed through this header; they stay sequential.
//
// Thread count resolution order: ADAPTRAJ_NUM_THREADS env var, then
// std::thread::hardware_concurrency(). A value of 1 (or a single-core
// machine) disables the workers entirely and ParallelFor runs inline.
//
// Related runtime switches (kernel layer, documented here with the thread
// knob so all env configuration lives in one place):
//   ADAPTRAJ_SIMD        "0" / "off" / "scalar" force the transcendental
//                        kernels (exp/tanh/sigmoid, softmax rows, LSTM gate
//                        activations) onto scalar libm; unset or any other
//                        value leaves the vectorized approximations on. The
//                        SIMD path also requires compiler vector-extension
//                        support and a startup accuracy sweep — see
//                        kernels::TranscendentalPath in tensor/kernels.h for
//                        the per-process override used by tests/benchmarks.
// Both paths are deterministic: for a fixed input, a fixed binary, and a
// fixed path selection, results are bit-identical for any thread count.

#ifndef ADAPTRAJ_TENSOR_PARALLEL_H_
#define ADAPTRAJ_TENSOR_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace adaptraj {
namespace parallel {

/// Number of threads the pool uses (>= 1; 1 means fully inline execution).
int NumThreads();

/// Rebuilds the pool with `n` threads (n >= 1). Blocks until in-flight work
/// drains. Intended for tests and benchmarks; normal code relies on the
/// environment-derived default.
void Configure(int n);

/// Invokes body(chunk_begin, chunk_end) over [begin, end) split into chunks
/// of at most `grain` indices. Chunks may run on any thread in any order, so
/// `body` must only write state disjoint per chunk. Blocks until all chunks
/// finish. Runs inline when the range is small or the pool has one thread.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

/// True while the calling thread is a pool worker (nested ParallelFor from a
/// worker runs inline to avoid deadlock).
bool InWorkerThread();

}  // namespace parallel
}  // namespace adaptraj

#endif  // ADAPTRAJ_TENSOR_PARALLEL_H_
