// AVX-512 GEMM micro-kernels: 8x32 register tiles, k-unrolled FMA, row/k
// cache blocking. See gemm_avx512.h for the packed-B layout and the dispatch
// contract; kernels.cpp routes here only after CompiledIn()/CpuSupported()
// and the startup bit-exactness probe pass.
//
// This TU is compiled with -mavx512f (CMake source property) while the rest
// of the library keeps its baseline flags, so everything below is guarded on
// __AVX512F__ — without it the entry points become stubs and CompiledIn()
// reports false.
//
// The kernels are written with GCC vector extensions rather than intrinsics:
// a 64-byte vector type lowers to zmm registers, `acc += x * b` contracts to
// vfmadd under the default contraction rules, and the same source doubles as
// documentation of the arithmetic order. Per output element the accumulation
// is ascending-k fused multiply-adds — the identical sequence the portable
// 4x16 kernel produces when its TU also contracts, which is what the probe
// in kernels.cpp verifies bitwise before enabling this path.

#include "tensor/gemm_avx512.h"

#include <cstring>

namespace adaptraj {
namespace kernels {
namespace avx512 {

bool CpuSupported() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

#if defined(__AVX512F__)

bool CompiledIn() { return true; }

namespace {

typedef float V16 __attribute__((vector_size(16 * sizeof(float))));

inline V16 Load16(const float* p) {
  V16 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void Store16(float* p, V16 v) { std::memcpy(p, &v, sizeof(v)); }

/// Loads nv <= 16 floats zero-padded to a full vector.
inline V16 LoadPartial16(const float* p, int64_t nv) {
  float tmp[16] = {0};
  std::memcpy(tmp, p, static_cast<size_t>(nv) * sizeof(float));
  return Load16(tmp);
}

/// Stores the first nv <= 16 lanes.
inline void StorePartial16(float* p, V16 v, int64_t nv) {
  float tmp[16];
  Store16(tmp, v);
  std::memcpy(p, tmp, static_cast<size_t>(nv) * sizeof(float));
}

/// Stores a 32-wide accumulator pair's first nv <= 32 lanes.
inline void StoreCols(float* c, V16 lo, V16 hi, int64_t nv) {
  if (nv >= 32) {
    Store16(c, lo);
    Store16(c + 16, hi);
  } else if (nv > 16) {
    Store16(c, lo);
    StorePartial16(c + 16, hi, nv - 16);
  } else {
    StorePartial16(c, lo, nv);
  }
}

/// Loads up to 32 C columns into an accumulator pair (zero beyond nv; those
/// lanes only ever see zero-padded B products and are never stored back).
inline void LoadCols(const float* c, V16* lo, V16* hi, int64_t nv) {
  if (nv >= 32) {
    *lo = Load16(c);
    *hi = Load16(c + 16);
  } else if (nv > 16) {
    *lo = Load16(c);
    *hi = LoadPartial16(c + 16, nv - 16);
  } else {
    *lo = LoadPartial16(c, nv);
    *hi = V16{} * 0.0f;
  }
}

/// One MR x 32 register tile: C[0:MR, 0:nv] (+)= A[0:MR, 0:k] · panel.
/// `panel` is the first B row chunk, either inside a packed panel (ldb =
/// kNR, zero-padded columns) or directly inside row-major B (ldb = full row
/// stride; callers guarantee 32 in-bounds floats per row). 2*MR accumulators
/// live in registers for the whole k loop; each k step is two B loads + MR
/// broadcast-FMA pairs, unrolled by kKUnroll. No software prefetch: callers
/// block rows/k so the operands are L1-resident, where prefetch is pure
/// issue-slot overhead (measurably slower on the tile harness).
template <int MR>
void Tile(int64_t k, const float* a, int64_t lda, const float* panel,
          int64_t ldb, float* c, int64_t ldc, bool accumulate, int64_t nv) {
  V16 lo[MR], hi[MR];
  const V16 zero = V16{} * 0.0f;
  for (int r = 0; r < MR; ++r) {
    if (accumulate) {
      LoadCols(c + r * ldc, &lo[r], &hi[r], nv);
    } else {
      lo[r] = zero;
      hi[r] = zero;
    }
  }
  int64_t p = 0;
  for (; p + kKUnroll <= k; p += kKUnroll) {
    for (int64_t u = 0; u < kKUnroll; ++u) {
      const float* br = panel + (p + u) * ldb;
      const V16 b0 = Load16(br);
      const V16 b1 = Load16(br + 16);
      for (int r = 0; r < MR; ++r) {
        const float x = a[r * lda + p + u];
        lo[r] += x * b0;
        hi[r] += x * b1;
      }
    }
  }
  for (; p < k; ++p) {
    const float* br = panel + p * ldb;
    const V16 b0 = Load16(br);
    const V16 b1 = Load16(br + 16);
    for (int r = 0; r < MR; ++r) {
      const float x = a[r * lda + p];
      lo[r] += x * b0;
      hi[r] += x * b1;
    }
  }
  for (int r = 0; r < MR; ++r) StoreCols(c + r * ldc, lo[r], hi[r], nv);
}

/// Row-remainder ladder: full 8-row tiles, then 4/2/1 for m % 8. Each row's
/// element chain is independent of the grouping, so the split cannot perturb
/// results.
void TileRows(int64_t i0, int64_t i1, int64_t k, const float* a, int64_t lda,
              const float* panel, int64_t ldb, float* c, int64_t ldc,
              bool accumulate, int64_t nv) {
  int64_t i = i0;
  for (; i + 8 <= i1; i += 8) {
    // Prefetch the next row block's A into L1 while this block computes.
    if (i + 8 < i1) __builtin_prefetch(a + (i + 8) * lda);
    Tile<8>(k, a + i * lda, lda, panel, ldb, c + i * ldc, ldc, accumulate, nv);
  }
  if (i1 - i >= 4) {
    Tile<4>(k, a + i * lda, lda, panel, ldb, c + i * ldc, ldc, accumulate, nv);
    i += 4;
  }
  if (i1 - i >= 2) {
    Tile<2>(k, a + i * lda, lda, panel, ldb, c + i * ldc, ldc, accumulate, nv);
    i += 2;
  }
  if (i1 - i >= 1) {
    Tile<1>(k, a + i * lda, lda, panel, ldb, c + i * ldc, ldc, accumulate, nv);
  }
}

}  // namespace

namespace {

/// Cache-blocking extents. A serial call may cover the whole matrix (the
/// thread pool hands one thread the full row range), so the kernels block
/// rows and k here: per (row-block, k-block) the A slab, the active B panel
/// slice and the C slab all stay L1-resident. Blocking is bit-safe — each
/// C element's multiply-add chain still runs over ascending k (later k
/// blocks accumulate on the stored partial, and a float store/reload is
/// exact), so any block size produces identical bits.
constexpr int64_t kRowBlock = 32;
constexpr int64_t kKBlock = 64;

}  // namespace

void GemmRows(int64_t i0, int64_t i1, int64_t n, int64_t k, const float* a,
              int64_t lda, const float* bp, float* c, int64_t ldc,
              bool accumulate) {
  if (i0 >= i1 || n <= 0 || k <= 0) return;  // degenerate: caller's contract
  const int64_t kp = PaddedK(k);
  for (int64_t r0 = i0; r0 < i1; r0 += kRowBlock) {
    const int64_t r1 = r0 + kRowBlock < i1 ? r0 + kRowBlock : i1;
    for (int64_t p0 = 0; p0 < k; p0 += kKBlock) {
      const int64_t kb = p0 + kKBlock < k ? kKBlock : k - p0;
      const bool acc = accumulate || p0 > 0;
      for (int64_t j = 0, pj = 0; j < n; j += kNR, ++pj) {
        const float* panel = bp + pj * kp * kNR + p0 * kNR;
        const int64_t nv = n - j < kNR ? n - j : kNR;
        TileRows(r0, r1, kb, a + p0, lda, panel, kNR, c + j, ldc, acc, nv);
      }
    }
  }
}

void GemmRowsDirect(int64_t i0, int64_t i1, int64_t n, int64_t k,
                    const float* a, int64_t lda, const float* b, int64_t ldb,
                    const float* tailp, float* c, int64_t ldc,
                    bool accumulate) {
  if (i0 >= i1 || n <= 0 || k <= 0) return;  // degenerate: caller's contract
  for (int64_t r0 = i0; r0 < i1; r0 += kRowBlock) {
    const int64_t r1 = r0 + kRowBlock < i1 ? r0 + kRowBlock : i1;
    for (int64_t p0 = 0; p0 < k; p0 += kKBlock) {
      const int64_t kb = p0 + kKBlock < k ? kKBlock : k - p0;
      const bool acc = accumulate || p0 > 0;
      int64_t j = 0;
      for (; j + kNR <= n; j += kNR) {
        TileRows(r0, r1, kb, a + p0, lda, b + p0 * ldb + j, ldb, c + j, ldc,
                 acc, kNR);
      }
      if (j < n) {
        // Ragged last panel: read the caller's pre-packed zero-padded copy
        // so loads stay full-width without running past the end of a B row.
        TileRows(r0, r1, kb, a + p0, lda, tailp + p0 * kNR, kNR, c + j, ldc,
                 acc, n - j);
      }
    }
  }
}

namespace {

/// Fused plan tile: both products chain into the same accumulators (k then
/// k2, ascending), bias adds once at the end, optional relu — exactly the
/// eager Gemm + accumulate-Gemm + AddRowBias + Relu per-element order. The
/// adds in the epilogue are lone operations (nothing to contract with), so
/// they are bit-safe across translation units.
template <int MR>
void PlanTile(int64_t k, const float* a, int64_t lda, const float* panel,
              int64_t k2, const float* a2, int64_t lda2, const float* panel2,
              const float* biasp, int act, float* c, int64_t ldc, int64_t nv) {
  V16 lo[MR], hi[MR];
  const V16 zero = V16{} * 0.0f;
  for (int r = 0; r < MR; ++r) {
    lo[r] = zero;
    hi[r] = zero;
  }
  int64_t p = 0;
  for (; p + kKUnroll <= k; p += kKUnroll) {
    for (int64_t u = 0; u < kKUnroll; ++u) {
      const float* br = panel + (p + u) * kNR;
      const V16 b0 = Load16(br);
      const V16 b1 = Load16(br + 16);
      for (int r = 0; r < MR; ++r) {
        const float x = a[r * lda + p + u];
        lo[r] += x * b0;
        hi[r] += x * b1;
      }
    }
  }
  for (; p < k; ++p) {
    const float* br = panel + p * kNR;
    const V16 b0 = Load16(br);
    const V16 b1 = Load16(br + 16);
    for (int r = 0; r < MR; ++r) {
      const float x = a[r * lda + p];
      lo[r] += x * b0;
      hi[r] += x * b1;
    }
  }
  if (a2 != nullptr) {
    int64_t q = 0;
    for (; q + kKUnroll <= k2; q += kKUnroll) {
      for (int64_t u = 0; u < kKUnroll; ++u) {
        const float* br = panel2 + (q + u) * kNR;
        const V16 b0 = Load16(br);
        const V16 b1 = Load16(br + 16);
        for (int r = 0; r < MR; ++r) {
          const float x = a2[r * lda2 + q + u];
          lo[r] += x * b0;
          hi[r] += x * b1;
        }
      }
    }
    for (; q < k2; ++q) {
      const float* br = panel2 + q * kNR;
      const V16 b0 = Load16(br);
      const V16 b1 = Load16(br + 16);
      for (int r = 0; r < MR; ++r) {
        const float x = a2[r * lda2 + q];
        lo[r] += x * b0;
        hi[r] += x * b1;
      }
    }
  }
  if (biasp != nullptr) {
    // The bias row is zero-padded to a 32 multiple, so full loads are safe.
    const V16 b0 = Load16(biasp);
    const V16 b1 = Load16(biasp + 16);
    for (int r = 0; r < MR; ++r) {
      lo[r] += b0;
      hi[r] += b1;
    }
  }
  if (act == 1) {
    for (int r = 0; r < MR; ++r) {
      lo[r] = lo[r] > 0.0f ? lo[r] : zero;
      hi[r] = hi[r] > 0.0f ? hi[r] : zero;
    }
  }
  for (int r = 0; r < MR; ++r) StoreCols(c + r * ldc, lo[r], hi[r], nv);
}

}  // namespace

void PlanGemmRows(int64_t i0, int64_t i1, int64_t n, int64_t k, const float* a,
                  int64_t lda, const float* bp, int64_t k2, const float* a2,
                  int64_t lda2, const float* bp2, const float* biasp, int act,
                  float* c, int64_t ldc) {
  if (i0 >= i1 || n <= 0) return;
  const int64_t kp = PaddedK(k);
  const int64_t kp2 = PaddedK(k2);
  for (int64_t j = 0, pj = 0; j < n; j += kNR, ++pj) {
    const float* panel = bp + pj * kp * kNR;
    const float* panel2 = a2 != nullptr ? bp2 + pj * kp2 * kNR : nullptr;
    const float* bias = biasp != nullptr ? biasp + j : nullptr;
    const int64_t nv = n - j < kNR ? n - j : kNR;
    int64_t i = i0;
    for (; i + 8 <= i1; i += 8) {
      PlanTile<8>(k, a + i * lda, lda, panel, k2,
                  a2 != nullptr ? a2 + i * lda2 : nullptr, lda2, panel2, bias,
                  act, c + i * ldc + j, ldc, nv);
    }
    if (i1 - i >= 4) {
      PlanTile<4>(k, a + i * lda, lda, panel, k2,
                  a2 != nullptr ? a2 + i * lda2 : nullptr, lda2, panel2, bias,
                  act, c + i * ldc + j, ldc, nv);
      i += 4;
    }
    if (i1 - i >= 2) {
      PlanTile<2>(k, a + i * lda, lda, panel, k2,
                  a2 != nullptr ? a2 + i * lda2 : nullptr, lda2, panel2, bias,
                  act, c + i * ldc + j, ldc, nv);
      i += 2;
    }
    if (i1 - i >= 1) {
      PlanTile<1>(k, a + i * lda, lda, panel, k2,
                  a2 != nullptr ? a2 + i * lda2 : nullptr, lda2, panel2, bias,
                  act, c + i * ldc + j, ldc, nv);
    }
  }
}

#else  // !__AVX512F__: stubs so the library links on any toolchain.

bool CompiledIn() { return false; }

void GemmRows(int64_t, int64_t, int64_t, int64_t, const float*, int64_t,
              const float*, float*, int64_t, bool) {}

void GemmRowsDirect(int64_t, int64_t, int64_t, int64_t, const float*, int64_t,
                    const float*, int64_t, const float*, float*, int64_t,
                    bool) {}

void PlanGemmRows(int64_t, int64_t, int64_t, int64_t, const float*, int64_t,
                  const float*, int64_t, const float*, int64_t, const float*,
                  const float*, int, float*, int64_t) {}

#endif  // __AVX512F__

}  // namespace avx512
}  // namespace kernels
}  // namespace adaptraj
