// 64-byte-aligned float storage for tensor data, pooled scratch, and plan
// arenas/constants.
//
// The GEMM micro-kernels issue full-width (up to 512-bit) vector loads and
// stores against packed panels and tensor buffers. Correctness never depends
// on alignment (the kernels use unaligned move forms), but a 64-byte-aligned
// base guarantees no vector access straddles a cache line — on pool-recycled
// buffers as much as on fresh ones — and lets packed B panels start on cache
// line boundaries by construction. std::vector<float>'s default allocator
// only guarantees alignof(float), so every buffer that can reach a kernel is
// typed FloatBuffer instead.

#ifndef ADAPTRAJ_TENSOR_ALIGNED_BUFFER_H_
#define ADAPTRAJ_TENSOR_ALIGNED_BUFFER_H_

#include <cstddef>
#include <new>
#include <vector>

namespace adaptraj {
namespace internal {

/// Cache-line / zmm-register alignment for all kernel-visible float storage.
constexpr std::size_t kBufferAlignment = 64;

/// Minimal C++17 aligned allocator: over-aligned operator new/delete. Equal
/// to any other AlignedAllocator instance, so container moves stay cheap.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t(kBufferAlignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(kBufferAlignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept { return true; }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept { return false; }
};

/// The storage type behind tensors, pooled buffers, plan arenas and packed
/// plan constants: a float vector whose data() is always 64-byte aligned.
using FloatBuffer = std::vector<float, AlignedAllocator<float>>;

}  // namespace internal
}  // namespace adaptraj

#endif  // ADAPTRAJ_TENSOR_ALIGNED_BUFFER_H_
