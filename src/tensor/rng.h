// Seeded random number generator used by every stochastic component.
//
// All simulators, initializers and samplers take an Rng so that experiments
// are reproducible run-to-run (see DESIGN.md "Determinism").

#ifndef ADAPTRAJ_TENSOR_RNG_H_
#define ADAPTRAJ_TENSOR_RNG_H_

#include <cstdint>
#include <random>

namespace adaptraj {

/// Deterministic pseudo-random source wrapping std::mt19937_64.
class Rng {
 public:
  /// Creates a generator with the given seed.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  float Uniform(float lo, float hi) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
  }

  /// Normal sample with the given mean and standard deviation.
  float Normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi - 1);
    return dist(engine_);
  }

  /// Bernoulli trial returning true with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Underlying engine, for use with standard algorithms (e.g. shuffle).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace adaptraj

#endif  // ADAPTRAJ_TENSOR_RNG_H_
