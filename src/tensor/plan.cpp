// Capture, compilation, and replay of shape-specialized execution plans.
// See plan.h for the lifecycle and the determinism contract.
//
// Structure:
//   - a thread-local Recorder that the ops-layer hooks append structured
//     steps to (tensors resolve to slots by impl identity; every impl seen
//     during a capture is retained so heap-address reuse cannot alias slots),
//   - a compiler that rewrites the step list (LayerNorm chain, scaled/masked
//     softmax, LstmC+H, GEMM bias/activation epilogues with pre-packed
//     weights), sweeps dead steps, and assigns every intermediate an offset
//     in one pooled arena via a last-use liveness scan,
//   - per-step runner functions that replicate the eager forward loops
//     exactly (same kernels, same chunk grains, same accumulation orders),
//   - the PlanCache / PredictSession pair that methods drive.

#include "tensor/plan.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <unordered_map>
#include <utility>

#include "support/sync.h"
#include "support/thread_annotations.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace plan {

namespace {

using internal::TensorImpl;
using Impl = std::shared_ptr<TensorImpl>;

/// Mirrors ops.cpp: elementwise loops below this run inline.
constexpr int64_t kElementwiseGrain = 1 << 14;

/// Max compiled plans per cache before LRU eviction.
constexpr size_t kMaxPlans = 32;

// --- Mode --------------------------------------------------------------------

std::atomic<int> g_mode_override{static_cast<int>(Mode::kAuto)};

Mode EnvMode() {
  static const Mode resolved = [] {
    const char* env = std::getenv("ADAPTRAJ_PLAN");
    if (env == nullptr) return Mode::kOn;
    std::string v(env);
    for (char& c : v) c = static_cast<char>(std::tolower(c));
    if (v == "0" || v == "off" || v == "false") return Mode::kOff;
    if (v == "verify") return Mode::kVerify;
    return Mode::kOn;
  }();
  return resolved;
}

// --- Step / slot model -------------------------------------------------------

enum class K : int {
  kUnary, kBinary, kBroadcast, kMatMul, kBatchMatMul, kAffine, kDualMatMul,
  kLstmC, kLstmH, kTranspose, kSoftmax, kReduce, kMaxAxis, kMaskedFill,
  kCopy, kConcat, kSlice, kRandn, kRand,
  // Created by the compiler:
  kPlanGemm, kLstmCH, kScaledSoftmax, kLayerNorm,
};

struct Step;

struct ReplayCtx {
  float* const* p;      // per-slot base pointers
  const float* consts;  // packed-constant pool
  Rng* rng;
};

struct Step {
  K kind;
  std::vector<int> in;
  int out = -1;
  int out2 = -1;
  int64_t m = 0, n = 0, k = 0, k2 = 0;
  int64_t outer = 0, inner = 0, extent = 0, start = 0;
  int iop = 0;                   // Un / Bin code; kernels::PlanAct for kPlanGemm
  bool flag_a = false, flag_b = false;
  float f0 = 0.0f, f1 = 0.0f;
  Shape b_shape, out_shape;      // broadcast operand / output shapes
  std::vector<int64_t> extents;  // concat part extents
  int64_t c0 = -1, c1 = -1, c2 = -1;  // constants offsets (W, W2, bias)
  /// kPlanGemm: the kernel path the packed constants were laid out for at
  /// capture time. Replay always uses this path, so flipping the global GEMM
  /// path between capture and replay cannot misread the packing.
  kernels::GemmPath gpath = kernels::GemmPath::kPortable;
  void (*run)(ReplayCtx&, const Step&) = nullptr;
};

struct SlotDef {
  enum Kind { kInput, kExternal, kArena, kResult } kind = kArena;
  int64_t elems = 0;
  int input_index = -1;   // kInput
  Impl external;          // kExternal: retained, re-read every replay
  int64_t arena_off = -1; // kArena
};

struct CompiledPlan {
  std::vector<SlotDef> slots;
  std::vector<Step> steps;
  internal::FloatBuffer constants;
  int64_t arena_elems = 0;
  int result_slot = -1;
  Shape result_shape;
  size_t n_inputs = 0;
  int64_t fused_steps = 0;
  int64_t eliminated_steps = 0;

  Tensor Execute(const std::vector<const Tensor*>& inputs, Rng* rng) const;
};

Tensor CompiledPlan::Execute(const std::vector<const Tensor*>& inputs,
                             Rng* rng) const {
  ADAPTRAJ_CHECK_MSG(inputs.size() == n_inputs,
                     "plan replay: input count " << inputs.size() << " != "
                                                 << n_inputs);
  internal::FloatBuffer arena = internal::AcquireBuffer(arena_elems);
  auto rimpl = std::make_shared<TensorImpl>();
  rimpl->shape = result_shape;
  rimpl->data = internal::AcquireBuffer(NumElements(result_shape));
  std::vector<float*> p(slots.size(), nullptr);
  for (size_t i = 0; i < slots.size(); ++i) {
    const SlotDef& s = slots[i];
    switch (s.kind) {
      case SlotDef::kInput: {
        const Tensor* t = inputs[s.input_index];
        ADAPTRAJ_CHECK_MSG(t != nullptr && t->defined() && t->size() == s.elems,
                           "plan replay: input " << s.input_index
                                                 << " shape changed under a "
                                                    "cached plan key");
        p[i] = const_cast<float*>(t->data());
        break;
      }
      case SlotDef::kExternal:
        p[i] = s.external->data.data();
        break;
      case SlotDef::kArena:
        p[i] = arena.data() + s.arena_off;
        break;
      case SlotDef::kResult:
        p[i] = rimpl->data.data();
        break;
    }
  }
  ReplayCtx ctx{p.data(), constants.data(), rng};
  for (const Step& s : steps) s.run(ctx, s);
  internal::ReleaseBuffer(std::move(arena));
  return Tensor::FromImpl(std::move(rimpl));
}

// --- Recorder ----------------------------------------------------------------

struct Recorder {
  std::vector<SlotDef> slots;
  std::vector<Step> steps;
  std::unordered_map<const TensorImpl*, int> by_impl;
  /// Every impl seen during the capture, retained so no freed impl's heap
  /// address can be reused and aliased to a stale slot.
  std::vector<Impl> retain;
  int64_t op_outputs = 0;
  int64_t op_steps = 0;
  bool aborted = false;
  std::string abort_reason;

  void Abort(const std::string& why) {
    if (!aborted) {
      aborted = true;
      abort_reason = why;
    }
  }

  int SlotOfValue(const Tensor& t) {
    const TensorImpl* key = t.impl().get();
    auto it = by_impl.find(key);
    if (it != by_impl.end()) return it->second;
    // First sighting as a step input: a constant from outside the capture
    // (parameter, eval-mask, Zeros/Full/FromVector leaf). Retain and re-read
    // it on every replay.
    const int id = static_cast<int>(slots.size());
    SlotDef def;
    def.kind = SlotDef::kExternal;
    def.elems = t.size();
    def.external = t.impl();
    slots.push_back(std::move(def));
    by_impl.emplace(key, id);
    retain.push_back(t.impl());
    return id;
  }

  int SlotOfOutput(const Tensor& t) {
    const TensorImpl* key = t.impl().get();
    if (by_impl.count(key) != 0) {
      Abort("op output aliases an existing slot");
      return by_impl[key];
    }
    const int id = static_cast<int>(slots.size());
    SlotDef def;
    def.kind = SlotDef::kArena;
    def.elems = t.size();
    slots.push_back(std::move(def));
    by_impl.emplace(key, id);
    retain.push_back(t.impl());
    return id;
  }
};

thread_local Recorder* g_recorder = nullptr;

Recorder* ActiveRecorder() {
  Recorder* r = g_recorder;
  return (r != nullptr && !r->aborted) ? r : nullptr;
}

// --- Runners -----------------------------------------------------------------
//
// Each replicates the corresponding eager forward pass exactly: same
// kernels, same ParallelFor grains (chunking never affects bits — every op
// here is lane-independent or serial), same accumulation orders.

template <typename F>
void RunElementwise1(ReplayCtx& ctx, const Step& s, F f) {
  const float* x = ctx.p[s.in[0]];
  float* y = ctx.p[s.out];
  parallel::ParallelFor(0, s.n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) y[i] = f(x[i]);
  });
}

void RunAddScalar(ReplayCtx& c, const Step& s) {
  const float v = s.f0;
  RunElementwise1(c, s, [v](float x) { return x + v; });
}
void RunMulScalar(ReplayCtx& c, const Step& s) {
  const float v = s.f0;
  RunElementwise1(c, s, [v](float x) { return x * v; });
}
void RunRelu(ReplayCtx& c, const Step& s) {
  RunElementwise1(c, s, [](float x) { return x > 0.0f ? x : 0.0f; });
}
void RunSquare(ReplayCtx& c, const Step& s) {
  RunElementwise1(c, s, [](float x) { return x * x; });
}
void RunSqrt(ReplayCtx& c, const Step& s) {
  RunElementwise1(c, s, [](float x) { return std::sqrt(std::max(x, 0.0f)); });
}
void RunAbs(ReplayCtx& c, const Step& s) {
  RunElementwise1(c, s, [](float x) { return std::fabs(x); });
}
void RunClamp(ReplayCtx& c, const Step& s) {
  const float lo = s.f0, hi = s.f1;
  RunElementwise1(c, s, [lo, hi](float x) { return std::min(std::max(x, lo), hi); });
}
void RunLogClamped(ReplayCtx& c, const Step& s) {
  const float eps = s.f0;
  RunElementwise1(c, s, [eps](float x) { return std::log(std::max(x, eps)); });
}

template <void (*Bulk)(const float*, float*, int64_t)>
void RunTranscendental(ReplayCtx& ctx, const Step& s) {
  const float* x = ctx.p[s.in[0]];
  float* y = ctx.p[s.out];
  // Per-chunk bulk call, exactly like ElementwiseUnaryBulk.
  parallel::ParallelFor(0, s.n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    Bulk(x + lo, y + lo, hi - lo);
  });
}

template <typename F>
void RunElementwise2(ReplayCtx& ctx, const Step& s, F f) {
  const float* a = ctx.p[s.in[0]];
  const float* b = ctx.p[s.in[1]];
  float* y = ctx.p[s.out];
  parallel::ParallelFor(0, s.n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) y[i] = f(a[i], b[i]);
  });
}

void RunAdd(ReplayCtx& c, const Step& s) {
  RunElementwise2(c, s, [](float x, float y) { return x + y; });
}
void RunSub(ReplayCtx& c, const Step& s) {
  RunElementwise2(c, s, [](float x, float y) { return x - y; });
}
void RunMul(ReplayCtx& c, const Step& s) {
  RunElementwise2(c, s, [](float x, float y) { return x * y; });
}
void RunDiv(ReplayCtx& c, const Step& s) {
  RunElementwise2(c, s, [](float x, float y) { return x / y; });
}

/// ops.cpp's BroadcastCursor, replicated: odometer walk over the output
/// shape with zero strides on broadcast dims.
class BroadcastCursor {
 public:
  BroadcastCursor(const Shape& out_shape, const Shape& b_shape)
      : rank_(static_cast<int>(out_shape.size())),
        extent_(out_shape),
        index_(out_shape.size(), 0),
        stride_(out_shape.size(), 0) {
    int64_t s = 1;
    for (int d = rank_ - 1; d >= 0; --d) {
      stride_[d] = b_shape[d] == 1 ? 0 : s;
      s *= b_shape[d];
    }
  }
  int64_t offset() const { return offset_; }
  void Advance() {
    for (int d = rank_ - 1; d >= 0; --d) {
      offset_ += stride_[d];
      if (++index_[d] < extent_[d]) return;
      index_[d] = 0;
      offset_ -= stride_[d] * extent_[d];
    }
  }

 private:
  int rank_;
  Shape extent_;
  std::vector<int64_t> index_;
  std::vector<int64_t> stride_;
  int64_t offset_ = 0;
};

template <typename F>
void RunBroadcastImpl(ReplayCtx& ctx, const Step& s, F f) {
  const float* a = ctx.p[s.in[0]];
  const float* b = ctx.p[s.in[1]];
  float* y = ctx.p[s.out];
  BroadcastCursor cur(s.out_shape, s.b_shape);
  for (int64_t i = 0; i < s.n; ++i, cur.Advance()) {
    y[i] = f(a[i], b[cur.offset()]);
  }
}

void RunBroadcastAdd(ReplayCtx& c, const Step& s) {
  RunBroadcastImpl(c, s, [](float x, float y) { return x + y; });
}
void RunBroadcastMul(ReplayCtx& c, const Step& s) {
  RunBroadcastImpl(c, s, [](float x, float y) { return x * y; });
}

void RunMatMul(ReplayCtx& c, const Step& s) {
  kernels::Gemm(false, false, s.m, s.n, s.k, c.p[s.in[0]], c.p[s.in[1]],
                c.p[s.out], false);
}

void RunBatchMatMul(ReplayCtx& c, const Step& s) {
  kernels::BatchGemm(s.flag_a, s.flag_b, s.outer, s.m, s.n, s.k, c.p[s.in[0]],
                     c.p[s.in[1]], c.p[s.out], false);
}

void RunAffineGeneric(ReplayCtx& c, const Step& s) {
  kernels::Gemm(false, false, s.m, s.n, s.k, c.p[s.in[0]], c.p[s.in[1]],
                c.p[s.out], false);
  kernels::AddRowBias(c.p[s.out], c.p[s.in[2]], s.m, s.n);
}

void RunDualGeneric(ReplayCtx& c, const Step& s) {
  kernels::Gemm(false, false, s.m, s.n, s.k, c.p[s.in[0]], c.p[s.in[1]],
                c.p[s.out], false);
  kernels::Gemm(false, false, s.m, s.n, s.k2, c.p[s.in[2]], c.p[s.in[3]],
                c.p[s.out], true);
  if (s.in.size() > 4) kernels::AddRowBias(c.p[s.out], c.p[s.in[4]], s.m, s.n);
}

void RunLstmC(ReplayCtx& c, const Step& s) {
  kernels::LstmCellForwardC(c.p[s.in[0]], c.p[s.in[1]], s.m, s.n, c.p[s.out]);
}
void RunLstmH(ReplayCtx& c, const Step& s) {
  kernels::LstmCellForwardH(c.p[s.in[0]], c.p[s.in[1]], s.m, s.n, c.p[s.out]);
}
void RunLstmCH(ReplayCtx& c, const Step& s) {
  kernels::LstmCellForwardCH(c.p[s.in[0]], c.p[s.in[1]], s.m, s.n, c.p[s.out],
                             c.p[s.out2]);
}

void RunTranspose(ReplayCtx& c, const Step& s) {
  const float* a = c.p[s.in[0]];
  float* y = c.p[s.out];
  for (int64_t i = 0; i < s.m; ++i) {
    for (int64_t j = 0; j < s.n; ++j) y[j * s.m + i] = a[i * s.n + j];
  }
}

void RunSoftmax(ReplayCtx& c, const Step& s) {
  const float* x = c.p[s.in[0]];
  float* y = c.p[s.out];
  const int64_t cols = s.n;
  parallel::ParallelFor(0, s.m, /*grain=*/64, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      kernels::SoftmaxRow(&x[r * cols], &y[r * cols], cols);
    }
  });
}

void RunReduce(ReplayCtx& c, const Step& s) {
  const float* a = c.p[s.in[0]];
  float* y = c.p[s.out];
  const float scale = s.f0;
  for (int64_t ou = 0; ou < s.outer; ++ou) {
    for (int64_t iin = 0; iin < s.inner; ++iin) {
      double acc = 0.0;
      for (int64_t e = 0; e < s.extent; ++e) {
        acc += a[(ou * s.extent + e) * s.inner + iin];
      }
      y[ou * s.inner + iin] = static_cast<float>(acc) * scale;
    }
  }
}

void RunMaxAxis(ReplayCtx& c, const Step& s) {
  const float* a = c.p[s.in[0]];
  float* y = c.p[s.out];
  for (int64_t ou = 0; ou < s.outer; ++ou) {
    for (int64_t iin = 0; iin < s.inner; ++iin) {
      float best = a[(ou * s.extent) * s.inner + iin];
      for (int64_t e = 1; e < s.extent; ++e) {
        const float v = a[(ou * s.extent + e) * s.inner + iin];
        if (v > best) best = v;
      }
      y[ou * s.inner + iin] = best;
    }
  }
}

void RunMaskedFill(ReplayCtx& c, const Step& s) {
  const float* a = c.p[s.in[0]];
  const float* m = c.p[s.in[1]];
  float* y = c.p[s.out];
  const float value = s.f0;
  for (int64_t i = 0; i < s.n; ++i) y[i] = (m[i] != 0.0f) ? value : a[i];
}

void RunCopy(ReplayCtx& c, const Step& s) {
  std::memcpy(c.p[s.out], c.p[s.in[0]],
              static_cast<size_t>(s.n) * sizeof(float));
}

void RunConcat(ReplayCtx& c, const Step& s) {
  float* y = c.p[s.out];
  int64_t offset = 0;
  for (size_t part = 0; part < s.in.size(); ++part) {
    const float* src = c.p[s.in[part]];
    const int64_t ext = s.extents[part];
    for (int64_t ou = 0; ou < s.outer; ++ou) {
      std::copy(&src[ou * ext * s.inner], &src[(ou + 1) * ext * s.inner],
                &y[(ou * s.extent + offset) * s.inner]);
    }
    offset += ext;
  }
}

void RunSlice(ReplayCtx& c, const Step& s) {
  const float* a = c.p[s.in[0]];
  float* y = c.p[s.out];
  for (int64_t ou = 0; ou < s.outer; ++ou) {
    const float* src = &a[(ou * s.extent + s.start) * s.inner];
    std::copy(src, src + s.m * s.inner, &y[ou * s.m * s.inner]);
  }
}

void RunRandn(ReplayCtx& c, const Step& s) {
  float* y = c.p[s.out];
  for (int64_t i = 0; i < s.n; ++i) y[i] = c.rng->Normal(0.0f, s.f0);
}

void RunRand(ReplayCtx& c, const Step& s) {
  float* y = c.p[s.out];
  for (int64_t i = 0; i < s.n; ++i) y[i] = c.rng->Uniform(s.f0, s.f1);
}

void RunPlanGemm(ReplayCtx& c, const Step& s) {
  const float* a2 = s.in.size() > 1 ? c.p[s.in[1]] : nullptr;
  kernels::PlanGemm(s.m, s.n, s.k, c.p[s.in[0]], c.consts + s.c0, s.k2, a2,
                    s.c1 >= 0 ? c.consts + s.c1 : nullptr,
                    s.c2 >= 0 ? c.consts + s.c2 : nullptr,
                    static_cast<kernels::PlanAct>(s.iop), c.p[s.out], s.gpath);
}

void RunScaledSoftmax(ReplayCtx& c, const Step& s) {
  const float* mask = s.in.size() > 1 ? c.p[s.in[1]] : nullptr;
  kernels::ScaledMaskedSoftmaxRows(c.p[s.in[0]], mask, s.f0, s.f1, s.m, s.n,
                                   c.p[s.out]);
}

void RunLayerNorm(ReplayCtx& c, const Step& s) {
  kernels::LayerNormRows(c.p[s.in[0]], s.m, s.n, s.f0, c.p[s.out]);
}

void AssignRunner(Step& s) {
  switch (s.kind) {
    case K::kUnary:
      switch (static_cast<Un>(s.iop)) {
        case Un::kAddScalar: s.run = RunAddScalar; break;
        case Un::kMulScalar: s.run = RunMulScalar; break;
        case Un::kRelu: s.run = RunRelu; break;
        case Un::kTanh: s.run = RunTranscendental<kernels::TanhForward>; break;
        case Un::kSigmoid:
          s.run = RunTranscendental<kernels::SigmoidForward>;
          break;
        case Un::kExp: s.run = RunTranscendental<kernels::ExpForward>; break;
        case Un::kSquare: s.run = RunSquare; break;
        case Un::kSqrt: s.run = RunSqrt; break;
        case Un::kAbs: s.run = RunAbs; break;
        case Un::kClamp: s.run = RunClamp; break;
        case Un::kLogClamped: s.run = RunLogClamped; break;
      }
      break;
    case K::kBinary:
      switch (static_cast<Bin>(s.iop)) {
        case Bin::kAdd: s.run = RunAdd; break;
        case Bin::kSub: s.run = RunSub; break;
        case Bin::kMul: s.run = RunMul; break;
        case Bin::kDiv: s.run = RunDiv; break;
      }
      break;
    case K::kBroadcast:
      s.run = static_cast<Bin>(s.iop) == Bin::kAdd ? RunBroadcastAdd
                                                   : RunBroadcastMul;
      break;
    case K::kMatMul: s.run = RunMatMul; break;
    case K::kBatchMatMul: s.run = RunBatchMatMul; break;
    case K::kAffine: s.run = RunAffineGeneric; break;
    case K::kDualMatMul: s.run = RunDualGeneric; break;
    case K::kLstmC: s.run = RunLstmC; break;
    case K::kLstmH: s.run = RunLstmH; break;
    case K::kTranspose: s.run = RunTranspose; break;
    case K::kSoftmax: s.run = RunSoftmax; break;
    case K::kReduce: s.run = RunReduce; break;
    case K::kMaxAxis: s.run = RunMaxAxis; break;
    case K::kMaskedFill: s.run = RunMaskedFill; break;
    case K::kCopy: s.run = RunCopy; break;
    case K::kConcat: s.run = RunConcat; break;
    case K::kSlice: s.run = RunSlice; break;
    case K::kRandn: s.run = RunRandn; break;
    case K::kRand: s.run = RunRand; break;
    case K::kPlanGemm: s.run = RunPlanGemm; break;
    case K::kLstmCH: s.run = RunLstmCH; break;
    case K::kScaledSoftmax: s.run = RunScaledSoftmax; break;
    case K::kLayerNorm: s.run = RunLayerNorm; break;
  }
}

// --- Compiler ----------------------------------------------------------------

struct Analysis {
  std::vector<int> producer;    // slot -> step index (-1 = not produced)
  std::vector<int> consumers;   // slot -> number of consuming step inputs
};

Analysis Analyze(const std::vector<Step>& steps, size_t n_slots,
                 int result_slot) {
  Analysis a;
  a.producer.assign(n_slots, -1);
  a.consumers.assign(n_slots, 0);
  for (size_t i = 0; i < steps.size(); ++i) {
    for (int in : steps[i].in) a.consumers[in]++;
    if (steps[i].out >= 0) a.producer[steps[i].out] = static_cast<int>(i);
    if (steps[i].out2 >= 0) a.producer[steps[i].out2] = static_cast<int>(i);
  }
  if (result_slot >= 0) a.consumers[result_slot]++;
  return a;
}

bool IsUnary(const Step& s, Un op) {
  return s.kind == K::kUnary && static_cast<Un>(s.iop) == op;
}

/// True when b_shape broadcasts a per-row value over the last axis
/// (all leading dims equal, last dim 1).
bool RowBroadcast(const Shape& out_shape, const Shape& b_shape) {
  if (out_shape.empty() || out_shape.size() != b_shape.size()) return false;
  for (size_t d = 0; d + 1 < out_shape.size(); ++d) {
    if (b_shape[d] != out_shape[d]) return false;
  }
  return b_shape.back() == 1;
}

/// Fuses LstmCellC + LstmCellH over the same gates into one two-output step.
int64_t FuseLstmCH(std::vector<Step>& steps, std::vector<bool>& dead) {
  int64_t fused = 0;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (dead[i] || steps[i].kind != K::kLstmC) continue;
    for (size_t j = i + 1; j < steps.size(); ++j) {
      if (dead[j] || steps[j].kind != K::kLstmH) continue;
      if (steps[j].in[0] != steps[i].in[0] || steps[j].in[1] != steps[i].out) {
        continue;
      }
      steps[i].kind = K::kLstmCH;
      steps[i].out2 = steps[j].out;
      dead[j] = true;
      ++fused;
      break;
    }
  }
  return fused;
}

/// Fuses MulScalar [∘ MaskedFill] ∘ Softmax into one kernel step.
int64_t FuseScaledSoftmax(std::vector<Step>& steps, std::vector<bool>& dead,
                          const std::vector<SlotDef>& slots, int result_slot) {
  int64_t fused = 0;
  Analysis a = Analyze(steps, slots.size(), result_slot);
  for (size_t i = 0; i < steps.size(); ++i) {
    if (dead[i] || steps[i].kind != K::kSoftmax) continue;
    Step& sm = steps[i];
    const int x = sm.in[0];
    int pd = a.producer[x];
    if (pd < 0 || dead[pd] || a.consumers[x] != 1) continue;
    int mask = -1;
    float fill = 0.0f;
    int scale_step = -1;
    if (steps[pd].kind == K::kMaskedFill) {
      const int y = steps[pd].in[0];
      mask = steps[pd].in[1];
      fill = steps[pd].f0;
      const int pm = a.producer[y];
      if (pm < 0 || dead[pm] || a.consumers[y] != 1 ||
          !IsUnary(steps[pm], Un::kMulScalar)) {
        continue;
      }
      scale_step = pm;
    } else if (IsUnary(steps[pd], Un::kMulScalar)) {
      scale_step = pd;
      pd = -1;
    } else {
      continue;
    }
    const int base = steps[scale_step].in[0];
    if (mask >= 0 && slots[mask].elems != slots[base].elems) continue;
    sm.kind = K::kScaledSoftmax;
    sm.in.clear();
    sm.in.push_back(base);
    if (mask >= 0) sm.in.push_back(mask);
    sm.f0 = steps[scale_step].f0;
    sm.f1 = fill;
    dead[scale_step] = true;
    ++fused;
    if (pd >= 0) {
      dead[pd] = true;
      ++fused;
    }
    a = Analyze(steps, slots.size(), result_slot);
  }
  return fused;
}

/// Fuses LayerNorm's 9-step normalize chain (MeanAxis → Neg → BroadcastAdd →
/// Square → MeanAxis → AddScalar(eps) → Sqrt → Div(ones, ·) → BroadcastMul)
/// into one kernel step.
int64_t FuseLayerNorm(std::vector<Step>& steps, std::vector<bool>& dead,
                      const std::vector<SlotDef>& slots, int result_slot) {
  int64_t fused = 0;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (dead[i]) continue;
    Step& sbm = steps[i];
    if (sbm.kind != K::kBroadcast || static_cast<Bin>(sbm.iop) != Bin::kMul) {
      continue;
    }
    Analysis a = Analyze(steps, slots.size(), result_slot);
    const int centered = sbm.in[0];
    const int inv = sbm.in[1];
    const int pi = a.producer[inv];
    if (pi < 0 || dead[pi] || a.consumers[inv] != 1 ||
        steps[pi].kind != K::kBinary ||
        static_cast<Bin>(steps[pi].iop) != Bin::kDiv) {
      continue;
    }
    const int ones = steps[pi].in[0];
    const int sd = steps[pi].in[1];
    if (slots[ones].kind != SlotDef::kExternal) continue;
    {
      const internal::FloatBuffer& od = slots[ones].external->data;
      if (!std::all_of(od.begin(), od.end(),
                       [](float v) { return v == 1.0f; })) {
        continue;
      }
    }
    const int psd = a.producer[sd];
    if (psd < 0 || dead[psd] || a.consumers[sd] != 1 ||
        !IsUnary(steps[psd], Un::kSqrt)) {
      continue;
    }
    const int veps = steps[psd].in[0];
    const int pveps = a.producer[veps];
    if (pveps < 0 || dead[pveps] || a.consumers[veps] != 1 ||
        !IsUnary(steps[pveps], Un::kAddScalar)) {
      continue;
    }
    const float eps = steps[pveps].f0;
    const int var = steps[pveps].in[0];
    const int pvar = a.producer[var];
    if (pvar < 0 || dead[pvar] || a.consumers[var] != 1 ||
        steps[pvar].kind != K::kReduce || !steps[pvar].flag_a ||
        steps[pvar].inner != 1) {
      continue;
    }
    const int sq = steps[pvar].in[0];
    const int psq = a.producer[sq];
    if (psq < 0 || dead[psq] || a.consumers[sq] != 1 ||
        !IsUnary(steps[psq], Un::kSquare) || steps[psq].in[0] != centered) {
      continue;
    }
    const int pc = a.producer[centered];
    if (pc < 0 || dead[pc] || a.consumers[centered] != 2 ||
        steps[pc].kind != K::kBroadcast ||
        static_cast<Bin>(steps[pc].iop) != Bin::kAdd ||
        !RowBroadcast(steps[pc].out_shape, steps[pc].b_shape) ||
        !RowBroadcast(sbm.out_shape, sbm.b_shape)) {
      continue;
    }
    const int x = steps[pc].in[0];
    const int negmean = steps[pc].in[1];
    const int pneg = a.producer[negmean];
    if (pneg < 0 || dead[pneg] || a.consumers[negmean] != 1 ||
        !IsUnary(steps[pneg], Un::kMulScalar) || steps[pneg].f0 != -1.0f) {
      continue;
    }
    const int mean = steps[pneg].in[0];
    const int pmean = a.producer[mean];
    if (pmean < 0 || dead[pmean] || a.consumers[mean] != 1 ||
        steps[pmean].kind != K::kReduce || !steps[pmean].flag_a ||
        steps[pmean].inner != 1 || steps[pmean].in[0] != x) {
      continue;
    }
    const int64_t rows = steps[pmean].outer;
    const int64_t cols = steps[pmean].extent;
    if (steps[pvar].outer != rows || steps[pvar].extent != cols) continue;
    sbm.kind = K::kLayerNorm;
    sbm.in.clear();
    sbm.in.push_back(x);
    sbm.m = rows;
    sbm.n = cols;
    sbm.f0 = eps;
    for (int d : {pi, psd, pveps, pvar, psq, pc, pneg, pmean}) dead[d] = true;
    fused += 8;
  }
  return fused;
}

/// Converts Affine / DualMatMul / MatMul steps whose weights are external
/// into pre-packed PlanGemm steps, folding a single-consumer Relu / Tanh /
/// Sigmoid epilogue.
int64_t FuseGemmEpilogues(std::vector<Step>& steps, std::vector<bool>& dead,
                          std::vector<SlotDef>& slots, int result_slot,
                          internal::FloatBuffer& constants) {
  int64_t fused = 0;
  Analysis a = Analyze(steps, slots.size(), result_slot);
  // Weights pack into the layout of the GEMM path active at capture time —
  // resolved PER STEP via GemmPathForShape (sub-panel products pack for and
  // replay on the portable kernel; full-width ones for AVX-512). Each
  // kPlanGemm step records its path so replay reads the layout it was packed
  // for even if the global path is flipped afterwards.
  auto pack = [&constants](const SlotDef& slot, int64_t k, int64_t n,
                           kernels::GemmPath gpath) {
    const int64_t off = static_cast<int64_t>(constants.size());
    constants.resize(constants.size() +
                     static_cast<size_t>(kernels::PlanPackedSize(k, n, gpath)));
    kernels::PlanPackWeightFor(slot.external->data.data(), k, n, gpath,
                               constants.data() + off);
    return off;
  };
  auto pack_bias = [&constants](const SlotDef& slot, int64_t n,
                                kernels::GemmPath gpath) {
    const int64_t off = static_cast<int64_t>(constants.size());
    constants.resize(constants.size() +
                     static_cast<size_t>(kernels::PlanPackedBiasSize(n, gpath)));
    kernels::PlanPackBiasFor(slot.external->data.data(), n, gpath,
                             constants.data() + off);
    return off;
  };
  for (size_t i = 0; i < steps.size(); ++i) {
    if (dead[i]) continue;
    Step& s = steps[i];
    const bool is_affine = s.kind == K::kAffine;
    const bool is_dual = s.kind == K::kDualMatMul;
    const bool is_matmul = s.kind == K::kMatMul;
    if (!is_affine && !is_dual && !is_matmul) continue;
    const int w1 = is_dual ? s.in[1] : s.in[1];
    if (slots[w1].kind != SlotDef::kExternal) continue;
    int w2 = -1, bias = -1;
    if (is_dual) {
      w2 = s.in[3];
      if (slots[w2].kind != SlotDef::kExternal) continue;
      if (s.in.size() > 4) bias = s.in[4];
    } else if (is_affine) {
      bias = s.in[2];
    }
    if (bias >= 0 && slots[bias].kind != SlotDef::kExternal) continue;
    // Fold a single-consumer activation into the epilogue.
    kernels::PlanAct act = kernels::PlanAct::kNone;
    if (s.out != result_slot && a.consumers[s.out] == 1) {
      for (size_t j = i + 1; j < steps.size(); ++j) {
        if (dead[j] || steps[j].kind != K::kUnary) continue;
        if (steps[j].in[0] != s.out) continue;
        const Un op = static_cast<Un>(steps[j].iop);
        if (op == Un::kRelu) act = kernels::PlanAct::kRelu;
        else if (op == Un::kTanh) act = kernels::PlanAct::kTanh;
        else if (op == Un::kSigmoid) act = kernels::PlanAct::kSigmoid;
        if (act != kernels::PlanAct::kNone) {
          s.out = steps[j].out;
          dead[j] = true;
          ++fused;
          a = Analyze(steps, slots.size(), result_slot);
        }
        break;
      }
    }
    const kernels::GemmPath gpath = kernels::GemmPathForShape(s.n);
    s.c0 = pack(slots[w1], s.k, s.n, gpath);
    if (w2 >= 0) s.c1 = pack(slots[w2], s.k2, s.n, gpath);
    if (bias >= 0) s.c2 = pack_bias(slots[bias], s.n, gpath);
    const int a1 = s.in[0];
    const int a2 = is_dual ? s.in[2] : -1;
    s.in.clear();
    s.in.push_back(a1);
    if (a2 >= 0) s.in.push_back(a2);
    s.kind = K::kPlanGemm;
    s.iop = static_cast<int>(act);
    s.gpath = gpath;
    if (!is_dual) s.k2 = 0;
    ++fused;  // the packed conversion itself removes the bias/pack traffic
  }
  return fused;
}

/// Reverse liveness sweep; rng-drawing steps are side-effecting and never
/// removed (they keep the replayed rng stream aligned with eager).
int64_t EliminateDeadSteps(std::vector<Step>& steps, std::vector<bool>& dead,
                           size_t n_slots, int result_slot) {
  std::vector<bool> needed(n_slots, false);
  if (result_slot >= 0) needed[result_slot] = true;
  int64_t eliminated = 0;
  for (size_t ri = steps.size(); ri-- > 0;) {
    if (dead[ri]) continue;
    Step& s = steps[ri];
    const bool side_effect = s.kind == K::kRandn || s.kind == K::kRand;
    const bool live = side_effect || (s.out >= 0 && needed[s.out]) ||
                      (s.out2 >= 0 && needed[s.out2]);
    if (!live) {
      dead[ri] = true;
      ++eliminated;
      continue;
    }
    for (int in : s.in) needed[in] = true;
  }
  return eliminated;
}

/// Pads a slot's element count so distinct arena blocks stay 64-byte
/// aligned relative to the arena base.
int64_t PadElems(int64_t elems) { return (elems + 15) & ~int64_t{15}; }

/// Last-use liveness scan assigning every arena slot an offset, reusing
/// freed blocks of the same padded size.
int64_t AssignArena(std::vector<Step>& steps, std::vector<SlotDef>& slots,
                    int result_slot) {
  const int n_slots = static_cast<int>(slots.size());
  std::vector<int> last_use(n_slots, -1);
  for (size_t i = 0; i < steps.size(); ++i) {
    for (int in : steps[i].in) last_use[in] = static_cast<int>(i);
    if (steps[i].out >= 0) {
      last_use[steps[i].out] =
          std::max(last_use[steps[i].out], static_cast<int>(i));
    }
    if (steps[i].out2 >= 0) {
      last_use[steps[i].out2] =
          std::max(last_use[steps[i].out2], static_cast<int>(i));
    }
  }
  if (result_slot >= 0) last_use[result_slot] = static_cast<int>(steps.size());
  std::map<int64_t, std::vector<int64_t>> free_by_size;
  int64_t watermark = 0;
  for (size_t i = 0; i < steps.size(); ++i) {
    for (int out : {steps[i].out, steps[i].out2}) {
      if (out < 0 || slots[out].kind != SlotDef::kArena) continue;
      const int64_t sz = PadElems(slots[out].elems);
      auto& freelist = free_by_size[sz];
      if (!freelist.empty()) {
        slots[out].arena_off = freelist.back();
        freelist.pop_back();
      } else {
        slots[out].arena_off = watermark;
        watermark += sz;
      }
    }
    // Free blocks whose last use is this step (inputs and never-read
    // outputs), after the step's own outputs are placed.
    std::vector<int> dying;
    for (int in : steps[i].in) {
      if (slots[in].kind == SlotDef::kArena &&
          last_use[in] == static_cast<int>(i)) {
        dying.push_back(in);
      }
    }
    for (int out : {steps[i].out, steps[i].out2}) {
      if (out >= 0 && slots[out].kind == SlotDef::kArena &&
          last_use[out] == static_cast<int>(i)) {
        dying.push_back(out);
      }
    }
    std::sort(dying.begin(), dying.end());
    dying.erase(std::unique(dying.begin(), dying.end()), dying.end());
    for (int slot : dying) {
      free_by_size[PadElems(slots[slot].elems)].push_back(
          slots[slot].arena_off);
    }
  }
  return watermark;
}

std::shared_ptr<const CompiledPlan> Compile(Recorder& rec,
                                            const Tensor& result,
                                            size_t n_inputs,
                                            std::string* error) {
  auto it = rec.by_impl.find(result.impl().get());
  if (it == rec.by_impl.end() ||
      rec.slots[it->second].kind != SlotDef::kArena) {
    *error = "result is not produced by a recorded step";
    return nullptr;
  }
  const int result_slot = it->second;

  auto plan = std::make_shared<CompiledPlan>();
  plan->slots = std::move(rec.slots);
  plan->steps = std::move(rec.steps);
  plan->result_slot = result_slot;
  plan->result_shape = result.shape();
  plan->n_inputs = n_inputs;

  std::vector<bool> dead(plan->steps.size(), false);
  plan->fused_steps += FuseLayerNorm(plan->steps, dead, plan->slots, result_slot);
  plan->fused_steps +=
      FuseScaledSoftmax(plan->steps, dead, plan->slots, result_slot);
  plan->fused_steps += FuseLstmCH(plan->steps, dead);
  plan->fused_steps += FuseGemmEpilogues(plan->steps, dead, plan->slots,
                                         result_slot, plan->constants);
  plan->eliminated_steps =
      EliminateDeadSteps(plan->steps, dead, plan->slots.size(), result_slot);

  std::vector<Step> live;
  live.reserve(plan->steps.size());
  for (size_t i = 0; i < plan->steps.size(); ++i) {
    if (!dead[i]) live.push_back(std::move(plan->steps[i]));
  }
  plan->steps = std::move(live);

  plan->slots[result_slot].kind = SlotDef::kResult;
  plan->arena_elems = AssignArena(plan->steps, plan->slots, result_slot);
  for (Step& s : plan->steps) AssignRunner(s);
  return plan;
}

}  // namespace

// --- CacheStats --------------------------------------------------------------

CacheStats& CacheStats::operator+=(const CacheStats& o) {
  plans += o.plans;
  hits += o.hits;
  misses += o.misses;
  captures += o.captures;
  aborted += o.aborted;
  fused_steps += o.fused_steps;
  eliminated_steps += o.eliminated_steps;
  arena_bytes += o.arena_bytes;
  constant_bytes += o.constant_bytes;
  return *this;
}

// --- Mode --------------------------------------------------------------------

void SetMode(Mode mode) {
  g_mode_override.store(static_cast<int>(mode), std::memory_order_relaxed);
}

Mode EffectiveMode() {
  const Mode o =
      static_cast<Mode>(g_mode_override.load(std::memory_order_relaxed));
  return o == Mode::kAuto ? EnvMode() : o;
}

// --- PlanCache ---------------------------------------------------------------

namespace internal_plan {

struct CacheState {
  mutable support::Mutex mu;
  struct Entry {
    std::shared_ptr<const CompiledPlan> plan;
    bool unplannable = false;
    bool capturing = false;
    uint64_t last_used = 0;
  };
  std::map<std::string, Entry> entries ADAPTRAJ_GUARDED_BY(mu);
  uint64_t tick ADAPTRAJ_GUARDED_BY(mu) = 0;
  std::atomic<int64_t> hits{0};
  std::atomic<int64_t> misses{0};
  std::atomic<int64_t> captures{0};
  std::atomic<int64_t> aborted{0};
};

}  // namespace internal_plan

using internal_plan::CacheState;

PlanCache::PlanCache() : state_(std::make_unique<CacheState>()) {}
PlanCache::~PlanCache() = default;

CacheStats PlanCache::stats() const {
  CacheStats s;
  s.hits = state_->hits.load(std::memory_order_relaxed);
  s.misses = state_->misses.load(std::memory_order_relaxed);
  s.captures = state_->captures.load(std::memory_order_relaxed);
  s.aborted = state_->aborted.load(std::memory_order_relaxed);
  support::MutexLock lock(state_->mu);
  for (const auto& [key, entry] : state_->entries) {
    (void)key;
    if (entry.plan == nullptr) continue;
    s.plans++;
    s.fused_steps += entry.plan->fused_steps;
    s.eliminated_steps += entry.plan->eliminated_steps;
    s.arena_bytes += entry.plan->arena_elems * static_cast<int64_t>(sizeof(float));
    s.constant_bytes += static_cast<int64_t>(entry.plan->constants.size()) *
                        static_cast<int64_t>(sizeof(float));
  }
  return s;
}

void PlanCache::Invalidate() {
  support::MutexLock lock(state_->mu);
  // Entries mid-capture keep their marker; the capturing session's Finish
  // still runs and stores a plan compiled from post-mutation values, which
  // is exactly what the caller wants after an in-place update.
  for (auto it = state_->entries.begin(); it != state_->entries.end();) {
    if (it->second.capturing) {
      it->second.plan = nullptr;
      it->second.unplannable = false;
      ++it;
    } else {
      it = state_->entries.erase(it);
    }
  }
}

// --- PredictSession ----------------------------------------------------------

namespace internal_plan {

struct SessionState {
  PlanCache* cache = nullptr;
  std::string key;
  std::vector<const Tensor*> inputs;
  Rng* rng = nullptr;
  Mode mode = Mode::kOff;
  std::shared_ptr<const CompiledPlan> replay_plan;  // kOn fast path
  std::shared_ptr<const CompiledPlan> verify_plan;  // kVerify check path
  std::unique_ptr<Rng> verify_rng;  // snapshot taken before the eager body
  std::unique_ptr<Recorder> recorder;
  bool counted = false;
};

}  // namespace internal_plan

using internal_plan::SessionState;

PredictSession::PredictSession(PlanCache* cache, std::string key,
                               std::vector<const Tensor*> inputs, Rng* rng)
    : state_(std::make_unique<SessionState>()) {
  state_->cache = cache;
  state_->key = std::move(key);
  state_->inputs = std::move(inputs);
  state_->rng = rng;
  state_->mode = EffectiveMode();
  if (state_->mode == Mode::kOff || cache == nullptr) return;
  // Nested captures (a Predict called from inside a recorded Predict) stay
  // eager: the outer recording owns the thread.
  if (g_recorder != nullptr) return;
  // Two input positions sharing one impl would collapse to one slot and
  // rebind ambiguously on replay; such calls stay eager.
  {
    std::unordered_map<const TensorImpl*, int> seen;
    for (const Tensor* t : state_->inputs) {
      if (t == nullptr || !t->defined()) continue;
      if (++seen[t->impl().get()] > 1) return;
    }
  }

  CacheState* cs = cache->state_.get();
  support::MutexLock lock(cs->mu);
  auto& entry = cs->entries[state_->key];
  entry.last_used = ++cs->tick;
  if (entry.plan != nullptr) {
    if (state_->mode == Mode::kOn) {
      state_->replay_plan = entry.plan;
    } else {  // kVerify: run eager AND replay, then compare
      state_->verify_plan = entry.plan;
      if (rng != nullptr) state_->verify_rng = std::make_unique<Rng>(*rng);
    }
    return;
  }
  if (entry.unplannable || entry.capturing) {
    cs->misses.fetch_add(1, std::memory_order_relaxed);
    state_->counted = true;
    return;
  }
  entry.capturing = true;
  state_->recorder = std::make_unique<Recorder>();
  for (size_t i = 0; i < state_->inputs.size(); ++i) {
    const Tensor* t = state_->inputs[i];
    if (t == nullptr || !t->defined()) continue;
    SlotDef def;
    def.kind = SlotDef::kInput;
    def.elems = t->size();
    def.input_index = static_cast<int>(i);
    const int id = static_cast<int>(state_->recorder->slots.size());
    state_->recorder->slots.push_back(std::move(def));
    state_->recorder->by_impl.emplace(t->impl().get(), id);
    state_->recorder->retain.push_back(t->impl());
  }
  g_recorder = state_->recorder.get();
}

PredictSession::~PredictSession() {
  if (state_->recorder != nullptr &&
      g_recorder == state_->recorder.get()) {
    // Finish never ran (exception or early return): release the capture
    // marker so a later call can retry.
    g_recorder = nullptr;
    CacheState* cs = state_->cache->state_.get();
    support::MutexLock lock(cs->mu);
    auto it = cs->entries.find(state_->key);
    if (it != cs->entries.end()) it->second.capturing = false;
    cs->aborted.fetch_add(1, std::memory_order_relaxed);
  }
}

bool PredictSession::CanReplay() const {
  return state_->replay_plan != nullptr;
}

Tensor PredictSession::Replay() {
  ADAPTRAJ_CHECK_MSG(state_->replay_plan != nullptr,
                     "PredictSession::Replay without a plan");
  state_->cache->state_->hits.fetch_add(1, std::memory_order_relaxed);
  return state_->replay_plan->Execute(state_->inputs, state_->rng);
}

Tensor PredictSession::Finish(Tensor eager_result) {
  SessionState& st = *state_;
  if (st.recorder != nullptr && g_recorder == st.recorder.get()) {
    g_recorder = nullptr;
    Recorder& rec = *st.recorder;
    std::string error = rec.abort_reason;
    std::shared_ptr<const CompiledPlan> plan;
    if (!rec.aborted && rec.op_outputs != rec.op_steps) {
      error = "op without a recording hook ran during capture";
    } else if (!rec.aborted && eager_result.defined()) {
      plan = Compile(rec, eager_result, st.inputs.size(), &error);
    } else if (!rec.aborted) {
      error = "undefined result tensor";
    }
    CacheState* cs = st.cache->state_.get();
    support::MutexLock lock(cs->mu);
    auto& entry = cs->entries[st.key];
    entry.capturing = false;
    if (plan != nullptr) {
      entry.plan = std::move(plan);
      cs->captures.fetch_add(1, std::memory_order_relaxed);
      // LRU eviction beyond the cap (never entries mid-capture).
      while (cs->entries.size() > kMaxPlans) {
        auto victim = cs->entries.end();
        for (auto it = cs->entries.begin(); it != cs->entries.end(); ++it) {
          if (it->second.capturing || &it->second == &entry) continue;
          if (victim == cs->entries.end() ||
              it->second.last_used < victim->second.last_used) {
            victim = it;
          }
        }
        if (victim == cs->entries.end()) break;
        cs->entries.erase(victim);
      }
    } else {
      entry.unplannable = true;
      cs->aborted.fetch_add(1, std::memory_order_relaxed);
    }
    if (!st.counted) cs->misses.fetch_add(1, std::memory_order_relaxed);
    st.recorder.reset();
    return eager_result;
  }
  if (st.verify_plan != nullptr) {
    Tensor replayed = st.verify_plan->Execute(st.inputs, st.verify_rng.get());
    ADAPTRAJ_CHECK_MSG(
        replayed.defined() && eager_result.defined() &&
            replayed.size() == eager_result.size() &&
            std::memcmp(replayed.data(), eager_result.data(),
                        static_cast<size_t>(replayed.size()) *
                            sizeof(float)) == 0,
        "ADAPTRAJ_PLAN=verify: replayed Predict diverged from eager for key "
            << st.key);
    ADAPTRAJ_CHECK_MSG(
        st.rng == nullptr ||
            st.verify_rng->engine() == st.rng->engine(),
        "ADAPTRAJ_PLAN=verify: replayed rng stream diverged for key "
            << st.key);
    st.cache->state_->hits.fetch_add(1, std::memory_order_relaxed);
    return eager_result;
  }
  if (st.mode != Mode::kOff && st.cache != nullptr && !st.counted) {
    st.cache->state_->misses.fetch_add(1, std::memory_order_relaxed);
    st.counted = true;
  }
  return eager_result;
}

// --- Recording hooks ---------------------------------------------------------

bool Recording() { return ActiveRecorder() != nullptr; }

namespace {

/// Appends a step for an op output; returns null when not recording.
Recorder* BeginOpStep(const Tensor& out) {
  Recorder* r = ActiveRecorder();
  if (r == nullptr) return nullptr;
  if (!out.defined()) {
    r->Abort("op produced an undefined tensor");
    return nullptr;
  }
  r->op_steps++;
  return r;
}

}  // namespace

void RecordUnary(Un op, const Tensor& a, const Tensor& out, float p0,
                 float p1) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kUnary;
  s.iop = static_cast<int>(op);
  s.in.push_back(r->SlotOfValue(a));
  s.out = r->SlotOfOutput(out);
  s.n = out.size();
  s.f0 = p0;
  s.f1 = p1;
  r->steps.push_back(std::move(s));
}

void RecordBinary(Bin op, const Tensor& a, const Tensor& b,
                  const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kBinary;
  s.iop = static_cast<int>(op);
  s.in = {r->SlotOfValue(a), r->SlotOfValue(b)};
  s.out = r->SlotOfOutput(out);
  s.n = out.size();
  r->steps.push_back(std::move(s));
}

void RecordBroadcast(Bin op, const Tensor& a, const Tensor& b,
                     const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kBroadcast;
  s.iop = static_cast<int>(op);
  s.in = {r->SlotOfValue(a), r->SlotOfValue(b)};
  s.out = r->SlotOfOutput(out);
  s.n = out.size();
  s.out_shape = out.shape();
  s.b_shape = b.shape();
  r->steps.push_back(std::move(s));
}

void RecordMatMul(const Tensor& a, const Tensor& b, const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kMatMul;
  s.in = {r->SlotOfValue(a), r->SlotOfValue(b)};
  s.out = r->SlotOfOutput(out);
  s.m = a.shape()[0];
  s.k = a.shape()[1];
  s.n = b.shape()[1];
  r->steps.push_back(std::move(s));
}

void RecordBatchMatMul(const Tensor& a, const Tensor& b, bool trans_a,
                       bool trans_b, const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kBatchMatMul;
  s.in = {r->SlotOfValue(a), r->SlotOfValue(b)};
  s.out = r->SlotOfOutput(out);
  s.outer = a.shape()[0];
  s.m = trans_a ? a.shape()[2] : a.shape()[1];
  s.k = trans_a ? a.shape()[1] : a.shape()[2];
  s.n = trans_b ? b.shape()[1] : b.shape()[2];
  s.flag_a = trans_a;
  s.flag_b = trans_b;
  r->steps.push_back(std::move(s));
}

void RecordAffine(const Tensor& a, const Tensor& w, const Tensor& bias,
                  const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kAffine;
  s.in = {r->SlotOfValue(a), r->SlotOfValue(w), r->SlotOfValue(bias)};
  s.out = r->SlotOfOutput(out);
  s.m = a.shape()[0];
  s.k = a.shape()[1];
  s.n = w.shape()[1];
  r->steps.push_back(std::move(s));
}

void RecordDualMatMul(const Tensor& a, const Tensor& wa, const Tensor& b,
                      const Tensor& wb, const Tensor* bias,
                      const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kDualMatMul;
  s.in = {r->SlotOfValue(a), r->SlotOfValue(wa), r->SlotOfValue(b),
          r->SlotOfValue(wb)};
  if (bias != nullptr) s.in.push_back(r->SlotOfValue(*bias));
  s.out = r->SlotOfOutput(out);
  s.m = a.shape()[0];
  s.k = a.shape()[1];
  s.k2 = b.shape()[1];
  s.n = wa.shape()[1];
  r->steps.push_back(std::move(s));
}

void RecordLstmCellC(const Tensor& gates, const Tensor& c_prev,
                     const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kLstmC;
  s.in = {r->SlotOfValue(gates), r->SlotOfValue(c_prev)};
  s.out = r->SlotOfOutput(out);
  s.m = gates.shape()[0];
  s.n = c_prev.shape()[1];
  r->steps.push_back(std::move(s));
}

void RecordLstmCellH(const Tensor& gates, const Tensor& c_next,
                     const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kLstmH;
  s.in = {r->SlotOfValue(gates), r->SlotOfValue(c_next)};
  s.out = r->SlotOfOutput(out);
  s.m = gates.shape()[0];
  s.n = c_next.shape()[1];
  r->steps.push_back(std::move(s));
}

void RecordTranspose(const Tensor& a, const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kTranspose;
  s.in = {r->SlotOfValue(a)};
  s.out = r->SlotOfOutput(out);
  s.m = a.shape()[0];
  s.n = a.shape()[1];
  r->steps.push_back(std::move(s));
}

void RecordSoftmax(const Tensor& a, const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kSoftmax;
  s.in = {r->SlotOfValue(a)};
  s.out = r->SlotOfOutput(out);
  s.n = a.shape().back();
  s.m = s.n == 0 ? 0 : a.size() / s.n;
  r->steps.push_back(std::move(s));
}

void RecordReduceAxis(bool mean, int64_t outer, int64_t extent, int64_t inner,
                      const Tensor& a, const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kReduce;
  s.in = {r->SlotOfValue(a)};
  s.out = r->SlotOfOutput(out);
  s.outer = outer;
  s.extent = extent;
  s.inner = inner;
  s.flag_a = mean;
  s.f0 = mean ? 1.0f / static_cast<float>(extent) : 1.0f;
  r->steps.push_back(std::move(s));
}

void RecordMaxAxis(int64_t outer, int64_t extent, int64_t inner,
                   const Tensor& a, const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kMaxAxis;
  s.in = {r->SlotOfValue(a)};
  s.out = r->SlotOfOutput(out);
  s.outer = outer;
  s.extent = extent;
  s.inner = inner;
  r->steps.push_back(std::move(s));
}

void RecordMaskedFill(const Tensor& a, const Tensor& mask, float value,
                      const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kMaskedFill;
  s.in = {r->SlotOfValue(a), r->SlotOfValue(mask)};
  s.out = r->SlotOfOutput(out);
  s.n = out.size();
  s.f0 = value;
  r->steps.push_back(std::move(s));
}

void RecordCopy(const Tensor& a, const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kCopy;
  s.in = {r->SlotOfValue(a)};
  s.out = r->SlotOfOutput(out);
  s.n = out.size();
  r->steps.push_back(std::move(s));
}

void RecordConcat(const std::vector<Tensor>& parts, int64_t outer,
                  int64_t inner, const std::vector<int64_t>& extents,
                  const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kConcat;
  for (const Tensor& t : parts) s.in.push_back(r->SlotOfValue(t));
  s.out = r->SlotOfOutput(out);
  s.outer = outer;
  s.inner = inner;
  s.extents = extents;
  s.extent = 0;
  for (int64_t e : extents) s.extent += e;
  r->steps.push_back(std::move(s));
}

void RecordSlice(const Tensor& a, int64_t outer, int64_t inner,
                 int64_t in_extent, int64_t out_extent, int64_t start,
                 const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  Step s;
  s.kind = K::kSlice;
  s.in = {r->SlotOfValue(a)};
  s.out = r->SlotOfOutput(out);
  s.outer = outer;
  s.inner = inner;
  s.extent = in_extent;
  s.m = out_extent;
  s.start = start;
  r->steps.push_back(std::move(s));
}

void RecordStack(const std::vector<Tensor>& parts, const Tensor& out) {
  Recorder* r = BeginOpStep(out);
  if (r == nullptr) return;
  // Stack is Concat along a new leading axis: outer == 1, unit extents.
  Step s;
  s.kind = K::kConcat;
  const int64_t block = parts.empty() ? 0 : parts[0].size();
  for (const Tensor& t : parts) {
    s.in.push_back(r->SlotOfValue(t));
    s.extents.push_back(1);
  }
  s.out = r->SlotOfOutput(out);
  s.outer = 1;
  s.inner = block;
  s.extent = static_cast<int64_t>(parts.size());
  r->steps.push_back(std::move(s));
}

void RecordRandn(const Tensor& out, float stddev) {
  Recorder* r = ActiveRecorder();
  if (r == nullptr) return;
  Step s;
  s.kind = K::kRandn;
  s.out = r->SlotOfOutput(out);
  s.n = out.size();
  s.f0 = stddev;
  r->steps.push_back(std::move(s));
}

void RecordRand(const Tensor& out, float lo, float hi) {
  Recorder* r = ActiveRecorder();
  if (r == nullptr) return;
  Step s;
  s.kind = K::kRand;
  s.out = r->SlotOfOutput(out);
  s.n = out.size();
  s.f0 = lo;
  s.f1 = hi;
  r->steps.push_back(std::move(s));
}

void RecordDetach(const Tensor& a, const Tensor& out) {
  Recorder* r = ActiveRecorder();
  if (r == nullptr) return;
  Step s;
  s.kind = K::kCopy;
  s.in = {r->SlotOfValue(a)};
  s.out = r->SlotOfOutput(out);
  s.n = out.size();
  r->steps.push_back(std::move(s));
}

void NoteOpOutput(bool track) {
  Recorder* r = ActiveRecorder();
  if (r == nullptr) return;
  r->op_outputs++;
  if (track && GradMode::IsEnabled()) {
    r->Abort("grad-mode op during capture");
  }
}

void NoteBackwardCall() {
  Recorder* r = ActiveRecorder();
  if (r == nullptr) return;
  r->Abort("Backward() during capture");
}

}  // namespace plan
}  // namespace adaptraj
