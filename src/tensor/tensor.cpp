#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "tensor/buffer_pool.h"
#include "tensor/plan.h"

namespace adaptraj {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    ADAPTRAJ_CHECK_MSG(d >= 0, "negative dimension in shape " << ShapeToString(shape));
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << shape[i];
  }
  oss << "]";
  return oss.str();
}

int64_t FlatIndex(const Shape& shape, const std::vector<int64_t>& index) {
  ADAPTRAJ_CHECK_EQ(shape.size(), index.size());
  int64_t flat = 0;
  for (size_t d = 0; d < shape.size(); ++d) {
    ADAPTRAJ_CHECK_MSG(index[d] >= 0 && index[d] < shape[d],
                       "index " << index[d] << " out of range for dim " << d << " of "
                                << ShapeToString(shape));
    flat = flat * shape[d] + index[d];
  }
  return flat;
}

namespace {

// Thread-local so a no-grad serving worker never perturbs a training thread.
thread_local bool g_grad_enabled = true;
thread_local bool g_grad_forced = false;

}  // namespace

bool GradMode::IsEnabled() { return g_grad_enabled || g_grad_forced; }

bool GradMode::SetEnabled(bool enabled) {
  const bool prev = g_grad_enabled;
  g_grad_enabled = enabled;
  return prev;
}

bool GradMode::SetForced(bool forced) {
  const bool prev = g_grad_forced;
  g_grad_forced = forced;
  return prev;
}

namespace internal {

namespace {

thread_local int64_t g_grad_nodes_created = 0;

}  // namespace

int64_t GradNodesCreated() { return g_grad_nodes_created; }

GradNode::GradNode() { ++g_grad_nodes_created; }

TensorImpl::~TensorImpl() {
  ReleaseBuffer(std::move(data));
  ReleaseBuffer(std::move(grad));
}

void TensorImpl::EnsureGrad() {
  if (grad.empty()) grad = AcquireZeroedBuffer(size());
}

void TensorImpl::AccumulateGrad(const float* g, int64_t n) {
  ADAPTRAJ_CHECK_EQ(n, size());
  EnsureGrad();
  for (int64_t i = 0; i < n; ++i) grad[i] += g[i];
}

}  // namespace internal

namespace {

/// `zero` selects a zero-filled pool buffer; factories that overwrite every
/// element pass false and skip the redundant fill.
std::shared_ptr<internal::TensorImpl> MakeImpl(const Shape& shape, bool requires_grad,
                                               bool zero) {
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = shape;
  impl->data = zero ? internal::AcquireZeroedBuffer(NumElements(shape))
                    : internal::AcquireBuffer(NumElements(shape));
  impl->requires_grad = requires_grad;
  return impl;
}

}  // namespace

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return FromImpl(MakeImpl(shape, requires_grad, /*zero=*/true));
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  auto impl = MakeImpl(shape, requires_grad, /*zero=*/false);
  std::fill(impl->data.begin(), impl->data.end(), value);
  return FromImpl(std::move(impl));
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values,
                          bool requires_grad) {
  ADAPTRAJ_CHECK_MSG(NumElements(shape) == static_cast<int64_t>(values.size()),
                     "shape " << ShapeToString(shape) << " does not match value count "
                              << values.size());
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = shape;
  // Copy into pooled (64B-aligned) storage: adopting the caller's vector
  // would hand the kernels — and eventually the buffer pool — an allocation
  // with only alignof(float) guaranteed.
  impl->data = internal::AcquireBuffer(static_cast<int64_t>(values.size()));
  std::copy(values.begin(), values.end(), impl->data.begin());
  impl->requires_grad = requires_grad;
  return FromImpl(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector({1}, {value}, requires_grad);
}

Tensor Tensor::Randn(const Shape& shape, Rng* rng, float stddev, bool requires_grad) {
  ADAPTRAJ_CHECK(rng != nullptr);
  auto impl = MakeImpl(shape, requires_grad, /*zero=*/false);
  for (auto& v : impl->data) v = rng->Normal(0.0f, stddev);
  Tensor out = FromImpl(std::move(impl));
  // Rng draws are a recorded side effect: replay re-draws in the same
  // element order so the stream advances identically to eager.
  plan::RecordRandn(out, stddev);
  return out;
}

Tensor Tensor::Rand(const Shape& shape, Rng* rng, float lo, float hi,
                    bool requires_grad) {
  ADAPTRAJ_CHECK(rng != nullptr);
  auto impl = MakeImpl(shape, requires_grad, /*zero=*/false);
  for (auto& v : impl->data) v = rng->Uniform(lo, hi);
  Tensor out = FromImpl(std::move(impl));
  plan::RecordRand(out, lo, hi);
  return out;
}

Tensor Tensor::FromImpl(std::shared_ptr<internal::TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

const Shape& Tensor::shape() const {
  ADAPTRAJ_CHECK_MSG(defined(), "shape() on null tensor");
  return impl_->shape;
}

int64_t Tensor::size() const {
  ADAPTRAJ_CHECK_MSG(defined(), "size() on null tensor");
  return impl_->size();
}

int64_t Tensor::size(int d) const {
  const Shape& s = shape();
  int nd = static_cast<int>(s.size());
  if (d < 0) d += nd;
  ADAPTRAJ_CHECK_MSG(d >= 0 && d < nd, "dim " << d << " out of range for " << ShapeToString(s));
  return s[d];
}

float* Tensor::data() {
  ADAPTRAJ_CHECK(defined());
  return impl_->data.data();
}

const float* Tensor::data() const {
  ADAPTRAJ_CHECK(defined());
  return impl_->data.data();
}

float Tensor::item() const {
  ADAPTRAJ_CHECK_MSG(size() == 1, "item() on tensor of shape " << ShapeToString(shape()));
  return impl_->data[0];
}

float Tensor::flat(int64_t i) const {
  ADAPTRAJ_CHECK_MSG(i >= 0 && i < size(), "flat index " << i << " out of range");
  return impl_->data[i];
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(null)";
  std::ostringstream oss;
  oss << "Tensor" << ShapeToString(shape());
  if (size() <= 16) {
    oss << " {";
    for (int64_t i = 0; i < size(); ++i) {
      if (i > 0) oss << ", ";
      oss << impl_->data[i];
    }
    oss << "}";
  }
  return oss.str();
}

bool Tensor::requires_grad() const { return defined() && impl_->requires_grad; }

Tensor& Tensor::set_requires_grad(bool value) {
  ADAPTRAJ_CHECK(defined());
  impl_->requires_grad = value;
  return *this;
}

bool Tensor::needs_grad() const {
  return defined() && (impl_->requires_grad || impl_->grad_fn != nullptr);
}

Tensor Tensor::grad() const {
  ADAPTRAJ_CHECK(defined());
  Tensor g = Tensor::Zeros(impl_->shape);
  if (!impl_->grad.empty()) {
    std::copy(impl_->grad.begin(), impl_->grad.end(), g.data());
  }
  return g;
}

void Tensor::ZeroGrad() {
  ADAPTRAJ_CHECK(defined());
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

Tensor Tensor::Detach() const {
  ADAPTRAJ_CHECK(defined());
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;  // copy keeps semantics simple and safe
  impl->requires_grad = false;
  Tensor out = FromImpl(std::move(impl));
  plan::RecordDetach(*this, out);
  return out;
}

Tensor Tensor::Clone() const { return Detach(); }

void Tensor::Backward() {
  plan::NoteBackwardCall();
  ADAPTRAJ_CHECK_MSG(defined(), "Backward() on null tensor");
  ADAPTRAJ_CHECK_MSG(size() == 1,
                     "Backward() requires a scalar; got " << ShapeToString(shape()));
  ADAPTRAJ_CHECK_MSG(!impl_->no_grad_result,
                     "Backward() on a result computed under NoGradGuard; the graph "
                     "was never recorded. Run the forward pass in grad mode (or "
                     "inside an EnableGradGuard island) if you need gradients.");

  // Iterative post-order DFS over the graph to get a topological order.
  std::vector<internal::TensorImpl*> topo;
  std::unordered_set<internal::TensorImpl*> visited;
  struct Frame {
    internal::TensorImpl* impl;
    size_t next_child;
  };
  std::vector<Frame> stack;
  if (impl_->grad_fn) stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    auto& node = f.impl->grad_fn;
    if (node && f.next_child < node->inputs.size()) {
      internal::TensorImpl* child = node->inputs[f.next_child++].get();
      if (child->grad_fn && !visited.count(child)) {
        visited.insert(child);
        stack.push_back({child, 0});
      }
    } else {
      topo.push_back(f.impl);
      stack.pop_back();
    }
  }

  impl_->EnsureGrad();
  impl_->grad[0] += 1.0f;

  // topo is post-order (children before parents), so iterate in reverse.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    internal::TensorImpl* impl = *it;
    if (impl->grad_fn && impl->grad_fn->backward) {
      impl->EnsureGrad();
      impl->grad_fn->backward(*impl);
    }
  }
}

}  // namespace adaptraj
