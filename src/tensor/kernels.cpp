#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#if defined(__AVX__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "tensor/buffer_pool.h"
#include "tensor/gemm_avx512.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace kernels {

namespace {

// Micro-tile extents: MR C rows x NR C columns are held in registers across
// the whole k loop (4 x 16 floats = one AVX-512 register per row, two AVX2
// registers per row), so the inner loop is pure broadcast+FMA with a single
// streaming read of the B tile. kRowGrain rows form one parallel chunk.
constexpr int64_t kMR = 4;
constexpr int64_t kNR = 16;
constexpr int64_t kRowGrain = 32;

/// Partial tile at the M/N edges: same accumulation structure as the full
/// micro-kernel with runtime extents (also the portable fallback full tile).
void MicroKernelEdge(int64_t mw, int64_t nw, int64_t k, const float* a,
                     int64_t lda, const float* b, int64_t ldb, float* c,
                     int64_t ldc, bool accumulate) {
  float acc[kMR][kNR];
  for (int64_t r = 0; r < mw; ++r) {
    for (int64_t j = 0; j < nw; ++j) {
      acc[r][j] = accumulate ? c[r * ldc + j] : 0.0f;
    }
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* br = b + p * ldb;
    for (int64_t r = 0; r < mw; ++r) {
      const float av = a[r * lda + p];
      for (int64_t j = 0; j < nw; ++j) acc[r][j] += av * br[j];
    }
  }
  for (int64_t r = 0; r < mw; ++r) {
    for (int64_t j = 0; j < nw; ++j) c[r * ldc + j] = acc[r][j];
  }
}

#if defined(__GNUC__) || defined(__clang__)
#define ADAPTRAJ_HAVE_VEC16 1

/// 16-lane float vector (lowers to one zmm, two ymm, or four xmm as the
/// target allows). memcpy in/out compiles to unaligned vector moves.
typedef float Vec16 __attribute__((vector_size(16 * sizeof(float))));
typedef int32_t IVec16 __attribute__((vector_size(16 * sizeof(int32_t))));

inline Vec16 LoadVec16(const float* p) {
  Vec16 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreVec16(float* p, Vec16 v) { std::memcpy(p, &v, sizeof(v)); }

/// Loads n <= 16 floats into a zero-padded vector.
inline Vec16 LoadPartial16(const float* p, int64_t n) {
  float tmp[16] = {0};
  std::memcpy(tmp, p, static_cast<size_t>(n) * sizeof(float));
  return LoadVec16(tmp);
}

/// Stores the first n <= 16 lanes.
inline void StorePartial16(float* p, Vec16 v, int64_t n) {
  float tmp[16];
  StoreVec16(tmp, v);
  std::memcpy(p, tmp, static_cast<size_t>(n) * sizeof(float));
}

/// Full MR x NR register tile: C[i:i+MR, j0:j0+NR] (+)= A[i:i+MR, :] * B.
/// Four explicit vector accumulators live in registers across the whole k
/// loop: one streaming B load feeds four broadcast-FMA ops per iteration.
/// The accumulator starts from C (accumulate) or zero, then adds a·b terms in
/// ascending p order — the same per-element order as GemmNaive, so results
/// are bit-identical to the reference.
void MicroKernel(int64_t k, const float* a, int64_t lda, const float* b,
                 int64_t ldb, float* c, int64_t ldc, bool accumulate) {
  Vec16 acc0, acc1, acc2, acc3;
  if (accumulate) {
    acc0 = LoadVec16(c + 0 * ldc);
    acc1 = LoadVec16(c + 1 * ldc);
    acc2 = LoadVec16(c + 2 * ldc);
    acc3 = LoadVec16(c + 3 * ldc);
  } else {
    acc0 = acc1 = acc2 = acc3 = Vec16{} * 0.0f;
  }
  const float* a0 = a + 0 * lda;
  const float* a1 = a + 1 * lda;
  const float* a2 = a + 2 * lda;
  const float* a3 = a + 3 * lda;
  for (int64_t p = 0; p < k; ++p) {
    const Vec16 bv = LoadVec16(b + p * ldb);
    acc0 += a0[p] * bv;
    acc1 += a1[p] * bv;
    acc2 += a2[p] * bv;
    acc3 += a3[p] * bv;
  }
  StoreVec16(c + 0 * ldc, acc0);
  StoreVec16(c + 1 * ldc, acc1);
  StoreVec16(c + 2 * ldc, acc2);
  StoreVec16(c + 3 * ldc, acc3);
}

#else  // portable fallback

void MicroKernel(int64_t k, const float* a, int64_t lda, const float* b,
                 int64_t ldb, float* c, int64_t ldc, bool accumulate) {
  MicroKernelEdge(kMR, kNR, k, a, lda, b, ldb, c, ldc, accumulate);
}

#endif

#if defined(__GNUC__) || defined(__clang__)

/// Column-edge tile with vector accumulators: MW rows x nw (< NR) columns
/// against a B panel whose columns nw..16 within the tile are zero (either a
/// pre-padded packed panel or a per-panel scratch), so full-width loads are
/// safe. Same ascending-p per-element order as the scalar edge; the padded
/// lanes accumulate exact zeros and are never stored.
template <int MW>
void MicroKernelEdgeVecImpl(int64_t nw, int64_t k, const float* a, int64_t lda,
                            const float* b_pad, int64_t ldb, float* c,
                            int64_t ldc, bool accumulate) {
  Vec16 acc[MW];
  for (int r = 0; r < MW; ++r) {
    acc[r] = accumulate ? LoadPartial16(c + r * ldc, nw) : Vec16{} * 0.0f;
  }
  for (int64_t p = 0; p < k; ++p) {
    const Vec16 bv = LoadVec16(b_pad + p * ldb);
    for (int r = 0; r < MW; ++r) acc[r] += a[r * lda + p] * bv;
  }
  for (int r = 0; r < MW; ++r) StorePartial16(c + r * ldc, acc[r], nw);
}

inline void MicroKernelEdgeVec(int64_t mw, int64_t nw, int64_t k, const float* a,
                               int64_t lda, const float* b_pad, int64_t ldb,
                               float* c, int64_t ldc, bool accumulate) {
  switch (mw) {
    case 1: MicroKernelEdgeVecImpl<1>(nw, k, a, lda, b_pad, ldb, c, ldc, accumulate); break;
    case 2: MicroKernelEdgeVecImpl<2>(nw, k, a, lda, b_pad, ldb, c, ldc, accumulate); break;
    case 3: MicroKernelEdgeVecImpl<3>(nw, k, a, lda, b_pad, ldb, c, ldc, accumulate); break;
    default: MicroKernelEdgeVecImpl<4>(nw, k, a, lda, b_pad, ldb, c, ldc, accumulate); break;
  }
}

#endif

/// Rounds n up to the next micro-tile width multiple.
inline int64_t RoundUpNR(int64_t n) { return (n + kNR - 1) / kNR * kNR; }

/// Serial row panel: C[i0:i1, :] (+)= A[i0:i1, :] * B with A packed row-major
/// [M,K] and B row-major [K,ldb] holding N valid columns. When `b_padded` is
/// set, ldb is a kNR multiple and columns n..ldb are zero, so edge tiles can
/// issue full-width vector loads (partial stores keep C intact). Otherwise
/// `b_edge_pad` (when non-null) is the final partial column block zero-padded
/// to [K, kNR] — built once by the caller so worker panels never allocate.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
// noinline: with the header-template ParallelFor the panel body would inline
// into Gemm wholesale, and the bigger function measurably pessimizes the
// small-shape register allocation (~20% on [32,32]x[32,32]). Keeping the
// panel a real call preserves the tight micro-kernel codegen.
void GemmPanel(int64_t i0, int64_t i1, int64_t n, int64_t k, const float* a,
               const float* b, int64_t ldb, bool b_padded,
               const float* b_edge_pad, float* c, bool accumulate) {
  for (int64_t j0 = 0; j0 < n; j0 += kNR) {
    const int64_t nw = std::min(kNR, n - j0);
    int64_t i = i0;
    if (nw == kNR) {
      for (; i + kMR <= i1; i += kMR) {
        MicroKernel(k, a + i * k, k, b + j0, ldb, c + i * n + j0, n, accumulate);
      }
    }
#if defined(__GNUC__) || defined(__clang__)
    else if (b_padded || b_edge_pad != nullptr) {
      // Zero lanes beyond nw make full-width loads exact (attention's T = 8
      // key dimension lives entirely on this path).
      const float* be = b_padded ? b + j0 : b_edge_pad;
      const int64_t lde = b_padded ? ldb : kNR;
      for (; i < i1; i += kMR) {
        const int64_t mw = std::min(kMR, i1 - i);
        MicroKernelEdgeVec(mw, nw, k, a + i * k, k, be, lde, c + i * n + j0, n,
                           accumulate);
      }
      continue;
    }
#endif
    for (; i < i1; i += kMR) {
      const int64_t mw = std::min(kMR, i1 - i);
      MicroKernelEdge(mw, nw, k, a + i * k, k, b + j0, ldb, c + i * n + j0, n,
                      accumulate);
    }
  }
}

#if defined(__GNUC__) || defined(__clang__)
constexpr bool kHaveVecEdge = true;
#else
constexpr bool kHaveVecEdge = false;
#endif

/// Writes the zero-padded [k, kNR] copy of B's final partial column block
/// (columns n - n%kNR .. n) into dst. Requires n % kNR != 0.
void PackColumnEdge(const float* b, int64_t n, int64_t k, float* dst) {
  const int64_t nw = n % kNR;
  const int64_t j0 = n - nw;
  std::memset(dst, 0, sizeof(float) * static_cast<size_t>(k * kNR));
  for (int64_t p = 0; p < k; ++p) {
    std::memcpy(dst + p * kNR, b + p * n + j0,
                sizeof(float) * static_cast<size_t>(nw));
  }
}

/// Packs src (stored [cols, rows] row-major) transposed into dst
/// [rows, dst_stride], zero-filling columns cols..dst_stride. A dst_stride
/// that is a kNR multiple makes the packed panel edge-safe for full-width
/// vector loads.
void PackTranspose(const float* src, int64_t rows, int64_t cols, float* dst,
                   int64_t dst_stride) {
  // Tile the transpose so both access streams stay cache-resident.
  constexpr int64_t kTile = 32;
  for (int64_t r0 = 0; r0 < rows; r0 += kTile) {
    const int64_t r1 = std::min(rows, r0 + kTile);
    for (int64_t c0 = 0; c0 < cols; c0 += kTile) {
      const int64_t c1 = std::min(cols, c0 + kTile);
      for (int64_t r = r0; r < r1; ++r) {
        for (int64_t c = c0; c < c1; ++c) dst[r * dst_stride + c] = src[c * rows + r];
      }
    }
  }
  if (dst_stride > cols) {
    for (int64_t r = 0; r < rows; ++r) {
      std::memset(dst + r * dst_stride + cols, 0,
                  sizeof(float) * static_cast<size_t>(dst_stride - cols));
    }
  }
}

/// Packs B (row-major [k, n], or [n, k] when trans_b) into the AVX-512
/// panel-major layout (gemm_avx512.h): ceil(n/32) panels of [PaddedK(k)][32]
/// floats, zero-filled in the column and k tails. The k padding is layout
/// only — the kernels never accumulate over the pad rows.
void PackBAvx512(const float* b, int64_t n, int64_t k, bool trans_b,
                 float* dst) {
  const int64_t kp = avx512::PaddedK(k);
  for (int64_t j0 = 0, pj = 0; j0 < n; j0 += avx512::kNR, ++pj) {
    float* panel = dst + pj * kp * avx512::kNR;
    const int64_t nv = std::min(avx512::kNR, n - j0);
    if (!trans_b) {
      if (nv == avx512::kNR) {
        for (int64_t p = 0; p < k; ++p) {
          std::memcpy(panel + p * avx512::kNR, b + p * n + j0,
                      sizeof(float) * static_cast<size_t>(avx512::kNR));
        }
      } else {
        for (int64_t p = 0; p < k; ++p) {
          std::memcpy(panel + p * avx512::kNR, b + p * n + j0,
                      sizeof(float) * static_cast<size_t>(nv));
          std::memset(panel + p * avx512::kNR + nv, 0,
                      sizeof(float) * static_cast<size_t>(avx512::kNR - nv));
        }
      }
    } else {
      if (nv < avx512::kNR) {
        std::memset(panel, 0,
                    sizeof(float) * static_cast<size_t>(k * avx512::kNR));
      }
      for (int64_t lane = 0; lane < nv; ++lane) {
        const float* src = b + (j0 + lane) * k;
        float* d = panel + lane;
        for (int64_t p = 0; p < k; ++p) d[p * avx512::kNR] = src[p];
      }
    }
    // Zero the k-pad rows (layout only; compute never touches them beyond
    // the prefetch lookahead).
    std::memset(panel + k * avx512::kNR, 0,
                sizeof(float) * static_cast<size_t>((kp - k) * avx512::kNR));
  }
}

/// Packs just the ragged last panel of a row-major, non-transposed B (the
/// columns from n rounded down to a 32 multiple): the direct-B kernel reads
/// all full panels in place and only this zero-padded copy for the edge.
void PackBTailAvx512(const float* b, int64_t n, int64_t k, float* dst) {
  const int64_t j0 = n / avx512::kNR * avx512::kNR;
  const int64_t nv = n - j0;
  const int64_t kp = avx512::PaddedK(k);
  for (int64_t p = 0; p < k; ++p) {
    std::memcpy(dst + p * avx512::kNR, b + p * n + j0,
                sizeof(float) * static_cast<size_t>(nv));
    std::memset(dst + p * avx512::kNR + nv, 0,
                sizeof(float) * static_cast<size_t>(avx512::kNR - nv));
  }
  std::memset(dst + k * avx512::kNR, 0,
              sizeof(float) * static_cast<size_t>((kp - k) * avx512::kNR));
}

inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// --- Vectorized transcendentals ----------------------------------------------

#ifdef ADAPTRAJ_HAVE_VEC16

inline Vec16 Splat(float v) { return Vec16{} + v; }

/// Largest-integer-not-greater: truncate, then subtract 1 where the
/// truncation rounded toward zero from below. Comparison results are -1/0
/// integer lanes, which convert to -1.0f/0.0f.
inline Vec16 VecFloor(Vec16 x) {
  Vec16 t = __builtin_convertvector(__builtin_convertvector(x, IVec16), Vec16);
  return t + __builtin_convertvector(t > x, Vec16);
}

// Cephes expf constants: exp(x) = 2^n · exp(r) with n = round(x·log2e) and
// the residual r evaluated by a degree-5 polynomial. Input is clamped to the
// finite-float range so the 2^n exponent construction cannot overflow.
constexpr float kExpHi = 88.3762626647950f;
constexpr float kExpLo = -87.3365478515625f;
constexpr float kLog2E = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

inline Vec16 VecExp(Vec16 x) {
  const Vec16 x_in = x;
  x = (x < kExpHi) ? x : Splat(kExpHi);
  x = (x > kExpLo) ? x : Splat(kExpLo);
  Vec16 fx = VecFloor(x * kLog2E + 0.5f);
  // The input clamp puts fx in [-126, 127] in exact arithmetic, but float
  // rounding of x·log2e can land exactly on the boundary (kExpHi is
  // 127.5·ln2) and push the exponent construction below into inf/zero.
  fx = (fx < 127.0f) ? fx : Splat(127.0f);
  fx = (fx > -126.0f) ? fx : Splat(-126.0f);
  x -= fx * kLn2Hi;
  x -= fx * kLn2Lo;
  Vec16 y = Splat(kExpP0);
  y = y * x + kExpP1;
  y = y * x + kExpP2;
  y = y * x + kExpP3;
  y = y * x + kExpP4;
  y = y * x + kExpP5;
  y = y * (x * x) + x + 1.0f;
  // 2^n via direct exponent-field construction.
  const IVec16 pow2n = (__builtin_convertvector(fx, IVec16) + 127) << 23;
  Vec16 scale;
  std::memcpy(&scale, &pow2n, sizeof(scale));
  y *= scale;
  // NaN lanes fail both clamp comparisons above and would silently turn into
  // exp(kExpHi); propagate them instead so diverged training still surfaces
  // as NaN on the SIMD path, exactly like libm. (±inf saturates to the
  // clamped finite range — exp(-inf) ~ 1e-38, exp(+inf) ~ 2e38 — which
  // downstream tanh/sigmoid map to their correct ±1 / 0..1 limits.)
  return (x_in == x_in) ? y : x_in;
}

/// tanh(x) = 1 - 2/(exp(2x)+1). The clamped exp keeps both extremes finite
/// (saturating to ±1); absolute error stays under 1e-6 everywhere.
inline Vec16 VecTanh(Vec16 x) {
  const Vec16 e = VecExp(x * 2.0f);
  return 1.0f - 2.0f / (e + 1.0f);
}

inline Vec16 VecSigmoid(Vec16 x) { return 1.0f / (1.0f + VecExp(-x)); }

/// Applies a Vec16->Vec16 function elementwise over [0, n). The remainder
/// runs through the same vector code on a zero-padded tile, so every element
/// sees identical arithmetic no matter where chunk boundaries fall.
template <typename F>
inline void VecMap(const float* x, float* y, int64_t n, F f) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) StoreVec16(y + i, f(LoadVec16(x + i)));
  if (i < n) StorePartial16(y + i, f(LoadPartial16(x + i, n - i)), n - i);
}

#endif  // ADAPTRAJ_HAVE_VEC16

// --- Transcendental path resolution ------------------------------------------

/// Dispatch override globals (this one and g_gemm_override below) are
/// lock-free atomics, not mutex-guarded state: the Clang thread-safety
/// analysis treats std::atomic as unguarded by design, so there is
/// deliberately no ADAPTRAJ_GUARDED_BY. Relaxed ordering suffices — each is
/// an independent flag whose readers need no other writes published with it
/// (tests set them before launching work; the one-time probes below
/// synchronize through their local statics' init guard).
std::atomic<int> g_transcendental_override{static_cast<int>(TranscendentalPath::kAuto)};

#ifdef ADAPTRAJ_HAVE_VEC16

/// Accuracy gate: sweep the approximations against libm. Any regression
/// (miscompiled vector code, exotic rounding mode) silently drops the
/// process back to the scalar path instead of corrupting training.
bool SimdAccuracyOk() {
  constexpr int kSamples = 4096;
  float max_exp_rel = 0.0f;
  float max_tanh_abs = 0.0f;
  float max_sig_abs = 0.0f;
  for (int i = 0; i < kSamples; i += 16) {
    float x_exp[16], x_act[16], y[16];
    for (int j = 0; j < 16; ++j) {
      const float t = static_cast<float>(i + j) / (kSamples - 1);
      x_exp[j] = kExpLo + t * (kExpHi - kExpLo);
      x_act[j] = -30.0f + t * 60.0f;
    }
    StoreVec16(y, VecExp(LoadVec16(x_exp)));
    for (int j = 0; j < 16; ++j) {
      const float ref = std::exp(x_exp[j]);
      max_exp_rel = std::max(max_exp_rel, std::fabs(y[j] - ref) / ref);
    }
    StoreVec16(y, VecTanh(LoadVec16(x_act)));
    for (int j = 0; j < 16; ++j) {
      max_tanh_abs = std::max(max_tanh_abs, std::fabs(y[j] - std::tanh(x_act[j])));
    }
    StoreVec16(y, VecSigmoid(LoadVec16(x_act)));
    for (int j = 0; j < 16; ++j) {
      max_sig_abs = std::max(max_sig_abs, std::fabs(y[j] - SigmoidF(x_act[j])));
    }
  }
  return max_exp_rel <= 1e-6f && max_tanh_abs <= 1e-6f && max_sig_abs <= 1e-6f;
}

bool ResolveSimdDefault() {
  if (const char* env = std::getenv("ADAPTRAJ_SIMD")) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
        std::strcmp(env, "scalar") == 0) {
      return false;
    }
  }
  return SimdAccuracyOk();
}

#endif  // ADAPTRAJ_HAVE_VEC16

/// Portable-path Gemm body: the packed 4x16 register-tiled kernel.
/// Degenerate extents (m/n/k == 0) are handled by the public dispatcher.
void GemmPortableImpl(bool trans_a, bool trans_b, int64_t m, int64_t n,
                      int64_t k, const float* a, const float* b, float* c,
                      bool accumulate) {
  // Pack transposed operands into unit-stride panels once, up front (on the
  // calling thread: the buffer pool is thread-local). The B panel is padded
  // to a 16-column multiple so edge tiles run full-width vector loads.
  internal::FloatBuffer a_packed;
  internal::FloatBuffer b_packed;
  int64_t ldb = n;
  bool b_padded = false;
  if (trans_a) {
    a_packed = internal::AcquireBuffer(m * k);
    PackTranspose(a, m, k, a_packed.data(), k);
    a = a_packed.data();
  }
  if (trans_b) {
    ldb = RoundUpNR(n);
    b_packed = internal::AcquireBuffer(k * ldb);
    PackTranspose(b, k, n, b_packed.data(), ldb);
    b = b_packed.data();
    b_padded = true;
  }
  // Plain-layout B with a ragged column count: pad the edge block once here
  // (calling thread) so the row panels below stay allocation-free.
  internal::FloatBuffer b_edge;
  if (kHaveVecEdge && !b_padded && (n % kNR) != 0) {
    b_edge = internal::AcquireBuffer(k * kNR);
    PackColumnEdge(b, n, k, b_edge.data());
  }
  const float* b_edge_ptr = b_edge.empty() ? nullptr : b_edge.data();
  parallel::ParallelFor(0, m, kRowGrain, [&](int64_t i0, int64_t i1) {
    GemmPanel(i0, i1, n, k, a, b, ldb, b_padded, b_edge_ptr, c, accumulate);
  });
  if (!a_packed.empty()) internal::ReleaseBuffer(std::move(a_packed));
  if (!b_packed.empty()) internal::ReleaseBuffer(std::move(b_packed));
  if (!b_edge.empty()) internal::ReleaseBuffer(std::move(b_edge));
}

/// AVX-512-path Gemm body: split row panels across the pool into the 8x32
/// micro-kernel. Non-transposed B is read in place (only a ragged n tail is
/// packed); transposed B is packed panel-major, transposed A row-major. Only
/// reachable once the dispatcher has established CompiledIn() &&
/// CpuSupported(). Packing is locality-only and never changes the
/// per-element arithmetic order, so both B strategies produce identical
/// bits.
void GemmAvx512Impl(bool trans_a, bool trans_b, int64_t m, int64_t n,
                    int64_t k, const float* a, const float* b, float* c,
                    bool accumulate) {
  internal::FloatBuffer a_packed;
  if (trans_a) {
    a_packed = internal::AcquireBuffer(m * k);
    PackTranspose(a, m, k, a_packed.data(), k);
    a = a_packed.data();
  }
  if (!trans_b) {
    internal::FloatBuffer tail;
    const float* tailp = nullptr;
    if (n % avx512::kNR != 0) {
      tail = internal::AcquireBuffer(avx512::PaddedK(k) * avx512::kNR);
      PackBTailAvx512(b, n, k, tail.data());
      tailp = tail.data();
    }
    parallel::ParallelFor(0, m, kRowGrain, [&](int64_t i0, int64_t i1) {
      avx512::GemmRowsDirect(i0, i1, n, k, a, k, b, n, tailp, c, n,
                             accumulate);
    });
    if (!tail.empty()) internal::ReleaseBuffer(std::move(tail));
  } else {
    internal::FloatBuffer b_packed =
        internal::AcquireBuffer(avx512::PackedBSize(n, k));
    PackBAvx512(b, n, k, trans_b, b_packed.data());
    const float* bp = b_packed.data();
    parallel::ParallelFor(0, m, kRowGrain, [&](int64_t i0, int64_t i1) {
      avx512::GemmRows(i0, i1, n, k, a, k, bp, c, n, accumulate);
    });
    internal::ReleaseBuffer(std::move(b_packed));
  }
  if (!a_packed.empty()) internal::ReleaseBuffer(std::move(a_packed));
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          const float* a, const float* b, float* c, bool accumulate) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) std::memset(c, 0, sizeof(float) * static_cast<size_t>(m * n));
    return;
  }
  if (GemmPathForShape(n) == GemmPath::kAvx512) {
    GemmAvx512Impl(trans_a, trans_b, m, n, k, a, b, c, accumulate);
  } else {
    GemmPortableImpl(trans_a, trans_b, m, n, k, a, b, c, accumulate);
  }
}

void GemmNaive(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
               const float* a, const float* b, float* c, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = accumulate ? c[i * n + j] : 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * m + i] : a[i * k + p];
        const float bv = trans_b ? b[j * k + p] : b[p * n + j];
        acc += av * bv;
      }
      c[i * n + j] = acc;
    }
  }
}

namespace {

/// Portable-path BatchGemm body (see BatchGemm). Degenerate extents are
/// handled by the public dispatcher.
void BatchGemmPortableImpl(bool trans_a, bool trans_b, int64_t batch,
                           int64_t m, int64_t n, int64_t k, const float* a,
                           const float* b, float* c, bool accumulate) {
  const int64_t a_stride = m * k;
  int64_t b_stride = k * n;
  const int64_t c_stride = m * n;
  // Pack every transposed slice up front (calling thread — the buffer pool is
  // thread-local), so the panel loop below reads unit-stride operands only.
  // Like Gemm, transposed B panels pad to a 16-column multiple.
  internal::FloatBuffer a_packed;
  internal::FloatBuffer b_packed;
  int64_t ldb = n;
  bool b_padded = false;
  if (trans_a) {
    a_packed = internal::AcquireBuffer(batch * a_stride);
    for (int64_t bi = 0; bi < batch; ++bi) {
      PackTranspose(a + bi * a_stride, m, k, a_packed.data() + bi * a_stride, k);
    }
    a = a_packed.data();
  }
  if (trans_b) {
    ldb = RoundUpNR(n);
    const int64_t packed_stride = k * ldb;
    b_packed = internal::AcquireBuffer(batch * packed_stride);
    for (int64_t bi = 0; bi < batch; ++bi) {
      PackTranspose(b + bi * b_stride, k, n, b_packed.data() + bi * packed_stride,
                    ldb);
    }
    b = b_packed.data();
    b_stride = packed_stride;
    b_padded = true;
  }
  // Plain-layout B with a ragged column count: pad each slice's edge block
  // once here (calling thread) so the panels below stay allocation-free.
  internal::FloatBuffer b_edge;
  if (kHaveVecEdge && !b_padded && (n % kNR) != 0) {
    b_edge = internal::AcquireBuffer(batch * k * kNR);
    for (int64_t bi = 0; bi < batch; ++bi) {
      PackColumnEdge(b + bi * b_stride, n, k, b_edge.data() + bi * k * kNR);
    }
  }
  const float* b_edge_base = b_edge.empty() ? nullptr : b_edge.data();
  // One work item per (slice, row-panel) pair. Panel boundaries depend only
  // on m, so any thread count produces the same per-panel serial compute.
  const int64_t panels = (m + kRowGrain - 1) / kRowGrain;
  parallel::ParallelFor(0, batch * panels, 1, [&](int64_t w0, int64_t w1) {
    for (int64_t w = w0; w < w1; ++w) {
      const int64_t bi = w / panels;
      const int64_t i0 = (w % panels) * kRowGrain;
      const int64_t i1 = std::min(m, i0 + kRowGrain);
      GemmPanel(i0, i1, n, k, a + bi * a_stride, b + bi * b_stride, ldb,
                b_padded,
                b_edge_base == nullptr ? nullptr : b_edge_base + bi * k * kNR,
                c + bi * c_stride, accumulate);
    }
  });
  if (!a_packed.empty()) internal::ReleaseBuffer(std::move(a_packed));
  if (!b_packed.empty()) internal::ReleaseBuffer(std::move(b_packed));
  if (!b_edge.empty()) internal::ReleaseBuffer(std::move(b_edge));
}

/// AVX-512-path BatchGemm body: per-slice panel-major B packs up front, then
/// (slice, row-panel) work items into the 8x32 micro-kernel.
void BatchGemmAvx512Impl(bool trans_a, bool trans_b, int64_t batch, int64_t m,
                         int64_t n, int64_t k, const float* a, const float* b,
                         float* c, bool accumulate) {
  const int64_t a_stride = m * k;
  const int64_t b_stride = k * n;
  const int64_t c_stride = m * n;
  internal::FloatBuffer a_packed;
  if (trans_a) {
    a_packed = internal::AcquireBuffer(batch * a_stride);
    for (int64_t bi = 0; bi < batch; ++bi) {
      PackTranspose(a + bi * a_stride, m, k, a_packed.data() + bi * a_stride, k);
    }
    a = a_packed.data();
  }
  // Non-transposed B slices are read in place (ragged n tails packed per
  // slice up front); transposed ones are packed panel-major per slice.
  internal::FloatBuffer b_packed;
  const float* bp = nullptr;
  int64_t packed_stride = 0;
  if (trans_b) {
    packed_stride = avx512::PackedBSize(n, k);
    b_packed = internal::AcquireBuffer(batch * packed_stride);
    for (int64_t bi = 0; bi < batch; ++bi) {
      PackBAvx512(b + bi * b_stride, n, k, trans_b,
                  b_packed.data() + bi * packed_stride);
    }
    bp = b_packed.data();
  } else if (n % avx512::kNR != 0) {
    packed_stride = avx512::PaddedK(k) * avx512::kNR;
    b_packed = internal::AcquireBuffer(batch * packed_stride);
    for (int64_t bi = 0; bi < batch; ++bi) {
      PackBTailAvx512(b + bi * b_stride, n, k,
                      b_packed.data() + bi * packed_stride);
    }
    bp = b_packed.data();
  }
  // One work item per (slice, row-panel) pair, as in the portable path:
  // panel boundaries depend only on m, so any thread count produces the same
  // per-panel serial compute.
  const int64_t panels = (m + kRowGrain - 1) / kRowGrain;
  parallel::ParallelFor(0, batch * panels, 1, [&](int64_t w0, int64_t w1) {
    for (int64_t w = w0; w < w1; ++w) {
      const int64_t bi = w / panels;
      const int64_t i0 = (w % panels) * kRowGrain;
      const int64_t i1 = std::min(m, i0 + kRowGrain);
      if (trans_b) {
        avx512::GemmRows(i0, i1, n, k, a + bi * a_stride, k,
                         bp + bi * packed_stride, c + bi * c_stride, n,
                         accumulate);
      } else {
        avx512::GemmRowsDirect(i0, i1, n, k, a + bi * a_stride, k,
                               b + bi * b_stride, n,
                               bp != nullptr ? bp + bi * packed_stride
                                             : nullptr,
                               c + bi * c_stride, n, accumulate);
      }
    }
  });
  if (!a_packed.empty()) internal::ReleaseBuffer(std::move(a_packed));
  if (!b_packed.empty()) internal::ReleaseBuffer(std::move(b_packed));
}

// --- GEMM path resolution ----------------------------------------------------

/// Lock-free dispatch flag; see the thread-safety note on
/// g_transcendental_override above.
std::atomic<int> g_gemm_override{static_cast<int>(GemmPath::kAuto)};

/// Bit-exactness probe run once before auto-enabling the AVX-512 path: both
/// kernels over a ragged-shape battery (full tiles, m/n edges, single row,
/// every transpose variant, accumulate) with sign-mixed data, compared
/// bitwise. Ascending-k ordering makes the kernels geometry-independent, so
/// the only way this can fail is the two translation units contracting
/// multiply-adds differently (e.g. the main TU built without FMA); in that
/// case auto resolution stays on the portable kernel and the AVX-512 path is
/// opt-in via ADAPTRAJ_GEMM=avx512 / SetGemmPath.
bool GemmPathsBitIdentical() {
  struct Case {
    int64_t m, n, k;
    bool ta, tb, acc;
  };
  const Case cases[] = {
      {5, 7, 3, false, false, false},  {5, 7, 3, true, false, false},
      {5, 7, 3, false, true, false},   {5, 7, 3, true, true, false},
      {9, 33, 17, false, false, true}, {1, 31, 4, false, true, false},
      {8, 32, 8, true, false, false},  {33, 64, 63, false, false, false},
  };
  uint32_t state = 0x2545f491u;
  const auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return static_cast<float>(state >> 8) * (2.0f / 16777216.0f) - 1.0f;
  };
  for (const Case& t : cases) {
    std::vector<float> va(t.m * t.k), vb(t.k * t.n);
    std::vector<float> c_portable(t.m * t.n), c_avx(t.m * t.n);
    for (auto& v : va) v = next();
    for (auto& v : vb) v = next();
    for (int64_t i = 0; i < t.m * t.n; ++i) {
      c_portable[i] = c_avx[i] = t.acc ? next() : 0.0f;
    }
    GemmPortableImpl(t.ta, t.tb, t.m, t.n, t.k, va.data(), vb.data(),
                     c_portable.data(), t.acc);
    GemmAvx512Impl(t.ta, t.tb, t.m, t.n, t.k, va.data(), vb.data(),
                   c_avx.data(), t.acc);
    if (std::memcmp(c_portable.data(), c_avx.data(),
                    sizeof(float) * static_cast<size_t>(t.m * t.n)) != 0) {
      return false;
    }
  }
  return true;
}

/// How kAuto resolved: portable, env-forced AVX-512 (shape heuristic must
/// not override an explicit force), or probe-enabled AVX-512 (shape-aware).
enum class GemmDefault { kPortable, kAvx512Forced, kAvx512Probed };

/// kAuto resolution: compiled-in + CPU support gate, then the ADAPTRAJ_GEMM
/// kill-switch, then the bitwise probe. Resolved once per process.
GemmDefault ResolveGemmDefault() {
  if (!avx512::CompiledIn() || !avx512::CpuSupported()) {
    return GemmDefault::kPortable;
  }
  if (const char* env = std::getenv("ADAPTRAJ_GEMM")) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
        std::strcmp(env, "portable") == 0) {
      return GemmDefault::kPortable;
    }
    if (std::strcmp(env, "avx512") == 0 || std::strcmp(env, "force") == 0) {
      return GemmDefault::kAvx512Forced;
    }
  }
  return GemmPathsBitIdentical() ? GemmDefault::kAvx512Probed
                                 : GemmDefault::kPortable;
}

GemmDefault GemmDefaultKind() {
  static const GemmDefault kind = ResolveGemmDefault();
  return kind;
}

}  // namespace

void BatchGemm(bool trans_a, bool trans_b, int64_t batch, int64_t m, int64_t n,
               int64_t k, const float* a, const float* b, float* c,
               bool accumulate) {
  if (batch == 0 || m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) {
      std::memset(c, 0, sizeof(float) * static_cast<size_t>(batch * m * n));
    }
    return;
  }
  if (GemmPathForShape(n) == GemmPath::kAvx512) {
    BatchGemmAvx512Impl(trans_a, trans_b, batch, m, n, k, a, b, c, accumulate);
  } else {
    BatchGemmPortableImpl(trans_a, trans_b, batch, m, n, k, a, b, c,
                          accumulate);
  }
}

void SetGemmPath(GemmPath path) {
  g_gemm_override.store(static_cast<int>(path), std::memory_order_relaxed);
}

GemmPath SelectGemmPath() {
  const auto mode =
      static_cast<GemmPath>(g_gemm_override.load(std::memory_order_relaxed));
  if (mode == GemmPath::kPortable) return GemmPath::kPortable;
  if (mode == GemmPath::kAvx512) {
    return (avx512::CompiledIn() && avx512::CpuSupported())
               ? GemmPath::kAvx512
               : GemmPath::kPortable;
  }
  return GemmDefaultKind() != GemmDefault::kPortable ? GemmPath::kAvx512
                                                     : GemmPath::kPortable;
}

GemmPath GemmPathForShape(int64_t n) {
  const auto mode =
      static_cast<GemmPath>(g_gemm_override.load(std::memory_order_relaxed));
  if (mode != GemmPath::kAuto) return SelectGemmPath();
  switch (GemmDefaultKind()) {
    case GemmDefault::kAvx512Forced:
      return GemmPath::kAvx512;
    case GemmDefault::kAvx512Probed:
      // Below one 32-column panel the 8x32 tile runs mostly masked lanes and
      // the portable 4x16 kernel measures 2-6x faster (see kernels.h).
      return n >= avx512::kNR ? GemmPath::kAvx512 : GemmPath::kPortable;
    case GemmDefault::kPortable:
      break;
  }
  return GemmPath::kPortable;
}

bool Avx512GemmCompiledIn() { return avx512::CompiledIn(); }

void BatchGemmNaive(bool trans_a, bool trans_b, int64_t batch, int64_t m,
                    int64_t n, int64_t k, const float* a, const float* b,
                    float* c, bool accumulate) {
  for (int64_t bi = 0; bi < batch; ++bi) {
    GemmNaive(trans_a, trans_b, m, n, k, a + bi * m * k, b + bi * k * n,
              c + bi * m * n, accumulate);
  }
}

void SetTranscendentalPath(TranscendentalPath path) {
  g_transcendental_override.store(static_cast<int>(path), std::memory_order_relaxed);
}

bool SimdTranscendentalsActive() {
#ifdef ADAPTRAJ_HAVE_VEC16
  const auto mode = static_cast<TranscendentalPath>(
      g_transcendental_override.load(std::memory_order_relaxed));
  if (mode == TranscendentalPath::kSimd) return true;
  if (mode == TranscendentalPath::kScalar) return false;
  static const bool simd_default = ResolveSimdDefault();
  return simd_default;
#else
  return false;
#endif
}

void ExpForward(const float* x, float* y, int64_t n) {
#ifdef ADAPTRAJ_HAVE_VEC16
  if (SimdTranscendentalsActive()) {
    VecMap(x, y, n, [](Vec16 v) { return VecExp(v); });
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) y[i] = std::exp(x[i]);
}

void TanhForward(const float* x, float* y, int64_t n) {
#ifdef ADAPTRAJ_HAVE_VEC16
  if (SimdTranscendentalsActive()) {
    VecMap(x, y, n, [](Vec16 v) { return VecTanh(v); });
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void SigmoidForward(const float* x, float* y, int64_t n) {
#ifdef ADAPTRAJ_HAVE_VEC16
  if (SimdTranscendentalsActive()) {
    VecMap(x, y, n, [](Vec16 v) { return VecSigmoid(v); });
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) y[i] = SigmoidF(x[i]);
}

// --- Optimizer and gradient-reduction kernels --------------------------------

namespace {

/// Elements per parallel chunk for the memory-bound optimizer loops.
constexpr int64_t kUpdateGrain = 1 << 15;

#ifdef ADAPTRAJ_HAVE_VEC16

/// Lane-wise IEEE sqrt. Hardware sqrt instructions are correctly rounded,
/// so every variant below is bit-identical to std::sqrt per lane (inputs are
/// never negative here). The intrinsic paths exist because GCC will not
/// auto-vectorize std::sqrt loops under errno semantics.
inline Vec16 VecSqrt(Vec16 x) {
#if defined(__AVX512F__)
  // __m512 is itself a 16-lane float vector type, so this is a value
  // conversion. The all-lanes maskz variant sidesteps the
  // _mm512_undefined_ps() operand inside plain _mm512_sqrt_ps that trips
  // GCC 12's -Wmaybe-uninitialized.
  return Vec16(_mm512_maskz_sqrt_ps(static_cast<__mmask16>(0xffff), __m512(x)));
#elif defined(__AVX__)
  typedef float Vec8 __attribute__((vector_size(8 * sizeof(float))));
  union Halves {
    Vec16 v16;
    Vec8 v8[2];
  } u;
  u.v16 = x;
  u.v8[0] = Vec8(_mm256_sqrt_ps(__m256(u.v8[0])));
  u.v8[1] = Vec8(_mm256_sqrt_ps(__m256(u.v8[1])));
  return u.v16;
#else
  float tmp[16];
  StoreVec16(tmp, x);
  for (int j = 0; j < 16; ++j) tmp[j] = std::sqrt(tmp[j]);
  return LoadVec16(tmp);
#endif
}

#endif  // ADAPTRAJ_HAVE_VEC16

}  // namespace

void ReduceGradSum(const float* const* srcs, int num_srcs, float scale,
                   float* dst, int64_t n) {
  if (n == 0 || num_srcs <= 0) return;
  parallel::ParallelFor(0, n, kUpdateGrain, [&](int64_t lo, int64_t hi) {
    int64_t i = lo;
#ifdef ADAPTRAJ_HAVE_VEC16
    const Vec16 vscale = Splat(scale);
    for (; i + 16 <= hi; i += 16) {
      Vec16 acc = LoadVec16(srcs[0] + i);
      for (int s = 1; s < num_srcs; ++s) acc = acc + LoadVec16(srcs[s] + i);
      StoreVec16(dst + i, acc * vscale);
    }
#endif
    for (; i < hi; ++i) {
      float acc = srcs[0][i];
      for (int s = 1; s < num_srcs; ++s) acc += srcs[s][i];
      dst[i] = acc * scale;
    }
  });
}

void AdamUpdate(float* param, const float* grad, float* m, float* v, int64_t n,
                float lr, float beta1, float beta2, float eps,
                float weight_decay, float bc1, float bc2) {
  parallel::ParallelFor(0, n, kUpdateGrain, [&](int64_t lo, int64_t hi) {
    int64_t i = lo;
#ifdef ADAPTRAJ_HAVE_VEC16
    const Vec16 vb1 = Splat(beta1), vcb1 = Splat(1.0f - beta1);
    const Vec16 vb2 = Splat(beta2), vcb2 = Splat(1.0f - beta2);
    const Vec16 vwd = Splat(weight_decay), vlr = Splat(lr);
    const Vec16 vbc1 = Splat(bc1), vbc2 = Splat(bc2), veps = Splat(eps);
    for (; i + 16 <= hi; i += 16) {
      Vec16 p = LoadVec16(param + i);
      Vec16 g = LoadVec16(grad + i);
      if (weight_decay != 0.0f) g = g + vwd * p;
      const Vec16 mv = vb1 * LoadVec16(m + i) + vcb1 * g;
      const Vec16 vv = vb2 * LoadVec16(v + i) + vcb2 * (g * g);
      StoreVec16(m + i, mv);
      StoreVec16(v + i, vv);
      p = p - vlr * (mv / vbc1) / (VecSqrt(vv / vbc2) + veps);
      StoreVec16(param + i, p);
    }
#endif
    for (; i < hi; ++i) {
      float g = grad[i];
      if (weight_decay != 0.0f) g += weight_decay * param[i];
      m[i] = beta1 * m[i] + (1.0f - beta1) * g;
      v[i] = beta2 * v[i] + (1.0f - beta2) * g * g;
      const float m_hat = m[i] / bc1;
      const float v_hat = v[i] / bc2;
      param[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    }
  });
}

void SgdUpdate(float* param, const float* grad, float* velocity, int64_t n,
               float lr, float momentum) {
  parallel::ParallelFor(0, n, kUpdateGrain, [&](int64_t lo, int64_t hi) {
    int64_t i = lo;
#ifdef ADAPTRAJ_HAVE_VEC16
    const Vec16 vlr = Splat(lr), vmom = Splat(momentum);
    if (momentum != 0.0f) {
      for (; i + 16 <= hi; i += 16) {
        const Vec16 vel = vmom * LoadVec16(velocity + i) + LoadVec16(grad + i);
        StoreVec16(velocity + i, vel);
        StoreVec16(param + i, LoadVec16(param + i) - vlr * vel);
      }
    } else {
      for (; i + 16 <= hi; i += 16) {
        StoreVec16(param + i, LoadVec16(param + i) - vlr * LoadVec16(grad + i));
      }
    }
#endif
    for (; i < hi; ++i) {
      float g = grad[i];
      if (momentum != 0.0f) {
        velocity[i] = momentum * velocity[i] + g;
        g = velocity[i];
      }
      param[i] -= lr * g;
    }
  });
}

void SoftmaxRow(const float* x, float* y, int64_t n) {
  if (n == 0) return;
  float mx = x[0];
  for (int64_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
#ifdef ADAPTRAJ_HAVE_VEC16
  if (SimdTranscendentalsActive()) {
    VecMap(x, y, n, [mx](Vec16 v) { return VecExp(v - mx); });
  } else
#endif
  {
    for (int64_t i = 0; i < n; ++i) y[i] = std::exp(x[i] - mx);
  }
  // Ascending double accumulation: the denominator depends only on the row.
  double denom = 0.0;
  for (int64_t i = 0; i < n; ++i) denom += y[i];
  const float inv = static_cast<float>(1.0 / denom);
  for (int64_t i = 0; i < n; ++i) y[i] *= inv;
}

void AddRowBias(float* y, const float* bias, int64_t rows, int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    float* yr = y + r * cols;
    for (int64_t c = 0; c < cols; ++c) yr[c] += bias[c];
  }
}

void AccumulateColumnSum(const float* y, int64_t rows, int64_t cols, float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * cols;
    for (int64_t c = 0; c < cols; ++c) out[c] += yr[c];
  }
}

namespace {

/// Chunk grain for splitting LSTM rows across the pool: a pure function of
/// the extents, so chunk boundaries (and thus results) never depend on the
/// thread count.
inline int64_t LstmRowGrain(int64_t hidden) {
  return std::max<int64_t>(1, 2048 / std::max<int64_t>(1, hidden));
}

void LstmForwardCRows(const float* gates, const float* c_prev, int64_t hidden,
                      float* c_next, int64_t r0, int64_t r1, bool simd) {
  for (int64_t r = r0; r < r1; ++r) {
    const float* g = gates + r * 4 * hidden;
    const float* cp = c_prev + r * hidden;
    float* cn = c_next + r * hidden;
#ifdef ADAPTRAJ_HAVE_VEC16
    if (simd) {
      int64_t j = 0;
      for (; j + 16 <= hidden; j += 16) {
        const Vec16 i_act = VecSigmoid(LoadVec16(g + j));
        const Vec16 f_act = VecSigmoid(LoadVec16(g + hidden + j));
        const Vec16 g_act = VecTanh(LoadVec16(g + 2 * hidden + j));
        StoreVec16(cn + j, f_act * LoadVec16(cp + j) + i_act * g_act);
      }
      if (j < hidden) {
        const int64_t w = hidden - j;
        const Vec16 i_act = VecSigmoid(LoadPartial16(g + j, w));
        const Vec16 f_act = VecSigmoid(LoadPartial16(g + hidden + j, w));
        const Vec16 g_act = VecTanh(LoadPartial16(g + 2 * hidden + j, w));
        StorePartial16(cn + j, f_act * LoadPartial16(cp + j, w) + i_act * g_act, w);
      }
      continue;
    }
#else
    (void)simd;
#endif
    for (int64_t j = 0; j < hidden; ++j) {
      const float i_act = SigmoidF(g[j]);
      const float f_act = SigmoidF(g[hidden + j]);
      const float g_act = std::tanh(g[2 * hidden + j]);
      cn[j] = f_act * cp[j] + i_act * g_act;
    }
  }
}

void LstmForwardHRows(const float* gates, const float* c_next, int64_t hidden,
                      float* h_next, int64_t r0, int64_t r1, bool simd) {
  for (int64_t r = r0; r < r1; ++r) {
    const float* g = gates + r * 4 * hidden;
    const float* cn = c_next + r * hidden;
    float* hn = h_next + r * hidden;
#ifdef ADAPTRAJ_HAVE_VEC16
    if (simd) {
      int64_t j = 0;
      for (; j + 16 <= hidden; j += 16) {
        const Vec16 o_act = VecSigmoid(LoadVec16(g + 3 * hidden + j));
        StoreVec16(hn + j, o_act * VecTanh(LoadVec16(cn + j)));
      }
      if (j < hidden) {
        const int64_t w = hidden - j;
        const Vec16 o_act = VecSigmoid(LoadPartial16(g + 3 * hidden + j, w));
        StorePartial16(hn + j, o_act * VecTanh(LoadPartial16(cn + j, w)), w);
      }
      continue;
    }
#else
    (void)simd;
#endif
    for (int64_t j = 0; j < hidden; ++j) {
      const float o_act = SigmoidF(g[3 * hidden + j]);
      hn[j] = o_act * std::tanh(cn[j]);
    }
  }
}

#ifdef ADAPTRAJ_HAVE_VEC16
/// dst[0:w] += v[0:w] (w <= 16).
inline void AccumulatePartial(float* dst, Vec16 v, int64_t w) {
  StorePartial16(dst, LoadPartial16(dst, w) + v, w);
}

inline void Accumulate16(float* dst, Vec16 v) {
  StoreVec16(dst, LoadVec16(dst) + v);
}
#endif

void LstmBackwardCRows(const float* gates, const float* c_prev, const float* dc,
                       int64_t hidden, float* d_gates, float* d_c_prev,
                       int64_t r0, int64_t r1, bool simd) {
  for (int64_t r = r0; r < r1; ++r) {
    const float* g = gates + r * 4 * hidden;
    const float* cp = c_prev + r * hidden;
    const float* d = dc + r * hidden;
    float* dg = d_gates ? d_gates + r * 4 * hidden : nullptr;
    float* dcp = d_c_prev ? d_c_prev + r * hidden : nullptr;
#ifdef ADAPTRAJ_HAVE_VEC16
    if (simd) {
      int64_t j = 0;
      for (; j + 16 <= hidden; j += 16) {
        const Vec16 i_act = VecSigmoid(LoadVec16(g + j));
        const Vec16 f_act = VecSigmoid(LoadVec16(g + hidden + j));
        const Vec16 g_act = VecTanh(LoadVec16(g + 2 * hidden + j));
        const Vec16 dv = LoadVec16(d + j);
        if (dg != nullptr) {
          const Vec16 cpv = LoadVec16(cp + j);
          Accumulate16(dg + j, dv * g_act * i_act * (1.0f - i_act));
          Accumulate16(dg + hidden + j, dv * cpv * f_act * (1.0f - f_act));
          Accumulate16(dg + 2 * hidden + j, dv * i_act * (1.0f - g_act * g_act));
        }
        if (dcp != nullptr) Accumulate16(dcp + j, dv * f_act);
      }
      if (j < hidden) {
        const int64_t w = hidden - j;
        const Vec16 i_act = VecSigmoid(LoadPartial16(g + j, w));
        const Vec16 f_act = VecSigmoid(LoadPartial16(g + hidden + j, w));
        const Vec16 g_act = VecTanh(LoadPartial16(g + 2 * hidden + j, w));
        const Vec16 dv = LoadPartial16(d + j, w);
        if (dg != nullptr) {
          const Vec16 cpv = LoadPartial16(cp + j, w);
          AccumulatePartial(dg + j, dv * g_act * i_act * (1.0f - i_act), w);
          AccumulatePartial(dg + hidden + j, dv * cpv * f_act * (1.0f - f_act), w);
          AccumulatePartial(dg + 2 * hidden + j, dv * i_act * (1.0f - g_act * g_act), w);
        }
        if (dcp != nullptr) AccumulatePartial(dcp + j, dv * f_act, w);
      }
      continue;
    }
#else
    (void)simd;
#endif
    for (int64_t j = 0; j < hidden; ++j) {
      const float i_act = SigmoidF(g[j]);
      const float f_act = SigmoidF(g[hidden + j]);
      const float g_act = std::tanh(g[2 * hidden + j]);
      const float dv = d[j];
      if (dg != nullptr) {
        dg[j] += dv * g_act * i_act * (1.0f - i_act);
        dg[hidden + j] += dv * cp[j] * f_act * (1.0f - f_act);
        dg[2 * hidden + j] += dv * i_act * (1.0f - g_act * g_act);
      }
      if (dcp != nullptr) dcp[j] += dv * f_act;
    }
  }
}

void LstmBackwardHRows(const float* gates, const float* c_next, const float* dh,
                       int64_t hidden, float* d_gates, float* d_c_next,
                       int64_t r0, int64_t r1, bool simd) {
  for (int64_t r = r0; r < r1; ++r) {
    const float* g = gates + r * 4 * hidden;
    const float* cn = c_next + r * hidden;
    const float* d = dh + r * hidden;
    float* dg = d_gates ? d_gates + r * 4 * hidden : nullptr;
    float* dcn = d_c_next ? d_c_next + r * hidden : nullptr;
#ifdef ADAPTRAJ_HAVE_VEC16
    if (simd) {
      int64_t j = 0;
      for (; j + 16 <= hidden; j += 16) {
        const Vec16 o_act = VecSigmoid(LoadVec16(g + 3 * hidden + j));
        const Vec16 t = VecTanh(LoadVec16(cn + j));
        const Vec16 dv = LoadVec16(d + j);
        if (dg != nullptr) {
          Accumulate16(dg + 3 * hidden + j, dv * t * o_act * (1.0f - o_act));
        }
        if (dcn != nullptr) Accumulate16(dcn + j, dv * o_act * (1.0f - t * t));
      }
      if (j < hidden) {
        const int64_t w = hidden - j;
        const Vec16 o_act = VecSigmoid(LoadPartial16(g + 3 * hidden + j, w));
        const Vec16 t = VecTanh(LoadPartial16(cn + j, w));
        const Vec16 dv = LoadPartial16(d + j, w);
        if (dg != nullptr) {
          AccumulatePartial(dg + 3 * hidden + j, dv * t * o_act * (1.0f - o_act), w);
        }
        if (dcn != nullptr) AccumulatePartial(dcn + j, dv * o_act * (1.0f - t * t), w);
      }
      continue;
    }
#else
    (void)simd;
#endif
    for (int64_t j = 0; j < hidden; ++j) {
      const float o_act = SigmoidF(g[3 * hidden + j]);
      const float t = std::tanh(cn[j]);
      const float dv = d[j];
      if (dg != nullptr) dg[3 * hidden + j] += dv * t * o_act * (1.0f - o_act);
      if (dcn != nullptr) dcn[j] += dv * o_act * (1.0f - t * t);
    }
  }
}

void LstmForwardCHRows(const float* gates, const float* c_prev, int64_t hidden,
                       float* c_next, float* h_next, int64_t r0, int64_t r1,
                       bool simd) {
  for (int64_t r = r0; r < r1; ++r) {
    const float* g = gates + r * 4 * hidden;
    const float* cp = c_prev + r * hidden;
    float* cn = c_next + r * hidden;
    float* hn = h_next + r * hidden;
#ifdef ADAPTRAJ_HAVE_VEC16
    if (simd) {
      int64_t j = 0;
      for (; j + 16 <= hidden; j += 16) {
        const Vec16 i_act = VecSigmoid(LoadVec16(g + j));
        const Vec16 f_act = VecSigmoid(LoadVec16(g + hidden + j));
        const Vec16 g_act = VecTanh(LoadVec16(g + 2 * hidden + j));
        const Vec16 o_act = VecSigmoid(LoadVec16(g + 3 * hidden + j));
        const Vec16 c = f_act * LoadVec16(cp + j) + i_act * g_act;
        StoreVec16(cn + j, c);
        StoreVec16(hn + j, o_act * VecTanh(c));
      }
      if (j < hidden) {
        const int64_t w = hidden - j;
        const Vec16 i_act = VecSigmoid(LoadPartial16(g + j, w));
        const Vec16 f_act = VecSigmoid(LoadPartial16(g + hidden + j, w));
        const Vec16 g_act = VecTanh(LoadPartial16(g + 2 * hidden + j, w));
        const Vec16 o_act = VecSigmoid(LoadPartial16(g + 3 * hidden + j, w));
        const Vec16 c = f_act * LoadPartial16(cp + j, w) + i_act * g_act;
        StorePartial16(cn + j, c, w);
        StorePartial16(hn + j, o_act * VecTanh(c), w);
      }
      continue;
    }
#else
    (void)simd;
#endif
    for (int64_t j = 0; j < hidden; ++j) {
      const float i_act = SigmoidF(g[j]);
      const float f_act = SigmoidF(g[hidden + j]);
      const float g_act = std::tanh(g[2 * hidden + j]);
      const float o_act = SigmoidF(g[3 * hidden + j]);
      const float c = f_act * cp[j] + i_act * g_act;
      cn[j] = c;
      hn[j] = o_act * std::tanh(c);
    }
  }
}

}  // namespace

void LstmCellForwardC(const float* gates, const float* c_prev, int64_t batch,
                      int64_t hidden, float* c_next) {
  const bool simd = SimdTranscendentalsActive();
  parallel::ParallelFor(0, batch, LstmRowGrain(hidden), [&](int64_t r0, int64_t r1) {
    LstmForwardCRows(gates, c_prev, hidden, c_next, r0, r1, simd);
  });
}

void LstmCellForwardH(const float* gates, const float* c_next, int64_t batch,
                      int64_t hidden, float* h_next) {
  const bool simd = SimdTranscendentalsActive();
  parallel::ParallelFor(0, batch, LstmRowGrain(hidden), [&](int64_t r0, int64_t r1) {
    LstmForwardHRows(gates, c_next, hidden, h_next, r0, r1, simd);
  });
}

void LstmCellBackwardC(const float* gates, const float* c_prev, const float* dc,
                       int64_t batch, int64_t hidden, float* d_gates,
                       float* d_c_prev) {
  const bool simd = SimdTranscendentalsActive();
  parallel::ParallelFor(0, batch, LstmRowGrain(hidden), [&](int64_t r0, int64_t r1) {
    LstmBackwardCRows(gates, c_prev, dc, hidden, d_gates, d_c_prev, r0, r1, simd);
  });
}

void LstmCellBackwardH(const float* gates, const float* c_next, const float* dh,
                       int64_t batch, int64_t hidden, float* d_gates,
                       float* d_c_next) {
  const bool simd = SimdTranscendentalsActive();
  parallel::ParallelFor(0, batch, LstmRowGrain(hidden), [&](int64_t r0, int64_t r1) {
    LstmBackwardHRows(gates, c_next, dh, hidden, d_gates, d_c_next, r0, r1, simd);
  });
}

// --- Planned-execution kernels -----------------------------------------------

int64_t PlanPackedCols(int64_t n) { return RoundUpNR(n); }

void PlanPackWeight(const float* w, int64_t k, int64_t n, float* dst) {
  const int64_t np = PlanPackedCols(n);
  for (int64_t p = 0; p < k; ++p) {
    std::memcpy(dst + p * np, w + p * n, static_cast<size_t>(n) * sizeof(float));
    std::fill(dst + p * np + n, dst + (p + 1) * np, 0.0f);
  }
}

int64_t PlanPackedSize(int64_t k, int64_t n, GemmPath path) {
  return path == GemmPath::kAvx512 ? avx512::PackedBSize(n, k)
                                   : k * PlanPackedCols(n);
}

void PlanPackWeightFor(const float* w, int64_t k, int64_t n, GemmPath path,
                       float* dst) {
  if (path == GemmPath::kAvx512) {
    PackBAvx512(w, n, k, /*trans_b=*/false, dst);
  } else {
    PlanPackWeight(w, k, n, dst);
  }
}

int64_t PlanPackedBiasSize(int64_t n, GemmPath path) {
  return path == GemmPath::kAvx512 ? avx512::RoundUpNR(n) : PlanPackedCols(n);
}

void PlanPackBiasFor(const float* b, int64_t n, GemmPath path, float* dst) {
  const int64_t padded = PlanPackedBiasSize(n, path);
  std::memcpy(dst, b, static_cast<size_t>(n) * sizeof(float));
  std::fill(dst + n, dst + padded, 0.0f);
}

void LstmCellForwardCH(const float* gates, const float* c_prev, int64_t batch,
                       int64_t hidden, float* c_next, float* h_next) {
  const bool simd = SimdTranscendentalsActive();
  parallel::ParallelFor(0, batch, LstmRowGrain(hidden), [&](int64_t r0, int64_t r1) {
    LstmForwardCHRows(gates, c_prev, hidden, c_next, h_next, r0, r1, simd);
  });
}

void ScaledMaskedSoftmaxRows(const float* x, const float* mask, float scale,
                             float fill, int64_t rows, int64_t cols, float* y) {
  parallel::ParallelFor(0, rows, /*grain=*/64, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = x + r * cols;
      float* yr = y + r * cols;
      if (mask != nullptr) {
        const float* mr = mask + r * cols;
        for (int64_t j = 0; j < cols; ++j) {
          yr[j] = (mr[j] != 0.0f) ? fill : xr[j] * scale;
        }
      } else {
        for (int64_t j = 0; j < cols; ++j) yr[j] = xr[j] * scale;
      }
      SoftmaxRow(yr, yr, cols);
    }
  });
}

void LayerNormRows(const float* x, int64_t rows, int64_t cols, float eps,
                   float* y) {
  // `scale` matches ops::MeanAxis exactly (float reciprocal applied to the
  // float-rounded double sum).
  const float scale = cols > 0 ? 1.0f / static_cast<float>(cols) : 1.0f;
  parallel::ParallelFor(0, rows, /*grain=*/64, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = x + r * cols;
      float* yr = y + r * cols;
      double sum = 0.0;
      for (int64_t j = 0; j < cols; ++j) sum += xr[j];
      const float neg_mean = -(static_cast<float>(sum) * scale);
      double sq = 0.0;
      for (int64_t j = 0; j < cols; ++j) {
        const float centered = xr[j] + neg_mean;
        yr[j] = centered;
        sq += centered * centered;
      }
      const float var = static_cast<float>(sq) * scale;
      const float sd = std::sqrt(std::max(var + eps, 0.0f));
      const float inv = 1.0f / sd;
      for (int64_t j = 0; j < cols; ++j) yr[j] *= inv;
    }
  });
}

namespace {

#ifdef ADAPTRAJ_HAVE_VEC16

/// Planned-GEMM register tile: MW rows x NB 16-lane column blocks. Both
/// products accumulate in registers over their full ascending k ranges, then
/// the bias add and the activation run as a register epilogue — per output
/// element this is exactly the eager Gemm(+accumulate Gemm)+AddRowBias+act
/// arithmetic, since every lane is independent and the store/load roundtrip
/// between the eager ops is a bit-exact float identity. Three separately
/// named accumulator arrays (rather than one [MW][NB]) keep GCC from
/// spilling at MW=4, NB=3 — the shape the FMA-throughput probe picked.
template <int MW, int NB>
void PlanTileImpl(int64_t k, const float* a, int64_t lda, const float* bp,
                  int64_t ldb, int64_t k2, const float* a2, int64_t lda2,
                  const float* bp2, int64_t ldb2, const float* biasp,
                  PlanAct act, bool simd_act, float* c, int64_t ldc,
                  int64_t ncols) {
  static_assert(NB >= 1 && NB <= 3, "tile is 16/32/48 columns wide");
  Vec16 au[MW], av[MW], aw[MW];
  const Vec16 zero = Vec16{} * 0.0f;
  for (int r = 0; r < MW; ++r) {
    au[r] = zero;
    if (NB > 1) av[r] = zero;
    if (NB > 2) aw[r] = zero;
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC unroll 8
#endif
  for (int64_t p = 0; p < k; ++p) {
    const float* br = bp + p * ldb;
    const Vec16 u = LoadVec16(br);
    Vec16 v{}, w{};
    if (NB > 1) v = LoadVec16(br + 16);
    if (NB > 2) w = LoadVec16(br + 32);
    for (int r = 0; r < MW; ++r) {
      const float x = a[r * lda + p];
      au[r] += x * u;
      if (NB > 1) av[r] += x * v;
      if (NB > 2) aw[r] += x * w;
    }
  }
  if (a2 != nullptr) {
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC unroll 8
#endif
    for (int64_t p = 0; p < k2; ++p) {
      const float* br = bp2 + p * ldb2;
      const Vec16 u = LoadVec16(br);
      Vec16 v{}, w{};
      if (NB > 1) v = LoadVec16(br + 16);
      if (NB > 2) w = LoadVec16(br + 32);
      for (int r = 0; r < MW; ++r) {
        const float x = a2[r * lda2 + p];
        au[r] += x * u;
        if (NB > 1) av[r] += x * v;
        if (NB > 2) aw[r] += x * w;
      }
    }
  }
  if (biasp != nullptr) {
    const Vec16 bu = LoadVec16(biasp);
    const Vec16 bv = NB > 1 ? LoadVec16(biasp + 16) : zero;
    const Vec16 bw = NB > 2 ? LoadVec16(biasp + 32) : zero;
    for (int r = 0; r < MW; ++r) {
      au[r] += bu;
      if (NB > 1) av[r] += bv;
      if (NB > 2) aw[r] += bw;
    }
  }
  if (act == PlanAct::kRelu) {
    for (int r = 0; r < MW; ++r) {
      au[r] = au[r] > 0.0f ? au[r] : zero;
      if (NB > 1) av[r] = av[r] > 0.0f ? av[r] : zero;
      if (NB > 2) aw[r] = aw[r] > 0.0f ? aw[r] : zero;
    }
  } else if (simd_act && act == PlanAct::kTanh) {
    for (int r = 0; r < MW; ++r) {
      au[r] = VecTanh(au[r]);
      if (NB > 1) av[r] = VecTanh(av[r]);
      if (NB > 2) aw[r] = VecTanh(aw[r]);
    }
  } else if (simd_act && act == PlanAct::kSigmoid) {
    for (int r = 0; r < MW; ++r) {
      au[r] = VecSigmoid(au[r]);
      if (NB > 1) av[r] = VecSigmoid(av[r]);
      if (NB > 2) aw[r] = VecSigmoid(aw[r]);
    }
  }
  for (int r = 0; r < MW; ++r) {
    float* cr = c + r * ldc;
    if (NB == 1) {
      StorePartial16(cr, au[r], ncols);
    } else if (NB == 2) {
      StoreVec16(cr, au[r]);
      StorePartial16(cr + 16, av[r], ncols - 16);
    } else {
      StoreVec16(cr, au[r]);
      StoreVec16(cr + 16, av[r]);
      StorePartial16(cr + 32, aw[r], ncols - 32);
    }
  }
}

template <int NB>
inline void PlanTileRow(int64_t mw, int64_t k, const float* a, int64_t lda,
                        const float* bp, int64_t ldb, int64_t k2,
                        const float* a2, int64_t lda2, const float* bp2,
                        int64_t ldb2, const float* biasp, PlanAct act,
                        bool simd_act, float* c, int64_t ldc, int64_t ncols) {
  switch (mw) {
    case 1:
      PlanTileImpl<1, NB>(k, a, lda, bp, ldb, k2, a2, lda2, bp2, ldb2, biasp,
                          act, simd_act, c, ldc, ncols);
      break;
    case 2:
      PlanTileImpl<2, NB>(k, a, lda, bp, ldb, k2, a2, lda2, bp2, ldb2, biasp,
                          act, simd_act, c, ldc, ncols);
      break;
    case 3:
      PlanTileImpl<3, NB>(k, a, lda, bp, ldb, k2, a2, lda2, bp2, ldb2, biasp,
                          act, simd_act, c, ldc, ncols);
      break;
    default:
      PlanTileImpl<4, NB>(k, a, lda, bp, ldb, k2, a2, lda2, bp2, ldb2, biasp,
                          act, simd_act, c, ldc, ncols);
      break;
  }
}

#endif  // ADAPTRAJ_HAVE_VEC16

/// Scalar PlanGemm body: the portable fallback, and the tail pass that
/// applies scalar-libm activations when the SIMD transcendental path is off
/// (the tiles then run with act == kNone so the pre-activation values match
/// the eager Gemm+bias chain, and this pass applies exactly the eager
/// scalar TanhForward/SigmoidForward arithmetic).
[[maybe_unused]] void PlanGemmScalarRows(
    int64_t n, int64_t k, const float* a, const float* bp,
                        int64_t ldb, int64_t k2, const float* a2,
                        const float* bp2, int64_t ldb2, const float* biasp,
                        PlanAct act, float* c, int64_t i0, int64_t i1) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* ar = a + i * k;
    const float* ar2 = a2 != nullptr ? a2 + i * k2 : nullptr;
    float* cr = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += ar[p] * bp[p * ldb + j];
      if (ar2 != nullptr) {
        for (int64_t p = 0; p < k2; ++p) acc += ar2[p] * bp2[p * ldb2 + j];
      }
      if (biasp != nullptr) acc += biasp[j];
      switch (act) {
        case PlanAct::kNone: break;
        case PlanAct::kRelu: acc = acc > 0.0f ? acc : 0.0f; break;
        case PlanAct::kTanh: acc = std::tanh(acc); break;
        case PlanAct::kSigmoid: acc = SigmoidF(acc); break;
      }
      cr[j] = acc;
    }
  }
}

/// AVX-512 PlanGemm body: the 8x32 fused tile computes products + bias +
/// relu in registers (exact operations, safe across TUs); tanh/sigmoid
/// epilogues run as a second pass over the stored pre-activations INSIDE the
/// same row-panel worker, using this TU's transcendental code — the same
/// VecTanh/VecSigmoid (or scalar libm) arithmetic as the eager
/// TanhForward/SigmoidForward, so replay stays bit-identical to eager no
/// matter how kernels_avx512.cpp's TU would have contracted them. The
/// store/reload between passes is a bit-exact float identity, and VecMap's
/// zero-padded remainder makes the per-row-panel application identical to
/// the eager whole-tensor pass.
void PlanGemmAvx512(int64_t m, int64_t n, int64_t k, const float* a,
                    const float* bp, int64_t k2, const float* a2,
                    const float* bp2, const float* biasp, PlanAct act,
                    float* c) {
  const int tile_act = act == PlanAct::kRelu ? 1 : 0;
  const bool transcendental = act == PlanAct::kTanh || act == PlanAct::kSigmoid;
#ifdef ADAPTRAJ_HAVE_VEC16
  const bool simd_act = transcendental && SimdTranscendentalsActive();
#endif
  parallel::ParallelFor(0, m, kRowGrain, [&](int64_t i0, int64_t i1) {
    avx512::PlanGemmRows(i0, i1, n, k, a, k, bp, k2, a2, k2, bp2, biasp,
                         tile_act, c, n);
    if (!transcendental) return;
    float* cr = c + i0 * n;
    const int64_t elems = (i1 - i0) * n;
#ifdef ADAPTRAJ_HAVE_VEC16
    if (simd_act) {
      if (act == PlanAct::kTanh) {
        VecMap(cr, cr, elems, [](Vec16 v) { return VecTanh(v); });
      } else {
        VecMap(cr, cr, elems, [](Vec16 v) { return VecSigmoid(v); });
      }
      return;
    }
#endif
    if (act == PlanAct::kTanh) {
      for (int64_t i = 0; i < elems; ++i) cr[i] = std::tanh(cr[i]);
    } else {
      for (int64_t i = 0; i < elems; ++i) cr[i] = SigmoidF(cr[i]);
    }
  });
}

}  // namespace

void PlanGemm(int64_t m, int64_t n, int64_t k, const float* a, const float* bp,
              int64_t k2, const float* a2, const float* bp2,
              const float* biasp, PlanAct act, float* c, GemmPath packed_for) {
  if (m == 0 || n == 0) return;
  if (packed_for == GemmPath::kAvx512) {
    PlanGemmAvx512(m, n, k, a, bp, k2, a2, bp2, biasp, act, c);
    return;
  }
#ifdef ADAPTRAJ_HAVE_VEC16
  const int64_t np = PlanPackedCols(n);
  const int64_t np2 = a2 != nullptr ? np : 0;
  const bool simd_act = SimdTranscendentalsActive();
  const bool scalar_transcendental =
      !simd_act && (act == PlanAct::kTanh || act == PlanAct::kSigmoid);
  const PlanAct tile_act = scalar_transcendental ? PlanAct::kNone : act;
  parallel::ParallelFor(0, m, kRowGrain, [&](int64_t i0, int64_t i1) {
    int64_t j0 = 0;
    while (j0 < n) {
      const int64_t rem = np - j0;
      const int64_t bw = rem >= 48 ? 48 : rem >= 32 ? 32 : 16;
      const int64_t ncols = std::min(n - j0, bw);
      const float* bp2_blk = a2 != nullptr ? bp2 + j0 : nullptr;
      const float* bias_blk = biasp != nullptr ? biasp + j0 : nullptr;
      for (int64_t i = i0; i < i1; i += kMR) {
        const int64_t mw = std::min(kMR, i1 - i);
        const float* ar = a + i * k;
        const float* ar2 = a2 != nullptr ? a2 + i * k2 : nullptr;
        float* cr = c + i * n + j0;
        if (bw == 48) {
          PlanTileRow<3>(mw, k, ar, k, bp + j0, np, k2, ar2, k2, bp2_blk, np2,
                         bias_blk, tile_act, simd_act, cr, n, ncols);
        } else if (bw == 32) {
          PlanTileRow<2>(mw, k, ar, k, bp + j0, np, k2, ar2, k2, bp2_blk, np2,
                         bias_blk, tile_act, simd_act, cr, n, ncols);
        } else {
          PlanTileRow<1>(mw, k, ar, k, bp + j0, np, k2, ar2, k2, bp2_blk, np2,
                         bias_blk, tile_act, simd_act, cr, n, ncols);
        }
      }
      j0 += bw;
    }
    if (scalar_transcendental) {
      // Same per-element scalar-libm arithmetic as the eager
      // TanhForward/SigmoidForward pass over the stored pre-activations.
      for (int64_t i = i0; i < i1; ++i) {
        float* cr = c + i * n;
        if (act == PlanAct::kTanh) {
          for (int64_t j = 0; j < n; ++j) cr[j] = std::tanh(cr[j]);
        } else {
          for (int64_t j = 0; j < n; ++j) cr[j] = SigmoidF(cr[j]);
        }
      }
    }
  });
#else
  const int64_t np = PlanPackedCols(n);
  parallel::ParallelFor(0, m, kRowGrain, [&](int64_t i0, int64_t i1) {
    PlanGemmScalarRows(n, k, a, bp, np, k2, a2, bp2, a2 != nullptr ? np : 0,
                       biasp, act, c, i0, i1);
  });
#endif
}

}  // namespace kernels
}  // namespace adaptraj
