#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/buffer_pool.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace kernels {

namespace {

// Micro-tile extents: MR C rows x NR C columns are held in registers across
// the whole k loop (4 x 16 floats = one AVX-512 register per row, two AVX2
// registers per row), so the inner loop is pure broadcast+FMA with a single
// streaming read of the B tile. kRowGrain rows form one parallel chunk.
constexpr int64_t kMR = 4;
constexpr int64_t kNR = 16;
constexpr int64_t kRowGrain = 32;

/// Partial tile at the M/N edges: same accumulation structure as the full
/// micro-kernel with runtime extents (also the portable fallback full tile).
void MicroKernelEdge(int64_t mw, int64_t nw, int64_t k, const float* a,
                     int64_t lda, const float* b, int64_t ldb, float* c,
                     int64_t ldc, bool accumulate) {
  float acc[kMR][kNR];
  for (int64_t r = 0; r < mw; ++r) {
    for (int64_t j = 0; j < nw; ++j) {
      acc[r][j] = accumulate ? c[r * ldc + j] : 0.0f;
    }
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* br = b + p * ldb;
    for (int64_t r = 0; r < mw; ++r) {
      const float av = a[r * lda + p];
      for (int64_t j = 0; j < nw; ++j) acc[r][j] += av * br[j];
    }
  }
  for (int64_t r = 0; r < mw; ++r) {
    for (int64_t j = 0; j < nw; ++j) c[r * ldc + j] = acc[r][j];
  }
}

#if defined(__GNUC__) || defined(__clang__)

/// 16-lane float vector (lowers to one zmm, two ymm, or four xmm as the
/// target allows). memcpy in/out compiles to unaligned vector moves.
typedef float Vec16 __attribute__((vector_size(16 * sizeof(float))));

inline Vec16 LoadVec16(const float* p) {
  Vec16 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreVec16(float* p, Vec16 v) { std::memcpy(p, &v, sizeof(v)); }

/// Full MR x NR register tile: C[i:i+MR, j0:j0+NR] (+)= A[i:i+MR, :] * B.
/// Four explicit vector accumulators live in registers across the whole k
/// loop: one streaming B load feeds four broadcast-FMA ops per iteration.
/// The accumulator starts from C (accumulate) or zero, then adds a·b terms in
/// ascending p order — the same per-element order as GemmNaive, so results
/// are bit-identical to the reference.
void MicroKernel(int64_t k, const float* a, int64_t lda, const float* b,
                 int64_t ldb, float* c, int64_t ldc, bool accumulate) {
  Vec16 acc0, acc1, acc2, acc3;
  if (accumulate) {
    acc0 = LoadVec16(c + 0 * ldc);
    acc1 = LoadVec16(c + 1 * ldc);
    acc2 = LoadVec16(c + 2 * ldc);
    acc3 = LoadVec16(c + 3 * ldc);
  } else {
    acc0 = acc1 = acc2 = acc3 = Vec16{} * 0.0f;
  }
  const float* a0 = a + 0 * lda;
  const float* a1 = a + 1 * lda;
  const float* a2 = a + 2 * lda;
  const float* a3 = a + 3 * lda;
  for (int64_t p = 0; p < k; ++p) {
    const Vec16 bv = LoadVec16(b + p * ldb);
    acc0 += a0[p] * bv;
    acc1 += a1[p] * bv;
    acc2 += a2[p] * bv;
    acc3 += a3[p] * bv;
  }
  StoreVec16(c + 0 * ldc, acc0);
  StoreVec16(c + 1 * ldc, acc1);
  StoreVec16(c + 2 * ldc, acc2);
  StoreVec16(c + 3 * ldc, acc3);
}

#else  // portable fallback

void MicroKernel(int64_t k, const float* a, int64_t lda, const float* b,
                 int64_t ldb, float* c, int64_t ldc, bool accumulate) {
  MicroKernelEdge(kMR, kNR, k, a, lda, b, ldb, c, ldc, accumulate);
}

#endif

/// Serial row panel: C[i0:i1, :] (+)= A[i0:i1, :] * B with A, B packed
/// row-major [M,K] / [K,N], tiled into register micro-kernels.
void GemmPanel(int64_t i0, int64_t i1, int64_t n, int64_t k, const float* a,
               const float* b, float* c, bool accumulate) {
  for (int64_t j0 = 0; j0 < n; j0 += kNR) {
    const int64_t nw = std::min(kNR, n - j0);
    int64_t i = i0;
    if (nw == kNR) {
      for (; i + kMR <= i1; i += kMR) {
        MicroKernel(k, a + i * k, k, b + j0, n, c + i * n + j0, n, accumulate);
      }
    }
    for (; i < i1; i += kMR) {
      const int64_t mw = std::min(kMR, i1 - i);
      MicroKernelEdge(mw, nw, k, a + i * k, k, b + j0, n, c + i * n + j0, n,
                      accumulate);
    }
  }
}

/// Packs src (stored [cols, rows] row-major) transposed into dst [rows, cols].
void PackTranspose(const float* src, int64_t rows, int64_t cols, float* dst) {
  // Tile the transpose so both access streams stay cache-resident.
  constexpr int64_t kTile = 32;
  for (int64_t r0 = 0; r0 < rows; r0 += kTile) {
    const int64_t r1 = std::min(rows, r0 + kTile);
    for (int64_t c0 = 0; c0 < cols; c0 += kTile) {
      const int64_t c1 = std::min(cols, c0 + kTile);
      for (int64_t r = r0; r < r1; ++r) {
        for (int64_t c = c0; c < c1; ++c) dst[r * cols + c] = src[c * rows + r];
      }
    }
  }
}

inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          const float* a, const float* b, float* c, bool accumulate) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) std::memset(c, 0, sizeof(float) * static_cast<size_t>(m * n));
    return;
  }
  // Pack transposed operands into unit-stride panels once, up front (on the
  // calling thread: the buffer pool is thread-local).
  std::vector<float> a_packed;
  std::vector<float> b_packed;
  if (trans_a) {
    a_packed = internal::AcquireBuffer(m * k);
    PackTranspose(a, m, k, a_packed.data());
    a = a_packed.data();
  }
  if (trans_b) {
    b_packed = internal::AcquireBuffer(k * n);
    PackTranspose(b, k, n, b_packed.data());
    b = b_packed.data();
  }
  parallel::ParallelFor(0, m, kRowGrain, [&](int64_t i0, int64_t i1) {
    GemmPanel(i0, i1, n, k, a, b, c, accumulate);
  });
  if (!a_packed.empty()) internal::ReleaseBuffer(std::move(a_packed));
  if (!b_packed.empty()) internal::ReleaseBuffer(std::move(b_packed));
}

void GemmNaive(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
               const float* a, const float* b, float* c, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = accumulate ? c[i * n + j] : 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * m + i] : a[i * k + p];
        const float bv = trans_b ? b[j * k + p] : b[p * n + j];
        acc += av * bv;
      }
      c[i * n + j] = acc;
    }
  }
}

void AddRowBias(float* y, const float* bias, int64_t rows, int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    float* yr = y + r * cols;
    for (int64_t c = 0; c < cols; ++c) yr[c] += bias[c];
  }
}

void AccumulateColumnSum(const float* y, int64_t rows, int64_t cols, float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * cols;
    for (int64_t c = 0; c < cols; ++c) out[c] += yr[c];
  }
}

void LstmCellForwardC(const float* gates, const float* c_prev, int64_t batch,
                      int64_t hidden, float* c_next) {
  for (int64_t r = 0; r < batch; ++r) {
    const float* g = gates + r * 4 * hidden;
    const float* cp = c_prev + r * hidden;
    float* cn = c_next + r * hidden;
    for (int64_t j = 0; j < hidden; ++j) {
      const float i_act = SigmoidF(g[j]);
      const float f_act = SigmoidF(g[hidden + j]);
      const float g_act = std::tanh(g[2 * hidden + j]);
      cn[j] = f_act * cp[j] + i_act * g_act;
    }
  }
}

void LstmCellForwardH(const float* gates, const float* c_next, int64_t batch,
                      int64_t hidden, float* h_next) {
  for (int64_t r = 0; r < batch; ++r) {
    const float* g = gates + r * 4 * hidden;
    const float* cn = c_next + r * hidden;
    float* hn = h_next + r * hidden;
    for (int64_t j = 0; j < hidden; ++j) {
      const float o_act = SigmoidF(g[3 * hidden + j]);
      hn[j] = o_act * std::tanh(cn[j]);
    }
  }
}

void LstmCellBackwardC(const float* gates, const float* c_prev, const float* dc,
                       int64_t batch, int64_t hidden, float* d_gates,
                       float* d_c_prev) {
  for (int64_t r = 0; r < batch; ++r) {
    const float* g = gates + r * 4 * hidden;
    const float* cp = c_prev + r * hidden;
    const float* d = dc + r * hidden;
    float* dg = d_gates ? d_gates + r * 4 * hidden : nullptr;
    float* dcp = d_c_prev ? d_c_prev + r * hidden : nullptr;
    for (int64_t j = 0; j < hidden; ++j) {
      const float i_act = SigmoidF(g[j]);
      const float f_act = SigmoidF(g[hidden + j]);
      const float g_act = std::tanh(g[2 * hidden + j]);
      const float dv = d[j];
      if (dg != nullptr) {
        dg[j] += dv * g_act * i_act * (1.0f - i_act);
        dg[hidden + j] += dv * cp[j] * f_act * (1.0f - f_act);
        dg[2 * hidden + j] += dv * i_act * (1.0f - g_act * g_act);
      }
      if (dcp != nullptr) dcp[j] += dv * f_act;
    }
  }
}

void LstmCellBackwardH(const float* gates, const float* c_next, const float* dh,
                       int64_t batch, int64_t hidden, float* d_gates,
                       float* d_c_next) {
  for (int64_t r = 0; r < batch; ++r) {
    const float* g = gates + r * 4 * hidden;
    const float* cn = c_next + r * hidden;
    const float* d = dh + r * hidden;
    float* dg = d_gates ? d_gates + r * 4 * hidden : nullptr;
    float* dcn = d_c_next ? d_c_next + r * hidden : nullptr;
    for (int64_t j = 0; j < hidden; ++j) {
      const float o_act = SigmoidF(g[3 * hidden + j]);
      const float t = std::tanh(cn[j]);
      const float dv = d[j];
      if (dg != nullptr) dg[3 * hidden + j] += dv * t * o_act * (1.0f - o_act);
      if (dcn != nullptr) dcn[j] += dv * o_act * (1.0f - t * t);
    }
  }
}

}  // namespace kernels
}  // namespace adaptraj
