#include "tensor/gradcheck.h"

#include <algorithm>
#include <cmath>

namespace adaptraj {

GradCheckReport CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, float epsilon, float abs_tol, float rel_tol) {
  for (Tensor& t : inputs) {
    ADAPTRAJ_CHECK_MSG(t.requires_grad(), "gradient-check inputs must require grad");
    t.ZeroGrad();
  }

  Tensor loss = fn(inputs);
  ADAPTRAJ_CHECK_MSG(loss.size() == 1, "gradient check requires scalar loss");
  loss.Backward();

  std::vector<Tensor> analytic;
  analytic.reserve(inputs.size());
  for (const Tensor& t : inputs) analytic.push_back(t.grad());

  GradCheckReport report;
  report.ok = true;
  for (size_t which = 0; which < inputs.size(); ++which) {
    Tensor& t = inputs[which];
    for (int64_t i = 0; i < t.size(); ++i) {
      const float saved = t.data()[i];
      t.data()[i] = saved + epsilon;
      const float up = fn(inputs).item();
      t.data()[i] = saved - epsilon;
      const float down = fn(inputs).item();
      t.data()[i] = saved;
      const float numeric = (up - down) / (2.0f * epsilon);
      const float exact = analytic[which].flat(i);
      const float abs_err = std::fabs(numeric - exact);
      const float denom = std::max({std::fabs(numeric), std::fabs(exact), 1e-6f});
      const float rel_err = abs_err / denom;
      if (abs_err > report.max_abs_error) {
        report.worst_input = static_cast<int>(which);
        report.worst_index = i;
      }
      report.max_abs_error = std::max(report.max_abs_error, abs_err);
      report.max_rel_error = std::max(report.max_rel_error, rel_err);
      if (abs_err > abs_tol && rel_err > rel_tol) report.ok = false;
    }
  }
  return report;
}

}  // namespace adaptraj
