#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "tensor/buffer_pool.h"
#include "tensor/kernels.h"
#include "tensor/parallel.h"
#include "tensor/plan.h"

namespace adaptraj {
namespace ops {

namespace {

using internal::GradNode;
using internal::TensorImpl;

using Impl = std::shared_ptr<TensorImpl>;

/// Elementwise loops below this many elements run inline; larger ones are
/// chunked across the thread pool (deterministically — see parallel.h).
constexpr int64_t kElementwiseGrain = 1 << 14;

bool TrackAny(std::initializer_list<const Tensor*> tensors) {
  for (const Tensor* t : tensors) {
    if (t->needs_grad()) return true;
  }
  return false;
}

/// Allocates the op output from the buffer pool and, when track is set AND
/// GradMode is enabled, attaches the GradNode. This is the single point where
/// ops record the reverse-mode graph: under NoGradGuard no GradNode, parent
/// list, or type-erased backward closure is ever allocated, the inputs are
/// not retained (so intermediates return to the buffer pool as soon as their
/// handle dies), and the result is flagged so a stray Backward() fails
/// loudly. The returned buffer has UNSPECIFIED contents: every op's forward
/// pass fully overwrites its output (MatMul and friends write through
/// kernels::Gemm, which handles its own beta=0), so the zero-fill the old
/// allocator paid per op is gone.
template <typename MakeInputs, typename Backward>
Tensor MakeOutputCore(const Shape& shape, MakeInputs make_inputs, const char* name,
                      Backward&& backward, bool track) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = internal::AcquireBuffer(NumElements(shape));
  if (track) {
    if (GradMode::IsEnabled()) {
      auto node = std::make_shared<GradNode>();
      node->inputs = make_inputs();
      node->op_name = name;
      node->backward = std::forward<Backward>(backward);
      impl->grad_fn = std::move(node);
    } else {
      impl->no_grad_result = true;
    }
  }
  // Balance counter for plan capture: every op output must be matched by a
  // Record* hook, or the capture aborts to eager (see plan.h).
  plan::NoteOpOutput(track);
  return Tensor::FromImpl(std::move(impl));
}

template <typename Backward>
Tensor MakeOutput(const Shape& shape, std::initializer_list<Impl> inputs,
                  const char* name, Backward&& backward, bool track) {
  return MakeOutputCore(
      shape, [&] { return std::vector<Impl>(inputs); }, name,
      std::forward<Backward>(backward), track);
}

template <typename Backward>
Tensor MakeOutput(const Shape& shape, std::vector<Impl> inputs, const char* name,
                  Backward&& backward, bool track) {
  return MakeOutputCore(
      shape, [&] { return std::move(inputs); }, name,
      std::forward<Backward>(backward), track);
}

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  ADAPTRAJ_CHECK_MSG(a.shape() == b.shape(), op << ": shape mismatch "
                                                << ShapeToString(a.shape()) << " vs "
                                                << ShapeToString(b.shape()));
}

/// Walks the flat offsets into a broadcast operand (same rank; extents equal
/// or 1) in row-major order of the output. An odometer over the output shape
/// advances the operand offset by precomputed strides (0 on broadcast dims),
/// so each step costs a few adds instead of a division chain per dimension —
/// this sits on every Linear bias add and every mask multiply.
class BroadcastCursor {
 public:
  BroadcastCursor(const Shape& out_shape, const Shape& b_shape)
      : rank_(static_cast<int>(out_shape.size())),
        extent_(out_shape),
        index_(out_shape.size(), 0),
        stride_(out_shape.size(), 0) {
    int64_t s = 1;
    for (int d = rank_ - 1; d >= 0; --d) {
      stride_[d] = b_shape[d] == 1 ? 0 : s;
      s *= b_shape[d];
    }
  }

  /// Offset of the current output element into the broadcast operand.
  int64_t offset() const { return offset_; }

  /// Steps to the next output element (row-major order).
  void Advance() {
    for (int d = rank_ - 1; d >= 0; --d) {
      offset_ += stride_[d];
      if (++index_[d] < extent_[d]) return;
      index_[d] = 0;
      offset_ -= stride_[d] * extent_[d];
    }
  }

 private:
  int rank_;
  Shape extent_;
  std::vector<int64_t> index_;
  std::vector<int64_t> stride_;
  int64_t offset_ = 0;
};

void CheckBroadcastable(const Tensor& a, const Tensor& b, const char* op) {
  ADAPTRAJ_CHECK_MSG(a.dim() == b.dim(), op << ": rank mismatch " << ShapeToString(a.shape())
                                            << " vs " << ShapeToString(b.shape()));
  for (int d = 0; d < a.dim(); ++d) {
    ADAPTRAJ_CHECK_MSG(b.shape()[d] == a.shape()[d] || b.shape()[d] == 1,
                       op << ": dim " << d << " of " << ShapeToString(b.shape())
                          << " not broadcastable to " << ShapeToString(a.shape()));
  }
}

int NormalizeAxis(int axis, int rank) {
  if (axis < 0) axis += rank;
  ADAPTRAJ_CHECK_MSG(axis >= 0 && axis < rank, "axis " << axis << " out of range for rank "
                                                       << rank);
  return axis;
}

/// Generic elementwise binary op over equal shapes. Backward accumulates
/// straight into the inputs' gradient buffers — no scratch allocation.
template <typename Fwd, typename Bwd>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, const char* name, Fwd fwd,
                         Bwd bwd) {
  CheckSameShape(a, b, name);
  bool track = TrackAny({&a, &b});
  Impl ia = a.impl();
  Impl ib = b.impl();
  Tensor out = MakeOutput(
      a.shape(), {ia, ib}, name,
      [ia, ib, bwd](TensorImpl& o) {
        const int64_t n = o.size();
        const bool need_a = ia->requires_grad || ia->grad_fn != nullptr;
        const bool need_b = ib->requires_grad || ib->grad_fn != nullptr;
        if (need_a) ia->EnsureGrad();
        if (need_b) ib->EnsureGrad();
        float* ga = need_a ? ia->grad.data() : nullptr;
        float* gb = need_b ? ib->grad.data() : nullptr;
        const float* xa = ia->data.data();
        const float* xb = ib->data.data();
        const float* gy = o.grad.data();
        parallel::ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            float da = 0.0f;
            float db = 0.0f;
            bwd(xa[i], xb[i], gy[i], &da, &db);
            if (ga != nullptr) ga[i] += da;
            if (gb != nullptr) gb[i] += db;
          }
        });
      },
      track);
  const int64_t n = out.size();
  float* po = out.data();
  const float* pa = a.data();
  const float* pb = b.data();
  parallel::ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = fwd(pa[i], pb[i]);
  });
  return out;
}

/// Generic elementwise unary op; bwd receives (x, y, dy) and returns dx.
/// fwd_bulk computes a whole sub-range (pointer, pointer, count) — scalar ops
/// wrap a per-element lambda via BulkFromScalar; transcendentals pass the
/// SIMD kernels directly.
template <typename FwdBulk, typename Bwd>
Tensor ElementwiseUnaryBulk(const Tensor& a, const char* name, FwdBulk fwd_bulk,
                            Bwd bwd) {
  bool track = a.needs_grad();
  Impl ia = a.impl();
  Tensor out = MakeOutput(
      a.shape(), {ia}, name,
      [ia, bwd](TensorImpl& o) {
        const int64_t n = o.size();
        ia->EnsureGrad();
        float* ga = ia->grad.data();
        const float* x = ia->data.data();
        const float* y = o.data.data();
        const float* gy = o.grad.data();
        parallel::ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += bwd(x[i], y[i], gy[i]);
        });
      },
      track);
  const int64_t n = out.size();
  float* po = out.data();
  const float* pa = a.data();
  parallel::ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    fwd_bulk(pa + lo, po + lo, hi - lo);
  });
  return out;
}

template <typename Fwd>
auto BulkFromScalar(Fwd fwd) {
  return [fwd](const float* x, float* y, int64_t n) {
    for (int64_t i = 0; i < n; ++i) y[i] = fwd(x[i]);
  };
}

template <typename Fwd, typename Bwd>
Tensor ElementwiseUnary(const Tensor& a, const char* name, Fwd fwd, Bwd bwd) {
  return ElementwiseUnaryBulk(a, name, BulkFromScalar(fwd), bwd);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = ElementwiseBinary(
      a, b, "Add", [](float x, float y) { return x + y; },
      [](float, float, float dy, float* da, float* db) {
        *da = dy;
        *db = dy;
      });
  plan::RecordBinary(plan::Bin::kAdd, a, b, out);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = ElementwiseBinary(
      a, b, "Sub", [](float x, float y) { return x - y; },
      [](float, float, float dy, float* da, float* db) {
        *da = dy;
        *db = -dy;
      });
  plan::RecordBinary(plan::Bin::kSub, a, b, out);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  Tensor out = ElementwiseBinary(
      a, b, "Mul", [](float x, float y) { return x * y; },
      [](float x, float y, float dy, float* da, float* db) {
        *da = dy * y;
        *db = dy * x;
      });
  plan::RecordBinary(plan::Bin::kMul, a, b, out);
  return out;
}

Tensor Div(const Tensor& a, const Tensor& b) {
  Tensor out = ElementwiseBinary(
      a, b, "Div", [](float x, float y) { return x / y; },
      [](float x, float y, float dy, float* da, float* db) {
        *da = dy / y;
        *db = -dy * x / (y * y);
      });
  plan::RecordBinary(plan::Bin::kDiv, a, b, out);
  return out;
}

namespace {

template <typename Combine, typename BwdA, typename BwdB>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, const char* name, Combine fwd,
                       BwdA bwd_a, BwdB bwd_b) {
  CheckBroadcastable(a, b, name);
  bool track = TrackAny({&a, &b});
  Impl ia = a.impl();
  Impl ib = b.impl();
  Shape b_shape = b.shape();
  Tensor out = MakeOutput(
      a.shape(), {ia, ib}, name,
      [ia, ib, b_shape, bwd_a, bwd_b](TensorImpl& o) {
        const int64_t n = o.size();
        const bool need_a = ia->requires_grad || ia->grad_fn != nullptr;
        const bool need_b = ib->requires_grad || ib->grad_fn != nullptr;
        if (need_a) ia->EnsureGrad();
        if (need_b) ib->EnsureGrad();
        float* ga = need_a ? ia->grad.data() : nullptr;
        float* gb = need_b ? ib->grad.data() : nullptr;
        // Serial: gb is a scatter-accumulation across broadcast positions.
        BroadcastCursor cur(o.shape, b_shape);
        for (int64_t i = 0; i < n; ++i, cur.Advance()) {
          const int64_t j = cur.offset();
          if (ga != nullptr) ga[i] += bwd_a(ia->data[i], ib->data[j], o.grad[i]);
          if (gb != nullptr) gb[j] += bwd_b(ia->data[i], ib->data[j], o.grad[i]);
        }
      },
      track);
  const int64_t n = out.size();
  float* po = out.data();
  const float* pa = a.data();
  const float* pb = b.data();
  BroadcastCursor cur(out.shape(), b_shape);
  for (int64_t i = 0; i < n; ++i, cur.Advance()) {
    po[i] = fwd(pa[i], pb[cur.offset()]);
  }
  return out;
}

}  // namespace

Tensor BroadcastAdd(const Tensor& a, const Tensor& b) {
  Tensor out = BroadcastBinary(
      a, b, "BroadcastAdd", [](float x, float y) { return x + y; },
      [](float, float, float dy) { return dy; }, [](float, float, float dy) { return dy; });
  plan::RecordBroadcast(plan::Bin::kAdd, a, b, out);
  return out;
}

Tensor BroadcastMul(const Tensor& a, const Tensor& b) {
  Tensor out = BroadcastBinary(
      a, b, "BroadcastMul", [](float x, float y) { return x * y; },
      [](float, float y, float dy) { return dy * y; },
      [](float x, float, float dy) { return dy * x; });
  plan::RecordBroadcast(plan::Bin::kMul, a, b, out);
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = ElementwiseUnary(
      a, "AddScalar", [s](float x) { return x + s; },
      [](float, float, float dy) { return dy; });
  plan::RecordUnary(plan::Un::kAddScalar, a, out, s);
  return out;
}

Tensor MulScalar(const Tensor& a, float s) {
  Tensor out = ElementwiseUnary(
      a, "MulScalar", [s](float x) { return x * s; },
      [s](float, float, float dy) { return dy * s; });
  plan::RecordUnary(plan::Un::kMulScalar, a, out, s);
  return out;
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ADAPTRAJ_CHECK_MSG(a.dim() == 2 && b.dim() == 2,
                     "MatMul requires 2-D operands; got " << ShapeToString(a.shape())
                                                          << " x " << ShapeToString(b.shape()));
  const int64_t m = a.shape()[0];
  const int64_t k = a.shape()[1];
  const int64_t n = b.shape()[1];
  ADAPTRAJ_CHECK_MSG(b.shape()[0] == k, "MatMul inner dims differ: "
                                            << ShapeToString(a.shape()) << " x "
                                            << ShapeToString(b.shape()));
  bool track = TrackAny({&a, &b});
  Impl ia = a.impl();
  Impl ib = b.impl();
  Tensor out = MakeOutput(
      {m, n}, {ia, ib}, "MatMul",
      [ia, ib, m, k, n](TensorImpl& o) {
        const float* gy = o.grad.data();
        if (ia->requires_grad || ia->grad_fn) {
          // dA[m,k] += dY[m,n] · Bᵀ — straight into the gradient buffer.
          ia->EnsureGrad();
          kernels::Gemm(/*trans_a=*/false, /*trans_b=*/true, m, k, n, gy,
                        ib->data.data(), ia->grad.data(), /*accumulate=*/true);
        }
        if (ib->requires_grad || ib->grad_fn) {
          // dB[k,n] += Aᵀ · dY[m,n].
          ib->EnsureGrad();
          kernels::Gemm(/*trans_a=*/true, /*trans_b=*/false, k, n, m,
                        ia->data.data(), gy, ib->grad.data(), /*accumulate=*/true);
        }
      },
      track);
  kernels::Gemm(/*trans_a=*/false, /*trans_b=*/false, m, n, k, a.data(), b.data(),
                out.data(), /*accumulate=*/false);
  plan::RecordMatMul(a, b, out);
  return out;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  ADAPTRAJ_CHECK_MSG(a.dim() == 3 && b.dim() == 3,
                     "BatchMatMul requires 3-D operands; got "
                         << ShapeToString(a.shape()) << " x " << ShapeToString(b.shape()));
  const int64_t batch = a.shape()[0];
  const int64_t m = trans_a ? a.shape()[2] : a.shape()[1];
  const int64_t ka = trans_a ? a.shape()[1] : a.shape()[2];
  const int64_t kb = trans_b ? b.shape()[2] : b.shape()[1];
  const int64_t n = trans_b ? b.shape()[1] : b.shape()[2];
  ADAPTRAJ_CHECK_MSG(b.shape()[0] == batch,
                     "BatchMatMul batch extents differ: " << ShapeToString(a.shape())
                                                          << " x " << ShapeToString(b.shape()));
  ADAPTRAJ_CHECK_MSG(ka == kb, "BatchMatMul inner dims differ: "
                                   << ShapeToString(a.shape()) << " x "
                                   << ShapeToString(b.shape()) << " (trans_a=" << trans_a
                                   << ", trans_b=" << trans_b << ")");
  const int64_t k = ka;
  bool track = TrackAny({&a, &b});
  Impl ia = a.impl();
  Impl ib = b.impl();
  Tensor out = MakeOutput(
      {batch, m, n}, {ia, ib}, "BatchMatMul",
      [ia, ib, batch, m, k, n, trans_a, trans_b](TensorImpl& o) {
        const float* gy = o.grad.data();
        const float* pa = ia->data.data();
        const float* pb = ib->data.data();
        if (ia->requires_grad || ia->grad_fn) {
          ia->EnsureGrad();
          float* ga = ia->grad.data();
          // dA per slice, accumulated straight into gradient storage. Shapes
          // follow from Y = op(A)·op(B): e.g. for the plain case
          // dA[m,k] += dY·Bᵀ; transposed layouts fold into BatchGemm flags.
          if (!trans_a && !trans_b) {
            kernels::BatchGemm(false, true, batch, m, k, n, gy, pb, ga, true);
          } else if (!trans_a && trans_b) {
            // A[m,k], B[n,k]: dA += dY·B.
            kernels::BatchGemm(false, false, batch, m, k, n, gy, pb, ga, true);
          } else if (trans_a && !trans_b) {
            // A[k,m], B[k,n]: dA += B·dYᵀ.
            kernels::BatchGemm(false, true, batch, k, m, n, pb, gy, ga, true);
          } else {
            // A[k,m], B[n,k]: dA += Bᵀ·dYᵀ.
            kernels::BatchGemm(true, true, batch, k, m, n, pb, gy, ga, true);
          }
        }
        if (ib->requires_grad || ib->grad_fn) {
          ib->EnsureGrad();
          float* gb = ib->grad.data();
          if (!trans_a && !trans_b) {
            // dB[k,n] += Aᵀ·dY.
            kernels::BatchGemm(true, false, batch, k, n, m, pa, gy, gb, true);
          } else if (!trans_a && trans_b) {
            // B[n,k]: dB += dYᵀ·A.
            kernels::BatchGemm(true, false, batch, n, k, m, gy, pa, gb, true);
          } else if (trans_a && !trans_b) {
            // A[k,m]: dB += A·dY.
            kernels::BatchGemm(false, false, batch, k, n, m, pa, gy, gb, true);
          } else {
            // A[k,m], B[n,k]: dB += dYᵀ·Aᵀ.
            kernels::BatchGemm(true, true, batch, n, k, m, gy, pa, gb, true);
          }
        }
      },
      track);
  kernels::BatchGemm(trans_a, trans_b, batch, m, n, k, a.data(), b.data(), out.data(),
                     /*accumulate=*/false);
  plan::RecordBatchMatMul(a, b, trans_a, trans_b, out);
  return out;
}

namespace {

/// Shared core of AddMatMul / LinearGates: a·wa + b·wb (+ bias).
Tensor FusedAddMatMul(const Tensor& a, const Tensor& wa, const Tensor& b,
                      const Tensor& wb, const Tensor* bias, const char* name) {
  ADAPTRAJ_CHECK_MSG(a.dim() == 2 && wa.dim() == 2 && b.dim() == 2 && wb.dim() == 2,
                     name << " requires 2-D operands");
  const int64_t rows = a.shape()[0];
  const int64_t ka = a.shape()[1];
  const int64_t kb = b.shape()[1];
  const int64_t cols = wa.shape()[1];
  ADAPTRAJ_CHECK_MSG(wa.shape()[0] == ka, name << ": a/wa inner dims differ: "
                                               << ShapeToString(a.shape()) << " x "
                                               << ShapeToString(wa.shape()));
  ADAPTRAJ_CHECK_MSG(wb.shape()[0] == kb && wb.shape()[1] == cols,
                     name << ": b/wb dims differ: " << ShapeToString(b.shape()) << " x "
                          << ShapeToString(wb.shape()));
  ADAPTRAJ_CHECK_MSG(b.shape()[0] == rows, name << ": row counts differ: "
                                                << ShapeToString(a.shape()) << " vs "
                                                << ShapeToString(b.shape()));
  if (bias != nullptr) {
    ADAPTRAJ_CHECK_MSG(bias->dim() == 2 && bias->shape()[0] == 1 &&
                           bias->shape()[1] == cols,
                       name << ": bias must be [1, " << cols << "]; got "
                            << ShapeToString(bias->shape()));
  }

  bool track = TrackAny({&a, &wa, &b, &wb}) || (bias != nullptr && bias->needs_grad());
  Impl ia = a.impl();
  Impl iwa = wa.impl();
  Impl ib = b.impl();
  Impl iwb = wb.impl();
  Impl ibias = bias != nullptr ? bias->impl() : nullptr;
  std::vector<Impl> inputs = {ia, iwa, ib, iwb};
  if (ibias != nullptr) inputs.push_back(ibias);

  Tensor out = MakeOutput(
      {rows, cols}, std::move(inputs), name,
      [ia, iwa, ib, iwb, ibias, rows, ka, kb, cols](TensorImpl& o) {
        const float* gy = o.grad.data();
        if (ia->requires_grad || ia->grad_fn) {
          ia->EnsureGrad();
          kernels::Gemm(false, true, rows, ka, cols, gy, iwa->data.data(),
                        ia->grad.data(), true);
        }
        if (iwa->requires_grad || iwa->grad_fn) {
          iwa->EnsureGrad();
          kernels::Gemm(true, false, ka, cols, rows, ia->data.data(), gy,
                        iwa->grad.data(), true);
        }
        if (ib->requires_grad || ib->grad_fn) {
          ib->EnsureGrad();
          kernels::Gemm(false, true, rows, kb, cols, gy, iwb->data.data(),
                        ib->grad.data(), true);
        }
        if (iwb->requires_grad || iwb->grad_fn) {
          iwb->EnsureGrad();
          kernels::Gemm(true, false, kb, cols, rows, ib->data.data(), gy,
                        iwb->grad.data(), true);
        }
        if (ibias != nullptr && (ibias->requires_grad || ibias->grad_fn)) {
          ibias->EnsureGrad();
          kernels::AccumulateColumnSum(gy, rows, cols, ibias->grad.data());
        }
      },
      track);
  kernels::Gemm(false, false, rows, cols, ka, a.data(), wa.data(), out.data(), false);
  kernels::Gemm(false, false, rows, cols, kb, b.data(), wb.data(), out.data(), true);
  if (bias != nullptr) kernels::AddRowBias(out.data(), bias->data(), rows, cols);
  plan::RecordDualMatMul(a, wa, b, wb, bias, out);
  return out;
}

}  // namespace

Tensor Affine(const Tensor& a, const Tensor& w, const Tensor& bias) {
  ADAPTRAJ_CHECK_MSG(a.dim() == 2 && w.dim() == 2, "Affine requires 2-D operands");
  const int64_t rows = a.shape()[0];
  const int64_t k = a.shape()[1];
  const int64_t cols = w.shape()[1];
  ADAPTRAJ_CHECK_MSG(w.shape()[0] == k, "Affine: inner dims differ: "
                                            << ShapeToString(a.shape()) << " x "
                                            << ShapeToString(w.shape()));
  ADAPTRAJ_CHECK_MSG(bias.dim() == 2 && bias.shape()[0] == 1 && bias.shape()[1] == cols,
                     "Affine: bias must be [1, " << cols << "]; got "
                                                 << ShapeToString(bias.shape()));
  bool track = TrackAny({&a, &w, &bias});
  Impl ia = a.impl();
  Impl iw = w.impl();
  Impl ib = bias.impl();
  Tensor out = MakeOutput(
      {rows, cols}, {ia, iw, ib}, "Affine",
      [ia, iw, ib, rows, k, cols](TensorImpl& o) {
        const float* gy = o.grad.data();
        if (ia->requires_grad || ia->grad_fn) {
          ia->EnsureGrad();
          kernels::Gemm(false, true, rows, k, cols, gy, iw->data.data(),
                        ia->grad.data(), true);
        }
        if (iw->requires_grad || iw->grad_fn) {
          iw->EnsureGrad();
          kernels::Gemm(true, false, k, cols, rows, ia->data.data(), gy,
                        iw->grad.data(), true);
        }
        if (ib->requires_grad || ib->grad_fn) {
          ib->EnsureGrad();
          kernels::AccumulateColumnSum(gy, rows, cols, ib->grad.data());
        }
      },
      track);
  kernels::Gemm(false, false, rows, cols, k, a.data(), w.data(), out.data(), false);
  kernels::AddRowBias(out.data(), bias.data(), rows, cols);
  plan::RecordAffine(a, w, bias, out);
  return out;
}

Tensor AddMatMul(const Tensor& a, const Tensor& wa, const Tensor& b,
                 const Tensor& wb) {
  return FusedAddMatMul(a, wa, b, wb, /*bias=*/nullptr, "AddMatMul");
}

Tensor LinearGates(const Tensor& x, const Tensor& w_x, const Tensor& h,
                   const Tensor& w_h, const Tensor& bias) {
  return FusedAddMatMul(x, w_x, h, w_h, &bias, "LinearGates");
}

Tensor LstmCellC(const Tensor& gates, const Tensor& c_prev) {
  ADAPTRAJ_CHECK_MSG(gates.dim() == 2 && c_prev.dim() == 2,
                     "LstmCellC requires 2-D operands");
  const int64_t batch = gates.shape()[0];
  const int64_t hidden = c_prev.shape()[1];
  ADAPTRAJ_CHECK_MSG(gates.shape()[1] == 4 * hidden && c_prev.shape()[0] == batch,
                     "LstmCellC: gates " << ShapeToString(gates.shape())
                                         << " vs c_prev " << ShapeToString(c_prev.shape()));
  bool track = TrackAny({&gates, &c_prev});
  Impl ig = gates.impl();
  Impl ic = c_prev.impl();
  Tensor out = MakeOutput(
      {batch, hidden}, {ig, ic}, "LstmCellC",
      [ig, ic, batch, hidden](TensorImpl& o) {
        const bool need_g = ig->requires_grad || ig->grad_fn != nullptr;
        const bool need_c = ic->requires_grad || ic->grad_fn != nullptr;
        if (need_g) ig->EnsureGrad();
        if (need_c) ic->EnsureGrad();
        kernels::LstmCellBackwardC(ig->data.data(), ic->data.data(), o.grad.data(),
                                   batch, hidden,
                                   need_g ? ig->grad.data() : nullptr,
                                   need_c ? ic->grad.data() : nullptr);
      },
      track);
  kernels::LstmCellForwardC(gates.data(), c_prev.data(), batch, hidden, out.data());
  plan::RecordLstmCellC(gates, c_prev, out);
  return out;
}

Tensor LstmCellH(const Tensor& gates, const Tensor& c_next) {
  ADAPTRAJ_CHECK_MSG(gates.dim() == 2 && c_next.dim() == 2,
                     "LstmCellH requires 2-D operands");
  const int64_t batch = gates.shape()[0];
  const int64_t hidden = c_next.shape()[1];
  ADAPTRAJ_CHECK_MSG(gates.shape()[1] == 4 * hidden && c_next.shape()[0] == batch,
                     "LstmCellH: gates " << ShapeToString(gates.shape())
                                         << " vs c_next " << ShapeToString(c_next.shape()));
  bool track = TrackAny({&gates, &c_next});
  Impl ig = gates.impl();
  Impl ic = c_next.impl();
  Tensor out = MakeOutput(
      {batch, hidden}, {ig, ic}, "LstmCellH",
      [ig, ic, batch, hidden](TensorImpl& o) {
        const bool need_g = ig->requires_grad || ig->grad_fn != nullptr;
        const bool need_c = ic->requires_grad || ic->grad_fn != nullptr;
        if (need_g) ig->EnsureGrad();
        if (need_c) ic->EnsureGrad();
        kernels::LstmCellBackwardH(ig->data.data(), ic->data.data(), o.grad.data(),
                                   batch, hidden,
                                   need_g ? ig->grad.data() : nullptr,
                                   need_c ? ic->grad.data() : nullptr);
      },
      track);
  kernels::LstmCellForwardH(gates.data(), c_next.data(), batch, hidden, out.data());
  plan::RecordLstmCellH(gates, c_next, out);
  return out;
}

Tensor Transpose(const Tensor& a) {
  ADAPTRAJ_CHECK_MSG(a.dim() == 2, "Transpose requires 2-D; got " << ShapeToString(a.shape()));
  const int64_t m = a.shape()[0];
  const int64_t n = a.shape()[1];
  bool track = a.needs_grad();
  Impl ia = a.impl();
  Tensor out = MakeOutput(
      {n, m}, {ia}, "Transpose",
      [ia, m, n](TensorImpl& o) {
        ia->EnsureGrad();
        float* ga = ia->grad.data();
        const float* gy = o.grad.data();
        for (int64_t i = 0; i < m; ++i) {
          for (int64_t j = 0; j < n; ++j) ga[i * n + j] += gy[j * m + i];
        }
      },
      track);
  float* po = out.data();
  const float* pa = a.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  }
  plan::RecordTranspose(a, out);
  return out;
}

Tensor Relu(const Tensor& a) {
  Tensor out = ElementwiseUnary(
      a, "Relu", [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float, float dy) { return x > 0.0f ? dy : 0.0f; });
  plan::RecordUnary(plan::Un::kRelu, a, out);
  return out;
}

// Tanh/Sigmoid/Exp forwards run through the kernels-layer transcendentals
// (SIMD approximations with an accuracy-gated scalar fallback); the backward
// forms only need the saved output y, so they stay scalar arithmetic.

Tensor Tanh(const Tensor& a) {
  Tensor out = ElementwiseUnaryBulk(
      a, "Tanh", [](const float* x, float* y, int64_t n) { kernels::TanhForward(x, y, n); },
      [](float, float y, float dy) { return dy * (1.0f - y * y); });
  plan::RecordUnary(plan::Un::kTanh, a, out);
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out = ElementwiseUnaryBulk(
      a, "Sigmoid",
      [](const float* x, float* y, int64_t n) { kernels::SigmoidForward(x, y, n); },
      [](float, float y, float dy) { return dy * y * (1.0f - y); });
  plan::RecordUnary(plan::Un::kSigmoid, a, out);
  return out;
}

Tensor Exp(const Tensor& a) {
  Tensor out = ElementwiseUnaryBulk(
      a, "Exp", [](const float* x, float* y, int64_t n) { kernels::ExpForward(x, y, n); },
      [](float, float y, float dy) { return dy * y; });
  plan::RecordUnary(plan::Un::kExp, a, out);
  return out;
}

Tensor LogClamped(const Tensor& a, float eps) {
  Tensor out = ElementwiseUnary(
      a, "LogClamped", [eps](float x) { return std::log(std::max(x, eps)); },
      [eps](float x, float, float dy) { return dy / std::max(x, eps); });
  plan::RecordUnary(plan::Un::kLogClamped, a, out, eps);
  return out;
}

Tensor Square(const Tensor& a) {
  Tensor out = ElementwiseUnary(
      a, "Square", [](float x) { return x * x; },
      [](float x, float, float dy) { return dy * 2.0f * x; });
  plan::RecordUnary(plan::Un::kSquare, a, out);
  return out;
}

Tensor Sqrt(const Tensor& a, float eps) {
  Tensor out = ElementwiseUnary(
      a, "Sqrt", [](float x) { return std::sqrt(std::max(x, 0.0f)); },
      [eps](float, float y, float dy) { return dy * 0.5f / std::max(y, eps); });
  plan::RecordUnary(plan::Un::kSqrt, a, out);
  return out;
}

Tensor Abs(const Tensor& a) {
  Tensor out = ElementwiseUnary(
      a, "Abs", [](float x) { return std::fabs(x); },
      [](float x, float, float dy) { return x > 0.0f ? dy : (x < 0.0f ? -dy : 0.0f); });
  plan::RecordUnary(plan::Un::kAbs, a, out);
  return out;
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  ADAPTRAJ_CHECK_MSG(lo <= hi, "Clamp: lo > hi");
  Tensor out = ElementwiseUnary(
      a, "Clamp", [lo, hi](float x) { return std::min(std::max(x, lo), hi); },
      [lo, hi](float x, float, float dy) { return (x >= lo && x <= hi) ? dy : 0.0f; });
  plan::RecordUnary(plan::Un::kClamp, a, out, lo, hi);
  return out;
}

Tensor Sum(const Tensor& a) {
  bool track = a.needs_grad();
  Impl ia = a.impl();
  Tensor out = MakeOutput(
      {1}, {ia}, "Sum",
      [ia](TensorImpl& o) {
        ia->EnsureGrad();
        const float g = o.grad[0];
        float* ga = ia->grad.data();
        const int64_t n = ia->size();
        for (int64_t i = 0; i < n; ++i) ga[i] += g;
      },
      track);
  // Eight independent accumulation chains combined in a fixed order: the
  // striping depends only on the element count, so the reduction stays
  // deterministic while breaking the add-latency dependency of a single
  // serial chain (and vectorizing to packed double adds).
  double acc[8] = {0.0};
  const float* pa = a.data();
  const int64_t size = a.size();
  const int64_t main = size & ~int64_t{7};
  for (int64_t i = 0; i < main; i += 8) {
    for (int j = 0; j < 8; ++j) acc[j] += pa[i + j];
  }
  for (int64_t i = main; i < size; ++i) acc[i - main] += pa[i];
  const double total = ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
                       ((acc[4] + acc[5]) + (acc[6] + acc[7]));
  out.data()[0] = static_cast<float>(total);
  return out;
}

Tensor Mean(const Tensor& a) {
  ADAPTRAJ_CHECK_MSG(a.size() > 0, "Mean of empty tensor");
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.size()));
}

namespace {

Tensor ReduceAxis(const Tensor& a, int axis, bool keepdim, bool mean, const char* name) {
  axis = NormalizeAxis(axis, a.dim());
  const Shape& in = a.shape();
  Shape out_shape;
  for (int d = 0; d < a.dim(); ++d) {
    if (d == axis) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(in[d]);
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);
  int64_t outer = 1;
  int64_t inner = 1;
  for (int d = 0; d < axis; ++d) outer *= in[d];
  for (int d = axis + 1; d < a.dim(); ++d) inner *= in[d];
  const int64_t extent = in[axis];
  const float scale = mean ? 1.0f / static_cast<float>(extent) : 1.0f;

  bool track = a.needs_grad();
  Impl ia = a.impl();
  Tensor out = MakeOutput(
      out_shape, {ia}, name,
      [ia, outer, inner, extent, scale](TensorImpl& o) {
        ia->EnsureGrad();
        float* ga = ia->grad.data();
        const float* gy = o.grad.data();
        for (int64_t ou = 0; ou < outer; ++ou) {
          for (int64_t e = 0; e < extent; ++e) {
            for (int64_t iin = 0; iin < inner; ++iin) {
              ga[(ou * extent + e) * inner + iin] += gy[ou * inner + iin] * scale;
            }
          }
        }
      },
      track);
  float* po = out.data();
  const float* pa = a.data();
  for (int64_t ou = 0; ou < outer; ++ou) {
    for (int64_t iin = 0; iin < inner; ++iin) {
      double acc = 0.0;
      for (int64_t e = 0; e < extent; ++e) acc += pa[(ou * extent + e) * inner + iin];
      po[ou * inner + iin] = static_cast<float>(acc) * scale;
    }
  }
  plan::RecordReduceAxis(mean, outer, extent, inner, a, out);
  return out;
}

}  // namespace

Tensor SumAxis(const Tensor& a, int axis, bool keepdim) {
  return ReduceAxis(a, axis, keepdim, /*mean=*/false, "SumAxis");
}

Tensor MeanAxis(const Tensor& a, int axis, bool keepdim) {
  return ReduceAxis(a, axis, keepdim, /*mean=*/true, "MeanAxis");
}

Tensor MaxAxis(const Tensor& a, int axis, bool keepdim) {
  axis = NormalizeAxis(axis, a.dim());
  const Shape& in = a.shape();
  ADAPTRAJ_CHECK_MSG(in[axis] > 0, "MaxAxis over empty axis");
  Shape out_shape;
  for (int d = 0; d < a.dim(); ++d) {
    if (d == axis) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(in[d]);
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);
  int64_t outer = 1;
  int64_t inner = 1;
  for (int d = 0; d < axis; ++d) outer *= in[d];
  for (int d = axis + 1; d < a.dim(); ++d) inner *= in[d];
  const int64_t extent = in[axis];

  // Record argmax positions during the forward pass for the backward route.
  auto argmax = std::make_shared<std::vector<int64_t>>(outer * inner);
  bool track = a.needs_grad();
  Impl ia = a.impl();
  Tensor out = MakeOutput(
      out_shape, {ia}, "MaxAxis",
      [ia, argmax, outer, inner, extent](TensorImpl& o) {
        ia->EnsureGrad();
        float* ga = ia->grad.data();
        const float* gy = o.grad.data();
        for (int64_t ou = 0; ou < outer; ++ou) {
          for (int64_t iin = 0; iin < inner; ++iin) {
            const int64_t best = (*argmax)[ou * inner + iin];
            ga[(ou * extent + best) * inner + iin] += gy[ou * inner + iin];
          }
        }
      },
      track);
  float* po = out.data();
  const float* pa = a.data();
  for (int64_t ou = 0; ou < outer; ++ou) {
    for (int64_t iin = 0; iin < inner; ++iin) {
      int64_t best = 0;
      float best_val = pa[(ou * extent) * inner + iin];
      for (int64_t e = 1; e < extent; ++e) {
        const float v = pa[(ou * extent + e) * inner + iin];
        if (v > best_val) {
          best_val = v;
          best = e;
        }
      }
      (*argmax)[ou * inner + iin] = best;
      po[ou * inner + iin] = best_val;
    }
  }
  plan::RecordMaxAxis(outer, extent, inner, a, out);
  return out;
}

Tensor Softmax(const Tensor& a) {
  ADAPTRAJ_CHECK_MSG(a.dim() >= 1, "Softmax on scalar-rank tensor");
  const int64_t cols = a.shape().back();
  const int64_t rows = a.size() / cols;
  bool track = a.needs_grad();
  Impl ia = a.impl();
  Tensor out = MakeOutput(
      a.shape(), {ia}, "Softmax",
      [ia, rows, cols](TensorImpl& o) {
        ia->EnsureGrad();
        float* ga = ia->grad.data();
        const float* yd = o.data.data();
        const float* gyd = o.grad.data();
        parallel::ParallelFor(0, rows, /*grain=*/64, [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            const float* y = yd + r * cols;
            const float* dy = gyd + r * cols;
            double dot = 0.0;
            for (int64_t c = 0; c < cols; ++c) dot += static_cast<double>(dy[c]) * y[c];
            float* g = ga + r * cols;
            for (int64_t c = 0; c < cols; ++c) {
              g[c] += y[c] * (dy[c] - static_cast<float>(dot));
            }
          }
        });
      },
      track);
  float* po = out.data();
  const float* pa = a.data();
  parallel::ParallelFor(0, rows, /*grain=*/64, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      kernels::SoftmaxRow(&pa[r * cols], &po[r * cols], cols);
    }
  });
  plan::RecordSoftmax(a, out);
  return out;
}

Tensor LogSoftmax(const Tensor& a) {
  ADAPTRAJ_CHECK_MSG(a.dim() >= 1, "LogSoftmax on scalar-rank tensor");
  const int64_t cols = a.shape().back();
  const int64_t rows = a.size() / cols;
  bool track = a.needs_grad();
  Impl ia = a.impl();
  Tensor out = MakeOutput(
      a.shape(), {ia}, "LogSoftmax",
      [ia, rows, cols](TensorImpl& o) {
        ia->EnsureGrad();
        float* ga = ia->grad.data();
        const float* yd = o.data.data();
        const float* gyd = o.grad.data();
        parallel::ParallelFor(0, rows, /*grain=*/64, [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            const float* y = yd + r * cols;
            const float* dy = gyd + r * cols;
            double sum_dy = 0.0;
            for (int64_t c = 0; c < cols; ++c) sum_dy += dy[c];
            float* g = ga + r * cols;
            for (int64_t c = 0; c < cols; ++c) {
              g[c] += dy[c] - std::exp(y[c]) * static_cast<float>(sum_dy);
            }
          }
        });
      },
      track);
  float* po = out.data();
  const float* pa = a.data();
  parallel::ParallelFor(0, rows, /*grain=*/64, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* x = &pa[r * cols];
      float* y = &po[r * cols];
      float mx = x[0];
      for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, x[c]);
      double denom = 0.0;
      for (int64_t c = 0; c < cols; ++c) denom += std::exp(x[c] - mx);
      const float lse = mx + static_cast<float>(std::log(denom));
      for (int64_t c = 0; c < cols; ++c) y[c] = x[c] - lse;
    }
  });
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  ADAPTRAJ_CHECK_MSG(!parts.empty(), "Concat of zero tensors");
  const int rank = parts[0].dim();
  axis = NormalizeAxis(axis, rank);
  Shape out_shape = parts[0].shape();
  int64_t axis_total = 0;
  for (const Tensor& t : parts) {
    ADAPTRAJ_CHECK_EQ(t.dim(), rank);
    for (int d = 0; d < rank; ++d) {
      if (d != axis) {
        ADAPTRAJ_CHECK_MSG(t.shape()[d] == out_shape[d],
                           "Concat: mismatched dim " << d << ": " << ShapeToString(t.shape())
                                                     << " vs " << ShapeToString(out_shape));
      }
    }
    axis_total += t.shape()[axis];
  }
  out_shape[axis] = axis_total;

  int64_t outer = 1;
  int64_t inner = 1;
  for (int d = 0; d < axis; ++d) outer *= out_shape[d];
  for (int d = axis + 1; d < rank; ++d) inner *= out_shape[d];

  bool track = false;
  std::vector<Impl> impls;
  std::vector<int64_t> extents;
  impls.reserve(parts.size());
  for (const Tensor& t : parts) {
    track = track || t.needs_grad();
    impls.push_back(t.impl());
    extents.push_back(t.shape()[axis]);
  }

  Tensor out = MakeOutput(
      out_shape, impls, "Concat",
      [impls, extents, outer, inner, axis_total](TensorImpl& o) {
        int64_t offset = 0;
        for (size_t p = 0; p < impls.size(); ++p) {
          const Impl& ip = impls[p];
          if (ip->requires_grad || ip->grad_fn) {
            ip->EnsureGrad();
            float* g = ip->grad.data();
            for (int64_t ou = 0; ou < outer; ++ou) {
              const float* src = &o.grad[(ou * axis_total + offset) * inner];
              float* dst = &g[ou * extents[p] * inner];
              const int64_t len = extents[p] * inner;
              for (int64_t i = 0; i < len; ++i) dst[i] += src[i];
            }
          }
          offset += extents[p];
        }
      },
      track);
  float* po = out.data();
  int64_t offset = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    const float* src = parts[p].data();
    for (int64_t ou = 0; ou < outer; ++ou) {
      std::copy(&src[ou * extents[p] * inner], &src[(ou + 1) * extents[p] * inner],
                &po[(ou * axis_total + offset) * inner]);
    }
    offset += extents[p];
  }
  plan::RecordConcat(parts, outer, inner, extents, out);
  return out;
}

Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t end) {
  axis = NormalizeAxis(axis, a.dim());
  const Shape& in = a.shape();
  ADAPTRAJ_CHECK_MSG(start >= 0 && start <= end && end <= in[axis],
                     "Slice range [" << start << ", " << end << ") invalid for axis extent "
                                     << in[axis]);
  Shape out_shape = in;
  out_shape[axis] = end - start;
  int64_t outer = 1;
  int64_t inner = 1;
  for (int d = 0; d < axis; ++d) outer *= in[d];
  for (int d = axis + 1; d < a.dim(); ++d) inner *= in[d];
  const int64_t in_extent = in[axis];
  const int64_t out_extent = end - start;

  bool track = a.needs_grad();
  Impl ia = a.impl();
  Tensor out = MakeOutput(
      out_shape, {ia}, "Slice",
      [ia, outer, inner, in_extent, out_extent, start](TensorImpl& o) {
        ia->EnsureGrad();
        float* ga = ia->grad.data();
        for (int64_t ou = 0; ou < outer; ++ou) {
          const float* src = &o.grad[ou * out_extent * inner];
          float* dst = &ga[(ou * in_extent + start) * inner];
          for (int64_t i = 0; i < out_extent * inner; ++i) dst[i] += src[i];
        }
      },
      track);
  float* po = out.data();
  const float* pa = a.data();
  for (int64_t ou = 0; ou < outer; ++ou) {
    const float* src = &pa[(ou * in_extent + start) * inner];
    std::copy(src, src + out_extent * inner, &po[ou * out_extent * inner]);
  }
  plan::RecordSlice(a, outer, inner, in_extent, out_extent, start, out);
  return out;
}

Tensor Stack(const std::vector<Tensor>& parts) {
  ADAPTRAJ_CHECK_MSG(!parts.empty(), "Stack of zero tensors");
  const Shape& base = parts[0].shape();
  for (const Tensor& t : parts) {
    ADAPTRAJ_CHECK_MSG(t.shape() == base, "Stack: mismatched shapes "
                                              << ShapeToString(t.shape()) << " vs "
                                              << ShapeToString(base));
  }
  Shape out_shape;
  out_shape.push_back(static_cast<int64_t>(parts.size()));
  out_shape.insert(out_shape.end(), base.begin(), base.end());

  bool track = false;
  std::vector<Impl> impls;
  for (const Tensor& t : parts) {
    track = track || t.needs_grad();
    impls.push_back(t.impl());
  }
  const int64_t block = NumElements(base);
  Tensor out = MakeOutput(
      out_shape, impls, "Stack",
      [impls, block](TensorImpl& o) {
        for (size_t p = 0; p < impls.size(); ++p) {
          const Impl& ip = impls[p];
          if (ip->requires_grad || ip->grad_fn) {
            ip->AccumulateGrad(&o.grad[p * block], block);
          }
        }
      },
      track);
  float* po = out.data();
  for (size_t p = 0; p < parts.size(); ++p) {
    std::copy(parts[p].data(), parts[p].data() + block, &po[p * block]);
  }
  plan::RecordStack(parts, out);
  return out;
}

Tensor Reshape(const Tensor& a, const Shape& shape) {
  ADAPTRAJ_CHECK_MSG(NumElements(shape) == a.size(),
                     "Reshape " << ShapeToString(a.shape()) << " -> " << ShapeToString(shape)
                                << " changes element count");
  bool track = a.needs_grad();
  Impl ia = a.impl();
  Tensor out = MakeOutput(
      shape, {ia}, "Reshape",
      [ia](TensorImpl& o) { ia->AccumulateGrad(o.grad.data(), o.size()); }, track);
  std::copy(a.data(), a.data() + a.size(), out.data());
  plan::RecordCopy(a, out);
  return out;
}

Tensor GradReverse(const Tensor& a, float lambda) {
  bool track = a.needs_grad();
  Impl ia = a.impl();
  Tensor out = MakeOutput(
      a.shape(), {ia}, "GradReverse",
      [ia, lambda](TensorImpl& o) {
        ia->EnsureGrad();
        float* ga = ia->grad.data();
        const float* gy = o.grad.data();
        const int64_t n = o.size();
        for (int64_t i = 0; i < n; ++i) ga[i] += -lambda * gy[i];
      },
      track);
  std::copy(a.data(), a.data() + a.size(), out.data());
  plan::RecordCopy(a, out);
  return out;
}

Tensor MaskedFill(const Tensor& a, const Tensor& mask, float value) {
  CheckSameShape(a, mask, "MaskedFill");
  bool track = a.needs_grad();
  Impl ia = a.impl();
  Impl im = mask.impl();
  Tensor out = MakeOutput(
      a.shape(), {ia}, "MaskedFill",
      [ia, im](TensorImpl& o) {
        ia->EnsureGrad();
        float* ga = ia->grad.data();
        const float* gy = o.grad.data();
        const float* pm = im->data.data();
        const int64_t n = o.size();
        for (int64_t i = 0; i < n; ++i) {
          if (pm[i] == 0.0f) ga[i] += gy[i];
        }
      },
      track);
  float* po = out.data();
  const float* pa = a.data();
  const float* pm = mask.data();
  for (int64_t i = 0; i < a.size(); ++i) po[i] = (pm[i] != 0.0f) ? value : pa[i];
  plan::RecordMaskedFill(a, mask, value, out);
  return out;
}

Tensor NllLoss(const Tensor& log_probs, const std::vector<int>& labels) {
  ADAPTRAJ_CHECK_MSG(log_probs.dim() == 2, "NllLoss expects [B, C] log-probs");
  const int64_t batch = log_probs.shape()[0];
  const int64_t classes = log_probs.shape()[1];
  ADAPTRAJ_CHECK_EQ(batch, static_cast<int64_t>(labels.size()));
  for (int label : labels) {
    ADAPTRAJ_CHECK_MSG(label >= 0 && label < classes, "label " << label << " out of range");
  }
  bool track = log_probs.needs_grad();
  Impl ia = log_probs.impl();
  std::vector<int> labels_copy = labels;
  Tensor out = MakeOutput(
      {1}, {ia}, "NllLoss",
      [ia, labels_copy, batch, classes](TensorImpl& o) {
        ia->EnsureGrad();
        float* ga = ia->grad.data();
        const float scale = o.grad[0] / static_cast<float>(batch);
        for (int64_t b = 0; b < batch; ++b) {
          ga[b * classes + labels_copy[b]] -= scale;
        }
      },
      track);
  double acc = 0.0;
  const float* pa = log_probs.data();
  for (int64_t b = 0; b < batch; ++b) acc -= pa[b * classes + labels[b]];
  out.data()[0] = static_cast<float>(acc / static_cast<double>(batch));
  return out;
}

}  // namespace ops
}  // namespace adaptraj
