// Shape-specialized execution plans: capture-and-replay for no-grad Predict.
//
// Eager no-grad inference still pays per-call graph construction: every op
// allocates a TensorImpl, runs shape inference and checks, and threads its
// output through shared_ptr handles. At serving shapes the op sequence is
// IDENTICAL on every call, so this layer records it once and replays the
// recorded kernels directly.
//
// Lifecycle (driven by PredictSession inside each core::Method::Predict):
//
//   1. First call for a (method, batch-shape, sample) key: the session
//      installs a thread-local recorder, the eager body runs unchanged, and
//      every op appends one structured step (kind + extents + slot ids).
//      Tensors resolve to slots by impl identity: registered batch fields
//      become rebind-per-call inputs, anything else first seen as a step
//      input becomes a retained external constant (parameters, eval-mode
//      masks, Zeros/Full/FromVector leaves), and op outputs become arena
//      slots. The capture then compiles: elementwise chains fuse
//      (MulScalar∘[MaskedFill∘]Softmax, LayerNorm's normalize chain,
//      LstmCellC+H, Affine/LinearGates/MatMul + bias/activation epilogues
//      with pre-packed weights), dead steps drop, and a liveness pass
//      pre-assigns every intermediate an offset in one pooled arena buffer.
//   2. Later calls with the same key replay: resolve the input pointers,
//      acquire the arena, run the fused kernels in order. Zero GradNodes,
//      zero shape inference, zero per-op allocation.
//
// Determinism contract: a replayed Predict is bit-identical to the eager
// no-grad call. Fused kernels replicate the eager per-element arithmetic
// exactly (ascending-k register accumulation, bias-after-full-sum, the
// active SIMD-or-scalar transcendental path — see kernels.h "Planned
// execution"), and rng-drawing steps (Tensor::Randn/Rand) replay their
// draws in the eager element order so the stream state advances
// identically.
//
// Safety: capture aborts to permanent eager fallback for the key when the
// body is not a pure traced forward — a grad-mode op (LBEBM's Langevin
// island), a Backward() call, or any op without a recording hook (detected
// by an op-output/step count mismatch, so new ops degrade gracefully). The
// ADAPTRAJ_PLAN env var is the kill-switch (unset/"1"/"on" = on, "0"/"off"
// = off, "verify" = replay AND run eager, then compare bit-exactly);
// SetMode overrides it programmatically for tests and benchmarks.
//
// Weight rebinding: plans hold parameter storage as retained impls and
// re-read them on every replay, so in-place parameter updates
// (Module::CopyParametersFrom) are picked up — EXCEPT weights pre-packed
// into fused GEMM steps, which are copied at capture. Any code that
// mutates parameters of a method that already served planned calls must
// call PlanCache::Invalidate (Train does; serve::InferenceEngine::
// SwapWeights is safe by construction — it flips to a freshly cloned
// method whose cache starts empty).

#ifndef ADAPTRAJ_TENSOR_PLAN_H_
#define ADAPTRAJ_TENSOR_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace adaptraj {
namespace plan {

// --- Mode resolution ---------------------------------------------------------

enum class Mode {
  kAuto = 0,  // follow the ADAPTRAJ_PLAN environment variable (the default)
  kOn,        // capture and replay
  kOff,       // always eager
  kVerify,    // replay AND run eager, compare bit-exactly (tests)
};

/// Overrides the env-resolved mode; kAuto restores it. Takes effect for
/// subsequent Predict calls (tests and benchmarks only).
void SetMode(Mode mode);

/// The resolved mode (never kAuto).
Mode EffectiveMode();

// --- Telemetry ---------------------------------------------------------------

/// Counters for one PlanCache (style of internal::BufferPoolStats).
struct CacheStats {
  int64_t plans = 0;           // live compiled plans
  int64_t hits = 0;            // calls served by replay
  int64_t misses = 0;          // eager calls (capture in flight / unplannable)
  int64_t captures = 0;        // successful compilations
  int64_t aborted = 0;         // capture attempts that bailed to eager
  int64_t fused_steps = 0;     // steps removed by fusion, live plans
  int64_t eliminated_steps = 0;  // steps removed as dead code, live plans
  int64_t arena_bytes = 0;     // planned intermediate bytes, live plans
  int64_t constant_bytes = 0;  // packed weight/constant bytes, live plans

  CacheStats& operator+=(const CacheStats& o);
};

// --- Cache + session ---------------------------------------------------------

namespace internal_plan {
struct CacheState;
struct SessionState;
}  // namespace internal_plan

/// Per-Method plan store keyed by caller-provided strings (batch shape +
/// sample flag). Thread-safe: concurrent Predicts replay the same plan
/// lock-free after an initial mutex-guarded lookup, and only one thread
/// captures a given key while the rest fall back to eager.
class PlanCache {
 public:
  PlanCache();
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  CacheStats stats() const;

  /// Drops every plan (and unplannable marker). Must be called after any
  /// in-place parameter mutation of the owning method (Train, checkpoint
  /// load into a live method).
  void Invalidate();

 private:
  friend class PredictSession;
  std::unique_ptr<internal_plan::CacheState> state_;
};

/// RAII capture/replay scope for one Predict call. Usage inside a method:
///
///   plan::PredictSession session(&plan_cache_, key, inputs, rng);
///   if (session.CanReplay()) return session.Replay();
///   ... eager body (recorded when the session is capturing) ...
///   return session.Finish(result);
///
/// `inputs` are the batch-field tensors in a fixed enumeration order; their
/// impls rebind on every replay. `rng` may be null when the body draws no
/// samples. The session is inert (pure eager) when planning is off, the key
/// is marked unplannable, or another thread holds the capture.
class PredictSession {
 public:
  PredictSession(PlanCache* cache, std::string key,
                 std::vector<const Tensor*> inputs, Rng* rng);
  ~PredictSession();
  PredictSession(const PredictSession&) = delete;
  PredictSession& operator=(const PredictSession&) = delete;

  /// True when a compiled plan exists for the key and mode is kOn.
  bool CanReplay() const;

  /// Executes the recorded plan. Only valid when CanReplay().
  Tensor Replay();

  /// Ends the session around the eager result: finishes a capture
  /// (compiling the plan), or — in kVerify with a live plan — replays and
  /// checks the result bytes and rng stream against the eager run.
  Tensor Finish(Tensor eager_result);

 private:
  std::unique_ptr<internal_plan::SessionState> state_;
};

// --- Recording hooks (called by ops.cpp / tensor.cpp) ------------------------
//
// Every hook is a cheap no-op unless the calling thread is inside a
// capturing PredictSession. Ops hooks (RecordXxx called at the tail of an
// ops:: function) additionally count toward the op-output balance that
// detects unhooked ops; factory hooks (Randn/Rand/Detach) do not.

/// True when the calling thread is capturing (tests).
bool Recording();

enum class Un : int {
  kAddScalar = 0, kMulScalar, kRelu, kTanh, kSigmoid, kExp, kSquare, kSqrt,
  kAbs, kClamp, kLogClamped,
};
enum class Bin : int { kAdd = 0, kSub, kMul, kDiv };

void RecordUnary(Un op, const Tensor& a, const Tensor& out, float p0 = 0.0f,
                 float p1 = 0.0f);
void RecordBinary(Bin op, const Tensor& a, const Tensor& b, const Tensor& out);
void RecordBroadcast(Bin op, const Tensor& a, const Tensor& b,
                     const Tensor& out);
void RecordMatMul(const Tensor& a, const Tensor& b, const Tensor& out);
void RecordBatchMatMul(const Tensor& a, const Tensor& b, bool trans_a,
                       bool trans_b, const Tensor& out);
void RecordAffine(const Tensor& a, const Tensor& w, const Tensor& bias,
                  const Tensor& out);
/// AddMatMul (bias == nullptr) and LinearGates (bias set).
void RecordDualMatMul(const Tensor& a, const Tensor& wa, const Tensor& b,
                      const Tensor& wb, const Tensor* bias, const Tensor& out);
void RecordLstmCellC(const Tensor& gates, const Tensor& c_prev,
                     const Tensor& out);
void RecordLstmCellH(const Tensor& gates, const Tensor& c_next,
                     const Tensor& out);
void RecordTranspose(const Tensor& a, const Tensor& out);
void RecordSoftmax(const Tensor& a, const Tensor& out);
void RecordReduceAxis(bool mean, int64_t outer, int64_t extent, int64_t inner,
                      const Tensor& a, const Tensor& out);
void RecordMaxAxis(int64_t outer, int64_t extent, int64_t inner,
                   const Tensor& a, const Tensor& out);
void RecordMaskedFill(const Tensor& a, const Tensor& mask, float value,
                      const Tensor& out);
/// Reshape / GradReverse: element-preserving copies.
void RecordCopy(const Tensor& a, const Tensor& out);
void RecordConcat(const std::vector<Tensor>& parts, int64_t outer,
                  int64_t inner, const std::vector<int64_t>& extents,
                  const Tensor& out);
void RecordSlice(const Tensor& a, int64_t outer, int64_t inner,
                 int64_t in_extent, int64_t out_extent, int64_t start,
                 const Tensor& out);
void RecordStack(const std::vector<Tensor>& parts, const Tensor& out);

/// Factory hooks (tensor.cpp). Randn/Rand record rng-drawing steps that
/// replay their draws in the eager element order; Detach records a copy.
void RecordRandn(const Tensor& out, float stddev);
void RecordRand(const Tensor& out, float lo, float hi);
void RecordDetach(const Tensor& a, const Tensor& out);

/// Called by MakeOutputCore for every op output. Counts toward the
/// hook-balance check and aborts the capture when a tracked op runs with
/// GradMode enabled (the body is not a pure no-grad forward).
void NoteOpOutput(bool track);

/// Called by Tensor::Backward: a capture containing a backward pass aborts.
void NoteBackwardCall();

}  // namespace plan
}  // namespace adaptraj

#endif  // ADAPTRAJ_TENSOR_PLAN_H_
