// Dense float tensor with reverse-mode automatic differentiation.
//
// Tensor is a value-semantics handle to shared storage (TensorImpl). Ops in
// ops.h build a dynamic computation graph of GradNode closures; calling
// Backward() on a scalar output traverses the graph in reverse topological
// order and accumulates gradients into every tensor that requires them.
//
// The engine is deliberately small: dense row-major float32 storage, the op
// set needed by the AdapTraj models (matmul, elementwise, reductions,
// softmax, concat/slice/stack, gradient reversal), and nothing else.

#ifndef ADAPTRAJ_TENSOR_TENSOR_H_
#define ADAPTRAJ_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/aligned_buffer.h"
#include "tensor/rng.h"
#include "tensor/status.h"

namespace adaptraj {

/// Tensor shape: one extent per dimension, row-major layout.
using Shape = std::vector<int64_t>;

/// Product of the extents (the element count for that shape).
int64_t NumElements(const Shape& shape);

/// Renders a shape as "[2, 3]".
std::string ShapeToString(const Shape& shape);

// --- Grad mode ---------------------------------------------------------------
//
// Inference does not need the reverse-mode graph: under no-grad every op is
// pure forward computation — zero GradNode allocations, and intermediates
// return to the buffer pool as soon as their handle dies instead of being
// pinned until graph teardown. The flag is thread-local so serving workers
// and a training thread can coexist in one process.

/// Thread-local switch consulted at the single point where ops attach a
/// grad_fn (ops.cpp MakeOutput). Enabled by default.
class GradMode {
 public:
  /// True when ops should record the reverse-mode graph on this thread.
  static bool IsEnabled();
  /// Sets the thread-local mode; returns the previous value. Prefer the RAII
  /// guards below.
  static bool SetEnabled(bool enabled);
  /// Test/bench override: while forced, IsEnabled() returns true even inside
  /// NoGradGuard scopes. This exists so the grad-mode baseline of
  /// Method::Predict (whose body installs a NoGradGuard) can still be
  /// measured and compared bit-for-bit. Returns the previous value.
  static bool SetForced(bool forced);
};

/// RAII scope disabling gradient recording on this thread. Ops called inside
/// return plain forward results (needs_grad() false, no grad_fn); calling
/// Backward() on such a result is a checked error.
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradMode::SetEnabled(false)) {}
  ~NoGradGuard() { GradMode::SetEnabled(prev_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// RAII scope re-enabling gradient recording inside a NoGradGuard — a
/// "gradient island" for inference-time samplers that genuinely need
/// Backward() (LBEBM's Langevin loop differentiates the energy w.r.t. the
/// latent while the surrounding Predict runs no-grad).
class EnableGradGuard {
 public:
  EnableGradGuard() : prev_(GradMode::SetEnabled(true)) {}
  ~EnableGradGuard() { GradMode::SetEnabled(prev_); }
  EnableGradGuard(const EnableGradGuard&) = delete;
  EnableGradGuard& operator=(const EnableGradGuard&) = delete;

 private:
  bool prev_;
};

/// RAII form of GradMode::SetForced — see its comment. Test/bench only.
class ForcedGradModeGuard {
 public:
  ForcedGradModeGuard() : prev_(GradMode::SetForced(true)) {}
  ~ForcedGradModeGuard() { GradMode::SetForced(prev_); }
  ForcedGradModeGuard(const ForcedGradModeGuard&) = delete;
  ForcedGradModeGuard& operator=(const ForcedGradModeGuard&) = delete;

 private:
  bool prev_;
};

namespace internal {

struct GradNode;

/// GradNode allocations on the calling thread since start-up. The no-grad
/// tests assert this stays flat across an entire Predict() call.
int64_t GradNodesCreated();

/// Shared tensor storage plus autograd bookkeeping.
struct TensorImpl {
  Shape shape;
  internal::FloatBuffer data;   // 64B-aligned (see aligned_buffer.h)
  internal::FloatBuffer grad;   // empty until first accumulation
  bool requires_grad = false;
  /// Set on op results whose graph was suppressed by a NoGradGuard; makes a
  /// later Backward() a checked error instead of a silent zero-grad no-op.
  bool no_grad_result = false;
  std::shared_ptr<GradNode> grad_fn;  // null for leaves / pure-forward results

  TensorImpl() = default;
  /// Returns data/grad capacity to the thread-local buffer pool.
  ~TensorImpl();
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  int64_t size() const { return static_cast<int64_t>(data.size()); }
  /// Allocates (zero-filled) gradient storage if not already present.
  void EnsureGrad();
  /// Adds n values from g into this impl's gradient buffer.
  void AccumulateGrad(const float* g, int64_t n);
};

/// A node in the reverse-mode graph. Owned by the op output's TensorImpl.
struct GradNode {
  GradNode();  // counts the allocation (see GradNodesCreated)
  /// Parents (op inputs) whose gradients this node populates.
  std::vector<std::shared_ptr<TensorImpl>> inputs;
  /// Debug name of the producing op.
  const char* op_name = "";
  /// Accumulates input gradients given the output impl (out.grad is final).
  std::function<void(TensorImpl& out)> backward;
};

}  // namespace internal

/// Value-semantics handle to a (possibly autograd-tracked) float tensor.
class Tensor {
 public:
  /// Null tensor; defined() is false.
  Tensor() = default;

  // --- Factories -----------------------------------------------------------

  /// Zero-filled tensor of the given shape.
  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  /// Constant-filled tensor of the given shape.
  static Tensor Full(const Shape& shape, float value, bool requires_grad = false);
  /// Tensor adopting the given row-major values (size must match shape).
  static Tensor FromVector(const Shape& shape, std::vector<float> values,
                           bool requires_grad = false);
  /// Scalar tensor of shape [1].
  static Tensor Scalar(float value, bool requires_grad = false);
  /// I.i.d. normal entries with the given stddev.
  static Tensor Randn(const Shape& shape, Rng* rng, float stddev = 1.0f,
                      bool requires_grad = false);
  /// Uniform entries in [lo, hi).
  static Tensor Rand(const Shape& shape, Rng* rng, float lo, float hi,
                     bool requires_grad = false);

  // --- Introspection -------------------------------------------------------

  /// True when this handle points at storage.
  bool defined() const { return impl_ != nullptr; }
  /// The shape (must be defined).
  const Shape& shape() const;
  /// Number of dimensions.
  int dim() const { return static_cast<int>(shape().size()); }
  /// Total element count.
  int64_t size() const;
  /// Extent of dimension d (negative d counts from the end).
  int64_t size(int d) const;
  /// Mutable pointer to row-major data.
  float* data();
  /// Const pointer to row-major data.
  const float* data() const;
  /// Value of a single-element tensor.
  float item() const;
  /// Element at flat index i.
  float flat(int64_t i) const;
  /// Renders shape and (for small tensors) the values.
  std::string ToString() const;

  // --- Autograd ------------------------------------------------------------

  /// True when gradients are requested for this tensor (leaf flag).
  bool requires_grad() const;
  /// Marks this tensor as a differentiable leaf (e.g. a parameter).
  Tensor& set_requires_grad(bool value);
  /// True when this tensor participates in gradient flow (leaf or op output).
  bool needs_grad() const;
  /// The accumulated gradient as a (non-tracked) tensor; zeros if untouched.
  Tensor grad() const;
  /// Clears the accumulated gradient.
  void ZeroGrad();
  /// Runs reverse-mode differentiation from this scalar tensor.
  void Backward();
  /// Returns a view sharing data but detached from the autograd graph.
  Tensor Detach() const;
  /// Deep copy of data (not tracked).
  Tensor Clone() const;

  /// Internal handle (used by ops).
  const std::shared_ptr<internal::TensorImpl>& impl() const { return impl_; }

  /// Wraps an existing impl.
  static Tensor FromImpl(std::shared_ptr<internal::TensorImpl> impl);

 private:
  std::shared_ptr<internal::TensorImpl> impl_;
};

/// Row-major flat index for the given multi-dimensional index.
int64_t FlatIndex(const Shape& shape, const std::vector<int64_t>& index);

}  // namespace adaptraj

#endif  // ADAPTRAJ_TENSOR_TENSOR_H_
