#include "tensor/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "support/sync.h"
#include "support/thread_annotations.h"
#include "tensor/status.h"

namespace adaptraj {
namespace parallel {

namespace {

thread_local bool g_in_worker = false;

/// Workers sleep on a condition variable between jobs; a job is a shared
/// atomic chunk counter the main thread also drains (so one "extra" thread of
/// useful work comes for free).
///
/// Each Run gets its own heap-allocated Job whose counters are never reset:
/// a straggler worker that captured a finished job sees next >= total and
/// exits without touching the (long gone) chunk function, and the shared_ptr
/// keeps the counters alive for it. Completion is signalled while holding
/// mu_, so the waiter in Run can never miss the final notification.
class Pool {
 public:
  explicit Pool(int threads) : requested_threads_(threads) {
    for (int i = 0; i + 1 < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~Pool() { Shutdown(); }

  int num_threads() const { return requested_threads_; }

  void Run(int64_t num_chunks, const std::function<void(int64_t)>& chunk_fn) {
    if (num_chunks <= 0) return;
    if (workers_.empty() || num_chunks == 1) {
      for (int64_t c = 0; c < num_chunks; ++c) chunk_fn(c);
      return;
    }
    auto job = std::make_shared<Job>();
    job->fn = &chunk_fn;
    job->total = num_chunks;
    {
      support::MutexLock lock(mu_);
      current_job_ = job;
      ++job_id_;
    }
    // Wake only as many workers as there are chunks beyond the caller's own
    // share. The serving dispatcher flushes small task groups at a high
    // cadence; notify_all would stampede every idle worker through the mutex
    // for a 2-chunk job they mostly cannot help with. A worker that is busy
    // (not waiting) when notified picks the job up anyway on its next
    // predicate check, so targeted wakeups never strand work — and chunk
    // RESULTS never depend on which thread claims them (see file comment).
    const size_t wake = std::min(workers_.size(), static_cast<size_t>(num_chunks - 1));
    if (wake == workers_.size()) {
      cv_.NotifyAll();
    } else {
      for (size_t i = 0; i < wake; ++i) cv_.NotifyOne();
    }
    // The calling thread participates in the drain.
    DrainChunks(*job);
    // Wait for stragglers still inside chunk_fn on worker threads. chunk_fn
    // must stay alive until done == total, i.e. until this wait returns.
    support::MutexLock lock(mu_);
    while (job->done.load(std::memory_order_acquire) < job->total) {
      done_cv_.Wait(lock);
    }
    if (current_job_ == job) current_job_.reset();
  }

  void Shutdown() {
    {
      support::MutexLock lock(mu_);
      shutdown_ = true;
      ++job_id_;
    }
    cv_.NotifyAll();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
  }

 private:
  struct Job {
    const std::function<void(int64_t)>* fn = nullptr;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    int64_t total = 0;
  };

  void DrainChunks(Job& job) {
    for (;;) {
      int64_t c = job.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.total) return;
      (*job.fn)(c);
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 >= job.total) {
        // Notify under the mutex: the waiter either hasn't evaluated its
        // predicate yet (and will now see done == total), or is blocked in
        // wait and receives this notification — no lost wakeup.
        support::MutexLock lock(mu_);
        done_cv_.NotifyAll();
      }
    }
  }

  void WorkerLoop() {
    g_in_worker = true;
    uint64_t seen_job = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        support::MutexLock lock(mu_);
        while (!shutdown_ && job_id_ == seen_job) cv_.Wait(lock);
        if (shutdown_) return;
        seen_job = job_id_;
        job = current_job_;
      }
      if (job != nullptr) DrainChunks(*job);
    }
  }

  const int requested_threads_;
  std::vector<std::thread> workers_;
  support::Mutex mu_;
  support::CondVar cv_;
  support::CondVar done_cv_;
  std::shared_ptr<Job> current_job_ ADAPTRAJ_GUARDED_BY(mu_);
  uint64_t job_id_ ADAPTRAJ_GUARDED_BY(mu_) = 0;
  bool shutdown_ ADAPTRAJ_GUARDED_BY(mu_) = false;
};

int EnvThreads(const char* name) {
  if (const char* env = std::getenv(name)) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int DefaultThreads() { return EnvThreads("ADAPTRAJ_NUM_THREADS"); }

support::Mutex g_pool_mu;
Pool* g_pool ADAPTRAJ_GUARDED_BY(g_pool_mu) = nullptr;

Pool& GetPool() {
  support::MutexLock lock(g_pool_mu);
  if (g_pool == nullptr) g_pool = new Pool(DefaultThreads());
  return *g_pool;
}

// The training pool is a second Pool instance: same dynamic chunk claiming,
// but a "chunk" is a whole micro-batch task. Kept separate from the kernel
// pool so a task group can run while kernels stay available to a
// single-worker caller. The no-env default is capped: a task group carries
// at most TrainConfig::accum_steps (default 4) tasks, so on a many-core
// host uncapped hardware concurrency would only buy idle threads woken by
// every group's notify_all. An explicit ADAPTRAJ_TRAIN_WORKERS value is
// taken as-is.
constexpr int kDefaultTrainWorkerCap = 8;

support::Mutex g_train_pool_mu;
Pool* g_train_pool ADAPTRAJ_GUARDED_BY(g_train_pool_mu) = nullptr;

Pool& GetTrainPool() {
  support::MutexLock lock(g_train_pool_mu);
  if (g_train_pool == nullptr) {
    // Only a valid explicit count (>= 1) escapes the cap; unset, zero, or
    // garbage values all take the capped hardware default.
    int n = 0;
    if (const char* env = std::getenv("ADAPTRAJ_TRAIN_WORKERS")) {
      n = std::atoi(env);
    }
    if (n < 1) {
      unsigned hw = std::thread::hardware_concurrency();
      n = hw == 0 ? 1 : std::min(static_cast<int>(hw), kDefaultTrainWorkerCap);
    }
    g_train_pool = new Pool(n);
  }
  return *g_train_pool;
}

}  // namespace

int NumThreads() { return GetPool().num_threads(); }

void Configure(int n) {
  ADAPTRAJ_CHECK_MSG(n >= 1, "thread pool needs at least one thread; got " << n);
  support::MutexLock lock(g_pool_mu);
  delete g_pool;
  g_pool = new Pool(n);
}

bool InWorkerThread() { return g_in_worker; }

int NumTrainWorkers() { return GetTrainPool().num_threads(); }

void ConfigureTrainWorkers(int n) {
  ADAPTRAJ_CHECK_MSG(n >= 1, "training pool needs at least one worker; got " << n);
  support::MutexLock lock(g_train_pool_mu);
  delete g_train_pool;
  g_train_pool = new Pool(n);
}

void RunTaskGroup(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  // Nested groups (a task spawning a group) and single-task groups run
  // inline; so does the whole group when the pool is serial, which leaves
  // the kernel pool fully available to the one training thread.
  Pool& pool = GetTrainPool();
  if (InWorkerThread() || pool.num_threads() == 1 || tasks.size() == 1) {
    for (const auto& task : tasks) task();
    return;
  }
  pool.Run(static_cast<int64_t>(tasks.size()), [&tasks](int64_t i) {
    // Tasks claimed by the calling thread must also run their kernels
    // inline, like the pool workers do, so the worker x kernel-thread
    // product stays bounded by the configured worker count.
    const bool saved = g_in_worker;
    g_in_worker = true;
    tasks[static_cast<size_t>(i)]();
    g_in_worker = saved;
  });
}

void ParallelForSlow(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& body) {
  // The template fast path already handled empty and single-chunk ranges.
  const int64_t num_chunks = (end - begin + grain - 1) / grain;
  Pool& pool = GetPool();
  if (pool.num_threads() == 1) {
    body(begin, end);
    return;
  }
  pool.Run(num_chunks, [&](int64_t c) {
    const int64_t lo = begin + c * grain;
    const int64_t hi = std::min(end, lo + grain);
    body(lo, hi);
  });
}

}  // namespace parallel
}  // namespace adaptraj
