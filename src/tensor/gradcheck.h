// Numerical gradient checking used by the test suite.

#ifndef ADAPTRAJ_TENSOR_GRADCHECK_H_
#define ADAPTRAJ_TENSOR_GRADCHECK_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace adaptraj {

/// Result of a gradient check: worst absolute/relative deviation observed,
/// plus where it occurred (which input tensor and which flat coordinate) —
/// with fused multi-slice ops like LinearGates this pinpoints the gate whose
/// chain rule is wrong instead of just reporting a magnitude.
struct GradCheckReport {
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  bool ok = false;
  int worst_input = -1;      // index into the inputs vector
  int64_t worst_index = -1;  // flat coordinate within that input
};

/// Compares the analytic gradient of `fn` (a scalar-valued function of the
/// given leaf inputs) against central finite differences.
///
/// Every input must have requires_grad set. `fn` is re-invoked O(total
/// input size) times, so keep inputs small. Tolerances are absolute OR
/// relative: a coordinate passes when either bound holds.
GradCheckReport CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, float epsilon = 1e-2f, float abs_tol = 2e-2f,
    float rel_tol = 2e-2f);

}  // namespace adaptraj

#endif  // ADAPTRAJ_TENSOR_GRADCHECK_H_
