// Differentiable tensor operations.
//
// Every function returns a fresh tensor. When any input participates in
// gradient flow the result carries a GradNode so Tensor::Backward() can
// propagate through it; otherwise the op is pure forward computation.
//
// No-grad contract: inside a NoGradGuard scope (tensor.h) every op is pure
// forward computation regardless of its inputs — zero GradNode allocations,
// identical forward arithmetic (bit-for-bit equal outputs to the grad-mode
// path), and intermediates are not retained by any graph, so they return to
// the thread-local buffer pool as soon as their handle goes out of scope.
// Calling Backward() on a result produced under no-grad is a checked error.
// Samplers that need gradients at inference time (LBEBM's Langevin loop)
// open an EnableGradGuard island around just the differentiated region.
//
// Shape conventions: MatMul/Transpose are 2-D and BatchMatMul is 3-D;
// elementwise ops require equal shapes; the Broadcast* variants accept a
// second operand whose extents are equal to the first's or 1 (same rank);
// reductions and softmax document their axis handling individually.

#ifndef ADAPTRAJ_TENSOR_OPS_H_
#define ADAPTRAJ_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace adaptraj {
namespace ops {

// --- Elementwise binary ------------------------------------------------------

/// Elementwise a + b (equal shapes).
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise a - b (equal shapes).
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise a * b (equal shapes).
Tensor Mul(const Tensor& a, const Tensor& b);
/// Elementwise a / b (equal shapes); b must be nonzero.
Tensor Div(const Tensor& a, const Tensor& b);
/// a + b where b broadcasts against a (same rank, extents equal or 1).
Tensor BroadcastAdd(const Tensor& a, const Tensor& b);
/// a * b where b broadcasts against a (same rank, extents equal or 1).
Tensor BroadcastMul(const Tensor& a, const Tensor& b);

// --- Scalar ------------------------------------------------------------------

/// a + s.
Tensor AddScalar(const Tensor& a, float s);
/// a * s.
Tensor MulScalar(const Tensor& a, float s);
/// -a.
Tensor Neg(const Tensor& a);

// --- Linear algebra ----------------------------------------------------------

/// 2-D matrix product [M,K] x [K,N] -> [M,N].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// Batched 3-D matrix product [B,M,K] x [B,K,N] -> [B,M,N]: one graph node
/// and one kernel launch for all B slices. The transpose flags interpret the
/// per-slice operands like BLAS: trans_a means `a` is stored [B,K,M],
/// trans_b means `b` is stored [B,N,K] — no Transpose op (and no copy) is
/// needed for attention's q·kᵀ. B == 0 is handled natively (empty result,
/// no-op backward).
Tensor BatchMatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
                   bool trans_b = false);
/// 2-D transpose [M,N] -> [N,M].
Tensor Transpose(const Tensor& a);

// --- Fused linear algebra ----------------------------------------------------
//
// These collapse common multi-op chains into one kernel + one GradNode each.
// They are exactly equivalent to the composed ops (verified by gradcheck and
// reference tests) but skip the intermediate tensors and graph nodes.

/// a·w + bias for a [B,K], w [K,N], bias [1,N] broadcast over rows -> [B,N].
/// The whole affine layer in one node (nn::Linear's forward): exactly
/// equivalent to BroadcastAdd(MatMul(a, w), bias) with half the graph nodes
/// and the bias applied by the vectorized row kernel.
Tensor Affine(const Tensor& a, const Tensor& w, const Tensor& bias);
/// a·wa + b·wb for a [B,Da], wa [Da,N], b [B,Db], wb [Db,N] -> [B,N].
Tensor AddMatMul(const Tensor& a, const Tensor& wa, const Tensor& b,
                 const Tensor& wb);
/// x·w_x + h·w_h + bias for bias [1,N] broadcast over rows -> [B,N].
/// The pre-activation "gates" of recurrent cells in a single node.
Tensor LinearGates(const Tensor& x, const Tensor& w_x, const Tensor& h,
                   const Tensor& w_h, const Tensor& bias);

// --- Fused LSTM cell ---------------------------------------------------------
//
// gates is the pre-activation buffer [B, 4H] in gate order i, f, g, o
// (typically produced by LinearGates). Together these two ops replace the
// slice/sigmoid/tanh/mul/add chain of a standard LSTM step.

/// c_next = sigmoid(f)*c_prev + sigmoid(i)*tanh(g) -> [B, H].
Tensor LstmCellC(const Tensor& gates, const Tensor& c_prev);
/// h_next = sigmoid(o)*tanh(c_next) -> [B, H].
Tensor LstmCellH(const Tensor& gates, const Tensor& c_next);

// --- Unary -------------------------------------------------------------------

/// max(a, 0).
Tensor Relu(const Tensor& a);
/// Hyperbolic tangent.
Tensor Tanh(const Tensor& a);
/// Logistic sigmoid.
Tensor Sigmoid(const Tensor& a);
/// Exponential.
Tensor Exp(const Tensor& a);
/// Natural log of max(a, eps); gradient uses the clamped value.
Tensor LogClamped(const Tensor& a, float eps = 1e-12f);
/// Elementwise square.
Tensor Square(const Tensor& a);
/// Elementwise square root of max(a, 0) with epsilon-guarded gradient.
Tensor Sqrt(const Tensor& a, float eps = 1e-12f);
/// Elementwise absolute value (subgradient 0 at 0).
Tensor Abs(const Tensor& a);
/// Clamps into [lo, hi]; gradient is zero where clamped.
Tensor Clamp(const Tensor& a, float lo, float hi);

// --- Reductions ----------------------------------------------------------------

/// Sum of all elements -> shape [1].
Tensor Sum(const Tensor& a);
/// Mean of all elements -> shape [1].
Tensor Mean(const Tensor& a);
/// Sum over one axis. keepdim keeps the axis with extent 1.
Tensor SumAxis(const Tensor& a, int axis, bool keepdim = false);
/// Mean over one axis. keepdim keeps the axis with extent 1.
Tensor MeanAxis(const Tensor& a, int axis, bool keepdim = false);
/// Max over one axis; the gradient routes to the (first) argmax element.
Tensor MaxAxis(const Tensor& a, int axis, bool keepdim = false);

// --- Normalization -------------------------------------------------------------

/// Numerically stable softmax along the last axis. Works at any rank — a
/// [B,T,T] attention-score tensor normalizes each key row independently, so
/// batched attention needs no per-slice loop.
Tensor Softmax(const Tensor& a);
/// Numerically stable log-softmax along the last axis.
Tensor LogSoftmax(const Tensor& a);

// --- Structure -------------------------------------------------------------------

/// Concatenates along `axis`; inputs agree on all other extents.
Tensor Concat(const std::vector<Tensor>& parts, int axis);
/// Sub-range [start, end) of `axis`.
Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t end);
/// Stacks equal-shape tensors along a new leading axis.
Tensor Stack(const std::vector<Tensor>& parts);
/// Same data, new shape (element counts must match).
Tensor Reshape(const Tensor& a, const Shape& shape);

// --- Special -----------------------------------------------------------------

/// Identity forward; multiplies the gradient by -lambda on the way back.
/// Used for the domain-adversarial similarity loss.
Tensor GradReverse(const Tensor& a, float lambda = 1.0f);
/// out = a where mask==0, `value` where mask!=0. No gradient flows into
/// masked positions (mask itself is never differentiated).
Tensor MaskedFill(const Tensor& a, const Tensor& mask, float value);
/// Mean over the batch of -log_probs[b, labels[b]]; log_probs is [B, C].
Tensor NllLoss(const Tensor& log_probs, const std::vector<int>& labels);

// --- Operator sugar -------------------------------------------------------------

inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator*(const Tensor& a, float s) { return MulScalar(a, s); }
inline Tensor operator*(float s, const Tensor& a) { return MulScalar(a, s); }
inline Tensor operator-(const Tensor& a) { return Neg(a); }

}  // namespace ops
}  // namespace adaptraj

#endif  // ADAPTRAJ_TENSOR_OPS_H_
