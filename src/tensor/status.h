// Status / Result error-handling primitives used across the library.
//
// Policy (see DESIGN.md): recoverable failures (I/O, configuration,
// serialization) return Status or Result<T>; programming errors (shape
// mismatches, index errors) hit ADAPTRAJ_CHECK which aborts with a message.
// Library code does not throw exceptions.

#ifndef ADAPTRAJ_TENSOR_STATUS_H_
#define ADAPTRAJ_TENSOR_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace adaptraj {

/// Error category carried by a non-ok Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kNotFound = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
};

/// Lightweight status object modeled after the Arrow/RocksDB idiom.
///
/// A Status is either OK (the default) or carries a code and a message.
/// Functions that can fail for recoverable reasons return Status (or
/// Result<T> when they also produce a value).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Returns an OK status.
  static Status Ok() { return Status(); }
  /// Returns an invalid-argument error with the given message.
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns an I/O error with the given message.
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// Returns a not-found error with the given message.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Returns a failed-precondition error with the given message.
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// Returns an internal error with the given message.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The human-readable error message ("" when OK).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
      case StatusCode::kIOError: name = "IOError"; break;
      case StatusCode::kNotFound: name = "NotFound"; break;
      case StatusCode::kFailedPrecondition: name = "FailedPrecondition"; break;
      case StatusCode::kInternal: name = "Internal"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg) : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> couples a Status with a value produced on success.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The status.
  const Status& status() const { return status_; }
  /// The value; must only be called when ok().
  const T& value() const& { return *value_; }
  /// Moves the value out; must only be called when ok().
  T&& value() && { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "ADAPTRAJ_CHECK failed at %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace internal

/// Aborts with a message when `cond` is false. For programming errors only.
#define ADAPTRAJ_CHECK(cond)                                                      \
  do {                                                                            \
    if (!(cond)) {                                                                \
      ::adaptraj::internal::CheckFailed(__FILE__, __LINE__, "condition: " #cond); \
    }                                                                             \
  } while (0)

/// Aborts with a formatted message when `cond` is false.
#define ADAPTRAJ_CHECK_MSG(cond, msg)                                  \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream oss_;                                         \
      oss_ << "condition: " #cond << "; " << msg;                      \
      ::adaptraj::internal::CheckFailed(__FILE__, __LINE__, oss_.str()); \
    }                                                                  \
  } while (0)

/// Aborts when two values are not equal, printing both.
#define ADAPTRAJ_CHECK_EQ(a, b)                                          \
  do {                                                                   \
    auto va_ = (a);                                                      \
    auto vb_ = (b);                                                      \
    if (!(va_ == vb_)) {                                                 \
      std::ostringstream oss_;                                           \
      oss_ << #a " == " #b " (" << va_ << " vs " << vb_ << ")";          \
      ::adaptraj::internal::CheckFailed(__FILE__, __LINE__, oss_.str()); \
    }                                                                    \
  } while (0)

/// Propagates a non-OK Status from the enclosing function.
#define ADAPTRAJ_RETURN_NOT_OK(expr)         \
  do {                                       \
    ::adaptraj::Status st_ = (expr);         \
    if (!st_.ok()) return st_;               \
  } while (0)

}  // namespace adaptraj

#endif  // ADAPTRAJ_TENSOR_STATUS_H_
