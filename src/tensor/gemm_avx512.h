// Internal interface to the AVX-512 GEMM micro-kernels (kernels_avx512.cpp).
//
// The implementation lives in its own translation unit compiled with
// -mavx512f (see CMakeLists.txt) so the rest of the library keeps its
// baseline architecture flags; kernels.cpp consults CompiledIn() and
// CpuSupported() plus a startup bit-exactness probe before routing any work
// here (see kernels.h, "GEMM micro-kernel dispatch").
//
// Tile geometry: 8 C rows x 32 C columns per register tile — 16 zmm
// accumulators held across the whole k loop, fed by 2 B loads and 8 scalar
// broadcasts per k step (16 FMAs against 10 loads, FMA-throughput-bound,
// where the portable 4x16 tile is load-bound). B is pre-packed panel-major:
// ceil(n/32) panels of [PaddedK(k)][32] floats, zero-padded in both the
// column tail and the k tail, so every panel row is one aligned pair of
// cache lines and edge tiles can issue full-width loads. The k padding is
// LAYOUT ONLY: compute always runs over the true k (ascending), never the
// padded rows — accumulating a*0 terms over pad rows could flip a -0.0
// result to +0.0 (all-zero LSTM initial states against negative weights)
// and break bit-identity with the portable kernel.

#ifndef ADAPTRAJ_TENSOR_GEMM_AVX512_H_
#define ADAPTRAJ_TENSOR_GEMM_AVX512_H_

#include <cstdint>

namespace adaptraj {
namespace kernels {
namespace avx512 {

/// Register-tile extents of the micro-kernel.
constexpr int64_t kMR = 8;
constexpr int64_t kNR = 32;
/// k-loop unroll factor; packed panels pad k to this multiple (layout only).
constexpr int64_t kKUnroll = 4;

inline int64_t PaddedK(int64_t k) {
  return (k + kKUnroll - 1) / kKUnroll * kKUnroll;
}
inline int64_t Panels(int64_t n) { return (n + kNR - 1) / kNR; }
inline int64_t RoundUpNR(int64_t n) { return Panels(n) * kNR; }
/// Total floats of a packed B operand: panel-major [Panels(n)][PaddedK(k)][32].
inline int64_t PackedBSize(int64_t n, int64_t k) {
  return Panels(n) * PaddedK(k) * kNR;
}

/// True when this binary contains the AVX-512 kernels (the TU was compiled
/// with AVX-512F support) — independent of what the host CPU can execute.
bool CompiledIn();

/// True when the host CPU supports AVX-512F. Safe to call on any host.
bool CpuSupported();

/// C[i0:i1, 0:n] (+)= A[i0:i1, 0:k] · B with A row-major (leading dimension
/// lda) and B packed panel-major (PackedBSize layout above). Serial over the
/// row range — callers split rows across the thread pool. Accumulation is
/// ascending-k per element, matching GemmNaive's order. Must only be called
/// when CompiledIn() && CpuSupported().
void GemmRows(int64_t i0, int64_t i1, int64_t n, int64_t k, const float* a,
              int64_t lda, const float* bp, float* c, int64_t ldc,
              bool accumulate);

/// Same contract as GemmRows but with B row-major and UNPACKED (leading
/// dimension ldb): full 32-column panels read B in place — eager calls skip
/// the pack entirely when B needs no transpose. `tailp`, required when
/// 32 does not divide n, is the last ragged panel pre-packed as
/// [PaddedK(k)][32] (zero-padded columns) so the edge tile still issues
/// full-width in-bounds loads. The per-element arithmetic order is identical
/// to GemmRows on a packed operand — packing never changes results, only
/// locality.
void GemmRowsDirect(int64_t i0, int64_t i1, int64_t n, int64_t k,
                    const float* a, int64_t lda, const float* b, int64_t ldb,
                    const float* tailp, float* c, int64_t ldc,
                    bool accumulate);

/// Fused plan tile over rows [i0, i1): C = act(A·B1 [+ A2·B2] + bias), the
/// AVX-512 twin of kernels::PlanGemm's portable tile. B1/B2 are packed
/// panel-major; bias is a flat row zero-padded to RoundUpNR(n). Both
/// products accumulate into the same registers (k then k2, ascending) and
/// the bias adds once at the end — the eager Gemm + accumulate-Gemm +
/// AddRowBias order. act: 0 = none, 1 = relu. Transcendental epilogues are
/// applied by the caller as a second pass so their arithmetic stays in
/// kernels.cpp's translation unit (bit-identical to the eager
/// TanhForward/SigmoidForward whatever this TU's contraction rules are).
void PlanGemmRows(int64_t i0, int64_t i1, int64_t n, int64_t k, const float* a,
                  int64_t lda, const float* bp, int64_t k2, const float* a2,
                  int64_t lda2, const float* bp2, const float* biasp, int act,
                  float* c, int64_t ldc);

}  // namespace avx512
}  // namespace kernels
}  // namespace adaptraj

#endif  // ADAPTRAJ_TENSOR_GEMM_AVX512_H_
