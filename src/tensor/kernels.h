// Low-level compute kernels behind the differentiable ops.
//
// These functions operate on raw row-major float buffers so the same code
// serves MatMul's forward pass and both of its backward passes (dA = dY·Bᵀ,
// dB = Aᵀ·dY accumulate straight into gradient storage — no scratch, no
// transposed temporaries at the op layer). Gemm packs transposed operands
// into contiguous panels and tiles the output into 4x16 register
// micro-kernels (explicit vector accumulators held across the whole k loop),
// splitting row panels across the parallel::ParallelFor pool. The reduction
// order over k is ascending in every variant and independent of the thread
// count, so results are bit-identical to the serial reference run to run.
//
// The LstmCell* kernels fuse the per-gate sigmoid/tanh activations (and
// their backward forms) into single passes over the [B, 4H] gate buffer,
// replacing the slice + activation + elementwise op chains that used to cost
// ~10 graph nodes per LSTM timestep.

#ifndef ADAPTRAJ_TENSOR_KERNELS_H_
#define ADAPTRAJ_TENSOR_KERNELS_H_

#include <cstdint>

namespace adaptraj {
namespace kernels {

/// C[M,N] = op(A)·op(B), or += when `accumulate` is set. op(X) = Xᵀ when the
/// corresponding trans flag is set (A is then stored [K,M], B stored [N,K]).
/// Blocked, packed, and parallelized; deterministic for fixed inputs.
void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          const float* a, const float* b, float* c, bool accumulate);

/// Reference implementation of Gemm: serial triple loop with the same
/// ascending-k reduction order. Tests compare the fast path against this.
void GemmNaive(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
               const float* a, const float* b, float* c, bool accumulate);

/// y[r, c] += bias[c] for every row.
void AddRowBias(float* y, const float* bias, int64_t rows, int64_t cols);

/// out[c] += sum_r y[r, c] (bias gradient of a row-broadcast add).
void AccumulateColumnSum(const float* y, int64_t rows, int64_t cols, float* out);

// --- Fused LSTM cell kernels -------------------------------------------------
//
// `gates` is the pre-activation buffer [B, 4H] in gate order i, f, g, o.
// All backward kernels ACCUMULATE into their d_* outputs.

/// c_next = sigmoid(f) * c_prev + sigmoid(i) * tanh(g).
void LstmCellForwardC(const float* gates, const float* c_prev, int64_t batch,
                      int64_t hidden, float* c_next);

/// h_next = sigmoid(o) * tanh(c_next).
void LstmCellForwardH(const float* gates, const float* c_next, int64_t batch,
                      int64_t hidden, float* h_next);

/// Backward of LstmCellForwardC given dc = d(loss)/d(c_next):
/// d_gates[:, i|f|g] += gate-activation chain rules, d_c_prev += dc * sigmoid(f).
/// Null d_gates or d_c_prev skips that accumulation.
void LstmCellBackwardC(const float* gates, const float* c_prev, const float* dc,
                       int64_t batch, int64_t hidden, float* d_gates,
                       float* d_c_prev);

/// Backward of LstmCellForwardH given dh = d(loss)/d(h_next):
/// d_gates[:, o] += dh * tanh(c_next) * sigmoid'(o),
/// d_c_next += dh * sigmoid(o) * (1 - tanh(c_next)^2).
/// Null d_gates or d_c_next skips that accumulation.
void LstmCellBackwardH(const float* gates, const float* c_next, const float* dh,
                       int64_t batch, int64_t hidden, float* d_gates,
                       float* d_c_next);

}  // namespace kernels
}  // namespace adaptraj

#endif  // ADAPTRAJ_TENSOR_KERNELS_H_
