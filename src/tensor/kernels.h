// Low-level compute kernels behind the differentiable ops.
//
// These functions operate on raw row-major float buffers so the same code
// serves MatMul's forward pass and both of its backward passes (dA = dY·Bᵀ,
// dB = Aᵀ·dY accumulate straight into gradient storage — no scratch, no
// transposed temporaries at the op layer). Gemm packs transposed operands
// into contiguous panels and tiles the output into register micro-kernels
// (explicit vector accumulators held across the whole k loop) — an 8x32
// AVX-512 tile or the portable 4x16 tile, chosen at runtime (see "GEMM
// micro-kernel dispatch" below) — splitting row panels across the
// parallel::ParallelFor pool. The reduction order over k is ascending in
// every variant and independent of the thread count and tile geometry, so
// results are bit-identical to the serial reference run to run.
//
// The LstmCell* kernels fuse the per-gate sigmoid/tanh activations (and
// their backward forms) into single passes over the [B, 4H] gate buffer,
// replacing the slice + activation + elementwise op chains that used to cost
// ~10 graph nodes per LSTM timestep.
//
// BatchGemm extends Gemm to B independent slices so a [B,M,K] x [B,K,N]
// product is one kernel launch, and the SIMD transcendental block replaces
// the scalar std::exp/std::tanh inner loops of the gate kernels and the
// Softmax/Exp/Tanh/Sigmoid ops with vectorized approximations (scalar libm
// fallback gated at compile and run time — see TranscendentalPath).

#ifndef ADAPTRAJ_TENSOR_KERNELS_H_
#define ADAPTRAJ_TENSOR_KERNELS_H_

#include <cstdint>

namespace adaptraj {
namespace kernels {

/// C[M,N] = op(A)·op(B), or += when `accumulate` is set. op(X) = Xᵀ when the
/// corresponding trans flag is set (A is then stored [K,M], B stored [N,K]).
/// Blocked, packed, and parallelized; deterministic for fixed inputs.
void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          const float* a, const float* b, float* c, bool accumulate);

/// Reference implementation of Gemm: serial triple loop with the same
/// ascending-k reduction order. Tests compare the fast path against this.
void GemmNaive(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
               const float* a, const float* b, float* c, bool accumulate);

/// Batched GEMM over `batch` independent slices: C[b] (+)= op(A[b])·op(B[b]).
/// Slices are dense and contiguous (strides m·k / k·n / m·n), so a [B,M,K] x
/// [B,K,N] tensor product is one call. Each slice runs the same packed 4x16
/// micro-kernel as Gemm; work is split across the thread pool as
/// (slice, row-panel) pairs with static chunk boundaries that depend only on
/// the extents — results are bit-identical for any thread count, and equal to
/// calling Gemm per slice. batch == 0 and k == 0 are handled natively.
void BatchGemm(bool trans_a, bool trans_b, int64_t batch, int64_t m, int64_t n,
               int64_t k, const float* a, const float* b, float* c,
               bool accumulate);

/// Reference implementation of BatchGemm: GemmNaive per slice.
void BatchGemmNaive(bool trans_a, bool trans_b, int64_t batch, int64_t m,
                    int64_t n, int64_t k, const float* a, const float* b,
                    float* c, bool accumulate);

// --- GEMM micro-kernel dispatch ----------------------------------------------
//
// Gemm/BatchGemm/PlanGemm run one of two register-tiled kernels:
//
//   kAvx512   8x32 tiles (16 zmm accumulators), k-unrolled FMA under
//             row/k cache blocking; non-transposed eager B is read in place
//             (only the ragged column tail is packed), other layouts go
//             through panel-major packed B (gemm_avx512.h). Lives in its own
//             TU compiled with -mavx512f.
//   kPortable 4x16 tiles on GCC vector extensions — compiles everywhere and
//             is the fallback and the reference for the probe below.
//
// Both kernels accumulate each output element over ascending k, so tile
// geometry never changes results; the only cross-kernel bit hazard is FMA
// contraction differing between translation units. The auto resolution
// therefore runs a one-time startup probe — both kernels over a ragged shape
// battery (edges, transposes, accumulate), compared bitwise — and enables
// the AVX-512 path only when it is bit-identical to the portable kernel on
// this build/host. Resolution order:
//
//   1. SetGemmPath override (tests/benches), if not kAuto;
//   2. ADAPTRAJ_GEMM env: "0" / "off" / "portable" force the portable
//      kernel; "avx512" / "force" force the AVX-512 path (skipping the
//      probe; still requires compiled-in + CPU support); unset or "auto"
//      fall through;
//   3. compiled-in + CPU support + the bitwise probe.
//
// The resolved path is process-wide, but probe-resolved auto mode is
// additionally SHAPE-AWARE: the 8x32 tile wastes more than half its vector
// lanes below one panel width, and measured crossover puts the portable
// 4x16 kernel 2-6x ahead for n < 32 (LSTM gate slivers, tiny heads), so
// auto routes n < 32 to the portable kernel and n >= 32 to AVX-512. An
// explicit SetGemmPath override or ADAPTRAJ_GEMM=avx512/force bypasses the
// heuristic (tests rely on forcing the micro-kernel at sub-panel shapes).
// Mixing paths by shape cannot perturb results: auto only enables AVX-512
// when the probe proved it bit-identical to the portable kernel. Compiled
// plans record the per-step path their weights were packed for and replay
// with that path, so flipping the override between capture and replay
// cannot misread a packed layout.

enum class GemmPath {
  kAuto = 0,    // env + probe resolution (the default)
  kAvx512,      // force the 8x32 AVX-512 micro-kernel (if compiled + CPU)
  kPortable,    // force the portable 4x16 kernel
};

/// Overrides the path used by Gemm/BatchGemm and for packing NEW plans.
/// kAuto restores the env/probe-resolved default. Not thread-safe against
/// in-flight kernels; call between steps (tests and benchmarks only).
void SetGemmPath(GemmPath path);

/// The process-wide resolved path: always kAvx512 or kPortable. Shape-blind —
/// Gemm/BatchGemm/plan capture consult GemmPathForShape.
GemmPath SelectGemmPath();

/// The path a product with n output columns will take: SelectGemmPath
/// narrowed by the n >= 32 auto-mode heuristic above. Explicit overrides and
/// ADAPTRAJ_GEMM=avx512/force win over the heuristic.
GemmPath GemmPathForShape(int64_t n);

/// True when this binary contains the AVX-512 kernels at all.
bool Avx512GemmCompiledIn();

// --- SIMD transcendentals ----------------------------------------------------
//
// Vectorized exp-based approximations (Cephes-style range reduction plus a
// degree-5 polynomial) for the transcendental inner loops: ~2 ulp relative
// error vs std::exp on [-87.3, 88.7], and < 1e-6 absolute error for the
// derived tanh/sigmoid. Remainder elements run through the same vector code
// on a zero-padded tile, so results are independent of how a range is split
// into chunks (and therefore of the thread count).
//
// The active path is resolved once per process: the compiler must support GCC
// vector extensions, the ADAPTRAJ_SIMD environment variable must not disable
// it ("0" / "off" / "scalar" force libm; unset or anything else leaves SIMD
// on), and a startup accuracy sweep against libm must pass. Tests and
// benchmarks can pin the path explicitly with SetTranscendentalPath.

enum class TranscendentalPath {
  kAuto = 0,    // env + accuracy-gated resolution (the default)
  kSimd,        // force the vector approximations (if compiled in)
  kScalar,      // force scalar libm
};

/// Overrides the path used by the kernels below. kAuto restores the
/// environment/accuracy-gated default. Not thread-safe against in-flight
/// kernels; call between steps (tests and benchmarks only).
void SetTranscendentalPath(TranscendentalPath path);

/// True when the vector approximations are the active path.
bool SimdTranscendentalsActive();

/// y[i] = exp(x[i]). In-place (y == x) is allowed.
void ExpForward(const float* x, float* y, int64_t n);
/// y[i] = tanh(x[i]). In-place is allowed.
void TanhForward(const float* x, float* y, int64_t n);
/// y[i] = sigmoid(x[i]). In-place is allowed.
void SigmoidForward(const float* x, float* y, int64_t n);

/// One numerically stable softmax row: y = exp(x - max(x)) / sum(...).
/// The exponentials use the active transcendental path; the max and the
/// denominator are accumulated serially in ascending order (double), so the
/// result only depends on the row contents.
void SoftmaxRow(const float* x, float* y, int64_t n);

/// y[r, c] += bias[c] for every row.
void AddRowBias(float* y, const float* bias, int64_t rows, int64_t cols);

/// out[c] += sum_r y[r, c] (bias gradient of a row-broadcast add).
void AccumulateColumnSum(const float* y, int64_t rows, int64_t cols, float* out);

// --- Optimizer and gradient-reduction kernels --------------------------------
//
// These back the data-parallel training path (core/parallel_trainer.h) and
// the vectorized nn::Sgd / nn::Adam steps. All of them are deterministic:
// per-element arithmetic has a fixed order that does not depend on chunk
// boundaries or thread count.

/// dst[i] = (srcs[0][i] + srcs[1][i] + ... + srcs[num_srcs-1][i]) * scale.
/// Sources are added in ascending index order per element — the fixed-order
/// reduction discipline of ops::Sum applied across gradient buffers — so the
/// result is bit-identical however the element range is chunked across
/// threads. dst may alias srcs[0] (the in-place master-gradient case).
void ReduceGradSum(const float* const* srcs, int num_srcs, float scale,
                   float* dst, int64_t n);

/// Vectorized Adam update for one parameter buffer:
///   g     = grad[i] + weight_decay * param[i]
///   m[i]  = beta1 * m[i] + (1 - beta1) * g
///   v[i]  = beta2 * v[i] + (1 - beta2) * g * g
///   param[i] -= lr * (m[i] / bc1) / (sqrt(v[i] / bc2) + eps)
/// bc1/bc2 are the bias corrections 1 - beta^t computed by the caller.
void AdamUpdate(float* param, const float* grad, float* m, float* v, int64_t n,
                float lr, float beta1, float beta2, float eps,
                float weight_decay, float bc1, float bc2);

/// Vectorized SGD update. With momentum != 0, `velocity` must be non-null:
///   velocity[i] = momentum * velocity[i] + grad[i]
///   param[i]   -= lr * (momentum != 0 ? velocity[i] : grad[i])
void SgdUpdate(float* param, const float* grad, float* velocity, int64_t n,
               float lr, float momentum);

// --- Planned-execution kernels -----------------------------------------------
//
// These back src/tensor/plan.{h,cpp}: replay-time kernels that assume the
// plan optimizer pre-packed the weight operand at capture time. PlanGemm is
// the workhorse — one fused register pass covering Affine (x·W + b),
// LinearGates' dual product (x·Wa + h·Wb + b) and a folded relu/tanh/sigmoid
// epilogue. The k reduction is ascending and the epilogue applies the same
// per-element arithmetic as the separate Gemm + AddRowBias + activation ops
// (bias added once after the full accumulation, activations on the active
// transcendental path), so fused results are bit-identical to the eager
// chain.

/// Activation folded into PlanGemm's register epilogue.
enum class PlanAct : int { kNone = 0, kRelu = 1, kTanh = 2, kSigmoid = 3 };

/// Packed width of a PORTABLE-path plan weight: n rounded up to the 16-lane
/// vector width.
int64_t PlanPackedCols(int64_t n);

/// Packs a row-major [k, n] weight into the portable layout
/// [k, PlanPackedCols(n)] with zero-filled tail columns.
void PlanPackWeight(const float* w, int64_t k, int64_t n, float* dst);

/// Total floats of a [k, n] weight packed for `path`. Portable: row-major
/// k x PlanPackedCols(n). kAvx512: panel-major ceil(n/32) panels of
/// [PaddedK(k)][32] (gemm_avx512.h). kAuto is not a valid pack target.
int64_t PlanPackedSize(int64_t k, int64_t n, GemmPath path);

/// Packs a row-major [k, n] weight into the `path` layout (PlanPackedSize
/// floats, zero-padded tails).
void PlanPackWeightFor(const float* w, int64_t k, int64_t n, GemmPath path,
                       float* dst);

/// Total floats of an [n] bias packed for `path`: one flat row zero-padded
/// to the path's column-tile multiple (16 portable, 32 AVX-512).
int64_t PlanPackedBiasSize(int64_t n, GemmPath path);

/// Packs an [n] bias row into the `path` layout.
void PlanPackBiasFor(const float* b, int64_t n, GemmPath path, float* dst);

/// C[m, n] = act(A·B1 (+ A2·B2) + bias). B1/B2/bias are pre-packed for
/// `packed_for` (PlanPackWeightFor/PlanPackBiasFor with the same path — the
/// plan records it at capture time); the second product is skipped when a2
/// is null, the bias when biasp is null. Row panels split across the thread
/// pool; the per-row reduction runs k then k2 ascending, matching the eager
/// Gemm + accumulate-Gemm + AddRowBias order bit for bit on either path.
void PlanGemm(int64_t m, int64_t n, int64_t k, const float* a,
              const float* bp, int64_t k2, const float* a2, const float* bp2,
              const float* biasp, PlanAct act, float* c, GemmPath packed_for);

/// Fused LstmCellForwardC + LstmCellForwardH: one pass over the [B, 4H] gate
/// buffer producing both c_next and h_next, with tanh(c_next) computed from
/// the in-register value. Same activation path and row chunking as the
/// separate kernels.
void LstmCellForwardCH(const float* gates, const float* c_prev, int64_t batch,
                       int64_t hidden, float* c_next, float* h_next);

/// rows x cols fused attention-score normalization:
///   y[r] = SoftmaxRow(masked(scale * x[r]))
/// where masked() replaces elements whose mask is non-zero with `fill`
/// (mask == nullptr skips the masking). Matches the eager
/// MulScalar → MaskedFill → Softmax chain bit for bit: the scaled/filled row
/// is materialized per row before the standard SoftmaxRow arithmetic.
void ScaledMaskedSoftmaxRows(const float* x, const float* mask, float scale,
                             float fill, int64_t rows, int64_t cols, float* y);

/// rows x cols LayerNorm normalization (no affine):
///   y[r] = (x[r] - mean(x[r])) / sqrt(var(x[r]) + eps)
/// replicating the eager op chain's arithmetic exactly: the mean and the
/// mean of the squared centered values accumulate ascending in double and
/// round to float (ops::MeanAxis), the centering is x + (-mean), the
/// denominator is sqrt(max(var + eps, 0)) (ops::Sqrt), and the division is
/// a multiply by 1.0f / denom (ops::Div of a ones tensor).
void LayerNormRows(const float* x, int64_t rows, int64_t cols, float eps,
                   float* y);

// --- Fused LSTM cell kernels -------------------------------------------------
//
// `gates` is the pre-activation buffer [B, 4H] in gate order i, f, g, o.
// All backward kernels ACCUMULATE into their d_* outputs. The gate
// activations run on the active transcendental path (SIMD when available,
// scalar libm otherwise — see SetTranscendentalPath above); rows are split
// across the thread pool with static chunking, so results are bit-identical
// for any thread count.

/// c_next = sigmoid(f) * c_prev + sigmoid(i) * tanh(g).
void LstmCellForwardC(const float* gates, const float* c_prev, int64_t batch,
                      int64_t hidden, float* c_next);

/// h_next = sigmoid(o) * tanh(c_next).
void LstmCellForwardH(const float* gates, const float* c_next, int64_t batch,
                      int64_t hidden, float* h_next);

/// Backward of LstmCellForwardC given dc = d(loss)/d(c_next):
/// d_gates[:, i|f|g] += gate-activation chain rules, d_c_prev += dc * sigmoid(f).
/// Null d_gates or d_c_prev skips that accumulation.
void LstmCellBackwardC(const float* gates, const float* c_prev, const float* dc,
                       int64_t batch, int64_t hidden, float* d_gates,
                       float* d_c_prev);

/// Backward of LstmCellForwardH given dh = d(loss)/d(h_next):
/// d_gates[:, o] += dh * tanh(c_next) * sigmoid'(o),
/// d_c_next += dh * sigmoid(o) * (1 - tanh(c_next)^2).
/// Null d_gates or d_c_next skips that accumulation.
void LstmCellBackwardH(const float* gates, const float* c_next, const float* dh,
                       int64_t batch, int64_t hidden, float* d_gates,
                       float* d_c_next);

}  // namespace kernels
}  // namespace adaptraj

#endif  // ADAPTRAJ_TENSOR_KERNELS_H_
