#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/parallel_trainer.h"
#include "core/predict_plan.h"
#include "nn/optimizer.h"

namespace adaptraj {
namespace core {

using namespace ops;  // NOLINT(build/namespaces)

data::Batch CounterfactualBatch(const data::Batch& batch) {
  data::Batch cf = batch;  // tensors share storage; replace neighbor fields
  cf.nbr_mask = Tensor::Zeros(batch.nbr_mask.shape());
  cf.nbr_offsets = Tensor::Zeros(batch.nbr_offsets.shape());
  cf.nbr_steps.clear();
  for (const Tensor& step : batch.nbr_steps) {
    cf.nbr_steps.push_back(Tensor::Zeros(step.shape()));
  }
  return cf;
}

namespace {

/// Baseline replica factory: a fresh backbone from the stored construction
/// arguments (weights are overwritten by the trainer's broadcast).
std::unique_ptr<models::Backbone> MakeReplica(models::BackboneKind kind,
                                              const models::BackboneConfig& config,
                                              uint64_t init_seed) {
  Rng rng(init_seed);
  return models::MakeBackbone(kind, config, &rng);
}

}  // namespace

VanillaMethod::VanillaMethod(models::BackboneKind kind,
                             const models::BackboneConfig& config, uint64_t init_seed)
    : kind_(kind), config_(config), init_seed_(init_seed) {
  Rng rng(init_seed);
  config_.extra_dim = 0;
  backbone_ = models::MakeBackbone(kind, config_, &rng);
  // Methods serve in inference mode unless a Train() is in flight — also
  // for models restored via LoadParameters, which never pass through Train().
  backbone_->eval();
}

void VanillaMethod::Train(const data::DomainGeneralizationData& dgd,
                          const TrainConfig& config) {
  nn::Adam opt(config.lr);
  opt.AddGroup(backbone_->Parameters());
  ReplicaTrainer<models::Backbone> rt = MakeReplicaTrainer(
      backbone_.get(), &train_replicas_, &opt, config.accum_steps,
      config.grad_clip,
      [this] { return MakeReplica(kind_, config_, init_seed_); });
  ParallelTrainer& trainer = *rt.trainer;
  for (models::Backbone* m : rt.models) m->train();

  data::SequenceConfig seq_cfg;
  data::BatchLoader loader(&dgd.pooled_train, config.batch_size, seq_cfg,
                           config.seed + 1, /*shuffle=*/true);
  uint64_t task_index = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    loader.Reset();
    data::Batch batch;
    int batches = 0;
    while (loader.Next(&batch)) {
      if (config.max_batches_per_epoch > 0 && batches >= config.max_batches_per_epoch) {
        break;
      }
      const uint64_t seed = TaskSeed(config.seed, task_index++);
      trainer.Submit([&rt, batch, seed](int slot) {
        Rng rng(seed);
        models::Backbone* bb = rt.models[slot];
        models::EncodeResult enc = bb->Encode(batch);
        bb->Loss(batch, enc, Tensor(), &rng).Backward();
      });
      ++batches;
    }
    trainer.Flush();
  }
  trainer.Flush();
  for (models::Backbone* m : rt.models) m->eval();
  plan_cache_.Invalidate();  // fused plans packed the pre-training weights
  BumpWeightsVersion();      // serving-side encoder caches must drop too
}

Tensor VanillaMethod::Predict(const data::Batch& batch, Rng* rng, bool sample) const {
  NoGradGuard no_grad;
  plan::PredictSession session(&plan_cache_, PredictPlanKey(batch, sample),
                               PredictPlanInputs(batch), rng);
  if (session.CanReplay()) return session.Replay();
  models::EncodeResult enc = backbone_->Encode(batch);
  return session.Finish(backbone_->Predict(batch, enc, Tensor(), rng, sample));
}

int64_t VanillaMethod::predict_encode_width() const {
  return backbone_->config().hidden_dim + backbone_->config().social_dim;
}

Tensor VanillaMethod::PredictEncode(const data::Batch& batch) const {
  NoGradGuard no_grad;
  plan::PredictSession session(&plan_cache_, EncodePlanKey(batch),
                               PredictPlanInputs(batch), /*rng=*/nullptr);
  if (session.CanReplay()) return session.Replay();
  return session.Finish(PackEncodeResult(backbone_->Encode(batch)));
}

Tensor VanillaMethod::PredictDecode(const data::Batch& batch, const Tensor& enc_rows,
                                    Rng* rng, bool sample) const {
  NoGradGuard no_grad;
  plan::PredictSession session(&plan_cache_, DecodePlanKey(batch, sample),
                               DecodePlanInputs(batch, enc_rows), rng);
  if (session.CanReplay()) return session.Replay();
  models::EncodeResult enc =
      UnpackEncodeResult(enc_rows, backbone_->config().hidden_dim);
  return session.Finish(backbone_->Predict(batch, enc, Tensor(), rng, sample));
}

std::unique_ptr<Method> VanillaMethod::CloneForServing() const {
  // Same construction path as a training replica (stored ctor args), then the
  // served weights overwrite the fresh initialization.
  auto clone = std::make_unique<VanillaMethod>(kind_, config_, init_seed_);
  clone->backbone_->CopyParametersFrom(*backbone_);
  return clone;
}

CounterMethod::CounterMethod(models::BackboneKind kind,
                             const models::BackboneConfig& config, uint64_t init_seed)
    : kind_(kind), config_(config), init_seed_(init_seed) {
  Rng rng(init_seed);
  config_.extra_dim = 0;
  backbone_ = models::MakeBackbone(kind, config_, &rng);
  backbone_->eval();  // see VanillaMethod: serve in inference mode by default
}

void CounterMethod::Train(const data::DomainGeneralizationData& dgd,
                          const TrainConfig& config) {
  nn::Adam opt(config.lr);
  opt.AddGroup(backbone_->Parameters());
  ReplicaTrainer<models::Backbone> rt = MakeReplicaTrainer(
      backbone_.get(), &train_replicas_, &opt, config.accum_steps,
      config.grad_clip,
      [this] { return MakeReplica(kind_, config_, init_seed_); });
  ParallelTrainer& trainer = *rt.trainer;
  for (models::Backbone* m : rt.models) m->train();

  data::SequenceConfig seq_cfg;
  data::BatchLoader loader(&dgd.pooled_train, config.batch_size, seq_cfg,
                           config.seed + 1, /*shuffle=*/true);
  uint64_t task_index = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    loader.Reset();
    data::Batch batch;
    int batches = 0;
    while (loader.Next(&batch)) {
      if (config.max_batches_per_epoch > 0 && batches >= config.max_batches_per_epoch) {
        break;
      }
      // Counterfactual intervention: external factors removed everywhere.
      data::Batch cf = CounterfactualBatch(batch);
      const uint64_t seed = TaskSeed(config.seed, task_index++);
      trainer.Submit([&rt, cf, seed](int slot) {
        Rng rng(seed);
        models::Backbone* bb = rt.models[slot];
        models::EncodeResult enc = bb->Encode(cf);
        bb->Loss(cf, enc, Tensor(), &rng).Backward();
      });
      ++batches;
    }
    trainer.Flush();
  }
  trainer.Flush();
  for (models::Backbone* m : rt.models) m->eval();
  plan_cache_.Invalidate();  // fused plans packed the pre-training weights
  BumpWeightsVersion();      // serving-side encoder caches must drop too
}

Tensor CounterMethod::Predict(const data::Batch& batch, Rng* rng, bool sample) const {
  NoGradGuard no_grad;
  plan::PredictSession session(&plan_cache_, PredictPlanKey(batch, sample),
                               PredictPlanInputs(batch), rng);
  if (session.CanReplay()) return session.Replay();
  // The counterfactual neighbor fields are fresh Zeros tensors each call;
  // a capture retains them as external all-zero constants, which replays
  // bit-identically (their contents never depend on the batch).
  data::Batch cf = CounterfactualBatch(batch);
  models::EncodeResult enc = backbone_->Encode(cf);
  return session.Finish(backbone_->Predict(cf, enc, Tensor(), rng, sample));
}

int64_t CounterMethod::predict_encode_width() const {
  return backbone_->config().hidden_dim + backbone_->config().social_dim;
}

Tensor CounterMethod::PredictEncode(const data::Batch& batch) const {
  NoGradGuard no_grad;
  plan::PredictSession session(&plan_cache_, EncodePlanKey(batch),
                               PredictPlanInputs(batch), /*rng=*/nullptr);
  if (session.CanReplay()) return session.Replay();
  // Encode the counterfactual scene, mirroring Predict. The output depends
  // only on the focal history (encode_reads_neighbors() is false).
  data::Batch cf = CounterfactualBatch(batch);
  return session.Finish(PackEncodeResult(backbone_->Encode(cf)));
}

Tensor CounterMethod::PredictDecode(const data::Batch& batch, const Tensor& enc_rows,
                                    Rng* rng, bool sample) const {
  NoGradGuard no_grad;
  plan::PredictSession session(&plan_cache_, DecodePlanKey(batch, sample),
                               DecodePlanInputs(batch, enc_rows), rng);
  if (session.CanReplay()) return session.Replay();
  // The combined Predict decodes the counterfactual batch, so the split
  // decode must too — its zeroed fields replay as all-zero constants.
  data::Batch cf = CounterfactualBatch(batch);
  models::EncodeResult enc =
      UnpackEncodeResult(enc_rows, backbone_->config().hidden_dim);
  return session.Finish(backbone_->Predict(cf, enc, Tensor(), rng, sample));
}

std::unique_ptr<Method> CounterMethod::CloneForServing() const {
  auto clone = std::make_unique<CounterMethod>(kind_, config_, init_seed_);
  clone->backbone_->CopyParametersFrom(*backbone_);
  return clone;
}

CausalMotionMethod::CausalMotionMethod(models::BackboneKind kind,
                                       const models::BackboneConfig& config,
                                       uint64_t init_seed, float invariance_weight)
    : kind_(kind),
      config_(config),
      init_seed_(init_seed),
      invariance_weight_(invariance_weight) {
  Rng rng(init_seed);
  config_.extra_dim = 0;
  backbone_ = models::MakeBackbone(kind, config_, &rng);
  backbone_->eval();  // see VanillaMethod: serve in inference mode by default
}

void CausalMotionMethod::Train(const data::DomainGeneralizationData& dgd,
                               const TrainConfig& config) {
  nn::Adam opt(config.lr);
  opt.AddGroup(backbone_->Parameters());
  ReplicaTrainer<models::Backbone> rt = MakeReplicaTrainer(
      backbone_.get(), &train_replicas_, &opt, config.accum_steps,
      config.grad_clip,
      [this] { return MakeReplica(kind_, config_, init_seed_); });
  ParallelTrainer& trainer = *rt.trainer;
  for (models::Backbone* m : rt.models) m->train();

  data::SequenceConfig seq_cfg;

  // One loader per source domain: the invariance penalty needs per-domain
  // risks within each micro-batch task, so a task carries one batch group
  // (one batch per domain) and builds the coupled V-REx loss on its replica.
  std::vector<std::unique_ptr<data::BatchLoader>> loaders;
  for (const auto& source : dgd.sources) {
    loaders.push_back(std::make_unique<data::BatchLoader>(
        &source.train, config.batch_size, seq_cfg, config.seed + loaders.size(),
        /*shuffle=*/true));
  }

  const float weight = invariance_weight_;
  uint64_t task_index = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (auto& loader : loaders) loader->Reset();
    int batches = 0;
    bool any = true;
    while (any) {
      if (config.max_batches_per_epoch > 0 && batches >= config.max_batches_per_epoch) {
        break;
      }
      any = false;
      std::vector<data::Batch> group;
      for (auto& loader : loaders) {
        data::Batch batch;
        if (!loader->Next(&batch)) continue;
        any = true;
        group.push_back(batch);
      }
      if (group.empty()) break;
      const uint64_t seed = TaskSeed(config.seed, task_index++);
      trainer.Submit([&rt, group = std::move(group), weight, seed](int slot) {
        Rng rng(seed);
        models::Backbone* bb = rt.models[slot];
        std::vector<Tensor> risks;
        for (const data::Batch& batch : group) {
          models::EncodeResult enc = bb->Encode(batch);
          risks.push_back(bb->Loss(batch, enc, Tensor(), &rng));
        }
        // Mean risk + V-REx variance penalty across domains.
        Tensor mean_risk = risks[0];
        for (size_t i = 1; i < risks.size(); ++i) mean_risk = Add(mean_risk, risks[i]);
        mean_risk = MulScalar(mean_risk, 1.0f / static_cast<float>(risks.size()));
        Tensor loss = mean_risk;
        if (risks.size() > 1) {
          Tensor var = Tensor::Scalar(0.0f);
          for (const Tensor& r : risks) var = Add(var, Square(Sub(r, mean_risk)));
          var = MulScalar(var, 1.0f / static_cast<float>(risks.size()));
          loss = Add(loss, MulScalar(var, weight));
        }
        loss.Backward();
      });
      ++batches;
    }
    trainer.Flush();
  }
  trainer.Flush();
  for (models::Backbone* m : rt.models) m->eval();
  plan_cache_.Invalidate();  // fused plans packed the pre-training weights
  BumpWeightsVersion();      // serving-side encoder caches must drop too
}

Tensor CausalMotionMethod::Predict(const data::Batch& batch, Rng* rng,
                                   bool sample) const {
  NoGradGuard no_grad;
  plan::PredictSession session(&plan_cache_, PredictPlanKey(batch, sample),
                               PredictPlanInputs(batch), rng);
  if (session.CanReplay()) return session.Replay();
  models::EncodeResult enc = backbone_->Encode(batch);
  return session.Finish(backbone_->Predict(batch, enc, Tensor(), rng, sample));
}

int64_t CausalMotionMethod::predict_encode_width() const {
  return backbone_->config().hidden_dim + backbone_->config().social_dim;
}

Tensor CausalMotionMethod::PredictEncode(const data::Batch& batch) const {
  NoGradGuard no_grad;
  plan::PredictSession session(&plan_cache_, EncodePlanKey(batch),
                               PredictPlanInputs(batch), /*rng=*/nullptr);
  if (session.CanReplay()) return session.Replay();
  return session.Finish(PackEncodeResult(backbone_->Encode(batch)));
}

Tensor CausalMotionMethod::PredictDecode(const data::Batch& batch,
                                         const Tensor& enc_rows, Rng* rng,
                                         bool sample) const {
  NoGradGuard no_grad;
  plan::PredictSession session(&plan_cache_, DecodePlanKey(batch, sample),
                               DecodePlanInputs(batch, enc_rows), rng);
  if (session.CanReplay()) return session.Replay();
  models::EncodeResult enc =
      UnpackEncodeResult(enc_rows, backbone_->config().hidden_dim);
  return session.Finish(backbone_->Predict(batch, enc, Tensor(), rng, sample));
}

std::unique_ptr<Method> CausalMotionMethod::CloneForServing() const {
  auto clone = std::make_unique<CausalMotionMethod>(kind_, config_, init_seed_,
                                                    invariance_weight_);
  clone->backbone_->CopyParametersFrom(*backbone_);
  return clone;
}

}  // namespace core
}  // namespace adaptraj
