#include "core/baselines.h"

#include <algorithm>
#include <cmath>

#include "nn/optimizer.h"

namespace adaptraj {
namespace core {

using namespace ops;  // NOLINT(build/namespaces)

data::Batch CounterfactualBatch(const data::Batch& batch) {
  data::Batch cf = batch;  // tensors share storage; replace neighbor fields
  cf.nbr_mask = Tensor::Zeros(batch.nbr_mask.shape());
  cf.nbr_offsets = Tensor::Zeros(batch.nbr_offsets.shape());
  cf.nbr_steps.clear();
  for (const Tensor& step : batch.nbr_steps) {
    cf.nbr_steps.push_back(Tensor::Zeros(step.shape()));
  }
  return cf;
}

namespace {

/// Runs one optimization step on `loss` (a cheap handle, passed by value).
void StepOptimizer(nn::Optimizer* opt, models::Backbone* backbone, Tensor loss,
                   float grad_clip) {
  loss.Backward();
  nn::ClipGradNorm(backbone->Parameters(), grad_clip);
  opt->Step();
}

}  // namespace

VanillaMethod::VanillaMethod(models::BackboneKind kind,
                             const models::BackboneConfig& config, uint64_t init_seed) {
  Rng rng(init_seed);
  models::BackboneConfig cfg = config;
  cfg.extra_dim = 0;
  backbone_ = models::MakeBackbone(kind, cfg, &rng);
}

void VanillaMethod::Train(const data::DomainGeneralizationData& dgd,
                          const TrainConfig& config) {
  nn::Adam opt(config.lr);
  opt.AddGroup(backbone_->Parameters());
  Rng rng(config.seed);
  data::SequenceConfig seq_cfg;
  data::BatchLoader loader(&dgd.pooled_train, config.batch_size, seq_cfg,
                           config.seed + 1, /*shuffle=*/true);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    loader.Reset();
    data::Batch batch;
    int batches = 0;
    while (loader.Next(&batch)) {
      if (config.max_batches_per_epoch > 0 && batches >= config.max_batches_per_epoch) {
        break;
      }
      opt.ZeroGrad();
      models::EncodeResult enc = backbone_->Encode(batch);
      Tensor loss = backbone_->Loss(batch, enc, Tensor(), &rng);
      StepOptimizer(&opt, backbone_.get(), loss, config.grad_clip);
      ++batches;
    }
  }
}

Tensor VanillaMethod::Predict(const data::Batch& batch, Rng* rng, bool sample) const {
  models::EncodeResult enc = backbone_->Encode(batch);
  return backbone_->Predict(batch, enc, Tensor(), rng, sample);
}

CounterMethod::CounterMethod(models::BackboneKind kind,
                             const models::BackboneConfig& config, uint64_t init_seed) {
  Rng rng(init_seed);
  models::BackboneConfig cfg = config;
  cfg.extra_dim = 0;
  backbone_ = models::MakeBackbone(kind, cfg, &rng);
}

void CounterMethod::Train(const data::DomainGeneralizationData& dgd,
                          const TrainConfig& config) {
  nn::Adam opt(config.lr);
  opt.AddGroup(backbone_->Parameters());
  Rng rng(config.seed);
  data::SequenceConfig seq_cfg;
  data::BatchLoader loader(&dgd.pooled_train, config.batch_size, seq_cfg,
                           config.seed + 1, /*shuffle=*/true);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    loader.Reset();
    data::Batch batch;
    int batches = 0;
    while (loader.Next(&batch)) {
      if (config.max_batches_per_epoch > 0 && batches >= config.max_batches_per_epoch) {
        break;
      }
      opt.ZeroGrad();
      // Counterfactual intervention: external factors removed everywhere.
      data::Batch cf = CounterfactualBatch(batch);
      models::EncodeResult enc = backbone_->Encode(cf);
      Tensor loss = backbone_->Loss(cf, enc, Tensor(), &rng);
      StepOptimizer(&opt, backbone_.get(), loss, config.grad_clip);
      ++batches;
    }
  }
}

Tensor CounterMethod::Predict(const data::Batch& batch, Rng* rng, bool sample) const {
  data::Batch cf = CounterfactualBatch(batch);
  models::EncodeResult enc = backbone_->Encode(cf);
  return backbone_->Predict(cf, enc, Tensor(), rng, sample);
}

CausalMotionMethod::CausalMotionMethod(models::BackboneKind kind,
                                       const models::BackboneConfig& config,
                                       uint64_t init_seed, float invariance_weight)
    : invariance_weight_(invariance_weight) {
  Rng rng(init_seed);
  models::BackboneConfig cfg = config;
  cfg.extra_dim = 0;
  backbone_ = models::MakeBackbone(kind, cfg, &rng);
}

void CausalMotionMethod::Train(const data::DomainGeneralizationData& dgd,
                               const TrainConfig& config) {
  nn::Adam opt(config.lr);
  opt.AddGroup(backbone_->Parameters());
  Rng rng(config.seed);
  data::SequenceConfig seq_cfg;

  // One loader per source domain: the invariance penalty needs per-domain
  // risks within each optimization step.
  std::vector<std::unique_ptr<data::BatchLoader>> loaders;
  for (const auto& source : dgd.sources) {
    loaders.push_back(std::make_unique<data::BatchLoader>(
        &source.train, config.batch_size, seq_cfg, config.seed + loaders.size(),
        /*shuffle=*/true));
  }

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (auto& loader : loaders) loader->Reset();
    int batches = 0;
    bool any = true;
    while (any) {
      if (config.max_batches_per_epoch > 0 && batches >= config.max_batches_per_epoch) {
        break;
      }
      any = false;
      std::vector<Tensor> risks;
      opt.ZeroGrad();
      for (auto& loader : loaders) {
        data::Batch batch;
        if (!loader->Next(&batch)) continue;
        any = true;
        models::EncodeResult enc = backbone_->Encode(batch);
        risks.push_back(backbone_->Loss(batch, enc, Tensor(), &rng));
      }
      if (risks.empty()) break;
      // Mean risk + V-REx variance penalty across domains.
      Tensor mean_risk = risks[0];
      for (size_t i = 1; i < risks.size(); ++i) mean_risk = Add(mean_risk, risks[i]);
      mean_risk = MulScalar(mean_risk, 1.0f / static_cast<float>(risks.size()));
      Tensor loss = mean_risk;
      if (risks.size() > 1) {
        Tensor var = Tensor::Scalar(0.0f);
        for (const Tensor& r : risks) var = Add(var, Square(Sub(r, mean_risk)));
        var = MulScalar(var, 1.0f / static_cast<float>(risks.size()));
        loss = Add(loss, MulScalar(var, invariance_weight_));
      }
      loss.Backward();
      nn::ClipGradNorm(backbone_->Parameters(), config.grad_clip);
      opt.Step();
      ++batches;
    }
  }
}

Tensor CausalMotionMethod::Predict(const data::Batch& batch, Rng* rng,
                                   bool sample) const {
  models::EncodeResult enc = backbone_->Encode(batch);
  return backbone_->Predict(batch, enc, Tensor(), rng, sample);
}

}  // namespace core
}  // namespace adaptraj
