#include "core/adaptraj_model.h"

#include "nn/losses.h"

namespace adaptraj {
namespace core {

using namespace ops;  // NOLINT(build/namespaces)

Tensor AdapTrajFeatures::Extra() const { return Concat({inv, spec}, 1); }

AdapTrajModel::AdapTrajModel(models::BackboneKind kind,
                             models::BackboneConfig backbone_config,
                             const AdapTrajConfig& config, Rng* rng)
    : config_(config) {
  ADAPTRAJ_CHECK_MSG(config.num_source_domains >= 1, "need at least one source domain");
  backbone_config.extra_dim = config_.extra_dim();
  backbone_ = models::MakeBackbone(kind, backbone_config, rng);
  RegisterModule("backbone", backbone_.get());

  const int64_t h = backbone_config.hidden_dim;
  const int64_t p = backbone_config.social_dim;
  const int64_t f = config_.feature_dim;
  const int64_t fused = config_.fused_dim;

  v_ind_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{h, f}, rng,
                                     nn::Activation::kRelu, nn::Activation::kTanh);
  v_nei_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{p, f}, rng,
                                     nn::Activation::kRelu, nn::Activation::kTanh);
  v_fuse_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * f, fused}, rng,
                                      nn::Activation::kRelu, nn::Activation::kTanh);
  RegisterModule("v_ind", v_ind_.get());
  RegisterModule("v_nei", v_nei_.get());
  RegisterModule("v_fuse", v_fuse_.get());

  for (int k = 0; k < config_.num_source_domains; ++k) {
    m_ind_.push_back(std::make_unique<nn::Mlp>(std::vector<int64_t>{h, f}, rng,
                                               nn::Activation::kRelu,
                                               nn::Activation::kTanh));
    m_nei_.push_back(std::make_unique<nn::Mlp>(std::vector<int64_t>{p, f}, rng,
                                               nn::Activation::kRelu,
                                               nn::Activation::kTanh));
    RegisterModule("m_ind" + std::to_string(k), m_ind_.back().get());
    RegisterModule("m_nei" + std::to_string(k), m_nei_.back().get());
  }
  m_fuse_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * f, fused}, rng,
                                      nn::Activation::kRelu, nn::Activation::kTanh);
  RegisterModule("m_fuse", m_fuse_.get());

  a_ind_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{f, f, f}, rng,
                                     nn::Activation::kRelu, nn::Activation::kTanh);
  a_nei_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{f, f, f}, rng,
                                     nn::Activation::kRelu, nn::Activation::kTanh);
  RegisterModule("a_ind", a_ind_.get());
  RegisterModule("a_nei", a_nei_.get());

  const int64_t obs_out = backbone_config.obs_len * 2;
  d_recon_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * f, h, obs_out}, rng,
                                       nn::Activation::kRelu, nn::Activation::kNone);
  d_class_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{4 * f, h, config_.num_source_domains}, rng,
      nn::Activation::kRelu, nn::Activation::kNone);
  RegisterModule("d_recon", d_recon_.get());
  RegisterModule("d_class", d_class_.get());
}

AdapTrajFeatures AdapTrajModel::ExtractFeatures(const models::EncodeResult& enc,
                                                const std::vector<int>& labels) const {
  const int64_t b = enc.h_focal.shape()[0];
  ADAPTRAJ_CHECK_EQ(static_cast<int64_t>(labels.size()), b);
  const int k_domains = config_.num_source_domains;

  AdapTrajFeatures f;
  // Invariant branch: weight-shared extractors (Eqs. 9-11).
  f.inv_ind = v_ind_->Forward(enc.h_focal);
  f.inv_nei = v_nei_->Forward(enc.pooled);
  f.inv = v_fuse_->Forward(Concat({f.inv_ind, f.inv_nei}, 1));

  // Specific branch: per-domain experts (Eqs. 17-18).
  std::vector<Tensor> expert_ind(k_domains);
  std::vector<Tensor> expert_nei(k_domains);
  for (int k = 0; k < k_domains; ++k) {
    expert_ind[k] = m_ind_[k]->Forward(enc.h_focal);  // [B, f]
    expert_nei[k] = m_nei_[k]->Forward(enc.pooled);
  }

  // Teacher path: rows with a known label route through their own expert.
  // Student path: masked rows (-1) route through the aggregator over the
  // pooled, detached expert outputs (Eqs. 21-22).
  std::vector<float> teacher_mask(b);     // 1 where label >= 0
  std::vector<std::vector<float>> expert_mask(k_domains, std::vector<float>(b, 0.0f));
  for (int64_t i = 0; i < b; ++i) {
    const int label = labels[i];
    ADAPTRAJ_CHECK_MSG(label >= -1 && label < k_domains, "bad domain label " << label);
    teacher_mask[i] = label >= 0 ? 1.0f : 0.0f;
    if (label >= 0) expert_mask[label][i] = 1.0f;
  }

  auto route = [&](const std::vector<Tensor>& experts, const nn::Mlp& aggregator) {
    // Teacher contribution: sum_k expert_k * 1[label == k].
    Tensor teacher = Tensor::Zeros({b, config_.feature_dim});
    for (int k = 0; k < k_domains; ++k) {
      Tensor mask =
          Tensor::FromVector({b, 1}, std::vector<float>(expert_mask[k]));
      teacher = Add(teacher, BroadcastMul(experts[k], mask));
    }
    // Student contribution: aggregator over pooled detached expert outputs.
    Tensor pooled_experts = experts[0].Detach();
    for (int k = 1; k < k_domains; ++k) {
      pooled_experts = Add(pooled_experts, experts[k].Detach());
    }
    Tensor student = aggregator.Forward(pooled_experts);
    std::vector<float> student_mask(b);
    for (int64_t i = 0; i < b; ++i) student_mask[i] = 1.0f - teacher_mask[i];
    Tensor t_mask = Tensor::FromVector({b, 1}, std::vector<float>(teacher_mask));
    Tensor s_mask = Tensor::FromVector({b, 1}, std::move(student_mask));
    return Add(BroadcastMul(teacher, t_mask), BroadcastMul(student, s_mask));
  };

  f.spec_ind = route(expert_ind, *a_ind_);
  f.spec_nei = route(expert_nei, *a_nei_);
  f.spec = m_fuse_->Forward(Concat({f.spec_ind, f.spec_nei}, 1));
  return f;
}

Tensor AdapTrajModel::ReconLoss(const data::Batch& batch,
                                const AdapTrajFeatures& f) const {
  Tensor recon = d_recon_->Forward(Concat({f.inv_ind, f.spec_ind}, 1));
  return nn::SimseLoss(recon, batch.obs_flat);
}

Tensor AdapTrajModel::SimilarLoss(const AdapTrajFeatures& f,
                                  const std::vector<int>& labels) const {
  // Select rows with known labels; masked rows carry no domain supervision.
  std::vector<int> kept_labels;
  std::vector<int64_t> kept_rows;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] >= 0) {
      kept_labels.push_back(labels[i]);
      kept_rows.push_back(static_cast<int64_t>(i));
    }
  }
  if (kept_labels.empty()) return Tensor::Scalar(0.0f);

  // The classifier sees the invariant branch through a gradient-reversal
  // layer (adversarial) and the specific branch directly (cooperative).
  Tensor inv_in = GradReverse(Concat({f.inv_ind, f.inv_nei}, 1), config_.grl_lambda);
  Tensor spec_in = Concat({f.spec_ind, f.spec_nei}, 1);
  Tensor features = Concat({inv_in, spec_in}, 1);

  // Row-select via a binary gather matrix [rows, B] x [B, D].
  const int64_t b = features.shape()[0];
  const int64_t rows = static_cast<int64_t>(kept_rows.size());
  Tensor gather = Tensor::Zeros({rows, b});
  for (int64_t r = 0; r < rows; ++r) gather.data()[r * b + kept_rows[r]] = 1.0f;
  Tensor selected = MatMul(gather, features);

  Tensor logits = d_class_->Forward(selected);
  return nn::CrossEntropyLoss(logits, kept_labels);
}

Tensor AdapTrajModel::DiffLoss(const AdapTrajFeatures& f) const {
  return Add(nn::OrthogonalityLoss(f.inv_ind, f.spec_ind),
             nn::OrthogonalityLoss(f.inv_nei, f.spec_nei));
}

Tensor AdapTrajModel::OursLoss(const data::Batch& batch, const AdapTrajFeatures& f,
                               const std::vector<int>& labels) const {
  Tensor loss = MulScalar(ReconLoss(batch, f), config_.alpha);
  loss = Add(loss, MulScalar(DiffLoss(f), config_.beta));
  loss = Add(loss, MulScalar(SimilarLoss(f, labels), config_.gamma));
  return loss;
}

std::vector<Tensor> AdapTrajModel::BackboneAndExtractorParams() const {
  std::vector<Tensor> params = backbone_->Parameters();
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(v_ind_.get()), static_cast<const nn::Module*>(v_nei_.get()),
        static_cast<const nn::Module*>(v_fuse_.get()),
        static_cast<const nn::Module*>(m_fuse_.get()),
        static_cast<const nn::Module*>(d_recon_.get()),
        static_cast<const nn::Module*>(d_class_.get())}) {
    auto sub = m->Parameters();
    params.insert(params.end(), sub.begin(), sub.end());
  }
  for (const auto& m : m_ind_) {
    auto sub = m->Parameters();
    params.insert(params.end(), sub.begin(), sub.end());
  }
  for (const auto& m : m_nei_) {
    auto sub = m->Parameters();
    params.insert(params.end(), sub.begin(), sub.end());
  }
  return params;
}

std::vector<Tensor> AdapTrajModel::AggregatorParams() const {
  std::vector<Tensor> params = a_ind_->Parameters();
  auto sub = a_nei_->Parameters();
  params.insert(params.end(), sub.begin(), sub.end());
  return params;
}

}  // namespace core
}  // namespace adaptraj
