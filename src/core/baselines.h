// Baseline learning methods from the paper's evaluation:
//   vanilla      - the backbone trained on pooled source data (Eq. 8 only)
//   Counter      - counterfactual analysis removing external-factor
//                  dependence (Chen et al., ICCV 2021)
//   CausalMotion - single-source invariance-loss method (Liu et al., CVPR
//                  2022), reproduced with a V-REx-style cross-domain risk
//                  variance penalty (see DESIGN.md substitutions)

#ifndef ADAPTRAJ_CORE_BASELINES_H_
#define ADAPTRAJ_CORE_BASELINES_H_

#include <memory>
#include <vector>

#include "core/method.h"
#include "models/backbone.h"

namespace adaptraj {
namespace core {

/// Returns a copy of `batch` with every neighbor masked out (the
/// counterfactual scene in which external factors are absent).
data::Batch CounterfactualBatch(const data::Batch& batch);

/// Backbone trained on pooled multi-source data with its own loss.
class VanillaMethod : public Method {
 public:
  VanillaMethod(models::BackboneKind kind, const models::BackboneConfig& config,
                uint64_t init_seed);

  std::string name() const override { return "vanilla"; }
  void Train(const data::DomainGeneralizationData& dgd,
             const TrainConfig& config) override;
  Tensor Predict(const data::Batch& batch, Rng* rng, bool sample) const override;
  int64_t predict_encode_width() const override;
  Tensor PredictEncode(const data::Batch& batch) const override;
  Tensor PredictDecode(const data::Batch& batch, const Tensor& enc_rows, Rng* rng,
                       bool sample) const override;
  bool reentrant_predict() const override { return backbone_->reentrant_predict(); }
  std::unique_ptr<Method> CloneForServing() const override;

  models::Backbone& backbone() { return *backbone_; }

 private:
  models::BackboneKind kind_;
  models::BackboneConfig config_;
  uint64_t init_seed_;
  std::unique_ptr<models::Backbone> backbone_;
  /// Cached scene-parallel training replicas (see MakeBackboneSlots).
  std::vector<std::unique_ptr<models::Backbone>> train_replicas_;
};

/// Counterfactual baseline: both training and inference replace the scene
/// with its counterfactual (neighbors removed), so predictions depend only
/// on the focal agent's own history. This removes environment bias at the
/// cost of all legitimate interaction signal - the failure mode the paper
/// demonstrates in multi-source settings (Tabs. III-IV).
class CounterMethod : public Method {
 public:
  CounterMethod(models::BackboneKind kind, const models::BackboneConfig& config,
                uint64_t init_seed);

  std::string name() const override { return "Counter"; }
  void Train(const data::DomainGeneralizationData& dgd,
             const TrainConfig& config) override;
  Tensor Predict(const data::Batch& batch, Rng* rng, bool sample) const override;
  int64_t predict_encode_width() const override;
  /// Counter encodes the counterfactual scene (neighbors zeroed), so the
  /// encoder output never depends on the batch's neighbor fields: a content
  /// cache can key on the focal history alone.
  bool encode_reads_neighbors() const override { return false; }
  Tensor PredictEncode(const data::Batch& batch) const override;
  Tensor PredictDecode(const data::Batch& batch, const Tensor& enc_rows, Rng* rng,
                       bool sample) const override;
  bool reentrant_predict() const override { return backbone_->reentrant_predict(); }
  std::unique_ptr<Method> CloneForServing() const override;

 private:
  models::BackboneKind kind_;
  models::BackboneConfig config_;
  uint64_t init_seed_;
  std::unique_ptr<models::Backbone> backbone_;
  /// Cached scene-parallel training replicas (see MakeBackboneSlots).
  std::vector<std::unique_ptr<models::Backbone>> train_replicas_;
};

/// Invariance-loss baseline: per-domain empirical risks plus a strong
/// penalty on their variance across source domains. With a single source
/// the penalty vanishes; with several sources it suppresses domain-specific
/// signal and induces the negative-transfer degradation of Tab. III.
class CausalMotionMethod : public Method {
 public:
  CausalMotionMethod(models::BackboneKind kind, const models::BackboneConfig& config,
                     uint64_t init_seed, float invariance_weight = 10.0f);

  std::string name() const override { return "CausalMotion"; }
  void Train(const data::DomainGeneralizationData& dgd,
             const TrainConfig& config) override;
  Tensor Predict(const data::Batch& batch, Rng* rng, bool sample) const override;
  int64_t predict_encode_width() const override;
  Tensor PredictEncode(const data::Batch& batch) const override;
  Tensor PredictDecode(const data::Batch& batch, const Tensor& enc_rows, Rng* rng,
                       bool sample) const override;
  bool reentrant_predict() const override { return backbone_->reentrant_predict(); }
  std::unique_ptr<Method> CloneForServing() const override;

 private:
  models::BackboneKind kind_;
  models::BackboneConfig config_;
  uint64_t init_seed_;
  std::unique_ptr<models::Backbone> backbone_;
  /// Cached scene-parallel training replicas (see MakeBackboneSlots).
  std::vector<std::unique_ptr<models::Backbone>> train_replicas_;
  float invariance_weight_;
};

}  // namespace core
}  // namespace adaptraj

#endif  // ADAPTRAJ_CORE_BASELINES_H_
