// Scene-parallel training driver with deterministic gradient reduction.
//
// Alg. 1 (and every baseline) used to run one optimizer step per batch, one
// batch at a time: at the model sizes of the paper's tables (H = 32..128,
// B = 32) the per-batch graphs are too small to saturate cores from inside a
// single GEMM, so the thread pool under the kernels mostly idles. The
// ParallelTrainer moves the parallelism up one level — across scenes —
// without giving up reproducibility:
//
//   - Each optimizer step consumes a GROUP of `accum_steps` micro-batches.
//     Micro-batch i of a group always runs on replica slot i: slot 0 is the
//     master model the optimizer owns, slots 1..A-1 are structurally
//     identical replicas whose parameters are overwritten from the master
//     after every step (read-only within a step).
//   - The group's tasks execute concurrently on the training-worker pool
//     (parallel::RunTaskGroup, ADAPTRAJ_TRAIN_WORKERS). Each task builds its
//     own autograd graph on its own replica and backpropagates into that
//     replica's gradient buffers (thread-local buffer pool, no sharing).
//   - Gradients are then reduced into the master in FIXED SLOT ORDER
//     (kernels::ReduceGradSum: g = (g_0 + g_1) + g_2 ... scaled by 1/group),
//     clipped, and applied by one optimizer step.
//
// Determinism: which micro-batch lands in which group position depends only
// on the data-loader order, and the reduction order depends only on those
// positions — never on which worker executed what or how execution
// interleaved. Combined with the bit-deterministic kernels (see parallel.h),
// loss curves and final weights are bit-identical for any
// ADAPTRAJ_TRAIN_WORKERS value at a fixed seed and fixed accum_steps.
//
// RNG discipline: a shared sequential Rng cannot be consumed from concurrent
// tasks, so stochastic task bodies draw from their own Rng seeded by
// TaskSeed(base_seed, task_index) — the task index is a main-thread counter,
// making every stream worker-count independent.

#ifndef ADAPTRAJ_CORE_PARALLEL_TRAINER_H_
#define ADAPTRAJ_CORE_PARALLEL_TRAINER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace adaptraj {
namespace core {

/// Deterministic per-task RNG seed: splitmix64 of a base seed and a
/// monotonically increasing task index assigned on the main thread.
inline uint64_t TaskSeed(uint64_t base, uint64_t task_index) {
  uint64_t z = base + 0x9E3779B97F4A7C15ull * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Drives data-parallel training steps for one optimizer. See the file
/// comment for the execution and determinism model.
class ParallelTrainer {
 public:
  struct Options {
    /// Micro-batches per optimizer step (the number of replica slots).
    int accum_steps = 4;
    /// Max global grad-norm applied to the reduced gradient before stepping.
    float grad_clip = 5.0f;
  };

  /// `slot_params[s]` is the full parameter list of replica s; all lists
  /// must be parallel (same order and shapes). Slot 0 is the master: the
  /// optimizer must have been built over (groups of) exactly these tensors.
  /// The constructor broadcasts the master's values into every replica.
  ParallelTrainer(nn::Optimizer* opt,
                  std::vector<std::vector<Tensor>> slot_params,
                  const Options& options);

  /// Number of replica slots (== accum_steps).
  int num_slots() const { return static_cast<int>(slots_.size()); }

  /// Queues one micro-batch. `task(slot)` must build the loss on replica
  /// `slot`'s modules and call Backward() on it; it runs on an arbitrary
  /// training worker, so it must touch nothing but that replica (and
  /// read-only shared inputs). Automatically flushes a full group.
  void Submit(std::function<void(int slot)> task);

  /// Runs any pending partial group (scaled by 1/pending). Call at epoch
  /// boundaries and before reading or changing optimizer state (e.g. the
  /// Alg.-1 learning-rate phase scales).
  void Flush();

  /// Optimizer steps taken so far.
  int64_t steps() const { return steps_; }

 private:
  void RunGroup();
  /// Copies the master's parameter values into every replica slot.
  void Broadcast();

  nn::Optimizer* opt_;
  std::vector<std::vector<Tensor>> slots_;
  Options options_;
  std::vector<std::function<void(int slot)>> pending_;
  int64_t steps_ = 0;
};

/// A ParallelTrainer plus the per-slot model pointers its task bodies need.
/// models[slot] is the replica a task submitted at that slot must run on
/// (models[0] == the master the optimizer owns).
template <typename Model>
struct ReplicaTrainer {
  std::vector<Model*> models;
  std::unique_ptr<ParallelTrainer> trainer;
};

/// The one place the replica/trainer scaffold lives for every Train()
/// implementation: clamps accum_steps, grows `cache` with `make_replica()`
/// (replicas are reused across Train() calls — the trainer immediately
/// overwrites their weights from `master`, so cached values never leak
/// between runs), wires slot 0 to the master, and builds the trainer.
template <typename Model, typename Factory>
ReplicaTrainer<Model> MakeReplicaTrainer(Model* master,
                                         std::vector<std::unique_ptr<Model>>* cache,
                                         nn::Optimizer* opt, int accum_steps,
                                         float grad_clip, Factory make_replica) {
  const int accum = std::max(1, accum_steps);
  while (static_cast<int>(cache->size()) < accum - 1) {
    cache->push_back(make_replica());
  }
  ReplicaTrainer<Model> rt;
  rt.models.push_back(master);
  std::vector<std::vector<Tensor>> slot_params = {master->Parameters()};
  for (int i = 1; i < accum; ++i) {
    rt.models.push_back((*cache)[i - 1].get());
    slot_params.push_back((*cache)[i - 1]->Parameters());
  }
  ParallelTrainer::Options options;
  options.accum_steps = accum;
  options.grad_clip = grad_clip;
  rt.trainer =
      std::make_unique<ParallelTrainer>(opt, std::move(slot_params), options);
  return rt;
}

}  // namespace core
}  // namespace adaptraj

#endif  // ADAPTRAJ_CORE_PARALLEL_TRAINER_H_
