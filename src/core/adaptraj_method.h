// AdapTraj learning method: the plug-and-play framework trained with the
// three-step procedure of Alg. 1.

#ifndef ADAPTRAJ_CORE_ADAPTRAJ_METHOD_H_
#define ADAPTRAJ_CORE_ADAPTRAJ_METHOD_H_

#include <memory>

#include "core/adaptraj_model.h"
#include "core/method.h"
#include "nn/optimizer.h"

namespace adaptraj {
namespace core {

/// Ablation variants of Tab. VII.
enum class AdapTrajVariant {
  kFull,         // "ours"
  kNoSpecific,   // w/o specific: H^s zeroed
  kNoInvariant,  // w/o invariant: H^i zeroed
};

/// Printable variant name.
std::string AdapTrajVariantName(AdapTrajVariant v);

/// Alg.-1 schedule and loss weights on top of the shared TrainConfig.
struct AdapTrajTrainConfig {
  /// Fraction of epochs completing step 1 (e_start / e_total).
  float start_fraction = 0.5f;
  /// Fraction of epochs completing step 2 (e_end / e_total).
  float end_fraction = 0.75f;
  /// Aggregator ratio sigma: probability of masking a domain's label.
  float sigma = 0.5f;
  /// Learning-rate fractions for steps 2-3 (Alg. 1 lines 13-14, 25).
  float f_low = 0.5f;
  float f_high = 1.0f;
  /// Domain weights delta (step 1) and delta' (steps 2-3), Eqs. 23/25.
  float delta = 0.2f;
  float delta_prime = 0.1f;
};

/// The AdapTraj method: wraps AdapTrajModel and implements Alg. 1.
class AdapTrajMethod : public Method {
 public:
  AdapTrajMethod(models::BackboneKind kind, const models::BackboneConfig& backbone_config,
                 const AdapTrajConfig& model_config, uint64_t init_seed,
                 AdapTrajVariant variant = AdapTrajVariant::kFull,
                 const AdapTrajTrainConfig& schedule = AdapTrajTrainConfig());

  std::string name() const override { return "AdapTraj"; }
  void Train(const data::DomainGeneralizationData& dgd,
             const TrainConfig& config) override;
  Tensor Predict(const data::Batch& batch, Rng* rng, bool sample) const override;
  int64_t predict_encode_width() const override;
  Tensor PredictEncode(const data::Batch& batch) const override;
  Tensor PredictDecode(const data::Batch& batch, const Tensor& enc_rows, Rng* rng,
                       bool sample) const override;
  bool reentrant_predict() const override {
    return model_->backbone().reentrant_predict();
  }
  std::unique_ptr<Method> CloneForServing() const override;

  AdapTrajModel& model() { return *model_; }
  const AdapTrajTrainConfig& schedule() const { return schedule_; }

 private:
  /// Applies the ablation variant to extracted features.
  AdapTrajFeatures ApplyVariant(AdapTrajFeatures f) const;

  /// Builds the Alg.-1 step loss (L_base + delta * L_ours) for one batch on
  /// the given model replica and backpropagates it. Thread-safe across
  /// distinct replicas (the ParallelTrainer task body).
  void MicroBatchBackward(AdapTrajModel* model, const data::Batch& batch,
                          const std::vector<int>& labels, float delta,
                          Rng* rng) const;

  // Construction arguments, kept to build training replicas.
  models::BackboneKind kind_;
  models::BackboneConfig backbone_config_;
  AdapTrajConfig model_config_;
  uint64_t init_seed_;

  std::unique_ptr<AdapTrajModel> model_;
  /// Replica models for the scene-parallel trainer, grown lazily to
  /// accum_steps-1 and reused across Train() calls (their weights are
  /// overwritten from model_ by the trainer's broadcast; caching skips the
  /// dead re-initialization on repeated training runs).
  std::vector<std::unique_ptr<AdapTrajModel>> train_replicas_;
  AdapTrajVariant variant_;
  AdapTrajTrainConfig schedule_;
};

}  // namespace core
}  // namespace adaptraj

#endif  // ADAPTRAJ_CORE_ADAPTRAJ_METHOD_H_
