// AdapTraj: the paper's multi-source domain-generalization framework
// (Sec. III), as a plug-and-play wrapper around any Backbone.
//
// The causal formulation models four feature types:
//   H^i_i  - domain-invariant features of the focal agent      (Eq. 9)
//   H^i_Ei - domain-invariant features of neighbor interaction (Eq. 10)
//   H^s_i  - domain-specific features of the focal agent       (Eq. 17)
//   H^s_Ei - domain-specific features of neighbor interaction  (Eq. 18)
// fused into H^i (Eq. 11) and H^s (Eq. 19) and appended to the backbone's
// decoder conditioning.
//
// Domain-invariant extractors share weights across domains; domain-specific
// extractors are per-source-domain experts; the domain-specific aggregator
// (A_ind/A_nei, Eqs. 21-22) is a student that synthesizes specific features
// from the pooled expert outputs when the domain label is masked or unknown
// (always the case for the unseen target domain).

#ifndef ADAPTRAJ_CORE_ADAPTRAJ_MODEL_H_
#define ADAPTRAJ_CORE_ADAPTRAJ_MODEL_H_

#include <memory>
#include <vector>

#include "models/backbone.h"

namespace adaptraj {
namespace core {

/// Hyperparameters of the AdapTraj framework.
struct AdapTrajConfig {
  /// Number of source domains K (one specific-extractor expert pair each).
  int num_source_domains = 3;
  /// Width of each extracted feature (H^i_i, H^i_Ei, H^s_i, H^s_Ei).
  int64_t feature_dim = 16;
  /// Width of the fused features H^i and H^s.
  int64_t fused_dim = 16;
  /// Loss weights (paper Sec. IV-A: alpha=0.01, beta=0.075, gamma=0.25).
  float alpha = 0.01f;   // L_recon
  float beta = 0.075f;   // L_diff
  float gamma = 0.25f;   // L_similar
  /// Gradient-reversal strength applied to the invariant branch inside the
  /// domain classifier (realizes the adversarial part of L_similar).
  float grl_lambda = 0.5f;

  /// Conditioning width handed to the backbone: [H^i ; H^s].
  int64_t extra_dim() const { return 2 * fused_dim; }
};

/// Per-batch features extracted by the framework.
struct AdapTrajFeatures {
  Tensor inv_ind;   // H^i_i  [B, feature_dim]
  Tensor inv_nei;   // H^i_Ei [B, feature_dim]
  Tensor inv;       // H^i    [B, fused_dim]
  Tensor spec_ind;  // H^s_i  [B, feature_dim]
  Tensor spec_nei;  // H^s_Ei [B, feature_dim]
  Tensor spec;      // H^s    [B, fused_dim]

  /// Decoder conditioning [H^i ; H^s], [B, 2*fused_dim].
  Tensor Extra() const;
};

/// The AdapTraj model: backbone + extractors + aggregator + auxiliary heads.
class AdapTrajModel : public nn::Module {
 public:
  AdapTrajModel(models::BackboneKind kind, models::BackboneConfig backbone_config,
                const AdapTrajConfig& config, Rng* rng);

  /// Extracts the four feature types for a batch.
  ///
  /// `labels` selects the specific-extractor expert per sequence: label k in
  /// [0, K) routes through expert k (teacher path); label -1 (masked or
  /// unseen domain) routes through the aggregator over all experts' pooled,
  /// detached outputs (student path, Eqs. 21-22).
  AdapTrajFeatures ExtractFeatures(const models::EncodeResult& enc,
                                   const std::vector<int>& labels) const;

  /// Reconstruction loss L_recon (Eqs. 12-14): D_recon must rebuild the
  /// observed trajectory from [H^i_i ; H^s_i] using the scale-invariant MSE.
  Tensor ReconLoss(const data::Batch& batch, const AdapTrajFeatures& f) const;

  /// Domain similarity loss L_similar (Eqs. 15-16): D_class predicts the
  /// domain from all four features. The invariant branch passes through a
  /// gradient-reversal layer so that training makes H^i domain-confusable
  /// while H^s stays domain-identifiable. Rows with label -1 are excluded.
  Tensor SimilarLoss(const AdapTrajFeatures& f, const std::vector<int>& labels) const;

  /// Difference loss L_diff (Eq. 20): soft orthogonality between invariant
  /// and specific features of both branches.
  Tensor DiffLoss(const AdapTrajFeatures& f) const;

  /// Combined auxiliary loss L_ours (Eq. 24).
  Tensor OursLoss(const data::Batch& batch, const AdapTrajFeatures& f,
                  const std::vector<int>& labels) const;

  /// Underlying backbone (built with extra_dim = config.extra_dim()).
  models::Backbone& backbone() { return *backbone_; }
  const models::Backbone& backbone() const { return *backbone_; }

  const AdapTrajConfig& config() const { return config_; }

  /// Parameter groups for the Alg.-1 phase schedule.
  std::vector<Tensor> BackboneAndExtractorParams() const;
  std::vector<Tensor> AggregatorParams() const;

 private:
  AdapTrajConfig config_;
  std::unique_ptr<models::Backbone> backbone_;

  // Domain-invariant extractor (shared weights): V_ind, V_nei, V_fuse.
  std::unique_ptr<nn::Mlp> v_ind_;
  std::unique_ptr<nn::Mlp> v_nei_;
  std::unique_ptr<nn::Mlp> v_fuse_;

  // Domain-specific extractor experts {M^k_ind}, {M^k_nei} and M_fuse.
  std::vector<std::unique_ptr<nn::Mlp>> m_ind_;
  std::vector<std::unique_ptr<nn::Mlp>> m_nei_;
  std::unique_ptr<nn::Mlp> m_fuse_;

  // Domain-specific aggregator students A_ind, A_nei.
  std::unique_ptr<nn::Mlp> a_ind_;
  std::unique_ptr<nn::Mlp> a_nei_;

  // Auxiliary heads: reconstruction decoder and domain classifier.
  std::unique_ptr<nn::Mlp> d_recon_;
  std::unique_ptr<nn::Mlp> d_class_;
};

}  // namespace core
}  // namespace adaptraj

#endif  // ADAPTRAJ_CORE_ADAPTRAJ_MODEL_H_
