// Learning-method interface: a trained predictor the evaluation harness can
// query, plus the shared training configuration.

#ifndef ADAPTRAJ_CORE_METHOD_H_
#define ADAPTRAJ_CORE_METHOD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "data/batch.h"
#include "data/multi_domain.h"
#include "tensor/plan.h"

namespace adaptraj {
namespace core {

/// Optimization settings shared by every learning method.
struct TrainConfig {
  float lr = 3e-3f;
  int epochs = 24;
  int batch_size = 32;
  /// Caps batches per epoch (0 = full pass); keeps benches fast.
  int max_batches_per_epoch = 0;
  float grad_clip = 5.0f;
  uint64_t seed = 7;
  /// Micro-batches whose gradients are summed (in fixed micro-batch order)
  /// into one optimizer step by core::ParallelTrainer. This is the scene-
  /// level parallelism width: up to ADAPTRAJ_TRAIN_WORKERS of these
  /// micro-batches run concurrently, but the trained weights depend only on
  /// this value — never on the worker count. 1 reproduces the serial
  /// step-per-batch schedule.
  int accum_steps = 4;
};

/// A trained trajectory predictor. Implementations wrap a backbone and the
/// learning method's inference-time recipe (e.g. Counter's counterfactual
/// masking, AdapTraj's feature extraction).
class Method {
 public:
  virtual ~Method() = default;

  /// Method name as printed in the paper's tables ("vanilla", "Counter",
  /// "CausalMotion", "AdapTraj").
  virtual std::string name() const = 0;

  /// Trains on the source domains of `dgd` (never touches the target).
  virtual void Train(const data::DomainGeneralizationData& dgd,
                     const TrainConfig& config) = 0;

  /// Predicts future displacements [B, pred_len*2] for an arbitrary batch.
  /// With `sample` set, draws one of the multi-modal futures.
  ///
  /// Inference contract: the body runs under NoGradGuard — no autograd graph
  /// is recorded and the outputs are bit-identical to a grad-mode forward
  /// pass (asserted by tests/core/test_inference_mode.cpp).
  virtual Tensor Predict(const data::Batch& batch, Rng* rng, bool sample) const = 0;

  // --- Encode/decode split (cross-request encoder caching) -------------------
  //
  // Methods that can split Predict at the backbone's Encode seam expose the
  // two halves so serve::InferenceEngine's encoder cache (serve/
  // encode_cache.h) can gather cached encoder rows and run Encode only for
  // the rows it has never seen. The contract, for any batch and rng:
  //
  //   PredictDecode(batch, PredictEncode(batch), rng, sample)
  //       == Predict(batch, rng, sample)     (bit-identical)
  //
  // and PredictEncode is rng-free with row r a pure function of row r's
  // input bytes (at a fixed neighbor-slot width M), so rows computed in
  // different batches are interchangeable. All rng draws happen in the
  // decode half, in the same stream order as the combined Predict.

  /// Column count of PredictEncode's packed output (hidden_dim +
  /// social_dim for the built-in methods). 0 — the default — means the
  /// method does not support the split; callers must use Predict.
  virtual int64_t predict_encode_width() const { return 0; }

  /// False when the encoder ignores the batch's neighbor fields (Counter
  /// encodes the counterfactual scene), letting a content cache key on the
  /// focal history alone.
  virtual bool encode_reads_neighbors() const { return true; }

  /// Encoder half: packed per-scene rows [B, predict_encode_width()].
  virtual Tensor PredictEncode(const data::Batch& batch) const {
    (void)batch;
    ADAPTRAJ_CHECK_MSG(false, "PredictEncode on a method without the "
                              "encode/decode split (predict_encode_width() == 0)");
    return Tensor();
  }

  /// Decoder half over precomputed (possibly cache-gathered) encoder rows.
  virtual Tensor PredictDecode(const data::Batch& batch, const Tensor& enc_rows,
                               Rng* rng, bool sample) const {
    (void)batch;
    (void)enc_rows;
    (void)rng;
    (void)sample;
    ADAPTRAJ_CHECK_MSG(false, "PredictDecode on a method without the "
                              "encode/decode split (predict_encode_width() == 0)");
    return Tensor();
  }

  /// Monotone counter bumped by every Train(): lets a serving-side cache
  /// detect in-place weight mutation of a live method and drop entries
  /// computed under the old weights. Structural copies (CloneForServing)
  /// start at 0 — version values are comparable only on one instance.
  int64_t weights_version() const {
    return weights_version_.load(std::memory_order_acquire);
  }

  /// True when concurrent Predict() calls on this instance are safe (see
  /// models::Backbone::reentrant_predict). serve::InferenceEngine runs
  /// non-reentrant methods on private replicas (CloneForServing) — or one
  /// batch at a time when the method is not clonable.
  virtual bool reentrant_predict() const { return true; }

  /// Builds an independent serving replica: a structurally identical model
  /// tree constructed from the same configuration, with this method's
  /// current parameter values copied in (Module::CopyParametersFrom) and
  /// left in inference mode. Replica predictions are bit-identical to the
  /// original's — construction seeds only decide initial weights, which the
  /// parameter copy overwrites — so serve::ReplicaPool can run a
  /// non-reentrant Predict (LBEBM's Langevin sampler writes its model's
  /// gradient buffers) on several batches concurrently, each on a private
  /// copy. Returns nullptr when the method cannot be replicated; the built-in
  /// methods all can, the default covers external subclasses. Clones start
  /// with an empty plan cache, so a serving swap can never replay a plan
  /// holding the pre-swap weights.
  virtual std::unique_ptr<Method> CloneForServing() const { return nullptr; }

  /// Telemetry for this instance's execution-plan cache (tensor/plan.h).
  plan::CacheStats plan_stats() const { return plan_cache_.stats(); }

 protected:
  /// Per-instance plan store. Predict implementations drive it through
  /// plan::PredictSession (core/predict_plan.h keys it by batch shape);
  /// anything that mutates parameters in place — Train, a checkpoint load
  /// into a live method — must call plan_cache_.Invalidate(), because fused
  /// GEMM steps pack weight values into the compiled plan at capture time.
  /// Internally synchronized (its CacheState holds the annotated mutex —
  /// see tensor/plan.cpp), so no ADAPTRAJ_GUARDED_BY here: concurrent
  /// Predicts on a reentrant method share it safely.
  mutable plan::PlanCache plan_cache_;

  /// Called beside plan_cache_.Invalidate() wherever parameters mutate in
  /// place (the Train bodies): advances weights_version().
  void BumpWeightsVersion() {
    weights_version_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  /// Lock-free by design (read on every cached serving batch, written only
  /// by Train); the Clang thread-safety analysis treats std::atomic as
  /// unguarded, so there is deliberately no ADAPTRAJ_GUARDED_BY — the
  /// acquire/release pairing above is TSan-checked instead.
  std::atomic<int64_t> weights_version_{0};
};

}  // namespace core
}  // namespace adaptraj

#endif  // ADAPTRAJ_CORE_METHOD_H_
