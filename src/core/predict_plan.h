// Helpers binding data::Batch to the execution-plan layer (tensor/plan.h).
//
// A plan records slot identities for the batch-field tensors it was captured
// with and rebinds them on every replay, so the enumeration order here is
// part of the plan format: PredictPlanInputs must list the fields in the same
// order at capture and at replay. The key namespace is per-method (each
// core::Method owns its own PlanCache), so keys only need to pin what makes
// the op sequence unique for one method instance: every batch extent that
// shapes the graph, plus the sample flag (sampling toggles the latent-draw
// path in the decoders).

#ifndef ADAPTRAJ_CORE_PREDICT_PLAN_H_
#define ADAPTRAJ_CORE_PREDICT_PLAN_H_

#include <string>
#include <vector>

#include "data/batch.h"
#include "models/backbone.h"
#include "tensor/ops.h"
#include "tensor/plan.h"

namespace adaptraj {
namespace core {

/// Batch-field tensors in the fixed plan-input enumeration order. Fields a
/// Predict body never reads become unused input slots — harmless.
inline std::vector<const Tensor*> PredictPlanInputs(const data::Batch& batch) {
  std::vector<const Tensor*> inputs;
  inputs.reserve(batch.obs_steps.size() + batch.nbr_steps.size() +
                 batch.fut_steps.size() + 5);
  for (const Tensor& t : batch.obs_steps) inputs.push_back(&t);
  inputs.push_back(&batch.obs_flat);
  for (const Tensor& t : batch.nbr_steps) inputs.push_back(&t);
  inputs.push_back(&batch.nbr_offsets);
  inputs.push_back(&batch.nbr_mask);
  for (const Tensor& t : batch.fut_steps) inputs.push_back(&t);
  inputs.push_back(&batch.fut_flat);
  inputs.push_back(&batch.endpoint);
  return inputs;
}

/// Plan-cache key for one Predict call: every extent that shapes the op
/// sequence, plus the sample flag.
inline std::string PredictPlanKey(const data::Batch& batch, bool sample) {
  std::string key;
  key.reserve(48);
  key += "B";
  key += std::to_string(batch.batch_size);
  key += ":M";
  key += std::to_string(batch.max_neighbors);
  key += ":o";
  key += std::to_string(batch.obs_len);
  key += ":p";
  key += std::to_string(batch.pred_len);
  key += sample ? ":s1" : ":s0";
  return key;
}

// --- Encode/decode split support (Method::PredictEncode/PredictDecode) ------
//
// The split halves plan under their own keys: "e:"/"d:" prefixes keep them
// disjoint from each other and from the combined Predict's keys (which start
// with "B"). The encode key drops the sample flag (encoding never samples);
// the decode plan registers the packed encoder rows as an extra rebind-input
// so a replay picks up whatever mix of cached and fresh rows the caller
// gathered.

/// Plan key of the encoder half.
inline std::string EncodePlanKey(const data::Batch& batch) {
  return "e:" + PredictPlanKey(batch, /*sample=*/false);
}

/// Plan key of the decoder half.
inline std::string DecodePlanKey(const data::Batch& batch, bool sample) {
  return "d:" + PredictPlanKey(batch, sample);
}

/// Decode-plan inputs: the batch fields plus the packed encoder rows.
inline std::vector<const Tensor*> DecodePlanInputs(const data::Batch& batch,
                                                   const Tensor& enc_rows) {
  std::vector<const Tensor*> inputs = PredictPlanInputs(batch);
  inputs.push_back(&enc_rows);
  return inputs;
}

/// Packs an EncodeResult into the cache transport format: one row-contiguous
/// [B, hidden_dim + social_dim] tensor.
inline Tensor PackEncodeResult(const models::EncodeResult& enc) {
  return ops::Concat({enc.h_focal, enc.pooled}, 1);
}

/// Inverse of PackEncodeResult. Slice copies reproduce the packed bytes
/// exactly, so the decoder consumes values bit-identical to a direct Encode.
inline models::EncodeResult UnpackEncodeResult(const Tensor& enc_rows,
                                               int64_t hidden_dim) {
  models::EncodeResult enc;
  enc.h_focal = ops::Slice(enc_rows, 1, 0, hidden_dim);
  enc.pooled = ops::Slice(enc_rows, 1, hidden_dim, enc_rows.size(1));
  return enc;
}

}  // namespace core
}  // namespace adaptraj

#endif  // ADAPTRAJ_CORE_PREDICT_PLAN_H_
