// Helpers binding data::Batch to the execution-plan layer (tensor/plan.h).
//
// A plan records slot identities for the batch-field tensors it was captured
// with and rebinds them on every replay, so the enumeration order here is
// part of the plan format: PredictPlanInputs must list the fields in the same
// order at capture and at replay. The key namespace is per-method (each
// core::Method owns its own PlanCache), so keys only need to pin what makes
// the op sequence unique for one method instance: every batch extent that
// shapes the graph, plus the sample flag (sampling toggles the latent-draw
// path in the decoders).

#ifndef ADAPTRAJ_CORE_PREDICT_PLAN_H_
#define ADAPTRAJ_CORE_PREDICT_PLAN_H_

#include <string>
#include <vector>

#include "data/batch.h"
#include "tensor/plan.h"

namespace adaptraj {
namespace core {

/// Batch-field tensors in the fixed plan-input enumeration order. Fields a
/// Predict body never reads become unused input slots — harmless.
inline std::vector<const Tensor*> PredictPlanInputs(const data::Batch& batch) {
  std::vector<const Tensor*> inputs;
  inputs.reserve(batch.obs_steps.size() + batch.nbr_steps.size() +
                 batch.fut_steps.size() + 5);
  for (const Tensor& t : batch.obs_steps) inputs.push_back(&t);
  inputs.push_back(&batch.obs_flat);
  for (const Tensor& t : batch.nbr_steps) inputs.push_back(&t);
  inputs.push_back(&batch.nbr_offsets);
  inputs.push_back(&batch.nbr_mask);
  for (const Tensor& t : batch.fut_steps) inputs.push_back(&t);
  inputs.push_back(&batch.fut_flat);
  inputs.push_back(&batch.endpoint);
  return inputs;
}

/// Plan-cache key for one Predict call: every extent that shapes the op
/// sequence, plus the sample flag.
inline std::string PredictPlanKey(const data::Batch& batch, bool sample) {
  std::string key;
  key.reserve(48);
  key += "B";
  key += std::to_string(batch.batch_size);
  key += ":M";
  key += std::to_string(batch.max_neighbors);
  key += ":o";
  key += std::to_string(batch.obs_len);
  key += ":p";
  key += std::to_string(batch.pred_len);
  key += sample ? ":s1" : ":s0";
  return key;
}

}  // namespace core
}  // namespace adaptraj

#endif  // ADAPTRAJ_CORE_PREDICT_PLAN_H_
