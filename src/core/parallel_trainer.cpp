#include "core/parallel_trainer.h"

#include <algorithm>
#include <utility>

#include "nn/module.h"
#include "tensor/kernels.h"
#include "tensor/parallel.h"

namespace adaptraj {
namespace core {

ParallelTrainer::ParallelTrainer(nn::Optimizer* opt,
                                 std::vector<std::vector<Tensor>> slot_params,
                                 const Options& options)
    : opt_(opt), slots_(std::move(slot_params)), options_(options) {
  ADAPTRAJ_CHECK_MSG(opt_ != nullptr, "ParallelTrainer needs an optimizer");
  ADAPTRAJ_CHECK_MSG(!slots_.empty(), "ParallelTrainer needs at least one slot");
  ADAPTRAJ_CHECK_MSG(static_cast<int>(slots_.size()) == std::max(1, options_.accum_steps),
                     "slot count " << slots_.size() << " != accum_steps "
                                   << options_.accum_steps);
  const std::vector<Tensor>& master = slots_[0];
  for (size_t s = 1; s < slots_.size(); ++s) {
    ADAPTRAJ_CHECK_MSG(slots_[s].size() == master.size(),
                       "replica " << s << " parameter count mismatch");
    for (size_t p = 0; p < master.size(); ++p) {
      ADAPTRAJ_CHECK_MSG(slots_[s][p].shape() == master[p].shape(),
                         "replica " << s << " shape mismatch at parameter " << p);
      // Replicas must be distinct storage; aliasing the master would turn
      // the read-only parameter guarantee into a data race.
      ADAPTRAJ_CHECK_MSG(slots_[s][p].impl() != master[p].impl(),
                         "replica " << s << " aliases master parameter " << p);
    }
  }
  pending_.reserve(slots_.size());
  Broadcast();
}

void ParallelTrainer::Submit(std::function<void(int slot)> task) {
  pending_.push_back(std::move(task));
  if (pending_.size() == slots_.size()) RunGroup();
}

void ParallelTrainer::Flush() { RunGroup(); }

void ParallelTrainer::RunGroup() {
  const int group = static_cast<int>(pending_.size());
  if (group == 0) return;

  // Fresh gradient buffers on every participating slot.
  for (int s = 0; s < group; ++s) {
    for (Tensor& p : slots_[s]) p.ZeroGrad();
  }

  // Forward + backward of every micro-batch, concurrently. Task i always
  // owns slot i, so writes are disjoint; RunTaskGroup's completion barrier
  // publishes them to this thread.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(group);
  for (int i = 0; i < group; ++i) {
    tasks.push_back([this, i] { pending_[i](i); });
  }
  parallel::RunTaskGroup(tasks);

  // Deterministic reduction into the master: ascending slot order, averaged
  // over the group. A parameter left untouched by every task (empty grad
  // everywhere) stays empty so the optimizer keeps skipping it, exactly as
  // in the serial loop.
  const float scale = 1.0f / static_cast<float>(group);
  std::vector<const float*> srcs;
  for (size_t p = 0; p < slots_[0].size(); ++p) {
    srcs.clear();
    bool master_has = !slots_[0][p].impl()->grad.empty();
    bool any = master_has;
    for (int s = 1; s < group; ++s) any = any || !slots_[s][p].impl()->grad.empty();
    if (!any) continue;
    auto& master_impl = *slots_[0][p].impl();
    master_impl.EnsureGrad();
    srcs.push_back(master_impl.grad.data());
    for (int s = 1; s < group; ++s) {
      auto& impl = *slots_[s][p].impl();
      if (!impl.grad.empty()) srcs.push_back(impl.grad.data());
    }
    // Skipping an empty (all-zero) source changes nothing: x + 0.0f == x.
    // A single source at scale 1 (group of one) is already the answer.
    if (srcs.size() > 1 || scale != 1.0f) {
      kernels::ReduceGradSum(srcs.data(), static_cast<int>(srcs.size()), scale,
                             master_impl.grad.data(), master_impl.size());
    }
  }

  nn::ClipGradNorm(slots_[0], options_.grad_clip);
  opt_->Step();
  ++steps_;
  pending_.clear();
  Broadcast();
}

void ParallelTrainer::Broadcast() {
  for (size_t s = 1; s < slots_.size(); ++s) {
    nn::CopyParameterValues(slots_[0], slots_[s]);
  }
}

}  // namespace core
}  // namespace adaptraj
