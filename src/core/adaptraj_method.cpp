#include "core/adaptraj_method.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/parallel_trainer.h"
#include "core/predict_plan.h"
#include "nn/optimizer.h"

namespace adaptraj {
namespace core {

using namespace ops;  // NOLINT(build/namespaces)

std::string AdapTrajVariantName(AdapTrajVariant v) {
  switch (v) {
    case AdapTrajVariant::kFull: return "ours";
    case AdapTrajVariant::kNoSpecific: return "w/o specific";
    case AdapTrajVariant::kNoInvariant: return "w/o invariant";
  }
  ADAPTRAJ_CHECK_MSG(false, "unknown variant");
  return "";
}

AdapTrajMethod::AdapTrajMethod(models::BackboneKind kind,
                               const models::BackboneConfig& backbone_config,
                               const AdapTrajConfig& model_config, uint64_t init_seed,
                               AdapTrajVariant variant,
                               const AdapTrajTrainConfig& schedule)
    : kind_(kind),
      backbone_config_(backbone_config),
      model_config_(model_config),
      init_seed_(init_seed),
      variant_(variant),
      schedule_(schedule) {
  Rng rng(init_seed);
  model_ =
      std::make_unique<AdapTrajModel>(kind, backbone_config, model_config, &rng);
  // Methods serve in inference mode unless a Train() is in flight — also
  // for models restored via LoadParameters, which never pass through Train().
  model_->eval();
}

AdapTrajFeatures AdapTrajMethod::ApplyVariant(AdapTrajFeatures f) const {
  switch (variant_) {
    case AdapTrajVariant::kFull:
      break;
    case AdapTrajVariant::kNoSpecific:
      f.spec = Tensor::Zeros(f.spec.shape());
      break;
    case AdapTrajVariant::kNoInvariant:
      f.inv = Tensor::Zeros(f.inv.shape());
      break;
  }
  return f;
}

void AdapTrajMethod::MicroBatchBackward(AdapTrajModel* model, const data::Batch& batch,
                                        const std::vector<int>& labels, float delta,
                                        Rng* rng) const {
  models::EncodeResult enc = model->backbone().Encode(batch);
  AdapTrajFeatures f = ApplyVariant(model->ExtractFeatures(enc, labels));
  Tensor base = model->backbone().Loss(batch, enc, f.Extra(), rng);  // L_base
  Tensor total = Add(base, MulScalar(model->OursLoss(batch, f, labels), delta));
  total.Backward();
}

void AdapTrajMethod::Train(const data::DomainGeneralizationData& dgd,
                           const TrainConfig& config) {
  // Parameter groups: Alg. 1 steers the aggregator and the rest at different
  // learning-rate fractions per step.
  nn::Adam opt(config.lr);
  const int g_main = opt.AddGroup(model_->BackboneAndExtractorParams(), 1.0f);
  const int g_agg = opt.AddGroup(model_->AggregatorParams(), 0.0f);

  // Scene-parallel driver: slot 0 is the live model, slots 1..A-1 are cached
  // replicas built from the construction arguments (the trainer overwrites
  // their weights with the master's before every group).
  ReplicaTrainer<AdapTrajModel> rt = MakeReplicaTrainer(
      model_.get(), &train_replicas_, &opt, config.accum_steps, config.grad_clip,
      [this] {
        Rng replica_rng(init_seed_);
        return std::make_unique<AdapTrajModel>(kind_, backbone_config_,
                                               model_config_, &replica_rng);
      });
  ParallelTrainer& trainer = *rt.trainer;
  for (AdapTrajModel* m : rt.models) m->train();

  // The main-thread Rng drives the label-masking schedule; every micro-batch
  // loss draws from its own TaskSeed stream (see parallel_trainer.h).
  Rng mask_rng(config.seed);
  uint64_t task_index = 0;
  auto submit = [&](const data::Batch& batch, std::vector<int> labels, float delta) {
    const uint64_t seed = TaskSeed(config.seed, task_index++);
    trainer.Submit(
        [this, &rt, batch, labels = std::move(labels), delta, seed](int slot) {
          Rng rng(seed);
          MicroBatchBackward(rt.models[slot], batch, labels, delta, &rng);
        });
  };

  data::SequenceConfig seq_cfg;
  const int e_start =
      std::max(1, static_cast<int>(std::round(config.epochs * schedule_.start_fraction)));
  const int e_end = std::max(
      e_start + 1, static_cast<int>(std::round(config.epochs * schedule_.end_fraction)));

  // Step 1 iterates pooled batches; steps 2-3 iterate per-domain batches
  // (Alg. 1 lines 8 and 20) so masking hides one whole domain at a time.
  data::BatchLoader pooled(&dgd.pooled_train, config.batch_size, seq_cfg,
                           config.seed + 11, /*shuffle=*/true);
  std::vector<std::unique_ptr<data::BatchLoader>> per_domain;
  for (const auto& source : dgd.sources) {
    per_domain.push_back(std::make_unique<data::BatchLoader>(
        &source.train, config.batch_size, seq_cfg, config.seed + 31 + per_domain.size(),
        /*shuffle=*/true));
  }

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (epoch < e_start) {
      // Step 1: backbone + extractors, full lr; aggregator frozen.
      opt.SetGroupScale(g_main, 1.0f);
      opt.SetGroupScale(g_agg, 0.0f);
      pooled.Reset();
      data::Batch batch;
      int batches = 0;
      while (pooled.Next(&batch)) {
        if (config.max_batches_per_epoch > 0 &&
            batches >= config.max_batches_per_epoch) {
          break;
        }
        submit(batch, batch.domain_labels, schedule_.delta);
        ++batches;
      }
      trainer.Flush();  // the phase scales may change at the epoch boundary
      continue;
    }

    // Steps 2-3: per-domain iterations with stochastic label masking.
    const bool step2 = epoch < e_end;
    opt.SetGroupScale(g_agg, step2 ? schedule_.f_high : schedule_.f_low);
    opt.SetGroupScale(g_main, schedule_.f_low);
    for (size_t k = 0; k < per_domain.size(); ++k) {
      per_domain[k]->Reset();
      data::Batch batch;
      int batches = 0;
      while (per_domain[k]->Next(&batch)) {
        if (config.max_batches_per_epoch > 0 &&
            batches >= config.max_batches_per_epoch) {
          break;
        }
        std::vector<int> labels = batch.domain_labels;
        if (mask_rng.Bernoulli(schedule_.sigma)) {
          std::fill(labels.begin(), labels.end(), -1);  // D^k_S -> D^?_S
        }
        submit(batch, std::move(labels), schedule_.delta_prime);
        ++batches;
      }
    }
    trainer.Flush();
  }
  trainer.Flush();
  for (AdapTrajModel* m : rt.models) m->eval();
  plan_cache_.Invalidate();  // fused plans packed the pre-training weights
  BumpWeightsVersion();      // serving-side encoder caches must drop too
}

Tensor AdapTrajMethod::Predict(const data::Batch& batch, Rng* rng, bool sample) const {
  NoGradGuard no_grad;
  plan::PredictSession session(&plan_cache_, PredictPlanKey(batch, sample),
                               PredictPlanInputs(batch), rng);
  if (session.CanReplay()) return session.Replay();
  // Unseen domain: every sequence routes through the aggregator (label -1).
  std::vector<int> labels(batch.batch_size, -1);
  models::EncodeResult enc = model_->backbone().Encode(batch);
  AdapTrajFeatures f = ApplyVariant(model_->ExtractFeatures(enc, labels));
  return session.Finish(model_->backbone().Predict(batch, enc, f.Extra(), rng, sample));
}

int64_t AdapTrajMethod::predict_encode_width() const {
  const models::BackboneConfig& cfg = model_->backbone().config();
  return cfg.hidden_dim + cfg.social_dim;
}

Tensor AdapTrajMethod::PredictEncode(const data::Batch& batch) const {
  NoGradGuard no_grad;
  plan::PredictSession session(&plan_cache_, EncodePlanKey(batch),
                               PredictPlanInputs(batch), /*rng=*/nullptr);
  if (session.CanReplay()) return session.Replay();
  return session.Finish(PackEncodeResult(model_->backbone().Encode(batch)));
}

Tensor AdapTrajMethod::PredictDecode(const data::Batch& batch, const Tensor& enc_rows,
                                     Rng* rng, bool sample) const {
  NoGradGuard no_grad;
  plan::PredictSession session(&plan_cache_, DecodePlanKey(batch, sample),
                               DecodePlanInputs(batch, enc_rows), rng);
  if (session.CanReplay()) return session.Replay();
  // Feature extraction lives in the decode half: it mixes encoder rows
  // through the aggregator, but always over the full batch, so the per-row
  // purity requirement only binds on PredictEncode.
  std::vector<int> labels(batch.batch_size, -1);
  models::EncodeResult enc =
      UnpackEncodeResult(enc_rows, model_->backbone().config().hidden_dim);
  AdapTrajFeatures f = ApplyVariant(model_->ExtractFeatures(enc, labels));
  return session.Finish(model_->backbone().Predict(batch, enc, f.Extra(), rng, sample));
}

std::unique_ptr<Method> AdapTrajMethod::CloneForServing() const {
  auto clone = std::make_unique<AdapTrajMethod>(kind_, backbone_config_, model_config_,
                                                init_seed_, variant_, schedule_);
  clone->model_->CopyParametersFrom(*model_);
  return clone;
}

}  // namespace core
}  // namespace adaptraj
