// PECNet-style backbone: endpoint-conditioned trajectory prediction
// (Mangalam et al., ECCV 2020), reimplemented at reduced width.
//
// A CVAE infers a latent over trajectory endpoints; the decoder predicts the
// remaining waypoints hard-conditioned to land on the sampled endpoint, with
// a non-local social layer pooling neighbor features.

#ifndef ADAPTRAJ_MODELS_PECNET_H_
#define ADAPTRAJ_MODELS_PECNET_H_

#include "models/backbone.h"
#include "models/interaction.h"

namespace adaptraj {
namespace models {

/// Endpoint-conditioned CVAE backbone.
class PecnetBackbone : public Backbone {
 public:
  PecnetBackbone(const BackboneConfig& config, Rng* rng);

  EncodeResult Encode(const data::Batch& batch) const override;
  Tensor Predict(const data::Batch& batch, const EncodeResult& enc, const Tensor& extra,
                 Rng* rng, bool sample) const override;
  Tensor Loss(const data::Batch& batch, const EncodeResult& enc, const Tensor& extra,
              Rng* rng) const override;
  BackboneKind kind() const override { return BackboneKind::kPecnet; }

 private:
  /// Decodes an endpoint from past features and a latent sample.
  Tensor DecodeEndpoint(const Tensor& feat, const Tensor& z) const;
  /// Full future from features, social context, endpoint and conditioning.
  Tensor DecodeTrajectory(const data::Batch& batch, const EncodeResult& enc,
                          const Tensor& endpoint_hat, const Tensor& extra) const;

  nn::Mlp past_encoder_;      // observed trajectory -> feature
  InteractionPooling social_;  // non-local social layer
  nn::Mlp latent_encoder_;    // q(z | endpoint, feat): outputs [mu ; logvar]
  nn::Mlp endpoint_decoder_;  // (feat, z) -> endpoint
  nn::Mlp traj_decoder_;      // (feat, social, endpoint, extra) -> waypoints
  float kl_weight_ = 0.1f;
};

}  // namespace models
}  // namespace adaptraj

#endif  // ADAPTRAJ_MODELS_PECNET_H_
