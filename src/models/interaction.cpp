#include "models/interaction.h"

#include <cmath>

namespace adaptraj {
namespace models {

using namespace ops;  // NOLINT(build/namespaces)

std::string InteractionKindName(InteractionKind kind) {
  switch (kind) {
    case InteractionKind::kAttention: return "attention";
    case InteractionKind::kMeanPool: return "mean-pool";
    case InteractionKind::kMaxPool: return "max-pool";
  }
  ADAPTRAJ_CHECK_MSG(false, "unknown interaction kind");
  return "";
}

InteractionPooling::InteractionPooling(int64_t embed_dim, int64_t hidden_dim,
                                       int64_t social_dim, Rng* rng,
                                       InteractionKind kind)
    : kind_(kind),
      hidden_dim_(hidden_dim),
      social_dim_(social_dim),
      step_embed_({2, embed_dim}, rng, nn::Activation::kRelu, nn::Activation::kRelu),
      encoder_(embed_dim, hidden_dim, rng),
      offset_embed_({2, embed_dim}, rng, nn::Activation::kRelu, nn::Activation::kRelu),
      fuse_({hidden_dim + embed_dim, hidden_dim}, rng, nn::Activation::kRelu,
            nn::Activation::kRelu),
      out_({hidden_dim, social_dim}, rng, nn::Activation::kRelu, nn::Activation::kNone) {
  RegisterModule("step_embed", &step_embed_);
  RegisterModule("encoder", &encoder_);
  RegisterModule("offset_embed", &offset_embed_);
  RegisterModule("fuse", &fuse_);
  RegisterModule("out", &out_);
}

Tensor InteractionPooling::EncodeNeighbors(const data::Batch& batch) const {
  std::vector<Tensor> embedded;
  embedded.reserve(batch.nbr_steps.size());
  for (const Tensor& step : batch.nbr_steps) {
    embedded.push_back(step_embed_.Forward(step));
  }
  Tensor h = encoder_.Forward(embedded).h;                   // [B*M, hidden]
  Tensor off = offset_embed_.Forward(batch.nbr_offsets);     // [B*M, embed]
  return fuse_.Forward(Concat({h, off}, 1));                 // [B*M, hidden]
}

Tensor InteractionPooling::PoolAttention(const data::Batch& batch, const Tensor& keys,
                                         const Tensor& h_focal) const {
  const int64_t b = batch.batch_size;
  const int64_t m = batch.max_neighbors;
  // Dot-product attention against the focal state: both the score pass and
  // the weighted sum are batched matrix products ([B,M,H]·[B,H,1] and
  // [B,1,M]·[B,M,H]), so each is one BatchMatMul node instead of a
  // broadcast-multiply plus reduction materializing [B,M,H] intermediates.
  Tensor query = Reshape(h_focal, {b, 1, hidden_dim_});
  Tensor scores = Reshape(BatchMatMul(keys, query, /*trans_a=*/false,
                                      /*trans_b=*/true),
                          {b, m});  // [B, M]
  scores = MulScalar(scores, 1.0f / std::sqrt(static_cast<float>(hidden_dim_)));
  // Mask padding: invalid slots get -1e9 before the softmax.
  Tensor invalid = AddScalar(MulScalar(batch.nbr_mask, -1.0f), 1.0f);  // 1 - mask
  scores = MaskedFill(scores, invalid, -1e9f);
  Tensor weights = Softmax(scores);  // [B, M]
  return Reshape(BatchMatMul(Reshape(weights, {b, 1, m}), keys),
                 {b, hidden_dim_});  // [B, hidden]
}

Tensor InteractionPooling::PoolMean(const data::Batch& batch, const Tensor& keys) const {
  const int64_t b = batch.batch_size;
  // keys already have padded slots zeroed; divide by the true neighbor count.
  Tensor sum = SumAxis(keys, 1);                                   // [B, hidden]
  Tensor count = SumAxis(batch.nbr_mask, 1, /*keepdim=*/true);     // [B, 1]
  Tensor denom = Clamp(count, 1.0f, 1e9f);
  Tensor recip = Div(Tensor::Full({b, 1}, 1.0f), denom);           // [B, 1]
  return BroadcastMul(sum, recip);
}

Tensor InteractionPooling::PoolMax(const data::Batch& batch, const Tensor& keys) const {
  const int64_t b = batch.batch_size;
  const int64_t m = batch.max_neighbors;
  // Push padded slots to -inf so they never win the max, then gate rows
  // without any neighbor back to zero.
  Tensor invalid3 = Reshape(AddScalar(MulScalar(batch.nbr_mask, -1.0f), 1.0f),
                            {b, m, 1});                                  // 1 - mask
  Tensor masked = BroadcastAdd(keys, MulScalar(invalid3, -1e9f));        // [B, M, H]
  Tensor maxed = MaxAxis(masked, 1);                                     // [B, H]
  Tensor has_any = MaxAxis(batch.nbr_mask, 1, /*keepdim=*/true);         // [B, 1]
  return BroadcastMul(maxed, has_any);
}

Tensor InteractionPooling::Pool(const data::Batch& batch, const Tensor& h_focal) const {
  const int64_t b = batch.batch_size;
  const int64_t m = batch.max_neighbors;
  ADAPTRAJ_CHECK_MSG(h_focal.shape() == (Shape{b, hidden_dim_}),
                     "focal state has wrong shape " << ShapeToString(h_focal.shape()));

  Tensor keys = Reshape(EncodeNeighbors(batch), {b, m, hidden_dim_});
  Tensor mask3 = Reshape(batch.nbr_mask, {b, m, 1});
  // Zero padded slots so they cannot contribute to sums or attention.
  keys = BroadcastMul(keys, mask3);

  Tensor pooled;
  switch (kind_) {
    case InteractionKind::kAttention:
      pooled = PoolAttention(batch, keys, h_focal);
      break;
    case InteractionKind::kMeanPool:
      pooled = PoolMean(batch, keys);
      break;
    case InteractionKind::kMaxPool:
      pooled = PoolMax(batch, keys);
      break;
  }
  return out_.Forward(pooled);  // [B, social_dim]
}

}  // namespace models
}  // namespace adaptraj
