// Neighbor interaction layer (Eq. 3): shared neighbor encoder plus a
// selectable aggregation over neighbors producing the interaction tensor
// P_i. The paper lists pooling, attention and graph mechanisms as valid
// instantiations of phi; this module implements masked attention (default),
// masked mean pooling and masked max pooling.

#ifndef ADAPTRAJ_MODELS_INTERACTION_H_
#define ADAPTRAJ_MODELS_INTERACTION_H_

#include <string>

#include "data/batch.h"
#include "nn/layers.h"

namespace adaptraj {
namespace models {

/// Aggregation mechanism used over neighbor features.
enum class InteractionKind {
  kAttention,  // dot-product attention against the focal state (default)
  kMeanPool,   // masked mean over neighbor features (Social-LSTM style)
  kMaxPool,    // masked elementwise max (Social-GAN style)
};

/// Printable interaction-kind name.
std::string InteractionKindName(InteractionKind kind);

/// Encodes each neighbor's observed motion and aggregates over neighbors.
///
/// Padding slots contribute nothing: their features are zeroed (attention /
/// mean) or masked to -inf and gated (max), so sequences without neighbors
/// receive a zero interaction tensor.
class InteractionPooling : public nn::Module {
 public:
  /// `hidden_dim` must match the focal encoder's state width; `social_dim`
  /// is the width of the pooled interaction tensor.
  InteractionPooling(int64_t embed_dim, int64_t hidden_dim, int64_t social_dim,
                     Rng* rng, InteractionKind kind = InteractionKind::kAttention);

  /// Per-neighbor features [B*M, hidden]: LSTM over displacement steps fused
  /// with the relative-offset embedding.
  Tensor EncodeNeighbors(const data::Batch& batch) const;

  /// Interaction tensor P_i [B, social_dim] from focal state h [B, hidden].
  Tensor Pool(const data::Batch& batch, const Tensor& h_focal) const;

  InteractionKind kind() const { return kind_; }

 private:
  Tensor PoolAttention(const data::Batch& batch, const Tensor& keys,
                       const Tensor& h_focal) const;
  Tensor PoolMean(const data::Batch& batch, const Tensor& keys) const;
  Tensor PoolMax(const data::Batch& batch, const Tensor& keys) const;

  InteractionKind kind_;
  int64_t hidden_dim_;
  int64_t social_dim_;
  nn::Mlp step_embed_;    // neighbor displacement embedding (Eq. 1 analogue)
  nn::Lstm encoder_;      // neighbor mobility encoder
  nn::Mlp offset_embed_;  // relative-position embedding
  nn::Mlp fuse_;          // [lstm ; offset] -> key/value features
  nn::Mlp out_;           // pooled -> social_dim
};

}  // namespace models
}  // namespace adaptraj

#endif  // ADAPTRAJ_MODELS_INTERACTION_H_
