#include "models/backbone.h"

#include "models/lbebm.h"
#include "models/pecnet.h"
#include "models/seq2seq.h"

namespace adaptraj {
namespace models {

std::string BackboneKindName(BackboneKind kind) {
  switch (kind) {
    case BackboneKind::kSeq2Seq: return "Seq2Seq";
    case BackboneKind::kPecnet: return "PECNet";
    case BackboneKind::kLbebm: return "LBEBM";
  }
  ADAPTRAJ_CHECK_MSG(false, "unknown backbone kind");
  return "";
}

Tensor Backbone::ResolveExtra(const Tensor& extra, int64_t batch) const {
  if (config_.extra_dim == 0) {
    ADAPTRAJ_CHECK_MSG(!extra.defined(),
                       "extra conditioning passed to a backbone built with extra_dim=0");
    return Tensor();
  }
  if (!extra.defined()) return Tensor::Zeros({batch, config_.extra_dim});
  ADAPTRAJ_CHECK_MSG(extra.shape() == (Shape{batch, config_.extra_dim}),
                     "extra conditioning has shape " << ShapeToString(extra.shape())
                                                     << ", expected [" << batch << ", "
                                                     << config_.extra_dim << "]");
  return extra;
}

Tensor Backbone::WithExtra(const Tensor& base, const Tensor& extra) const {
  Tensor resolved = ResolveExtra(extra, base.shape()[0]);
  if (!resolved.defined()) return base;
  return ops::Concat({base, resolved}, 1);
}

std::unique_ptr<Backbone> MakeBackbone(BackboneKind kind, const BackboneConfig& config,
                                       Rng* rng) {
  switch (kind) {
    case BackboneKind::kSeq2Seq: return std::make_unique<Seq2SeqBackbone>(config, rng);
    case BackboneKind::kPecnet: return std::make_unique<PecnetBackbone>(config, rng);
    case BackboneKind::kLbebm: return std::make_unique<LbebmBackbone>(config, rng);
  }
  ADAPTRAJ_CHECK_MSG(false, "unknown backbone kind");
  return nullptr;
}

}  // namespace models
}  // namespace adaptraj
