#include "models/lbebm.h"

#include <cmath>

#include "nn/losses.h"

namespace adaptraj {
namespace models {

using namespace ops;  // NOLINT(build/namespaces)

LbebmBackbone::LbebmBackbone(const BackboneConfig& config, Rng* rng)
    : Backbone(config),
      step_embed_({2, config.embed_dim}, rng, nn::Activation::kRelu,
                  nn::Activation::kRelu),
      encoder_(config.embed_dim, config.hidden_dim, rng),
      interaction_(config.embed_dim, config.hidden_dim, config.social_dim, rng,
                   config.interaction),
      posterior_({config.pred_len * 2 + config.hidden_dim + config.social_dim,
                  config.hidden_dim, 2 * config.latent_dim},
                 rng, nn::Activation::kRelu, nn::Activation::kNone),
      energy_({config.latent_dim + config.hidden_dim + config.social_dim,
               config.hidden_dim, 1},
              rng, nn::Activation::kRelu, nn::Activation::kNone),
      decoder_({config.hidden_dim + config.social_dim + config.latent_dim +
                    config.extra_dim,
                config.hidden_dim, config.hidden_dim, config.pred_len * 2},
               rng, nn::Activation::kRelu, nn::Activation::kNone) {
  RegisterModule("step_embed", &step_embed_);
  RegisterModule("encoder", &encoder_);
  RegisterModule("interaction", &interaction_);
  RegisterModule("posterior", &posterior_);
  RegisterModule("energy", &energy_);
  RegisterModule("decoder", &decoder_);
  all_params_ = Parameters();
}

EncodeResult LbebmBackbone::Encode(const data::Batch& batch) const {
  std::vector<Tensor> embedded;
  embedded.reserve(batch.obs_steps.size());
  for (const Tensor& step : batch.obs_steps) {
    embedded.push_back(step_embed_.Forward(step));
  }
  EncodeResult enc;
  enc.h_focal = encoder_.Forward(embedded).h;
  enc.pooled = interaction_.Pool(batch, enc.h_focal);
  return enc;
}

Tensor LbebmBackbone::Context(const EncodeResult& enc) const {
  return Concat({enc.h_focal, enc.pooled}, 1);
}

Tensor LbebmBackbone::Energy(const Tensor& z, const Tensor& context) const {
  return energy_.Forward(Concat({z, context}, 1));  // [B, 1]
}

Tensor LbebmBackbone::SampleLangevin(const Tensor& context, Rng* rng) const {
  // Gradient island: Langevin dynamics differentiates the energy w.r.t. z,
  // so the tape must be recorded here even when the surrounding Predict()
  // runs under NoGradGuard.
  EnableGradGuard grad_island;
  const int64_t b = context.shape()[0];
  Tensor ctx = context.Detach();
  Tensor z = Tensor::Randn({b, config_.latent_dim}, rng);
  const float step = config_.langevin_step_size;
  const float noise_scale = std::sqrt(step);
  for (int k = 0; k < config_.langevin_steps; ++k) {
    z.set_requires_grad(true);
    z.ZeroGrad();
    Sum(Energy(z, ctx)).Backward();
    Tensor grad = z.grad();
    // U(z) = E(z, ctx) + 0.5 ||z||^2  (EBM-tilted standard normal prior).
    std::vector<float> next(z.size());
    for (int64_t i = 0; i < z.size(); ++i) {
      next[i] = z.flat(i) - 0.5f * step * (grad.flat(i) + z.flat(i)) +
                noise_scale * rng->Normal();
    }
    z = Tensor::FromVector(z.shape(), std::move(next));
  }
  // Sampling back-propagated into the energy parameters; wipe those stray
  // gradients so they cannot leak into the caller's optimizer step.
  for (Tensor& p : all_params_) p.ZeroGrad();
  return z;
}

Tensor LbebmBackbone::Decode(const EncodeResult& enc, const Tensor& z,
                             const Tensor& extra) const {
  Tensor in = Concat({enc.h_focal, enc.pooled, z}, 1);
  in = WithExtra(in, extra);
  return decoder_.Forward(in);
}

Tensor LbebmBackbone::Predict(const data::Batch& batch, const EncodeResult& enc,
                              const Tensor& extra, Rng* rng, bool sample) const {
  const int64_t b = batch.batch_size;
  Tensor z = sample ? SampleLangevin(Context(enc), rng)
                    : Tensor::Zeros({b, config_.latent_dim});
  return Decode(enc, z, extra);
}

Tensor LbebmBackbone::Loss(const data::Batch& batch, const EncodeResult& enc,
                           const Tensor& extra, Rng* rng) const {
  const int64_t b = batch.batch_size;
  // Draw the negative (prior) sample FIRST: Langevin clears all parameter
  // gradients afterwards, which must not erase the caller's loss graph.
  Tensor z_neg = SampleLangevin(Context(enc), rng);

  // CVAE posterior over latent plans.
  Tensor stats = posterior_.Forward(Concat({batch.fut_flat, Context(enc)}, 1));
  Tensor mu = Slice(stats, 1, 0, config_.latent_dim);
  Tensor logvar = Clamp(Slice(stats, 1, config_.latent_dim, 2 * config_.latent_dim),
                        -6.0f, 6.0f);
  Tensor eps = Tensor::Randn({b, config_.latent_dim}, rng);
  Tensor z_pos = Add(mu, Mul(Exp(MulScalar(logvar, 0.5f)), eps));

  Tensor recon = nn::MseLoss(Decode(enc, z_pos, extra), batch.fut_flat);
  Tensor kl = nn::KlStandardNormal(mu, logvar);

  // Contrastive energy shaping: pull posterior-plan energy down, Langevin
  // (prior) sample energy up. Latents are detached so this trains E only.
  Tensor ctx_det = Context(enc).Detach();
  Tensor e_pos = Mean(Energy(z_pos.Detach(), ctx_det));
  Tensor e_neg = Mean(Energy(z_neg, ctx_det));
  Tensor ebm = Sub(e_pos, e_neg);

  return Add(Add(recon, MulScalar(kl, kl_weight_)), MulScalar(ebm, ebm_weight_));
}

}  // namespace models
}  // namespace adaptraj
