// Backbone interface for multi-agent trajectory predictors (Sec. II-C).
//
// Every backbone follows the paper's three-part decomposition:
//   1. individual mobility layer  -> h_focal ("h_ei^{t,le}")
//   2. neighbor interaction layer -> pooled  ("P_i")
//   3. future trajectory generator (noise-conditioned decoder)
//
// AdapTraj plugs in through the `extra` conditioning vector: the fused
// domain-invariant and domain-specific features [H^i ; H^s] are appended to
// the decoder input (Sec. III-E inference procedure). A backbone built with
// extra_dim == 0 is the "vanilla" model.

#ifndef ADAPTRAJ_MODELS_BACKBONE_H_
#define ADAPTRAJ_MODELS_BACKBONE_H_

#include <memory>
#include <string>

#include "data/batch.h"
#include "models/interaction.h"
#include "nn/layers.h"

namespace adaptraj {
namespace models {

/// Which backbone to instantiate.
enum class BackboneKind { kSeq2Seq, kPecnet, kLbebm };

/// Sequential model of the individual mobility layer (Eq. 2). The paper
/// allows "any sequential models, such as LSTM, or more advanced models
/// like Transformer"; both are implemented (Seq2Seq backbone).
enum class EncoderKind { kLstm, kTransformer };

/// Printable backbone name ("Seq2Seq", "PECNet", "LBEBM").
std::string BackboneKindName(BackboneKind kind);

/// Width and window configuration shared by all backbones.
struct BackboneConfig {
  int obs_len = 8;
  int pred_len = 12;
  int64_t embed_dim = 16;   // per-step location embedding (Eq. 1)
  int64_t hidden_dim = 32;  // recurrent state width (Eq. 2)
  int64_t social_dim = 32;  // interaction tensor width (Eq. 3)
  int64_t latent_dim = 8;   // noise z / CVAE latent width
  /// Width of the external conditioning vector provided by a learning
  /// framework (AdapTraj's [H^i ; H^s]); 0 for vanilla training.
  int64_t extra_dim = 0;
  /// Decoder dropout rate (Seq2Seq: on the decoder state ahead of the
  /// output head). Active only in training mode (Module::train()); under
  /// Method::Predict() — which serves in eval mode — it is the identity.
  float dropout = 0.0f;
  /// Aggregation mechanism of the neighbor interaction layer (Eq. 3).
  InteractionKind interaction = InteractionKind::kAttention;
  /// Sequential encoder of the individual mobility layer (Eq. 2).
  EncoderKind encoder = EncoderKind::kLstm;
  /// Transformer-encoder depth when encoder == kTransformer.
  int transformer_blocks = 1;
  /// LBEBM only: short-run Langevin steps for prior sampling.
  int langevin_steps = 5;
  float langevin_step_size = 0.1f;
};

/// Encoded context for a batch.
struct EncodeResult {
  /// Individual mobility state of the focal agent, [B, hidden_dim].
  Tensor h_focal;
  /// Interaction tensor P_i aggregated over neighbors, [B, social_dim].
  Tensor pooled;
};

/// Abstract trajectory-prediction backbone.
class Backbone : public nn::Module {
 public:
  explicit Backbone(const BackboneConfig& config) : config_(config) {}
  ~Backbone() override = default;

  const BackboneConfig& config() const { return config_; }

  /// Runs the individual-mobility and neighbor-interaction layers.
  virtual EncodeResult Encode(const data::Batch& batch) const = 0;

  /// Generates future displacements [B, pred_len*2]. When `sample` is true
  /// latent noise is drawn from the prior (one of the multi-modal futures);
  /// otherwise the most-likely latent (zero / posterior mean) is used.
  /// `extra` is the AdapTraj conditioning ([B, extra_dim]) or a null Tensor.
  virtual Tensor Predict(const data::Batch& batch, const EncodeResult& enc,
                         const Tensor& extra, Rng* rng, bool sample) const = 0;

  /// Backbone training loss L_base (Eq. 8 plus model-specific terms such as
  /// PECNet's endpoint/KL losses or LBEBM's energy terms).
  virtual Tensor Loss(const data::Batch& batch, const EncodeResult& enc,
                      const Tensor& extra, Rng* rng) const = 0;

  /// Human-readable kind.
  virtual BackboneKind kind() const = 0;

  /// True when concurrent Predict() calls on one instance are safe (forward
  /// passes only read parameters and allocate from thread-local pools).
  /// LBEBM returns false: its Langevin sampler backpropagates through the
  /// shared energy network's gradient buffers. serve::InferenceEngine
  /// consults this to serialize batch execution for such backbones.
  virtual bool reentrant_predict() const { return true; }

 protected:
  /// Returns `extra` when defined, otherwise zeros of [batch, extra_dim];
  /// null Tensor when extra_dim == 0.
  Tensor ResolveExtra(const Tensor& extra, int64_t batch) const;

  /// Concatenates `base` with the resolved extra conditioning (if any).
  Tensor WithExtra(const Tensor& base, const Tensor& extra) const;

  BackboneConfig config_;
};

/// Instantiates a backbone of the given kind.
std::unique_ptr<Backbone> MakeBackbone(BackboneKind kind, const BackboneConfig& config,
                                       Rng* rng);

}  // namespace models
}  // namespace adaptraj

#endif  // ADAPTRAJ_MODELS_BACKBONE_H_
