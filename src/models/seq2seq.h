// Plain seq2seq backbone: the reference implementation of Sec. II-C.
//
// MLP location embedding (Eq. 1), LSTM individual-mobility encoder (Eq. 2),
// attention-based neighbor interaction layer (Eq. 3), decoder initialization
// gamma (Eqs. 4-5) with latent noise z, LSTM trajectory generator psi/mu
// (Eqs. 6-7). Used by the quickstart example and as the custom-backbone
// template; the paper's evaluation uses PECNet and LBEBM.

#ifndef ADAPTRAJ_MODELS_SEQ2SEQ_H_
#define ADAPTRAJ_MODELS_SEQ2SEQ_H_

#include <memory>

#include "models/backbone.h"
#include "models/interaction.h"
#include "nn/transformer.h"

namespace adaptraj {
namespace models {

/// LSTM encoder/decoder backbone with social attention pooling.
class Seq2SeqBackbone : public Backbone {
 public:
  Seq2SeqBackbone(const BackboneConfig& config, Rng* rng);

  EncodeResult Encode(const data::Batch& batch) const override;
  Tensor Predict(const data::Batch& batch, const EncodeResult& enc, const Tensor& extra,
                 Rng* rng, bool sample) const override;
  Tensor Loss(const data::Batch& batch, const EncodeResult& enc, const Tensor& extra,
              Rng* rng) const override;
  BackboneKind kind() const override { return BackboneKind::kSeq2Seq; }

 private:
  nn::Mlp step_embed_;            // phi of Eq. 1
  nn::Lstm encoder_;              // phi of Eq. 2 (LSTM variant)
  /// Transformer variant of Eq. 2; null unless configured.
  std::unique_ptr<nn::TransformerEncoder> transformer_;
  InteractionPooling interaction_;  // phi of Eq. 3
  nn::Mlp decoder_init_;          // gamma of Eq. 4
  nn::LstmCell decoder_cell_;     // psi of Eq. 6
  nn::Dropout head_drop_;         // regularizes the decoder state (train only)
  nn::Mlp head_;                  // mu of Eq. 7: hidden -> displacement
};

}  // namespace models
}  // namespace adaptraj

#endif  // ADAPTRAJ_MODELS_SEQ2SEQ_H_
