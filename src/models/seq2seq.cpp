#include "models/seq2seq.h"

#include "nn/losses.h"

namespace adaptraj {
namespace models {

using namespace ops;  // NOLINT(build/namespaces)

Seq2SeqBackbone::Seq2SeqBackbone(const BackboneConfig& config, Rng* rng)
    : Backbone(config),
      step_embed_({2, config.embed_dim}, rng, nn::Activation::kRelu,
                  nn::Activation::kRelu),
      encoder_(config.embed_dim, config.hidden_dim, rng),
      interaction_(config.embed_dim, config.hidden_dim, config.social_dim, rng,
                   config.interaction),
      decoder_init_({config.hidden_dim + config.social_dim + config.latent_dim +
                         config.extra_dim,
                     config.hidden_dim},
                    rng, nn::Activation::kRelu, nn::Activation::kTanh),
      decoder_cell_(config.embed_dim + config.social_dim, config.hidden_dim, rng),
      head_drop_(config.dropout),
      head_({config.hidden_dim, config.hidden_dim, 2}, rng, nn::Activation::kRelu,
            nn::Activation::kNone) {
  RegisterModule("step_embed", &step_embed_);
  if (config.encoder == EncoderKind::kTransformer) {
    transformer_ = std::make_unique<nn::TransformerEncoder>(
        2, config.hidden_dim, config.transformer_blocks, config.obs_len, rng);
    RegisterModule("transformer", transformer_.get());
  } else {
    RegisterModule("encoder", &encoder_);
  }
  RegisterModule("interaction", &interaction_);
  RegisterModule("decoder_init", &decoder_init_);
  RegisterModule("decoder_cell", &decoder_cell_);
  RegisterModule("head_drop", &head_drop_);
  RegisterModule("head", &head_);
}

EncodeResult Seq2SeqBackbone::Encode(const data::Batch& batch) const {
  EncodeResult enc;
  if (transformer_ != nullptr) {
    // Transformer variant of Eq. 2 (embeds its own inputs).
    enc.h_focal = transformer_->Forward(batch.obs_steps);
  } else {
    std::vector<Tensor> embedded;
    embedded.reserve(batch.obs_steps.size());
    for (const Tensor& step : batch.obs_steps) {
      embedded.push_back(step_embed_.Forward(step));  // Eq. 1
    }
    enc.h_focal = encoder_.Forward(embedded).h;  // Eq. 2 (LSTM variant)
  }
  enc.pooled = interaction_.Pool(batch, enc.h_focal);  // Eq. 3
  return enc;
}

Tensor Seq2SeqBackbone::Predict(const data::Batch& batch, const EncodeResult& enc,
                                const Tensor& extra, Rng* rng, bool sample) const {
  const int64_t b = batch.batch_size;
  Tensor z = sample ? Tensor::Randn({b, config_.latent_dim}, rng)
                    : Tensor::Zeros({b, config_.latent_dim});

  // Eqs. 4-5: decoder state from [c_i ; z] (+ AdapTraj conditioning).
  Tensor init_in = Concat({enc.h_focal, enc.pooled, z}, 1);
  init_in = WithExtra(init_in, extra);
  nn::LstmCell::State state{decoder_init_.Forward(init_in),
                            Tensor::Zeros({b, config_.hidden_dim})};

  // Eqs. 6-7: autoregressive rollout of future displacements.
  Tensor prev = batch.obs_steps.back();
  std::vector<Tensor> outputs;
  outputs.reserve(config_.pred_len);
  for (int t = 0; t < config_.pred_len; ++t) {
    Tensor cell_in = Concat({step_embed_.Forward(prev), enc.pooled}, 1);
    state = decoder_cell_.Forward(cell_in, state);
    // Training-mode regularization; identity (no rng draw) in eval mode.
    Tensor disp = head_.Forward(head_drop_.Forward(state.h, rng));  // [B, 2]
    outputs.push_back(disp);
    prev = disp;
  }
  return Concat(outputs, 1);  // [B, pred_len*2]
}

Tensor Seq2SeqBackbone::Loss(const data::Batch& batch, const EncodeResult& enc,
                             const Tensor& extra, Rng* rng) const {
  Tensor pred = Predict(batch, enc, extra, rng, /*sample=*/true);
  return nn::MseLoss(pred, batch.fut_flat);  // Eq. 8
}

}  // namespace models
}  // namespace adaptraj
