#include "models/pecnet.h"

#include "nn/losses.h"

namespace adaptraj {
namespace models {

using namespace ops;  // NOLINT(build/namespaces)

PecnetBackbone::PecnetBackbone(const BackboneConfig& config, Rng* rng)
    : Backbone(config),
      past_encoder_({config.obs_len * 2, config.hidden_dim, config.hidden_dim}, rng,
                    nn::Activation::kRelu, nn::Activation::kRelu),
      social_(config.embed_dim, config.hidden_dim, config.social_dim, rng,
              config.interaction),
      latent_encoder_({2 + config.hidden_dim, config.hidden_dim, 2 * config.latent_dim},
                      rng, nn::Activation::kRelu, nn::Activation::kNone),
      endpoint_decoder_({config.hidden_dim + config.latent_dim, config.hidden_dim, 2},
                        rng, nn::Activation::kRelu, nn::Activation::kNone),
      traj_decoder_({config.hidden_dim + config.social_dim + 2 + config.extra_dim,
                     config.hidden_dim, (config.pred_len - 1) * 2},
                    rng, nn::Activation::kRelu, nn::Activation::kNone) {
  ADAPTRAJ_CHECK_MSG(config.pred_len >= 2, "PECNet needs pred_len >= 2");
  RegisterModule("past_encoder", &past_encoder_);
  RegisterModule("social", &social_);
  RegisterModule("latent_encoder", &latent_encoder_);
  RegisterModule("endpoint_decoder", &endpoint_decoder_);
  RegisterModule("traj_decoder", &traj_decoder_);
}

EncodeResult PecnetBackbone::Encode(const data::Batch& batch) const {
  EncodeResult enc;
  enc.h_focal = past_encoder_.Forward(batch.obs_flat);
  enc.pooled = social_.Pool(batch, enc.h_focal);
  return enc;
}

Tensor PecnetBackbone::DecodeEndpoint(const Tensor& feat, const Tensor& z) const {
  return endpoint_decoder_.Forward(Concat({feat, z}, 1));
}

Tensor PecnetBackbone::DecodeTrajectory(const data::Batch& batch, const EncodeResult& enc,
                                        const Tensor& endpoint_hat,
                                        const Tensor& extra) const {
  Tensor in = Concat({enc.h_focal, enc.pooled, endpoint_hat}, 1);
  in = WithExtra(in, extra);
  Tensor partial = traj_decoder_.Forward(in);  // [B, (pred_len-1)*2]
  // Hard endpoint conditioning: the final displacement closes the gap so the
  // cumulative path lands exactly on the endpoint.
  const int64_t b = batch.batch_size;
  Tensor partial3 = Reshape(partial, {b, config_.pred_len - 1, 2});
  Tensor last = Sub(endpoint_hat, SumAxis(partial3, 1));  // [B, 2]
  return Concat({partial, last}, 1);                      // [B, pred_len*2]
}

Tensor PecnetBackbone::Predict(const data::Batch& batch, const EncodeResult& enc,
                               const Tensor& extra, Rng* rng, bool sample) const {
  const int64_t b = batch.batch_size;
  Tensor z = sample ? Tensor::Randn({b, config_.latent_dim}, rng)
                    : Tensor::Zeros({b, config_.latent_dim});
  Tensor endpoint_hat = DecodeEndpoint(enc.h_focal, z);
  return DecodeTrajectory(batch, enc, endpoint_hat, extra);
}

Tensor PecnetBackbone::Loss(const data::Batch& batch, const EncodeResult& enc,
                            const Tensor& extra, Rng* rng) const {
  const int64_t b = batch.batch_size;
  // CVAE posterior over the endpoint latent.
  Tensor stats = latent_encoder_.Forward(Concat({batch.endpoint, enc.h_focal}, 1));
  Tensor mu = Slice(stats, 1, 0, config_.latent_dim);
  Tensor logvar = Clamp(Slice(stats, 1, config_.latent_dim, 2 * config_.latent_dim),
                        -6.0f, 6.0f);
  Tensor eps = Tensor::Randn({b, config_.latent_dim}, rng);
  Tensor z = Add(mu, Mul(Exp(MulScalar(logvar, 0.5f)), eps));

  Tensor endpoint_hat = DecodeEndpoint(enc.h_focal, z);
  Tensor traj = DecodeTrajectory(batch, enc, endpoint_hat, extra);

  Tensor loss = nn::MseLoss(traj, batch.fut_flat);                       // Eq. 8
  loss = Add(loss, nn::MseLoss(endpoint_hat, batch.endpoint));           // endpoint
  loss = Add(loss, MulScalar(nn::KlStandardNormal(mu, logvar), kl_weight_));
  return loss;
}

}  // namespace models
}  // namespace adaptraj
