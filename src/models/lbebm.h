// LBEBM-style backbone: latent-belief trajectory prediction with an
// energy-based prior (Pang et al., CVPR 2021), reimplemented at reduced width.
//
// A CVAE-style posterior encodes the future into a latent plan; the prior
// over plans is an energy network sampled with short-run Langevin dynamics.
// The energy is trained contrastively (posterior samples low, prior samples
// high). Langevin gradients come from the library's own autograd engine.

#ifndef ADAPTRAJ_MODELS_LBEBM_H_
#define ADAPTRAJ_MODELS_LBEBM_H_

#include "models/backbone.h"
#include "models/interaction.h"

namespace adaptraj {
namespace models {

/// Energy-based latent-plan backbone.
class LbebmBackbone : public Backbone {
 public:
  LbebmBackbone(const BackboneConfig& config, Rng* rng);

  EncodeResult Encode(const data::Batch& batch) const override;
  Tensor Predict(const data::Batch& batch, const EncodeResult& enc, const Tensor& extra,
                 Rng* rng, bool sample) const override;
  Tensor Loss(const data::Batch& batch, const EncodeResult& enc, const Tensor& extra,
              Rng* rng) const override;
  BackboneKind kind() const override { return BackboneKind::kLbebm; }
  /// Langevin sampling writes (then wipes) shared parameter gradients, so
  /// concurrent Predict() calls on one instance would race.
  bool reentrant_predict() const override { return false; }

  /// Energy of latent plans z [B, latent] under context [B, ctx]: returns
  /// [B, 1]. Exposed for tests.
  Tensor Energy(const Tensor& z, const Tensor& context) const;

  /// Short-run Langevin sampling from the energy-based prior
  /// p(z|ctx) ~ exp(-E(z,ctx)) N(z; 0, I). Returns a detached [B, latent]
  /// sample. Exposed for tests.
  Tensor SampleLangevin(const Tensor& context, Rng* rng) const;

 private:
  Tensor Context(const EncodeResult& enc) const;
  Tensor Decode(const EncodeResult& enc, const Tensor& z, const Tensor& extra) const;

  nn::Mlp step_embed_;
  nn::Lstm encoder_;
  InteractionPooling interaction_;
  nn::Mlp posterior_;  // q(z | future, ctx) -> [mu ; logvar]
  nn::Mlp energy_;     // E(z, ctx) -> scalar
  nn::Mlp decoder_;    // (ctx, z, extra) -> future displacements
  /// Handles to the full parameter set; Langevin sampling pollutes parameter
  /// gradients through the autograd tape, so they are cleared afterwards.
  mutable std::vector<Tensor> all_params_;
  float kl_weight_ = 0.05f;
  float ebm_weight_ = 0.1f;
};

}  // namespace models
}  // namespace adaptraj

#endif  // ADAPTRAJ_MODELS_LBEBM_H_
