#include "sim/domain_spec.h"

#include "tensor/status.h"

namespace adaptraj {
namespace sim {

std::vector<Domain> AllDomains() {
  return {Domain::kEthUcy, Domain::kLcas, Domain::kSyi, Domain::kSdd};
}

std::string DomainName(Domain d) {
  switch (d) {
    case Domain::kEthUcy: return "ETH&UCY";
    case Domain::kLcas: return "L-CAS";
    case Domain::kSyi: return "SYI";
    case Domain::kSdd: return "SDD";
  }
  ADAPTRAJ_CHECK_MSG(false, "unknown domain");
  return "";
}

// Preset values are calibrated so that the per-step velocity/acceleration
// statistics computed by data::ComputeDomainStats approximate the paper's
// Table I (see bench_table1_dataset_stats for paper-vs-measured output).

DomainSpec EthUcySpec() {
  DomainSpec s;
  s.name = DomainName(Domain::kEthUcy);
  s.domain = Domain::kEthUcy;
  s.flow = FlowPattern::kBidirectionalX;
  s.mean_agents = 6.7f;
  s.std_agents = 5.0f;
  s.desired_speed_mean = 0.39f;
  s.desired_speed_std = 0.15f;
  s.flow_angle_jitter = 0.30f;
  s.cross_flow_prob = 0.05f;
  s.noise_std_x = 0.030f;
  s.noise_std_y = 0.030f;
  s.passing_side_bias = 0.45f;  // right-of-way convention
  s.group_prob = 0.25f;
  s.world_width = 14.0f;
  s.world_height = 12.0f;
  return s;
}

DomainSpec LcasSpec() {
  DomainSpec s;
  s.name = DomainName(Domain::kLcas);
  s.domain = Domain::kLcas;
  s.flow = FlowPattern::kIndoorMixed;
  s.mean_agents = 6.2f;
  s.std_agents = 3.0f;
  s.desired_speed_mean = 0.19f;
  s.desired_speed_std = 0.06f;
  s.flow_angle_jitter = 0.40f;
  s.cross_flow_prob = 0.12f;
  s.noise_std_x = 0.066f;  // indoor motion is jerky relative to its speed
  s.noise_std_y = 0.062f;
  s.passing_side_bias = -0.5f;  // opposite (left) evasion convention
  s.group_prob = 0.35f;
  s.desired_speed_std = 0.05f;
  s.world_width = 9.0f;
  s.world_height = 8.0f;
  s.repulsion_range = 0.4f;
  return s;
}

DomainSpec SyiSpec() {
  DomainSpec s;
  s.name = DomainName(Domain::kSyi);
  s.domain = Domain::kSyi;
  s.flow = FlowPattern::kCorridorY;
  s.mean_agents = 28.0f;
  s.std_agents = 16.0f;
  s.desired_speed_mean = 1.17f;
  s.desired_speed_std = 0.20f;
  s.flow_angle_jitter = 0.40f;
  s.cross_flow_prob = 0.0f;
  s.noise_std_x = 0.125f;
  s.noise_std_y = 0.52f;  // stop-and-go surges along the corridor
  s.passing_side_bias = 0.7f;  // strong right-hand convention in dense flow
  s.group_prob = 0.1f;
  s.world_width = 12.0f;
  s.world_height = 44.0f;
  s.repulsion_strength = 1.6f;
  return s;
}

DomainSpec SddSpec() {
  DomainSpec s;
  s.name = DomainName(Domain::kSdd);
  s.domain = Domain::kSdd;
  s.flow = FlowPattern::kCampusMixed;
  s.mean_agents = 13.6f;
  s.std_agents = 9.0f;
  s.desired_speed_mean = 0.40f;
  s.desired_speed_std = 0.22f;
  s.flow_angle_jitter = 0.35f;
  s.cross_flow_prob = 0.32f;
  s.noise_std_x = 0.085f;
  s.noise_std_y = 0.095f;
  s.passing_side_bias = 0.15f;  // weak convention: cyclists/pedestrians mix
  s.group_prob = 0.2f;
  s.world_width = 20.0f;
  s.world_height = 18.0f;
  return s;
}

DomainSpec SpecForDomain(Domain d) {
  switch (d) {
    case Domain::kEthUcy: return EthUcySpec();
    case Domain::kLcas: return LcasSpec();
    case Domain::kSyi: return SyiSpec();
    case Domain::kSdd: return SddSpec();
  }
  ADAPTRAJ_CHECK_MSG(false, "unknown domain");
  return DomainSpec();
}

}  // namespace sim
}  // namespace adaptraj
